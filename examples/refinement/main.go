// Refinement demonstrates the system's improvement loop (the paper's
// closing "plan for improvement of the system as more data becomes
// available"): query-time "did you mean" suggestions for mistyped concepts,
// and the ontology-refinement CPE that mines the corpus for service
// vocabulary the taxonomy does not know yet (Table 1's "iteratively
// refining the ontology with the output of annotator").
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/access"
	"repro/internal/analysis"
	"repro/internal/annotators"
	"repro/internal/core"
	"repro/internal/docmodel"
	"repro/internal/synth"
	"repro/internal/taxonomy"
)

func main() {
	log.SetFlags(0)
	corpus, err := synth.Generate(synth.SmallConfig())
	if err != nil {
		log.Fatal(err)
	}
	sys, err := eil.Ingest(corpus.Docs, eil.Options{Directory: corpus.Directory})
	if err != nil {
		log.Fatal(err)
	}
	user := access.User{ID: "demo", Roles: []access.Role{access.RoleAdmin}}

	// 1. A mistyped concept resolves to nothing — but the taxonomy
	//    suggests the nearest vocabulary.
	fmt.Println("== query: tower = 'Strorage Managment Services' (two typos) ==")
	res, err := sys.Search(user, core.FormQuery{Tower: "Strorage Managment Services"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("activities: %d\n", len(res.Activities))
	fmt.Printf("did you mean: %v\n\n", res.Suggestions)

	// 2. The ontology refiner scans the corpus for service-like phrases
	//    the taxonomy does not know. Plant a few documents mentioning an
	//    emerging service line to show the loop.
	tax := taxonomy.Default()
	refiner := annotators.NewOntologyRefiner(tax)
	docs := append([]*docmodel.Document{}, corpus.Docs...)
	for i := 0; i < 4; i++ {
		docs = append(docs, &docmodel.Document{
			Path:   fmt.Sprintf("DEAL A/new-%d.txt", i),
			DealID: "DEAL A",
			Type:   docmodel.TypeText,
			Title:  "Service note",
			Body:   "The client asked about Cloud Brokerage Services pricing.\nScope may add Cloud Brokerage Services next quarter.",
		})
	}
	pipe := &analysis.Pipeline{
		Reader:    &analysis.SliceReader{Docs: docs},
		Consumers: []analysis.Consumer{refiner},
	}
	if _, err := pipe.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("== ontology refinement: unresolved service phrases in the corpus ==")
	for _, c := range refiner.Candidates() {
		fmt.Printf("  %-36s seen %2d times (nearest known: %s)\n", c.Phrase, c.Count, c.Nearest)
	}
	fmt.Println("\nfold accepted candidates into the taxonomy and re-ingest to close the loop")
}
