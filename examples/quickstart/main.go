// Quickstart: generate a small engagement-workbook corpus, ingest it, and
// run one concept search and one keyword-baseline search — the minimal EIL
// round trip.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	// 1. Data acquisition: the synthetic corpus stands in for crawled
	//    engagement workbooks (use crawler.NewFSReader for a real tree).
	corpus, err := synth.Generate(synth.SmallConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d documents across %d deals\n", len(corpus.Docs), len(corpus.DealIDs))

	// 2. Offline pipeline: annotate, collection-process, index.
	sys, err := eil.Ingest(corpus.Docs, eil.Options{Directory: corpus.Directory})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested: %d documents, %d annotations\n\n", sys.Index.DocCount(), sys.Stats.Annotations)

	// 3. Business-activity driven search: a concept query returns
	//    activities with their business context, not bare documents.
	user := access.User{ID: "demo", Roles: []access.Role{access.RoleAdmin}}
	res, err := sys.Search(user, core.FormQuery{Tower: "End User Services"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EIL concept search for End User Services: %d activities\n", len(res.Activities))
	for _, a := range res.Activities {
		var towers []string
		for _, tw := range a.Synopsis.Towers {
			if tw.SubTower == "" {
				towers = append(towers, tw.Tower)
			}
		}
		fmt.Printf("  %-12s score %.2f  %s\n", a.DealID, a.Score, strings.Join(towers, ", "))
	}

	// 4. The search-box baseline, for contrast: documents, no context.
	fmt.Printf("\nkeyword baseline for \"End User Services\": %d documents\n",
		sys.KeywordCount("End User Services"))
	for _, h := range sys.KeywordSearch("End User Services", 3) {
		fmt.Printf("  %5.2f %-12s %s\n", h.Score, h.DealID, h.Path)
	}
}
