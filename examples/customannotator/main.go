// Customannotator shows how to build annotators per the guidelines of the
// paper's Table 1 — a regex primitive, a heuristic primitive, a classifier
// primitive, and their composite — register them in an analysis pipeline
// next to the stock EIL flow, and consume the results with a custom
// Collection Processing Engine.
//
// The example extracts *contract risk mentions*: sentences citing penalty,
// liability, or termination clauses, aggregated per business activity.
package main

import (
	"fmt"
	"log"
	"regexp"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/annotators"
	"repro/internal/classify"
	"repro/internal/synth"
	"repro/internal/textproc"
)

// riskCPE aggregates risk annotations per deal — a minimal Collection
// Processing Engine (§3.4): document-level results in, collection-level
// reasoning (counting, thresholding) at End.
type riskCPE struct {
	counts map[string]int
}

func (c *riskCPE) Name() string { return "risk-rollup" }

func (c *riskCPE) Consume(cas *analysis.CAS) error {
	if c.counts == nil {
		c.counts = map[string]int{}
	}
	n := len(cas.Select("risk"))
	if n > 0 && cas.Doc.DealID != "" {
		c.counts[cas.Doc.DealID] += n
	}
	return nil
}

func (c *riskCPE) End() error { return nil }

func main() {
	log.SetFlags(0)
	corpus, err := synth.Generate(synth.SmallConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Primitive 1 — regular-expression-based (Table 1: simple, easy to
	// implement, limited expressiveness): clause keywords.
	clauseRegex := &annotators.Regex{
		ID:   "risk-regex",
		Type: "risk",
		Pattern: regexp.MustCompile(
			`(?i)\b(penalt\w*|liabilit\w*|termination|gain.sharing|risk transfer)\b`),
		Confidence: 0.6,
	}

	// Primitive 2 — heuristics-based: only count mentions inside win
	// strategy or contract documents, where they are load-bearing.
	riskFilter := &annotators.Heuristic{
		ID: "risk-filter",
		Fn: func(cas *analysis.CAS) error {
			title := strings.ToLower(cas.Doc.Title)
			if strings.Contains(title, "win strategy") || strings.Contains(title, "overview") {
				for _, a := range cas.Select("risk") {
					a.Features = map[string]string{"strong": "true"}
					cas.Add(analysis.Annotation{
						Type: "risk-strong", Begin: a.Begin, End: a.End,
						Features: a.Features, Confidence: 0.9, Source: "risk-filter",
					})
				}
			}
			return nil
		},
	}

	// Primitive 3 — classifier-based: a naive Bayes model flags documents
	// whose overall language is contract-negotiation-like.
	model := classify.New(textproc.DefaultAnalyzer)
	model.Learn("negotiation", "pricing penalty liability clause termination credits terms negotiation contract")
	model.Learn("operations", "kickoff milestone onboarding schedule staffing workshop status update")
	docClassifier := &annotators.DocClassifier{ID: "risk-classifier", Model: model, MinPosterior: 0.6}

	// Composite — assemble the primitives; later steps see earlier output.
	flow := annotators.Composite("risk-flow", clauseRegex, riskFilter, docClassifier)

	cpe := &riskCPE{}
	pipe := &analysis.Pipeline{
		Reader:    &analysis.SliceReader{Docs: corpus.Docs},
		Annotator: flow,
		Consumers: []analysis.Consumer{cpe},
		Workers:   4,
	}
	stats, err := pipe.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analyzed %d documents, %d annotations\n\n", stats.Docs, stats.Annotations)

	fmt.Println("contract-risk mentions per business activity:")
	deals := make([]string, 0, len(cpe.counts))
	for id := range cpe.counts {
		deals = append(deals, id)
	}
	sort.Slice(deals, func(i, j int) bool { return cpe.counts[deals[i]] > cpe.counts[deals[j]] })
	for _, id := range deals {
		fmt.Printf("  %-12s %d\n", id, cpe.counts[id])
	}
}
