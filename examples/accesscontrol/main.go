// Accesscontrol demonstrates EIL's synopsis-only fallback (§3.1 of the
// paper): "if a user is not authorized to access a data repository, the
// system presents to the user only a synopsis of the desired information
// including a list of contact persons with whom the user could
// communicate." Three principals run the same query and see three different
// slices of the same result.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)
	corpus, err := synth.Generate(synth.SmallConfig())
	if err != nil {
		log.Fatal(err)
	}
	ctl := access.NewController()
	sys, err := eil.Ingest(corpus.Docs, eil.Options{Directory: corpus.Directory, Access: ctl})
	if err != nil {
		log.Fatal(err)
	}

	// A confidential deal: even document grants are capped for base roles.
	confidential := corpus.DealIDs[1]
	ctl.Restrict(confidential)

	sales := access.User{ID: "sue", Name: "Sales Sue", Roles: []access.Role{access.RoleSales}}
	delivery := access.User{ID: "dan", Name: "Delivery Dan", Roles: []access.Role{access.RoleDelivery}}
	admin := access.User{ID: "ada", Name: "Admin Ada", Roles: []access.Role{access.RoleAdmin}}

	// Sue earns a document-level grant on one engagement she works.
	ctl.Grant("sue", corpus.DealIDs[0], access.LevelFull)

	q := core.FormQuery{ExactPhrase: "data replication"}
	for _, user := range []access.User{admin, sales, delivery} {
		res, err := sys.Search(user, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s (%v): %d activities ==\n", user.Name, user.Roles, len(res.Activities))
		for _, a := range res.Activities {
			fmt.Printf("  %-12s level=%-8s", a.DealID, a.Level)
			switch {
			case len(a.Docs) > 0:
				fmt.Printf(" %d documents visible\n", len(a.Docs))
			case a.Synopsis != nil:
				// The synopsis-only fallback: business context and the
				// people to call, but no documents.
				fmt.Printf(" synopsis only; %d contacts to reach out to\n", len(a.Synopsis.People))
			default:
				fmt.Printf(" nothing\n")
			}
		}
		fmt.Println()
	}

	// The same deal, fetched directly, under each principal.
	target := corpus.DealIDs[0]
	fmt.Printf("direct synopsis fetch of %s:\n", target)
	for _, user := range []access.User{admin, sales, delivery} {
		_, err := sys.Deal(user, target)
		fmt.Printf("  %-12s -> %v\n", user.Name, errOrOK(err))
	}
}

func errOrOK(err error) string {
	if err != nil {
		return "denied (" + err.Error() + ")"
	}
	return "ok"
}
