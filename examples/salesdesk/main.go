// Salesdesk walks the four meta-queries of the paper's §2 — the information
// needs mined from the sales community's email distribution list — showing,
// for each, how a sales executive's question maps onto the EIL search form
// and what comes back, next to the keyword-search experience.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/siapi"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)
	corpus, err := synth.Generate(synth.SmallConfig())
	if err != nil {
		log.Fatal(err)
	}
	sys, err := eil.Ingest(corpus.Docs, eil.Options{Directory: corpus.Directory})
	if err != nil {
		log.Fatal(err)
	}
	user := access.User{ID: "sales", Roles: []access.Role{access.RoleAdmin}}

	// Meta-query 1 (38% of threads): "Which business engagements have a
	// scope that involves <this service>?"
	fmt.Println("== MQ1: which engagements have End User Services in scope? ==")
	fmt.Printf("keyword: %d docs for the tower name, %d once the subtypes are spelled out\n",
		sys.KeywordCount("End User Services"),
		sys.SIAPI.Count(siapiAny(sys, "End User Services")))
	res, err := sys.Search(user, core.FormQuery{Tower: "End User Services"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EIL: %d deals, towers in significance order:\n", len(res.Activities))
	for _, a := range res.Activities {
		fmt.Printf("  %-12s %s\n", a.DealID, towersOf(a))
	}

	// Meta-query 2 (17%): "Who in <this role> has worked with <this
	// person> in <this organization>?"
	fmt.Println("\n== MQ2: who has worked with Sam White from company ABC? ==")
	fmt.Printf("keyword funnel: %d docs, then %d docs, then %d docs to read\n",
		sys.KeywordCount("Sam White ABC CSE"),
		sys.KeywordCount("Sam White ABC"),
		sys.KeywordCount("ABC ONLINE CSE"))
	res, err = sys.Search(user, core.FormQuery{PersonName: "Sam White", PersonOrg: "ABC"})
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range res.Activities {
		fmt.Printf("EIL: deal %s; People tab by category:\n", a.DealID)
		for _, p := range a.Synopsis.People {
			fmt.Printf("  %-24s %-22s %s\n", p.Name, p.Role, p.Category)
		}
	}

	// Meta-query 3 (36%): "Who has worked in the capacity of <this role>?"
	fmt.Println("\n== MQ3: who has worked as a cross tower TSA? ==")
	fmt.Printf("keyword: %d docs mention the phrase (mostly empty schema fields)\n",
		sys.KeywordCount(`"cross tower TSA"`))
	rows, err := sys.Synopses.Conn().Query(
		`SELECT deal_id, name FROM contacts WHERE LOWER(role) LIKE '%cross tower tsa%' ORDER BY deal_id, name`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EIL directed query: %d people, with their deals:\n", rows.Len())
	for _, r := range rows.Data {
		fmt.Printf("  %-12s %s\n", r[0], r[1])
	}

	// Meta-query 4 (29%): "Who has worked on <this service> that involved
	// <this keyword>?"
	fmt.Println("\n== MQ4: storage deals involving data replication ==")
	res, err = sys.Search(user, core.FormQuery{
		Tower:       "Storage Management Services",
		ExactPhrase: "data replication",
		DocsPerDeal: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range res.Activities {
		fmt.Printf("  %-12s score %.2f %s\n", a.DealID, a.Score, towersOf(a))
		for _, d := range a.Docs {
			fmt.Printf("    %5.2f %s\n", d.Score, d.Path)
		}
	}
}

func towersOf(a core.Activity) string {
	if a.Synopsis == nil {
		return ""
	}
	var towers []string
	for _, tw := range a.Synopsis.Towers {
		if tw.SubTower == "" {
			towers = append(towers, tw.Tower)
		}
	}
	return strings.Join(towers, ", ")
}

// siapiAny builds the subtype-expanded keyword query of Figure 4.
func siapiAny(sys *eil.System, tower string) siapi.Query {
	return siapi.Query{Any: sys.Taxonomy.Expand(tower)}
}
