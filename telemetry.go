package eil

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/runtimetel"
	"repro/internal/slo"
)

// HealthOptions tunes the component checks NewHealth registers.
type HealthOptions struct {
	// Collector, when set, supplies the runtime watermark readings
	// (goroutines, heap); without one the goroutine check falls back to
	// runtime.NumGoroutine and the heap check is skipped.
	Collector *runtimetel.Collector
	// SnapshotInterval is the expected checkpoint cadence; the freshness
	// check degrades when the last checkpoint is older than three times it.
	// Zero disables the freshness check (manual-save deployments).
	SnapshotInterval time.Duration
	// MaxGoroutines is the goroutine watermark (0 = 10000).
	MaxGoroutines int
	// MaxHeapBytes is the heap-live watermark (0 disables the heap check).
	MaxHeapBytes uint64
}

// NewHealth builds the system's readiness registry: the component checks
// /readyz evaluates on every poll. Criticality mirrors what each failure
// means for traffic — a missing index or dead journal makes answers wrong
// or lossy (critical, "unready"), while an open breaker or stale snapshot
// means the resilience envelope is already serving reduced answers
// (non-critical, "degraded" — still a 503 so load balancers drain the
// instance, but the verdict names the softer state).
func (s *System) NewHealth(opts HealthOptions) *health.Registry {
	reg := health.NewRegistry(s.Metrics)
	if opts.MaxGoroutines <= 0 {
		opts.MaxGoroutines = 10000
	}

	reg.Register("index", true, func() health.Result {
		if s.Index == nil {
			return health.Failedf("no index attached")
		}
		return health.OKf("%d docs, epoch %d", s.Index.DocCount(), s.Index.Generation())
	})

	for _, backend := range []string{core.BackendSynopsis, core.BackendSIAPI} {
		backend := backend
		reg.Register("breaker:"+backend, false, func() health.Result {
			if s.Engine == nil {
				return health.OKf("no engine")
			}
			switch state := s.Engine.BreakerState(backend); state {
			case "open":
				return health.Degradedf("circuit open; searches degrade around %s", backend)
			case "half-open":
				return health.Degradedf("circuit half-open; probing %s", backend)
			default:
				return health.OKf("closed")
			}
		})
	}

	reg.Register("wal", true, func() health.Result {
		enabled, err := s.WALProbe()
		if !enabled {
			return health.OKf("journal not configured")
		}
		if err != nil {
			return health.Failedf("journal not appendable: %v", err)
		}
		return health.OKf("appendable")
	})

	reg.Register("snapshots", false, func() health.Result {
		gen, at := s.LastCheckpoint()
		if opts.SnapshotInterval <= 0 || at.IsZero() {
			return health.OKf("gen %d; periodic checkpointing not configured", gen)
		}
		age := time.Since(at)
		if age > 3*opts.SnapshotInterval {
			return health.Degradedf("gen %d is %s old (expected every %s)", gen, age.Round(time.Second), opts.SnapshotInterval)
		}
		return health.OKf("gen %d, %s old", gen, age.Round(time.Second))
	})

	reg.Register("goroutines", false, func() health.Result {
		n := runtime.NumGoroutine()
		if opts.Collector != nil {
			if smp, ok := opts.Collector.Latest(); ok {
				n = smp.Goroutines
			}
		}
		if n > opts.MaxGoroutines {
			return health.Degradedf("%d goroutines (watermark %d); likely a leak", n, opts.MaxGoroutines)
		}
		return health.OKf("%d goroutines", n)
	})

	if opts.MaxHeapBytes > 0 && opts.Collector != nil {
		reg.Register("heap", false, func() health.Result {
			smp, ok := opts.Collector.Latest()
			if !ok {
				return health.OKf("no sample yet")
			}
			if smp.HeapLiveBytes > opts.MaxHeapBytes {
				return health.Degradedf("heap live %d bytes over watermark %d", smp.HeapLiveBytes, opts.MaxHeapBytes)
			}
			return health.OKf("heap live %d bytes", smp.HeapLiveBytes)
		})
	}

	return reg
}

// NewHealth builds the cluster's readiness registry: one index and WAL
// check per shard, plus per-backend breaker checks that walk every shard's
// circuit — the cluster reports degraded as soon as any shard's breaker is
// not closed, because searches are already serving reduced answers around
// that shard.
func (c *Cluster) NewHealth(opts HealthOptions) *health.Registry {
	reg := health.NewRegistry(c.Metrics)
	if opts.MaxGoroutines <= 0 {
		opts.MaxGoroutines = 10000
	}

	for i, s := range c.Shards {
		i, s := i, s
		reg.Register(fmt.Sprintf("index:shard-%d", i), true, func() health.Result {
			if s.Index == nil {
				return health.Failedf("no index attached")
			}
			return health.OKf("%d docs, epoch %d", s.Index.DocCount(), s.Index.Generation())
		})
		reg.Register(fmt.Sprintf("wal:shard-%d", i), true, func() health.Result {
			enabled, err := s.WALProbe()
			if !enabled {
				return health.OKf("journal not configured")
			}
			if err != nil {
				return health.Failedf("journal not appendable: %v", err)
			}
			return health.OKf("appendable")
		})
	}

	for _, backend := range []string{core.BackendSynopsis, core.BackendSIAPI} {
		backend := backend
		reg.Register("breaker:"+backend, false, func() health.Result {
			if c.Engine == nil {
				return health.OKf("no engine")
			}
			open, probing := 0, 0
			for _, state := range c.Engine.ShardBreakerStates(backend) {
				switch state {
				case "open":
					open++
				case "half-open":
					probing++
				}
			}
			switch {
			case open > 0:
				return health.Degradedf("%d of %d shard circuits open; searches degrade around them", open, len(c.Shards))
			case probing > 0:
				return health.Degradedf("%d of %d shard circuits half-open; probing", probing, len(c.Shards))
			default:
				return health.OKf("all %d shard circuits closed", len(c.Shards))
			}
		})
	}

	reg.Register("snapshots", false, func() health.Result {
		var oldest time.Time
		var gen uint64
		configured := false
		for _, s := range c.Shards {
			g, at := s.LastCheckpoint()
			gen = g
			if at.IsZero() {
				continue
			}
			configured = true
			if oldest.IsZero() || at.Before(oldest) {
				oldest = at
			}
		}
		if opts.SnapshotInterval <= 0 || !configured {
			return health.OKf("gen %d; periodic checkpointing not configured", gen)
		}
		age := time.Since(oldest)
		if age > 3*opts.SnapshotInterval {
			return health.Degradedf("oldest shard checkpoint is %s old (expected every %s)", age.Round(time.Second), opts.SnapshotInterval)
		}
		return health.OKf("oldest shard checkpoint %s old", age.Round(time.Second))
	})

	reg.Register("goroutines", false, func() health.Result {
		n := runtime.NumGoroutine()
		if opts.Collector != nil {
			if smp, ok := opts.Collector.Latest(); ok {
				n = smp.Goroutines
			}
		}
		if n > opts.MaxGoroutines {
			return health.Degradedf("%d goroutines (watermark %d); likely a leak", n, opts.MaxGoroutines)
		}
		return health.OKf("%d goroutines", n)
	})

	if opts.MaxHeapBytes > 0 && opts.Collector != nil {
		reg.Register("heap", false, func() health.Result {
			smp, ok := opts.Collector.Latest()
			if !ok {
				return health.OKf("no sample yet")
			}
			if smp.HeapLiveBytes > opts.MaxHeapBytes {
				return health.Degradedf("heap live %d bytes over watermark %d", smp.HeapLiveBytes, opts.MaxHeapBytes)
			}
			return health.OKf("heap live %d bytes", smp.HeapLiveBytes)
		})
	}

	return reg
}

// AppSampler is the cluster-side runtimetel sampler: same one-screen
// numbers as System.AppSampler, with breakers_open counting every shard's
// circuits across both backend hops.
func (c *Cluster) AppSampler(sloEng *slo.Engine) func(prev, cur *runtimetel.Sample) {
	return func(prev, cur *runtimetel.Sample) {
		if sloEng != nil {
			sloEng.Tick(cur.Time)
		}
		app := map[string]float64{}
		if c.Metrics != nil {
			h := c.Metrics.Histogram("http_requests_overall_seconds", nil)
			count := float64(h.Count())
			app["http_requests_total"] = count
			app["http_p99_seconds"] = h.Quantile(0.99)
			if prev != nil && prev.App != nil {
				if dt := cur.Time.Sub(prev.Time).Seconds(); dt > 0 {
					if d := count - prev.App["http_requests_total"]; d >= 0 {
						app["qps"] = d / dt
					}
				}
			}
		}
		if sloEng != nil {
			app["slo_burn"] = sloEng.PeakBurn()
		}
		if c.Engine != nil {
			open := 0.0
			for _, b := range []string{core.BackendSynopsis, core.BackendSIAPI} {
				for _, state := range c.Engine.ShardBreakerStates(b) {
					if state != "closed" {
						open++
					}
				}
			}
			app["breakers_open"] = open
		}
		cur.App = app
	}
}

// AppSampler returns a runtimetel AppSampler that folds the application's
// one-screen numbers into every runtime sample: aggregate QPS and p99 from
// the HTTP middleware's overall histogram, the SLO engine's peak burn rate,
// and how many circuit breakers are currently not closed. It also drives
// the SLO engine's tick, so one goroutine (the collector's) paces the whole
// judgment layer.
func (s *System) AppSampler(sloEng *slo.Engine) func(prev, cur *runtimetel.Sample) {
	return func(prev, cur *runtimetel.Sample) {
		if sloEng != nil {
			sloEng.Tick(cur.Time)
		}
		app := map[string]float64{}
		if s.Metrics != nil {
			h := s.Metrics.Histogram("http_requests_overall_seconds", nil)
			count := float64(h.Count())
			app["http_requests_total"] = count
			app["http_p99_seconds"] = h.Quantile(0.99)
			if prev != nil && prev.App != nil {
				if dt := cur.Time.Sub(prev.Time).Seconds(); dt > 0 {
					if d := count - prev.App["http_requests_total"]; d >= 0 {
						app["qps"] = d / dt
					}
				}
			}
		}
		if sloEng != nil {
			app["slo_burn"] = sloEng.PeakBurn()
		}
		if s.Engine != nil {
			open := 0.0
			for _, b := range []string{core.BackendSynopsis, core.BackendSIAPI} {
				if s.Engine.BreakerState(b) != "closed" {
					open++
				}
			}
			app["breakers_open"] = open
		}
		cur.App = app
	}
}
