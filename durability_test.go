package eil

// System-level durability: the write-ahead journal, crash recovery, and the
// differential acceptance test from the durability design — a system that
// crashed after journaled updates and recovered must answer the same
// queries as one that never crashed, and must keep accepting updates.

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/synth"
)

// queryFingerprint runs a fixed query set and renders the results as one
// comparable string: activity IDs per form query, counts per keyword query.
func queryFingerprint(t *testing.T, sys *System) string {
	t.Helper()
	out := ""
	forms := []core.FormQuery{
		{Tower: "End User Services"},
		{Tower: "Storage Management Services", ExactPhrase: "data replication"},
		{PersonName: synth.PlantedPerson},
		{PersonName: "New Person"},
		{Industry: "Retail"},
	}
	for _, q := range forms {
		res, err := sys.Search(admin(), q)
		if err != nil {
			t.Fatal(err)
		}
		out += "form:"
		for _, a := range res.Activities {
			out += a.DealID + ","
		}
		out += "\n"
	}
	for _, kw := range []string{"services", "data replication", "cross tower TSA"} {
		out += fmt.Sprintf("kw %s: %d\n", kw, sys.KeywordCount(kw))
	}
	return out
}

func TestWALRecoveryDifferential(t *testing.T) {
	// Two identical systems. Both take the same updates; one journals them,
	// "crashes" (its in-memory state is abandoned without a save), and is
	// recovered from snapshot+journal. The recovered system must answer the
	// fixed query set identically to the never-crashed live one — and keep
	// accepting updates (the old restored-systems-are-frozen bug).
	_, live := testSystem(t, Options{})
	dir := t.TempDir()
	if err := live.Save(dir); err != nil {
		t.Fatal(err)
	}
	crashy, err := LoadSystem(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := crashy.EnableWAL(dir, 1); err != nil {
		t.Fatal(err)
	}

	apply := func(s *System) {
		if err := s.AddDocuments(newDealDocs(t, "DEAL JOURNALED")); err != nil {
			t.Fatal(err)
		}
		ids, err := s.Synopses.DealIDs()
		if err != nil || len(ids) == 0 {
			t.Fatalf("deal ids: %v, %v", ids, err)
		}
		if err := s.RemoveDeal(ids[0]); err != nil {
			t.Fatal(err)
		}
		if err := s.Compact(); err != nil {
			t.Fatal(err)
		}
		if err := s.AddDocuments(newDealDocs(t, "DEAL JOURNALED 2")); err != nil {
			t.Fatal(err)
		}
	}
	apply(live)
	apply(crashy)
	// Crash: no Save, no CloseWAL — the journal is all that survives.

	recovered, err := LoadSystem(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := queryFingerprint(t, recovered), queryFingerprint(t, live); got != want {
		t.Fatalf("recovered system diverged from never-crashed one:\nrecovered:\n%s\nlive:\n%s", got, want)
	}
	if recovered.Index.DocCount() != live.Index.DocCount() {
		t.Fatalf("doc count %d vs %d", recovered.Index.DocCount(), live.Index.DocCount())
	}
	// The acceptance bar: a WAL-restored system accepts AddDocuments.
	if err := recovered.AddDocuments(newDealDocs(t, "DEAL POST RECOVERY")); err != nil {
		t.Fatalf("recovered system rejected AddDocuments: %v", err)
	}
	if _, err := recovered.Synopses.Get("DEAL POST RECOVERY"); err != nil {
		t.Fatal(err)
	}
}

func TestWALTornTailRecovered(t *testing.T) {
	// A crash mid-append tears the journal's last record. Recovery must keep
	// every record before the tear and drop the torn tail — not fail.
	_, sys := testSystem(t, Options{})
	dir := t.TempDir()
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := sys.EnableWAL(dir, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddDocuments(newDealDocs(t, "DEAL KEPT")); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddDocuments(newDealDocs(t, "DEAL TORN")); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, durable.WALName)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	recovered, err := LoadSystem(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := recovered.Synopses.Get("DEAL KEPT"); err != nil {
		t.Fatalf("intact journal record lost: %v", err)
	}
	if _, err := recovered.Synopses.Get("DEAL TORN"); err == nil {
		t.Fatal("torn journal record replayed")
	}
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	_, sys := testSystem(t, Options{})
	dir := t.TempDir()
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := sys.EnableWAL(dir, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddDocuments(newDealDocs(t, "DEAL CHECKPOINTED")); err != nil {
		t.Fatal(err)
	}
	gen, err := sys.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := durable.ReplayWAL(dir, durable.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Base != gen || len(rep.Records) != 0 {
		t.Fatalf("journal after checkpoint: base %d (gen %d), %d records", rep.Base, gen, len(rep.Records))
	}
	// And the checkpointed state is the whole state.
	recovered, err := LoadSystem(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := recovered.Synopses.Get("DEAL CHECKPOINTED"); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotFallbackToPreviousGeneration(t *testing.T) {
	// Corrupting the newest generation's index must not lose the system:
	// load falls back to the previous committed generation.
	_, sys := testSystem(t, Options{})
	dir := t.TempDir()
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddDocuments(newDealDocs(t, "DEAL GEN TWO")); err != nil {
		t.Fatal(err)
	}
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "gen-00000002", "index.snap")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	recovered, err := LoadSystem(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Generation() != 1 {
		t.Fatalf("served generation %d, want fallback to 1", recovered.Generation())
	}
	if _, err := recovered.Synopses.Get("DEAL GEN TWO"); err == nil {
		t.Fatal("generation-two state served from corrupt snapshot")
	}
}

func TestLoadSystemCrashMatrix(t *testing.T) {
	// Truncate every durable file in the store at several offsets; LoadSystem
	// must never panic — it recovers (possibly to an older generation) or
	// fails with a typed error.
	_, sys := testSystem(t, Options{})
	dir := t.TempDir()
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := sys.EnableWAL(dir, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddDocuments(newDealDocs(t, "DEAL WAL")); err != nil {
		t.Fatal(err)
	}
	if err := sys.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	var files []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			files = append(files, path)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("store layout: %v", files)
	}
	for _, path := range files {
		pristine, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Truncation points: empty, tiny, mid-file, one byte short.
		for _, n := range []int{0, 1, len(pristine) / 3, len(pristine) / 2, len(pristine) - 1} {
			if n < 0 || n > len(pristine) {
				continue
			}
			if err := os.WriteFile(path, pristine[:n], 0o644); err != nil {
				t.Fatal(err)
			}
			recovered, lerr := LoadSystem(dir, nil) // must not panic
			if lerr != nil {
				if !errors.Is(lerr, durable.ErrNoSnapshot) && !errors.Is(lerr, durable.ErrCorrupt) &&
					!errors.Is(lerr, durable.ErrTorn) && !errors.Is(lerr, durable.ErrVersion) {
					t.Fatalf("%s truncated to %d: untyped error %v", path, n, lerr)
				}
			} else if recovered.Index.DocCount() == 0 {
				t.Fatalf("%s truncated to %d: loaded an empty system", path, n)
			}
		}
		if err := os.WriteFile(path, pristine, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Everything restored: the full state loads again.
	recovered, err := LoadSystem(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := recovered.Synopses.Get("DEAL WAL"); err != nil {
		t.Fatal(err)
	}
}

func TestLoadSystemLegacyLayout(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "index.gob"), []byte("old gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadSystem(dir, nil)
	if !errors.Is(err, ErrLegacySnapshot) {
		t.Fatalf("err = %v, want ErrLegacySnapshot", err)
	}
}

func TestPipelineFormatBumpRejected(t *testing.T) {
	// A pipeline component from a future format must fail the generation
	// with a typed version error (here: the whole load, since there is only
	// one generation).
	_, sys := testSystem(t, Options{})
	dir := t.TempDir()
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Rewrite the pipeline component with a bumped format, re-framed and
	// re-checksummed so only the version check can reject it.
	st, err := durable.OpenStore(dir, durable.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Commit([]durable.Component{
		{Name: "index", Write: func(w io.Writer) error { _, err := sys.Index.WriteTo(w); return err }},
		{Name: "context", Write: func(w io.Writer) error { _, err := sys.Synopses.DB().WriteTo(w); return err }},
		{Name: "pipeline", Write: func(w io.Writer) error {
			return gob.NewEncoder(w).Encode(pipelineSnapshot{Format: pipelineFormat + 1})
		}},
	}); err != nil {
		t.Fatal(err)
	}
	// Remove the older good generation so there is no fallback.
	if err := os.RemoveAll(filepath.Join(dir, "gen-00000001")); err != nil {
		t.Fatal(err)
	}
	_, err = LoadSystem(dir, nil)
	if !errors.Is(err, durable.ErrVersion) && !errors.Is(err, durable.ErrNoSnapshot) {
		t.Fatalf("err = %v, want version/no-snapshot", err)
	}
	if err == nil {
		t.Fatal("future pipeline format loaded")
	}
}
