package eil

// Cluster is the sharded deployment of EIL: the corpus is partitioned by
// hashed deal ID into N self-contained System shards (each with its own
// index, synopsis store, and durability), and every query fans out through
// a scatter-gather core.Engine coordinator. Because a deal's documents and
// synopsis always live on the same shard, the sharded search produces the
// same activity rankings as one monolithic System over the same corpus —
// the differential suite in shard_test.go holds it to that.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/access"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/docmodel"
	"repro/internal/durable"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/qlog"
	"repro/internal/siapi"
	"repro/internal/synopsis"
	"repro/internal/taxonomy"
	"repro/internal/trace"
)

// Cluster is a sharded EIL instance ready to answer queries.
type Cluster struct {
	// Shards are the per-partition systems, in shard order. Their slots
	// never change after construction; mutating methods route by the same
	// hash the searches use.
	Shards []*System
	// Engine is the scatter-gather coordinator (core.Engine with
	// ShardBackends attached); ablations and resilience config tune it
	// directly.
	Engine   *core.Engine
	Taxonomy *taxonomy.Taxonomy
	Access   *access.Controller
	// QueryLog, when set, records every search and its outcome.
	QueryLog *qlog.Log
	// Metrics is the one registry every shard and the coordinator record
	// into — per-shard series carry the "shard" label.
	Metrics *obs.Registry
	Tracer  *trace.Tracer
	// SnapshotKeep is propagated to every shard's snapshot store.
	SnapshotKeep int
}

// shardName returns the canonical name of shard i, used for breaker keys,
// metric labels, and snapshot subdirectories.
func shardName(i int) string { return fmt.Sprintf("shard-%d", i) }

// shardDir returns shard i's snapshot directory under the cluster root.
func shardDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d", i))
}

// clusterManifestName is the cluster-level manifest file naming the shard
// count; each shard keeps its own durable snapshot store underneath.
const clusterManifestName = "cluster.json"

// clusterManifestFormat versions the manifest payload.
const clusterManifestFormat = 1

type clusterManifest struct {
	Format int `json:"format"`
	Shards int `json:"shards"`
}

// IngestSharded runs the offline pipeline once per shard: documents are
// partitioned by hashed deal ID (deal-less documents by path), each
// partition is ingested in parallel into its own System, and the returned
// Cluster's coordinator engine fans searches out across them. All shards
// share one metrics registry, tracer, access controller, and directory.
func IngestSharded(docs []*docmodel.Document, n int, opts Options) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("eil: shard count %d < 1", n)
	}
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	parts := make([][]*docmodel.Document, n)
	for _, d := range docs {
		i := core.ShardForDoc(d.DealID, d.Path, n)
		parts[i] = append(parts[i], d)
	}
	// Split the worker budget across the parallel shard ingests so the
	// total annotator parallelism stays what the caller asked for.
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	perShard := workers / n
	if perShard < 1 {
		perShard = 1
	}
	shards := make([]*System, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sopts := opts
			sopts.Workers = perShard
			shards[i], errs[i] = Ingest(parts[i], sopts)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("eil: shard %d: %w", i, err)
		}
	}
	return newCluster(shards, opts.Access, opts.Metrics, opts.Tracer, opts.DisableScoping), nil
}

// chanReader adapts a bounded channel to analysis.CollectionReader, so a
// shard pipeline can pull documents as the router produces them.
type chanReader struct {
	ch  <-chan *docmodel.Document
	err *error // router's terminal error, readable only after ch closes
}

func (r *chanReader) Next() (*docmodel.Document, error) {
	d, ok := <-r.ch
	if !ok {
		if *r.err != nil {
			return nil, *r.err
		}
		return nil, io.EOF
	}
	return d, nil
}

// IngestShardedFrom is IngestSharded reading from any CollectionReader,
// streaming: a router goroutine pulls documents one at a time and hands
// each to its owning shard over a small bounded channel, while every shard
// runs its ingest pipeline concurrently pulling from its channel. Peak
// memory is the channel buffers plus whatever the pipelines hold in
// flight — a 500k-document corpus never exists as a slice, which is what
// lets the synth streaming generator feed a production-scale sharded
// ingest directly.
func IngestShardedFrom(reader analysis.CollectionReader, n int, opts Options) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("eil: shard count %d < 1", n)
	}
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	perShard := workers / n
	if perShard < 1 {
		perShard = 1
	}

	// The buffer absorbs routing skew (a run of documents for one deal all
	// target the same shard) without letting any shard run far ahead.
	const shardBuf = 64
	chans := make([]chan *docmodel.Document, n)
	var readErr error
	readers := make([]*chanReader, n)
	for i := range chans {
		chans[i] = make(chan *docmodel.Document, shardBuf)
		readers[i] = &chanReader{ch: chans[i], err: &readErr}
	}

	shards := make([]*System, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sopts := opts
			sopts.Workers = perShard
			shards[i], errs[i] = IngestFrom(readers[i], sopts)
			// Keep draining after a pipeline failure so the router can
			// never block forever on this shard's channel.
			for range chans[i] {
			}
		}(i)
	}

	// Route on this goroutine: the source reader sees single-goroutine
	// pulls, exactly like the monolithic pipeline gives it. Writing
	// readErr before closing the channels publishes it to the chanReaders
	// (channel close is the synchronization edge).
	for {
		d, err := reader.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			readErr = fmt.Errorf("eil: read: %w", err)
			break
		}
		if d == nil {
			break
		}
		chans[core.ShardForDoc(d.DealID, d.Path, n)] <- d
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("eil: shard %d: %w", i, err)
		}
	}
	return newCluster(shards, opts.Access, opts.Metrics, opts.Tracer, opts.DisableScoping), nil
}

// newCluster wires N ingested or restored shard systems into a serving
// cluster: one coordinator engine whose ShardBackends read each shard's
// live (compaction-swappable) document engine.
func newCluster(shards []*System, ctl *access.Controller, metrics *obs.Registry, tracer *trace.Tracer, disableScoping bool) *Cluster {
	backends := make([]core.ShardBackend, len(shards))
	for i, s := range shards {
		backends[i] = core.ShardBackend{
			Name:     shardName(i),
			Synopses: s.Synopses,
			Docs:     s.siapi,
		}
	}
	c := &Cluster{
		Shards:   shards,
		Taxonomy: shards[0].Taxonomy,
		Access:   ctl,
		Metrics:  metrics,
		Tracer:   tracer,
	}
	c.Engine = &core.Engine{
		Access:         ctl,
		Tax:            c.Taxonomy,
		DisableScoping: disableScoping,
		Metrics:        metrics,
		Shards:         backends,
	}
	return c
}

// Registry returns the shared metrics registry (the web layer's Backend
// surface).
func (c *Cluster) Registry() *obs.Registry { return c.Metrics }

// RequestTracer returns the request tracer, nil when tracing is off.
func (c *Cluster) RequestTracer() *trace.Tracer { return c.Tracer }

// Log returns the query log, nil when logging is off.
func (c *Cluster) Log() *qlog.Log { return c.QueryLog }

// CoreEngine returns the coordinator engine (the dashboard's per-shard
// breaker view).
func (c *Cluster) CoreEngine() *core.Engine { return c.Engine }

// Search runs a business-activity driven search across every shard.
func (c *Cluster) Search(user access.User, q core.FormQuery) (core.Result, error) {
	return c.SearchCtx(context.Background(), user, q)
}

// SearchCtx is Search under the caller's context.
func (c *Cluster) SearchCtx(ctx context.Context, user access.User, q core.FormQuery) (core.Result, error) {
	t := obs.StartTimer()
	res, err := c.Engine.SearchCtx(ctx, user, q)
	c.logForm(ctx, user, q, res, err, t.Elapsed())
	return res, err
}

// SearchExplain runs the scatter-gather search in explain mode: the span
// tree carries one child span per shard under each scatter stage.
func (c *Cluster) SearchExplain(ctx context.Context, user access.User, q core.FormQuery) (core.Result, *core.Explanation, error) {
	t := obs.StartTimer()
	res, ex, err := c.Engine.SearchExplain(ctx, user, q)
	c.logForm(ctx, user, q, res, err, t.Elapsed())
	return res, ex, err
}

func (c *Cluster) logForm(ctx context.Context, user access.User, q core.FormQuery, res core.Result, err error, latency time.Duration) {
	if err != nil || c.QueryLog == nil {
		return
	}
	c.QueryLog.Record(qlog.Entry{
		User:       user.ID,
		Kind:       qlog.KindForm,
		Summary:    formSummary(q),
		Concepts:   formConcepts(q),
		Activities: len(res.Activities),
		Fallback:   res.UnscopedFallback,
		Latency:    latency,
		TraceID:    trace.ID(ctx),
	})
}

// epoch joins every shard's index generation; it keys stats-scored cache
// entries on the shards so a write anywhere invalidates them.
func (c *Cluster) epoch() string {
	var b []byte
	for i, s := range c.Shards {
		if i > 0 {
			b = append(b, '-')
		}
		b = fmt.Appendf(b, "%d", s.siapi().Generation())
	}
	return string(b)
}

// keywordStats scatters stats collection for the keyword query and merges;
// a shard that fails to report simply scores its own hits locally (the
// keyword baseline has no degraded flag to set).
func (c *Cluster) keywordStats(ctx context.Context, kq siapi.Query) *index.Stats {
	outs := make([]*index.Stats, len(c.Shards))
	var wg sync.WaitGroup
	for i, s := range c.Shards {
		wg.Add(1)
		go func(i int, s *System) {
			defer wg.Done()
			outs[i], _ = s.siapi().TryCollectStatsCtx(ctx, kq)
		}(i, s)
	}
	wg.Wait()
	var merged *index.Stats
	for _, st := range outs {
		if st == nil {
			continue
		}
		if merged == nil {
			merged = st
		} else {
			merged.Merge(st)
		}
	}
	return merged
}

// KeywordSearch is the search-box baseline over the whole cluster.
func (c *Cluster) KeywordSearch(query string, limit int) []siapi.DocHit {
	return c.KeywordSearchCtx(context.Background(), query, limit)
}

// KeywordSearchCtx scatters the keyword query with merged cluster-global
// statistics, so each document's score is what the monolithic index would
// assign, and merges the per-shard pages into one ranking (score
// descending, ties by path).
func (c *Cluster) KeywordSearchCtx(ctx context.Context, query string, limit int) []siapi.DocHit {
	kq := siapi.ParseKeywords(query)
	t := obs.StartTimer()
	epoch := c.epoch()
	st := c.keywordStats(ctx, kq)
	pages := make([][]siapi.DocHit, len(c.Shards))
	var wg sync.WaitGroup
	for i, s := range c.Shards {
		wg.Add(1)
		go func(i int, s *System) {
			defer wg.Done()
			pages[i], _ = s.siapi().TrySearchStatsCtx(ctx, kq, limit, st, epoch)
		}(i, s)
	}
	wg.Wait()
	var hits []siapi.DocHit
	for _, p := range pages {
		hits = append(hits, p...)
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Path < hits[j].Path
	})
	if limit > 0 && len(hits) > limit {
		hits = hits[:limit]
	}
	latency := t.Elapsed()
	if c.QueryLog != nil {
		c.QueryLog.Record(qlog.Entry{
			Kind:       qlog.KindKeyword,
			Summary:    query,
			Activities: c.keywordCount(kq),
			Latency:    latency,
			TraceID:    trace.ID(ctx),
		})
	}
	return hits
}

// KeywordCount sums the per-shard match counts (partitions are disjoint).
func (c *Cluster) KeywordCount(query string) int {
	return c.keywordCount(siapi.ParseKeywords(query))
}

func (c *Cluster) keywordCount(kq siapi.Query) int {
	total := 0
	for _, s := range c.Shards {
		total += s.siapi().Count(kq)
	}
	return total
}

// shardFor returns the shard system owning dealID.
func (c *Cluster) shardFor(dealID string) *System {
	return c.Shards[core.ShardFor(dealID, len(c.Shards))]
}

// Deal fetches one deal synopsis from its owning shard, subject to the
// user's access level.
func (c *Cluster) Deal(user access.User, dealID string) (synopsis.Deal, error) {
	if c.Access != nil && !c.Access.CanSeeSynopsis(user, dealID) {
		return synopsis.Deal{}, fmt.Errorf("%w: %s", synopsis.ErrNotFound, dealID)
	}
	return c.shardFor(dealID).Synopses.Get(dealID)
}

// Explore searches within one activity's documents on its owning shard,
// scored against cluster-global statistics.
func (c *Cluster) Explore(user access.User, dealID string, q core.FormQuery) ([]siapi.DocHit, error) {
	return c.ExploreCtx(context.Background(), user, dealID, q)
}

// ExploreCtx is Explore under the caller's context.
func (c *Cluster) ExploreCtx(ctx context.Context, user access.User, dealID string, q core.FormQuery) ([]siapi.DocHit, error) {
	return c.Engine.ExploreCtx(ctx, user, dealID, q)
}

// SimilarDeals fetches the reference deal from its owning shard, scatters
// the similarity scan to every shard, and merges the per-shard rankings —
// similarity is pairwise against the reference, so the merged top-k equals
// the monolithic ranking. Results are filtered to activities the user may
// at least see synopses of.
func (c *Cluster) SimilarDeals(user access.User, dealID string, k int) ([]synopsis.SimilarHit, error) {
	if c.Access != nil && !c.Access.CanSeeSynopsis(user, dealID) {
		return nil, fmt.Errorf("%w: %s", synopsis.ErrNotFound, dealID)
	}
	ref, err := c.shardFor(dealID).Synopses.Get(dealID)
	if err != nil {
		return nil, err
	}
	if k <= 0 {
		k = 5
	}
	pages := make([][]synopsis.SimilarHit, len(c.Shards))
	errs := make([]error, len(c.Shards))
	var wg sync.WaitGroup
	for i, s := range c.Shards {
		wg.Add(1)
		go func(i int, s *System) {
			defer wg.Done()
			pages[i], errs[i] = s.Synopses.SimilarTo(ref, k)
		}(i, s)
	}
	wg.Wait()
	var hits []synopsis.SimilarHit
	for i, page := range pages {
		if errs[i] != nil {
			return nil, errs[i]
		}
		hits = append(hits, page...)
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].DealID < hits[j].DealID
	})
	if c.Access != nil {
		visible := hits[:0]
		for _, h := range hits {
			if c.Access.CanSeeSynopsis(user, h.DealID) {
				visible = append(visible, h)
			}
		}
		hits = visible
	}
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits, nil
}

// AddDocuments splits the batch by shard and applies each sub-batch to its
// owning shard. Sub-batches are independent (disjoint deals), so a failure
// in one shard leaves the others' sub-batches fully applied; the error
// names the failing shard.
func (c *Cluster) AddDocuments(docs []*docmodel.Document) error {
	n := len(c.Shards)
	parts := make([][]*docmodel.Document, n)
	for _, d := range docs {
		i := core.ShardForDoc(d.DealID, d.Path, n)
		parts[i] = append(parts[i], d)
	}
	for i, part := range parts {
		if len(part) == 0 {
			continue
		}
		if err := c.Shards[i].AddDocuments(part); err != nil {
			return fmt.Errorf("eil: shard %d: %w", i, err)
		}
	}
	return nil
}

// RemoveDeal withdraws an activity from its owning shard.
func (c *Cluster) RemoveDeal(dealID string) error {
	return c.shardFor(dealID).RemoveDeal(dealID)
}

// Compact rebuilds every shard's index without tombstones. Each swap is
// atomic per shard; searches during Compact see each shard either before
// or after its swap, both of which answer identically. The error names
// the first shard whose compaction was refused.
func (c *Cluster) Compact() error {
	for i, s := range c.Shards {
		if err := s.Compact(); err != nil {
			return fmt.Errorf("eil: shard %d: %w", i, err)
		}
	}
	return nil
}

// Generations reports each shard's committed snapshot generation.
func (c *Cluster) Generations() []uint64 {
	out := make([]uint64, len(c.Shards))
	for i, s := range c.Shards {
		out[i] = s.Generation()
	}
	return out
}

// writeManifest persists the cluster manifest naming the shard count.
func (c *Cluster) writeManifest(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("eil: save cluster: %w", err)
	}
	err := durable.WriteFileAtomic(nil, filepath.Join(dir, clusterManifestName), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(clusterManifest{Format: clusterManifestFormat, Shards: len(c.Shards)})
	})
	if err != nil {
		return fmt.Errorf("eil: save cluster: %w", err)
	}
	return nil
}

// Save persists the whole cluster under dir: the cluster manifest plus one
// durable snapshot store per shard (shard-NNNN subdirectories).
func (c *Cluster) Save(dir string) error {
	_, err := c.Checkpoint(dir)
	return err
}

// Checkpoint is Save returning each shard's committed generation. Shards
// checkpoint independently; a failure aborts with the earlier shards
// already committed (their stores are self-consistent — LoadCluster loads
// each shard's last committed generation).
func (c *Cluster) Checkpoint(dir string) ([]uint64, error) {
	if err := c.writeManifest(dir); err != nil {
		return nil, err
	}
	gens := make([]uint64, len(c.Shards))
	for i, s := range c.Shards {
		s.SnapshotKeep = c.SnapshotKeep
		gen, err := s.Checkpoint(shardDir(dir, i))
		if err != nil {
			return nil, fmt.Errorf("eil: shard %d: %w", i, err)
		}
		gens[i] = gen
	}
	return gens, nil
}

// EnableWAL attaches a write-ahead journal to every shard, rooted in its
// snapshot subdirectory, so cluster updates are crash-durable per shard.
func (c *Cluster) EnableWAL(dir string, syncEvery int) error {
	if err := c.writeManifest(dir); err != nil {
		return err
	}
	for i, s := range c.Shards {
		if err := s.EnableWAL(shardDir(dir, i), syncEvery); err != nil {
			return fmt.Errorf("eil: shard %d: %w", i, err)
		}
	}
	return nil
}

// CloseWAL detaches every shard's journal.
func (c *Cluster) CloseWAL() error {
	var first error
	for i, s := range c.Shards {
		if err := s.CloseWAL(); err != nil && first == nil {
			first = fmt.Errorf("eil: shard %d: %w", i, err)
		}
	}
	return first
}

// LoadCluster restores a cluster saved with Save: the manifest names the
// shard count, and each shard recovers independently (last good snapshot
// generation plus its journal tail). All shards share one fresh metrics
// registry; the access controller is supplied by the caller.
func LoadCluster(dir string, ctl *access.Controller) (*Cluster, error) {
	raw, err := os.ReadFile(filepath.Join(dir, clusterManifestName))
	if err != nil {
		return nil, fmt.Errorf("eil: load cluster %s: %w", dir, err)
	}
	var m clusterManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("eil: load cluster %s: %w", dir, err)
	}
	if m.Format != clusterManifestFormat {
		return nil, fmt.Errorf("eil: load cluster %s: unsupported manifest format %d", dir, m.Format)
	}
	if m.Shards < 1 {
		return nil, errors.New("eil: load cluster: manifest names no shards")
	}
	metrics := obs.NewRegistry()
	shards := make([]*System, m.Shards)
	for i := range shards {
		sys, err := loadSystemWith(shardDir(dir, i), ctl, metrics)
		if err != nil {
			return nil, fmt.Errorf("eil: shard %d: %w", i, err)
		}
		shards[i] = sys
	}
	return newCluster(shards, ctl, metrics, nil, false), nil
}

// IsCluster reports whether dir holds a cluster (vs a single-system)
// snapshot, so CLI tools can auto-detect the layout.
func IsCluster(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, clusterManifestName))
	return err == nil
}
