// Package lru provides a small epoch-invalidated LRU cache for query
// results. The epoch is an external generation counter (for EIL, the index
// or synopsis-store mutation count): every entry is stored under the epoch
// current at compute time, and the first access at a newer epoch flushes the
// whole cache. That makes invalidation free for writers — they bump a
// counter and never touch the cache — at the cost of a cold cache after
// every write, the right trade for EIL's read-heavy, slowly-changing corpus.
package lru

import "sync"

// Cache is a fixed-capacity LRU keyed by K, safe for concurrent use.
type Cache[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	epoch uint64
	items map[K]*entry[K, V]
	// Doubly-linked use list; head is most recent, tail least.
	head, tail *entry[K, V]
}

type entry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *entry[K, V]
}

// New returns a cache holding at most capacity entries (minimum 1).
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[K, V]{cap: capacity, items: make(map[K]*entry[K, V], capacity)}
}

// Get returns the value cached for key, if it was stored at the given
// epoch. A newer epoch flushes the cache (every entry is stale) and
// misses; an older epoch — a reader that observed the counter before a
// concurrent writer bumped it — misses without disturbing newer entries.
func (c *Cache[K, V]) Get(key K, epoch uint64) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch != c.epoch {
		if epoch > c.epoch {
			c.flush(epoch)
		}
		var zero V
		return zero, false
	}
	e, ok := c.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.moveToFront(e)
	return e.val, true
}

// Put stores key→val computed at the given epoch. Values from epochs older
// than the cache's are dropped (they may already be stale); a newer epoch
// flushes first.
func (c *Cache[K, V]) Put(key K, epoch uint64, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch != c.epoch {
		if epoch < c.epoch {
			return
		}
		c.flush(epoch)
	}
	if e, ok := c.items[key]; ok {
		e.val = val
		c.moveToFront(e)
		return
	}
	e := &entry[K, V]{key: key, val: val}
	c.items[key] = e
	c.pushFront(e)
	if len(c.items) > c.cap {
		c.evict(c.tail)
	}
}

// Len reports the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

func (c *Cache[K, V]) flush(epoch uint64) {
	c.epoch = epoch
	clear(c.items)
	c.head, c.tail = nil, nil
}

func (c *Cache[K, V]) pushFront(e *entry[K, V]) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache[K, V]) moveToFront(e *entry[K, V]) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *Cache[K, V]) evict(e *entry[K, V]) {
	if e == nil {
		return
	}
	c.unlink(e)
	delete(c.items, e.key)
}
