package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New[string, int](2)
	if _, ok := c.Get("a", 0); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 0, 1)
	c.Put("b", 0, 2)
	if v, ok := c.Get("a", 0); !ok || v != 1 {
		t.Fatalf("a = %d, %v", v, ok)
	}
	// "a" is now most recent; inserting "c" evicts "b".
	c.Put("c", 0, 3)
	if _, ok := c.Get("b", 0); ok {
		t.Fatal("b survived eviction")
	}
	if v, ok := c.Get("a", 0); !ok || v != 1 {
		t.Fatalf("a evicted wrongly: %d, %v", v, ok)
	}
	if v, ok := c.Get("c", 0); !ok || v != 3 {
		t.Fatalf("c = %d, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestPutUpdatesExisting(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 0, 1)
	c.Put("a", 0, 9)
	if v, _ := c.Get("a", 0); v != 9 {
		t.Fatalf("a = %d, want 9", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestEpochFlush(t *testing.T) {
	c := New[string, int](4)
	c.Put("a", 1, 1)
	// A newer epoch flushes everything and misses.
	if _, ok := c.Get("a", 2); ok {
		t.Fatal("stale entry served at newer epoch")
	}
	if c.Len() != 0 {
		t.Fatalf("cache not flushed: Len = %d", c.Len())
	}
	// A stale writer (epoch already passed) must not pollute the cache.
	c.Put("b", 1, 2)
	if _, ok := c.Get("b", 2); ok {
		t.Fatal("stale Put was stored")
	}
	// A stale reader misses without flushing newer entries.
	c.Put("c", 2, 3)
	if _, ok := c.Get("c", 1); ok {
		t.Fatal("newer entry served to stale reader")
	}
	if v, ok := c.Get("c", 2); !ok || v != 3 {
		t.Fatalf("current entry lost: %d, %v", v, ok)
	}
}

func TestCapacityFloor(t *testing.T) {
	c := New[int, int](0)
	c.Put(1, 0, 1)
	if v, ok := c.Get(1, 0); !ok || v != 1 {
		t.Fatalf("minimum capacity broken: %d, %v", v, ok)
	}
}

func TestConcurrent(t *testing.T) {
	c := New[string, int](32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%50)
				epoch := uint64(i / 100)
				c.Put(key, epoch, i)
				c.Get(key, epoch)
			}
		}(w)
	}
	wg.Wait()
}
