// Package qlog is EIL's query log: a bounded in-memory record of searches
// and their outcomes. The paper's evaluation method — "analyzing a
// collection of queries and results" — and its plan to improve the system
// "as more data becomes available and additional evaluation is performed"
// both need this telemetry: which concepts people ask for, which queries
// return nothing, and how often the unscoped fallback fires.
package qlog

import (
	"sort"
	"sync"
	"time"

	"repro/internal/quantile"
)

// Kind classifies a logged query.
type Kind string

// Query kinds.
const (
	KindForm    Kind = "form"    // business-activity driven search
	KindKeyword Kind = "keyword" // search-box baseline
)

// Entry is one logged query.
type Entry struct {
	Time       time.Time
	User       string
	Kind       Kind
	Summary    string // human-readable rendering of the query
	Concepts   []string
	Activities int  // activities (or matching documents, for keyword) returned
	Fallback   bool // the unscoped SIAPI fallback fired
	// Latency is the end-to-end search duration, when the caller measured
	// one (zero otherwise).
	Latency time.Duration
	// TraceID links the entry to a retained trace when the request was
	// traced (empty otherwise) — the bridge from "this query was slow" to
	// "here is where its time went".
	TraceID string
}

// Log is a bounded ring of entries, safe for concurrent use.
type Log struct {
	mu      sync.Mutex
	entries []Entry
	next    int
	full    bool
	cap     int
}

// New returns a log keeping the most recent capacity entries (minimum 16).
func New(capacity int) *Log {
	if capacity < 16 {
		capacity = 16
	}
	return &Log{entries: make([]Entry, capacity), cap: capacity}
}

// Record appends an entry, evicting the oldest when full. A zero Time is
// stamped with the current time.
func (l *Log) Record(e Entry) {
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries[l.next] = e
	l.next++
	if l.next == l.cap {
		l.next = 0
		l.full = true
	}
}

// Entries returns the logged entries, oldest first.
func (l *Log) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.full {
		out := make([]Entry, l.next)
		copy(out, l.entries[:l.next])
		return out
	}
	out := make([]Entry, 0, l.cap)
	out = append(out, l.entries[l.next:]...)
	out = append(out, l.entries[:l.next]...)
	return out
}

// Len reports the number of retained entries.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.full {
		return l.cap
	}
	return l.next
}

// Slowest returns up to k retained entries that carried a measured latency,
// slowest first (k <= 0 means 10).
func (l *Log) Slowest(k int) []Entry {
	if k <= 0 {
		k = 10
	}
	var out []Entry
	for _, e := range l.Entries() {
		if e.Latency > 0 {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Latency > out[j].Latency })
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// ConceptCount is one concept with its query frequency.
type ConceptCount struct {
	Concept string
	Count   int
}

// Summary aggregates the retained entries.
type Summary struct {
	Total     int
	Zero      int // queries returning nothing
	Fallbacks int // unscoped-fallback queries
	Keyword   int // search-box queries
	// AvgLatency and MaxLatency aggregate the entries that carried a
	// measured latency (zero when none did).
	AvgLatency time.Duration
	MaxLatency time.Duration
	// P50/P95/P99Latency are quantiles over the same entries, read from the
	// relative-error sketch the load generator's phase reports also use
	// (internal/quantile), so a qlog p99 and a loadgen p99 are the same
	// estimator: guaranteed within ±0.5% of the true value, not a fixed
	// histogram bucket's edge. The window is still the log's ring — the
	// sketch is rebuilt from the retained entries on every Summarize.
	P50Latency  time.Duration
	P95Latency  time.Duration
	P99Latency  time.Duration
	TopConcepts []ConceptCount
}

// Summarize computes the summary over the retained entries; top concepts
// are capped at topK (<= 0 means 10).
func (l *Log) Summarize(topK int) Summary {
	if topK <= 0 {
		topK = 10
	}
	var s Summary
	counts := map[string]int{}
	var latSum time.Duration
	var latN int
	sk := quantile.New(0.005, 0)
	for _, e := range l.Entries() {
		s.Total++
		if e.Activities == 0 {
			s.Zero++
		}
		if e.Fallback {
			s.Fallbacks++
		}
		if e.Kind == KindKeyword {
			s.Keyword++
		}
		if e.Latency > 0 {
			latSum += e.Latency
			latN++
			sk.Observe(e.Latency.Seconds())
			if e.Latency > s.MaxLatency {
				s.MaxLatency = e.Latency
			}
		}
		for _, c := range e.Concepts {
			counts[c]++
		}
	}
	if latN > 0 {
		s.AvgLatency = latSum / time.Duration(latN)
		s.P50Latency = time.Duration(sk.Quantile(0.50) * float64(time.Second))
		s.P95Latency = time.Duration(sk.Quantile(0.95) * float64(time.Second))
		s.P99Latency = time.Duration(sk.Quantile(0.99) * float64(time.Second))
	}
	for c, n := range counts {
		s.TopConcepts = append(s.TopConcepts, ConceptCount{Concept: c, Count: n})
	}
	sort.Slice(s.TopConcepts, func(i, j int) bool {
		if s.TopConcepts[i].Count != s.TopConcepts[j].Count {
			return s.TopConcepts[i].Count > s.TopConcepts[j].Count
		}
		return s.TopConcepts[i].Concept < s.TopConcepts[j].Concept
	})
	if len(s.TopConcepts) > topK {
		s.TopConcepts = s.TopConcepts[:topK]
	}
	return s
}
