package qlog

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRecordAndEntries(t *testing.T) {
	l := New(16)
	l.Record(Entry{Kind: KindForm, Summary: "tower=EUS", Concepts: []string{"End User Services"}, Activities: 3})
	l.Record(Entry{Kind: KindKeyword, Summary: "cross tower TSA", Activities: 0})
	entries := l.Entries()
	if len(entries) != 2 || l.Len() != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	if entries[0].Summary != "tower=EUS" || entries[1].Kind != KindKeyword {
		t.Fatalf("order wrong: %+v", entries)
	}
	if entries[0].Time.IsZero() {
		t.Fatal("time not stamped")
	}
}

func TestRingEviction(t *testing.T) {
	l := New(16)
	for i := 0; i < 40; i++ {
		l.Record(Entry{Summary: fmt.Sprintf("q%02d", i)})
	}
	entries := l.Entries()
	if len(entries) != 16 || l.Len() != 16 {
		t.Fatalf("retained = %d", len(entries))
	}
	if entries[0].Summary != "q24" || entries[15].Summary != "q39" {
		t.Fatalf("ring order wrong: first=%s last=%s", entries[0].Summary, entries[15].Summary)
	}
}

func TestMinimumCapacity(t *testing.T) {
	l := New(1)
	for i := 0; i < 20; i++ {
		l.Record(Entry{Summary: "x"})
	}
	if l.Len() != 16 {
		t.Fatalf("Len = %d, want the 16 minimum", l.Len())
	}
}

func TestSummarize(t *testing.T) {
	l := New(64)
	for i := 0; i < 5; i++ {
		l.Record(Entry{Kind: KindForm, Concepts: []string{"End User Services"}, Activities: 2})
	}
	l.Record(Entry{Kind: KindForm, Concepts: []string{"Network Services"}, Activities: 0})
	l.Record(Entry{Kind: KindForm, Activities: 1, Fallback: true})
	l.Record(Entry{Kind: KindKeyword, Activities: 9})
	s := l.Summarize(5)
	if s.Total != 8 || s.Zero != 1 || s.Fallbacks != 1 || s.Keyword != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if len(s.TopConcepts) != 2 || s.TopConcepts[0].Concept != "End User Services" || s.TopConcepts[0].Count != 5 {
		t.Fatalf("top concepts = %+v", s.TopConcepts)
	}
	if got := l.Summarize(1); len(got.TopConcepts) != 1 {
		t.Fatalf("topK ignored: %+v", got.TopConcepts)
	}
}

func TestExplicitTimeKept(t *testing.T) {
	l := New(16)
	ts := time.Date(2008, 4, 7, 0, 0, 0, 0, time.UTC)
	l.Record(Entry{Time: ts})
	if !l.Entries()[0].Time.Equal(ts) {
		t.Fatal("explicit time overwritten")
	}
}

func TestConcurrentRecording(t *testing.T) {
	l := New(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Record(Entry{Summary: "q"})
				l.Summarize(3)
			}
		}()
	}
	wg.Wait()
	if l.Len() != 64 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestSummarizeLatency(t *testing.T) {
	l := New(16)
	l.Record(Entry{Kind: KindForm, Activities: 1, Latency: 10 * time.Millisecond})
	l.Record(Entry{Kind: KindForm, Activities: 1, Latency: 30 * time.Millisecond})
	l.Record(Entry{Kind: KindKeyword, Activities: 1}) // unmeasured: excluded
	s := l.Summarize(5)
	if s.AvgLatency != 20*time.Millisecond {
		t.Fatalf("avg = %v", s.AvgLatency)
	}
	if s.MaxLatency != 30*time.Millisecond {
		t.Fatalf("max = %v", s.MaxLatency)
	}
}

func TestSummarizeLatencyQuantiles(t *testing.T) {
	l := New(128)
	// 1ms..100ms, one entry per millisecond. The quantiles come from the
	// shared relative-error sketch, so assert the ±0.5% guarantee (with a
	// hair of slack for the float round-trip), not exact ranks.
	for i := 1; i <= 100; i++ {
		l.Record(Entry{Kind: KindForm, Activities: 1, Latency: time.Duration(i) * time.Millisecond})
	}
	s := l.Summarize(5)
	within := func(got time.Duration, want time.Duration) bool {
		diff := (got - want).Seconds()
		if diff < 0 {
			diff = -diff
		}
		return diff <= 0.006*want.Seconds()
	}
	if !within(s.P50Latency, 50*time.Millisecond) {
		t.Fatalf("p50 = %v, want ~50ms", s.P50Latency)
	}
	if !within(s.P95Latency, 95*time.Millisecond) {
		t.Fatalf("p95 = %v, want ~95ms", s.P95Latency)
	}
	if !within(s.P99Latency, 99*time.Millisecond) {
		t.Fatalf("p99 = %v, want ~99ms", s.P99Latency)
	}
}

func TestSummarizeQuantilesEmpty(t *testing.T) {
	l := New(16)
	l.Record(Entry{Kind: KindForm, Activities: 1}) // no measured latency
	s := l.Summarize(5)
	if s.P50Latency != 0 || s.P99Latency != 0 {
		t.Fatalf("quantiles over zero measured entries = %v/%v, want 0", s.P50Latency, s.P99Latency)
	}
}
