package durable

import (
	"bufio"
	"fmt"
	"io"
	"path/filepath"
)

// WriteFileAtomic writes a file so that a crash at any instruction leaves
// either the old content or the new content at path — never a torn mix.
// The sequence is the full litany: write to a temp file in the same
// directory, flush, fsync the file, rename over the target, fsync the
// directory so the rename itself is durable. It is the shared helper the
// index, relstore, and directory snapshot writers use (each used to
// hand-roll tmp+rename without any fsync).
//
// fs may be nil (the real filesystem).
func WriteFileAtomic(fs FS, path string, write func(io.Writer) error) error {
	if fs == nil {
		fs = OS
	}
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("durable: create %s: %w", tmp, err)
	}
	bw := bufio.NewWriter(f)
	cleanup := func() {
		f.Close()
		fs.Remove(tmp)
	}
	if err := write(bw); err != nil {
		cleanup()
		return err
	}
	if err := bw.Flush(); err != nil {
		cleanup()
		return fmt.Errorf("durable: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("durable: fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return fmt.Errorf("durable: close %s: %w", tmp, err)
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return fmt.Errorf("durable: rename %s: %w", path, err)
	}
	return SyncDir(fs, filepath.Dir(path))
}

// SyncDir fsyncs a directory so a just-renamed or just-created entry
// survives power loss. Filesystems that reject directory fsync (some CI
// overlays do) are tolerated: the error is dropped, matching what SQLite
// and etcd do on such mounts.
func SyncDir(fs FS, dir string) error {
	if fs == nil {
		fs = OS
	}
	d, err := fs.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
