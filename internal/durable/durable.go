// Package durable is EIL's crash-safe persistence layer: the storage-side
// counterpart of the query path's failure model (internal/fault, DESIGN §9).
// The paper's production system "incorporat[ed] more than half a million
// documents from almost 1000 engagements" continuously — state that scale
// cannot be re-ingested after every restart, so incremental state must
// survive a crash at any instruction.
//
// The package provides three building blocks:
//
//   - WriteFileAtomic: the one true atomic-write helper (tmp file + flush +
//     fsync + rename + directory fsync) every snapshot writer in the repo
//     goes through.
//   - Store: a generation-numbered snapshot store. Each generation is a
//     directory of framed, versioned, CRC-checksummed component files; a
//     checksummed MANIFEST records the last fully committed generation, and
//     the previous N generations are retained so a torn or corrupt snapshot
//     falls back to last-good instead of failing the load.
//   - WAL: a write-ahead journal of logical operations since the last
//     committed generation, with per-record checksums and fsync batching.
//     Replay stops cleanly at a torn tail.
//
// Every disk touch goes through the FS seam, so crash-matrix tests inject
// write/sync/rename faults (reusing internal/fault) without patching the
// production code path. The load-side invariant the crash tests enforce:
// load never panics and never returns partial state — it returns the last
// committed generation or a typed error.
package durable

import (
	"errors"
	"fmt"
)

// Typed load failures. Callers branch on these with errors.Is.
var (
	// ErrCorrupt marks a checksum mismatch, bad magic, or structurally
	// impossible framing — the bytes on disk are not a valid container.
	ErrCorrupt = errors.New("durable: corrupt data")
	// ErrTorn marks a container that ends mid-frame: a crash during write
	// (or a truncated copy) tore off the tail.
	ErrTorn = errors.New("durable: torn write")
	// ErrVersion marks a container written by a newer (or older,
	// incompatible) format version than this binary understands.
	ErrVersion = errors.New("durable: unsupported format version")
	// ErrNoSnapshot means no loadable generation exists in the store.
	ErrNoSnapshot = errors.New("durable: no loadable snapshot")
)

// CorruptError wraps ErrCorrupt with the offending location.
type CorruptError struct {
	Path   string
	Detail string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("durable: corrupt %s: %s", e.Path, e.Detail)
}

// Unwrap lets errors.Is(err, ErrCorrupt) match.
func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// VersionError wraps ErrVersion with the versions involved.
type VersionError struct {
	Path string
	Got  uint32
	Want uint32
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("durable: %s: format version %d, this binary supports %d", e.Path, e.Got, e.Want)
}

// Unwrap lets errors.Is(err, ErrVersion) match.
func (e *VersionError) Unwrap() error { return ErrVersion }
