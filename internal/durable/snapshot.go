package durable

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/obs"
)

// SnapshotVersion is the on-disk snapshot container format. Loaders reject
// other versions with a typed *VersionError, never a decode failure.
const SnapshotVersion = 1

// manifestName is the committed-generation marker file.
const manifestName = "MANIFEST"

// DefaultKeep is how many committed generations a store retains when the
// caller does not say: the current one plus one fallback.
const DefaultKeep = 2

// Component is one named piece of a snapshot generation (the semantic
// index, the context database, the pipeline state...).
type Component struct {
	Name string
	// Write serializes the component into w (already framed and
	// checksummed by the store).
	Write func(w io.Writer) error
}

// StoreOptions configures a snapshot store.
type StoreOptions struct {
	// FS is the filesystem seam; nil means the real one.
	FS FS
	// Keep is how many committed generations to retain (0 = DefaultKeep).
	Keep int
	// Metrics receives durable_snapshot_* telemetry; nil disables.
	Metrics *obs.Registry
}

// Store is a generation-numbered snapshot directory:
//
//	MANIFEST            committed-generation marker (framed, checksummed)
//	gen-00000007/       one directory per generation
//	  index.snap        framed, CRC-checksummed component containers
//	  context.snap
//	  ...
//	wal.log             journal of operations since the committed generation
//
// Commit writes a complete new generation, fsyncs it, then atomically
// republishes MANIFEST — so the manifest always names a fully written
// generation, and a crash anywhere leaves the previous one committed.
type Store struct {
	dir     string
	fs      FS
	keep    int
	metrics *obs.Registry
}

// OpenStore opens (creating if needed) the snapshot store rooted at dir.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	fs := opts.FS
	if fs == nil {
		fs = OS
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: open store %s: %w", dir, err)
	}
	keep := opts.Keep
	if keep <= 0 {
		keep = DefaultKeep
	}
	return &Store{dir: dir, fs: fs, keep: keep, metrics: opts.Metrics}, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// manifest is the MANIFEST payload.
type manifest struct {
	Format     int      `json:"format"`
	Generation uint64   `json:"generation"`
	Components []string `json:"components"`
}

func genDirName(gen uint64) string { return fmt.Sprintf("gen-%08d", gen) }

// parseGenDir extracts the generation from a "gen-%08d" directory name.
func parseGenDir(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "gen-") {
		return 0, false
	}
	var gen uint64
	if _, err := fmt.Sscanf(name[len("gen-"):], "%d", &gen); err != nil {
		return 0, false
	}
	return gen, true
}

// generations lists the generation numbers present on disk, ascending.
func (st *Store) generations() ([]uint64, error) {
	entries, err := st.fs.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if gen, ok := parseGenDir(e.Name()); ok {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// readManifest returns the committed manifest, or an error when it is
// missing, torn, or corrupt (the caller falls back to a directory scan).
func (st *Store) readManifest() (*manifest, error) {
	path := filepath.Join(st.dir, manifestName)
	f, err := st.fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fr, err := NewFrameReader(f, path, "manifest", SnapshotVersion)
	if err != nil {
		return nil, err
	}
	payload, err := fr.Next()
	if err != nil {
		return nil, err
	}
	if err := fr.Drain(); err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, &CorruptError{Path: path, Detail: "manifest not decodable"}
	}
	if m.Format != SnapshotVersion {
		return nil, &VersionError{Path: path, Got: uint32(m.Format), Want: SnapshotVersion}
	}
	return &m, nil
}

// Committed returns the last committed generation (0, false when none).
func (st *Store) Committed() (uint64, bool) {
	if m, err := st.readManifest(); err == nil {
		return m.Generation, true
	}
	return 0, false
}

// Commit writes the components as the next generation and publishes it:
// every component file is written atomically (tmp + fsync + rename), the
// generation directory is fsynced, and only then does MANIFEST swing over —
// the commit point. Old generations beyond the retention window are pruned
// afterwards. Returns the new generation number.
func (st *Store) Commit(components []Component) (uint64, error) {
	t := obs.StartTimer()
	var gen uint64 = 1
	if m, err := st.readManifest(); err == nil {
		gen = m.Generation + 1
	} else if gens, err := st.generations(); err == nil && len(gens) > 0 {
		gen = gens[len(gens)-1] + 1
	}

	genDir := filepath.Join(st.dir, genDirName(gen))
	// A crash during an earlier commit of this same generation number can
	// leave a half-written directory behind; clear it so stale component
	// files from the dead attempt cannot survive into this one.
	_ = st.fs.RemoveAll(genDir)
	if err := st.fs.MkdirAll(genDir, 0o755); err != nil {
		return 0, fmt.Errorf("durable: commit gen %d: %w", gen, err)
	}
	var totalBytes int64
	var names []string
	for _, comp := range components {
		path := filepath.Join(genDir, comp.Name+".snap")
		var n int64
		err := WriteFileAtomic(st.fs, path, func(w io.Writer) error {
			cw := &countingWriter{w: w}
			fw, err := NewFrameWriter(cw, "component:"+comp.Name, SnapshotVersion)
			if err != nil {
				return err
			}
			if err := comp.Write(fw); err != nil {
				return fmt.Errorf("durable: component %s: %w", comp.Name, err)
			}
			if err := fw.Close(); err != nil {
				return err
			}
			n = cw.n
			return nil
		})
		if err != nil {
			st.fs.RemoveAll(genDir)
			return 0, err
		}
		totalBytes += n
		names = append(names, comp.Name)
	}
	if err := SyncDir(st.fs, genDir); err != nil {
		return 0, err
	}

	// Commit point: republish the manifest.
	payload, err := json.Marshal(manifest{Format: SnapshotVersion, Generation: gen, Components: names})
	if err != nil {
		return 0, err
	}
	err = WriteFileAtomic(st.fs, filepath.Join(st.dir, manifestName), func(w io.Writer) error {
		fw, err := NewFrameWriter(w, "manifest", SnapshotVersion)
		if err != nil {
			return err
		}
		if err := fw.WriteFrame(payload); err != nil {
			return err
		}
		return fw.Close()
	})
	if err != nil {
		return 0, err
	}
	st.prune(gen)

	st.metrics.Histogram("durable_snapshot_save_seconds", nil).ObserveDuration(t.Elapsed())
	st.metrics.Histogram("durable_snapshot_bytes", obs.DefSizeBuckets).Observe(float64(totalBytes))
	st.metrics.Gauge("durable_snapshot_generation").Set(float64(gen))
	return gen, nil
}

// prune removes generations outside the retention window. Failures are
// ignored: retention is best-effort cleanup, never a commit failure.
func (st *Store) prune(committed uint64) {
	gens, err := st.generations()
	if err != nil {
		return
	}
	for _, g := range gens {
		if g+uint64(st.keep) <= committed {
			_ = st.fs.RemoveAll(filepath.Join(st.dir, genDirName(g)))
		}
	}
}

// ComponentReader streams one component's payload with every frame
// checksum-verified. Callers decode from it, then call Drain to verify any
// trailing frames the decoder did not consume, then Close.
type ComponentReader struct {
	*FrameReader
	f File
}

// Close releases the underlying file.
func (cr *ComponentReader) Close() error { return cr.f.Close() }

// OpenComponent is the per-generation opener Load hands to its callback.
// Opening a component that does not exist returns an error satisfying
// errors.Is(err, os.ErrNotExist), so loaders can skip optional components.
type OpenComponent func(name string) (*ComponentReader, error)

func (st *Store) opener(gen uint64) OpenComponent {
	return func(name string) (*ComponentReader, error) {
		path := filepath.Join(st.dir, genDirName(gen), name+".snap")
		f, err := st.fs.Open(path)
		if err != nil {
			return nil, err
		}
		fr, err := NewFrameReader(f, path, "component:"+name, SnapshotVersion)
		if err != nil {
			f.Close()
			return nil, err
		}
		return &ComponentReader{FrameReader: fr, f: f}, nil
	}
}

// Load restores the last-good generation: it tries the manifest's committed
// generation first, then falls back through older on-disk generations until
// load succeeds. load must build fresh state per attempt (so a mid-decode
// corruption never leaks partial state) and return an error to reject a
// generation. Load returns the generation that served, or ErrNoSnapshot
// (wrapping the last failure) when nothing is loadable.
func (st *Store) Load(load func(gen uint64, open OpenComponent) error) (uint64, error) {
	var candidates []uint64
	seen := map[uint64]bool{}
	m, merr := st.readManifest()
	if merr == nil {
		candidates = append(candidates, m.Generation)
		seen[m.Generation] = true
	} else if !os.IsNotExist(merr) {
		// The manifest exists but is unreadable: that is itself a recovery
		// event, even if a directory scan saves the load.
		st.metrics.Counter("durable_recovery_events_total", "kind", "manifest").Inc()
	}
	gens, err := st.generations()
	if err != nil && merr != nil {
		return 0, fmt.Errorf("%w: %s", ErrNoSnapshot, st.dir)
	}
	for i := len(gens) - 1; i >= 0; i-- {
		g := gens[i]
		if seen[g] {
			continue
		}
		// Generations newer than the committed one were never published
		// (crash mid-commit); they are not trustworthy load sources.
		if merr == nil && g > m.Generation {
			continue
		}
		candidates = append(candidates, g)
	}
	if len(candidates) == 0 {
		return 0, fmt.Errorf("%w: %s", ErrNoSnapshot, st.dir)
	}
	var lastErr error
	for i, gen := range candidates {
		if err := load(gen, st.opener(gen)); err != nil {
			lastErr = err
			st.metrics.Counter("durable_snapshot_fallbacks_total").Inc()
			st.metrics.Counter("durable_recovery_events_total", "kind", "snapshot").Inc()
			continue
		}
		if i > 0 {
			// Served by a fallback generation, not the manifest's first
			// choice.
			st.metrics.Gauge("durable_snapshot_generation").Set(float64(gen))
		}
		return gen, nil
	}
	return 0, fmt.Errorf("%w: %s (last error: %v)", ErrNoSnapshot, st.dir, lastErr)
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
