package durable

import (
	"encoding/json"
	"errors"
	"io"
	"io/fs"
	"path/filepath"
)

// EpochVersion is the EPOCH record container format version.
const EpochVersion = 1

// EpochName is the fencing-epoch record file inside a system directory. It
// lives beside the generation store and the journal, not inside any
// generation: the epoch is a property of the node's write lineage, and must
// survive checkpoints, rotations, and snapshot installs unchanged.
const EpochName = "EPOCH"

// EpochRecord is the durable fencing state of one node. Epoch is the term
// this node last accepted writes (or replicated records) under. PrevEpoch
// and SealedSeq describe the promotion that started Epoch: the winner's
// previous term and the journal sequence its history was sealed at, which
// lets the shipper distinguish a safe prefix (a follower that was behind at
// promotion time) from a divergent suffix (the dead primary's unshipped
// writes). FencedBy, when nonzero, records that a newer epoch fenced this
// node: its local WAL must never be replayed again, and the node comes back
// up refusing writes until it re-syncs as a follower.
type EpochRecord struct {
	Format    int    `json:"format"`
	Epoch     uint64 `json:"epoch"`
	PrevEpoch uint64 `json:"prev_epoch"`
	SealedSeq uint64 `json:"sealed_seq"`
	FencedBy  uint64 `json:"fenced_by,omitempty"`
}

// WriteEpoch durably replaces dir's EPOCH record. The write is atomic and
// fsynced: promotion must not be acknowledged until the new term survives
// power loss, or a reboot could resurrect the node at its old epoch and
// re-accept writes the cluster already moved past.
func WriteEpoch(fsys FS, dir string, rec EpochRecord) error {
	rec.Format = EpochVersion
	body, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return WriteFileAtomic(fsys, filepath.Join(dir, EpochName), func(w io.Writer) error {
		fw, err := NewFrameWriter(w, "epoch", EpochVersion)
		if err != nil {
			return err
		}
		if err := fw.WriteFrame(body); err != nil {
			return err
		}
		return fw.Close()
	})
}

// ReadEpoch loads dir's EPOCH record. ok is false when no record exists —
// a pre-failover directory, which loads at the zero epoch. A present but
// unreadable record is an error: guessing an epoch defeats fencing.
func ReadEpoch(fsys FS, dir string) (rec EpochRecord, ok bool, err error) {
	if fsys == nil {
		fsys = OS
	}
	path := filepath.Join(dir, EpochName)
	f, err := fsys.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return EpochRecord{}, false, nil
		}
		return EpochRecord{}, false, err
	}
	defer f.Close()
	fr, err := NewFrameReader(f, path, "epoch", EpochVersion)
	if err != nil {
		return EpochRecord{}, false, err
	}
	frame, err := fr.Next()
	if err != nil {
		return EpochRecord{}, false, &CorruptError{Path: path, Detail: "missing epoch frame"}
	}
	if err := json.Unmarshal(frame, &rec); err != nil || rec.Format != EpochVersion {
		return EpochRecord{}, false, &CorruptError{Path: path, Detail: "bad epoch record"}
	}
	if err := fr.Drain(); err != nil {
		return EpochRecord{}, false, err
	}
	return rec, true, nil
}
