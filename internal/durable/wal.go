package durable

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sync"

	"repro/internal/obs"
)

// WALVersion is the journal container format version.
const WALVersion = 1

// ErrSealed marks a journal sealed by fencing: a newer epoch took over the
// write lineage, so no further append may ever extend this history.
var ErrSealed = errors.New("durable: journal sealed by fencing")

// WALName is the journal file inside a system directory.
const WALName = "wal.log"

// walHeader is the journal's first frame: which snapshot generation the
// journal extends. A journal whose base does not match the generation that
// actually loaded must be discarded, not replayed.
type walHeader struct {
	Format int    `json:"format"`
	Base   uint64 `json:"base"`
}

// Record is one journal entry: an operation kind (owned by the caller) and
// its serialized payload.
type Record struct {
	Kind    uint8
	Payload []byte
}

// WALOptions configures journal opening and syncing.
type WALOptions struct {
	// FS is the filesystem seam; nil means the real one.
	FS FS
	// SyncEvery batches fsyncs: the journal fsyncs after every SyncEvery
	// appends (<=1 means every append — full durability, the default).
	// Batched mode trades the tail of the batch on power loss for append
	// throughput; Sync() force-flushes at commit points either way.
	SyncEvery int
	// Metrics receives durable_wal_* telemetry; nil disables.
	Metrics *obs.Registry
}

// WAL is an append-only, checksummed journal of logical operations since
// the last committed snapshot generation. Appends are safe for concurrent
// use; replay tolerates a torn tail (the crash left a half-written record —
// every complete record before it is recovered).
type WAL struct {
	mu       sync.Mutex
	fs       FS
	path     string
	f        File
	base     uint64
	syncEach int
	unsynced int
	// broken poisons the journal after a failed Rotate: the snapshot has
	// already committed, so the on-disk journal extends a superseded base —
	// an append there would be silently discarded on the next load. Refusing
	// the append keeps "Append returned nil" meaning "recoverable".
	broken  error
	metrics *obs.Registry
}

func walOpts(opts WALOptions) (FS, int) {
	fs := opts.FS
	if fs == nil {
		fs = OS
	}
	every := opts.SyncEvery
	if every < 1 {
		every = 1
	}
	return fs, every
}

// CreateWAL atomically replaces dir's journal with an empty one extending
// generation base, and returns it open for appending. The replacement is
// crash-safe: the old journal stays in force until the rename commits.
func CreateWAL(dir string, base uint64, opts WALOptions) (*WAL, error) {
	fs, every := walOpts(opts)
	path := filepath.Join(dir, WALName)
	hdr, err := json.Marshal(walHeader{Format: WALVersion, Base: base})
	if err != nil {
		return nil, err
	}
	err = WriteFileAtomic(fs, path, func(w io.Writer) error {
		fw, err := NewFrameWriter(w, "wal", WALVersion)
		if err != nil {
			return err
		}
		return fw.WriteFrame(hdr)
	})
	if err != nil {
		return nil, err
	}
	f, err := fs.Append(path)
	if err != nil {
		return nil, fmt.Errorf("durable: open wal: %w", err)
	}
	return &WAL{fs: fs, path: path, f: f, base: base, syncEach: every, metrics: opts.Metrics}, nil
}

// OpenWAL opens an existing journal for appending (after the caller has
// replayed it). A torn tail is truncated back to the last intact record, so
// new appends extend good bytes, not garbage. It fails if the journal is
// missing or its header is unreadable — create a fresh one with CreateWAL
// instead.
func OpenWAL(dir string, opts WALOptions) (*WAL, error) {
	fs, every := walOpts(opts)
	path := filepath.Join(dir, WALName)
	rep, err := ReplayWAL(dir, WALOptions{FS: fs})
	if err != nil {
		return nil, err
	}
	if rep.Torn {
		if err := fs.Truncate(path, rep.IntactSize); err != nil {
			return nil, fmt.Errorf("durable: truncate torn wal tail: %w", err)
		}
	}
	f, err := fs.Append(path)
	if err != nil {
		return nil, fmt.Errorf("durable: open wal: %w", err)
	}
	return &WAL{fs: fs, path: path, f: f, base: rep.Base, syncEach: every, metrics: opts.Metrics}, nil
}

// Replayed is what ReplayWAL recovers from a journal.
type Replayed struct {
	// Base is the snapshot generation the journal extends.
	Base uint64
	// Records are the intact records, in append order.
	Records []Record
	// Torn reports a half-written tail (crash mid-append): every record in
	// Records precedes it and is trustworthy.
	Torn bool
	// IntactSize is the byte offset of the end of the last intact record —
	// where appending may safely resume after truncating the tail.
	IntactSize int64
}

// ReplayWAL reads dir's journal: the base generation it extends and every
// intact record. A torn tail (crash mid-append) is tolerated and reported —
// replay recovers every record before it. A missing journal returns an
// error satisfying errors.Is(err, fs.ErrNotExist).
func ReplayWAL(dir string, opts WALOptions) (Replayed, error) {
	fsi, _ := walOpts(opts)
	path := filepath.Join(dir, WALName)
	f, err := fsi.Open(path)
	if err != nil {
		return Replayed{}, err
	}
	defer f.Close()
	cr := &countingReader{r: f}
	fr, err := NewJournalReader(cr, path, "wal", WALVersion)
	if err != nil {
		return Replayed{}, err
	}
	hdrFrame, err := fr.Next()
	if err != nil {
		return Replayed{}, &CorruptError{Path: path, Detail: "missing journal header"}
	}
	var hdr walHeader
	if err := json.Unmarshal(hdrFrame, &hdr); err != nil || hdr.Format != WALVersion {
		return Replayed{}, &CorruptError{Path: path, Detail: "bad journal header"}
	}
	rep := Replayed{Base: hdr.Base, IntactSize: cr.n}
	for {
		frame, err := fr.Next()
		if err == io.EOF {
			return rep, nil
		}
		if err != nil || len(frame) == 0 {
			// Torn or corrupt record: everything before it is intact, and
			// nothing after it can be trusted (frame boundaries are lost).
			rep.Torn = true
			opts.Metrics.Counter("durable_recovery_events_total", "kind", "wal_tail").Inc()
			return rep, nil
		}
		rep.Records = append(rep.Records, Record{Kind: frame[0], Payload: frame[1:]})
		rep.IntactSize = cr.n
		opts.Metrics.Counter("durable_wal_replay_records_total").Inc()
	}
}

// countingReader tracks exactly how many bytes have been consumed, so the
// replayer knows where the last intact record ends. The frame reader does
// no read-ahead, so the count after a successful frame is its end offset.
type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// Base returns the snapshot generation this journal extends.
func (w *WAL) Base() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.base
}

// Append journals one operation. The record is on disk (though possibly
// unsynced, per SyncEvery) when Append returns; with SyncEvery <= 1 it is
// also fsynced.
func (w *WAL) Append(kind uint8, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return fmt.Errorf("durable: wal append: journal poisoned by failed rotate: %w", w.broken)
	}
	body := make([]byte, 0, len(payload)+9)
	body = append(body, kind)
	body = append(body, payload...)
	frame := make([]byte, 8, 8+len(body))
	binary.BigEndian.PutUint32(frame[0:], uint32(len(body)))
	binary.BigEndian.PutUint32(frame[4:], crc32.Checksum(body, castagnoli))
	frame = append(frame, body...)
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("durable: wal append: %w", err)
	}
	w.metrics.Counter("durable_wal_appends_total").Inc()
	w.unsynced++
	if w.unsynced >= w.syncEach {
		return w.syncLocked()
	}
	return nil
}

// Healthy reports whether the journal can accept appends. It returns the
// poisoning error after a failed rotation, letting callers refuse a
// mutation up front instead of applying it to memory and then failing to
// make it durable.
func (w *WAL) Healthy() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return fmt.Errorf("durable: journal poisoned by failed rotate: %w", w.broken)
	}
	return nil
}

// Sync force-fsyncs pending appends (commit points call this regardless of
// the batching policy).
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return fmt.Errorf("durable: wal sync: journal poisoned by failed rotate: %w", w.broken)
	}
	if w.unsynced == 0 {
		return nil
	}
	return w.syncLocked()
}

// Probe verifies the journal is still appendable by forcing an fsync on the
// open file regardless of pending state — unlike Sync, which no-ops when
// nothing is unsynced. Health checks use it: a probe failing means the next
// real Append would too (disk gone, volume read-only, fd revoked).
func (w *WAL) Probe() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return fmt.Errorf("durable: journal poisoned by failed rotate: %w", w.broken)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: wal probe: %w", err)
	}
	w.unsynced = 0
	return nil
}

func (w *WAL) syncLocked() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: wal fsync: %w", err)
	}
	w.unsynced = 0
	w.metrics.Counter("durable_wal_fsyncs_total").Inc()
	return nil
}

// Seal permanently poisons the journal: every future Append, Sync, and
// Healthy fails with an error wrapping ErrSealed. Fencing calls it when a
// newer epoch takes over the write lineage — unlike rotate-failure
// poisoning, sealing is not recoverable by re-establishing a journal; the
// node must re-sync under the new epoch. Pending appends are fsynced first
// so the sealed history is at least complete.
func (w *WAL) Seal(reason string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.unsynced > 0 {
		_ = w.syncLocked()
	}
	w.broken = fmt.Errorf("%w: %s", ErrSealed, reason)
	w.metrics.Counter("durable_wal_seals_total").Inc()
}

// Rotate truncates the journal after a snapshot commit: a fresh empty
// journal extending newBase atomically replaces the current one. Operations
// journaled before Rotate are folded into generation newBase's snapshot, so
// they are not lost — they are superseded.
//
// If the replacement fails, the journal poisons itself: the caller's
// snapshot already committed at newBase, so the surviving on-disk journal
// extends a superseded generation. Accepting further appends there would
// acknowledge operations the next load silently discards (base mismatch);
// instead Append and Sync fail until the owner re-establishes a journal
// whose base matches reality (EnableWAL after a successful checkpoint).
func (w *WAL) Rotate(newBase uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if errors.Is(w.broken, ErrSealed) {
		// A successful rotate clears rotate-failure poisoning, but a seal is
		// permanent: the write lineage moved to a newer epoch and no local
		// recovery may resurrect this journal.
		return fmt.Errorf("durable: wal rotate: %w", w.broken)
	}
	dir := filepath.Dir(w.path)
	fresh, err := CreateWAL(dir, newBase, WALOptions{FS: w.fs, SyncEvery: w.syncEach, Metrics: w.metrics})
	if err != nil {
		w.broken = err
		w.metrics.Counter("durable_recovery_events_total", "kind", "wal_rotate").Inc()
		return err
	}
	old := w.f
	w.f = fresh.f
	w.base = newBase
	w.unsynced = 0
	w.broken = nil
	return old.Close()
}

// Close releases the journal after a final sync.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.unsynced > 0 {
		if err := w.syncLocked(); err != nil {
			w.f.Close()
			return err
		}
	}
	return w.f.Close()
}
