package durable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// writeContainer builds a complete framed container with the given frames.
func writeContainer(t *testing.T, kind string, version uint32, frames ...[]byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	fw, err := NewFrameWriter(&buf, kind, version)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := fw.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFrameRoundTrip(t *testing.T) {
	frames := [][]byte{[]byte("alpha"), []byte("beta"), {}, []byte("gamma")}
	raw := writeContainer(t, "test", 1, frames...)
	fr, err := NewFrameReader(bytes.NewReader(raw), "mem", "test", 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range frames {
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d = %q, want %q", i, got, want)
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

func TestFrameStreamRoundTrip(t *testing.T) {
	// A payload larger than one chunk exercises the io.Writer/io.Reader
	// streaming path: multiple frames, each independently checksummed.
	payload := bytes.Repeat([]byte("0123456789abcdef"), (streamChunk/16)+512)
	var buf bytes.Buffer
	fw, err := NewFrameWriter(&buf, "stream", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	fr, err := NewFrameReader(bytes.NewReader(buf.Bytes()), "mem", "stream", 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(fr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("stream round trip: %d bytes, want %d", len(got), len(payload))
	}
	if err := fr.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestFrameVersionMismatch(t *testing.T) {
	raw := writeContainer(t, "test", 2, []byte("x"))
	_, err := NewFrameReader(bytes.NewReader(raw), "mem", "test", 1)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
	var ve *VersionError
	if !errors.As(err, &ve) || ve.Got != 2 || ve.Want != 1 {
		t.Fatalf("VersionError = %+v", ve)
	}
}

func TestFrameKindMismatch(t *testing.T) {
	raw := writeContainer(t, "index", 1, []byte("x"))
	_, err := NewFrameReader(bytes.NewReader(raw), "mem", "context", 1)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// typedLoadErr reports whether err is one of the typed durable load
// failures (or a clean EOF for readers that got that far).
func typedLoadErr(err error) bool {
	return errors.Is(err, ErrCorrupt) || errors.Is(err, ErrTorn) || errors.Is(err, ErrVersion)
}

// readAllFrames drives a reader over the whole container, returning the
// first error (nil on a clean read).
func readAllFrames(raw []byte, kind string) error {
	fr, err := NewFrameReader(bytes.NewReader(raw), "mem", kind, 1)
	if err != nil {
		return err
	}
	return fr.Drain()
}

func TestFrameEveryByteFlip(t *testing.T) {
	// Flipping any single byte of a container must surface as a typed error
	// — never a panic, never a clean read of wrong data.
	raw := writeContainer(t, "test", 1, []byte("hello world"), []byte("second frame"))
	for i := range raw {
		mut := bytes.Clone(raw)
		mut[i] ^= 0xFF
		err := readAllFrames(mut, "test")
		if err == nil {
			t.Fatalf("flip at %d read cleanly", i)
		}
		if !typedLoadErr(err) {
			t.Fatalf("flip at %d: untyped error %v", i, err)
		}
	}
}

func TestFrameEveryTruncation(t *testing.T) {
	// Containers end with an explicit EOF marker, so truncation at ANY
	// offset — frame boundaries included — is detected, with a typed error.
	raw := writeContainer(t, "test", 1, []byte("hello world"), []byte("second frame"))
	for n := 0; n < len(raw); n++ {
		err := readAllFrames(raw[:n], "test")
		if err == nil {
			t.Fatalf("truncation to %d of %d read cleanly", n, len(raw))
		}
		if !typedLoadErr(err) {
			t.Fatalf("truncation to %d: untyped error %v", n, err)
		}
	}
}

func TestJournalCleanAndTornEnds(t *testing.T) {
	// Journals have no EOF marker: a clean end at a frame boundary is the
	// normal end of the log; anything mid-frame is a torn tail.
	var buf bytes.Buffer
	fw, err := NewFrameWriter(&buf, "wal", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.WriteFrame([]byte("record one")); err != nil {
		t.Fatal(err)
	}
	boundary := buf.Len()
	if err := fw.WriteFrame([]byte("record two")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	read := func(raw []byte) (int, error) {
		fr, err := NewJournalReader(bytes.NewReader(raw), "mem", "wal", 1)
		if err != nil {
			return 0, err
		}
		n := 0
		for {
			_, err := fr.Next()
			if err == io.EOF {
				return n, nil
			}
			if err != nil {
				return n, err
			}
			n++
		}
	}
	if n, err := read(raw); err != nil || n != 2 {
		t.Fatalf("full journal: %d records, %v", n, err)
	}
	if n, err := read(raw[:boundary]); err != nil || n != 1 {
		t.Fatalf("boundary cut: %d records, %v (want clean end after 1)", n, err)
	}
	if n, err := read(raw[:boundary+5]); !errors.Is(err, ErrTorn) || n != 1 {
		t.Fatalf("mid-frame cut: %d records, %v (want ErrTorn after 1)", n, err)
	}
}

func TestJournalRejectsEOFMarker(t *testing.T) {
	var buf bytes.Buffer
	fw, err := NewFrameWriter(&buf, "wal", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil { // writes the container EOF marker
		t.Fatal(err)
	}
	fr, err := NewJournalReader(bytes.NewReader(buf.Bytes()), "mem", "wal", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fr.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("EOF marker in journal: %v, want ErrCorrupt", err)
	}
}

func TestFrameOversizedLengthRejected(t *testing.T) {
	// A corrupt length prefix must not drive a giant allocation.
	raw := writeContainer(t, "test", 1)
	hdrLen := len(raw) - 8 // strip the EOF marker
	mut := bytes.Clone(raw[:hdrLen])
	var pre [8]byte
	binary.BigEndian.PutUint32(pre[0:], maxFrame+1)
	binary.BigEndian.PutUint32(pre[4:], 0xDEADBEEF)
	mut = append(mut, pre[:]...)
	err := readAllFrames(mut, "test")
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized frame: %v, want ErrCorrupt", err)
	}
}
