package durable

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
)

// This file is the snapshot store's replication surface: exporting the
// committed generation as raw container bytes (for a primary shipping a
// bootstrap snapshot) and importing such bytes as a published generation
// (for a follower installing one). Raw bytes, not decoded state — the
// frame CRCs already in every container travel with the data, so a
// follower verifies exactly what the primary's own loader would.

// RawComponent is one component container opened for raw streaming.
type RawComponent struct {
	Name string
	Size int64
	R    io.ReadCloser
}

// ExportGeneration opens every component of the committed generation for
// raw transfer. The files are opened before this returns, so a concurrent
// Commit pruning the generation cannot tear the copy (POSIX keeps an open
// file readable after unlink). The caller owns closing the readers.
func (st *Store) ExportGeneration() (uint64, []RawComponent, error) {
	m, err := st.readManifest()
	if err != nil {
		return 0, nil, fmt.Errorf("durable: export: %w", err)
	}
	genDir := filepath.Join(st.dir, genDirName(m.Generation))
	var out []RawComponent
	for _, name := range m.Components {
		path := filepath.Join(genDir, name+".snap")
		info, err := st.fs.Stat(path)
		var f File
		if err == nil {
			f, err = st.fs.Open(path)
		}
		if err != nil {
			for _, c := range out {
				c.R.Close()
			}
			return 0, nil, fmt.Errorf("durable: export component %s: %w", name, err)
		}
		out = append(out, RawComponent{Name: name, Size: info.Size(), R: f})
	}
	return m.Generation, out, nil
}

// Import installs one received generation. Components stream in one at a
// time; Commit is the publish point (manifest swing), so a crash anywhere
// before it leaves the store exactly as it was.
type Import struct {
	st    *Store
	gen   uint64
	dir   string
	names []string
	done  bool
}

// BeginImport starts installing generation gen (the sender's numbering —
// a follower adopts the primary's generation names wholesale). Any
// half-written directory from a dead attempt at the same number is
// cleared first.
func (st *Store) BeginImport(gen uint64) (*Import, error) {
	if gen == 0 {
		return nil, fmt.Errorf("durable: import: generation 0")
	}
	dir := filepath.Join(st.dir, genDirName(gen))
	_ = st.fs.RemoveAll(dir)
	if err := st.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: import gen %d: %w", gen, err)
	}
	return &Import{st: st, gen: gen, dir: dir}, nil
}

// validComponentName rejects anything that could escape the generation
// directory or collide with store bookkeeping — component names come off
// the wire.
func validComponentName(name string) bool {
	if name == "" || len(name) > 128 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// Component writes one component's raw container bytes, then re-reads and
// drains every frame so a corrupt transfer is rejected before Commit can
// ever publish it.
func (imp *Import) Component(name string, r io.Reader) error {
	if !validComponentName(name) {
		return fmt.Errorf("durable: import: bad component name %q", name)
	}
	path := filepath.Join(imp.dir, name+".snap")
	err := WriteFileAtomic(imp.st.fs, path, func(w io.Writer) error {
		_, err := io.Copy(w, r)
		return err
	})
	if err != nil {
		return fmt.Errorf("durable: import component %s: %w", name, err)
	}
	f, err := imp.st.fs.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fr, err := NewFrameReader(f, path, "component:"+name, SnapshotVersion)
	if err != nil {
		return fmt.Errorf("durable: import component %s: %w", name, err)
	}
	if err := fr.Drain(); err != nil {
		return fmt.Errorf("durable: import component %s: %w", name, err)
	}
	imp.names = append(imp.names, name)
	return nil
}

// Commit fsyncs the generation directory and swings the manifest to it —
// after this, Load serves the imported state. Stale generations (both the
// retention overflow below and any unpublished ones numbered above the
// import) are cleaned up best-effort afterwards.
func (imp *Import) Commit() error {
	if imp.done {
		return fmt.Errorf("durable: import gen %d already finished", imp.gen)
	}
	imp.done = true
	if err := SyncDir(imp.st.fs, imp.dir); err != nil {
		return err
	}
	payload, err := json.Marshal(manifest{Format: SnapshotVersion, Generation: imp.gen, Components: imp.names})
	if err != nil {
		return err
	}
	err = WriteFileAtomic(imp.st.fs, filepath.Join(imp.st.dir, manifestName), func(w io.Writer) error {
		fw, err := NewFrameWriter(w, "manifest", SnapshotVersion)
		if err != nil {
			return err
		}
		if err := fw.WriteFrame(payload); err != nil {
			return err
		}
		return fw.Close()
	})
	if err != nil {
		return err
	}
	imp.st.prune(imp.gen)
	if gens, err := imp.st.generations(); err == nil {
		for _, g := range gens {
			if g > imp.gen {
				_ = imp.st.fs.RemoveAll(filepath.Join(imp.st.dir, genDirName(g)))
			}
		}
	}
	imp.st.metrics.Gauge("durable_snapshot_generation").Set(float64(imp.gen))
	return nil
}

// Abort discards the unpublished generation directory.
func (imp *Import) Abort() {
	if imp.done {
		return
	}
	imp.done = true
	_ = imp.st.fs.RemoveAll(imp.dir)
}
