package durable

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// commitBlobs commits one generation whose components hold the given blobs.
func commitBlobs(t *testing.T, st *Store, blobs map[string]string) uint64 {
	t.Helper()
	var comps []Component
	for name, data := range blobs {
		data := data
		comps = append(comps, Component{Name: name, Write: func(w io.Writer) error {
			_, err := w.Write([]byte(data))
			return err
		}})
	}
	gen, err := st.Commit(comps)
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

// loadBlobs loads the store and returns the generation plus component
// contents for the given names.
func loadBlobs(st *Store, names ...string) (uint64, map[string]string, error) {
	got := map[string]string{}
	gen, err := st.Load(func(gen uint64, open OpenComponent) error {
		for k := range got {
			delete(got, k)
		}
		for _, name := range names {
			cr, err := open(name)
			if err != nil {
				return err
			}
			data, err := io.ReadAll(cr)
			if err != nil {
				cr.Close()
				return err
			}
			if err := cr.Drain(); err != nil {
				cr.Close()
				return err
			}
			cr.Close()
			got[name] = string(data)
		}
		return nil
	})
	return gen, got, err
}

func TestStoreCommitLoadRoundTrip(t *testing.T) {
	st, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gen := commitBlobs(t, st, map[string]string{"index": "the index", "context": "the context"})
	if gen != 1 {
		t.Fatalf("first generation = %d", gen)
	}
	if committed, ok := st.Committed(); !ok || committed != 1 {
		t.Fatalf("Committed = %d, %v", committed, ok)
	}
	loaded, got, err := loadBlobs(st, "index", "context")
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 1 || got["index"] != "the index" || got["context"] != "the context" {
		t.Fatalf("load: gen %d, %v", loaded, got)
	}
}

func TestStoreLoadEmpty(t *testing.T) {
	st, err := OpenStore(t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadBlobs(st, "index"); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err = %v, want ErrNoSnapshot", err)
	}
}

func TestStoreFallbackOnCorruptGeneration(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	commitBlobs(t, st, map[string]string{"index": "generation one"})
	commitBlobs(t, st, map[string]string{"index": "generation two"})

	// Corrupt the newest generation's component: flip a payload byte.
	path := filepath.Join(dir, "gen-00000002", "index.snap")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-12] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	gen, got, err := loadBlobs(st, "index")
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 || got["index"] != "generation one" {
		t.Fatalf("fallback: gen %d, %v", gen, got)
	}
}

func TestStorePruneRetention(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{Keep: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		commitBlobs(t, st, map[string]string{"index": fmt.Sprintf("generation %d", i)})
	}
	gens, err := st.generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 || gens[0] != 3 || gens[1] != 4 {
		t.Fatalf("retained generations = %v, want [3 4]", gens)
	}
}

func TestStoreIgnoresUnpublishedNewerGeneration(t *testing.T) {
	// A generation directory newer than the manifest is a crashed commit:
	// it was never published and must not be loaded.
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	commitBlobs(t, st, map[string]string{"index": "published"})
	ghost := filepath.Join(dir, "gen-00000009")
	if err := os.MkdirAll(ghost, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(ghost, "index.snap"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	gen, got, err := loadBlobs(st, "index")
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 || got["index"] != "published" {
		t.Fatalf("gen %d, %v", gen, got)
	}
}

func TestStoreManifestLossFallsBackToScan(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	commitBlobs(t, st, map[string]string{"index": "one"})
	commitBlobs(t, st, map[string]string{"index": "two"})
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	gen, got, err := loadBlobs(st, "index")
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 || got["index"] != "two" {
		t.Fatalf("scan fallback: gen %d, %v", gen, got)
	}
}

func TestStoreRecommitClearsStaleGeneration(t *testing.T) {
	// A crashed commit can leave a half-written directory at the next
	// generation number; the re-commit must not inherit its files.
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	commitBlobs(t, st, map[string]string{"index": "one"})
	stale := filepath.Join(dir, "gen-00000002")
	if err := os.MkdirAll(stale, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stale, "leftover.snap"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if gen := commitBlobs(t, st, map[string]string{"index": "two"}); gen != 2 {
		t.Fatalf("generation = %d", gen)
	}
	if _, err := os.Stat(filepath.Join(stale, "leftover.snap")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale component survived re-commit: %v", err)
	}
	gen, got, err := loadBlobs(st, "index")
	if err != nil || gen != 2 || got["index"] != "two" {
		t.Fatalf("gen %d, %v, %v", gen, got, err)
	}
}
