package durable

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestEpochRoundTrip(t *testing.T) {
	dir := t.TempDir()

	// A pre-failover directory has no record: zero epoch, no error.
	if rec, ok, err := ReadEpoch(nil, dir); err != nil || ok || rec.Epoch != 0 {
		t.Fatalf("empty dir epoch = %+v ok=%v err=%v", rec, ok, err)
	}

	want := EpochRecord{Epoch: 3, PrevEpoch: 2, SealedSeq: 117}
	if err := WriteEpoch(nil, dir, want); err != nil {
		t.Fatal(err)
	}
	rec, ok, err := ReadEpoch(nil, dir)
	if err != nil || !ok {
		t.Fatalf("read back: ok=%v err=%v", ok, err)
	}
	if rec.Epoch != 3 || rec.PrevEpoch != 2 || rec.SealedSeq != 117 || rec.FencedBy != 0 {
		t.Fatalf("record = %+v, want %+v", rec, want)
	}
	if rec.Format != EpochVersion {
		t.Fatalf("format = %d, want %d", rec.Format, EpochVersion)
	}

	// A fencing mark replaces the record atomically and round-trips.
	if err := WriteEpoch(nil, dir, EpochRecord{Epoch: 3, PrevEpoch: 2, SealedSeq: 117, FencedBy: 5}); err != nil {
		t.Fatal(err)
	}
	rec, ok, err = ReadEpoch(nil, dir)
	if err != nil || !ok || rec.FencedBy != 5 {
		t.Fatalf("fenced record = %+v ok=%v err=%v", rec, ok, err)
	}
}

func TestEpochCorruptRecordIsTypedError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, EpochName)

	// Raw garbage: the container framing itself is unreadable. Guessing an
	// epoch would defeat fencing, so this must error, never ok=false.
	if err := os.WriteFile(path, []byte("garbage, not a frame"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := ReadEpoch(nil, dir); err == nil || ok {
		t.Fatalf("garbage EPOCH read = ok=%v err=%v, want error", ok, err)
	}

	// A valid frame holding a non-record payload is a CorruptError.
	if err := WriteFileAtomic(nil, path, func(w io.Writer) error {
		fw, err := NewFrameWriter(w, "epoch", EpochVersion)
		if err != nil {
			return err
		}
		if err := fw.WriteFrame([]byte(`{"format":999}`)); err != nil {
			return err
		}
		return fw.Close()
	}); err != nil {
		t.Fatal(err)
	}
	_, ok, err := ReadEpoch(nil, dir)
	var ce *CorruptError
	if !errors.As(err, &ce) || ok {
		t.Fatalf("bad-payload EPOCH read = ok=%v err=%v, want CorruptError", ok, err)
	}

	// A torn write (truncated mid-frame) must not pass either.
	good := t.TempDir()
	if err := WriteEpoch(nil, good, EpochRecord{Epoch: 9}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(good, EpochName))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := ReadEpoch(nil, dir); err == nil || ok {
		t.Fatalf("torn EPOCH read = ok=%v err=%v, want error", ok, err)
	}
}

func TestEpochSurvivesBesideJournalRotation(t *testing.T) {
	// The EPOCH record is a lineage property: checkpoints and rotations in
	// the same directory must leave it untouched.
	dir := t.TempDir()
	if err := WriteEpoch(nil, dir, EpochRecord{Epoch: 7, PrevEpoch: 6, SealedSeq: 40}); err != nil {
		t.Fatal(err)
	}
	w, err := CreateWAL(dir, 1, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, []byte("rec")); err != nil {
		t.Fatal(err)
	}
	if err := w.Rotate(2); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, ok, err := ReadEpoch(nil, dir)
	if err != nil || !ok || rec.Epoch != 7 || rec.SealedSeq != 40 {
		t.Fatalf("epoch after rotation = %+v ok=%v err=%v", rec, ok, err)
	}
}
