package durable

// The crash matrix: induce a failure at every fault site and every
// occurrence of that site during a commit (and a journal append), and at
// every truncation point of the on-disk files, then reload with the real
// filesystem. The invariant, from the durability design: load never panics
// and never returns partial state — it returns the last committed
// generation (or the newly committed one, if the failure struck after the
// commit point) or a typed error.

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

// verifyLastGood loads the store with the real filesystem and requires one
// of the allowed component payloads for "index" — never an error, never
// anything else.
func verifyLastGood(t *testing.T, dir string, allowed ...string) (uint64, string) {
	t.Helper()
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gen, got, err := loadBlobs(st, "index")
	if err != nil {
		t.Fatalf("load after induced crash: %v", err)
	}
	for _, want := range allowed {
		if got["index"] == want {
			return gen, got["index"]
		}
	}
	t.Fatalf("load after induced crash: gen %d content %q, want one of %q", gen, got["index"], allowed)
	return 0, ""
}

func TestCrashMatrixCommit(t *testing.T) {
	for _, site := range []string{SiteCreate, SiteWrite, SiteSync, SiteRename} {
		t.Run(site, func(t *testing.T) {
			// Walk every occurrence of the site within one commit: arm the
			// rule to fire only on the k-th matching call, run the commit,
			// verify the invariant, advance k until a run completes without
			// the fault firing (no more occurrences to hit).
			for k := 0; ; k++ {
				dir := t.TempDir()
				base, err := OpenStore(dir, StoreOptions{})
				if err != nil {
					t.Fatal(err)
				}
				commitBlobs(t, base, map[string]string{"index": "committed one", "context": "ctx one"})

				inj := fault.New(uint64(k) + 1)
				rule := inj.Add(&fault.Rule{Site: site, Mode: fault.ModeError, After: k, Times: 1})
				ffs := &FaultFS{Ctx: fault.With(context.Background(), inj)}
				st, err := OpenStore(dir, StoreOptions{FS: ffs})
				if err != nil {
					t.Fatal(err)
				}
				_, commitErr := st.Commit([]Component{
					{Name: "index", Write: func(w io.Writer) error {
						_, err := w.Write([]byte("committed two"))
						return err
					}},
					{Name: "context", Write: func(w io.Writer) error {
						_, err := w.Write([]byte("ctx two"))
						return err
					}},
				})
				if rule.Fired() == 0 {
					if commitErr != nil {
						t.Fatalf("k=%d: commit failed without a fault: %v", k, commitErr)
					}
					verifyLastGood(t, dir, "committed two")
					break // walked past the last occurrence
				}
				// The fault fired somewhere inside the commit. Whatever the
				// outcome, a fresh load must see a consistent generation.
				gen, content := verifyLastGood(t, dir, "committed one", "committed two")
				if commitErr == nil && content != "committed two" {
					t.Fatalf("k=%d: commit acked gen %d but load served %q", k, gen, content)
				}
				if commitErr != nil && content == "committed two" && gen != 2 {
					t.Fatalf("k=%d: inconsistent recovery: gen %d content %q", k, gen, content)
				}
				if k > 200 {
					t.Fatal("fault site count did not converge")
				}
			}
		})
	}
}

func TestCrashMatrixWALAppend(t *testing.T) {
	for _, site := range []string{SiteCreate, SiteWrite, SiteSync} {
		t.Run(site, func(t *testing.T) {
			for k := 0; ; k++ {
				dir := t.TempDir()
				// A real journal with two intact records to protect.
				w, err := CreateWAL(dir, 1, WALOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if err := w.Append(1, []byte("intact one")); err != nil {
					t.Fatal(err)
				}
				if err := w.Append(1, []byte("intact two")); err != nil {
					t.Fatal(err)
				}
				if err := w.Close(); err != nil {
					t.Fatal(err)
				}

				inj := fault.New(uint64(k) + 1)
				rule := inj.Add(&fault.Rule{Site: site, Mode: fault.ModeError, After: k, Times: 1})
				ffs := &FaultFS{Ctx: fault.With(context.Background(), inj)}
				w2, err := OpenWAL(dir, WALOptions{FS: ffs})
				var appendErr error
				if err == nil {
					appendErr = w2.Append(1, []byte("doomed"))
					w2.Close()
				} else {
					appendErr = err
				}

				rep, err := ReplayWAL(dir, WALOptions{})
				if err != nil {
					t.Fatalf("k=%d: replay after induced crash: %v", k, err)
				}
				if len(rep.Records) < 2 ||
					string(rep.Records[0].Payload) != "intact one" ||
					string(rep.Records[1].Payload) != "intact two" {
					t.Fatalf("k=%d: acknowledged records lost: %d records", k, len(rep.Records))
				}
				if rule.Fired() == 0 {
					if appendErr != nil {
						t.Fatalf("k=%d: append failed without a fault: %v", k, appendErr)
					}
					if len(rep.Records) != 3 {
						t.Fatalf("clean run: %d records", len(rep.Records))
					}
					break
				}
				if k > 200 {
					t.Fatal("fault site count did not converge")
				}
			}
		})
	}
}

func TestCrashMatrixSnapshotTruncation(t *testing.T) {
	// Truncate the newest generation's component file at EVERY byte offset:
	// the frame boundaries and everything between. Load must fall back to
	// the previous generation each time.
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	commitBlobs(t, st, map[string]string{"index": "generation one"})
	commitBlobs(t, st, map[string]string{"index": "generation two"})
	path := filepath.Join(dir, "gen-00000002", "index.snap")
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(pristine); n++ {
		if err := os.WriteFile(path, pristine[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		gen, content := verifyLastGood(t, dir, "generation one")
		if gen != 1 {
			t.Fatalf("truncation to %d: served gen %d", n, gen)
		}
		_ = content
	}
	// Restored in full, generation two serves again.
	if err := os.WriteFile(path, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	if gen, _ := verifyLastGood(t, dir, "generation two"); gen != 2 {
		t.Fatalf("restored file: served gen %d", gen)
	}
}

func TestCrashMatrixManifestTruncation(t *testing.T) {
	// A torn manifest must never prevent recovery: the directory scan finds
	// the intact generations.
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	commitBlobs(t, st, map[string]string{"index": "generation one"})
	commitBlobs(t, st, map[string]string{"index": "generation two"})
	path := filepath.Join(dir, manifestName)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(pristine); n++ {
		if err := os.WriteFile(path, pristine[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		verifyLastGood(t, dir, "generation one", "generation two")
	}
	if err := os.WriteFile(path, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCrashMatrixWALTruncation(t *testing.T) {
	// Truncate the journal at every byte offset. Replay must either fail
	// with a typed error (torn header) or return an intact prefix of the
	// appended records — never panic, never invent records.
	dir := t.TempDir()
	w, err := CreateWAL(dir, 1, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	payloads := []string{"record one", "record two", "record three"}
	for _, p := range payloads {
		if err := w.Append(1, []byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, WALName)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(pristine); n++ {
		if err := os.WriteFile(path, pristine[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		rep, err := ReplayWAL(dir, WALOptions{})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTorn) {
				t.Fatalf("truncation to %d: untyped error %v", n, err)
			}
			continue
		}
		if len(rep.Records) > len(payloads) {
			t.Fatalf("truncation to %d: %d records from %d appends", n, len(rep.Records), len(payloads))
		}
		for i, rec := range rep.Records {
			if string(rec.Payload) != payloads[i] {
				t.Fatalf("truncation to %d: record %d = %q", n, i, rec.Payload)
			}
		}
	}
}
