package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Container framing. Every durable file — snapshot components, the WAL, the
// manifest — is a sequence of length-prefixed, CRC-checksummed frames under
// a magic+version+kind header:
//
//	header:  "EILDUR1\n" | version uint32 | kindLen uint8 | kind | crc32c(header fields)
//	frame:   length uint32 | crc32c(payload) | payload
//	eof:     0xFFFFFFFF   | 0x454F4621  ("EOF!")
//
// All integers are big-endian. Containers (snapshot components, manifest)
// end with the explicit EOF marker so truncation at a frame boundary is
// detectable (ErrTorn); journals are append-only and have no marker — a
// clean end at a frame boundary is the normal end of the log, and a partial
// frame is a torn tail the replayer stops at.

var frameMagic = [8]byte{'E', 'I', 'L', 'D', 'U', 'R', '1', '\n'}

const (
	// maxFrame bounds a single frame so a corrupt length prefix cannot
	// drive a multi-gigabyte allocation.
	maxFrame = 64 << 20
	// streamChunk is how the stream writer slices large payloads (a gob
	// snapshot is one logical blob) into frames, giving the crash matrix
	// many boundaries to truncate at and the reader incremental CRC checks.
	streamChunk = 1 << 20

	eofLen = 0xFFFFFFFF
	eofCRC = 0x454F4621
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// FrameWriter writes one framed container or journal.
type FrameWriter struct {
	w   io.Writer
	err error
	buf []byte // pending stream-writer chunk
}

// NewFrameWriter writes the header for a container of the given kind and
// format version and returns the writer.
func NewFrameWriter(w io.Writer, kind string, version uint32) (*FrameWriter, error) {
	if len(kind) > 255 {
		return nil, fmt.Errorf("durable: kind %q too long", kind)
	}
	var hdr []byte
	hdr = append(hdr, frameMagic[:]...)
	hdr = binary.BigEndian.AppendUint32(hdr, version)
	hdr = append(hdr, byte(len(kind)))
	hdr = append(hdr, kind...)
	hdr = binary.BigEndian.AppendUint32(hdr, crc32.Checksum(hdr[len(frameMagic):], castagnoli))
	if _, err := w.Write(hdr); err != nil {
		return nil, fmt.Errorf("durable: write header: %w", err)
	}
	return &FrameWriter{w: w}, nil
}

// WriteFrame writes one checksummed frame.
func (fw *FrameWriter) WriteFrame(p []byte) error {
	if fw.err != nil {
		return fw.err
	}
	if len(p) >= maxFrame {
		fw.err = fmt.Errorf("durable: frame of %d bytes exceeds limit", len(p))
		return fw.err
	}
	var pre [8]byte
	binary.BigEndian.PutUint32(pre[0:], uint32(len(p)))
	binary.BigEndian.PutUint32(pre[4:], crc32.Checksum(p, castagnoli))
	if _, err := fw.w.Write(pre[:]); err != nil {
		fw.err = err
		return err
	}
	if _, err := fw.w.Write(p); err != nil {
		fw.err = err
		return err
	}
	return nil
}

// Write implements io.Writer: payload bytes accumulate into streamChunk-
// sized frames. Close flushes the tail and writes the EOF marker.
func (fw *FrameWriter) Write(p []byte) (int, error) {
	if fw.err != nil {
		return 0, fw.err
	}
	n := len(p)
	for len(p) > 0 {
		room := streamChunk - len(fw.buf)
		take := len(p)
		if take > room {
			take = room
		}
		fw.buf = append(fw.buf, p[:take]...)
		p = p[take:]
		if len(fw.buf) == streamChunk {
			if err := fw.flushChunk(); err != nil {
				return 0, err
			}
		}
	}
	return n, nil
}

func (fw *FrameWriter) flushChunk() error {
	if len(fw.buf) == 0 {
		return nil
	}
	err := fw.WriteFrame(fw.buf)
	fw.buf = fw.buf[:0]
	return err
}

// Close flushes any buffered stream chunk and writes the EOF marker that
// distinguishes a complete container from a torn one. Journals must not
// call Close (they end wherever the last append ended).
func (fw *FrameWriter) Close() error {
	if err := fw.flushChunk(); err != nil {
		return err
	}
	if fw.err != nil {
		return fw.err
	}
	var pre [8]byte
	binary.BigEndian.PutUint32(pre[0:], eofLen)
	binary.BigEndian.PutUint32(pre[4:], eofCRC)
	if _, err := fw.w.Write(pre[:]); err != nil {
		fw.err = err
		return err
	}
	return nil
}

// FrameReader reads a framed container or journal, verifying every frame's
// checksum as it goes.
type FrameReader struct {
	r    io.Reader
	path string
	// journal mode: no EOF marker; clean EOF at a frame boundary is the
	// normal end, not a torn container.
	journal bool
	done    bool
	stream  []byte // unconsumed tail of the current frame (Read mode)
}

// NewFrameReader validates the header (magic, version, kind) and returns
// the reader. path labels errors. A version mismatch returns a
// *VersionError; bad magic or a checksummed-header mismatch returns a
// *CorruptError.
func NewFrameReader(r io.Reader, path, kind string, version uint32) (*FrameReader, error) {
	return newFrameReader(r, path, kind, version, false)
}

// NewJournalReader is NewFrameReader for append-only journals: the stream
// has no EOF marker, and a clean end at a frame boundary is io.EOF rather
// than ErrTorn.
func NewJournalReader(r io.Reader, path, kind string, version uint32) (*FrameReader, error) {
	return newFrameReader(r, path, kind, version, true)
}

func newFrameReader(r io.Reader, path, kind string, version uint32, journal bool) (*FrameReader, error) {
	hdr := make([]byte, len(frameMagic)+4+1)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, &CorruptError{Path: path, Detail: "short header"}
	}
	if [8]byte(hdr[:8]) != frameMagic {
		return nil, &CorruptError{Path: path, Detail: "bad magic"}
	}
	gotVersion := binary.BigEndian.Uint32(hdr[8:12])
	kindLen := int(hdr[12])
	rest := make([]byte, kindLen+4)
	if _, err := io.ReadFull(r, rest); err != nil {
		return nil, &CorruptError{Path: path, Detail: "short header"}
	}
	sum := crc32.Checksum(hdr[8:], castagnoli)
	sum = crc32.Update(sum, castagnoli, rest[:kindLen])
	if sum != binary.BigEndian.Uint32(rest[kindLen:]) {
		return nil, &CorruptError{Path: path, Detail: "header checksum mismatch"}
	}
	if gotVersion != version {
		return nil, &VersionError{Path: path, Got: gotVersion, Want: version}
	}
	if string(rest[:kindLen]) != kind {
		return nil, &CorruptError{Path: path, Detail: fmt.Sprintf("kind %q, want %q", rest[:kindLen], kind)}
	}
	return &FrameReader{r: r, path: path, journal: journal}, nil
}

// Next returns the next frame's payload. It returns io.EOF at the clean end
// of the container (the EOF marker, or — for journals — the end of the
// file at a frame boundary), ErrTorn when the file ends mid-frame, and a
// *CorruptError on a checksum mismatch or impossible length.
func (fr *FrameReader) Next() ([]byte, error) {
	if fr.done {
		return nil, io.EOF
	}
	var pre [8]byte
	if _, err := io.ReadFull(fr.r, pre[:]); err != nil {
		if err == io.EOF && fr.journal {
			fr.done = true
			return nil, io.EOF
		}
		fr.done = true
		return nil, fmt.Errorf("%w: %s ends mid-frame", ErrTorn, fr.path)
	}
	length := binary.BigEndian.Uint32(pre[0:])
	sum := binary.BigEndian.Uint32(pre[4:])
	if length == eofLen && sum == eofCRC {
		fr.done = true
		if fr.journal {
			return nil, &CorruptError{Path: fr.path, Detail: "EOF marker in journal"}
		}
		return nil, io.EOF
	}
	if length >= maxFrame {
		fr.done = true
		return nil, &CorruptError{Path: fr.path, Detail: fmt.Sprintf("frame length %d exceeds limit", length)}
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		fr.done = true
		return nil, fmt.Errorf("%w: %s ends mid-frame", ErrTorn, fr.path)
	}
	if crc32.Checksum(payload, castagnoli) != sum {
		fr.done = true
		return nil, &CorruptError{Path: fr.path, Detail: "frame checksum mismatch"}
	}
	return payload, nil
}

// Read implements io.Reader over the concatenated payload frames, so a gob
// decoder streams a component while every chunk is checksum-verified on the
// way through. The error at a torn or corrupt point is the frame error.
func (fr *FrameReader) Read(p []byte) (int, error) {
	for len(fr.stream) == 0 {
		frame, err := fr.Next()
		if err != nil {
			return 0, err
		}
		fr.stream = frame
	}
	n := copy(p, fr.stream)
	fr.stream = fr.stream[n:]
	return n, nil
}

// Drain consumes the remaining frames, verifying their checksums, and
// reports whether the container is complete and intact. Loaders call it
// after a successful decode so trailing corruption (past what the decoder
// happened to read) still fails the load.
func (fr *FrameReader) Drain() error {
	for {
		_, err := fr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// IsTorn reports whether err marks a torn container tail.
func IsTorn(err error) bool { return errors.Is(err, ErrTorn) }
