package durable

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

func TestWriteFileAtomicReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := WriteFileAtomic(nil, path, func(w io.Writer) error {
		_, err := w.Write([]byte("new content"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "new content" {
		t.Fatalf("content = %q, %v", got, err)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

func TestWriteFileAtomicWriteErrorKeepsOld(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("encoder exploded")
	err := WriteFileAtomic(nil, path, func(w io.Writer) error {
		_, _ = w.Write([]byte("partial"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "old" {
		t.Fatalf("old content lost: %q", got)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

func TestWriteFileAtomicFaultsKeepOld(t *testing.T) {
	// Whichever site the failure hits — create, write, sync, or rename —
	// the target keeps its old content.
	for _, site := range []string{SiteCreate, SiteWrite, SiteSync, SiteRename} {
		t.Run(site, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "data")
			if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
				t.Fatal(err)
			}
			inj := fault.New(1)
			inj.Add(&fault.Rule{Site: site, Mode: fault.ModeError})
			ffs := &FaultFS{Ctx: fault.With(context.Background(), inj)}
			err := WriteFileAtomic(ffs, path, func(w io.Writer) error {
				_, err := w.Write([]byte("new"))
				return err
			})
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("err = %v, want injected", err)
			}
			got, _ := os.ReadFile(path)
			if string(got) != "old" {
				t.Fatalf("old content lost: %q", got)
			}
		})
	}
}
