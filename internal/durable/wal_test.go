package durable

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

func TestWALAppendReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := CreateWAL(dir, 7, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	records := []Record{
		{Kind: 1, Payload: []byte("first")},
		{Kind: 2, Payload: []byte("")},
		{Kind: 3, Payload: bytes.Repeat([]byte("x"), 4096)},
	}
	for _, r := range records {
		if err := w.Append(r.Kind, r.Payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Base != 7 || rep.Torn || len(rep.Records) != len(records) {
		t.Fatalf("replay = base %d torn %v, %d records", rep.Base, rep.Torn, len(rep.Records))
	}
	for i, r := range records {
		if rep.Records[i].Kind != r.Kind || !bytes.Equal(rep.Records[i].Payload, r.Payload) {
			t.Fatalf("record %d = %+v", i, rep.Records[i])
		}
	}
}

func TestWALTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	w, err := CreateWAL(dir, 1, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, []byte("intact record")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(2, []byte("doomed record")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record mid-frame, as a crash mid-append would.
	path := filepath.Join(dir, WALName)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-4); err != nil {
		t.Fatal(err)
	}

	rep, err := ReplayWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Torn || len(rep.Records) != 1 || string(rep.Records[0].Payload) != "intact record" {
		t.Fatalf("replay = torn %v, %d records", rep.Torn, len(rep.Records))
	}

	// OpenWAL truncates the tail; new appends extend good bytes.
	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if w2.Base() != 1 {
		t.Fatalf("base = %d", w2.Base())
	}
	if err := w2.Append(3, []byte("after recovery")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err = ReplayWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Torn || len(rep.Records) != 2 || string(rep.Records[1].Payload) != "after recovery" {
		t.Fatalf("post-recovery replay = torn %v, %d records", rep.Torn, len(rep.Records))
	}
}

func TestWALRotate(t *testing.T) {
	dir := t.TempDir()
	w, err := CreateWAL(dir, 1, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, []byte("pre-checkpoint")); err != nil {
		t.Fatal(err)
	}
	if err := w.Rotate(2); err != nil {
		t.Fatal(err)
	}
	if w.Base() != 2 {
		t.Fatalf("base after rotate = %d", w.Base())
	}
	if err := w.Append(1, []byte("post-checkpoint")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Base != 2 || len(rep.Records) != 1 || string(rep.Records[0].Payload) != "post-checkpoint" {
		t.Fatalf("replay after rotate = base %d, %d records", rep.Base, len(rep.Records))
	}
}

func TestWALSyncBatching(t *testing.T) {
	dir := t.TempDir()
	w, err := CreateWAL(dir, 1, WALOptions{SyncEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append(1, []byte("record")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil { // commit point force-flush
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayWAL(dir, WALOptions{})
	if err != nil || len(rep.Records) != 5 {
		t.Fatalf("replay = %d records, %v", len(rep.Records), err)
	}
}

func TestWALMissing(t *testing.T) {
	_, err := ReplayWAL(t.TempDir(), WALOptions{})
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("err = %v, want fs.ErrNotExist", err)
	}
}

func TestWALCorruptHeader(t *testing.T) {
	dir := t.TempDir()
	w, err := CreateWAL(dir, 1, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, WALName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[2] ^= 0xFF // inside the magic
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayWAL(dir, WALOptions{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}
