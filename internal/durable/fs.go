package durable

import (
	"context"
	"io"
	"os"

	"repro/internal/fault"
)

// File is the subset of *os.File the durability layer needs. Sync is the
// load-bearing member: crash safety is fsync placement.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Name() string
}

// FS is the filesystem seam every disk touch goes through. Production code
// uses OS (the real filesystem); crash-matrix tests substitute a FaultFS to
// inject write, sync, and rename failures at exact call sites.
type FS interface {
	// Create truncates-or-creates a file for writing.
	Create(name string) (File, error)
	// Open opens a file (or directory, for directory fsync) read-only.
	Open(name string) (File, error)
	// Append opens a file for appending, creating it if absent.
	Append(name string) (File, error)
	// Truncate cuts a file to size (dropping a torn journal tail before
	// appending resumes).
	Truncate(name string, size int64) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	RemoveAll(path string) error
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(name string) ([]os.DirEntry, error)
	Stat(name string) (os.FileInfo, error)
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(name string) (File, error) { return os.Create(name) }
func (osFS) Open(name string) (File, error)   { return os.Open(name) }
func (osFS) Append(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) RemoveAll(path string) error                  { return os.RemoveAll(path) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }

// Fault-injection call sites inside the durability layer. Crash-matrix
// tests arm rules on these through a FaultFS.
const (
	SiteWrite  = "durable.write"
	SiteSync   = "durable.sync"
	SiteRename = "durable.rename"
	SiteCreate = "durable.create"
)

// FaultFS wraps an FS so that file writes, fsyncs, renames, and creates
// consult a fault injector first — the injectable seam the ISSUE's crash
// matrix snapshots under. A fired rule surfaces as the injected error, as a
// real failing disk would.
type FaultFS struct {
	Inner FS
	// Ctx carries the fault.Injector (see fault.With); the zero Ctx
	// disables injection.
	Ctx context.Context
}

func (f *FaultFS) ctx() context.Context {
	if f.Ctx == nil {
		return context.Background()
	}
	return f.Ctx
}

func (f *FaultFS) inner() FS {
	if f.Inner == nil {
		return OS
	}
	return f.Inner
}

func (f *FaultFS) Create(name string) (File, error) {
	if err := fault.Inject(f.ctx(), SiteCreate); err != nil {
		return nil, err
	}
	file, err := f.inner().Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FaultFS) Append(name string) (File, error) {
	if err := fault.Inject(f.ctx(), SiteCreate); err != nil {
		return nil, err
	}
	file, err := f.inner().Append(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FaultFS) Open(name string) (File, error) { return f.inner().Open(name) }

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := fault.Inject(f.ctx(), SiteRename); err != nil {
		return err
	}
	return f.inner().Rename(oldpath, newpath)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if err := fault.Inject(f.ctx(), SiteWrite); err != nil {
		return err
	}
	return f.inner().Truncate(name, size)
}

func (f *FaultFS) Remove(name string) error    { return f.inner().Remove(name) }
func (f *FaultFS) RemoveAll(path string) error { return f.inner().RemoveAll(path) }
func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	return f.inner().MkdirAll(path, perm)
}
func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) { return f.inner().ReadDir(name) }
func (f *FaultFS) Stat(name string) (os.FileInfo, error)      { return f.inner().Stat(name) }

// faultFile consults the injector on Write and Sync. A fired write rule may
// also leave a short (torn) write behind, the way a crashed kernel does.
type faultFile struct {
	File
	fs *FaultFS
}

func (f *faultFile) Write(p []byte) (int, error) {
	if err := fault.Inject(f.fs.ctx(), SiteWrite); err != nil {
		// Tear the write: commit a prefix, then fail — the on-disk state a
		// crash mid-write leaves.
		if len(p) > 1 {
			_, _ = f.File.Write(p[:len(p)/2])
		}
		return 0, err
	}
	return f.File.Write(p)
}

func (f *faultFile) Sync() error {
	if err := fault.Inject(f.fs.ctx(), SiteSync); err != nil {
		return err
	}
	return f.File.Sync()
}
