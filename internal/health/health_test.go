package health

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestNilRegistryIsReady(t *testing.T) {
	var r *Registry
	rep := r.Evaluate()
	if !rep.Ready() || rep.Verdict != VerdictReady {
		t.Fatalf("nil registry verdict = %q, want ready", rep.Verdict)
	}
	r.Register("ignored", true, func() Result { return Failedf("boom") }) // must not panic
}

func TestRollupVerdicts(t *testing.T) {
	cases := []struct {
		name     string
		results  []Result
		critical []bool
		want     Verdict
	}{
		{"all ok", []Result{OKf("a"), OKf("b")}, []bool{true, false}, VerdictReady},
		{"non-critical degraded", []Result{OKf("a"), Degradedf("slow")}, []bool{true, false}, VerdictDegraded},
		{"non-critical failed", []Result{OKf("a"), Failedf("down")}, []bool{true, false}, VerdictDegraded},
		{"critical degraded is not unready", []Result{Degradedf("wobbly"), OKf("b")}, []bool{true, false}, VerdictDegraded},
		{"critical failed", []Result{Failedf("dead"), OKf("b")}, []bool{true, false}, VerdictUnready},
	}
	for _, c := range cases {
		r := NewRegistry(nil)
		for i, res := range c.results {
			res := res
			r.Register(string(rune('a'+i)), c.critical[i], func() Result { return res })
		}
		rep := r.Evaluate()
		if rep.Verdict != c.want {
			t.Errorf("%s: verdict = %q, want %q", c.name, rep.Verdict, c.want)
		}
	}
}

func TestCausesNameFailingChecks(t *testing.T) {
	r := NewRegistry(nil)
	r.Register("good", false, func() Result { return OKf("fine") })
	r.Register("bad", true, func() Result { return Failedf("disk gone") })
	rep := r.Evaluate()
	if len(rep.Causes) != 1 || !strings.HasPrefix(rep.Causes[0], "bad:") {
		t.Fatalf("causes = %v, want exactly [bad: disk gone]", rep.Causes)
	}
	if len(rep.Checks) != 2 {
		t.Fatalf("checks = %d, want 2 (passing checks stay in the report)", len(rep.Checks))
	}
}

func TestPanickingCheckBecomesFailed(t *testing.T) {
	r := NewRegistry(nil)
	r.Register("explosive", true, func() Result { panic("kaboom") })
	rep := r.Evaluate()
	if rep.Verdict != VerdictUnready {
		t.Fatalf("verdict = %q, want unready (critical check panicked)", rep.Verdict)
	}
	if !strings.Contains(rep.Causes[0], "kaboom") {
		t.Fatalf("causes = %v, want the panic value surfaced", rep.Causes)
	}
}

func TestEvaluatePublishesGauges(t *testing.T) {
	reg := obs.NewRegistry()
	r := NewRegistry(reg)
	r.Register("wobbly", false, func() Result { return Degradedf("meh") })
	r.Evaluate()
	if v := reg.Gauge("eil_health_check", "check", "wobbly").Value(); v != 1 {
		t.Fatalf("eil_health_check{wobbly} = %v, want 1 (degraded)", v)
	}
	if v := reg.Gauge("eil_health_status").Value(); v != 1 {
		t.Fatalf("eil_health_status = %v, want 1 (degraded)", v)
	}
}
