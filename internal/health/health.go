// Package health is EIL's component-check registry and verdict rollup: the
// judgment layer that turns raw signals (breaker states, WAL appendability,
// snapshot freshness, runtime watermarks) into the three answers an
// orchestrator or load balancer actually asks — is the process alive, is it
// ready for traffic, is it degraded.
//
// Liveness stays trivially true while the process can serve HTTP at all
// (/healthz); readiness (/readyz) evaluates every registered check and
// rolls them up:
//
//   - a CRITICAL check failing  -> "unready"  (pull the instance)
//   - any check failed/degraded -> "degraded" (pull it, but it still serves
//     reduced answers — the resilience envelope's tiers keep working)
//   - everything ok             -> "ready"
//
// Checks are plain closures so every subsystem registers its own probe
// without this package importing any of them.
package health

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Status is one check's outcome.
type Status string

// Check outcomes.
const (
	StatusOK       Status = "ok"
	StatusDegraded Status = "degraded"
	StatusFailed   Status = "failed"
)

// severity orders statuses for rollup (higher is worse).
func (s Status) severity() int {
	switch s {
	case StatusFailed:
		return 2
	case StatusDegraded:
		return 1
	default:
		return 0
	}
}

// Result is what a check reports.
type Result struct {
	Status Status `json:"status"`
	Detail string `json:"detail,omitempty"`
}

// OKf builds a passing result.
func OKf(format string, args ...any) Result {
	return Result{Status: StatusOK, Detail: fmt.Sprintf(format, args...)}
}

// Degradedf builds a degraded result.
func Degradedf(format string, args ...any) Result {
	return Result{Status: StatusDegraded, Detail: fmt.Sprintf(format, args...)}
}

// Failedf builds a failing result.
func Failedf(format string, args ...any) Result {
	return Result{Status: StatusFailed, Detail: fmt.Sprintf(format, args...)}
}

// CheckFunc probes one component. It must be safe for concurrent use and
// cheap enough to run on every readiness poll.
type CheckFunc func() Result

type check struct {
	name     string
	critical bool
	fn       CheckFunc
}

// Verdict is the rollup over all checks.
type Verdict string

// Rollup verdicts.
const (
	VerdictReady    Verdict = "ready"
	VerdictDegraded Verdict = "degraded"
	VerdictUnready  Verdict = "unready"
)

// CheckResult is one check's evaluated state inside a Report.
type CheckResult struct {
	Name     string `json:"name"`
	Critical bool   `json:"critical"`
	Status   Status `json:"status"`
	Detail   string `json:"detail,omitempty"`
	// ElapsedSeconds is how long the probe took — a slow probe is itself a
	// signal (a WAL fsync probe taking 2s means the disk is struggling).
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// Report is one full evaluation: the verdict, the failing checks as a flat
// cause list (what /readyz names in its 503 body), and every check's state.
type Report struct {
	Verdict   Verdict       `json:"verdict"`
	Causes    []string      `json:"causes,omitempty"`
	Checks    []CheckResult `json:"checks"`
	CheckedAt time.Time     `json:"checked_at"`
}

// Ready reports whether the verdict admits traffic.
func (r Report) Ready() bool { return r.Verdict == VerdictReady }

// Registry holds registered checks. A nil *Registry evaluates to a ready
// report with no checks, so wiring is optional everywhere.
type Registry struct {
	mu      sync.RWMutex
	checks  []check
	metrics *obs.Registry
}

// NewRegistry returns an empty registry. metrics (optional) receives
// eil_health_status and per-check eil_health_check gauges on every
// evaluation (0 ok / 1 degraded / 2 failed).
func NewRegistry(metrics *obs.Registry) *Registry {
	return &Registry{metrics: metrics}
}

// Register adds a named check. Critical checks gate readiness hard: their
// failure makes the verdict "unready". Registration order is evaluation and
// report order.
func (r *Registry) Register(name string, critical bool, fn CheckFunc) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checks = append(r.checks, check{name: name, critical: critical, fn: fn})
}

// runCheck executes one probe, converting a panic into a failed result so
// one broken probe cannot take down the readiness endpoint.
func runCheck(c check) (res Result) {
	defer func() {
		if p := recover(); p != nil {
			res = Failedf("check panicked: %v", p)
		}
	}()
	return c.fn()
}

// Evaluate runs every check and rolls the outcomes up into a verdict.
func (r *Registry) Evaluate() Report {
	rep := Report{Verdict: VerdictReady, CheckedAt: time.Now()}
	if r == nil {
		return rep
	}
	r.mu.RLock()
	checks := make([]check, len(r.checks))
	copy(checks, r.checks)
	r.mu.RUnlock()

	worst := 0
	criticalFailed := false
	for _, c := range checks {
		t := obs.StartTimer()
		res := runCheck(c)
		cr := CheckResult{
			Name:           c.name,
			Critical:       c.critical,
			Status:         res.Status,
			Detail:         res.Detail,
			ElapsedSeconds: t.Elapsed().Seconds(),
		}
		rep.Checks = append(rep.Checks, cr)
		if sev := res.Status.severity(); sev > 0 {
			rep.Causes = append(rep.Causes, fmt.Sprintf("%s: %s", c.name, res.Detail))
			if sev > worst {
				worst = sev
			}
			if c.critical && res.Status == StatusFailed {
				criticalFailed = true
			}
		}
		r.metrics.Gauge("eil_health_check", "check", c.name).Set(float64(res.Status.severity()))
	}
	switch {
	case criticalFailed:
		rep.Verdict = VerdictUnready
	case worst > 0:
		rep.Verdict = VerdictDegraded
	}
	r.metrics.Gauge("eil_health_status").Set(float64(verdictSeverity(rep.Verdict)))
	return rep
}

func verdictSeverity(v Verdict) int {
	switch v {
	case VerdictUnready:
		return 2
	case VerdictDegraded:
		return 1
	default:
		return 0
	}
}
