package siapi

import (
	"reflect"
	"testing"

	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/textproc"
)

func TestSearchCacheHitsAndInvalidation(t *testing.T) {
	e := newEngine(t)
	reg := obs.NewRegistry()
	e.SetMetrics(reg)
	hits := reg.Counter("search_cache_hits_total")
	misses := reg.Counter("search_cache_misses_total")

	q := Query{All: []string{"storage"}}
	first := e.Search(q, 10)
	if len(first) == 0 {
		t.Fatal("no hits for warm-up query")
	}
	if hits.Value() != 0 || misses.Value() != 1 {
		t.Fatalf("after miss: hits=%d misses=%d", hits.Value(), misses.Value())
	}
	second := e.Search(q, 10)
	if hits.Value() != 1 {
		t.Fatalf("repeat query did not hit cache: hits=%d misses=%d", hits.Value(), misses.Value())
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached result diverges:\n%v\n%v", first, second)
	}

	// A write bumps the index generation; the next identical query must
	// recompute and see the new document.
	if _, err := e.Index().Add(index.Document{
		ExtID:  "new/storage.doc",
		Fields: []index.Field{{Name: FieldBody, Text: "more storage services"}},
	}); err != nil {
		t.Fatal(err)
	}
	third := e.Search(q, 10)
	if misses.Value() != 2 {
		t.Fatalf("write did not invalidate: hits=%d misses=%d", hits.Value(), misses.Value())
	}
	if len(third) != len(first)+1 {
		t.Fatalf("stale result after write: %d hits, want %d", len(third), len(first)+1)
	}
}

func TestSearchCacheIsolation(t *testing.T) {
	e := newEngine(t)
	q := Query{All: []string{"storage"}}
	first := e.Search(q, 10)
	if len(first) == 0 {
		t.Fatal("no hits")
	}
	// Mutating a returned page must not corrupt the cached copy.
	first[0].Path = "mutated"
	second := e.Search(q, 10)
	if second[0].Path == "mutated" {
		t.Fatal("caller mutation leaked into cache")
	}
}

func TestCountCache(t *testing.T) {
	e := newEngine(t)
	reg := obs.NewRegistry()
	e.SetMetrics(reg)
	q := Query{All: []string{"storage"}}
	n1 := e.Count(q)
	n2 := e.Count(q)
	if n1 != n2 {
		t.Fatalf("counts diverge: %d vs %d", n1, n2)
	}
	if reg.Counter("search_cache_hits_total").Value() != 1 {
		t.Fatal("repeat count did not hit cache")
	}
	// Limit-keyed search entries and count entries must not collide.
	if len(e.Search(q, n1)) != n1 {
		t.Fatal("search after count returned wrong page")
	}
}

func TestCacheKeyInjective(t *testing.T) {
	// Queries that would collide under naive concatenation.
	pairs := [][2]Query{
		{{All: []string{"ab", "c"}}, {All: []string{"a", "bc"}}},
		{{All: []string{"a"}, Any: []string{"b"}}, {All: []string{"a", "b"}}},
		{{Exact: "x y"}, {All: []string{"x", "y"}}},
		{{Deals: []string{"d1"}}, {Fields: []string{"d1"}}},
	}
	for _, p := range pairs {
		if cacheKey(p[0], 5) == cacheKey(p[1], 5) {
			t.Fatalf("key collision: %#v vs %#v", p[0], p[1])
		}
	}
	if cacheKey(Query{All: []string{"a"}}, 5) == cacheKey(Query{All: []string{"a"}}, 6) {
		t.Fatal("limit not part of key")
	}
}

func TestNilEngineCachesDisabled(t *testing.T) {
	// A zero-value Engine (no NewEngine) must still work uncached.
	ix := index.New(textproc.DefaultAnalyzer)
	if _, err := ix.Add(index.Document{ExtID: "d", Fields: []index.Field{{Name: FieldBody, Text: "storage"}}}); err != nil {
		t.Fatal(err)
	}
	e := &Engine{ix: ix}
	if got := e.Count(Query{All: []string{"storage"}}); got != 1 {
		t.Fatalf("uncached count = %d", got)
	}
	if got := len(e.Search(Query{All: []string{"storage"}}, 0)); got != 1 {
		t.Fatalf("uncached search = %d hits", got)
	}
}
