package siapi

// Query result caching. The EIL workload is read-heavy and repetitive —
// form queries over a slow-changing corpus — so the engine memoizes Search
// and Count results in small LRUs keyed on a canonical encoding of the
// query plus the index's generation counter. Any index write bumps the
// counter, so the first query after a write sees a flushed cache; writers
// never touch the cache at all.

import (
	"strconv"
	"strings"

	"repro/internal/index"
	"repro/internal/lru"
	"repro/internal/obs"
)

const (
	// searchCacheSize bounds the hit-list cache; entries are full result
	// pages (tens of DocHits), so keep it modest.
	searchCacheSize = 512
	// countCacheSize bounds the match-count cache; entries are a single int.
	countCacheSize = 1024
	// snippetCacheSize bounds the per-(document, terms) snippet cache.
	// Entries are one short string, but generating one re-tokenizes the
	// whole document body, so a repeated query's presented page comes back
	// for a few map lookups instead of ~a hundred tokenization passes.
	snippetCacheSize = 8192
)

// SetMetrics routes cache hit/miss counters into reg (nil disables; the
// handles are nil-safe).
func (e *Engine) SetMetrics(reg *obs.Registry) {
	e.cacheHits = reg.Counter("search_cache_hits_total")
	e.cacheMisses = reg.Counter("search_cache_misses_total")
}

// cacheKey encodes a query and limit injectively: every component is
// length-prefixed, so distinct queries can never collide by concatenation.
func cacheKey(q Query, limit int) string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(limit))
	writeList := func(tag byte, vals []string) {
		b.WriteByte(tag)
		b.WriteString(strconv.Itoa(len(vals)))
		for _, v := range vals {
			b.WriteByte(':')
			b.WriteString(strconv.Itoa(len(v)))
			b.WriteByte(':')
			b.WriteString(v)
		}
	}
	writeList('a', q.All)
	writeList('x', []string{q.Exact})
	writeList('y', q.Any)
	writeList('n', q.None)
	writeList('z', q.Fuzzy)
	writeList('p', q.Prefix)
	writeList('f', q.Fields)
	writeList('d', q.Deals)
	return b.String()
}

// cachedSearch consults the result LRU before running compute, and stores
// what compute returns; the second result reports whether the cache served
// the hit list (trace spans record it). Hit lists are copied on both sides
// of the cache boundary so callers may mutate what they receive.
func (e *Engine) cachedSearch(q Query, limit int, compute func() []DocHit) ([]DocHit, bool) {
	return e.cachedSearchKey(cacheKey(q, limit), compute)
}

// cachedSearchKey is cachedSearch for a precomputed key — the sharded
// path appends a cluster-stats epoch to the canonical query encoding.
func (e *Engine) cachedSearchKey(key string, compute func() []DocHit) ([]DocHit, bool) {
	if e.hitCache == nil {
		return compute(), false
	}
	epoch := e.ix.Generation()
	if hits, ok := e.hitCache.Get(key, epoch); ok {
		e.cacheHits.Inc()
		return cloneHits(hits), true
	}
	e.cacheMisses.Inc()
	out := compute()
	e.hitCache.Put(key, epoch, cloneHits(out))
	return out, false
}

// cachedCount is cachedSearch for match counts.
func (e *Engine) cachedCount(q Query, compute func() int) (int, bool) {
	if e.countCache == nil {
		return compute(), false
	}
	// Counts ignore limit; key with a sentinel that no Search uses.
	key := cacheKey(q, -1)
	epoch := e.ix.Generation()
	if n, ok := e.countCache.Get(key, epoch); ok {
		e.cacheHits.Inc()
		return n, true
	}
	e.cacheMisses.Inc()
	n := compute()
	e.countCache.Put(key, epoch, n)
	return n, false
}

// cloneHits shallow-copies a hit list. DocHit fields are value types
// (strings are immutable), so a slice copy fully isolates caller and cache.
func cloneHits(hits []DocHit) []DocHit {
	if hits == nil {
		return nil
	}
	out := make([]DocHit, len(hits))
	copy(out, hits)
	return out
}

// snippet returns the highlighted extract for doc against terms, memoized
// per (document, terms) under the index generation. Strings are immutable,
// so the cached value is shared without cloning.
func (e *Engine) snippet(doc index.DocID, terms []string) string {
	if e.snipCache == nil {
		return e.ix.Snippet(doc, FieldBody, terms, snippetWidth)
	}
	var b strings.Builder
	b.WriteString(strconv.FormatUint(uint64(doc), 10))
	for _, t := range terms {
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(len(t)))
		b.WriteByte(':')
		b.WriteString(t)
	}
	key := b.String()
	epoch := e.ix.Generation()
	if s, ok := e.snipCache.Get(key, epoch); ok {
		return s
	}
	s := e.ix.Snippet(doc, FieldBody, terms, snippetWidth)
	e.snipCache.Put(key, epoch, s)
	return s
}

func newHitCache() *lru.Cache[string, []DocHit] {
	return lru.New[string, []DocHit](searchCacheSize)
}

func newSnippetCache() *lru.Cache[string, string] {
	return lru.New[string, string](snippetCacheSize)
}

func newCountCache() *lru.Cache[string, int] {
	return lru.New[string, int](countCacheSize)
}
