package siapi

// Query result caching. The EIL workload is read-heavy and repetitive —
// form queries over a slow-changing corpus — so the engine memoizes Search
// and Count results in small LRUs keyed on a canonical encoding of the
// query plus the index's generation counter. Any index write bumps the
// counter, so the first query after a write sees a flushed cache; writers
// never touch the cache at all.

import (
	"strconv"
	"strings"

	"repro/internal/lru"
	"repro/internal/obs"
)

const (
	// searchCacheSize bounds the hit-list cache; entries are full result
	// pages (tens of DocHits), so keep it modest.
	searchCacheSize = 512
	// countCacheSize bounds the match-count cache; entries are a single int.
	countCacheSize = 1024
)

// SetMetrics routes cache hit/miss counters into reg (nil disables; the
// handles are nil-safe).
func (e *Engine) SetMetrics(reg *obs.Registry) {
	e.cacheHits = reg.Counter("search_cache_hits_total")
	e.cacheMisses = reg.Counter("search_cache_misses_total")
}

// cacheKey encodes a query and limit injectively: every component is
// length-prefixed, so distinct queries can never collide by concatenation.
func cacheKey(q Query, limit int) string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(limit))
	writeList := func(tag byte, vals []string) {
		b.WriteByte(tag)
		b.WriteString(strconv.Itoa(len(vals)))
		for _, v := range vals {
			b.WriteByte(':')
			b.WriteString(strconv.Itoa(len(v)))
			b.WriteByte(':')
			b.WriteString(v)
		}
	}
	writeList('a', q.All)
	writeList('x', []string{q.Exact})
	writeList('y', q.Any)
	writeList('n', q.None)
	writeList('z', q.Fuzzy)
	writeList('p', q.Prefix)
	writeList('f', q.Fields)
	writeList('d', q.Deals)
	return b.String()
}

// cachedSearch consults the result LRU before running compute, and stores
// what compute returns; the second result reports whether the cache served
// the hit list (trace spans record it). Hit lists are copied on both sides
// of the cache boundary so callers may mutate what they receive.
func (e *Engine) cachedSearch(q Query, limit int, compute func() []DocHit) ([]DocHit, bool) {
	if e.hitCache == nil {
		return compute(), false
	}
	key := cacheKey(q, limit)
	epoch := e.ix.Generation()
	if hits, ok := e.hitCache.Get(key, epoch); ok {
		e.cacheHits.Inc()
		return cloneHits(hits), true
	}
	e.cacheMisses.Inc()
	out := compute()
	e.hitCache.Put(key, epoch, cloneHits(out))
	return out, false
}

// cachedCount is cachedSearch for match counts.
func (e *Engine) cachedCount(q Query, compute func() int) (int, bool) {
	if e.countCache == nil {
		return compute(), false
	}
	// Counts ignore limit; key with a sentinel that no Search uses.
	key := cacheKey(q, -1)
	epoch := e.ix.Generation()
	if n, ok := e.countCache.Get(key, epoch); ok {
		e.cacheHits.Inc()
		return n, true
	}
	e.cacheMisses.Inc()
	n := compute()
	e.countCache.Put(key, epoch, n)
	return n, false
}

// cloneHits shallow-copies a hit list. DocHit fields are value types
// (strings are immutable), so a slice copy fully isolates caller and cache.
func cloneHits(hits []DocHit) []DocHit {
	if hits == nil {
		return nil
	}
	out := make([]DocHit, len(hits))
	copy(out, hits)
	return out
}

func newHitCache() *lru.Cache[string, []DocHit] {
	return lru.New[string, []DocHit](searchCacheSize)
}

func newCountCache() *lru.Cache[string, int] {
	return lru.New[string, int](countCacheSize)
}
