package siapi

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzParseKeywords throws arbitrary search-box text at the keyword-query
// parser. It must never panic, must be deterministic, and every extracted
// term must be a real token: non-empty and free of whitespace (the index
// analyzer assumes tokenized input).
func FuzzParseKeywords(f *testing.F) {
	for _, seed := range []string{
		`"help desk" outsourcing -legacy repl*`,
		`"first phrase" then "second phrase" -x`,
		`--double -* ** "unclosed`,
		`   `,
		`plain words only`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		q := ParseKeywords(s)
		if !reflect.DeepEqual(q, ParseKeywords(s)) {
			t.Fatalf("nondeterministic parse of %q", s)
		}
		check := func(kind string, terms []string) {
			for _, w := range terms {
				if w == "" {
					t.Fatalf("%s term empty for input %q: %+v", kind, s, q)
				}
				if strings.ContainsAny(w, " \t\n\r") {
					t.Fatalf("%s term %q contains whitespace for input %q", kind, w, s)
				}
			}
		}
		check("all", q.All)
		check("none", q.None)
		check("prefix", q.Prefix)
		if q.Empty() && strings.IndexFunc(s, func(r rune) bool { return r == '"' }) < 0 &&
			len(strings.Fields(s)) > 0 {
			t.Fatalf("tokens in %q parsed to an empty query", s)
		}
	})
}
