package siapi

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/index"
	"repro/internal/textproc"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	ix := index.New(textproc.DefaultAnalyzer)
	docs := []index.Document{
		{ExtID: "a/sol.deck", Fields: []index.Field{
			{Name: FieldTitle, Text: "Technical Solution", Weight: 2},
			{Name: FieldBody, Text: "Storage Management Services with data replication between sites. RTO under 48 hours."},
			{Name: FieldDeal, Text: "DEAL A", Keyword: true},
		}, Meta: map[string]string{"deal": "DEAL A"}},
		{ExtID: "a/notes.txt", Fields: []index.Field{
			{Name: FieldTitle, Text: "Meeting notes"},
			{Name: FieldBody, Text: "Discussed replication licensing and network failover."},
			{Name: FieldDeal, Text: "DEAL A", Keyword: true},
		}, Meta: map[string]string{"deal": "DEAL A"}},
		{ExtID: "b/scope.deck", Fields: []index.Field{
			{Name: FieldTitle, Text: "Scope baseline"},
			{Name: FieldBody, Text: "End User Services and Customer Service Center staffing. No replication required."},
			{Name: FieldDeal, Text: "DEAL B", Keyword: true},
		}, Meta: map[string]string{"deal": "DEAL B"}},
		{ExtID: "b/tsa.grid", Fields: []index.Field{
			{Name: FieldTitle, Text: "TSA form"},
			{Name: FieldBody, Text: "cross tower TSA field with no value"},
			{Name: FieldDeal, Text: "DEAL B", Keyword: true},
		}, Meta: map[string]string{"deal": "DEAL B"}},
	}
	for _, d := range docs {
		if _, err := ix.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	return NewEngine(ix)
}

func paths(hits []DocHit) []string {
	out := make([]string, len(hits))
	for i, h := range hits {
		out[i] = h.Path
	}
	return out
}

func TestSearchAllWords(t *testing.T) {
	e := newEngine(t)
	hits := e.Search(Query{All: []string{"replication", "storage"}}, 0)
	if len(hits) != 1 || hits[0].Path != "a/sol.deck" {
		t.Fatalf("hits = %v", paths(hits))
	}
	if hits[0].DealID != "DEAL A" {
		t.Fatalf("deal = %q", hits[0].DealID)
	}
	if !strings.Contains(hits[0].Snippet, "<em>") {
		t.Fatalf("snippet = %q", hits[0].Snippet)
	}
}

func TestSearchExactPhrase(t *testing.T) {
	e := newEngine(t)
	hits := e.Search(Query{Exact: "data replication"}, 0)
	if len(hits) != 1 || hits[0].Path != "a/sol.deck" {
		t.Fatalf("hits = %v", paths(hits))
	}
	// Words in the wrong order must not match as a phrase.
	if hits := e.Search(Query{Exact: "replication data"}, 0); len(hits) != 0 {
		t.Fatalf("reversed phrase matched: %v", paths(hits))
	}
}

func TestSearchAnyNone(t *testing.T) {
	e := newEngine(t)
	hits := e.Search(Query{Any: []string{"replication", "staffing"}}, 0)
	if len(hits) != 3 {
		t.Fatalf("any hits = %v", paths(hits))
	}
	hits = e.Search(Query{Any: []string{"replication", "staffing"}, None: []string{"network"}}, 0)
	if len(hits) != 2 {
		t.Fatalf("none hits = %v", paths(hits))
	}
}

func TestSearchTitleField(t *testing.T) {
	e := newEngine(t)
	hits := e.Search(Query{All: []string{"TSA"}}, 0)
	if len(hits) != 1 || hits[0].Path != "b/tsa.grid" {
		t.Fatalf("hits = %v", paths(hits))
	}
	// Restricting fields to title only must still find it (it is in both).
	hits = e.Search(Query{All: []string{"TSA"}, Fields: []string{FieldTitle}}, 0)
	if len(hits) != 1 {
		t.Fatalf("title-only hits = %v", paths(hits))
	}
	// But a body-only word must not match in title-only mode.
	hits = e.Search(Query{All: []string{"failover"}, Fields: []string{FieldTitle}}, 0)
	if len(hits) != 0 {
		t.Fatalf("title-only found body word: %v", paths(hits))
	}
}

func TestSearchDealScoping(t *testing.T) {
	e := newEngine(t)
	// "replication" appears in three docs across both deals; scoping to
	// DEAL B keeps only its one.
	hits := e.Search(Query{All: []string{"replication"}}, 0)
	if len(hits) != 3 {
		t.Fatalf("unscoped hits = %v", paths(hits))
	}
	hits = e.Search(Query{All: []string{"replication"}, Deals: []string{"DEAL B"}}, 0)
	if len(hits) != 1 || hits[0].Path != "b/scope.deck" {
		t.Fatalf("scoped hits = %v", paths(hits))
	}
	hits = e.Search(Query{All: []string{"replication"}, Deals: []string{"DEAL A", "DEAL B"}}, 0)
	if len(hits) != 3 {
		t.Fatalf("two-deal scope hits = %v", paths(hits))
	}
}

func TestEmptyQuery(t *testing.T) {
	e := newEngine(t)
	if hits := e.Search(Query{}, 0); hits != nil {
		t.Fatalf("empty query returned %v", paths(hits))
	}
	if n := e.Count(Query{Deals: []string{"DEAL A"}}); n != 0 {
		t.Fatalf("deal-only query counted %d", n)
	}
	if !(Query{}).Empty() || (Query{Exact: "x"}).Empty() {
		t.Fatal("Empty() broken")
	}
}

func TestCount(t *testing.T) {
	e := newEngine(t)
	if n := e.Count(Query{All: []string{"replication"}}); n != 3 {
		t.Fatalf("count = %d", n)
	}
}

func TestSearchActivities(t *testing.T) {
	e := newEngine(t)
	acts := e.SearchActivities(Query{All: []string{"replication"}}, 10)
	if len(acts) != 2 {
		t.Fatalf("activities = %+v", acts)
	}
	// Scores normalized: best activity == 1.0.
	if acts[0].Score != 1.0 {
		t.Fatalf("top activity score = %v", acts[0].Score)
	}
	if acts[1].Score <= 0 || acts[1].Score > 1 {
		t.Fatalf("second activity score = %v", acts[1].Score)
	}
	total := 0
	for _, a := range acts {
		total += len(a.Docs)
	}
	if total != 3 {
		t.Fatalf("docs across activities = %d", total)
	}
}

func TestSearchActivitiesPerDealCap(t *testing.T) {
	e := newEngine(t)
	acts := e.SearchActivities(Query{Any: []string{"replication", "staffing", "tsa", "notes"}}, 1)
	for _, a := range acts {
		if len(a.Docs) > 1 {
			t.Fatalf("perDeal cap ignored: %+v", a)
		}
	}
}

func TestParseKeywords(t *testing.T) {
	q := ParseKeywords(`storage "data replication" -confidential management`)
	if q.Exact != "data replication" {
		t.Fatalf("exact = %q", q.Exact)
	}
	if len(q.All) != 2 || q.All[0] != "storage" || q.All[1] != "management" {
		t.Fatalf("all = %v", q.All)
	}
	if len(q.None) != 1 || q.None[0] != "confidential" {
		t.Fatalf("none = %v", q.None)
	}
}

func TestParseKeywordsEdge(t *testing.T) {
	if q := ParseKeywords(""); !q.Empty() {
		t.Fatalf("empty parse = %+v", q)
	}
	q := ParseKeywords(`"one phrase" "two phrase"`)
	if q.Exact != "one phrase" || len(q.All) != 2 {
		t.Fatalf("double phrase = %+v", q)
	}
	q = ParseKeywords(`dangling "quote`)
	if q.Exact != "" || len(q.All) < 1 {
		t.Fatalf("dangling quote = %+v", q)
	}
	q = ParseKeywords("-")
	if len(q.None) != 0 {
		t.Fatalf("bare dash = %+v", q)
	}
}

func TestSearchLimit(t *testing.T) {
	e := newEngine(t)
	hits := e.Search(Query{Any: []string{"replication", "tsa", "staffing"}}, 2)
	if len(hits) != 2 {
		t.Fatalf("limit ignored: %v", paths(hits))
	}
}

func TestQueryCaseInsensitive(t *testing.T) {
	e := newEngine(t)
	a := e.Count(Query{All: []string{"REPLICATION"}})
	b := e.Count(Query{All: []string{"replication"}})
	if a != b || a == 0 {
		t.Fatalf("case sensitivity: %d vs %d", a, b)
	}
}

func TestStemmedQueryMatches(t *testing.T) {
	e := newEngine(t)
	// "replicating" stems to the same root as "replication".
	if n := e.Count(Query{All: []string{"replicating"}}); n == 0 {
		t.Fatal("stemming not applied to query terms")
	}
}

func BenchmarkSearchActivities(b *testing.B) {
	ix := index.New(textproc.DefaultAnalyzer)
	for i := 0; i < 2000; i++ {
		deal := fmt.Sprintf("DEAL %d", i%20)
		ix.Add(index.Document{
			ExtID: fmt.Sprintf("d%d", i),
			Fields: []index.Field{
				{Name: FieldBody, Text: "storage management replication services scope network recovery"},
				{Name: FieldDeal, Text: deal, Keyword: true},
			},
			Meta: map[string]string{"deal": deal},
		})
	}
	e := NewEngine(ix)
	q := Query{All: []string{"replication"}}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.SearchActivities(q, 5)
	}
}

func TestFuzzyQueryTolerance(t *testing.T) {
	e := newEngine(t)
	// "replocation" (typo) must still find the replication documents.
	hits := e.Search(Query{Fuzzy: []string{"replocation"}}, 0)
	if len(hits) == 0 {
		t.Fatal("fuzzy query found nothing")
	}
	// And conjunction with exact terms narrows as usual.
	hits = e.Search(Query{Fuzzy: []string{"replocation"}, All: []string{"storage"}}, 0)
	if len(hits) != 1 || hits[0].Path != "a/sol.deck" {
		t.Fatalf("fuzzy+all hits = %v", paths(hits))
	}
	if (Query{Fuzzy: []string{"x"}}).Empty() {
		t.Fatal("fuzzy-only query reported empty")
	}
}

func TestPrefixKeywordParse(t *testing.T) {
	q := ParseKeywords("stor* replication")
	if len(q.Prefix) != 1 || q.Prefix[0] != "stor" || len(q.All) != 1 {
		t.Fatalf("parse = %+v", q)
	}
	e := newEngine(t)
	hits := e.Search(q, 0)
	if len(hits) != 1 || hits[0].Path != "a/sol.deck" {
		t.Fatalf("prefix search hits = %v", paths(hits))
	}
	// A bare '*' is not a prefix.
	if q := ParseKeywords("*"); len(q.Prefix) != 0 {
		t.Fatalf("bare star parsed: %+v", q)
	}
}
