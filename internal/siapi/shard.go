package siapi

// Sharded-search support: the two-phase global-statistics protocol needs
// each shard's engine to expose stats collection, and the coordinator
// needs a canonical query key and a per-shard generation to build its
// cluster-wide cache epochs.

import (
	"context"
	"fmt"

	"repro/internal/fault"
	"repro/internal/index"
)

// Generation exposes the underlying index's mutation counter. The
// coordinator joins every shard's generation into the cluster stats
// epoch, so any write anywhere invalidates stats-scored cache entries.
func (e *Engine) Generation() uint64 { return e.ix.Generation() }

// Key returns the canonical injective encoding of q, for coordinator-side
// memoization (the merged-stats cache). The sentinel limit keeps Key
// disjoint from every Search and Count cache key.
func Key(q Query) string { return cacheKey(q, -2) }

// TryCollectStatsCtx collects this shard's contribution to the global
// scoring statistics for q. It shares the "siapi.search" fault-injection
// site with TrySearchCtx: a shard whose search backend is down fails
// stats collection the same way, so the scatter path sees one consistent
// failure per shard.
func (e *Engine) TryCollectStatsCtx(ctx context.Context, q Query) (*index.Stats, error) {
	if q.Empty() {
		return nil, nil
	}
	if err := fault.Inject(ctx, fault.SiteSIAPISearch); err != nil {
		return nil, fmt.Errorf("siapi: collect stats: %w", err)
	}
	return e.ix.CollectStats(e.Compile(q)), nil
}
