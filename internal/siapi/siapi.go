// Package siapi implements EIL's Search and Index API layer — the query
// interface the paper's system uses against the OmniFind semantic index.
// It exposes the text section of the Figure 8 search form ("all of these
// words", "the exact phrase", "any of these words", "none of these words",
// each targeted at a document section), compiles it to the low-level index
// query algebra, and supports scoping a search to a set of business
// activities (step 8 of the Figure 1 algorithm).
package siapi

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/fault"
	"repro/internal/index"
	"repro/internal/lru"
	"repro/internal/obs"
	"repro/internal/textproc"
	"repro/internal/trace"
)

// Default field targets. "anywhere in EWB" searches body and title;
// annotators add concept fields (tower, person, role, techsolution) that
// queries may target directly.
const (
	FieldBody  = "body"
	FieldTitle = "title"
	FieldDeal  = "deal" // keyword field carrying the activity ID
)

// snippetWidth is the highlighted-extract length, in tokens.
const snippetWidth = 30

// Query is a SIAPI search request.
type Query struct {
	// All of these words must occur (in any target field).
	All []string
	// Exact is a phrase that must occur contiguously in one field.
	Exact string
	// Any requires at least one of these words when non-empty.
	Any []string
	// None excludes documents containing any of these words.
	None []string
	// Fuzzy words must occur up to one edit away (typo tolerance for names
	// and client terms); each behaves like an All word with slack.
	Fuzzy []string
	// Prefix terms must occur as the start of some indexed term (the
	// search box's trailing wildcard, `stor*`). Note the dictionary holds
	// stemmed terms, so prefixes longer than a word's stem will not match.
	Prefix []string
	// Fields are the index fields to search; empty means body + title
	// ("anywhere in EWB").
	Fields []string
	// Deals restricts matches to these business activities; empty means
	// unscoped (steps 13–15 of Figure 1).
	Deals []string
}

// Empty reports whether the query has no text criteria (deal scoping alone
// does not make a query).
func (q Query) Empty() bool {
	return len(q.All) == 0 && q.Exact == "" && len(q.Any) == 0 && len(q.None) == 0 &&
		len(q.Fuzzy) == 0 && len(q.Prefix) == 0
}

// ParseKeywords builds a query from a free-text search-box string, the way
// the OmniFind keyword baseline is driven in the paper's evaluation.
// Double-quoted runs become the exact phrase; '-' prefixed words become
// exclusions; everything else is an All word.
func ParseKeywords(s string) Query {
	var q Query
	rest := s
	for {
		open := strings.IndexByte(rest, '"')
		if open < 0 {
			break
		}
		close := strings.IndexByte(rest[open+1:], '"')
		if close < 0 {
			break
		}
		phrase := rest[open+1 : open+1+close]
		if q.Exact == "" {
			q.Exact = strings.TrimSpace(phrase)
		} else {
			q.All = append(q.All, strings.Fields(phrase)...)
		}
		rest = rest[:open] + " " + rest[open+1+close+1:]
	}
	for _, w := range strings.Fields(rest) {
		switch {
		case strings.HasPrefix(w, "-") && len(w) > 1:
			q.None = append(q.None, w[1:])
		case strings.HasSuffix(w, "*") && len(w) > 1:
			q.Prefix = append(q.Prefix, strings.TrimSuffix(w, "*"))
		default:
			q.All = append(q.All, w)
		}
	}
	return q
}

// DocHit is one scored document.
type DocHit struct {
	Path    string // repository path (index external ID)
	DealID  string
	Title   string
	Score   float64
	Snippet string
	// doc is the internal index document ID, kept so the activity path can
	// generate snippets lazily — only for the documents that survive the
	// per-deal cut, not for every scored candidate. Valid only within the
	// engine that produced the hit.
	doc index.DocID
}

// ActivityHit groups a search's documents by business activity, the
// presentation unit of EIL results (Figure 9: activities first, then each
// activity's documents).
type ActivityHit struct {
	DealID string
	// Score is the normalized average of the activity's document scores —
	// the paper's "normalize the document relevance scores from OmniFind
	// (e.g., compute an average score)".
	Score float64
	Docs  []DocHit
}

// Engine executes SIAPI queries against a document index. Search and Count
// results are memoized in epoch-invalidated LRUs (see cache.go); any index
// write invalidates them through the index generation counter.
type Engine struct {
	ix         *index.Index
	hitCache   *lru.Cache[string, []DocHit]
	countCache *lru.Cache[string, int]
	snipCache  *lru.Cache[string, string]
	// Cache telemetry; nil-safe no-ops until SetMetrics is called.
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
}

// NewEngine wraps an index.
func NewEngine(ix *index.Index) *Engine {
	return &Engine{ix: ix, hitCache: newHitCache(), countCache: newCountCache(), snipCache: newSnippetCache()}
}

// Index exposes the wrapped index (the ingest pipeline writes through it).
func (e *Engine) Index() *index.Index { return e.ix }

// Compile lowers a SIAPI query to the index algebra. Exposed for tests and
// for the core layer's explain output.
func (e *Engine) Compile(q Query) index.Query {
	analyzer := e.ix.Analyzer()
	fields := q.Fields
	if len(fields) == 0 {
		fields = []string{FieldBody, FieldTitle}
	}
	// A query word matches if it appears in any target field. Words that
	// tokenize into several terms (email addresses, hyphenations) become
	// per-field phrases.
	termAcross := func(word string) index.Query {
		terms := analyzer.Terms(word)
		if len(terms) == 0 {
			terms = []string{analyzer.NormalizeTerm(word)}
		}
		should := make([]index.Query, 0, len(fields))
		for _, f := range fields {
			if len(terms) == 1 {
				should = append(should, index.TermQuery{Field: f, Term: terms[0]})
			} else {
				should = append(should, index.PhraseQuery{Field: f, Terms: terms})
			}
		}
		if len(should) == 1 {
			return should[0]
		}
		return index.BoolQuery{Should: should}
	}
	var root index.BoolQuery
	for _, w := range q.All {
		root.Must = append(root.Must, termAcross(w))
	}
	for _, w := range q.Fuzzy {
		term := analyzer.NormalizeTerm(w)
		should := make([]index.Query, 0, len(fields))
		for _, f := range fields {
			should = append(should, index.FuzzyQuery{Field: f, Term: term, MaxDist: 1})
		}
		if len(should) == 1 {
			root.Must = append(root.Must, should[0])
		} else {
			root.Must = append(root.Must, index.BoolQuery{Should: should})
		}
	}
	for _, w := range q.Prefix {
		prefix := strings.ToLower(strings.TrimSpace(w))
		should := make([]index.Query, 0, len(fields))
		for _, f := range fields {
			should = append(should, index.PrefixQuery{Field: f, Prefix: prefix})
		}
		if len(should) == 1 {
			root.Must = append(root.Must, should[0])
		} else {
			root.Must = append(root.Must, index.BoolQuery{Should: should})
		}
	}
	if q.Exact != "" {
		terms := analyzer.Terms(q.Exact)
		phrases := make([]index.Query, 0, len(fields))
		for _, f := range fields {
			phrases = append(phrases, index.PhraseQuery{Field: f, Terms: terms})
		}
		if len(phrases) == 1 {
			root.Must = append(root.Must, phrases[0])
		} else {
			root.Must = append(root.Must, index.BoolQuery{Should: phrases})
		}
	}
	for _, w := range q.Any {
		root.Should = append(root.Should, termAcross(w))
	}
	for _, w := range q.None {
		root.MustNot = append(root.MustNot, termAcross(w))
	}
	if len(q.Deals) > 0 {
		scope := make([]index.Query, 0, len(q.Deals))
		for _, d := range q.Deals {
			scope = append(scope, index.TermQuery{Field: FieldDeal, Term: index.KeywordTerm(d)})
		}
		root.Must = append(root.Must, index.BoolQuery{Should: scope})
	}
	return root
}

// queryTerms returns the normalized positive terms, for snippet
// highlighting.
func (e *Engine) queryTerms(q Query) []string {
	analyzer := e.ix.Analyzer()
	var terms []string
	for _, w := range q.All {
		terms = append(terms, analyzer.NormalizeTerm(w))
	}
	terms = append(terms, analyzer.Terms(q.Exact)...)
	for _, w := range q.Any {
		terms = append(terms, analyzer.NormalizeTerm(w))
	}
	for _, w := range q.Fuzzy {
		terms = append(terms, analyzer.NormalizeTerm(w))
	}
	return terms
}

// Search runs the query and returns up to limit document hits with
// snippets. limit <= 0 returns all. Results are served from the
// epoch-invalidated cache when the same query repeats against an unchanged
// index.
func (e *Engine) Search(q Query, limit int) []DocHit {
	return e.SearchCtx(context.Background(), q, limit)
}

// SearchCtx is Search recording a trace span when ctx carries one: cache
// hit or miss, the scope size, and the hit count. Injected faults surface
// as an empty hit list; callers that need the failure use TrySearchCtx.
func (e *Engine) SearchCtx(ctx context.Context, q Query, limit int) []DocHit {
	hits, _ := e.TrySearchCtx(ctx, q, limit)
	return hits
}

// TrySearchCtx is SearchCtx surfacing backend failure: it is the engine's
// fault-injection boundary (site "siapi.search", standing in for an
// unreachable OmniFind), and the error return is what the core resilience
// layer retries, breaks, and degrades on. A healthy engine never errors.
func (e *Engine) TrySearchCtx(ctx context.Context, q Query, limit int) ([]DocHit, error) {
	return e.trySearch(ctx, q, limit, nil, "")
}

// TrySearchStatsCtx is TrySearchCtx scoring against merged cluster-global
// statistics (see index.SearchStatsCtx). statsEpoch keys the result cache:
// it must identify the cluster state the stats were collected at, so a
// cached entry is only served while every shard is unchanged.
func (e *Engine) TrySearchStatsCtx(ctx context.Context, q Query, limit int, st *index.Stats, statsEpoch string) ([]DocHit, error) {
	return e.trySearch(ctx, q, limit, st, statsEpoch)
}

func (e *Engine) trySearch(ctx context.Context, q Query, limit int, st *index.Stats, statsEpoch string) ([]DocHit, error) {
	return e.trySearchSnippets(ctx, q, limit, st, statsEpoch, true)
}

// trySearchSnippets is trySearch with snippet generation optional. A
// snippet re-tokenizes the document body — by far the most expensive part
// of materializing a hit — so the activity path, which scores every
// matching document but presents only a handful per deal, asks for bare
// hits and snippets just the survivors (see tryActivities). Bare and
// snippeted hit lists cache under distinct keys.
func (e *Engine) trySearchSnippets(ctx context.Context, q Query, limit int, st *index.Stats, statsEpoch string, withSnippets bool) ([]DocHit, error) {
	if q.Empty() {
		return nil, nil
	}
	if err := fault.Inject(ctx, fault.SiteSIAPISearch); err != nil {
		return nil, fmt.Errorf("siapi: search: %w", err)
	}
	sctx, sp := trace.StartSpan(ctx, "siapi.search")
	key := cacheKey(q, limit)
	if statsEpoch != "" {
		key += "|s:" + statsEpoch
	}
	if !withSnippets {
		key += "|bare"
	}
	hits, cached := e.cachedSearchKey(key, func() []DocHit {
		hits := e.ix.SearchStatsCtx(sctx, e.Compile(q), limit, st)
		terms := e.queryTerms(q)
		out := make([]DocHit, 0, len(hits))
		for _, h := range hits {
			path, err := e.ix.ExtID(h.Doc)
			if err != nil {
				continue
			}
			snippet := ""
			if withSnippets {
				snippet = e.snippet(h.Doc, terms)
			}
			out = append(out, DocHit{
				Path:    path,
				DealID:  e.ix.Meta(h.Doc, "deal"),
				Title:   e.ix.FieldText(h.Doc, FieldTitle),
				Score:   h.Score,
				Snippet: snippet,
				doc:     h.Doc,
			})
		}
		return out
	})
	if sp != nil {
		sp.SetBool("cache_hit", cached)
		sp.SetInt("scope_deals", len(q.Deals))
		sp.SetInt("hits", len(hits))
		sp.End()
	}
	return hits, nil
}

// Count returns the number of matching documents — the "N documents
// returned" figure quoted throughout the paper's keyword-baseline analysis.
func (e *Engine) Count(q Query) int {
	if q.Empty() {
		return 0
	}
	n, _ := e.cachedCount(q, func() int {
		return e.ix.Count(e.Compile(q))
	})
	return n
}

// SearchActivities groups document hits by business activity and ranks
// activities by their normalized average document score. perDeal bounds the
// documents listed per activity (<= 0 keeps all).
func (e *Engine) SearchActivities(q Query, perDeal int) []ActivityHit {
	return e.SearchActivitiesCtx(context.Background(), q, perDeal)
}

// SearchActivitiesCtx is SearchActivities under a trace span recording the
// grouped activity count. Backend failure surfaces as no activities; the
// resilient core path uses TrySearchActivitiesCtx instead.
func (e *Engine) SearchActivitiesCtx(ctx context.Context, q Query, perDeal int) []ActivityHit {
	hits, _ := e.TrySearchActivitiesCtx(ctx, q, perDeal)
	return hits
}

// TrySearchActivitiesCtx is SearchActivitiesCtx surfacing backend failure
// for the core resilience layer.
func (e *Engine) TrySearchActivitiesCtx(ctx context.Context, q Query, perDeal int) ([]ActivityHit, error) {
	return e.tryActivities(ctx, q, perDeal, nil, "", true)
}

// TrySearchActivitiesRawCtx is the sharded scatter-gather variant: it
// scores documents against merged cluster-global statistics and returns
// raw per-activity average scores (no [0, 1] normalization), so the
// coordinator can normalize once against the best activity across every
// shard — exactly what the monolithic engine computes.
func (e *Engine) TrySearchActivitiesRawCtx(ctx context.Context, q Query, perDeal int, st *index.Stats, statsEpoch string) ([]ActivityHit, error) {
	return e.tryActivities(ctx, q, perDeal, st, statsEpoch, false)
}

func (e *Engine) tryActivities(ctx context.Context, q Query, perDeal int, st *index.Stats, statsEpoch string, normalize bool) ([]ActivityHit, error) {
	ctx, sp := trace.StartSpan(ctx, "siapi.activities")
	docs, err := e.trySearchSnippets(ctx, q, 0, st, statsEpoch, false)
	if err != nil {
		if sp != nil {
			sp.Set("error", err.Error())
			sp.End()
		}
		return nil, err
	}
	byDeal := map[string][]DocHit{}
	for _, d := range docs {
		if d.DealID == "" {
			continue
		}
		byDeal[d.DealID] = append(byDeal[d.DealID], d)
	}
	terms := e.queryTerms(q)
	hits := make([]ActivityHit, 0, len(byDeal))
	maxAvg := 0.0
	for deal, ds := range byDeal {
		sum := 0.0
		for _, d := range ds {
			sum += d.Score
		}
		avg := sum / float64(len(ds))
		if avg > maxAvg {
			maxAvg = avg
		}
		if perDeal > 0 && len(ds) > perDeal {
			ds = ds[:perDeal]
		}
		// Snippet only what will be presented: the activity average above
		// is computed over every scored document, but only these survivors
		// pay the re-tokenization cost.
		for i := range ds {
			ds[i].Snippet = e.snippet(ds[i].doc, terms)
		}
		hits = append(hits, ActivityHit{DealID: deal, Score: avg, Docs: ds})
	}
	// Normalize activity scores into [0, 1] relative to the best activity.
	if normalize && maxAvg > 0 {
		for i := range hits {
			hits[i].Score /= maxAvg
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].DealID < hits[j].DealID
	})
	if sp != nil {
		sp.SetInt("activities", len(hits))
		sp.End()
	}
	return hits, nil
}

// Analyzer returns the analyzer shared with the index; the core layer uses
// it to pre-normalize concept values.
func (e *Engine) Analyzer() textproc.Analyzer { return e.ix.Analyzer() }
