package relstore

import (
	"fmt"
	"sort"
	"strings"
)

// sortedIndex is an ordered secondary index over a single column, backed by
// a sorted slice of (value, slot) pairs. It serves range predicates
// (BETWEEN, <, <=, >, >=) that hash indexes cannot. NULLs are not indexed;
// range predicates never match NULL anyway.
type sortedIndex struct {
	name   string
	column int
	// entries are sorted by value (Compare order), ties by slot.
	entries []sortedEntry
}

type sortedEntry struct {
	value Value
	slot  int
}

func (ix *sortedIndex) insert(v Value, slot int) {
	if v == nil {
		return
	}
	i := ix.search(v, slot)
	ix.entries = append(ix.entries, sortedEntry{})
	copy(ix.entries[i+1:], ix.entries[i:])
	ix.entries[i] = sortedEntry{value: v, slot: slot}
}

func (ix *sortedIndex) remove(v Value, slot int) {
	if v == nil {
		return
	}
	i := ix.search(v, slot)
	if i < len(ix.entries) && ix.entries[i].slot == slot && Equal(ix.entries[i].value, v) {
		ix.entries = append(ix.entries[:i], ix.entries[i+1:]...)
	}
}

// search returns the insertion point for (v, slot).
func (ix *sortedIndex) search(v Value, slot int) int {
	return sort.Search(len(ix.entries), func(i int) bool {
		c, err := Compare(ix.entries[i].value, v)
		if err != nil {
			// Heterogeneous values cannot occur: the column is typed.
			return true
		}
		if c != 0 {
			return c > 0
		}
		return ix.entries[i].slot >= slot
	})
}

// Range scans slots with lo <= value <= hi; nil bounds are open. The
// inclusive flags control boundary behaviour.
func (ix *sortedIndex) scanRange(lo, hi Value, loInc, hiInc bool, fn func(slot int) bool) {
	start := 0
	if lo != nil {
		start = sort.Search(len(ix.entries), func(i int) bool {
			c, err := Compare(ix.entries[i].value, lo)
			if err != nil {
				return true
			}
			if loInc {
				return c >= 0
			}
			return c > 0
		})
	}
	for i := start; i < len(ix.entries); i++ {
		if hi != nil {
			c, err := Compare(ix.entries[i].value, hi)
			if err != nil {
				return
			}
			if c > 0 || (!hiInc && c == 0) {
				return
			}
		}
		if !fn(ix.entries[i].slot) {
			return
		}
	}
}

// CreateSortedIndex builds an ordered single-column index usable for range
// lookups through ScanRange (and maintained by inserts, updates, deletes).
func (db *DB) CreateSortedIndex(indexName, tableName, column string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(tableName)]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	key := strings.ToLower(indexName)
	if _, ok := t.sorted[key]; ok {
		return fmt.Errorf("%w: %s", ErrIndexExists, indexName)
	}
	ci := t.schema.ColumnIndex(column)
	if ci < 0 {
		return fmt.Errorf("%w: %s.%s", ErrNoColumn, tableName, column)
	}
	ix := &sortedIndex{name: indexName, column: ci}
	for slot, r := range t.rows {
		if r != nil {
			ix.insert(r[ci], slot)
		}
	}
	if t.sorted == nil {
		t.sorted = map[string]*sortedIndex{}
	}
	t.sorted[key] = ix
	return nil
}

// ScanRange iterates live rows of a table whose column value lies in
// [lo, hi] (nil bound = open; inclusivity per flag), using a sorted index
// when one exists on the column and falling back to a filtered scan. Rows
// are passed as copies; return false to stop.
func (db *DB) ScanRange(tableName, column string, lo, hi Value, loInc, hiInc bool, fn func(Row) bool) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(tableName)]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	ci := t.schema.ColumnIndex(column)
	if ci < 0 {
		return fmt.Errorf("%w: %s.%s", ErrNoColumn, tableName, column)
	}
	if ix := t.findSorted(ci); ix != nil {
		ix.scanRange(lo, hi, loInc, hiInc, func(slot int) bool {
			r := t.rows[slot]
			if r == nil {
				return true
			}
			return fn(r.clone())
		})
		return nil
	}
	for _, r := range t.rows {
		if r == nil || r[ci] == nil {
			continue
		}
		if lo != nil {
			c, err := Compare(r[ci], lo)
			if err != nil || c < 0 || (!loInc && c == 0) {
				continue
			}
		}
		if hi != nil {
			c, err := Compare(r[ci], hi)
			if err != nil || c > 0 || (!hiInc && c == 0) {
				continue
			}
		}
		if !fn(r.clone()) {
			return nil
		}
	}
	return nil
}

func (t *table) findSorted(column int) *sortedIndex {
	var names []string
	for n := range t.sorted {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if t.sorted[n].column == column {
			return t.sorted[n]
		}
	}
	return nil
}

// maintainSorted updates sorted indexes on mutation; called with the engine
// lock held.
func (t *table) sortedInsert(slot int, r Row) {
	for _, ix := range t.sorted {
		ix.insert(r[ix.column], slot)
	}
}

func (t *table) sortedRemove(slot int, r Row) {
	for _, ix := range t.sorted {
		ix.remove(r[ix.column], slot)
	}
}

func (t *table) sortedUpdate(slot int, old, new Row) {
	for _, ix := range t.sorted {
		if !Equal(old[ix.column], new[ix.column]) {
			ix.remove(old[ix.column], slot)
			ix.insert(new[ix.column], slot)
		}
	}
}
