package relstore

import (
	"bytes"
	"testing"
)

func TestDBPersistRoundTrip(t *testing.T) {
	db := newDealsDB(t)
	if err := db.CreateIndex("by_industry", "deals", []string{"industry"}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Delete("deals", func(r Row) bool { return r[0] == "DEAL B" }); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n, err := loaded.RowCount("deals")
	if err != nil || n != 2 {
		t.Fatalf("RowCount = %d, %v", n, err)
	}
	// Deleted row stayed deleted; PK still enforced.
	if err := loaded.Insert("deals", Row{"DEAL A", "dup", "X", 1.0, int64(1), false}); err == nil {
		t.Fatal("PK lost through persistence")
	}
	// Secondary index survives (functionally).
	rows, err := loaded.LookupEqual("deals", []string{"industry"}, []Value{"Insurance"})
	if err != nil || len(rows) != 1 {
		t.Fatalf("indexed lookup after load: %v, %v", rows, err)
	}
	// Schema types preserved.
	s, err := loaded.Schema("deals")
	if err != nil || s.Columns[3].Type != TFloat {
		t.Fatalf("schema = %+v, %v", s, err)
	}
}

func TestDBPersistFile(t *testing.T) {
	db := newDealsDB(t)
	path := t.TempDir() + "/db.gob"
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := loaded.RowCount("deals")
	if n != 3 {
		t.Fatalf("RowCount = %d", n)
	}
	if _, err := LoadFile(path + ".nope"); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestDBLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestDBPersistNullValues(t *testing.T) {
	db := NewDB()
	if err := db.CreateTable(Schema{Table: "t", Columns: []Column{{Name: "a", Type: TText}, {Name: "b", Type: TInt}}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("t", Row{nil, nil}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var got Row
	loaded.Scan("t", nil, func(r Row) bool { got = r; return false })
	if got[0] != nil || got[1] != nil {
		t.Fatalf("NULLs mangled: %v", got)
	}
}
