// Package relstore implements the in-memory relational storage engine that
// stands in for DB2 in the EIL architecture. It provides typed tables,
// primary-key and secondary hash indexes, predicate scans, and row-level
// constraint checking. The SQL text interface lives in package sqlx, which
// parses a SQL subset and executes it against a relstore.DB.
//
// A DB is safe for concurrent use; statements take the engine lock for their
// duration (the coarse-grained locking a single-writer embedded store needs,
// and all EIL's synopsis workload requires).
package relstore

import (
	"fmt"
	"strconv"
	"strings"
)

// Type enumerates the column types the engine supports.
type Type int

const (
	// TText is a UTF-8 string.
	TText Type = iota
	// TInt is a 64-bit signed integer.
	TInt
	// TFloat is a 64-bit IEEE float.
	TFloat
	// TBool is a boolean.
	TBool
)

// String returns the SQL name of the type.
func (t Type) String() string {
	switch t {
	case TText:
		return "TEXT"
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Value is a single cell. The dynamic type is one of string, int64, float64,
// bool, or nil for SQL NULL.
type Value any

// TypeOf reports the Type of a non-nil value and whether it is valid.
func TypeOf(v Value) (Type, bool) {
	switch v.(type) {
	case string:
		return TText, true
	case int64:
		return TInt, true
	case float64:
		return TFloat, true
	case bool:
		return TBool, true
	default:
		return 0, false
	}
}

// Coerce converts v to column type t where a lossless-enough conversion
// exists (int→float, numeric string forms are NOT coerced; Go ints are
// widened to int64). It returns an error for impossible conversions.
func Coerce(v Value, t Type) (Value, error) {
	if v == nil {
		return nil, nil
	}
	switch t {
	case TText:
		if s, ok := v.(string); ok {
			return s, nil
		}
	case TInt:
		switch x := v.(type) {
		case int64:
			return x, nil
		case int:
			return int64(x), nil
		case float64:
			if x == float64(int64(x)) {
				return int64(x), nil
			}
		}
	case TFloat:
		switch x := v.(type) {
		case float64:
			return x, nil
		case int64:
			return float64(x), nil
		case int:
			return float64(x), nil
		}
	case TBool:
		if b, ok := v.(bool); ok {
			return b, nil
		}
	}
	return nil, fmt.Errorf("relstore: cannot coerce %T to %s", v, t)
}

// Compare orders two values of compatible types: -1, 0, +1. NULL sorts
// before everything. Numeric types compare across int/float. Comparing
// incompatible types returns an error.
func Compare(a, b Value) (int, error) {
	if a == nil && b == nil {
		return 0, nil
	}
	if a == nil {
		return -1, nil
	}
	if b == nil {
		return 1, nil
	}
	switch x := a.(type) {
	case string:
		if y, ok := b.(string); ok {
			return strings.Compare(x, y), nil
		}
	case int64:
		switch y := b.(type) {
		case int64:
			return cmpInt(x, y), nil
		case float64:
			return cmpFloat(float64(x), y), nil
		}
	case float64:
		switch y := b.(type) {
		case float64:
			return cmpFloat(x, y), nil
		case int64:
			return cmpFloat(x, float64(y)), nil
		}
	case bool:
		if y, ok := b.(bool); ok {
			switch {
			case x == y:
				return 0, nil
			case !x:
				return -1, nil
			default:
				return 1, nil
			}
		}
	}
	return 0, fmt.Errorf("relstore: cannot compare %T with %T", a, b)
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports value equality under Compare semantics; incompatible types
// are unequal rather than an error.
func Equal(a, b Value) bool {
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// FormatValue renders a value for display: NULL, quoted text, or the Go
// literal form for numbers and booleans.
func FormatValue(v Value) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case string:
		return x
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		if x {
			return "TRUE"
		}
		return "FALSE"
	default:
		return fmt.Sprintf("%v", v)
	}
}

// hashKey renders a value into a map key for hash indexes. Numeric values
// hash by their float image so 1 and 1.0 land in the same bucket,
// matching Compare.
func hashKey(v Value) string {
	switch x := v.(type) {
	case nil:
		return "\x00null"
	case string:
		return "s" + x
	case int64:
		return "n" + strconv.FormatFloat(float64(x), 'g', -1, 64)
	case float64:
		return "n" + strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		if x {
			return "bt"
		}
		return "bf"
	default:
		return fmt.Sprintf("?%v", v)
	}
}
