package relstore

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"
)

// seedDB serializes a small real database so the fuzzer mutates from a
// valid snapshot.
func seedDB(t interface{ Fatal(...any) }) []byte {
	db := NewDB()
	if err := db.CreateTable(Schema{Table: "deals", Columns: []Column{
		{Name: "deal_id", Type: TText},
		{Name: "customer", Type: TText},
		{Name: "tcv", Type: TInt},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("deals", Row{"DEAL A", "Nova Corp", int64(100)}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("deals", Row{"DEAL B", "ABC Online", int64(250)}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("deals_by_id", "deals", []string{"deal_id"}, true); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzRelstoreLoad drives arbitrary bytes through the context-database
// loader. The invariant: Load never panics — it returns a working database
// or an error, so snapshot recovery can fall back to an older generation.
func FuzzRelstoreLoad(f *testing.F) {
	seed := seedDB(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2])                    // torn tail
	f.Add([]byte{})                              // empty
	f.Add([]byte("not a gob stream"))            // garbage
	f.Add(bytes.Repeat([]byte{0x42, 0xFF}, 128)) // binary noise
	mut := bytes.Clone(seed)                     // single corrupt byte
	mut[len(mut)/4] ^= 0xFF
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// An accepted snapshot must behave like a database: re-serializing
		// it must not panic or fail.
		var buf bytes.Buffer
		if _, err := db.WriteTo(&buf); err != nil {
			t.Fatalf("accepted snapshot did not re-serialize: %v", err)
		}
	})
}

func TestRelstoreLoadRejectsOtherFormats(t *testing.T) {
	for _, format := range []int{0, persistFormat + 1, persistFormat + 40} {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(dbSnapshot{Format: format}); err != nil {
			t.Fatal(err)
		}
		_, err := Load(&buf)
		if err == nil {
			t.Fatalf("format %d loaded", format)
		}
		if !strings.Contains(err.Error(), "unsupported snapshot format") {
			t.Fatalf("format %d: err = %v, want unsupported-format", format, err)
		}
	}
}
