package relstore

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func rangeDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	if err := db.CreateTable(Schema{
		Table:      "m",
		Columns:    []Column{{Name: "id", Type: TText}, {Name: "n", Type: TInt}},
		PrimaryKey: []string{"id"},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := db.Insert("m", Row{fmt.Sprintf("r%02d", i), int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func collectRange(t *testing.T, db *DB, lo, hi Value, loInc, hiInc bool) []int64 {
	t.Helper()
	var out []int64
	if err := db.ScanRange("m", "n", lo, hi, loInc, hiInc, func(r Row) bool {
		out = append(out, r[1].(int64))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestScanRangeWithoutIndex(t *testing.T) {
	db := rangeDB(t)
	got := collectRange(t, db, int64(5), int64(8), true, true)
	if len(got) != 4 {
		t.Fatalf("got %v", got)
	}
}

func TestScanRangeWithSortedIndex(t *testing.T) {
	db := rangeDB(t)
	if err := db.CreateSortedIndex("by_n", "m", "n"); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		lo, hi       Value
		loInc, hiInc bool
		want         []int64
	}{
		{int64(5), int64(8), true, true, []int64{5, 6, 7, 8}},
		{int64(5), int64(8), false, true, []int64{6, 7, 8}},
		{int64(5), int64(8), true, false, []int64{5, 6, 7}},
		{int64(5), int64(8), false, false, []int64{6, 7}},
		{nil, int64(2), true, true, []int64{0, 1, 2}},
		{int64(18), nil, false, true, []int64{19}},
		{int64(100), nil, true, true, nil},
		{nil, nil, true, true, seq(0, 20)},
	}
	for _, c := range cases {
		got := collectRange(t, db, c.lo, c.hi, c.loInc, c.hiInc)
		if !equalInts(got, c.want) {
			t.Errorf("range [%v,%v] inc(%v,%v) = %v, want %v", c.lo, c.hi, c.loInc, c.hiInc, got, c.want)
		}
		// Sorted-index scans come back in value order.
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			t.Errorf("range result unsorted: %v", got)
		}
	}
}

func seq(lo, n int) []int64 {
	out := make([]int64, 0, n)
	for i := lo; i < n; i++ {
		out = append(out, int64(i))
	}
	return out
}

func equalInts(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSortedIndexMaintainedOnMutation(t *testing.T) {
	db := rangeDB(t)
	if err := db.CreateSortedIndex("by_n", "m", "n"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Delete("m", func(r Row) bool { return r[1].(int64)%2 == 0 }); err != nil {
		t.Fatal(err)
	}
	got := collectRange(t, db, int64(0), int64(9), true, true)
	if !equalInts(got, []int64{1, 3, 5, 7, 9}) {
		t.Fatalf("after delete: %v", got)
	}
	if _, err := db.Update("m", func(r Row) bool { return r[1].(int64) == 7 }, map[string]Value{"n": int64(100)}); err != nil {
		t.Fatal(err)
	}
	got = collectRange(t, db, int64(50), nil, true, true)
	if !equalInts(got, []int64{100}) {
		t.Fatalf("after update: %v", got)
	}
	if err := db.Insert("m", Row{"new", int64(4)}); err != nil {
		t.Fatal(err)
	}
	got = collectRange(t, db, int64(4), int64(5), true, true)
	if !equalInts(got, []int64{4, 5}) {
		t.Fatalf("after insert: %v", got)
	}
}

func TestSortedIndexIgnoresNulls(t *testing.T) {
	db := rangeDB(t)
	if err := db.CreateSortedIndex("by_n", "m", "n"); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("m", Row{"null-row", nil}); err != nil {
		t.Fatal(err)
	}
	got := collectRange(t, db, nil, nil, true, true)
	if len(got) != 20 {
		t.Fatalf("NULL leaked into range scan: %v", got)
	}
}

func TestSortedIndexErrors(t *testing.T) {
	db := rangeDB(t)
	if err := db.CreateSortedIndex("ix", "ghost", "n"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("err = %v", err)
	}
	if err := db.CreateSortedIndex("ix", "m", "ghost"); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("err = %v", err)
	}
	if err := db.CreateSortedIndex("ix", "m", "n"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateSortedIndex("ix", "m", "n"); !errors.Is(err, ErrIndexExists) {
		t.Fatalf("err = %v", err)
	}
	if err := db.ScanRange("ghost", "n", nil, nil, true, true, func(Row) bool { return true }); !errors.Is(err, ErrNoTable) {
		t.Fatalf("err = %v", err)
	}
	if err := db.ScanRange("m", "ghost", nil, nil, true, true, func(Row) bool { return true }); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("err = %v", err)
	}
}

// Property: indexed and unindexed range scans agree on random data.
func TestScanRangeIndexEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	plain := NewDB()
	indexed := NewDB()
	schema := Schema{Table: "p", Columns: []Column{{Name: "id", Type: TInt}, {Name: "v", Type: TFloat}}}
	for _, db := range []*DB{plain, indexed} {
		if err := db.CreateTable(schema); err != nil {
			t.Fatal(err)
		}
	}
	if err := indexed.CreateSortedIndex("by_v", "p", "v"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		v := rng.Float64() * 100
		for _, db := range []*DB{plain, indexed} {
			if err := db.Insert("p", Row{int64(i), v}); err != nil {
				t.Fatal(err)
			}
		}
	}
	err := quick.Check(func(a, b float64, loInc, hiInc bool) bool {
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		collect := func(db *DB) map[int64]bool {
			out := map[int64]bool{}
			db.ScanRange("p", "v", lo, hi, loInc, hiInc, func(r Row) bool {
				out[r[0].(int64)] = true
				return true
			})
			return out
		}
		p, q := collect(plain), collect(indexed)
		if len(p) != len(q) {
			return false
		}
		for k := range p {
			if !q[k] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestSortedIndexPersistence(t *testing.T) {
	db := rangeDB(t)
	if err := db.CreateSortedIndex("by_n", "m", "n"); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/db.gob"
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The restored sorted index must serve ordered range scans.
	var out []int64
	if err := loaded.ScanRange("m", "n", int64(3), int64(6), true, true, func(r Row) bool {
		out = append(out, r[1].(int64))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !equalInts(out, []int64{3, 4, 5, 6}) {
		t.Fatalf("after load: %v", out)
	}
	// And a duplicate CreateSortedIndex on the restored DB errors.
	if err := loaded.CreateSortedIndex("by_n", "m", "n"); !errors.Is(err, ErrIndexExists) {
		t.Fatalf("err = %v", err)
	}
}
