package relstore

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func dealsSchema() Schema {
	return Schema{
		Table: "deals",
		Columns: []Column{
			{Name: "id", Type: TText},
			{Name: "customer", Type: TText},
			{Name: "industry", Type: TText},
			{Name: "tcv", Type: TFloat},
			{Name: "months", Type: TInt},
			{Name: "international", Type: TBool},
		},
		PrimaryKey: []string{"id"},
	}
}

func newDealsDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	if err := db.CreateTable(dealsSchema()); err != nil {
		t.Fatal(err)
	}
	rows := []Row{
		{"DEAL A", "Acme Bank", "Banking", 120.5, int64(60), true},
		{"DEAL B", "Borealis", "Insurance", 75.0, int64(36), false},
		{"DEAL C", "Cygnus", "Insurance", 55.0, int64(60), true},
	}
	for _, r := range rows {
		if err := db.Insert("deals", r); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestCreateTableValidation(t *testing.T) {
	db := NewDB()
	if err := db.CreateTable(Schema{}); err == nil {
		t.Fatal("empty schema accepted")
	}
	if err := db.CreateTable(Schema{Table: "t", Columns: []Column{{Name: "a", Type: TInt}, {Name: "A", Type: TText}}}); err == nil {
		t.Fatal("duplicate column accepted")
	}
	ok := Schema{Table: "t", Columns: []Column{{Name: "a", Type: TInt}}}
	if err := db.CreateTable(ok); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(ok); !errors.Is(err, ErrTableExists) {
		t.Fatalf("err = %v", err)
	}
	bad := Schema{Table: "u", Columns: []Column{{Name: "a", Type: TInt}}, PrimaryKey: []string{"nope"}}
	if err := db.CreateTable(bad); !errors.Is(err, ErrNoColumn) {
		t.Fatalf("err = %v", err)
	}
}

func TestInsertAndScan(t *testing.T) {
	db := newDealsDB(t)
	n, err := db.RowCount("deals")
	if err != nil || n != 3 {
		t.Fatalf("RowCount = %d, %v", n, err)
	}
	var insurance []string
	err = db.Scan("deals", func(r Row) bool { return r[2] == "Insurance" }, func(r Row) bool {
		insurance = append(insurance, r[0].(string))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(insurance) != 2 {
		t.Fatalf("insurance deals = %v", insurance)
	}
}

func TestScanEarlyStop(t *testing.T) {
	db := newDealsDB(t)
	count := 0
	db.Scan("deals", nil, func(Row) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop ignored: %d", count)
	}
}

func TestPrimaryKeyDuplicate(t *testing.T) {
	db := newDealsDB(t)
	err := db.Insert("deals", Row{"DEAL A", "X", "Y", 1.0, int64(1), false})
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("err = %v", err)
	}
}

func TestNotNullOnPrimaryKey(t *testing.T) {
	db := newDealsDB(t)
	err := db.Insert("deals", Row{nil, "X", "Y", 1.0, int64(1), false})
	if !errors.Is(err, ErrNotNull) {
		t.Fatalf("err = %v", err)
	}
}

func TestArity(t *testing.T) {
	db := newDealsDB(t)
	if err := db.Insert("deals", Row{"short"}); !errors.Is(err, ErrArity) {
		t.Fatalf("err = %v", err)
	}
}

func TestTypeCoercion(t *testing.T) {
	db := newDealsDB(t)
	// months is INT: a whole float must coerce, a fractional one must not.
	if err := db.Insert("deals", Row{"DEAL D", "Delta", "Retail", int64(12), 24.0, false}); err != nil {
		t.Fatalf("coercion failed: %v", err)
	}
	err := db.Insert("deals", Row{"DEAL E", "Echo", "Retail", 1.0, 24.5, false})
	if err == nil {
		t.Fatal("fractional float accepted into INT column")
	}
	rows, err := db.LookupEqual("deals", []string{"id"}, []Value{"DEAL D"})
	if err != nil || len(rows) != 1 {
		t.Fatalf("lookup: %v %v", rows, err)
	}
	if _, ok := rows[0][3].(float64); !ok {
		t.Fatalf("tcv not coerced to float: %T", rows[0][3])
	}
	if _, ok := rows[0][4].(int64); !ok {
		t.Fatalf("months not int64: %T", rows[0][4])
	}
}

func TestLookupEqualViaPK(t *testing.T) {
	db := newDealsDB(t)
	rows, err := db.LookupEqual("deals", []string{"id"}, []Value{"DEAL B"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][1] != "Borealis" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestLookupEqualScanFallback(t *testing.T) {
	db := newDealsDB(t)
	rows, err := db.LookupEqual("deals", []string{"industry"}, []Value{"Insurance"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSecondaryIndex(t *testing.T) {
	db := newDealsDB(t)
	if err := db.CreateIndex("by_industry", "deals", []string{"industry"}, false); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("by_industry", "deals", []string{"industry"}, false); !errors.Is(err, ErrIndexExists) {
		t.Fatalf("err = %v", err)
	}
	rows, err := db.LookupEqual("deals", []string{"industry"}, []Value{"Insurance"})
	if err != nil || len(rows) != 2 {
		t.Fatalf("indexed lookup: %v %v", rows, err)
	}
	// New inserts must be visible through the index.
	if err := db.Insert("deals", Row{"DEAL D", "Delta", "Insurance", 10.0, int64(12), false}); err != nil {
		t.Fatal(err)
	}
	rows, _ = db.LookupEqual("deals", []string{"industry"}, []Value{"Insurance"})
	if len(rows) != 3 {
		t.Fatalf("index stale after insert: %v", rows)
	}
}

func TestUniqueSecondaryIndex(t *testing.T) {
	db := newDealsDB(t)
	if err := db.CreateIndex("by_customer", "deals", []string{"customer"}, true); err != nil {
		t.Fatal(err)
	}
	err := db.Insert("deals", Row{"DEAL Z", "Acme Bank", "Banking", 1.0, int64(1), false})
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("unique index not enforced: %v", err)
	}
}

func TestUniqueIndexBuildFailsOnDuplicates(t *testing.T) {
	db := newDealsDB(t)
	err := db.CreateIndex("by_industry", "deals", []string{"industry"}, true)
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("err = %v", err)
	}
}

func TestUpdate(t *testing.T) {
	db := newDealsDB(t)
	n, err := db.Update("deals",
		func(r Row) bool { return r[2] == "Insurance" },
		map[string]Value{"tcv": 99.0})
	if err != nil || n != 2 {
		t.Fatalf("Update = %d, %v", n, err)
	}
	rows, _ := db.LookupEqual("deals", []string{"industry"}, []Value{"Insurance"})
	for _, r := range rows {
		if r[3] != 99.0 {
			t.Fatalf("tcv not updated: %v", r)
		}
	}
}

func TestUpdateReindexes(t *testing.T) {
	db := newDealsDB(t)
	if err := db.CreateIndex("by_industry", "deals", []string{"industry"}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Update("deals",
		func(r Row) bool { return r[0] == "DEAL B" },
		map[string]Value{"industry": "Retail"}); err != nil {
		t.Fatal(err)
	}
	rows, _ := db.LookupEqual("deals", []string{"industry"}, []Value{"Retail"})
	if len(rows) != 1 || rows[0][0] != "DEAL B" {
		t.Fatalf("index stale after update: %v", rows)
	}
	rows, _ = db.LookupEqual("deals", []string{"industry"}, []Value{"Insurance"})
	if len(rows) != 1 {
		t.Fatalf("old index entry not removed: %v", rows)
	}
}

func TestUpdatePKConflict(t *testing.T) {
	db := newDealsDB(t)
	_, err := db.Update("deals",
		func(r Row) bool { return r[0] == "DEAL B" },
		map[string]Value{"id": "DEAL A"})
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("err = %v", err)
	}
}

func TestDelete(t *testing.T) {
	db := newDealsDB(t)
	n, err := db.Delete("deals", func(r Row) bool { return r[2] == "Insurance" })
	if err != nil || n != 2 {
		t.Fatalf("Delete = %d, %v", n, err)
	}
	count, _ := db.RowCount("deals")
	if count != 1 {
		t.Fatalf("RowCount = %d", count)
	}
	// PK slot must be reusable after delete.
	if err := db.Insert("deals", Row{"DEAL B", "New", "X", 1.0, int64(1), false}); err != nil {
		t.Fatalf("reinsert after delete: %v", err)
	}
}

func TestNoSuchTable(t *testing.T) {
	db := NewDB()
	if err := db.Insert("ghost", Row{}); !errors.Is(err, ErrNoTable) {
		t.Fatalf("err = %v", err)
	}
	if err := db.Scan("ghost", nil, func(Row) bool { return true }); !errors.Is(err, ErrNoTable) {
		t.Fatalf("err = %v", err)
	}
	if _, err := db.Delete("ghost", nil); !errors.Is(err, ErrNoTable) {
		t.Fatalf("err = %v", err)
	}
	if err := db.DropTable("ghost"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("err = %v", err)
	}
	if _, err := db.Schema("ghost"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("err = %v", err)
	}
}

func TestDropTable(t *testing.T) {
	db := newDealsDB(t)
	if err := db.DropTable("deals"); err != nil {
		t.Fatal(err)
	}
	if names := db.TableNames(); len(names) != 0 {
		t.Fatalf("tables = %v", names)
	}
}

func TestScanReturnsCopies(t *testing.T) {
	db := newDealsDB(t)
	db.Scan("deals", nil, func(r Row) bool {
		r[1] = "MUTATED"
		return true
	})
	rows, _ := db.LookupEqual("deals", []string{"id"}, []Value{"DEAL A"})
	if rows[0][1] == "MUTATED" {
		t.Fatal("scan exposed internal row storage")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{nil, nil, 0},
		{nil, "x", -1},
		{"x", nil, 1},
		{"a", "b", -1},
		{int64(2), int64(2), 0},
		{int64(2), 3.5, -1},
		{3.5, int64(2), 1},
		{false, true, -1},
		{true, true, 0},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil || got != c.want {
			t.Errorf("Compare(%v,%v) = %d, %v; want %d", c.a, c.b, got, err, c.want)
		}
	}
	if _, err := Compare("x", int64(1)); err == nil {
		t.Error("cross-type compare accepted")
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	err := quick.Check(func(a, b int64) bool {
		x, _ := Compare(a, b)
		y, _ := Compare(b, a)
		return x == -y
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestHashKeyAgreesWithEqualProperty(t *testing.T) {
	// int64 and its float64 image must share a bucket, matching Equal.
	err := quick.Check(func(n int32) bool {
		i := int64(n)
		f := float64(n)
		return Equal(i, f) == (hashKey(i) == hashKey(f))
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[string]Value{
		"NULL": nil, "hi": "hi", "42": int64(42), "2.5": 2.5, "TRUE": true, "FALSE": false,
	}
	for want, v := range cases {
		if got := FormatValue(v); got != want {
			t.Errorf("FormatValue(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestTypeString(t *testing.T) {
	if TText.String() != "TEXT" || TInt.String() != "INT" || TFloat.String() != "FLOAT" || TBool.String() != "BOOL" {
		t.Error("type names wrong")
	}
}

// Property: insert-then-lookup by PK always finds exactly the row inserted.
func TestInsertLookupRoundTripProperty(t *testing.T) {
	db := NewDB()
	if err := db.CreateTable(Schema{
		Table:      "kv",
		Columns:    []Column{{Name: "k", Type: TText}, {Name: "v", Type: TInt}},
		PrimaryKey: []string{"k"},
	}); err != nil {
		t.Fatal(err)
	}
	seen := map[string]int64{}
	i := 0
	err := quick.Check(func(k string, v int64) bool {
		key := fmt.Sprintf("%d-%s", i, k) // ensure uniqueness
		i++
		if err := db.Insert("kv", Row{key, v}); err != nil {
			return false
		}
		seen[key] = v
		rows, err := db.LookupEqual("kv", []string{"k"}, []Value{key})
		return err == nil && len(rows) == 1 && rows[0][1] == v
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
	// And every previously inserted key still resolves.
	for k, v := range seen {
		rows, err := db.LookupEqual("kv", []string{"k"}, []Value{k})
		if err != nil || len(rows) != 1 || rows[0][1] != v {
			t.Fatalf("lost row %q", k)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	db := NewDB()
	db.CreateTable(dealsSchema())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.Insert("deals", Row{fmt.Sprintf("DEAL %d", i), "Cust", "Ind", 1.0, int64(12), false})
	}
}

func BenchmarkLookupPK(b *testing.B) {
	db := NewDB()
	db.CreateTable(dealsSchema())
	for i := 0; i < 10000; i++ {
		db.Insert("deals", Row{fmt.Sprintf("DEAL %d", i), "Cust", "Ind", 1.0, int64(12), false})
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.LookupEqual("deals", []string{"id"}, []Value{fmt.Sprintf("DEAL %d", i%10000)})
	}
}
