package relstore

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/durable"
)

// persistFormat guards against misreading incompatible snapshots.
const persistFormat = 1

type dbSnapshot struct {
	Format int
	Tables []tableSnapshot
}

type tableSnapshot struct {
	Schema        Schema
	Rows          []Row
	Indexes       []indexSnapshot
	SortedIndexes []sortedIndexSnapshot
}

type indexSnapshot struct {
	Name    string
	Columns []string
	Unique  bool
}

type sortedIndexSnapshot struct {
	Name   string
	Column string
}

func init() {
	// Row cells are interface values; register the concrete types gob may
	// meet inside them.
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register("")
	gob.Register(false)
}

// WriteTo serializes the database (schemas, live rows, index definitions).
// Indexes are rebuilt at load time rather than stored.
func (db *DB) WriteTo(w io.Writer) (int64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	snap := dbSnapshot{Format: persistFormat}
	names := make([]string, 0, len(db.tables))
	for name := range db.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := db.tables[name]
		ts := tableSnapshot{Schema: t.schema}
		for _, r := range t.rows {
			if r != nil {
				ts.Rows = append(ts.Rows, r)
			}
		}
		ixNames := make([]string, 0, len(t.indexes))
		for n := range t.indexes {
			ixNames = append(ixNames, n)
		}
		sort.Strings(ixNames)
		for _, n := range ixNames {
			ix := t.indexes[n]
			cols := make([]string, len(ix.columns))
			for i, ci := range ix.columns {
				cols[i] = t.schema.Columns[ci].Name
			}
			ts.Indexes = append(ts.Indexes, indexSnapshot{Name: ix.name, Columns: cols, Unique: ix.unique})
		}
		var sortedNames []string
		for n := range t.sorted {
			sortedNames = append(sortedNames, n)
		}
		sort.Strings(sortedNames)
		for _, n := range sortedNames {
			six := t.sorted[n]
			ts.SortedIndexes = append(ts.SortedIndexes, sortedIndexSnapshot{
				Name:   six.name,
				Column: t.schema.Columns[six.column].Name,
			})
		}
		snap.Tables = append(snap.Tables, ts)
	}
	cw := &countWriter{w: w}
	if err := gob.NewEncoder(cw).Encode(snap); err != nil {
		return cw.n, fmt.Errorf("relstore: encode: %w", err)
	}
	return cw.n, nil
}

// Load reads a database previously written with WriteTo. It never panics on
// corrupt input: gob decoder blowups and structurally impossible snapshots
// surface as errors, so recovery code can fall back to an older generation.
func Load(r io.Reader) (db *DB, err error) {
	defer func() {
		if p := recover(); p != nil {
			db, err = nil, fmt.Errorf("relstore: corrupt snapshot: %v", p)
		}
	}()
	var snap dbSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("relstore: decode: %w", err)
	}
	if snap.Format != persistFormat {
		return nil, fmt.Errorf("relstore: unsupported snapshot format %d", snap.Format)
	}
	db = NewDB()
	for _, ts := range snap.Tables {
		if err := db.CreateTable(ts.Schema); err != nil {
			return nil, err
		}
		for _, row := range ts.Rows {
			if err := db.Insert(ts.Schema.Table, row); err != nil {
				return nil, fmt.Errorf("relstore: load %s: %w", ts.Schema.Table, err)
			}
		}
		for _, ix := range ts.Indexes {
			if err := db.CreateIndex(ix.Name, ts.Schema.Table, ix.Columns, ix.Unique); err != nil &&
				!strings.Contains(err.Error(), "already exists") {
				return nil, err
			}
		}
		for _, six := range ts.SortedIndexes {
			if err := db.CreateSortedIndex(six.Name, ts.Schema.Table, six.Column); err != nil &&
				!strings.Contains(err.Error(), "already exists") {
				return nil, err
			}
		}
	}
	return db, nil
}

// SaveFile writes the database to path atomically and durably (temp file +
// fsync + rename + directory fsync, via the shared durable helper).
func (db *DB) SaveFile(path string) error {
	return durable.WriteFileAtomic(nil, path, func(w io.Writer) error {
		_, err := db.WriteTo(w)
		return err
	})
}

// LoadFile reads a database snapshot from path.
func LoadFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("relstore: load: %w", err)
	}
	defer f.Close()
	return Load(bufio.NewReader(f))
}

type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
