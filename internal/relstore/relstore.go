package relstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Errors returned by the engine. Wrap-test with errors.Is.
var (
	ErrNoTable      = errors.New("relstore: no such table")
	ErrTableExists  = errors.New("relstore: table already exists")
	ErrNoColumn     = errors.New("relstore: no such column")
	ErrNotNull      = errors.New("relstore: NOT NULL constraint violated")
	ErrDuplicateKey = errors.New("relstore: duplicate key")
	ErrNoIndex      = errors.New("relstore: no such index")
	ErrIndexExists  = errors.New("relstore: index already exists")
	ErrArity        = errors.New("relstore: wrong number of values")
)

// Column describes one table column.
type Column struct {
	Name    string
	Type    Type
	NotNull bool
}

// Schema describes a table: its columns and optional primary key (a subset
// of column names; rows must be unique on it and its columns become NOT
// NULL).
type Schema struct {
	Table      string
	Columns    []Column
	PrimaryKey []string
}

// ColumnIndex returns the position of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Row is one tuple, in schema column order.
type Row []Value

// clone copies a row so callers cannot alias stored rows.
func (r Row) clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// table is the storage for one relation.
type table struct {
	schema  Schema
	rows    []Row // nil entries are deleted slots
	live    int
	pkIdx   *hashIndex              // over PrimaryKey columns, unique
	indexes map[string]*hashIndex   // secondary hash indexes, by name
	sorted  map[string]*sortedIndex // ordered indexes for range scans
}

// hashIndex maps a composite key rendering to the row slots holding it.
type hashIndex struct {
	name    string
	columns []int // column positions
	unique  bool
	buckets map[string][]int
}

func (ix *hashIndex) keyFor(r Row) string {
	var b strings.Builder
	for _, c := range ix.columns {
		b.WriteString(hashKey(r[c]))
		b.WriteByte('\x1f')
	}
	return b.String()
}

func (ix *hashIndex) insert(key string, slot int) {
	ix.buckets[key] = append(ix.buckets[key], slot)
}

func (ix *hashIndex) remove(key string, slot int) {
	bucket := ix.buckets[key]
	for i, s := range bucket {
		if s == slot {
			bucket[i] = bucket[len(bucket)-1]
			ix.buckets[key] = bucket[:len(bucket)-1]
			return
		}
	}
}

// DB is a collection of tables. The zero value is not usable; call NewDB.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*table
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*table)}
}

// CreateTable registers a new table. Primary-key columns become NOT NULL.
func (db *DB) CreateTable(s Schema) error {
	if s.Table == "" || len(s.Columns) == 0 {
		return fmt.Errorf("relstore: invalid schema for %q", s.Table)
	}
	seen := map[string]bool{}
	for _, c := range s.Columns {
		lc := strings.ToLower(c.Name)
		if seen[lc] {
			return fmt.Errorf("relstore: duplicate column %q in %s", c.Name, s.Table)
		}
		seen[lc] = true
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(s.Table)
	if _, ok := db.tables[key]; ok {
		return fmt.Errorf("%w: %s", ErrTableExists, s.Table)
	}
	t := &table{schema: s, indexes: map[string]*hashIndex{}}
	if len(s.PrimaryKey) > 0 {
		cols := make([]int, len(s.PrimaryKey))
		for i, name := range s.PrimaryKey {
			ci := s.ColumnIndex(name)
			if ci < 0 {
				return fmt.Errorf("%w: primary key column %q of %s", ErrNoColumn, name, s.Table)
			}
			cols[i] = ci
			t.schema.Columns[ci].NotNull = true
		}
		t.pkIdx = &hashIndex{name: "__pk", columns: cols, unique: true, buckets: map[string][]int{}}
	}
	db.tables[key] = t
	return nil
}

// DropTable removes a table and its indexes.
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := db.tables[key]; !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	delete(db.tables, key)
	return nil
}

// Schema returns a copy of the named table's schema.
func (db *DB) Schema(name string) (Schema, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return Schema{}, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	s := t.schema
	s.Columns = append([]Column(nil), t.schema.Columns...)
	s.PrimaryKey = append([]string(nil), t.schema.PrimaryKey...)
	return s, nil
}

// TableNames lists tables in sorted order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		names = append(names, t.schema.Table)
	}
	sort.Strings(names)
	return names
}

// CreateIndex builds a secondary hash index over the given columns.
func (db *DB) CreateIndex(indexName, tableName string, columns []string, unique bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(tableName)]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	key := strings.ToLower(indexName)
	if _, ok := t.indexes[key]; ok {
		return fmt.Errorf("%w: %s", ErrIndexExists, indexName)
	}
	cols := make([]int, len(columns))
	for i, name := range columns {
		ci := t.schema.ColumnIndex(name)
		if ci < 0 {
			return fmt.Errorf("%w: %s.%s", ErrNoColumn, tableName, name)
		}
		cols[i] = ci
	}
	ix := &hashIndex{name: indexName, columns: cols, unique: unique, buckets: map[string][]int{}}
	for slot, r := range t.rows {
		if r == nil {
			continue
		}
		k := ix.keyFor(r)
		if unique && len(ix.buckets[k]) > 0 {
			return fmt.Errorf("%w: building unique index %s", ErrDuplicateKey, indexName)
		}
		ix.insert(k, slot)
	}
	t.indexes[key] = ix
	return nil
}

// prepareRow validates and coerces values against the schema.
func (t *table) prepareRow(r Row) (Row, error) {
	if len(r) != len(t.schema.Columns) {
		return nil, fmt.Errorf("%w: table %s has %d columns, got %d",
			ErrArity, t.schema.Table, len(t.schema.Columns), len(r))
	}
	out := make(Row, len(r))
	for i, v := range r {
		col := t.schema.Columns[i]
		cv, err := Coerce(v, col.Type)
		if err != nil {
			return nil, fmt.Errorf("%s.%s: %w", t.schema.Table, col.Name, err)
		}
		if cv == nil && col.NotNull {
			return nil, fmt.Errorf("%w: %s.%s", ErrNotNull, t.schema.Table, col.Name)
		}
		out[i] = cv
	}
	return out, nil
}

// Insert appends one row (in schema column order).
func (db *DB) Insert(tableName string, r Row) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(tableName)]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	row, err := t.prepareRow(r)
	if err != nil {
		return err
	}
	return t.insertLocked(row)
}

func (t *table) insertLocked(row Row) error {
	if t.pkIdx != nil {
		k := t.pkIdx.keyFor(row)
		if len(t.pkIdx.buckets[k]) > 0 {
			return fmt.Errorf("%w: %s primary key %s", ErrDuplicateKey, t.schema.Table, k)
		}
	}
	for _, ix := range t.indexes {
		if ix.unique {
			k := ix.keyFor(row)
			if len(ix.buckets[k]) > 0 {
				return fmt.Errorf("%w: %s index %s", ErrDuplicateKey, t.schema.Table, ix.name)
			}
		}
	}
	slot := len(t.rows)
	t.rows = append(t.rows, row)
	t.live++
	if t.pkIdx != nil {
		t.pkIdx.insert(t.pkIdx.keyFor(row), slot)
	}
	for _, ix := range t.indexes {
		ix.insert(ix.keyFor(row), slot)
	}
	t.sortedInsert(slot, row)
	return nil
}

// Pred filters rows during scans; return true to keep the row.
type Pred func(Row) bool

// Scan calls fn for every live row matching pred (nil pred = all rows). fn
// receives a copy; returning false stops the scan early.
func (db *DB) Scan(tableName string, pred Pred, fn func(Row) bool) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(tableName)]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	for _, r := range t.rows {
		if r == nil || (pred != nil && !pred(r)) {
			continue
		}
		if !fn(r.clone()) {
			return nil
		}
	}
	return nil
}

// LookupEqual finds rows where the named columns equal the given values,
// using an index when one covers exactly those columns, otherwise scanning.
// Results are copies.
func (db *DB) LookupEqual(tableName string, columns []string, values []Value) ([]Row, error) {
	if len(columns) != len(values) {
		return nil, fmt.Errorf("%w: %d columns, %d values", ErrArity, len(columns), len(values))
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(tableName)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	cols := make([]int, len(columns))
	for i, name := range columns {
		ci := t.schema.ColumnIndex(name)
		if ci < 0 {
			return nil, fmt.Errorf("%w: %s.%s", ErrNoColumn, tableName, name)
		}
		cols[i] = ci
	}
	if ix := t.findIndex(cols); ix != nil {
		// Build a probe row carrying the lookup values in their column
		// positions; the index key function reads only its own columns.
		probe := make(Row, len(t.schema.Columns))
		for j, cc := range cols {
			probe[cc] = values[j]
		}
		var out []Row
		for _, slot := range ix.buckets[ix.keyFor(probe)] {
			r := t.rows[slot]
			if r == nil {
				continue
			}
			if rowMatches(r, cols, values) {
				out = append(out, r.clone())
			}
		}
		return out, nil
	}
	var out []Row
	for _, r := range t.rows {
		if r == nil {
			continue
		}
		if rowMatches(r, cols, values) {
			out = append(out, r.clone())
		}
	}
	return out, nil
}

func rowMatches(r Row, cols []int, values []Value) bool {
	for i, c := range cols {
		if !Equal(r[c], values[i]) {
			return false
		}
	}
	return true
}

// findIndex returns an index whose column set equals cols (any order),
// preferring the primary key.
func (t *table) findIndex(cols []int) *hashIndex {
	match := func(ix *hashIndex) bool {
		if len(ix.columns) != len(cols) {
			return false
		}
		for _, c := range cols {
			found := false
			for _, ic := range ix.columns {
				if ic == c {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if t.pkIdx != nil && match(t.pkIdx) {
		return t.pkIdx
	}
	// Deterministic choice among secondaries.
	var names []string
	for n := range t.indexes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if ix := t.indexes[n]; match(ix) {
			return ix
		}
	}
	return nil
}

// Update applies set (column name -> new value) to all rows matching pred
// and returns the number updated.
func (db *DB) Update(tableName string, pred Pred, set map[string]Value) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(tableName)]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	setCols := make(map[int]Value, len(set))
	for name, v := range set {
		ci := t.schema.ColumnIndex(name)
		if ci < 0 {
			return 0, fmt.Errorf("%w: %s.%s", ErrNoColumn, tableName, name)
		}
		cv, err := Coerce(v, t.schema.Columns[ci].Type)
		if err != nil {
			return 0, fmt.Errorf("%s.%s: %w", tableName, name, err)
		}
		if cv == nil && t.schema.Columns[ci].NotNull {
			return 0, fmt.Errorf("%w: %s.%s", ErrNotNull, tableName, name)
		}
		setCols[ci] = cv
	}
	n := 0
	for slot, r := range t.rows {
		if r == nil || (pred != nil && !pred(r)) {
			continue
		}
		updated := r.clone()
		for ci, v := range setCols {
			updated[ci] = v
		}
		// Re-check uniqueness excluding this slot.
		if t.pkIdx != nil {
			k := t.pkIdx.keyFor(updated)
			for _, s := range t.pkIdx.buckets[k] {
				if s != slot {
					return n, fmt.Errorf("%w: %s primary key", ErrDuplicateKey, tableName)
				}
			}
		}
		for _, ix := range t.indexes {
			if !ix.unique {
				continue
			}
			k := ix.keyFor(updated)
			for _, s := range ix.buckets[k] {
				if s != slot {
					return n, fmt.Errorf("%w: %s index %s", ErrDuplicateKey, tableName, ix.name)
				}
			}
		}
		t.reindex(slot, r, updated)
		t.sortedUpdate(slot, r, updated)
		t.rows[slot] = updated
		n++
	}
	return n, nil
}

func (t *table) reindex(slot int, old, new Row) {
	if t.pkIdx != nil {
		ok, nk := t.pkIdx.keyFor(old), t.pkIdx.keyFor(new)
		if ok != nk {
			t.pkIdx.remove(ok, slot)
			t.pkIdx.insert(nk, slot)
		}
	}
	for _, ix := range t.indexes {
		ok, nk := ix.keyFor(old), ix.keyFor(new)
		if ok != nk {
			ix.remove(ok, slot)
			ix.insert(nk, slot)
		}
	}
}

// Delete removes all rows matching pred and returns the count.
func (db *DB) Delete(tableName string, pred Pred) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(tableName)]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	n := 0
	for slot, r := range t.rows {
		if r == nil || (pred != nil && !pred(r)) {
			continue
		}
		if t.pkIdx != nil {
			t.pkIdx.remove(t.pkIdx.keyFor(r), slot)
		}
		for _, ix := range t.indexes {
			ix.remove(ix.keyFor(r), slot)
		}
		t.sortedRemove(slot, r)
		t.rows[slot] = nil
		t.live--
		n++
	}
	return n, nil
}

// RowCount reports the number of live rows in a table.
func (db *DB) RowCount(tableName string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(tableName)]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoTable, tableName)
	}
	return t.live, nil
}
