package taxonomy

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDefaultTowers(t *testing.T) {
	tax := Default()
	if len(tax.Towers()) < 10 {
		t.Fatalf("suspiciously few towers: %d", len(tax.Towers()))
	}
	names := tax.TowerNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("TowerNames not sorted: %v", names)
		}
	}
}

func TestResolveCanonical(t *testing.T) {
	tax := Default()
	tower, sub, ok := tax.Resolve("End User Services")
	if !ok || tower != "End User Services" || sub != "" {
		t.Fatalf("Resolve = %q %q %v", tower, sub, ok)
	}
}

func TestResolveAcronymAndAlias(t *testing.T) {
	tax := Default()
	cases := []struct {
		surface, tower, sub string
	}{
		{"EUS", "End User Services", ""},
		{"eus", "End User Services", ""},
		{"CSC", "End User Services", "Customer Service Center"},
		{"Customer Services Center", "End User Services", "Customer Service Center"},
		{"Distributed Client Services", "End User Services", "Distributed Computing Services"},
		{"BCRS", "Disaster Recovery Services", "Business Continuity And Recovery Services"},
		{"  storage management services  ", "Storage Management Services", ""},
	}
	for _, c := range cases {
		tower, sub, ok := tax.Resolve(c.surface)
		if !ok || tower != c.tower || sub != c.sub {
			t.Errorf("Resolve(%q) = %q/%q/%v, want %q/%q", c.surface, tower, sub, ok, c.tower, c.sub)
		}
	}
}

func TestResolveUnknown(t *testing.T) {
	tax := Default()
	if _, _, ok := tax.Resolve("Underwater Basket Weaving"); ok {
		t.Fatal("resolved a nonsense concept")
	}
	if _, _, ok := tax.Resolve(""); ok {
		t.Fatal("resolved empty string")
	}
}

func TestIsTower(t *testing.T) {
	tax := Default()
	if !tax.IsTower("End User Services") {
		t.Error("EUS canonical name not a tower")
	}
	if tax.IsTower("Customer Service Center") {
		t.Error("sub-tower reported as tower")
	}
	if tax.IsTower("EUS") {
		t.Error("acronym should not satisfy IsTower (not canonical)")
	}
}

func TestSubTypesOfEUS(t *testing.T) {
	tax := Default()
	subs := tax.SubTypesOf("End User Services")
	// The paper: "End User Services has two subtypes: Customer Services
	// Center and Distributed Computing Services."
	if len(subs) != 2 {
		t.Fatalf("EUS subtypes = %v", subs)
	}
	want := map[string]bool{"Customer Service Center": true, "Distributed Computing Services": true}
	for _, s := range subs {
		if !want[s] {
			t.Errorf("unexpected subtype %q", s)
		}
	}
	if subs := tax.SubTypesOf("CSC"); subs != nil {
		t.Errorf("SubTypesOf(sub-tower) = %v, want nil", subs)
	}
	if subs := tax.SubTypesOf("nope"); subs != nil {
		t.Errorf("SubTypesOf(unknown) = %v, want nil", subs)
	}
}

func TestExpandTower(t *testing.T) {
	tax := Default()
	forms := tax.Expand("End User Services")
	joined := strings.ToLower(strings.Join(forms, "|"))
	for _, want := range []string{"end user services", "eus", "customer service center", "csc", "distributed computing services", "help desk services"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Expand(EUS) missing %q: %v", want, forms)
		}
	}
	// Expanding via acronym gives the same set.
	forms2 := tax.Expand("eus")
	if len(forms2) != len(forms) {
		t.Errorf("Expand via acronym differs: %d vs %d", len(forms2), len(forms))
	}
}

func TestExpandSubTower(t *testing.T) {
	tax := Default()
	forms := tax.Expand("CSC")
	joined := strings.ToLower(strings.Join(forms, "|"))
	if !strings.Contains(joined, "customer service center") || strings.Contains(joined, "distributed") {
		t.Errorf("Expand(CSC) = %v", forms)
	}
	if forms := tax.Expand("never heard of it"); forms != nil {
		t.Errorf("Expand(unknown) = %v", forms)
	}
}

func TestAllSurfaceFormsResolveProperty(t *testing.T) {
	tax := Default()
	forms := tax.AllSurfaceForms()
	if len(forms) < 40 {
		t.Fatalf("surface forms = %d, want a rich vocabulary", len(forms))
	}
	for _, f := range forms {
		if _, _, ok := tax.Resolve(f); !ok {
			t.Errorf("registered form %q does not resolve", f)
		}
	}
}

// Property: Resolve is case-insensitive.
func TestResolveCaseInsensitiveProperty(t *testing.T) {
	tax := Default()
	forms := tax.AllSurfaceForms()
	err := quick.Check(func(i uint16) bool {
		f := forms[int(i)%len(forms)]
		t1, s1, ok1 := tax.Resolve(strings.ToUpper(f))
		t2, s2, ok2 := tax.Resolve(strings.ToLower(f))
		return ok1 && ok2 && t1 == t2 && s1 == s2
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

// Property: every expansion form resolves back into the same tower.
func TestExpandClosureProperty(t *testing.T) {
	tax := Default()
	for _, tw := range tax.Towers() {
		for _, form := range tax.Expand(tw.Name) {
			tower, _, ok := tax.Resolve(form)
			if !ok || tower != tw.Name {
				t.Errorf("form %q of tower %q resolves to %q (%v)", form, tw.Name, tower, ok)
			}
		}
	}
}

func TestIndustriesAndGeos(t *testing.T) {
	tax := Default()
	if len(tax.Industries()) < 10 {
		t.Errorf("industries = %v", tax.Industries())
	}
	geos := tax.Geographies()
	if len(geos) != 3 {
		t.Fatalf("geos = %v", geos)
	}
	for _, g := range geos {
		if len(g.Countries) == 0 {
			t.Errorf("geo %s has no countries", g.Name)
		}
	}
}

func TestVocabularies(t *testing.T) {
	if len(OutsourcingConsultants) == 0 || OutsourcingConsultants[0] != "TPI" {
		t.Error("TPI must head the consultant vocabulary (paper Figure 6)")
	}
	if len(ContractValueBands) != 4 {
		t.Errorf("bands = %v", ContractValueBands)
	}
}
