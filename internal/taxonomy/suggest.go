package taxonomy

import (
	"sort"
	"strings"
)

// Suggestion is one near-miss vocabulary match for a user's input.
type Suggestion struct {
	Surface  string // the registered surface form
	Tower    string // its canonical tower
	SubTower string
	Distance int // Levenshtein distance to the input (lowercased)
}

// Suggest returns up to k registered surface forms closest to the input by
// edit distance, for "did you mean" behaviour when a concept query does not
// resolve (sales executives type "Strorage Mgmt" more often than one would
// hope). Exact resolutions return themselves with distance 0.
func (t *Taxonomy) Suggest(input string, k int) []Suggestion {
	if k <= 0 {
		k = 3
	}
	needle := strings.ToLower(strings.TrimSpace(input))
	if needle == "" {
		return nil
	}
	var out []Suggestion
	for surface, ref := range t.byName {
		d := levenshtein(needle, surface)
		// Cap the acceptable distance relative to the input length so
		// nonsense does not "suggest" everything.
		if d > len(needle)/2+2 {
			continue
		}
		out = append(out, Suggestion{
			Surface:  surface,
			Tower:    ref.tower,
			SubTower: ref.subTower,
			Distance: d,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].Surface < out[j].Surface
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// levenshtein computes the edit distance with the classic two-row dynamic
// program, byte-wise (the vocabulary is ASCII).
func levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
