package taxonomy

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// fileSchema is the JSON shape for customer-supplied taxonomies, so a
// deployment can describe its own service lines without recompiling — the
// paper's methodology is "applicable in situations where a business process
// constrains information needs", which means other processes bring other
// vocabularies.
type fileSchema struct {
	Towers     []Tower     `json:"towers"`
	Industries []string    `json:"industries"`
	Geos       []Geography `json:"geographies"`
}

// LoadJSON reads a taxonomy from JSON.
func LoadJSON(r io.Reader) (*Taxonomy, error) {
	var fs fileSchema
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&fs); err != nil {
		return nil, fmt.Errorf("taxonomy: decode: %w", err)
	}
	if len(fs.Towers) == 0 {
		return nil, fmt.Errorf("taxonomy: no towers defined")
	}
	for _, tw := range fs.Towers {
		if tw.Name == "" {
			return nil, fmt.Errorf("taxonomy: tower with empty name")
		}
	}
	return New(fs.Towers, fs.Industries, fs.Geos), nil
}

// LoadFile reads a taxonomy from a JSON file.
func LoadFile(path string) (*Taxonomy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("taxonomy: %w", err)
	}
	defer f.Close()
	return LoadJSON(f)
}

// WriteJSON serializes the taxonomy (round-trips with LoadJSON). Useful as
// a starting point: dump the default, edit, load.
func (t *Taxonomy) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(fileSchema{Towers: t.towers, Industries: t.industries, Geos: t.geos}); err != nil {
		return fmt.Errorf("taxonomy: encode: %w", err)
	}
	return nil
}
