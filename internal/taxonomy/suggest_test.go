package taxonomy

import (
	"testing"
	"testing/quick"
)

func TestSuggestExact(t *testing.T) {
	tax := Default()
	s := tax.Suggest("end user services", 3)
	if len(s) == 0 || s[0].Distance != 0 || s[0].Tower != "End User Services" {
		t.Fatalf("suggestions = %+v", s)
	}
}

func TestSuggestTypo(t *testing.T) {
	tax := Default()
	s := tax.Suggest("Strorage Management Services", 3)
	if len(s) == 0 {
		t.Fatal("no suggestions for a one-typo input")
	}
	if s[0].Tower != "Storage Management Services" {
		t.Fatalf("top suggestion = %+v", s[0])
	}
}

func TestSuggestAcronymTypo(t *testing.T) {
	tax := Default()
	s := tax.Suggest("EUSS", 2)
	found := false
	for _, x := range s {
		if x.Tower == "End User Services" {
			found = true
		}
	}
	if !found {
		t.Fatalf("EUS not suggested for EUSS: %+v", s)
	}
}

func TestSuggestNonsense(t *testing.T) {
	tax := Default()
	if s := tax.Suggest("qqqqqqqqqqqqqqqqqqqqqq", 3); len(s) != 0 {
		t.Fatalf("nonsense got suggestions: %+v", s)
	}
	if s := tax.Suggest("", 3); s != nil {
		t.Fatalf("empty input got suggestions: %+v", s)
	}
}

func TestSuggestLimit(t *testing.T) {
	tax := Default()
	if s := tax.Suggest("services", 2); len(s) > 2 {
		t.Fatalf("limit ignored: %+v", s)
	}
	if s := tax.Suggest("services", 0); len(s) > 3 {
		t.Fatalf("default limit ignored: %+v", s)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
	}
	for _, c := range cases {
		if got := levenshtein(c.a, c.b); got != c.want {
			t.Errorf("levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Properties: symmetry and the triangle-ish identity bound.
func TestLevenshteinProperties(t *testing.T) {
	err := quick.Check(func(a, b string) bool {
		if len(a) > 50 {
			a = a[:50]
		}
		if len(b) > 50 {
			b = b[:50]
		}
		d1, d2 := levenshtein(a, b), levenshtein(b, a)
		if d1 != d2 {
			return false
		}
		max := len(a)
		if len(b) > max {
			max = len(b)
		}
		return d1 <= max && (d1 == 0) == (a == b)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}
