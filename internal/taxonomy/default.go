package taxonomy

// Default returns the IT Services taxonomy used throughout the EIL
// reproduction. Tower and sub-tower names follow the vocabulary visible in
// the paper's figures (Figures 5, 6, and 9 list towers such as Customer
// Service Center, Distributed Client Services, Storage Management Services,
// End User Services, and so on); where the paper does not enumerate a
// tower's subtypes we complete the hierarchy with conventional IT
// outsourcing service lines.
func Default() *Taxonomy {
	towers := []Tower{
		{
			Name:    "End User Services",
			Acronym: "EUS",
			SubTypes: []SubTower{
				// The paper names exactly these two subtypes of EUS.
				{Name: "Customer Service Center", Acronym: "CSC", Aliases: []string{"Customer Services Center", "Help Desk Services"}},
				{Name: "Distributed Computing Services", Acronym: "DCS", Aliases: []string{"Distributed Client Services", "Desktop Services"}},
			},
		},
		{
			Name:    "Storage Management Services",
			Acronym: "SMS",
			SubTypes: []SubTower{
				{Name: "Storage Area Network Services", Acronym: "SAN"},
				{Name: "Backup And Restore Services", Aliases: []string{"Backup Services"}},
				{Name: "Data Replication Services"},
			},
		},
		{
			Name:    "Server Systems Management",
			Acronym: "SSM",
			SubTypes: []SubTower{
				{Name: "Mainframe Services", Aliases: []string{"zSeries Services"}},
				{Name: "Midrange Services", Aliases: []string{"AS400 Services", "iSeries Services"}},
				{Name: "Unix Server Services"},
				{Name: "Intel Server Services", Aliases: []string{"Wintel Services"}},
			},
		},
		{
			Name:    "Network Services",
			Acronym: "NWS",
			SubTypes: []SubTower{
				{Name: "Data Network Services", Aliases: []string{"LAN Services", "WAN Services"}},
				{Name: "Voice Services", Aliases: []string{"Telephony Services"}},
				{Name: "Remote Access Services"},
			},
		},
		{
			Name:    "Disaster Recovery Services",
			Acronym: "DRS",
			SubTypes: []SubTower{
				{Name: "Business Continuity And Recovery Services", Acronym: "BCRS"},
				{Name: "Rapid Recovery Services"},
			},
		},
		{
			Name:    "Data Center Services",
			Acronym: "DCF",
			SubTypes: []SubTower{
				{Name: "Data Center Operations"},
				{Name: "Facilities Management"},
			},
		},
		{
			Name:    "Application Management Services",
			Acronym: "AMS",
			SubTypes: []SubTower{
				{Name: "Application Development"},
				{Name: "Application Maintenance"},
			},
		},
		{
			Name:    "Security Services",
			Acronym: "SEC",
			SubTypes: []SubTower{
				{Name: "Identity Management Services"},
				{Name: "Compliance And Regulatory", Aliases: []string{"Compliance Services"}},
			},
		},
		{
			Name:    "eBusiness Services",
			Acronym: "EBS",
			SubTypes: []SubTower{
				{Name: "Web Hosting Services"},
				{Name: "Groupware", Aliases: []string{"Collaboration Services"}},
			},
		},
		{
			Name:    "Asset Management",
			Acronym: "AM",
			SubTypes: []SubTower{
				{Name: "Procurement Services"},
				{Name: "Software Asset Management"},
			},
		},
		{
			Name:    "Human Resources Services",
			Acronym: "HRS",
			SubTypes: []SubTower{
				{Name: "Payroll Services"},
				{Name: "Workforce Administration"},
			},
		},
		{
			Name:    "Infrastructure Services",
			Acronym: "IS",
			SubTypes: []SubTower{
				{Name: "Infrastructure Consolidation"},
				{Name: "Systems Monitoring", Aliases: []string{"Computer Operations And Monitoring"}},
			},
		},
	}
	industries := []string{
		"Banking", "Insurance", "Financial Markets", "Financial Services",
		"Industrial", "Industrial Products", "Retail", "Distribution",
		"Communications", "Healthcare", "Public Sector", "Energy And Utilities",
		"Travel And Transportation",
	}
	geos := []Geography{
		{Name: "Americas", Acronym: "AM", Countries: []string{"United States", "Canada", "Brazil", "Mexico"}},
		{Name: "Europe Middle East Africa", Acronym: "EMEA", Countries: []string{"United Kingdom", "Germany", "France", "South Africa"}},
		{Name: "Asia Pacific", Acronym: "AP", Countries: []string{"Japan", "Australia", "India", "China"}},
	}
	return New(towers, industries, geos)
}

// OutsourcingConsultants is the vocabulary of third-party sourcing advisors
// that appear in deal synopses (the paper's Figure 6 shows "TPI").
var OutsourcingConsultants = []string{"TPI", "Gartner", "EquaTerra", "Everest Group", "Alsbridge"}

// ContractValueBands are the total-contract-value display bands used in the
// paper's figures ("50 to 100M", "over 100M").
var ContractValueBands = []string{"under 10M", "10 to 50M", "50 to 100M", "over 100M"}
