// Package taxonomy defines the controlled vocabularies EIL's concept search
// is built on: the IT-services tower/sub-tower hierarchy, industries, and
// geographies. The ontology-based scope annotator matches document text
// against this taxonomy, and the query analyzer expands user-selected
// concepts (for example "End User Services") into their sub-types — the
// expansion the paper's Meta-query 1 evaluation turns on.
package taxonomy

import (
	"sort"
	"strings"
)

// Tower is one service tower (top-level scope concept) with its sub-towers.
type Tower struct {
	Name     string
	Acronym  string // common short form used in documents, "" if none
	SubTypes []SubTower
}

// SubTower is a second-level service concept under a tower.
type SubTower struct {
	Name    string
	Acronym string
	// Aliases are alternative surface forms seen in documents. The paper
	// notes the phrase "CSC" is not used consistently across the
	// organization; aliases model that inconsistency.
	Aliases []string
}

// Taxonomy is an immutable vocabulary set. Build one with Default or New.
type Taxonomy struct {
	towers     []Tower
	industries []string
	geos       []Geography
	// byName maps lowercase tower and sub-tower names/acronyms/aliases to
	// their canonical tower (and sub-tower when applicable).
	byName map[string]conceptRef
}

// Geography is a sales geography with its countries.
type Geography struct {
	Name      string
	Acronym   string
	Countries []string
}

type conceptRef struct {
	tower    string
	subTower string // "" when the name denotes the tower itself
}

// New builds a taxonomy from explicit vocabularies.
func New(towers []Tower, industries []string, geos []Geography) *Taxonomy {
	t := &Taxonomy{towers: towers, industries: industries, geos: geos, byName: map[string]conceptRef{}}
	for _, tw := range towers {
		t.register(tw.Name, conceptRef{tower: tw.Name})
		if tw.Acronym != "" {
			t.register(tw.Acronym, conceptRef{tower: tw.Name})
		}
		for _, st := range tw.SubTypes {
			ref := conceptRef{tower: tw.Name, subTower: st.Name}
			t.register(st.Name, ref)
			if st.Acronym != "" {
				t.register(st.Acronym, ref)
			}
			for _, a := range st.Aliases {
				t.register(a, ref)
			}
		}
	}
	return t
}

func (t *Taxonomy) register(name string, ref conceptRef) {
	key := strings.ToLower(strings.TrimSpace(name))
	if key == "" {
		return
	}
	if _, exists := t.byName[key]; !exists {
		t.byName[key] = ref
	}
}

// Towers returns the tower list in declaration order.
func (t *Taxonomy) Towers() []Tower { return t.towers }

// TowerNames returns the canonical tower names, sorted.
func (t *Taxonomy) TowerNames() []string {
	names := make([]string, len(t.towers))
	for i, tw := range t.towers {
		names[i] = tw.Name
	}
	sort.Strings(names)
	return names
}

// Industries returns the industry vocabulary.
func (t *Taxonomy) Industries() []string { return t.industries }

// Geographies returns the geography vocabulary.
func (t *Taxonomy) Geographies() []Geography { return t.geos }

// Resolve maps any surface form (tower name, sub-tower name, acronym, or
// alias, case-insensitive) to its canonical tower and sub-tower. subTower is
// "" when the form denotes a whole tower.
func (t *Taxonomy) Resolve(surface string) (tower, subTower string, ok bool) {
	ref, ok := t.byName[strings.ToLower(strings.TrimSpace(surface))]
	if !ok {
		return "", "", false
	}
	return ref.tower, ref.subTower, true
}

// IsTower reports whether name is a canonical tower name.
func (t *Taxonomy) IsTower(name string) bool {
	ref, ok := t.byName[strings.ToLower(strings.TrimSpace(name))]
	return ok && ref.subTower == "" && strings.EqualFold(ref.tower, strings.TrimSpace(name))
}

// SubTypesOf returns the sub-tower names of a tower (resolving aliases),
// or nil when the tower is unknown or has none. This is the expansion used
// by Meta-query 1: a keyword search for "End User Services" misses documents
// that only mention "Customer Service Center" or "Distributed Computing
// Services" unless the subtypes are added to the query.
func (t *Taxonomy) SubTypesOf(tower string) []string {
	ref, ok := t.byName[strings.ToLower(strings.TrimSpace(tower))]
	if !ok || ref.subTower != "" {
		return nil
	}
	for _, tw := range t.towers {
		if tw.Name == ref.tower {
			names := make([]string, len(tw.SubTypes))
			for i, st := range tw.SubTypes {
				names[i] = st.Name
			}
			return names
		}
	}
	return nil
}

// Expand returns all surface forms (canonical names, acronyms, aliases) that
// denote the tower or any of its sub-towers. Keyword baselines use this to
// build the "subtypes explicitly considered" query of Figure 4.
func (t *Taxonomy) Expand(tower string) []string {
	ref, ok := t.byName[strings.ToLower(strings.TrimSpace(tower))]
	if !ok {
		return nil
	}
	for _, tw := range t.towers {
		if tw.Name != ref.tower {
			continue
		}
		var forms []string
		add := func(s string) {
			if s != "" {
				forms = append(forms, s)
			}
		}
		if ref.subTower == "" {
			add(tw.Name)
			add(tw.Acronym)
			for _, st := range tw.SubTypes {
				add(st.Name)
				add(st.Acronym)
				for _, a := range st.Aliases {
					add(a)
				}
			}
		} else {
			for _, st := range tw.SubTypes {
				if st.Name != ref.subTower {
					continue
				}
				add(st.Name)
				add(st.Acronym)
				for _, a := range st.Aliases {
					add(a)
				}
			}
		}
		return forms
	}
	return nil
}

// AllSurfaceForms returns every registered surface form, sorted; the scope
// annotator scans documents for these.
func (t *Taxonomy) AllSurfaceForms() []string {
	forms := make([]string, 0, len(t.byName))
	for k := range t.byName {
		forms = append(forms, k)
	}
	sort.Strings(forms)
	return forms
}
