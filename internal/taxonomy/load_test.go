package taxonomy

import (
	"bytes"
	"strings"
	"testing"
)

func TestTaxonomyJSONRoundTrip(t *testing.T) {
	tax := Default()
	var buf bytes.Buffer
	if err := tax.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Towers()) != len(tax.Towers()) {
		t.Fatalf("towers %d vs %d", len(loaded.Towers()), len(tax.Towers()))
	}
	// Aliases survive: CSC still resolves.
	tower, sub, ok := loaded.Resolve("CSC")
	if !ok || tower != "End User Services" || sub != "Customer Service Center" {
		t.Fatalf("Resolve(CSC) after round trip = %q/%q/%v", tower, sub, ok)
	}
	if len(loaded.Industries()) != len(tax.Industries()) {
		t.Fatal("industries lost")
	}
	if len(loaded.Geographies()) != len(tax.Geographies()) {
		t.Fatal("geographies lost")
	}
}

func TestLoadJSONCustomVocabulary(t *testing.T) {
	custom := `{
	  "towers": [
	    {"Name": "Claims Processing", "Acronym": "CP",
	     "SubTypes": [{"Name": "First Notice Of Loss", "Acronym": "FNOL"}]}
	  ],
	  "industries": ["Insurance"],
	  "geographies": []
	}`
	tax, err := LoadJSON(strings.NewReader(custom))
	if err != nil {
		t.Fatal(err)
	}
	tower, sub, ok := tax.Resolve("fnol")
	if !ok || tower != "Claims Processing" || sub != "First Notice Of Loss" {
		t.Fatalf("custom resolve = %q/%q/%v", tower, sub, ok)
	}
}

func TestLoadJSONValidation(t *testing.T) {
	bad := []string{
		`not json`,
		`{"towers": []}`,
		`{"towers": [{"Name": ""}]}`,
		`{"towers": [{"Name": "X"}], "unknown_field": 1}`,
	}
	for _, s := range bad {
		if _, err := LoadJSON(strings.NewReader(s)); err == nil {
			t.Errorf("accepted %q", s)
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/tax.json"); err == nil {
		t.Fatal("missing file loaded")
	}
}
