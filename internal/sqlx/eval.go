package sqlx

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/relstore"
)

// Errors surfaced by the evaluator.
var (
	ErrAmbiguousColumn = errors.New("sqlx: ambiguous column")
	ErrUnknownColumn   = errors.New("sqlx: unknown column")
	ErrBadParam        = errors.New("sqlx: parameter index out of range")
)

// env is the name-resolution environment for one (possibly joined) row.
type env struct {
	vals      map[string]relstore.Value
	ambiguous map[string]bool
	params    []relstore.Value
}

func newEnv(params []relstore.Value) *env {
	return &env{
		vals:      make(map[string]relstore.Value),
		ambiguous: make(map[string]bool),
		params:    params,
	}
}

// bind adds one table's row under its alias (or table name). A nil row binds
// all columns to NULL (the LEFT JOIN pad).
func (e *env) bind(alias string, schema relstore.Schema, row relstore.Row) {
	alias = strings.ToLower(alias)
	for i, col := range schema.Columns {
		var v relstore.Value
		if row != nil {
			v = row[i]
		}
		qualified := alias + "." + strings.ToLower(col.Name)
		e.vals[qualified] = v
		bare := strings.ToLower(col.Name)
		if _, dup := e.vals[bare]; dup {
			e.ambiguous[bare] = true
		} else {
			e.vals[bare] = v
		}
	}
}

func (e *env) column(table, column string) (relstore.Value, error) {
	key := strings.ToLower(column)
	if table != "" {
		key = strings.ToLower(table) + "." + key
	} else if e.ambiguous[key] {
		return nil, fmt.Errorf("%w: %s", ErrAmbiguousColumn, column)
	}
	v, ok := e.vals[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownColumn, column)
	}
	return v, nil
}

// evalExpr evaluates a scalar expression against one row environment.
// Simplification vs full SQL: NULL propagates through operators, and a NULL
// predicate result is treated as false (two-valued logic at the filter).
func evalExpr(x Expr, e *env) (relstore.Value, error) {
	switch t := x.(type) {
	case *Literal:
		return t.Value, nil
	case *Param:
		if t.Index >= len(e.params) {
			return nil, fmt.Errorf("%w: ? #%d with %d args", ErrBadParam, t.Index+1, len(e.params))
		}
		return normalizeParam(e.params[t.Index]), nil
	case *ColumnRef:
		return e.column(t.Table, t.Column)
	case *Unary:
		return evalUnary(t, e)
	case *Binary:
		return evalBinary(t, e)
	case *InList:
		return evalIn(t, e)
	case *IsNull:
		v, err := evalExpr(t.Expr, e)
		if err != nil {
			return nil, err
		}
		return (v == nil) != t.Negate, nil
	case *FuncCall:
		if aggregateFuncs[t.Name] {
			return nil, fmt.Errorf("sqlx: aggregate %s outside aggregate context", t.Name)
		}
		return evalScalarFunc(t, e)
	default:
		return nil, fmt.Errorf("sqlx: cannot evaluate %T", x)
	}
}

// normalizeParam widens Go-native parameter types to engine types.
func normalizeParam(v relstore.Value) relstore.Value {
	switch x := v.(type) {
	case int:
		return int64(x)
	case int32:
		return int64(x)
	case float32:
		return float64(x)
	default:
		return v
	}
}

func evalUnary(t *Unary, e *env) (relstore.Value, error) {
	v, err := evalExpr(t.Expr, e)
	if err != nil {
		return nil, err
	}
	switch t.Op {
	case "NOT":
		if v == nil {
			return false, nil
		}
		b, ok := v.(bool)
		if !ok {
			return nil, fmt.Errorf("sqlx: NOT applied to %T", v)
		}
		return !b, nil
	case "-":
		switch n := v.(type) {
		case nil:
			return nil, nil
		case int64:
			return -n, nil
		case float64:
			return -n, nil
		}
		return nil, fmt.Errorf("sqlx: unary minus applied to %T", v)
	}
	return nil, fmt.Errorf("sqlx: unknown unary op %q", t.Op)
}

func evalBinary(t *Binary, e *env) (relstore.Value, error) {
	// AND/OR get short-circuit evaluation.
	switch t.Op {
	case "AND":
		lv, err := truthy(t.Left, e)
		if err != nil {
			return nil, err
		}
		if !lv {
			return false, nil
		}
		return boolOf(t.Right, e)
	case "OR":
		lv, err := truthy(t.Left, e)
		if err != nil {
			return nil, err
		}
		if lv {
			return true, nil
		}
		return boolOf(t.Right, e)
	}
	lv, err := evalExpr(t.Left, e)
	if err != nil {
		return nil, err
	}
	rv, err := evalExpr(t.Right, e)
	if err != nil {
		return nil, err
	}
	switch t.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		if lv == nil || rv == nil {
			return false, nil // NULL never compares equal (or ordered)
		}
		c, err := relstore.Compare(lv, rv)
		if err != nil {
			return nil, err
		}
		switch t.Op {
		case "=":
			return c == 0, nil
		case "<>":
			return c != 0, nil
		case "<":
			return c < 0, nil
		case "<=":
			return c <= 0, nil
		case ">":
			return c > 0, nil
		case ">=":
			return c >= 0, nil
		}
	case "LIKE":
		if lv == nil || rv == nil {
			return false, nil
		}
		s, ok1 := lv.(string)
		pat, ok2 := rv.(string)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("sqlx: LIKE requires text operands, got %T and %T", lv, rv)
		}
		return MatchLike(s, pat), nil
	case "||":
		if lv == nil || rv == nil {
			return nil, nil
		}
		return relstore.FormatValue(lv) + relstore.FormatValue(rv), nil
	case "+", "-", "*", "/", "%":
		return arith(t.Op, lv, rv)
	}
	return nil, fmt.Errorf("sqlx: unknown binary op %q", t.Op)
}

func arith(op string, lv, rv relstore.Value) (relstore.Value, error) {
	if lv == nil || rv == nil {
		return nil, nil
	}
	li, lIsInt := lv.(int64)
	ri, rIsInt := rv.(int64)
	if lIsInt && rIsInt {
		switch op {
		case "+":
			return li + ri, nil
		case "-":
			return li - ri, nil
		case "*":
			return li * ri, nil
		case "/":
			if ri == 0 {
				return nil, errors.New("sqlx: division by zero")
			}
			return li / ri, nil
		case "%":
			if ri == 0 {
				return nil, errors.New("sqlx: modulo by zero")
			}
			return li % ri, nil
		}
	}
	lf, err := asFloat(lv)
	if err != nil {
		return nil, err
	}
	rf, err := asFloat(rv)
	if err != nil {
		return nil, err
	}
	switch op {
	case "+":
		return lf + rf, nil
	case "-":
		return lf - rf, nil
	case "*":
		return lf * rf, nil
	case "/":
		if rf == 0 {
			return nil, errors.New("sqlx: division by zero")
		}
		return lf / rf, nil
	case "%":
		return nil, errors.New("sqlx: %% requires integer operands")
	}
	return nil, fmt.Errorf("sqlx: unknown arithmetic op %q", op)
}

func asFloat(v relstore.Value) (float64, error) {
	switch n := v.(type) {
	case int64:
		return float64(n), nil
	case float64:
		return n, nil
	}
	return 0, fmt.Errorf("sqlx: %T is not numeric", v)
}

func evalIn(t *InList, e *env) (relstore.Value, error) {
	v, err := evalExpr(t.Expr, e)
	if err != nil {
		return nil, err
	}
	if v == nil {
		return false, nil
	}
	found := false
	for _, item := range t.Items {
		iv, err := evalExpr(item, e)
		if err != nil {
			return nil, err
		}
		if relstore.Equal(v, iv) {
			found = true
			break
		}
	}
	return found != t.Negate, nil
}

func evalScalarFunc(t *FuncCall, e *env) (relstore.Value, error) {
	args := make([]relstore.Value, len(t.Args))
	for i, a := range t.Args {
		v, err := evalExpr(a, e)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	switch t.Name {
	case "UPPER", "LOWER", "LENGTH":
		if len(args) != 1 {
			return nil, fmt.Errorf("sqlx: %s takes one argument", t.Name)
		}
		if args[0] == nil {
			return nil, nil
		}
		s, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("sqlx: %s requires text, got %T", t.Name, args[0])
		}
		switch t.Name {
		case "UPPER":
			return strings.ToUpper(s), nil
		case "LOWER":
			return strings.ToLower(s), nil
		default:
			return int64(len(s)), nil
		}
	case "COALESCE":
		for _, a := range args {
			if a != nil {
				return a, nil
			}
		}
		return nil, nil
	}
	return nil, fmt.Errorf("sqlx: unknown function %q", t.Name)
}

// truthy evaluates a predicate expression to a boolean, mapping NULL to
// false.
func truthy(x Expr, e *env) (bool, error) {
	v, err := evalExpr(x, e)
	if err != nil {
		return false, err
	}
	switch b := v.(type) {
	case nil:
		return false, nil
	case bool:
		return b, nil
	default:
		return false, fmt.Errorf("sqlx: predicate evaluated to %T, want bool", v)
	}
}

func boolOf(x Expr, e *env) (relstore.Value, error) {
	b, err := truthy(x, e)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// MatchLike implements SQL LIKE with % (any run) and _ (any single char),
// case-insensitively, matching DB2's default collation behaviour closely
// enough for EIL's synopsis queries. The match is iterative with
// backtracking on the last %.
func MatchLike(s, pattern string) bool {
	s = strings.ToLower(s)
	pattern = strings.ToLower(pattern)
	si, pi := 0, 0
	star, starSi := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			starSi = si
			pi++
		case star >= 0:
			starSi++
			si = starSi
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}
