package sqlx

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/relstore"
)

// Parse parses a single SQL statement. A trailing semicolon is permitted.
func Parse(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	p.accept(tkSymbol, ";")
	if !p.at(tkEOF, "") {
		return nil, p.errf("trailing input %q", p.peek().text)
	}
	return stmt, nil
}

type parser struct {
	src    string
	toks   []token
	i      int
	params int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tkEOF {
		p.i++
	}
	return t
}

// at reports whether the current token has the given kind and (when text is
// non-empty) text.
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

// accept consumes the current token if it matches.
func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if !p.at(kind, text) {
		got := p.peek()
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return token{}, p.errf("expected %s, found %q", want, got.text)
	}
	return p.next(), nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlx: parse error at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.at(tkKeyword, "SELECT"):
		return p.parseSelect()
	case p.at(tkKeyword, "INSERT"):
		return p.parseInsert()
	case p.at(tkKeyword, "UPDATE"):
		return p.parseUpdate()
	case p.at(tkKeyword, "DELETE"):
		return p.parseDelete()
	case p.at(tkKeyword, "CREATE"):
		return p.parseCreate()
	case p.at(tkKeyword, "DROP"):
		return p.parseDrop()
	default:
		return nil, p.errf("expected a statement, found %q", p.peek().text)
	}
}

func (p *parser) parseIdent() (string, error) {
	if p.at(tkIdent, "") {
		return p.next().text, nil
	}
	return "", p.errf("expected identifier, found %q", p.peek().text)
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(tkKeyword, "SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{Limit: -1}
	s.Distinct = p.accept(tkKeyword, "DISTINCT")
	if p.accept(tkSymbol, "*") {
		s.Items = nil // plain star
	} else {
		for {
			item := SelectItem{}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item.Expr = e
			if p.accept(tkKeyword, "AS") {
				alias, err := p.parseIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = alias
			} else if p.at(tkIdent, "") {
				item.Alias = p.next().text
			}
			s.Items = append(s.Items, item)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tkKeyword, "FROM"); err != nil {
		return nil, err
	}
	ref, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	s.From = ref
	for {
		left := false
		if p.at(tkKeyword, "LEFT") {
			p.next()
			left = true
		} else if p.at(tkKeyword, "INNER") {
			p.next()
		} else if !p.at(tkKeyword, "JOIN") {
			break
		}
		if _, err := p.expect(tkKeyword, "JOIN"); err != nil {
			return nil, err
		}
		jref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkKeyword, "ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Joins = append(s.Joins, JoinClause{Left: left, Table: jref, On: on})
	}
	if p.accept(tkKeyword, "WHERE") {
		if s.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.accept(tkKeyword, "GROUP") {
		if _, err := p.expect(tkKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
		if p.accept(tkKeyword, "HAVING") {
			if s.Having, err = p.parseExpr(); err != nil {
				return nil, err
			}
		}
	}
	if p.accept(tkKeyword, "ORDER") {
		if _, err := p.expect(tkKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tkKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tkKeyword, "ASC")
			}
			s.OrderBy = append(s.OrderBy, item)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tkKeyword, "LIMIT") {
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		s.Limit = n
		if p.accept(tkKeyword, "OFFSET") {
			m, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			s.Offset = m
		}
	}
	return s, nil
}

func (p *parser) parseInt() (int, error) {
	t, err := p.expect(tkNumber, "")
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, p.errf("invalid integer %q", t.text)
	}
	return n, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.parseIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name}
	if p.accept(tkKeyword, "AS") {
		if ref.Alias, err = p.parseIdent(); err != nil {
			return TableRef{}, err
		}
	} else if p.at(tkIdent, "") {
		ref.Alias = p.next().text
	}
	return ref, nil
}

func (p *parser) parseInsert() (*InsertStmt, error) {
	if _, err := p.expect(tkKeyword, "INSERT"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tkKeyword, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	s := &InsertStmt{Table: table}
	if p.accept(tkSymbol, "(") {
		for {
			col, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			s.Columns = append(s.Columns, col)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tkKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tkSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		s.Rows = append(s.Rows, row)
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	return s, nil
}

func (p *parser) parseUpdate() (*UpdateStmt, error) {
	if _, err := p.expect(tkKeyword, "UPDATE"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkKeyword, "SET"); err != nil {
		return nil, err
	}
	s := &UpdateStmt{Table: table}
	for {
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkSymbol, "="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Set = append(s.Set, SetClause{Column: col, Value: val})
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	if p.accept(tkKeyword, "WHERE") {
		if s.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (p *parser) parseDelete() (*DeleteStmt, error) {
	if _, err := p.expect(tkKeyword, "DELETE"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tkKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	s := &DeleteStmt{Table: table}
	if p.accept(tkKeyword, "WHERE") {
		if s.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (p *parser) parseCreate() (Stmt, error) {
	if _, err := p.expect(tkKeyword, "CREATE"); err != nil {
		return nil, err
	}
	unique := p.accept(tkKeyword, "UNIQUE")
	sorted := p.accept(tkKeyword, "SORTED")
	if unique && sorted {
		return nil, p.errf("an index cannot be both UNIQUE and SORTED")
	}
	switch {
	case p.accept(tkKeyword, "TABLE"):
		if unique || sorted {
			return nil, p.errf("UNIQUE/SORTED are not valid on CREATE TABLE")
		}
		return p.parseCreateTable()
	case p.accept(tkKeyword, "INDEX"):
		return p.parseCreateIndex(unique, sorted)
	default:
		return nil, p.errf("expected TABLE or INDEX after CREATE")
	}
}

func (p *parser) parseCreateTable() (*CreateTableStmt, error) {
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkSymbol, "("); err != nil {
		return nil, err
	}
	schema := relstore.Schema{Table: name}
	for {
		if p.accept(tkKeyword, "PRIMARY") {
			if _, err := p.expect(tkKeyword, "KEY"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tkSymbol, "("); err != nil {
				return nil, err
			}
			for {
				col, err := p.parseIdent()
				if err != nil {
					return nil, err
				}
				schema.PrimaryKey = append(schema.PrimaryKey, col)
				if !p.accept(tkSymbol, ",") {
					break
				}
			}
			if _, err := p.expect(tkSymbol, ")"); err != nil {
				return nil, err
			}
		} else {
			col, err := p.parseColumnDef(&schema)
			if err != nil {
				return nil, err
			}
			schema.Columns = append(schema.Columns, col)
		}
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tkSymbol, ")"); err != nil {
		return nil, err
	}
	return &CreateTableStmt{Schema: schema}, nil
}

func (p *parser) parseColumnDef(schema *relstore.Schema) (relstore.Column, error) {
	name, err := p.parseIdent()
	if err != nil {
		return relstore.Column{}, err
	}
	t := p.next()
	if t.kind != tkKeyword {
		return relstore.Column{}, p.errf("expected column type, found %q", t.text)
	}
	var typ relstore.Type
	switch t.text {
	case "TEXT":
		typ = relstore.TText
	case "INT", "INTEGER":
		typ = relstore.TInt
	case "FLOAT", "REAL":
		typ = relstore.TFloat
	case "BOOL", "BOOLEAN":
		typ = relstore.TBool
	default:
		return relstore.Column{}, p.errf("unknown column type %q", t.text)
	}
	col := relstore.Column{Name: name, Type: typ}
	for {
		switch {
		case p.accept(tkKeyword, "NOT"):
			if _, err := p.expect(tkKeyword, "NULL"); err != nil {
				return relstore.Column{}, err
			}
			col.NotNull = true
		case p.accept(tkKeyword, "PRIMARY"):
			if _, err := p.expect(tkKeyword, "KEY"); err != nil {
				return relstore.Column{}, err
			}
			schema.PrimaryKey = append(schema.PrimaryKey, name)
		default:
			return col, nil
		}
	}
}

func (p *parser) parseCreateIndex(unique, sorted bool) (*CreateIndexStmt, error) {
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkKeyword, "ON"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkSymbol, "("); err != nil {
		return nil, err
	}
	s := &CreateIndexStmt{Name: name, Table: table, Unique: unique, Sorted: sorted}
	for {
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		s.Columns = append(s.Columns, col)
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tkSymbol, ")"); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *parser) parseDrop() (*DropTableStmt, error) {
	if _, err := p.expect(tkKeyword, "DROP"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tkKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Table: name}, nil
}

// --- expressions, precedence climbing ---

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tkKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tkKeyword, "AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tkKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", Expr: e}, nil
	}
	return p.parseComparison()
}

var comparisonOps = map[string]bool{"=": true, "<>": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.accept(tkKeyword, "IS") {
		negate := p.accept(tkKeyword, "NOT")
		if _, err := p.expect(tkKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNull{Expr: left, Negate: negate}, nil
	}
	// [NOT] LIKE / IN / BETWEEN
	negate := false
	if p.at(tkKeyword, "NOT") && (p.toks[p.i+1].text == "LIKE" || p.toks[p.i+1].text == "IN" || p.toks[p.i+1].text == "BETWEEN") {
		p.next()
		negate = true
	}
	if p.accept(tkKeyword, "BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		// Desugar: left BETWEEN lo AND hi == left >= lo AND left <= hi.
		var e Expr = &Binary{Op: "AND",
			Left:  &Binary{Op: ">=", Left: left, Right: lo},
			Right: &Binary{Op: "<=", Left: left, Right: hi},
		}
		if negate {
			// Under SQL's three-valued logic NULL is neither inside nor
			// outside a range; the evaluator is two-valued, so guard the
			// negation with an explicit NULL check.
			e = &Binary{Op: "AND",
				Left:  &IsNull{Expr: left, Negate: true},
				Right: &Unary{Op: "NOT", Expr: e},
			}
		}
		return e, nil
	}
	if p.accept(tkKeyword, "LIKE") {
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		var e Expr = &Binary{Op: "LIKE", Left: left, Right: right}
		if negate {
			e = &Unary{Op: "NOT", Expr: e}
		}
		return e, nil
	}
	if p.accept(tkKeyword, "IN") {
		if _, err := p.expect(tkSymbol, "("); err != nil {
			return nil, err
		}
		in := &InList{Expr: left, Negate: negate}
		for {
			item, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			in.Items = append(in.Items, item)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		return in, nil
	}
	if negate {
		return nil, p.errf("dangling NOT")
	}
	if p.at(tkSymbol, "") && comparisonOps[p.peek().text] {
		op := p.next().text
		if op == "!=" {
			op = "<>"
		}
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: op, Left: left, Right: right}, nil
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.at(tkSymbol, "+") || p.at(tkSymbol, "-") || p.at(tkSymbol, "||") {
		op := p.next().text
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(tkSymbol, "*") || p.at(tkSymbol, "/") || p.at(tkSymbol, "%") {
		op := p.next().text
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tkSymbol, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", Expr: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tkNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("invalid number %q", t.text)
			}
			return &Literal{Value: f}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("invalid integer %q", t.text)
		}
		return &Literal{Value: n}, nil
	case tkString:
		p.next()
		return &Literal{Value: t.text}, nil
	case tkParam:
		p.next()
		e := &Param{Index: p.params}
		p.params++
		return e, nil
	case tkKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return &Literal{Value: nil}, nil
		case "TRUE":
			p.next()
			return &Literal{Value: true}, nil
		case "FALSE":
			p.next()
			return &Literal{Value: false}, nil
		case "NOT":
			return p.parseNot()
		}
		return nil, p.errf("unexpected keyword %q in expression", t.text)
	case tkIdent:
		p.next()
		// Function call?
		if p.at(tkSymbol, "(") {
			return p.parseFuncCall(t.text)
		}
		// Qualified column?
		if p.accept(tkSymbol, ".") {
			col, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.text, Column: col}, nil
		}
		return &ColumnRef{Column: t.text}, nil
	case tkSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tkSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token %q in expression", t.text)
}

var scalarFuncs = map[string]bool{
	"UPPER": true, "LOWER": true, "LENGTH": true, "COALESCE": true,
}

func (p *parser) parseFuncCall(name string) (Expr, error) {
	up := strings.ToUpper(name)
	if !aggregateFuncs[up] && !scalarFuncs[up] {
		return nil, p.errf("unknown function %q", name)
	}
	if _, err := p.expect(tkSymbol, "("); err != nil {
		return nil, err
	}
	fc := &FuncCall{Name: up}
	if p.accept(tkSymbol, "*") {
		if up != "COUNT" {
			return nil, p.errf("* argument is only valid in COUNT")
		}
		fc.Star = true
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	if p.accept(tkSymbol, ")") {
		return nil, p.errf("%s requires arguments", up)
	}
	for {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fc.Args = append(fc.Args, a)
		if !p.accept(tkSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tkSymbol, ")"); err != nil {
		return nil, err
	}
	return fc, nil
}
