package sqlx

import "repro/internal/relstore"

// Stmt is any parsed SQL statement.
type Stmt interface{ isStmt() }

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem // nil means '*'
	From     TableRef
	Joins    []JoinClause
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
	Offset   int // 0 when absent
}

// SelectItem is one output expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool // bare '*' in a select list mixed with other items
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// JoinClause is one JOIN ... ON ....
type JoinClause struct {
	Left  bool // LEFT JOIN when true, INNER otherwise
	Table TableRef
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// InsertStmt is INSERT INTO ... VALUES ....
type InsertStmt struct {
	Table   string
	Columns []string // nil means schema order
	Rows    [][]Expr
}

// UpdateStmt is UPDATE ... SET ... [WHERE ...].
type UpdateStmt struct {
	Table string
	Set   []SetClause
	Where Expr
}

// SetClause is one column assignment.
type SetClause struct {
	Column string
	Value  Expr
}

// DeleteStmt is DELETE FROM ... [WHERE ...].
type DeleteStmt struct {
	Table string
	Where Expr
}

// CreateTableStmt is CREATE TABLE.
type CreateTableStmt struct {
	Schema relstore.Schema
}

// CreateIndexStmt is CREATE [UNIQUE|SORTED] INDEX. Sorted indexes are
// single-column and serve range predicates.
type CreateIndexStmt struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
	Sorted  bool
}

// DropTableStmt is DROP TABLE.
type DropTableStmt struct {
	Table string
}

func (*SelectStmt) isStmt()      {}
func (*InsertStmt) isStmt()      {}
func (*UpdateStmt) isStmt()      {}
func (*DeleteStmt) isStmt()      {}
func (*CreateTableStmt) isStmt() {}
func (*CreateIndexStmt) isStmt() {}
func (*DropTableStmt) isStmt()   {}

// Expr is any expression node.
type Expr interface{ isExpr() }

// Literal is a constant value.
type Literal struct{ Value relstore.Value }

// Param is a '?' placeholder, bound positionally at execution.
type Param struct{ Index int }

// ColumnRef references a column, optionally qualified by table or alias.
type ColumnRef struct {
	Table  string // "" when unqualified
	Column string
}

// Binary applies an infix operator. Op is the uppercase surface form:
// =, <>, <, <=, >, >=, +, -, *, /, %, ||, AND, OR, LIKE.
type Binary struct {
	Op          string
	Left, Right Expr
}

// Unary applies NOT or numeric negation (Op "NOT" or "-").
type Unary struct {
	Op   string
	Expr Expr
}

// InList is expr [NOT] IN (items...).
type InList struct {
	Expr   Expr
	Items  []Expr
	Negate bool
}

// IsNull is expr IS [NOT] NULL.
type IsNull struct {
	Expr   Expr
	Negate bool
}

// FuncCall is a scalar or aggregate function application. Name is uppercase.
// Star marks COUNT(*).
type FuncCall struct {
	Name string
	Args []Expr
	Star bool
}

func (*Literal) isExpr()   {}
func (*Param) isExpr()     {}
func (*ColumnRef) isExpr() {}
func (*Binary) isExpr()    {}
func (*Unary) isExpr()     {}
func (*InList) isExpr()    {}
func (*IsNull) isExpr()    {}
func (*FuncCall) isExpr()  {}

// aggregateFuncs are the functions computed over groups.
var aggregateFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// hasAggregate reports whether the expression tree contains an aggregate
// function call.
func hasAggregate(e Expr) bool {
	switch t := e.(type) {
	case nil:
		return false
	case *FuncCall:
		if aggregateFuncs[t.Name] {
			return true
		}
		for _, a := range t.Args {
			if hasAggregate(a) {
				return true
			}
		}
	case *Binary:
		return hasAggregate(t.Left) || hasAggregate(t.Right)
	case *Unary:
		return hasAggregate(t.Expr)
	case *InList:
		if hasAggregate(t.Expr) {
			return true
		}
		for _, it := range t.Items {
			if hasAggregate(it) {
				return true
			}
		}
	case *IsNull:
		return hasAggregate(t.Expr)
	}
	return false
}
