package sqlx

import (
	"reflect"
	"testing"
)

// FuzzParse feeds arbitrary statement text through the SQL front end. The
// parser must never panic, and an accepted statement must parse to the same
// AST every time (the planner memoizes on statement text, so nondeterminism
// here would poison plans).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"SELECT * FROM deals",
		"SELECT id FROM deals WHERE industry = 'Insurance'",
		"SELECT id FROM deals WHERE industry = ? AND months = ?;",
		"SELECT id FROM deals WHERE tcv >= 75 AND NOT international",
		"CREATE TABLE deals (id TEXT PRIMARY KEY, tcv FLOAT)",
		"CREATE UNIQUE SORTED INDEX x ON deals (tcv)",
		"INSERT INTO deals (id, customer) VALUES ('DEAL Q', 'O''Neil & Co')",
		"DELETE FROM people WHERE role = 'CSE'",
		"DROP TABLE people",
		"SELECT FROM",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			return
		}
		if stmt == nil {
			t.Fatalf("nil statement without error for %q", src)
		}
		again, err := Parse(src)
		if err != nil {
			t.Fatalf("accepted then rejected %q: %v", src, err)
		}
		if !reflect.DeepEqual(stmt, again) {
			t.Fatalf("nondeterministic parse of %q:\n%#v\n%#v", src, stmt, again)
		}
	})
}
