package sqlx

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/relstore"
)

func openTestDB(t *testing.T) *Conn {
	t.Helper()
	c := Open(relstore.NewDB())
	mustExec(t, c, `CREATE TABLE deals (
		id TEXT PRIMARY KEY,
		customer TEXT NOT NULL,
		industry TEXT,
		tcv FLOAT,
		months INT,
		international BOOL
	)`)
	mustExec(t, c, `CREATE TABLE people (
		deal_id TEXT NOT NULL,
		name TEXT NOT NULL,
		role TEXT,
		email TEXT
	)`)
	stmts := []string{
		`INSERT INTO deals VALUES ('DEAL A', 'Acme Bank', 'Banking', 120.5, 60, TRUE)`,
		`INSERT INTO deals VALUES ('DEAL B', 'Borealis', 'Insurance', 75.0, 36, FALSE)`,
		`INSERT INTO deals VALUES ('DEAL C', 'Cygnus', 'Insurance', 55.0, 60, TRUE)`,
		`INSERT INTO deals (id, customer) VALUES ('DEAL D', 'Delta')`,
		`INSERT INTO people VALUES
			('DEAL A', 'Sam White', 'CSE', 'sam.white@abc.com'),
			('DEAL A', 'Jo Park', 'TSA', 'jo.park@ibm.com'),
			('DEAL B', 'Lee Chan', 'CSE', 'lee.chan@ibm.com'),
			('DEAL C', 'Ana Ruiz', 'PE', NULL)`,
	}
	for _, s := range stmts {
		mustExec(t, c, s)
	}
	return c
}

func mustExec(t *testing.T, c *Conn, sql string, args ...relstore.Value) int {
	t.Helper()
	n, err := c.Exec(sql, args...)
	if err != nil {
		t.Fatalf("Exec(%s): %v", sql, err)
	}
	return n
}

func mustQuery(t *testing.T, c *Conn, sql string, args ...relstore.Value) *Rows {
	t.Helper()
	rows, err := c.Query(sql, args...)
	if err != nil {
		t.Fatalf("Query(%s): %v", sql, err)
	}
	return rows
}

func TestSelectStar(t *testing.T) {
	c := openTestDB(t)
	rows := mustQuery(t, c, `SELECT * FROM deals`)
	if rows.Len() != 4 {
		t.Fatalf("rows = %d", rows.Len())
	}
	if len(rows.Columns) != 6 || rows.Columns[0] != "id" {
		t.Fatalf("columns = %v", rows.Columns)
	}
}

func TestSelectWhereEquality(t *testing.T) {
	c := openTestDB(t)
	rows := mustQuery(t, c, `SELECT id FROM deals WHERE industry = 'Insurance'`)
	if rows.Len() != 2 {
		t.Fatalf("rows = %v", rows.Data)
	}
}

func TestSelectWhereParams(t *testing.T) {
	c := openTestDB(t)
	rows := mustQuery(t, c, `SELECT id FROM deals WHERE industry = ? AND months = ?`, "Insurance", 60)
	if rows.Len() != 1 || rows.Data[0][0] != "DEAL C" {
		t.Fatalf("rows = %v", rows.Data)
	}
}

func TestSelectMissingParam(t *testing.T) {
	c := openTestDB(t)
	if _, err := c.Query(`SELECT id FROM deals WHERE industry = ?`); !errors.Is(err, ErrBadParam) {
		t.Fatalf("err = %v", err)
	}
}

func TestSelectComparisons(t *testing.T) {
	c := openTestDB(t)
	cases := map[string]int{
		`SELECT id FROM deals WHERE tcv > 60`:                          2,
		`SELECT id FROM deals WHERE tcv >= 75`:                         2,
		`SELECT id FROM deals WHERE tcv < 60`:                          1,
		`SELECT id FROM deals WHERE tcv <= 55`:                         1,
		`SELECT id FROM deals WHERE tcv <> 55`:                         2, // NULL row excluded
		`SELECT id FROM deals WHERE months = 60`:                       2,
		`SELECT id FROM deals WHERE international = TRUE`:              2,
		`SELECT id FROM deals WHERE NOT international`:                 1,
		`SELECT id FROM deals WHERE tcv IS NULL`:                       1,
		`SELECT id FROM deals WHERE tcv IS NOT NULL`:                   3,
		`SELECT id FROM deals WHERE industry IN ('Banking', 'Retail')`: 1,
		`SELECT id FROM deals WHERE industry NOT IN ('Banking')`:       2, // NULL industry excluded
	}
	for sql, want := range cases {
		if got := mustQuery(t, c, sql).Len(); got != want {
			t.Errorf("%s: got %d rows, want %d", sql, got, want)
		}
	}
}

func TestSelectLike(t *testing.T) {
	c := openTestDB(t)
	cases := map[string]int{
		`SELECT id FROM deals WHERE customer LIKE 'A%'`:     1,
		`SELECT id FROM deals WHERE customer LIKE '%a%'`:    3, // Acme Bank, Borealis, Delta (case-insensitive)
		`SELECT id FROM deals WHERE customer LIKE '_cme%'`:  1,
		`SELECT id FROM deals WHERE customer NOT LIKE '%s'`: 2, // Acme Bank, Delta
		`SELECT id FROM deals WHERE customer LIKE 'acme %'`: 1, // case-insensitive
	}
	for sql, want := range cases {
		if got := mustQuery(t, c, sql).Len(); got != want {
			t.Errorf("%s: got %d, want %d", sql, got, want)
		}
	}
}

func TestMatchLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h__lo", true},
		{"hello", "", false},
		{"", "", true},
		{"", "%", true},
		{"abc", "%%%", true},
		{"abc", "a%c%", true},
		{"abc", "a_c_", false},
		{"Storage Management", "%manage%", true},
	}
	for _, tc := range cases {
		if got := MatchLike(tc.s, tc.p); got != tc.want {
			t.Errorf("MatchLike(%q, %q) = %v", tc.s, tc.p, got)
		}
	}
}

func TestOrderBy(t *testing.T) {
	c := openTestDB(t)
	rows := mustQuery(t, c, `SELECT id, tcv FROM deals WHERE tcv IS NOT NULL ORDER BY tcv DESC`)
	want := []string{"DEAL A", "DEAL B", "DEAL C"}
	for i, w := range want {
		if rows.Data[i][0] != w {
			t.Fatalf("order wrong: %v", rows.Data)
		}
	}
	rows = mustQuery(t, c, `SELECT id FROM deals ORDER BY id ASC`)
	if rows.Data[0][0] != "DEAL A" || rows.Data[3][0] != "DEAL D" {
		t.Fatalf("asc order wrong: %v", rows.Data)
	}
}

func TestOrderByMultipleKeys(t *testing.T) {
	c := openTestDB(t)
	rows := mustQuery(t, c, `SELECT id FROM deals WHERE months IS NOT NULL ORDER BY months DESC, id DESC`)
	want := []string{"DEAL C", "DEAL A", "DEAL B"}
	for i, w := range want {
		if rows.Data[i][0] != w {
			t.Fatalf("order = %v", rows.Data)
		}
	}
}

func TestLimitOffset(t *testing.T) {
	c := openTestDB(t)
	rows := mustQuery(t, c, `SELECT id FROM deals ORDER BY id LIMIT 2`)
	if rows.Len() != 2 || rows.Data[0][0] != "DEAL A" {
		t.Fatalf("rows = %v", rows.Data)
	}
	rows = mustQuery(t, c, `SELECT id FROM deals ORDER BY id LIMIT 2 OFFSET 3`)
	if rows.Len() != 1 || rows.Data[0][0] != "DEAL D" {
		t.Fatalf("rows = %v", rows.Data)
	}
	rows = mustQuery(t, c, `SELECT id FROM deals ORDER BY id LIMIT 10 OFFSET 99`)
	if rows.Len() != 0 {
		t.Fatalf("rows = %v", rows.Data)
	}
}

func TestAggregates(t *testing.T) {
	c := openTestDB(t)
	row, err := c.QueryOne(`SELECT COUNT(*), COUNT(tcv), SUM(months), MIN(tcv), MAX(tcv), AVG(tcv) FROM deals`)
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != int64(4) || row[1] != int64(3) {
		t.Fatalf("counts = %v", row)
	}
	if row[2] != int64(156) {
		t.Fatalf("sum = %v", row[2])
	}
	if row[3] != 55.0 || row[4] != 120.5 {
		t.Fatalf("min/max = %v %v", row[3], row[4])
	}
	avg := row[5].(float64)
	if avg < 83.4 || avg > 83.6 {
		t.Fatalf("avg = %v", avg)
	}
}

func TestAggregateEmptyTable(t *testing.T) {
	c := openTestDB(t)
	mustExec(t, c, `DELETE FROM people`)
	row, err := c.QueryOne(`SELECT COUNT(*), SUM(1), MIN(name) FROM people`)
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != int64(0) || row[1] != nil || row[2] != nil {
		t.Fatalf("row = %v", row)
	}
}

func TestGroupBy(t *testing.T) {
	c := openTestDB(t)
	rows := mustQuery(t, c, `SELECT industry, COUNT(*) AS cnt FROM deals WHERE industry IS NOT NULL GROUP BY industry ORDER BY cnt DESC, industry`)
	if rows.Len() != 2 {
		t.Fatalf("rows = %v", rows.Data)
	}
	if rows.Data[0][0] != "Insurance" || rows.Data[0][1] != int64(2) {
		t.Fatalf("rows = %v", rows.Data)
	}
	if rows.Data[1][0] != "Banking" || rows.Data[1][1] != int64(1) {
		t.Fatalf("rows = %v", rows.Data)
	}
}

func TestGroupByHaving(t *testing.T) {
	c := openTestDB(t)
	rows := mustQuery(t, c, `SELECT industry, COUNT(*) AS cnt FROM deals GROUP BY industry HAVING COUNT(*) > 1`)
	if rows.Len() != 1 || rows.Data[0][0] != "Insurance" {
		t.Fatalf("rows = %v", rows.Data)
	}
}

func TestJoinInner(t *testing.T) {
	c := openTestDB(t)
	rows := mustQuery(t, c, `
		SELECT d.id, p.name FROM deals d
		JOIN people p ON d.id = p.deal_id
		WHERE p.role = 'CSE'
		ORDER BY d.id`)
	if rows.Len() != 2 {
		t.Fatalf("rows = %v", rows.Data)
	}
	if rows.Data[0][1] != "Sam White" || rows.Data[1][1] != "Lee Chan" {
		t.Fatalf("rows = %v", rows.Data)
	}
}

func TestJoinLeft(t *testing.T) {
	c := openTestDB(t)
	rows := mustQuery(t, c, `
		SELECT d.id, p.name FROM deals d
		LEFT JOIN people p ON d.id = p.deal_id
		ORDER BY d.id`)
	// DEAL A has 2 people, B 1, C 1, D none (padded) -> 5 rows.
	if rows.Len() != 5 {
		t.Fatalf("rows = %v", rows.Data)
	}
	last := rows.Data[4]
	if last[0] != "DEAL D" || last[1] != nil {
		t.Fatalf("left pad wrong: %v", last)
	}
}

func TestJoinAmbiguousColumn(t *testing.T) {
	c := openTestDB(t)
	mustExec(t, c, `CREATE TABLE other (id TEXT, note TEXT)`)
	mustExec(t, c, `INSERT INTO other VALUES ('DEAL A', 'x')`)
	_, err := c.Query(`SELECT id FROM deals d JOIN other o ON d.id = o.id`)
	if !errors.Is(err, ErrAmbiguousColumn) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownColumn(t *testing.T) {
	c := openTestDB(t)
	if _, err := c.Query(`SELECT nothere FROM deals`); !errors.Is(err, ErrUnknownColumn) {
		t.Fatalf("err = %v", err)
	}
}

func TestDistinct(t *testing.T) {
	c := openTestDB(t)
	rows := mustQuery(t, c, `SELECT DISTINCT role FROM people WHERE role IS NOT NULL ORDER BY role`)
	if rows.Len() != 3 { // CSE, PE, TSA
		t.Fatalf("rows = %v", rows.Data)
	}
}

func TestScalarFuncs(t *testing.T) {
	c := openTestDB(t)
	row, err := c.QueryOne(`SELECT UPPER(customer), LOWER(customer), LENGTH(customer), COALESCE(industry, 'n/a') FROM deals WHERE id = 'DEAL D'`)
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != "DELTA" || row[1] != "delta" || row[2] != int64(5) || row[3] != "n/a" {
		t.Fatalf("row = %v", row)
	}
}

func TestArithmeticAndConcat(t *testing.T) {
	c := openTestDB(t)
	row, err := c.QueryOne(`SELECT months / 12, months % 12, tcv * 2, id || '-' || customer FROM deals WHERE id = 'DEAL A'`)
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != int64(5) || row[1] != int64(0) || row[2] != 241.0 || row[3] != "DEAL A-Acme Bank" {
		t.Fatalf("row = %v", row)
	}
}

func TestDivisionByZero(t *testing.T) {
	c := openTestDB(t)
	if _, err := c.Query(`SELECT months / 0 FROM deals`); err == nil {
		t.Fatal("expected division-by-zero error")
	}
}

func TestUpdateConstant(t *testing.T) {
	c := openTestDB(t)
	n := mustExec(t, c, `UPDATE deals SET industry = 'Finance' WHERE industry = 'Banking'`)
	if n != 1 {
		t.Fatalf("updated %d", n)
	}
	rows := mustQuery(t, c, `SELECT id FROM deals WHERE industry = 'Finance'`)
	if rows.Len() != 1 || rows.Data[0][0] != "DEAL A" {
		t.Fatalf("rows = %v", rows.Data)
	}
}

func TestUpdateRowDependent(t *testing.T) {
	c := openTestDB(t)
	n := mustExec(t, c, `UPDATE deals SET months = months + 12 WHERE months IS NOT NULL`)
	if n != 3 {
		t.Fatalf("updated %d", n)
	}
	row, err := c.QueryOne(`SELECT months FROM deals WHERE id = 'DEAL A'`)
	if err != nil || row[0] != int64(72) {
		t.Fatalf("months = %v, %v", row, err)
	}
}

func TestUpdateWithParams(t *testing.T) {
	c := openTestDB(t)
	n := mustExec(t, c, `UPDATE deals SET customer = ? WHERE id = ?`, "Acme Global", "DEAL A")
	if n != 1 {
		t.Fatalf("updated %d", n)
	}
}

func TestDeleteWhere(t *testing.T) {
	c := openTestDB(t)
	n := mustExec(t, c, `DELETE FROM people WHERE role = 'CSE'`)
	if n != 2 {
		t.Fatalf("deleted %d", n)
	}
	rows := mustQuery(t, c, `SELECT COUNT(*) FROM people`)
	if rows.Data[0][0] != int64(2) {
		t.Fatalf("remaining = %v", rows.Data)
	}
}

func TestInsertWithColumnsAndMulti(t *testing.T) {
	c := openTestDB(t)
	n := mustExec(t, c, `INSERT INTO people (deal_id, name) VALUES ('DEAL D', 'New One'), ('DEAL D', 'New Two')`)
	if n != 2 {
		t.Fatalf("inserted %d", n)
	}
	rows := mustQuery(t, c, `SELECT name, role FROM people WHERE deal_id = 'DEAL D' ORDER BY name`)
	if rows.Len() != 2 || rows.Data[0][1] != nil {
		t.Fatalf("rows = %v", rows.Data)
	}
}

func TestInsertArityMismatch(t *testing.T) {
	c := openTestDB(t)
	if _, err := c.Exec(`INSERT INTO people (deal_id) VALUES ('x', 'y')`); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestInsertDuplicatePK(t *testing.T) {
	c := openTestDB(t)
	_, err := c.Exec(`INSERT INTO deals (id, customer) VALUES ('DEAL A', 'dup')`)
	if !errors.Is(err, relstore.ErrDuplicateKey) {
		t.Fatalf("err = %v", err)
	}
}

func TestCreateIndexAndIndexedSelect(t *testing.T) {
	c := openTestDB(t)
	mustExec(t, c, `CREATE INDEX by_role ON people (role)`)
	rows := mustQuery(t, c, `SELECT name FROM people WHERE role = 'TSA'`)
	if rows.Len() != 1 || rows.Data[0][0] != "Jo Park" {
		t.Fatalf("rows = %v", rows.Data)
	}
	// Residual predicates on top of the indexed equality must still apply.
	rows = mustQuery(t, c, `SELECT name FROM people WHERE role = 'CSE' AND name LIKE 'Sam%'`)
	if rows.Len() != 1 || rows.Data[0][0] != "Sam White" {
		t.Fatalf("rows = %v", rows.Data)
	}
}

func TestCreateUniqueIndexViolation(t *testing.T) {
	c := openTestDB(t)
	mustExec(t, c, `CREATE UNIQUE INDEX by_email ON people (email)`)
	_, err := c.Exec(`INSERT INTO people VALUES ('DEAL B', 'Other', 'PE', 'sam.white@abc.com')`)
	if !errors.Is(err, relstore.ErrDuplicateKey) {
		t.Fatalf("err = %v", err)
	}
}

func TestDropTable(t *testing.T) {
	c := openTestDB(t)
	mustExec(t, c, `DROP TABLE people`)
	if _, err := c.Query(`SELECT * FROM people`); !errors.Is(err, relstore.ErrNoTable) {
		t.Fatalf("err = %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	c := openTestDB(t)
	bad := []string{
		``,
		`SELEC id FROM deals`,
		`SELECT FROM deals`,
		`SELECT id deals`,
		`SELECT id FROM deals WHERE`,
		`SELECT id FROM deals ORDER`,
		`INSERT deals VALUES (1)`,
		`CREATE TABLE t`,
		`CREATE TABLE t (a NOPE)`,
		`SELECT id FROM deals LIMIT x`,
		`SELECT UNKNOWNFUNC(id) FROM deals`,
		`SELECT id FROM deals; SELECT id FROM deals`,
		`SELECT 'unterminated FROM deals`,
		`SELECT id FROM deals WHERE id NOT 5`,
		`SELECT COUNT() FROM deals`,
		`SELECT SUM(*) FROM deals`,
		`CREATE UNIQUE TABLE t (a INT)`,
	}
	for _, sql := range bad {
		if _, err := c.Query(sql); err == nil {
			if _, err2 := c.Exec(sql); err2 == nil {
				t.Errorf("no error for %q", sql)
			}
		}
	}
}

func TestExecRejectsSelect(t *testing.T) {
	c := openTestDB(t)
	if _, err := c.Exec(`SELECT * FROM deals`); err == nil {
		t.Fatal("Exec accepted SELECT")
	}
	if _, err := c.Query(`DELETE FROM deals`); err == nil {
		t.Fatal("Query accepted DELETE")
	}
}

func TestQueryOne(t *testing.T) {
	c := openTestDB(t)
	row, err := c.QueryOne(`SELECT customer FROM deals WHERE id = 'DEAL B'`)
	if err != nil || row[0] != "Borealis" {
		t.Fatalf("row = %v, %v", row, err)
	}
	row, err = c.QueryOne(`SELECT customer FROM deals WHERE id = 'NOPE'`)
	if err != nil || row != nil {
		t.Fatalf("row = %v, %v", row, err)
	}
	if _, err = c.QueryOne(`SELECT customer FROM deals`); err == nil {
		t.Fatal("QueryOne accepted multiple rows")
	}
}

func TestCommentsAndSemicolon(t *testing.T) {
	c := openTestDB(t)
	rows := mustQuery(t, c, "SELECT id -- the deal id\nFROM deals; ")
	if rows.Len() != 4 {
		t.Fatalf("rows = %d", rows.Len())
	}
}

func TestQuotedIdentifier(t *testing.T) {
	c := openTestDB(t)
	rows := mustQuery(t, c, `SELECT "id" FROM deals WHERE "industry" = 'Banking'`)
	if rows.Len() != 1 {
		t.Fatalf("rows = %v", rows.Data)
	}
}

func TestStringEscapes(t *testing.T) {
	c := openTestDB(t)
	mustExec(t, c, `INSERT INTO deals (id, customer) VALUES ('DEAL Q', 'O''Neil & Co')`)
	row, err := c.QueryOne(`SELECT customer FROM deals WHERE id = 'DEAL Q'`)
	if err != nil || row[0] != "O'Neil & Co" {
		t.Fatalf("row = %v, %v", row, err)
	}
}

// Property: MatchLike with a pattern equal to the string (no wildcards)
// matches exactly when strings are equal case-insensitively.
func TestMatchLikeExactProperty(t *testing.T) {
	err := quick.Check(func(s string) bool {
		if strings.ContainsAny(s, "%_") {
			return true
		}
		return MatchLike(s, s)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

// Property: '%'+s+'%' always matches any string containing s.
func TestMatchLikeContainsProperty(t *testing.T) {
	err := quick.Check(func(pre, s, post string) bool {
		if strings.ContainsAny(s, "%_") {
			return true
		}
		return MatchLike(pre+s+post, "%"+s+"%")
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

// Property: a round-trip through INSERT with params preserves values.
func TestInsertParamRoundTripProperty(t *testing.T) {
	c := Open(relstore.NewDB())
	mustExec(t, c, `CREATE TABLE kv (k TEXT PRIMARY KEY, n INT, f FLOAT, b BOOL)`)
	i := 0
	err := quick.Check(func(n int64, f float64, b bool) bool {
		k := fmt.Sprintf("k%d", i)
		i++
		if _, err := c.Exec(`INSERT INTO kv VALUES (?, ?, ?, ?)`, k, n, f, b); err != nil {
			return false
		}
		row, err := c.QueryOne(`SELECT n, f, b FROM kv WHERE k = ?`, k)
		if err != nil || row == nil {
			return false
		}
		return row[0] == n && row[1] == f && row[2] == b
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Error(err)
	}
}

// Property: COUNT(*) equals the number of inserted live rows.
func TestCountMatchesInsertsProperty(t *testing.T) {
	c := Open(relstore.NewDB())
	mustExec(t, c, `CREATE TABLE t (n INT)`)
	total := 0
	err := quick.Check(func(k uint8) bool {
		add := int(k % 7)
		for j := 0; j < add; j++ {
			if _, err := c.Exec(`INSERT INTO t VALUES (?)`, j); err != nil {
				return false
			}
		}
		total += add
		row, err := c.QueryOne(`SELECT COUNT(*) FROM t`)
		return err == nil && row[0] == int64(total)
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Error(err)
	}
}

func BenchmarkSelectIndexed(b *testing.B) {
	c := Open(relstore.NewDB())
	c.Exec(`CREATE TABLE deals (id TEXT PRIMARY KEY, industry TEXT)`)
	for i := 0; i < 10000; i++ {
		c.Exec(`INSERT INTO deals VALUES (?, ?)`, fmt.Sprintf("D%d", i), "Ind")
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Query(`SELECT industry FROM deals WHERE id = ?`, fmt.Sprintf("D%d", i%10000))
	}
}

func BenchmarkSelectScan(b *testing.B) {
	c := Open(relstore.NewDB())
	c.Exec(`CREATE TABLE deals (id TEXT PRIMARY KEY, tcv FLOAT)`)
	for i := 0; i < 5000; i++ {
		c.Exec(`INSERT INTO deals VALUES (?, ?)`, fmt.Sprintf("D%d", i), float64(i))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Query(`SELECT id FROM deals WHERE tcv > 2500 LIMIT 10`)
	}
}

func TestSortedIndexSQL(t *testing.T) {
	c := openTestDB(t)
	mustExec(t, c, `CREATE SORTED INDEX deals_by_tcv ON deals (tcv)`)
	rows := mustQuery(t, c, `SELECT id FROM deals WHERE tcv >= 60 AND tcv < 121`)
	if rows.Len() != 2 { // DEAL A (120.5), DEAL B (75.0)
		t.Fatalf("rows = %v", rows.Data)
	}
	// Range + residual predicate.
	rows = mustQuery(t, c, `SELECT id FROM deals WHERE tcv > 50 AND industry = 'Insurance' AND months = 36`)
	if rows.Len() != 1 || rows.Data[0][0] != "DEAL B" {
		t.Fatalf("rows = %v", rows.Data)
	}
	// Flipped operand order must work too.
	rows = mustQuery(t, c, `SELECT id FROM deals WHERE 100 < tcv`)
	if rows.Len() != 1 || rows.Data[0][0] != "DEAL A" {
		t.Fatalf("rows = %v", rows.Data)
	}
}

func TestSortedIndexSQLValidation(t *testing.T) {
	c := openTestDB(t)
	if _, err := c.Exec(`CREATE UNIQUE SORTED INDEX x ON deals (tcv)`); err == nil {
		t.Fatal("UNIQUE SORTED accepted")
	}
	if _, err := c.Exec(`CREATE SORTED INDEX x ON deals (tcv, months)`); err == nil {
		t.Fatal("multi-column sorted index accepted")
	}
	if _, err := c.Exec(`CREATE SORTED TABLE t (a INT)`); err == nil {
		t.Fatal("SORTED TABLE accepted")
	}
}

func TestRangePlannerEquivalence(t *testing.T) {
	// The same range query with and without a sorted index returns the
	// same rows (planner correctness).
	build := func(withIndex bool) *Conn {
		c := Open(relstore.NewDB())
		mustExec(t, c, `CREATE TABLE nums (id INT PRIMARY KEY, v FLOAT)`)
		if withIndex {
			mustExec(t, c, `CREATE SORTED INDEX nums_by_v ON nums (v)`)
		}
		for i := 0; i < 100; i++ {
			mustExec(t, c, `INSERT INTO nums VALUES (?, ?)`, i, float64((i*37)%100))
		}
		return c
	}
	a := build(false)
	b := build(true)
	q := `SELECT id FROM nums WHERE v >= 20 AND v < 60 ORDER BY id`
	ra := mustQuery(t, a, q)
	rb := mustQuery(t, b, q)
	if ra.Len() != rb.Len() || ra.Len() == 0 {
		t.Fatalf("row counts differ: %d vs %d", ra.Len(), rb.Len())
	}
	for i := range ra.Data {
		if ra.Data[i][0] != rb.Data[i][0] {
			t.Fatalf("row %d differs: %v vs %v", i, ra.Data[i], rb.Data[i])
		}
	}
}

func TestRangeNotExtractedThroughOr(t *testing.T) {
	c := openTestDB(t)
	mustExec(t, c, `CREATE SORTED INDEX deals_by_tcv ON deals (tcv)`)
	// A disjunctive WHERE must not be narrowed by the range planner.
	rows := mustQuery(t, c, `SELECT id FROM deals WHERE tcv > 100 OR industry = 'Insurance'`)
	if rows.Len() != 3 { // DEAL A by tcv; B, C by industry
		t.Fatalf("rows = %v", rows.Data)
	}
}

func TestBetween(t *testing.T) {
	c := openTestDB(t)
	rows := mustQuery(t, c, `SELECT id FROM deals WHERE tcv BETWEEN 55 AND 76 ORDER BY id`)
	if rows.Len() != 2 || rows.Data[0][0] != "DEAL B" || rows.Data[1][0] != "DEAL C" {
		t.Fatalf("rows = %v", rows.Data)
	}
	rows = mustQuery(t, c, `SELECT id FROM deals WHERE tcv NOT BETWEEN 55 AND 76`)
	if rows.Len() != 1 || rows.Data[0][0] != "DEAL A" { // NULL tcv excluded
		t.Fatalf("rows = %v", rows.Data)
	}
	// BETWEEN desugars to >=/<= so the range planner kicks in.
	mustExec(t, c, `CREATE SORTED INDEX deals_by_tcv ON deals (tcv)`)
	rows = mustQuery(t, c, `SELECT id FROM deals WHERE tcv BETWEEN 55 AND 76 ORDER BY id`)
	if rows.Len() != 2 {
		t.Fatalf("indexed rows = %v", rows.Data)
	}
	if _, err := c.Query(`SELECT id FROM deals WHERE tcv BETWEEN 55`); err == nil {
		t.Fatal("half a BETWEEN accepted")
	}
}
