package sqlx

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relstore"
)

// Conn executes SQL text against a relstore database. It is stateless and
// safe for concurrent use.
type Conn struct {
	db *relstore.DB
}

// Open wraps a relstore database with the SQL interface.
func Open(db *relstore.DB) *Conn { return &Conn{db: db} }

// DB returns the underlying engine, for callers that mix SQL with direct
// engine access (the EIL synopsis store does).
func (c *Conn) DB() *relstore.DB { return c.db }

// Rows is a fully materialized result set.
type Rows struct {
	Columns []string
	Data    [][]relstore.Value
}

// Len returns the number of result rows.
func (r *Rows) Len() int { return len(r.Data) }

// Col returns the index of the named output column, or -1.
func (r *Rows) Col(name string) int {
	for i, c := range r.Columns {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// Exec runs a statement that does not return rows and reports the number of
// affected rows (rows inserted, updated, or deleted; 0 for DDL).
func (c *Conn) Exec(sqlText string, args ...relstore.Value) (int, error) {
	stmt, err := Parse(sqlText)
	if err != nil {
		return 0, err
	}
	switch s := stmt.(type) {
	case *CreateTableStmt:
		return 0, c.db.CreateTable(s.Schema)
	case *CreateIndexStmt:
		if s.Sorted {
			if len(s.Columns) != 1 {
				return 0, fmt.Errorf("sqlx: SORTED INDEX takes exactly one column")
			}
			return 0, c.db.CreateSortedIndex(s.Name, s.Table, s.Columns[0])
		}
		return 0, c.db.CreateIndex(s.Name, s.Table, s.Columns, s.Unique)
	case *DropTableStmt:
		return 0, c.db.DropTable(s.Table)
	case *InsertStmt:
		return c.execInsert(s, args)
	case *UpdateStmt:
		return c.execUpdate(s, args)
	case *DeleteStmt:
		return c.execDelete(s, args)
	case *SelectStmt:
		return 0, fmt.Errorf("sqlx: use Query for SELECT")
	default:
		return 0, fmt.Errorf("sqlx: unsupported statement %T", stmt)
	}
}

// Query runs a SELECT and returns the result set.
func (c *Conn) Query(sqlText string, args ...relstore.Value) (*Rows, error) {
	stmt, err := Parse(sqlText)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqlx: Query requires SELECT, got %T", stmt)
	}
	return c.execSelect(sel, args)
}

// QueryOne runs a SELECT expected to produce at most one row; it returns
// (nil, nil) when there is no row.
func (c *Conn) QueryOne(sqlText string, args ...relstore.Value) ([]relstore.Value, error) {
	rows, err := c.Query(sqlText, args...)
	if err != nil {
		return nil, err
	}
	if rows.Len() == 0 {
		return nil, nil
	}
	if rows.Len() > 1 {
		return nil, fmt.Errorf("sqlx: QueryOne matched %d rows", rows.Len())
	}
	return rows.Data[0], nil
}

func (c *Conn) execInsert(s *InsertStmt, args []relstore.Value) (int, error) {
	schema, err := c.db.Schema(s.Table)
	if err != nil {
		return 0, err
	}
	colIdx := make([]int, 0, len(s.Columns))
	if s.Columns == nil {
		for i := range schema.Columns {
			colIdx = append(colIdx, i)
		}
	} else {
		for _, name := range s.Columns {
			ci := schema.ColumnIndex(name)
			if ci < 0 {
				return 0, fmt.Errorf("%w: %s.%s", ErrUnknownColumn, s.Table, name)
			}
			colIdx = append(colIdx, ci)
		}
	}
	e := newEnv(args)
	n := 0
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(colIdx) {
			return n, fmt.Errorf("sqlx: INSERT expects %d values, got %d", len(colIdx), len(exprRow))
		}
		row := make(relstore.Row, len(schema.Columns))
		for i, x := range exprRow {
			v, err := evalExpr(x, e)
			if err != nil {
				return n, err
			}
			row[colIdx[i]] = v
		}
		if err := c.db.Insert(s.Table, row); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// rowPred compiles a WHERE expression into a relstore predicate over a
// single table.
func (c *Conn) rowPred(table string, where Expr, args []relstore.Value) (relstore.Pred, error) {
	if where == nil {
		return nil, nil
	}
	schema, err := c.db.Schema(table)
	if err != nil {
		return nil, err
	}
	// Probe the expression once against a NULL row to surface static errors
	// (unknown columns, bad params) before mutating anything; the arithmetic
	// errors a real row could still raise exclude that row.
	probe := newEnv(args)
	probe.bind(schema.Table, schema, nil)
	if _, err := truthy(where, probe); err != nil {
		return nil, err
	}
	pred := func(r relstore.Row) bool {
		e := newEnv(args)
		e.bind(schema.Table, schema, r)
		ok, err := truthy(where, e)
		return err == nil && ok
	}
	return pred, nil
}

func (c *Conn) execUpdate(s *UpdateStmt, args []relstore.Value) (int, error) {
	pred, err := c.rowPred(s.Table, s.Where, args)
	if err != nil {
		return 0, err
	}
	schema, err := c.db.Schema(s.Table)
	if err != nil {
		return 0, err
	}
	// SET expressions may reference the old row, so Update runs per row via
	// scan+delete+insert when expressions are row-dependent; for the common
	// constant case we use the engine's bulk Update.
	constant := true
	for _, set := range s.Set {
		if !isConstExpr(set.Value) {
			constant = false
			break
		}
	}
	if constant {
		setVals := make(map[string]relstore.Value, len(s.Set))
		e := newEnv(args)
		for _, set := range s.Set {
			v, err := evalExpr(set.Value, e)
			if err != nil {
				return 0, err
			}
			setVals[set.Column] = v
		}
		return c.db.Update(s.Table, pred, setVals)
	}
	// Row-dependent SET: collect matching rows first, then apply one by one
	// keyed on full row identity.
	var matches []relstore.Row
	if err := c.db.Scan(s.Table, pred, func(r relstore.Row) bool {
		matches = append(matches, r)
		return true
	}); err != nil {
		return 0, err
	}
	n := 0
	for _, old := range matches {
		e := newEnv(args)
		e.bind(schema.Table, schema, old)
		setVals := make(map[string]relstore.Value, len(s.Set))
		for _, set := range s.Set {
			v, err := evalExpr(set.Value, e)
			if err != nil {
				return n, err
			}
			setVals[set.Column] = v
		}
		oldCopy := old
		updated, err := c.db.Update(s.Table, func(r relstore.Row) bool { return sameRow(r, oldCopy) }, setVals)
		if err != nil {
			return n, err
		}
		n += updated
	}
	return n, nil
}

func sameRow(a, b relstore.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] == nil && b[i] == nil {
			continue
		}
		if !relstore.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func isConstExpr(x Expr) bool {
	switch t := x.(type) {
	case *Literal, *Param:
		return true
	case *Unary:
		return isConstExpr(t.Expr)
	case *Binary:
		return isConstExpr(t.Left) && isConstExpr(t.Right)
	case *FuncCall:
		if aggregateFuncs[t.Name] {
			return false
		}
		for _, a := range t.Args {
			if !isConstExpr(a) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func (c *Conn) execDelete(s *DeleteStmt, args []relstore.Value) (int, error) {
	pred, err := c.rowPred(s.Table, s.Where, args)
	if err != nil {
		return 0, err
	}
	return c.db.Delete(s.Table, pred)
}

// source is one table participating in a SELECT.
type source struct {
	alias  string
	schema relstore.Schema
	rows   []relstore.Row
}

// rangeFilter is a planner-extracted range predicate on one column.
type rangeFilter struct {
	column       string
	lo, hi       relstore.Value
	loInc, hiInc bool
}

func (c *Conn) loadSource(ref TableRef, filterCols []string, filterVals []relstore.Value, rng *rangeFilter) (*source, error) {
	schema, err := c.db.Schema(ref.Table)
	if err != nil {
		return nil, err
	}
	alias := ref.Alias
	if alias == "" {
		alias = schema.Table
	}
	src := &source{alias: alias, schema: schema}
	if len(filterCols) > 0 {
		rows, err := c.db.LookupEqual(ref.Table, filterCols, filterVals)
		if err != nil {
			return nil, err
		}
		src.rows = rows
		return src, nil
	}
	if rng != nil {
		if err := c.db.ScanRange(ref.Table, rng.column, rng.lo, rng.hi, rng.loInc, rng.hiInc,
			func(r relstore.Row) bool {
				src.rows = append(src.rows, r)
				return true
			}); err != nil {
			return nil, err
		}
		return src, nil
	}
	if err := c.db.Scan(ref.Table, nil, func(r relstore.Row) bool {
		src.rows = append(src.rows, r)
		return true
	}); err != nil {
		return nil, err
	}
	return src, nil
}

// extractRangeFilter pulls conjunctive range predicates (`col < lit`,
// `col >= ?`, ...) on a single base-table column from the WHERE clause. It
// returns nil when no column carries one. The residual WHERE re-checks the
// bounds, so over- or under-extraction is safe.
func extractRangeFilter(where Expr, baseAlias string, schema relstore.Schema, args []relstore.Value) *rangeFilter {
	byCol := map[string]*rangeFilter{}
	order := []string{}
	var walk func(x Expr)
	walk = func(x Expr) {
		b, ok := x.(*Binary)
		if !ok {
			return
		}
		if b.Op == "AND" {
			walk(b.Left)
			walk(b.Right)
			return
		}
		op := b.Op
		col, cok := b.Left.(*ColumnRef)
		val := b.Right
		if !cok {
			// literal OP col: flip the operator.
			col, cok = b.Right.(*ColumnRef)
			val = b.Left
			switch op {
			case "<":
				op = ">"
			case "<=":
				op = ">="
			case ">":
				op = "<"
			case ">=":
				op = "<="
			}
		}
		if !cok {
			return
		}
		if col.Table != "" && !strings.EqualFold(col.Table, baseAlias) {
			return
		}
		if schema.ColumnIndex(col.Column) < 0 {
			return
		}
		var v relstore.Value
		switch lv := val.(type) {
		case *Literal:
			v = lv.Value
		case *Param:
			if lv.Index >= len(args) {
				return
			}
			v = normalizeParam(args[lv.Index])
		default:
			return
		}
		if v == nil {
			return
		}
		key := strings.ToLower(col.Column)
		rf := byCol[key]
		if rf == nil {
			rf = &rangeFilter{column: col.Column}
			byCol[key] = rf
			order = append(order, key)
		}
		switch op {
		case "<":
			if rf.hi == nil {
				rf.hi, rf.hiInc = v, false
			}
		case "<=":
			if rf.hi == nil {
				rf.hi, rf.hiInc = v, true
			}
		case ">":
			if rf.lo == nil {
				rf.lo, rf.loInc = v, false
			}
		case ">=":
			if rf.lo == nil {
				rf.lo, rf.loInc = v, true
			}
		}
	}
	walk(where)
	for _, key := range order {
		rf := byCol[key]
		if rf.lo != nil || rf.hi != nil {
			return rf
		}
	}
	return nil
}

// extractEqFilters pulls `col = literal/param` conjuncts from the WHERE
// clause that bind unambiguously to the base table, so the scan can be
// replaced with an indexed lookup. Returns the filter columns/values; the
// full WHERE is still applied afterwards, so over-extraction is safe.
func extractEqFilters(where Expr, baseAlias string, schema relstore.Schema, args []relstore.Value) (cols []string, vals []relstore.Value) {
	var walk func(x Expr)
	walk = func(x Expr) {
		b, ok := x.(*Binary)
		if !ok {
			return
		}
		if b.Op == "AND" {
			walk(b.Left)
			walk(b.Right)
			return
		}
		if b.Op != "=" {
			return
		}
		col, cok := b.Left.(*ColumnRef)
		val := b.Right
		if !cok {
			col, cok = b.Right.(*ColumnRef)
			val = b.Left
		}
		if !cok {
			return
		}
		if col.Table != "" && !strings.EqualFold(col.Table, baseAlias) {
			return
		}
		if schema.ColumnIndex(col.Column) < 0 {
			return
		}
		var v relstore.Value
		switch lv := val.(type) {
		case *Literal:
			v = lv.Value
		case *Param:
			if lv.Index >= len(args) {
				return
			}
			v = normalizeParam(args[lv.Index])
		default:
			return
		}
		// Don't extract the same column twice (contradictions handled by
		// the residual WHERE).
		for _, c := range cols {
			if strings.EqualFold(c, col.Column) {
				return
			}
		}
		cols = append(cols, col.Column)
		vals = append(vals, v)
	}
	walk(where)
	return cols, vals
}

func (c *Conn) execSelect(s *SelectStmt, args []relstore.Value) (*Rows, error) {
	// Load base table, using indexed lookup when the WHERE clause pins
	// columns by equality and there are no joins complicating aliasing.
	var filterCols []string
	var filterVals []relstore.Value
	baseSchema, err := c.db.Schema(s.From.Table)
	if err != nil {
		return nil, err
	}
	baseAlias := s.From.Alias
	if baseAlias == "" {
		baseAlias = baseSchema.Table
	}
	var rng *rangeFilter
	if s.Where != nil {
		filterCols, filterVals = extractEqFilters(s.Where, baseAlias, baseSchema, args)
		if len(filterCols) == 0 {
			rng = extractRangeFilter(s.Where, baseAlias, baseSchema, args)
		}
	}
	base, err := c.loadSource(s.From, filterCols, filterVals, rng)
	if err != nil {
		return nil, err
	}
	sources := []*source{base}
	combos := make([][]relstore.Row, 0, len(base.rows))
	for _, r := range base.rows {
		combos = append(combos, []relstore.Row{r})
	}
	// Apply joins with nested loops.
	for _, j := range s.Joins {
		jsrc, err := c.loadSource(j.Table, nil, nil, nil)
		if err != nil {
			return nil, err
		}
		sources = append(sources, jsrc)
		var next [][]relstore.Row
		for _, combo := range combos {
			matched := false
			for _, jr := range jsrc.rows {
				e := newEnv(args)
				for i, src := range sources[:len(sources)-1] {
					e.bind(src.alias, src.schema, combo[i])
				}
				e.bind(jsrc.alias, jsrc.schema, jr)
				ok, err := truthy(j.On, e)
				if err != nil {
					return nil, err
				}
				if ok {
					matched = true
					row := append(append([]relstore.Row{}, combo...), jr)
					next = append(next, row)
				}
			}
			if !matched && j.Left {
				row := append(append([]relstore.Row{}, combo...), nil)
				next = append(next, row)
			}
		}
		combos = next
	}
	// Build environments and apply WHERE.
	var envs []*env
	for _, combo := range combos {
		e := newEnv(args)
		for i, src := range sources {
			e.bind(src.alias, src.schema, combo[i])
		}
		if s.Where != nil {
			ok, err := truthy(s.Where, e)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		envs = append(envs, e)
	}

	items, names := expandItems(s, sources)
	aggregated := len(s.GroupBy) > 0 || s.Having != nil
	for _, it := range items {
		if hasAggregate(it.Expr) {
			aggregated = true
		}
	}

	var out [][]relstore.Value
	if aggregated {
		out, err = projectGroups(s, items, envs, args)
	} else {
		out, err = projectRows(items, envs)
	}
	if err != nil {
		return nil, err
	}

	if s.Distinct {
		out = dedupRows(out)
	}

	if len(s.OrderBy) > 0 {
		// Row environments stay parallel to output rows only when no
		// grouping or dedup re-shaped the output.
		envsParallel := !aggregated && !s.Distinct
		if err := orderRows(s, names, out, envs, envsParallel); err != nil {
			return nil, err
		}
	}

	// LIMIT / OFFSET.
	if s.Offset > 0 {
		if s.Offset >= len(out) {
			out = nil
		} else {
			out = out[s.Offset:]
		}
	}
	if s.Limit >= 0 && len(out) > s.Limit {
		out = out[:s.Limit]
	}
	return &Rows{Columns: names, Data: out}, nil
}

// expandItems resolves the select list ('*' and aliases) into concrete
// expressions and output column names.
func expandItems(s *SelectStmt, sources []*source) ([]SelectItem, []string) {
	var items []SelectItem
	var names []string
	if s.Items == nil {
		for _, src := range sources {
			for _, col := range src.schema.Columns {
				items = append(items, SelectItem{Expr: &ColumnRef{Table: src.alias, Column: col.Name}})
				names = append(names, strings.ToLower(col.Name))
			}
		}
		return items, names
	}
	for _, it := range s.Items {
		items = append(items, it)
		switch {
		case it.Alias != "":
			names = append(names, it.Alias)
		default:
			if cr, ok := it.Expr.(*ColumnRef); ok {
				names = append(names, strings.ToLower(cr.Column))
			} else if fc, ok := it.Expr.(*FuncCall); ok {
				names = append(names, strings.ToLower(fc.Name))
			} else {
				names = append(names, fmt.Sprintf("col%d", len(names)+1))
			}
		}
	}
	return items, names
}

func projectRows(items []SelectItem, envs []*env) ([][]relstore.Value, error) {
	out := make([][]relstore.Value, 0, len(envs))
	for _, e := range envs {
		row := make([]relstore.Value, len(items))
		for i, it := range items {
			v, err := evalExpr(it.Expr, e)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		out = append(out, row)
	}
	return out, nil
}

func projectGroups(s *SelectStmt, items []SelectItem, envs []*env, args []relstore.Value) ([][]relstore.Value, error) {
	type group struct {
		key  string
		rows []*env
	}
	var order []string
	groups := map[string]*group{}
	for _, e := range envs {
		var kb strings.Builder
		for _, gx := range s.GroupBy {
			v, err := evalExpr(gx, e)
			if err != nil {
				return nil, err
			}
			kb.WriteString(relstore.FormatValue(v))
			kb.WriteByte('\x1f')
		}
		k := kb.String()
		g, ok := groups[k]
		if !ok {
			g = &group{key: k}
			groups[k] = g
			order = append(order, k)
		}
		g.rows = append(g.rows, e)
	}
	// A global aggregate (no GROUP BY) over zero rows still yields one row.
	if len(s.GroupBy) == 0 && len(order) == 0 {
		groups[""] = &group{}
		order = append(order, "")
	}
	var out [][]relstore.Value
	for _, k := range order {
		g := groups[k]
		if s.Having != nil {
			v, err := evalGroupExpr(s.Having, g.rows, args)
			if err != nil {
				return nil, err
			}
			if b, ok := v.(bool); !ok || !b {
				continue
			}
		}
		row := make([]relstore.Value, len(items))
		for i, it := range items {
			v, err := evalGroupExpr(it.Expr, g.rows, args)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		out = append(out, row)
	}
	return out, nil
}

// evalGroupExpr evaluates an expression in grouped context: aggregates
// compute over the group's rows; other leaves resolve against the group's
// first row (valid for GROUP BY keys and constants).
func evalGroupExpr(x Expr, rows []*env, args []relstore.Value) (relstore.Value, error) {
	if fc, ok := x.(*FuncCall); ok && aggregateFuncs[fc.Name] {
		return evalAggregate(fc, rows)
	}
	switch t := x.(type) {
	case *Binary:
		if t.Op == "AND" || t.Op == "OR" {
			// Re-associate through scalar path with materialized operands.
			lv, err := evalGroupExpr(t.Left, rows, args)
			if err != nil {
				return nil, err
			}
			rv, err := evalGroupExpr(t.Right, rows, args)
			if err != nil {
				return nil, err
			}
			lb, _ := lv.(bool)
			rb, _ := rv.(bool)
			if t.Op == "AND" {
				return lb && rb, nil
			}
			return lb || rb, nil
		}
		lv, err := evalGroupExpr(t.Left, rows, args)
		if err != nil {
			return nil, err
		}
		rv, err := evalGroupExpr(t.Right, rows, args)
		if err != nil {
			return nil, err
		}
		return evalBinary(&Binary{Op: t.Op, Left: &Literal{Value: lv}, Right: &Literal{Value: rv}}, newEnv(args))
	case *Unary:
		v, err := evalGroupExpr(t.Expr, rows, args)
		if err != nil {
			return nil, err
		}
		return evalUnary(&Unary{Op: t.Op, Expr: &Literal{Value: v}}, newEnv(args))
	case *IsNull:
		v, err := evalGroupExpr(t.Expr, rows, args)
		if err != nil {
			return nil, err
		}
		return (v == nil) != t.Negate, nil
	default:
		if len(rows) > 0 {
			return evalExpr(x, rows[0])
		}
		return evalExpr(x, newEnv(args))
	}
}

func evalAggregate(fc *FuncCall, rows []*env) (relstore.Value, error) {
	if fc.Star {
		if fc.Name != "COUNT" {
			return nil, fmt.Errorf("sqlx: %s(*) is invalid", fc.Name)
		}
		return int64(len(rows)), nil
	}
	if len(fc.Args) != 1 {
		return nil, fmt.Errorf("sqlx: %s takes one argument", fc.Name)
	}
	var vals []relstore.Value
	for _, e := range rows {
		v, err := evalExpr(fc.Args[0], e)
		if err != nil {
			return nil, err
		}
		if v != nil {
			vals = append(vals, v)
		}
	}
	switch fc.Name {
	case "COUNT":
		return int64(len(vals)), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return nil, nil
		}
		sum := 0.0
		allInt := true
		for _, v := range vals {
			f, err := asFloat(v)
			if err != nil {
				return nil, err
			}
			if _, ok := v.(int64); !ok {
				allInt = false
			}
			sum += f
		}
		if fc.Name == "AVG" {
			return sum / float64(len(vals)), nil
		}
		if allInt {
			return int64(sum), nil
		}
		return sum, nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return nil, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, err := relstore.Compare(v, best)
			if err != nil {
				return nil, err
			}
			if (fc.Name == "MIN" && c < 0) || (fc.Name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return nil, fmt.Errorf("sqlx: unknown aggregate %q", fc.Name)
}

func dedupRows(rows [][]relstore.Value) [][]relstore.Value {
	seen := map[string]bool{}
	out := rows[:0]
	for _, r := range rows {
		var kb strings.Builder
		for _, v := range r {
			kb.WriteString(relstore.FormatValue(v))
			kb.WriteByte('\x1f')
		}
		k := kb.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}

// orderRows sorts the projected rows in place. ORDER BY expressions that are
// bare column references matching an output column sort on that output;
// otherwise (non-aggregated queries only) they are evaluated against the row
// environments, which are kept parallel to out rows by construction.
func orderRows(s *SelectStmt, names []string, out [][]relstore.Value, envs []*env, envsParallel bool) error {
	type keyed struct {
		row  []relstore.Value
		keys []relstore.Value
	}
	outCol := func(name string) int {
		for i, n := range names {
			if strings.EqualFold(n, name) {
				return i
			}
		}
		return -1
	}
	rows := make([]keyed, len(out))
	for i := range out {
		rows[i].row = out[i]
		rows[i].keys = make([]relstore.Value, len(s.OrderBy))
		for k, ob := range s.OrderBy {
			if cr, ok := ob.Expr.(*ColumnRef); ok && cr.Table == "" {
				if ci := outCol(cr.Column); ci >= 0 {
					rows[i].keys[k] = out[i][ci]
					continue
				}
			}
			if !envsParallel {
				return fmt.Errorf("sqlx: ORDER BY here must reference output columns")
			}
			if i < len(envs) {
				v, err := evalExpr(ob.Expr, envs[i])
				if err != nil {
					return err
				}
				rows[i].keys[k] = v
			}
		}
	}
	var sortErr error
	sort.SliceStable(rows, func(a, b int) bool {
		for k, ob := range s.OrderBy {
			c, err := relstore.Compare(rows[a].keys[k], rows[b].keys[k])
			if err != nil {
				if sortErr == nil {
					sortErr = err
				}
				return false
			}
			if c == 0 {
				continue
			}
			if ob.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	for i := range rows {
		out[i] = rows[i].row
	}
	return nil
}
