// Package sqlx implements the SQL text interface over the relstore engine —
// the piece of the DB2 substitute that lets EIL's query analyzer issue
// directed synopsis queries as SQL strings. It supports the subset EIL
// needs, which is also a useful embedded-SQL core:
//
//	CREATE TABLE t (col TYPE [NOT NULL] [PRIMARY KEY], ..., PRIMARY KEY (a, b))
//	CREATE [UNIQUE] INDEX name ON t (col, ...)
//	DROP TABLE t
//	INSERT INTO t [(cols)] VALUES (...), (...)
//	SELECT exprs FROM t [[LEFT] JOIN u ON expr]... [WHERE expr]
//	    [GROUP BY exprs [HAVING expr]] [ORDER BY expr [ASC|DESC], ...]
//	    [LIMIT n [OFFSET m]]
//	UPDATE t SET col = expr, ... [WHERE expr]
//	DELETE FROM t [WHERE expr]
//
// Expressions cover comparison operators, AND/OR/NOT, LIKE, IN, IS [NOT]
// NULL, arithmetic, string concatenation (||), scalar functions (UPPER,
// LOWER, LENGTH, COALESCE), aggregates (COUNT/SUM/AVG/MIN/MAX), and `?`
// parameter placeholders.
package sqlx

import (
	"fmt"
	"strings"
)

type tokenKind int

const (
	tkEOF tokenKind = iota
	tkIdent
	tkKeyword
	tkString
	tkNumber
	tkParam  // ?
	tkSymbol // operators and punctuation
)

type token struct {
	kind tokenKind
	text string // keywords are uppercased; idents keep original case
	pos  int
}

var keywords = map[string]bool{}

func init() {
	for _, k := range []string{
		"SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "ASC",
		"DESC", "LIMIT", "OFFSET", "INSERT", "INTO", "VALUES", "UPDATE",
		"SET", "DELETE", "CREATE", "TABLE", "INDEX", "UNIQUE", "DROP",
		"PRIMARY", "KEY", "NOT", "NULL", "AND", "OR", "LIKE", "IN", "IS", "SORTED", "BETWEEN",
		"JOIN", "LEFT", "INNER", "ON", "AS", "TRUE", "FALSE", "TEXT", "INT",
		"INTEGER", "FLOAT", "REAL", "BOOL", "BOOLEAN", "DISTINCT",
	} {
		keywords[k] = true
	}
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole statement up front; parse errors then carry
// byte offsets into the original text.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tkEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '\'':
			s, err := l.lexString()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tkString, text: s, pos: start})
		case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
			l.toks = append(l.toks, token{kind: tkNumber, text: l.lexNumber(), pos: start})
		case isIdentStart(c):
			word := l.lexIdent()
			up := strings.ToUpper(word)
			if keywords[up] {
				l.toks = append(l.toks, token{kind: tkKeyword, text: up, pos: start})
			} else {
				l.toks = append(l.toks, token{kind: tkIdent, text: word, pos: start})
			}
		case c == '"':
			// Quoted identifier.
			word, err := l.lexQuotedIdent()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tkIdent, text: word, pos: start})
		case c == '?':
			l.pos++
			l.toks = append(l.toks, token{kind: tkParam, text: "?", pos: start})
		default:
			sym, err := l.lexSymbol()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tkSymbol, text: sym, pos: start})
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentByte(c byte) bool { return isIdentStart(c) || isDigit(c) }

func (l *lexer) lexString() (string, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'') // escaped quote
				l.pos += 2
				continue
			}
			l.pos++
			return b.String(), nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return "", fmt.Errorf("sqlx: unterminated string literal at offset %d", start)
}

func (l *lexer) lexQuotedIdent() (string, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			return b.String(), nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return "", fmt.Errorf("sqlx: unterminated quoted identifier at offset %d", start)
}

func (l *lexer) lexNumber() string {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isDigit(c) {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	return l.src[start:l.pos]
}

func (l *lexer) lexIdent() string {
	start := l.pos
	for l.pos < len(l.src) && isIdentByte(l.src[l.pos]) {
		l.pos++
	}
	return l.src[start:l.pos]
}

var twoByteSymbols = map[string]bool{
	"<=": true, ">=": true, "<>": true, "!=": true, "||": true,
}

func (l *lexer) lexSymbol() (string, error) {
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		if twoByteSymbols[two] {
			l.pos += 2
			return two, nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '=', '<', '>', '+', '-', '*', '/', '%', '.', ';':
		l.pos++
		return string(c), nil
	}
	return "", fmt.Errorf("sqlx: unexpected character %q at offset %d", c, l.pos)
}
