package annotators

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/docmodel"
)

func TestEntityCooccurrenceBasic(t *testing.T) {
	e := NewEntityCooccurrence()
	cas := analysis.NewCAS(&docmodel.Document{
		Body: "Met Jordan Keller at the site. Reach Jordan Keller at jordan.keller@ibm.com or 555-0199.",
	})
	if err := e.Process(cas); err != nil {
		t.Fatal(err)
	}
	people := cas.Select(TypePerson)
	if len(people) == 0 {
		t.Fatal("no entities found")
	}
	var best *analysis.Annotation
	for i := range people {
		if people[i].Feature("name") == "Jordan Keller" && people[i].Feature("email") != "" {
			best = &people[i]
		}
	}
	if best == nil {
		t.Fatalf("name+email not linked: %+v", people)
	}
	if best.Feature("phone") == "" {
		t.Fatalf("phone not co-occurred: %+v", best.Features)
	}
}

func TestEntityCooccurrenceUnclaimedEmail(t *testing.T) {
	e := NewEntityCooccurrence()
	cas := analysis.NewCAS(&docmodel.Document{
		Body: "contact point is pat.lowell@ibm.com for logistics",
	})
	if err := e.Process(cas); err != nil {
		t.Fatal(err)
	}
	people := cas.Select(TypePerson)
	if len(people) != 1 || people[0].Feature("name") != "Pat Lowell" {
		t.Fatalf("email-only sketch = %+v", people)
	}
}

func TestEntityCooccurrenceFalsePositives(t *testing.T) {
	// Flat-text NER hallucinates people from capitalized non-names — the
	// failure mode the paper predicts. The annotator must (realistically)
	// produce them; the CPE/ablation layers measure the damage.
	e := NewEntityCooccurrence()
	cas := analysis.NewCAS(&docmodel.Document{
		Body: "Storage Workshop Review happened. Quarterly Billing Summary attached.",
	})
	if err := e.Process(cas); err != nil {
		t.Fatal(err)
	}
	if len(cas.Select(TypePerson)) == 0 {
		t.Skip("no false positives on this text — acceptable but unexpected")
	}
}

func TestEntityCooccurrenceSkipsAcronymsAndSingles(t *testing.T) {
	e := NewEntityCooccurrence()
	cas := analysis.NewCAS(&docmodel.Document{
		Body: "TSA and CSE met with Kai. IBM confirmed.",
	})
	if err := e.Process(cas); err != nil {
		t.Fatal(err)
	}
	for _, p := range cas.Select(TypePerson) {
		name := p.Feature("name")
		if name == "TSA" || name == "CSE" || name == "Kai" || name == "IBM" {
			t.Fatalf("bad entity %q", name)
		}
	}
}

func TestFindCapitalizedRuns(t *testing.T) {
	runs := findCapitalizedRuns("Alex Mercer and Dana Pruitt joined the call", 2)
	if len(runs) != 2 {
		t.Fatalf("runs = %v", runs)
	}
	if runs := findCapitalizedRuns("the quick brown fox", 2); len(runs) != 0 {
		t.Fatalf("lowercase produced runs: %v", runs)
	}
	// Punctuation boundaries.
	runs = findCapitalizedRuns("met Blake Hale, Quinn Mercer", 2)
	if len(runs) != 2 {
		t.Fatalf("punctuated runs = %v", runs)
	}
}
