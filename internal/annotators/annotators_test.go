package annotators

import (
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/classify"
	"repro/internal/docmodel"
	"repro/internal/docparse"
	"repro/internal/taxonomy"
	"repro/internal/textproc"
)

func casFor(t *testing.T, path, content string) *analysis.CAS {
	t.Helper()
	doc, err := docparse.Parse(path, content)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	doc.DealID = "DEAL T"
	return analysis.NewCAS(doc)
}

func TestRegexAnnotator(t *testing.T) {
	r := &Regex{
		ID: "dates", Type: "date",
		Pattern: DatePattern,
	}
	cas := analysis.NewCAS(&docmodel.Document{Body: "start 2006-01-05 end 2011-01-04"})
	if err := r.Process(cas); err != nil {
		t.Fatal(err)
	}
	got := cas.Select("date")
	if len(got) != 2 {
		t.Fatalf("dates = %+v", got)
	}
	if got[0].Feature("value") != "2006-01-05" {
		t.Fatalf("value = %q", got[0].Feature("value"))
	}
	if cas.Covered(got[1]) != "2011-01-04" {
		t.Fatalf("covered = %q", cas.Covered(got[1]))
	}
}

func TestRegexNamedGroupsAndExtra(t *testing.T) {
	r := &Regex{
		ID: "emails", Type: TypePerson,
		Pattern: EmailPattern,
		Extra:   map[string]string{"channel": "body"},
	}
	cas := analysis.NewCAS(&docmodel.Document{Body: "contact sam.white@abc.com today"})
	if err := r.Process(cas); err != nil {
		t.Fatal(err)
	}
	a := cas.Select(TypePerson)[0]
	if a.Feature("local") != "sam.white" || a.Feature("orgdomain") != "abc" {
		t.Fatalf("features = %v", a.Features)
	}
	if a.Feature("channel") != "body" {
		t.Fatalf("extra feature missing: %v", a.Features)
	}
}

func TestRegexNoPattern(t *testing.T) {
	r := &Regex{ID: "broken", Type: "x"}
	if err := r.Process(analysis.NewCAS(&docmodel.Document{Body: "x"})); err == nil {
		t.Fatal("nil pattern accepted")
	}
}

func TestDocClassifier(t *testing.T) {
	model := classify.New(textproc.DefaultAnalyzer)
	model.Learn("roster", "name role email phone team members")
	model.Learn("solution", "technical solution replication architecture design")
	d := &DocClassifier{ID: "kind", Model: model}
	cas := analysis.NewCAS(&docmodel.Document{Title: "Solution", Body: "replication architecture"})
	if err := d.Process(cas); err != nil {
		t.Fatal(err)
	}
	got := cas.Select(TypeDocClass)
	if len(got) != 1 || got[0].Feature("label") != "solution" {
		t.Fatalf("class = %+v", got)
	}
	// MinPosterior suppression.
	d2 := &DocClassifier{ID: "kind", Model: model, MinPosterior: 1.1}
	cas2 := analysis.NewCAS(&docmodel.Document{Body: "replication"})
	if err := d2.Process(cas2); err != nil {
		t.Fatal(err)
	}
	if len(cas2.Select(TypeDocClass)) != 0 {
		t.Fatal("suppression threshold ignored")
	}
}

func TestScopeAnnotator(t *testing.T) {
	tax := taxonomy.Default()
	s := NewScopeAnnotator(tax)
	cas := casFor(t, "scope.deck", `# Services Scope Baseline
- End User Services including CSC coverage
- Storage Management Services for both sites
`)
	if err := s.Process(cas); err != nil {
		t.Fatal(err)
	}
	scopes := cas.Select(TypeScope)
	towers := map[string]int{}
	subs := map[string]int{}
	for _, a := range scopes {
		towers[a.Feature("tower")]++
		if st := a.Feature("subtower"); st != "" {
			subs[st]++
		}
	}
	if towers["End User Services"] < 2 { // canonical mention + CSC alias
		t.Fatalf("EUS mentions = %v", towers)
	}
	if towers["Storage Management Services"] != 1 {
		t.Fatalf("SMS mentions = %v", towers)
	}
	if subs["Customer Service Center"] != 1 {
		t.Fatalf("CSC sub = %v", subs)
	}
	// Scope-bearing doc ("Scope" in title) boosts confidence.
	for _, a := range scopes {
		if a.Confidence < 0.8 {
			t.Fatalf("boost missing: %+v", a)
		}
	}
}

func TestScopeAnnotatorWordBoundaries(t *testing.T) {
	tax := taxonomy.Default()
	s := NewScopeAnnotator(tax)
	// "EUSXYZ" and "preEUS" must not match the EUS acronym.
	cas := analysis.NewCAS(&docmodel.Document{Body: "EUSXYZ preEUS nothing here"})
	if err := s.Process(cas); err != nil {
		t.Fatal(err)
	}
	if got := cas.Select(TypeScope); len(got) != 0 {
		t.Fatalf("boundary leak: %+v", got)
	}
}

func TestSocialFromRosterGrid(t *testing.T) {
	sn := NewSocialNetworking()
	cas := casFor(t, "team.grid", `GRID Deal Team Roster
Name | Role | Email | Phone | Organization
Sam White | CIO | sam.white@abc.com | 555-0100 | ABC Corp
Jo Park | CSE | jo.park@ibm.com | |
 | TSA | lee.chan@ibm.com | |
`)
	if err := sn.Process(cas); err != nil {
		t.Fatal(err)
	}
	people := cas.Select(TypePerson)
	// The body-email pass re-sketches the same people at low confidence;
	// keep the strongest annotation per name (the CPE does the same merge).
	byName := map[string]analysis.Annotation{}
	for _, p := range people {
		name := p.Feature("name")
		if prev, ok := byName[name]; !ok || p.Confidence > prev.Confidence {
			byName[name] = p
		}
	}
	if p, ok := byName["Sam White"]; !ok || p.Feature("role") != "CIO" || p.Feature("org") != "ABC Corp" {
		t.Fatalf("Sam White = %+v", byName)
	}
	// Step 6 inference: the row with a blank name gets one from the email.
	if p, ok := byName["Lee Chan"]; !ok || p.Feature("role") != "TSA" {
		t.Fatalf("inferred person missing: %+v", people)
	}
	// Org inferred from domain when blank.
	if byName["Jo Park"].Feature("org") != "Ibm" {
		t.Fatalf("Jo Park org = %q", byName["Jo Park"].Feature("org"))
	}
}

func TestSocialFromTSAGrid(t *testing.T) {
	sn := NewSocialNetworking()
	cas := casFor(t, "tsa.grid", `GRID TSA Service Details
Service | cross tower TSA | Notes
Mainframe | | pending
Storage | Jo Park | confirmed
Network | | pending
`)
	if err := sn.Process(cas); err != nil {
		t.Fatal(err)
	}
	people := cas.Select(TypePerson)
	if len(people) != 1 {
		t.Fatalf("people = %+v (empty TSA cells must not become people)", people)
	}
	if people[0].Feature("name") != "Jo Park" || people[0].Feature("role") != "cross tower TSA" {
		t.Fatalf("tsa person = %+v", people[0])
	}
}

func TestSocialFromSlides(t *testing.T) {
	sn := NewSocialNetworking()
	cas := casFor(t, "kickoff.deck", `# Core Deal Team
- Sam White, CSE
- Jo Park - cross tower TSA
- Agenda review
---
# Unrelated Slide
- Ana Ruiz, PE
`)
	if err := sn.Process(cas); err != nil {
		t.Fatal(err)
	}
	people := cas.Select(TypePerson)
	names := map[string]string{}
	for _, p := range people {
		names[p.Feature("name")] = p.Feature("role")
	}
	if names["Sam White"] != "CSE" || names["Jo Park"] != "cross tower TSA" {
		t.Fatalf("slide people = %v", names)
	}
	if _, leaked := names["Ana Ruiz"]; leaked {
		t.Fatal("non-team slide leaked a person")
	}
}

func TestSocialFromEmailHeaders(t *testing.T) {
	sn := NewSocialNetworking()
	cas := casFor(t, "mail.eml", `From: sam.white@abc.com
To: jo.park@ibm.com, lee.chan@ibm.com
Subject: scope

Discussing the scope.
`)
	if err := sn.Process(cas); err != nil {
		t.Fatal(err)
	}
	people := cas.Select(TypePerson)
	emails := map[string]bool{}
	for _, p := range people {
		emails[p.Feature("email")] = true
	}
	for _, want := range []string{"sam.white@abc.com", "jo.park@ibm.com", "lee.chan@ibm.com"} {
		if !emails[want] {
			t.Fatalf("missing %s in %v", want, emails)
		}
	}
}

func TestSocialExclusion(t *testing.T) {
	sn := NewSocialNetworking()
	doc := &docmodel.Document{Title: "Security Documents", Body: "admin.contact@ibm.com"}
	cas := analysis.NewCAS(doc)
	if err := sn.Process(cas); err != nil {
		t.Fatal(err)
	}
	if got := cas.Select(TypePerson); len(got) != 0 {
		t.Fatalf("excluded doc annotated: %+v", got)
	}
}

func TestSocialBlobModeLosesStructure(t *testing.T) {
	content := `GRID Deal Team Roster
Name | Role | Email | Phone
Sam White | CSE | | 555-0100
`
	structured := casFor(t, "team.grid", content)
	sn := NewSocialNetworking()
	if err := sn.Process(structured); err != nil {
		t.Fatal(err)
	}
	blobDoc := docparse.ParseBlob("team.grid", content)
	blobCas := analysis.NewCAS(blobDoc)
	blob := &SocialNetworking{Blob: true}
	if err := blob.Process(blobCas); err != nil {
		t.Fatal(err)
	}
	// Structure-aware extraction finds Sam White (no email in row); blob
	// mode cannot (no address to pattern-match).
	if len(structured.Select(TypePerson)) == 0 {
		t.Fatal("structured mode found nobody")
	}
	if len(blobCas.Select(TypePerson)) != 0 {
		t.Fatalf("blob mode magically found people: %+v", blobCas.Select(TypePerson))
	}
}

func TestOverviewFacts(t *testing.T) {
	ann := NewOverviewFacts()
	cas := casFor(t, "overview.txt", `Deal Overview
Customer: Cygnus Insurance
Industry: Insurance
Out Sourcing Consultant: TPI
Geography: Americas
Country: United States
Contract Term Start: 2006-01-05
Term Duration Months: 60
Total Contract Value: 50 to 100M
Is International: Y
Unrelated: ignored
`)
	if err := ann.Process(cas); err != nil {
		t.Fatal(err)
	}
	facts := map[string]string{}
	for _, a := range cas.Select(TypeFact) {
		facts[a.Feature("key")] = a.Feature("value")
	}
	want := map[string]string{
		"customer": "Cygnus Insurance", "industry": "Insurance",
		"consultant": "TPI", "geography": "Americas", "country": "United States",
		"term_start": "2006-01-05", "term_months": "60",
		"tcv_band": "50 to 100M", "international": "Y",
	}
	for k, v := range want {
		if facts[k] != v {
			t.Errorf("fact %s = %q, want %q", k, facts[k], v)
		}
	}
	if _, ok := facts["unrelated"]; ok {
		t.Error("unknown key extracted")
	}
}

func TestWinStrategy(t *testing.T) {
	ann := NewWinStrategy()
	cas := casFor(t, "win.deck", `# Win Strategy
- Price to win
- Incumbent displacement
---
# Other
- Not a strategy
`)
	if err := ann.Process(cas); err != nil {
		t.Fatal(err)
	}
	got := cas.Select(TypeWinStrategy)
	if len(got) != 2 {
		t.Fatalf("strategies = %+v", got)
	}
}

func TestWinStrategyFromNotes(t *testing.T) {
	ann := NewWinStrategy()
	cas := casFor(t, "notes.txt", "Meeting\nWin strategy: leverage client references\n")
	if err := ann.Process(cas); err != nil {
		t.Fatal(err)
	}
	got := cas.Select(TypeWinStrategy)
	if len(got) != 1 || got[0].Feature("text") != "leverage client references" {
		t.Fatalf("strategies = %+v", got)
	}
}

func TestTechSolution(t *testing.T) {
	ann := NewTechSolution(taxonomy.Default())
	cas := casFor(t, "sol.deck", `# Technical Solution Overview
## Storage Management Services
- data replication RTO lower than 48 hours
---
# Technical Solution Overview
## Not A Tower
- ignored content
`)
	if err := ann.Process(cas); err != nil {
		t.Fatal(err)
	}
	got := cas.Select(TypeTechSolution)
	if len(got) != 1 {
		t.Fatalf("solutions = %+v", got)
	}
	if got[0].Feature("tower") != "Storage Management Services" || !strings.Contains(got[0].Feature("text"), "replication") {
		t.Fatalf("solution = %+v", got[0])
	}
}

func TestClientRefs(t *testing.T) {
	ann := NewClientRefs()
	cas := casFor(t, "refs.deck", `# Client References
- Borealis rollout 2005
`)
	if err := ann.Process(cas); err != nil {
		t.Fatal(err)
	}
	if got := cas.Select(TypeClientRef); len(got) != 1 {
		t.Fatalf("refs = %+v", got)
	}
	cas2 := casFor(t, "notes.txt", "Reference: Acme migration success\n")
	if err := ann.Process(cas2); err != nil {
		t.Fatal(err)
	}
	if got := cas2.Select(TypeClientRef); len(got) != 1 {
		t.Fatalf("line refs = %+v", got)
	}
}

func TestNormalizeRole(t *testing.T) {
	cases := []struct {
		raw, org, category string
	}{
		{"CSE", "", CategoryCoreTeam},
		{"Sr. Client Solution Executive", "", CategoryCoreTeam},
		{"cross tower TSA", "", CategoryTechTeam},
		{"TSA", "", CategoryTechTeam},
		{"PE", "", CategoryDelivery},
		{"Project Executive", "", CategoryDelivery},
		{"CIO", "ABC Corp", CategoryClient},
		{"Advisor", "TPI", CategoryThirdParty},
		{"Analyst", "TPI", CategoryThirdParty}, // org overrides
		{"Mystery Role", "", CategoryOther},
		{"", "", CategoryOther},
		{"prospect lead", "", CategoryOther}, // "pe" must not match inside a word
	}
	for _, c := range cases {
		_, cat := NormalizeRole(c.raw, c.org)
		if cat != c.category {
			t.Errorf("NormalizeRole(%q, %q) category = %q, want %q", c.raw, c.org, cat, c.category)
		}
	}
	role, _ := NormalizeRole("  Project   Executive ", "")
	if role != "Project Executive" {
		t.Errorf("role fold = %q", role)
	}
}

func TestCategoryRankOrdering(t *testing.T) {
	order := []string{CategoryCoreTeam, CategoryTechTeam, CategoryDelivery, CategoryClient, CategoryThirdParty, CategoryOther}
	for i := 1; i < len(order); i++ {
		if CategoryRank(order[i-1]) >= CategoryRank(order[i]) {
			t.Fatalf("rank order broken at %s", order[i])
		}
	}
}

func TestCompositeFlow(t *testing.T) {
	flow := Composite("test-flow",
		&Regex{ID: "r", Type: "date", Pattern: regexp.MustCompile(`\d{4}`)},
		&Heuristic{ID: "h", Fn: func(cas *analysis.CAS) error {
			if len(cas.Select("date")) > 0 {
				cas.Add(analysis.Annotation{Type: "has-date", Begin: -1, End: -1})
			}
			return nil
		}},
	)
	cas := analysis.NewCAS(&docmodel.Document{Body: "year 2006"})
	if err := flow.Process(cas); err != nil {
		t.Fatal(err)
	}
	// The composite captures data flow: the heuristic saw the regex output.
	if len(cas.Select("has-date")) != 1 {
		t.Fatal("data flow between primitives broken")
	}
}
