// Package annotators implements EIL's annotator library: the four primitive
// annotator types of the paper's Table 1 (regular-expression-based,
// heuristics-based, ontology-based, classifier-based) plus their composite
// assembly, and the domain annotators built from them — the social
// networking annotator of Figure 3, the services-scope annotator, and the
// win-strategy / technology-solution / contract-facts extractors. The
// collection-level half (§3.4's Collection Processing Engines) lives in
// cpe.go.
package annotators

import (
	"fmt"
	"regexp"

	"repro/internal/analysis"
	"repro/internal/classify"
)

// Annotation types produced by this package.
const (
	TypeScope        = "scope"        // services in scope: tower/subtower
	TypePerson       = "person"       // social networking: contacts
	TypeWinStrategy  = "winstrategy"  // win strategy statements
	TypeTechSolution = "techsolution" // technology solution overviews
	TypeFact         = "fact"         // overview facts: customer, industry...
	TypeClientRef    = "clientref"    // client references
	TypeDocClass     = "docclass"     // classifier-based document labels
)

// Regex is the regular-expression-based primitive (Table 1: "simple; easy
// to implement" but of "limited expressiveness"). Each match emits one span
// annotation of Type with the whole match in feature "value" and one feature
// per named capture group.
type Regex struct {
	ID      string
	Type    string
	Pattern *regexp.Regexp
	// Extra adds constant features to every match (for example the fact
	// key a pattern extracts).
	Extra map[string]string
	// Confidence for emitted annotations; 0 means 1.
	Confidence float64
}

// Name implements analysis.Annotator.
func (r *Regex) Name() string { return r.ID }

// Process implements analysis.Annotator.
func (r *Regex) Process(cas *analysis.CAS) error {
	if r.Pattern == nil {
		return fmt.Errorf("annotators: %s has no pattern", r.ID)
	}
	body := cas.Doc.Body
	names := r.Pattern.SubexpNames()
	for _, m := range r.Pattern.FindAllStringSubmatchIndex(body, -1) {
		features := map[string]string{"value": body[m[0]:m[1]]}
		for gi, gname := range names {
			if gi == 0 || gname == "" {
				continue
			}
			if m[2*gi] >= 0 {
				features[gname] = body[m[2*gi]:m[2*gi+1]]
			}
		}
		for k, v := range r.Extra {
			features[k] = v
		}
		cas.Add(analysis.Annotation{
			Type: r.Type, Begin: m[0], End: m[1],
			Features: features, Confidence: r.Confidence, Source: r.ID,
		})
	}
	return nil
}

// Heuristic is the heuristics-based primitive: arbitrary domain logic
// ("quickly identifying relevant pieces of information" at the cost of being
// "ad-hoc; highly dependent on the data sets").
type Heuristic struct {
	ID string
	Fn func(cas *analysis.CAS) error
}

// Name implements analysis.Annotator.
func (h *Heuristic) Name() string { return h.ID }

// Process implements analysis.Annotator.
func (h *Heuristic) Process(cas *analysis.CAS) error { return h.Fn(cas) }

// DocClassifier is the classifier-based primitive: a trained text model
// labels whole documents ("capturing complex & abstract concepts", quality
// "highly dependent on the training data set"). It emits one document-level
// TypeDocClass annotation with features "label" and "posterior".
type DocClassifier struct {
	ID    string
	Model *classify.Classifier
	// MinPosterior suppresses labels below this confidence.
	MinPosterior float64
}

// Name implements analysis.Annotator.
func (d *DocClassifier) Name() string { return d.ID }

// Process implements analysis.Annotator.
func (d *DocClassifier) Process(cas *analysis.CAS) error {
	label, p, err := d.Model.Classify(cas.Doc.Title + "\n" + cas.Doc.Body)
	if err != nil {
		return fmt.Errorf("annotators: %s: %w", d.ID, err)
	}
	if p < d.MinPosterior {
		return nil
	}
	cas.Add(analysis.Annotation{
		Type: TypeDocClass, Begin: -1, End: -1,
		Features:   map[string]string{"label": label, "posterior": fmt.Sprintf("%.4f", p)},
		Confidence: p,
		Source:     d.ID,
	})
	return nil
}

// Composite assembles primitives into one flow (Table 1's composite type);
// it is a thin alias over the framework aggregate so callers can stay within
// this package's vocabulary.
func Composite(id string, steps ...analysis.Annotator) analysis.Annotator {
	return &analysis.Aggregate{ID: id, Steps: steps}
}

// Common field patterns shared by the regex annotators.
var (
	// EmailPattern matches internet email addresses, capturing local part
	// and organization domain label.
	EmailPattern = regexp.MustCompile(`(?P<local>[A-Za-z0-9._%-]+)@(?P<orgdomain>[A-Za-z0-9-]+)\.(?:[A-Za-z]{2,4})`)
	// PhonePattern matches North-American-style phone numbers as they
	// appear in rosters (555-0100, 555 0100, (914) 555-0100).
	PhonePattern = regexp.MustCompile(`(?:\(\d{3}\)\s*|\d{3}[-\s])?\d{3}[-\s]\d{4}`)
	// DatePattern matches ISO dates.
	DatePattern = regexp.MustCompile(`\d{4}-\d{2}-\d{2}`)
)

// NewEmailAnnotator returns a regex annotator emitting TypePerson sketches
// from raw email addresses found in text (step 6 of Figure 3 infers name and
// organization from the address pattern firstname.lastname@organization.com).
func NewEmailAnnotator() *Regex {
	return &Regex{ID: "email-regex", Type: TypePerson, Pattern: EmailPattern, Confidence: 0.6}
}
