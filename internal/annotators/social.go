package annotators

import (
	"strings"

	"repro/internal/analysis"
	"repro/internal/docmodel"
)

// SocialNetworking is the document-level half of the paper's Figure 3
// algorithm: it selects candidate documents (step 1), skips excluded ones
// (step 2), identifies the business activity from metadata (step 4),
// processes text and structure (step 5), and infers missing fields from
// existing ones (step 6) — emitting one TypePerson annotation per contact
// sketch. The collection-level steps (8–14: rollup, de-duplication,
// normalization, directory enrichment, database population) are the
// ContactCPE's job.
//
// Candidate selection leverages process conventions (§3.2.1): roster
// spreadsheets ("leveraging the process conventions on the title/headers and
// semi-structured format (rows and cells) ... would perform better than just
// blindly applying patterns interpreting the entire data as a blob of
// text"), TSA forms, team slides, and email headers. A free-text email
// regex pass catches the rest at low confidence.
type SocialNetworking struct {
	// ExcludeTitle drops documents whose lowercase title contains any of
	// these substrings (step 2's exclusion set E).
	ExcludeTitle []string
	// Blob disables structure-aware extraction, treating every document as
	// flat text — the degraded mode measured by the §3.3 ablation.
	Blob bool
}

// NewSocialNetworking returns the annotator with the standard exclusion set:
// boilerplate security and template documents yield junk contacts.
func NewSocialNetworking() *SocialNetworking {
	return &SocialNetworking{ExcludeTitle: []string{"security documents", "template", "boilerplate"}}
}

// Name implements analysis.Annotator.
func (s *SocialNetworking) Name() string { return "social-networking" }

// Process implements analysis.Annotator.
func (s *SocialNetworking) Process(cas *analysis.CAS) error {
	title := strings.ToLower(cas.Doc.Title)
	for _, ex := range s.ExcludeTitle {
		if strings.Contains(title, ex) {
			return nil // step 2: excluded irrespective of candidacy
		}
	}
	if !s.Blob && cas.Doc.Structure != nil {
		if g := cas.Doc.Structure.Grid; g != nil {
			s.fromGrid(cas, g)
		}
		if len(cas.Doc.Structure.Slides) > 0 {
			s.fromSlides(cas, cas.Doc.Structure.Slides)
		}
		if h := cas.Doc.Structure.Headers; h != nil {
			s.fromEmailHeaders(cas, h)
		}
	}
	// Pattern pass over the body: raw email addresses become low-confidence
	// sketches with name/org inferred from the address (step 6).
	s.fromBodyEmails(cas)
	return nil
}

// addPerson emits a contact sketch annotation if it carries at least a name
// or an email.
func addPerson(cas *analysis.CAS, begin, end int, conf float64, source string, fields map[string]string) {
	if fields["name"] == "" && fields["email"] == "" {
		return
	}
	clean := map[string]string{}
	for k, v := range fields {
		if v = foldSpaces(v); v != "" {
			clean[k] = v
		}
	}
	cas.Add(analysis.Annotation{
		Type: TypePerson, Begin: begin, End: end,
		Features: clean, Confidence: conf, Source: source,
	})
}

// fromGrid extracts contacts from roster and TSA spreadsheets using header
// conventions.
func (s *SocialNetworking) fromGrid(cas *analysis.CAS, g *docmodel.Grid) {
	nameCol := g.ColumnIndex("name")
	roleCol := g.ColumnIndex("role")
	emailCol := g.ColumnIndex("email")
	phoneCol := g.ColumnIndex("phone")
	orgCol := g.ColumnIndex("organization")
	if orgCol < 0 {
		orgCol = g.ColumnIndex("org")
	}
	if nameCol >= 0 {
		// Roster sheet: one contact per data row.
		for r := 1; r < len(g.Rows); r++ {
			fields := map[string]string{
				"name":  g.Cell(r, nameCol),
				"role":  g.Cell(r, roleCol),
				"email": g.Cell(r, emailCol),
				"phone": g.Cell(r, phoneCol),
				"org":   g.Cell(r, orgCol),
			}
			inferFromEmail(fields)
			addPerson(cas, -1, -1, 0.95, s.Name()+"/roster", fields)
		}
		return
	}
	// TSA form: a "cross tower TSA" column whose cells are usually empty.
	// Only populated cells denote a person (the keyword baseline cannot
	// tell the difference — the paper's Meta-query 3 noise source).
	tsaCol := g.ColumnIndex("cross tower tsa")
	if tsaCol < 0 {
		return
	}
	for r := 1; r < len(g.Rows); r++ {
		name := g.Cell(r, tsaCol)
		if name == "" {
			continue
		}
		fields := map[string]string{"name": name, "role": "cross tower TSA"}
		addPerson(cas, -1, -1, 0.85, s.Name()+"/tsa", fields)
	}
}

// fromSlides extracts contacts from deal-team slides: bullets shaped
// "Name, Role" or "Name - Role" under a team-titled slide.
func (s *SocialNetworking) fromSlides(cas *analysis.CAS, slides []docmodel.Slide) {
	for _, slide := range slides {
		t := strings.ToLower(slide.Title)
		if !strings.Contains(t, "team") && !strings.Contains(t, "contacts") {
			continue
		}
		for _, b := range slide.Bullets {
			name, role := splitNameRole(b)
			if name == "" {
				continue
			}
			fields := map[string]string{"name": name, "role": role}
			addPerson(cas, -1, -1, 0.8, s.Name()+"/slides", fields)
		}
	}
}

// splitNameRole splits "Sam White, CSE" / "Sam White - CSE" / "Sam White
// (CSE)" into name and role.
func splitNameRole(b string) (name, role string) {
	b = foldSpaces(b)
	for _, sep := range []string{",", " - ", "–", "("} {
		if i := strings.Index(b, sep); i > 0 {
			name = strings.TrimSpace(b[:i])
			role = strings.TrimSpace(strings.Trim(b[i+len(sep):], " ()"))
			return name, role
		}
	}
	// A bare two-or-three-word bullet is a name with no role.
	words := strings.Fields(b)
	if len(words) >= 2 && len(words) <= 3 {
		return b, ""
	}
	return "", ""
}

// fromEmailHeaders turns From/To header addresses into sketches.
func (s *SocialNetworking) fromEmailHeaders(cas *analysis.CAS, headers map[string]string) {
	for _, key := range []string{"From", "To", "Cc"} {
		for _, addr := range strings.Split(headers[key], ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" || !strings.Contains(addr, "@") {
				continue
			}
			fields := map[string]string{"email": addr}
			inferFromEmail(fields)
			conf := 0.75
			if key != "From" {
				conf = 0.65
			}
			addPerson(cas, -1, -1, conf, s.Name()+"/email-header", fields)
		}
	}
}

// fromBodyEmails scans the body for raw addresses. Most documents contain
// none, so a byte scan for '@' gates the (much costlier) regexp pass.
func (s *SocialNetworking) fromBodyEmails(cas *analysis.CAS) {
	body := cas.Doc.Body
	if !strings.Contains(body, "@") {
		return
	}
	for _, m := range EmailPattern.FindAllStringIndex(body, -1) {
		fields := map[string]string{"email": body[m[0]:m[1]]}
		inferFromEmail(fields)
		addPerson(cas, m[0], m[1], 0.6, s.Name()+"/email-body", fields)
	}
}

// inferFromEmail fills blank name and org fields from the address pattern
// firstname.lastname@organization.com — the exact inference the paper gives
// as its step 6 example. It only fills blanks; extracted fields win.
func inferFromEmail(fields map[string]string) {
	m := EmailPattern.FindStringSubmatch(fields["email"])
	if m == nil {
		return
	}
	local, orgdomain := m[1], m[2]
	if fields["name"] == "" {
		parts := strings.Split(local, ".")
		if len(parts) >= 2 {
			for i, p := range parts {
				parts[i] = titleCase(p)
			}
			fields["name"] = strings.Join(parts, " ")
		}
	}
	if fields["org"] == "" {
		fields["org"] = titleCase(orgdomain)
	}
}

func titleCase(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + strings.ToLower(s[1:])
}
