package annotators

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/directory"
	"repro/internal/docmodel"
	"repro/internal/docparse"
	"repro/internal/relstore"
	"repro/internal/synopsis"
	"repro/internal/taxonomy"
)

// buildDealDocs returns a small but complete engagement workbook for one
// deal, with the messiness the real data has: repeated scope mentions for
// true towers, a single incidental mention of an out-of-scope tower, split
// contact evidence, and an overview template.
func buildDealDocs(t *testing.T, dealID string) []*docmodel.Document {
	t.Helper()
	files := map[string]string{
		dealID + "/overview.txt": `Deal Overview
Customer: Cygnus Insurance
Industry: Insurance
Out Sourcing Consultant: TPI
Geography: Americas
Country: United States
Contract Term Start: 2006-01-05
Term Duration Months: 60
Total Contract Value: 50 to 100M
Is International: Y
Scope summary: End User Services with Customer Service Center, plus Storage Management Services.
`,
		dealID + "/scope.deck": `# Services Scope Baseline
- End User Services rollout
- Customer Service Center staffing
- Storage Management Services consolidation
`,
		dealID + "/sol.deck": `# Technical Solution Overview
## Storage Management Services
- data replication between sites with RTO under 48 hours
`,
		dealID + "/win.deck": `# Win Strategy
- Price to win
- Leverage incumbent relationships
`,
		dealID + "/team.grid": `GRID Deal Team Roster
Name | Role | Email | Phone | Organization
Sam White | CIO | sam.white@abc.com | | ABC Corp
Jo Park | CSE | jo.park@ibm.com | |
`,
		dealID + "/kickoff.deck": `# Deal Team
- Jo Park, CSE
- Lee Chan - cross tower TSA
`,
		dealID + "/mail1.eml": `From: jo.park@ibm.com
To: sam.white@abc.com
Subject: follow-up

Quick note: our Network Services colleagues said hello, unrelated to this deal.
Reference: Borealis rollout 2005
`,
	}
	var docs []*docmodel.Document
	// Stable order for deterministic rollups.
	for _, path := range []string{
		dealID + "/overview.txt", dealID + "/scope.deck", dealID + "/sol.deck",
		dealID + "/win.deck", dealID + "/team.grid", dealID + "/kickoff.deck",
		dealID + "/mail1.eml",
	} {
		doc, err := docparse.Parse(path, files[path])
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		doc.DealID = dealID
		docs = append(docs, doc)
	}
	return docs
}

func runBuilder(t *testing.T, b *Builder, docs []*docmodel.Document) {
	t.Helper()
	tax := taxonomy.Default()
	p := &analysis.Pipeline{
		Reader:    &analysis.SliceReader{Docs: docs},
		Annotator: NewEILFlow(tax),
		Consumers: []analysis.Consumer{b},
		Workers:   2,
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
}

func newDir() *directory.Directory {
	d := directory.New()
	d.Add(directory.Person{Serial: "1", Name: "Jo Park", Email: "jo.park@ibm.com", Phone: "555-0101", Org: "ITD Sales", Title: "Client Solution Executive", Active: true})
	d.Add(directory.Person{Serial: "2", Name: "Lee Chan", Email: "lee.chan@ibm.com", Phone: "555-0102", Org: "ITD Delivery", Title: "TSA", Active: false})
	return d
}

func TestBuilderEndToEnd(t *testing.T) {
	store, err := synopsis.NewStore(relstore.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(store, newDir())
	runBuilder(t, b, buildDealDocs(t, "DEAL C"))

	deal, err := store.Get("DEAL C")
	if err != nil {
		t.Fatal(err)
	}
	// Overview facts.
	if deal.Overview.Customer != "Cygnus Insurance" || deal.Overview.Industry != "Insurance" ||
		deal.Overview.Consultant != "TPI" || deal.Overview.TermMonths != 60 ||
		deal.Overview.TCVBand != "50 to 100M" || !deal.Overview.International {
		t.Fatalf("overview = %+v", deal.Overview)
	}
	if deal.Overview.Repository != "DEAL C" {
		t.Fatalf("repository = %q", deal.Overview.Repository)
	}
	// Scope CPE: EUS and SMS pass the threshold; the single incidental
	// Network Services mention in an email must not.
	towers := map[string]bool{}
	for _, tw := range deal.Towers {
		if tw.SubTower == "" {
			towers[tw.Tower] = true
		}
	}
	if !towers["End User Services"] || !towers["Storage Management Services"] {
		t.Fatalf("towers = %+v", deal.Towers)
	}
	if towers["Network Services"] {
		t.Fatalf("incidental mention promoted to scope: %+v", deal.Towers)
	}
	// Sub-tower row present for CSC.
	foundCSC := false
	for _, tw := range deal.Towers {
		if tw.SubTower == "Customer Service Center" {
			foundCSC = true
		}
	}
	if !foundCSC {
		t.Fatalf("CSC sub-tower missing: %+v", deal.Towers)
	}
	// Contacts: deduplicated (Jo Park appears in grid, slides, and email
	// headers — one record), enriched (phone from directory), normalized
	// (CSE -> core deal team), validated.
	var jo, sam, lee *synopsis.Contact
	for i := range deal.People {
		switch deal.People[i].Name {
		case "Jo Park":
			jo = &deal.People[i]
		case "Sam White":
			sam = &deal.People[i]
		case "Lee Chan":
			lee = &deal.People[i]
		}
	}
	if jo == nil || sam == nil || lee == nil {
		t.Fatalf("people = %+v", deal.People)
	}
	if jo.Phone != "555-0101" || !jo.Validated || jo.Category != CategoryCoreTeam {
		t.Fatalf("jo = %+v", *jo)
	}
	if sam.Category != CategoryClient || sam.Org != "ABC Corp" {
		t.Fatalf("sam = %+v", *sam)
	}
	if lee.Category != CategoryTechTeam {
		t.Fatalf("lee = %+v", *lee)
	}
	countJo := 0
	for _, p := range deal.People {
		if p.Name == "Jo Park" {
			countJo++
		}
	}
	if countJo != 1 {
		t.Fatalf("Jo Park duplicated %d times: %+v", countJo, deal.People)
	}
	// Win strategies, client refs, tech solutions.
	if len(deal.WinStrategies) != 2 {
		t.Fatalf("strategies = %v", deal.WinStrategies)
	}
	if len(deal.ClientRefs) != 1 || !strings.Contains(deal.ClientRefs[0], "Borealis") {
		t.Fatalf("refs = %v", deal.ClientRefs)
	}
	if !strings.Contains(deal.TechSolutions["Storage Management Services"], "replication") {
		t.Fatalf("solutions = %v", deal.TechSolutions)
	}
}

func TestBuilderWithoutDirectory(t *testing.T) {
	store, err := synopsis.NewStore(relstore.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(store, nil) // ablation: no enrichment
	runBuilder(t, b, buildDealDocs(t, "DEAL C"))
	deal, err := store.Get("DEAL C")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range deal.People {
		if p.Validated {
			t.Fatalf("validated without directory: %+v", p)
		}
		if p.Name == "Jo Park" && p.Phone != "" {
			t.Fatalf("phone appeared from nowhere: %+v", p)
		}
	}
}

func TestBuilderDropInactive(t *testing.T) {
	store, err := synopsis.NewStore(relstore.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(store, newDir())
	b.DropInactive = true
	runBuilder(t, b, buildDealDocs(t, "DEAL C"))
	deal, err := store.Get("DEAL C")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range deal.People {
		if p.Name == "Lee Chan" {
			t.Fatalf("inactive employee kept: %+v", p)
		}
	}
}

func TestBuilderThresholdSweep(t *testing.T) {
	store, err := synopsis.NewStore(relstore.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(store, nil)
	b.MinScopeWeight = 100 // absurd threshold: nothing qualifies
	runBuilder(t, b, buildDealDocs(t, "DEAL C"))
	deal, err := store.Get("DEAL C")
	if err != nil {
		t.Fatal(err)
	}
	if len(deal.Towers) != 0 {
		t.Fatalf("towers above absurd threshold: %+v", deal.Towers)
	}
}

func TestBuilderMultiDealOrder(t *testing.T) {
	store, err := synopsis.NewStore(relstore.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(store, nil)
	docs := append(buildDealDocs(t, "DEAL B"), buildDealDocs(t, "DEAL A")...)
	runBuilder(t, b, docs)
	ids := b.DealIDs()
	if len(ids) != 2 || ids[0] != "DEAL B" || ids[1] != "DEAL A" {
		t.Fatalf("deal order = %v", ids)
	}
	stored, err := store.DealIDs()
	if err != nil || len(stored) != 2 {
		t.Fatalf("stored = %v, %v", stored, err)
	}
}

func TestBuilderOrphanDocsIgnored(t *testing.T) {
	store, err := synopsis.NewStore(relstore.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(store, nil)
	doc := &docmodel.Document{Path: "stray.txt", Body: "End User Services"}
	cas := analysis.NewCAS(doc)
	if err := b.Consume(cas); err != nil {
		t.Fatal(err)
	}
	if err := b.End(); err != nil {
		t.Fatal(err)
	}
	if ids, _ := store.DealIDs(); len(ids) != 0 {
		t.Fatalf("orphan created a deal: %v", ids)
	}
}

func TestFinalizeUnknownDeal(t *testing.T) {
	b := NewBuilder(nil, nil)
	if _, err := b.Finalize("NOPE"); err == nil {
		t.Fatal("unknown deal finalized")
	}
}
