package annotators

import (
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/textproc"
)

// EntityCooccurrence is the alternative contact extractor the paper
// describes and argues against in §3.2.1: "use advanced entity analytics to
// identify names and use patterns to annotate phone numbers, emails etc.,
// and then use co-occurrence techniques to connect them up" — treating the
// whole document as flat text instead of leveraging process conventions.
// It is implemented faithfully so the comparison can be measured (see the
// entity-vs-convention ablation): capitalized-name recognition, pattern
// annotation for emails and phones, and sentence-level co-occurrence
// linking.
//
// Emitted annotations use the same TypePerson schema as SocialNetworking,
// so the downstream CPE accepts either extractor.
type EntityCooccurrence struct {
	// MinNameTokens is the minimum tokens for a name candidate (default 2).
	MinNameTokens int
}

// NewEntityCooccurrence returns the annotator with defaults.
func NewEntityCooccurrence() *EntityCooccurrence {
	return &EntityCooccurrence{MinNameTokens: 2}
}

// Name implements analysis.Annotator.
func (e *EntityCooccurrence) Name() string { return "entity-cooccurrence" }

// nameStopwords are capitalized words that start sentences or name
// organizations, not people; the flat-text recognizer has to guess.
var nameStopwords = map[string]bool{
	"the": true, "a": true, "an": true, "this": true, "that": true,
	"deal": true, "meeting": true, "client": true, "action": true,
	"services": true, "service": true, "management": true, "center": true,
	"progress": true, "subject": true, "from": true, "to": true,
	"regards": true, "thanks": true, "fyi": true, "need": true,
	// Sentence-leading verbs that otherwise glue onto names.
	"met": true, "reach": true, "contact": true, "call": true, "ask": true,
	"please": true, "see": true, "confirming": true, "discussed": true,
}

// Process implements analysis.Annotator.
func (e *EntityCooccurrence) Process(cas *analysis.CAS) error {
	minTokens := e.MinNameTokens
	if minTokens <= 0 {
		minTokens = 2
	}
	for _, sentence := range textproc.SplitSentences(cas.Doc.Body) {
		names := findCapitalizedRuns(sentence, minTokens)
		emails := EmailPattern.FindAllString(sentence, -1)
		phones := PhonePattern.FindAllString(sentence, -1)
		// Co-occurrence linking: within a sentence, pair the i-th name
		// with the i-th email/phone; leftovers stay unpaired. This is the
		// blunt instrument the paper predicts underperforms conventions.
		for i, name := range names {
			fields := map[string]string{"name": name}
			if i < len(emails) {
				fields["email"] = emails[i]
			}
			if i < len(phones) {
				fields["phone"] = phones[i]
			}
			inferFromEmail(fields)
			addPerson(cas, -1, -1, 0.5, e.Name(), fields)
		}
		// Unclaimed emails become sketches of their own.
		for i := len(names); i < len(emails); i++ {
			fields := map[string]string{"email": emails[i]}
			inferFromEmail(fields)
			addPerson(cas, -1, -1, 0.45, e.Name(), fields)
		}
	}
	return nil
}

// findCapitalizedRuns extracts runs of >= minTokens capitalized words —
// the naive named-entity recognizer.
func findCapitalizedRuns(sentence string, minTokens int) []string {
	words := strings.Fields(sentence)
	var out []string
	var run []string
	flush := func() {
		if len(run) >= minTokens {
			out = append(out, strings.Join(run, " "))
		}
		run = nil
	}
	for _, w := range words {
		trimmed := strings.Trim(w, ".,;:()[]\"'")
		if isCapitalizedWord(trimmed) && !nameStopwords[strings.ToLower(trimmed)] {
			run = append(run, trimmed)
			// Trailing punctuation ends the run: "Blake Hale, Quinn
			// Mercer" is two names, not one.
			if strings.TrimRight(w, ".,;:()[]\"'") != w {
				flush()
			}
			continue
		}
		flush()
	}
	flush()
	return dedupeStrings(out)
}

func isCapitalizedWord(w string) bool {
	if len(w) < 2 {
		return false
	}
	if w[0] < 'A' || w[0] > 'Z' {
		return false
	}
	for i := 1; i < len(w); i++ {
		c := w[i]
		if !(c >= 'a' && c <= 'z') {
			return false // all-caps acronyms and mixed tokens are not names
		}
	}
	return true
}

func dedupeStrings(in []string) []string {
	seen := map[string]bool{}
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}
