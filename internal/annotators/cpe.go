package annotators

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/directory"
	"repro/internal/synopsis"
)

// Builder is EIL's Collection Processing Engine stack (§3.4): it consumes
// every analyzed document, aggregates annotations per business activity, and
// at End() performs the collection-level reasoning — scope occurrence
// counting with a significance threshold, contact de-duplication and role
// normalization (Figure 3 steps 9–12), personnel-directory enrichment
// (step 13), overview-fact conflict resolution — and populates the synopsis
// store (step 14).
type Builder struct {
	// Store receives the finished synopses.
	Store *synopsis.Store
	// Dir, when non-nil, validates and enriches contacts (step 13). The
	// directory ablation runs with Dir = nil.
	Dir *directory.Directory
	// MinScopeWeight is the CPE threshold: a tower whose summed mention
	// confidence over the activity is below it is treated as an incidental
	// mention, not a scope. The ablation bench sweeps this.
	MinScopeWeight float64
	// DropInactive removes directory-confirmed departed employees from the
	// contact list.
	DropInactive bool

	deals map[string]*dealAcc
	order []string
}

// NewBuilder returns a Builder with the standard configuration.
func NewBuilder(store *synopsis.Store, dir *directory.Directory) *Builder {
	return &Builder{Store: store, Dir: dir, MinScopeWeight: 2.0, DropInactive: false}
}

type scopeAgg struct {
	weight float64
	docs   map[string]bool
}

type contactSketch struct {
	fields map[string]string
	conf   map[string]float64 // per-field confidence
	best   float64
}

type factVote struct {
	value string
	conf  float64
}

type dealAcc struct {
	repository string
	towers     map[string]*scopeAgg          // tower -> agg
	subTowers  map[[2]string]*scopeAgg       // (tower, subtower) -> agg
	contacts   map[string]*contactSketch     // dedup key -> merged sketch
	facts      map[string]factVote           // key -> winning vote
	strategies map[string]float64            // text -> best conf
	refs       map[string]float64            // text -> best conf
	tech       map[string]map[string]float64 // tower -> text -> conf
}

func newDealAcc() *dealAcc {
	return &dealAcc{
		towers:     map[string]*scopeAgg{},
		subTowers:  map[[2]string]*scopeAgg{},
		contacts:   map[string]*contactSketch{},
		facts:      map[string]factVote{},
		strategies: map[string]float64{},
		refs:       map[string]float64{},
		tech:       map[string]map[string]float64{},
	}
}

// Name implements analysis.Consumer.
func (b *Builder) Name() string { return "synopsis-builder" }

// Consume implements analysis.Consumer: document-order accumulation (the
// "roll-up file for collection-level processing" of Figure 3 step 8).
func (b *Builder) Consume(cas *analysis.CAS) error {
	dealID := cas.Doc.DealID
	if dealID == "" {
		return nil // orphan documents carry no business context
	}
	if b.deals == nil {
		b.deals = map[string]*dealAcc{}
	}
	acc := b.deals[dealID]
	if acc == nil {
		acc = newDealAcc()
		b.deals[dealID] = acc
		b.order = append(b.order, dealID)
	}
	if acc.repository == "" {
		if i := strings.IndexByte(cas.Doc.Path, '/'); i > 0 {
			acc.repository = cas.Doc.Path[:i]
		}
	}
	for _, a := range cas.All() {
		switch a.Type {
		case TypeScope:
			b.consumeScope(acc, cas.Doc.Path, a)
		case TypePerson:
			b.consumePerson(acc, a)
		case TypeFact:
			key, value := a.Feature("key"), a.Feature("value")
			if key == "" || value == "" {
				continue
			}
			if v, ok := acc.facts[key]; !ok || a.Confidence > v.conf {
				acc.facts[key] = factVote{value: value, conf: a.Confidence}
			}
		case TypeWinStrategy:
			if t := a.Feature("text"); t != "" && a.Confidence > acc.strategies[t] {
				acc.strategies[t] = a.Confidence
			}
		case TypeClientRef:
			if t := a.Feature("text"); t != "" && a.Confidence > acc.refs[t] {
				acc.refs[t] = a.Confidence
			}
		case TypeTechSolution:
			tower, text := a.Feature("tower"), a.Feature("text")
			if tower == "" || text == "" {
				continue
			}
			m := acc.tech[tower]
			if m == nil {
				m = map[string]float64{}
				acc.tech[tower] = m
			}
			if a.Confidence > m[text] {
				m[text] = a.Confidence
			}
		}
	}
	return nil
}

func (b *Builder) consumeScope(acc *dealAcc, docPath string, a analysis.Annotation) {
	tower := a.Feature("tower")
	if tower == "" {
		return
	}
	agg := acc.towers[tower]
	if agg == nil {
		agg = &scopeAgg{docs: map[string]bool{}}
		acc.towers[tower] = agg
	}
	agg.weight += a.Confidence
	agg.docs[docPath] = true
	if sub := a.Feature("subtower"); sub != "" {
		key := [2]string{tower, sub}
		sagg := acc.subTowers[key]
		if sagg == nil {
			sagg = &scopeAgg{docs: map[string]bool{}}
			acc.subTowers[key] = sagg
		}
		sagg.weight += a.Confidence
		sagg.docs[docPath] = true
	}
}

// contactKey de-duplicates sketches: email when present, else folded name.
func contactKey(fields map[string]string) string {
	if e := strings.ToLower(fields["email"]); e != "" {
		return "e:" + e
	}
	return "n:" + strings.ToLower(foldSpaces(fields["name"]))
}

func (b *Builder) consumePerson(acc *dealAcc, a analysis.Annotation) {
	key := contactKey(a.Features)
	if key == "e:" || key == "n:" {
		return
	}
	sk := acc.contacts[key]
	if sk == nil {
		sk = &contactSketch{fields: map[string]string{}, conf: map[string]float64{}}
		acc.contacts[key] = sk
	}
	for field, value := range a.Features {
		if value == "" {
			continue
		}
		// Conflicting values: the higher-confidence source wins (Figure 3
		// step 10's "use document information ... to determine the relative
		// priorities and assist selection between conflicting values").
		if a.Confidence > sk.conf[field] {
			sk.fields[field] = value
			sk.conf[field] = a.Confidence
		}
	}
	if a.Confidence > sk.best {
		sk.best = a.Confidence
	}
}

// End implements analysis.Consumer: finalize every deal and populate the
// store.
func (b *Builder) End() error {
	for _, dealID := range b.order {
		deal, err := b.finalize(dealID, b.deals[dealID])
		if err != nil {
			return err
		}
		if err := b.Store.Put(deal); err != nil {
			return fmt.Errorf("annotators: store %s: %w", dealID, err)
		}
	}
	return nil
}

// Finalize exposes single-deal finalization for tests and ablations without
// writing to the store.
func (b *Builder) Finalize(dealID string) (synopsis.Deal, error) {
	acc := b.deals[dealID]
	if acc == nil {
		return synopsis.Deal{}, fmt.Errorf("annotators: unknown deal %s", dealID)
	}
	return b.finalize(dealID, acc)
}

// DealIDs lists accumulated deals in first-seen order.
func (b *Builder) DealIDs() []string { return b.order }

// PutDeal finalizes one deal and writes it to the store — the incremental
// path used when new documents arrive for an already-ingested activity.
func (b *Builder) PutDeal(dealID string) error {
	deal, err := b.Finalize(dealID)
	if err != nil {
		return err
	}
	return b.Store.Put(deal)
}

// DropDeal discards a deal's accumulated state (and is a no-op for unknown
// deals). The caller removes the synopsis and index entries.
func (b *Builder) DropDeal(dealID string) {
	if _, ok := b.deals[dealID]; !ok {
		return
	}
	delete(b.deals, dealID)
	for i, id := range b.order {
		if id == dealID {
			b.order = append(b.order[:i], b.order[i+1:]...)
			break
		}
	}
}

func (b *Builder) finalize(dealID string, acc *dealAcc) (synopsis.Deal, error) {
	deal := synopsis.Deal{TechSolutions: map[string]string{}}
	deal.Overview = b.buildOverview(dealID, acc)
	deal.Towers = b.buildTowers(acc)
	deal.People = b.buildContacts(acc)
	for text := range acc.strategies {
		deal.WinStrategies = append(deal.WinStrategies, text)
	}
	sort.Strings(deal.WinStrategies)
	for text := range acc.refs {
		deal.ClientRefs = append(deal.ClientRefs, text)
	}
	sort.Strings(deal.ClientRefs)
	for tower, texts := range acc.tech {
		best, bestConf := "", -1.0
		for text, conf := range texts {
			if conf > bestConf || (conf == bestConf && text < best) {
				best, bestConf = text, conf
			}
		}
		deal.TechSolutions[tower] = best
	}
	return deal, nil
}

func (b *Builder) buildOverview(dealID string, acc *dealAcc) synopsis.Overview {
	get := func(key string) string { return acc.facts[key].value }
	months := 0
	if m := get("term_months"); m != "" {
		if n, err := strconv.Atoi(strings.Fields(m)[0]); err == nil {
			months = n
		}
	}
	intl := false
	switch strings.ToLower(get("international")) {
	case "y", "yes", "true":
		intl = true
	}
	return synopsis.Overview{
		DealID:        dealID,
		Customer:      get("customer"),
		Industry:      get("industry"),
		Consultant:    get("consultant"),
		Geography:     get("geography"),
		Country:       get("country"),
		TermStart:     get("term_start"),
		TermMonths:    months,
		TCVBand:       get("tcv_band"),
		International: intl,
		Repository:    acc.repository,
	}
}

// buildTowers applies the scope CPE: threshold on summed mention weight,
// significance normalized against the strongest tower so Figure 5's ordering
// ("the order of the services reflects the relative significance of the
// towers") is reproducible.
func (b *Builder) buildTowers(acc *dealAcc) []synopsis.TowerScope {
	maxWeight := 0.0
	for _, agg := range acc.towers {
		if agg.weight > maxWeight {
			maxWeight = agg.weight
		}
	}
	if maxWeight == 0 {
		return nil
	}
	var out []synopsis.TowerScope
	for tower, agg := range acc.towers {
		if agg.weight < b.MinScopeWeight {
			continue
		}
		out = append(out, synopsis.TowerScope{
			Tower:        tower,
			Significance: agg.weight / maxWeight,
		})
		// Sub-towers naturally accrue fewer mentions than their tower, so
		// their threshold is proportionally lower.
		subMin := b.MinScopeWeight * 0.75
		for key, sagg := range acc.subTowers {
			if key[0] != tower || sagg.weight < subMin {
				continue
			}
			out = append(out, synopsis.TowerScope{
				Tower:        tower,
				SubTower:     key[1],
				Significance: sagg.weight / maxWeight,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Significance != out[j].Significance {
			return out[i].Significance > out[j].Significance
		}
		if out[i].Tower != out[j].Tower {
			return out[i].Tower < out[j].Tower
		}
		return out[i].SubTower < out[j].SubTower
	})
	return out
}

// mergeNameSketches folds name-only sketches into email-keyed sketches of
// the same person: "there may be several entries for the same person and we
// need to merge the different fields into one single record" (Figure 3
// step 10 discussion).
func mergeNameSketches(contacts map[string]*contactSketch) {
	byName := map[string]string{} // folded name -> email-sketch key
	for key, sk := range contacts {
		if strings.HasPrefix(key, "e:") {
			if n := strings.ToLower(foldSpaces(sk.fields["name"])); n != "" {
				byName[n] = key
			}
		}
	}
	for key, sk := range contacts {
		if !strings.HasPrefix(key, "n:") {
			continue
		}
		target, ok := byName[strings.TrimPrefix(key, "n:")]
		if !ok {
			continue
		}
		dst := contacts[target]
		for field, value := range sk.fields {
			if value != "" && sk.conf[field] > dst.conf[field] {
				dst.fields[field] = value
				dst.conf[field] = sk.conf[field]
			}
		}
		delete(contacts, key)
	}
}

// buildContacts normalizes, enriches, and orders the deduplicated sketches.
func (b *Builder) buildContacts(acc *dealAcc) []synopsis.Contact {
	mergeNameSketches(acc.contacts)
	var out []synopsis.Contact
	for _, sk := range acc.contacts {
		c := synopsis.Contact{
			Name:  sk.fields["name"],
			Email: sk.fields["email"],
			Phone: sk.fields["phone"],
			Org:   sk.fields["org"],
		}
		c.Role, c.Category = NormalizeRole(sk.fields["role"], c.Org)
		if b.Dir != nil {
			var title string
			found, active := b.Dir.Enrich(c.Name, c.Email, &c.Phone, &c.Org, &title)
			if found {
				c.Validated = true
				if c.Role == "" && title != "" {
					c.Role, c.Category = NormalizeRole(title, c.Org)
				}
				if b.DropInactive && !active {
					continue
				}
			}
		}
		if c.Name == "" {
			continue // an email-only sketch that could not be named
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := CategoryRank(out[i].Category), CategoryRank(out[j].Category)
		if ri != rj {
			return ri < rj
		}
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Email < out[j].Email
	})
	return out
}
