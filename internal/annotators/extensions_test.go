package annotators

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/docmodel"
	"repro/internal/docparse"
	"repro/internal/taxonomy"
)

func gridDoc(t *testing.T, name string) *docmodel.Document {
	t.Helper()
	doc, err := docparse.Parse("d/"+name, `GRID Deal Team Roster
Name | Role | Email | Phone
Jo Park | CSE | jo.park@ibm.com |
`)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func noteDoc(title, body string) *docmodel.Document {
	return &docmodel.Document{Path: "d/" + title, Type: docmodel.TypeText, Title: title, Body: body}
}

func TestCandidateSelector(t *testing.T) {
	positive := []*docmodel.Document{
		gridDoc(t, "team1.grid"),
		gridDoc(t, "team2.grid"),
		noteDoc("Deal Team kickoff", "names and roles"),
	}
	negative := []*docmodel.Document{
		noteDoc("Quarterly forecast", "budget variance schedule"),
		noteDoc("Pricing workshop", "margin costing estimate"),
		noteDoc("Status update", "milestone timeline"),
	}
	sel := NewCandidateSelector(positive, negative)
	if !sel.Candidate(gridDoc(t, "team3.grid")) {
		t.Fatal("roster grid rejected")
	}
	if sel.Candidate(noteDoc("Quarterly forecast review", "budget schedule variance")) {
		t.Fatal("forecast note accepted as contact candidate")
	}
}

func TestCandidateSelectorWrapSkips(t *testing.T) {
	sel := NewCandidateSelector(
		[]*docmodel.Document{gridDoc(t, "a.grid")},
		[]*docmodel.Document{noteDoc("Forecast", "budget"), noteDoc("Forecast two", "budget variance")},
	)
	ran := 0
	wrapped := sel.Wrap(AnnotatorFuncNamed("probe", func(cas *analysis.CAS) error {
		ran++
		return nil
	}))
	if wrapped.Name() != "probe+candidates" {
		t.Fatalf("name = %q", wrapped.Name())
	}
	if err := wrapped.Process(analysis.NewCAS(gridDoc(t, "b.grid"))); err != nil {
		t.Fatal(err)
	}
	if err := wrapped.Process(analysis.NewCAS(noteDoc("Forecast three", "budget"))); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("inner ran %d times, want 1 (non-candidate must be skipped)", ran)
	}
}

func TestCandidateSelectorFailOpen(t *testing.T) {
	sel := &CandidateSelector{} // no model at all
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panicked: %v", r)
		}
	}()
	// Zero-value selector has a nil model; Wrap path must not be used
	// without NewCandidateSelector, but Candidate on a trained-empty model
	// must fail open.
	sel2 := NewCandidateSelector(nil, nil)
	if !sel2.Candidate(noteDoc("anything", "at all")) {
		t.Fatal("untrained selector must fail open")
	}
	_ = sel
}

func TestOntologyRefiner(t *testing.T) {
	tax := taxonomy.Default()
	ref := NewOntologyRefiner(tax)
	ref.MinCount = 2
	docs := []*docmodel.Document{
		noteDoc("n1", "Progress on Cloud Brokerage Services workstream.\nWe reviewed Cloud Brokerage Services sizing."),
		noteDoc("n2", "Cloud Brokerage Services again, and Storage Management Services (known)."),
		noteDoc("n3", "One-off mention of Quantum Telepathy Services."),
	}
	for _, d := range docs {
		if err := ref.Consume(analysis.NewCAS(d)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.End(); err != nil {
		t.Fatal(err)
	}
	cands := ref.Candidates()
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	if cands[0].Phrase != "Cloud Brokerage Services" || cands[0].Count < 3 {
		t.Fatalf("top candidate = %+v", cands[0])
	}
	for _, c := range cands {
		if c.Phrase == "Storage Management Services" {
			t.Fatal("known vocabulary suggested as new")
		}
		if c.Phrase == "Quantum Telepathy Services" {
			t.Fatal("below-floor phrase suggested")
		}
	}
}

func TestOntologyRefinerNearestHint(t *testing.T) {
	tax := taxonomy.Default()
	ref := NewOntologyRefiner(tax)
	ref.MinCount = 1
	doc := noteDoc("n", "Storage Managment Services misspelled here.")
	if err := ref.Consume(analysis.NewCAS(doc)); err != nil {
		t.Fatal(err)
	}
	cands := ref.Candidates()
	if len(cands) != 1 {
		t.Fatalf("candidates = %+v", cands)
	}
	if cands[0].Nearest != "storage management services" {
		t.Fatalf("nearest hint = %q", cands[0].Nearest)
	}
}
