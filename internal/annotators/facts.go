package annotators

import (
	"strings"

	"repro/internal/analysis"
	"repro/internal/taxonomy"
)

// factKeys maps the overview-document field labels (the pre-defined template
// each repository has for deal facts) to synopsis fact keys.
var factKeys = map[string]string{
	"customer":                "customer",
	"customer name":           "customer",
	"industry":                "industry",
	"sector":                  "industry",
	"outsourcing consultant":  "consultant",
	"out sourcing consultant": "consultant",
	"geography":               "geography",
	"country":                 "country",
	"contract term start":     "term_start",
	"term start":              "term_start",
	"term duration months":    "term_months",
	"term duration":           "term_months",
	"total contract value":    "tcv_band",
	"tcv":                     "tcv_band",
	"international":           "international",
	"is international":        "international",
}

// NewOverviewFacts returns the heuristics-based annotator that extracts
// structured deal facts from overview documents: "Key: Value" lines whose
// keys match the repository's overview template. Each hit emits a TypeFact
// annotation with features "key" and "value".
func NewOverviewFacts() *Heuristic {
	return &Heuristic{ID: "overview-facts", Fn: func(cas *analysis.CAS) error {
		offset := 0
		for _, line := range strings.Split(cas.Doc.Body, "\n") {
			lineLen := len(line)
			colon := strings.Index(line, ":")
			if colon > 0 {
				rawKey := strings.ToLower(foldSpaces(line[:colon]))
				if key, ok := factKeys[rawKey]; ok {
					value := foldSpaces(line[colon+1:])
					if value != "" {
						cas.Add(analysis.Annotation{
							Type:  TypeFact,
							Begin: offset, End: offset + lineLen,
							Features:   map[string]string{"key": key, "value": value},
							Confidence: 0.9,
							Source:     "overview-facts",
						})
					}
				}
			}
			offset += lineLen + 1
		}
		return nil
	}}
}

// NewWinStrategy returns the heuristics-based win-strategy extractor: deck
// slides titled "Win Strategy" contribute each bullet as a strategy; notes
// lines prefixed "Win strategy:" contribute the remainder.
func NewWinStrategy() *Heuristic {
	return &Heuristic{ID: "win-strategy", Fn: func(cas *analysis.CAS) error {
		if st := cas.Doc.Structure; st != nil {
			for _, slide := range st.Slides {
				if !strings.Contains(strings.ToLower(slide.Title), "win strateg") {
					continue
				}
				for _, b := range slide.Bullets {
					if b = foldSpaces(b); b != "" {
						cas.Add(analysis.Annotation{
							Type: TypeWinStrategy, Begin: -1, End: -1,
							Features:   map[string]string{"text": b},
							Confidence: 0.9,
							Source:     "win-strategy",
						})
					}
				}
			}
		}
		for _, line := range strings.Split(cas.Doc.Body, "\n") {
			lower := strings.ToLower(line)
			if idx := strings.Index(lower, "win strategy:"); idx >= 0 {
				text := foldSpaces(line[idx+len("win strategy:"):])
				if text != "" {
					cas.Add(analysis.Annotation{
						Type: TypeWinStrategy, Begin: -1, End: -1,
						Features:   map[string]string{"text": text},
						Confidence: 0.7,
						Source:     "win-strategy",
					})
				}
			}
		}
		return nil
	}}
}

// NewTechSolution returns the extractor for technology-solution overviews:
// slides whose title names a technical solution and whose subtitle resolves
// to a service tower contribute their bullets as that tower's solution
// overview (the Technology Solutions tab of Figure 6, searched directly in
// Meta-query 4).
func NewTechSolution(tax *taxonomy.Taxonomy) *Heuristic {
	return &Heuristic{ID: "tech-solution", Fn: func(cas *analysis.CAS) error {
		st := cas.Doc.Structure
		if st == nil {
			return nil
		}
		for _, slide := range st.Slides {
			title := strings.ToLower(slide.Title)
			if !strings.Contains(title, "solution") {
				continue
			}
			tower, _, ok := tax.Resolve(slide.Subtitle)
			if !ok {
				continue
			}
			text := foldSpaces(strings.Join(slide.Bullets, " "))
			if text == "" {
				continue
			}
			cas.Add(analysis.Annotation{
				Type: TypeTechSolution, Begin: -1, End: -1,
				Features:   map[string]string{"tower": tower, "text": text},
				Confidence: 0.9,
				Source:     "tech-solution",
			})
		}
		return nil
	}}
}

// NewClientRefs returns the extractor for client references: lines prefixed
// "Reference:" and bullets of slides titled "Client References".
func NewClientRefs() *Heuristic {
	return &Heuristic{ID: "client-refs", Fn: func(cas *analysis.CAS) error {
		emit := func(text string, conf float64) {
			if text = foldSpaces(text); text != "" {
				cas.Add(analysis.Annotation{
					Type: TypeClientRef, Begin: -1, End: -1,
					Features:   map[string]string{"text": text},
					Confidence: conf,
					Source:     "client-refs",
				})
			}
		}
		if st := cas.Doc.Structure; st != nil {
			for _, slide := range st.Slides {
				if strings.Contains(strings.ToLower(slide.Title), "client reference") {
					for _, b := range slide.Bullets {
						emit(b, 0.9)
					}
				}
			}
		}
		for _, line := range strings.Split(cas.Doc.Body, "\n") {
			lower := strings.ToLower(line)
			if strings.HasPrefix(lower, "reference:") {
				emit(line[len("reference:"):], 0.7)
			}
		}
		return nil
	}}
}

// NewEILFlow assembles the standard EIL document-analysis composite: scope,
// social networking, overview facts, win strategies, technology solutions,
// and client references — the Information Analysis box of the architecture
// diagram.
func NewEILFlow(tax *taxonomy.Taxonomy) analysis.Annotator {
	return Composite("eil-flow",
		NewScopeAnnotator(tax),
		NewSocialNetworking(),
		NewOverviewFacts(),
		NewWinStrategy(),
		NewTechSolution(tax),
		NewClientRefs(),
	)
}
