package annotators

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/analysis"
	"repro/internal/taxonomy"
)

// ScopeAnnotator is the ontology-based primitive instantiated with the
// IT-services taxonomy: it finds every taxonomy surface form (tower and
// sub-tower names, acronyms, aliases) mentioned in a document and emits a
// TypeScope annotation per mention with the canonical tower and sub-tower
// as features. "It leverages a simple taxonomy for performing the
// annotation" (§4.1, Meta-query 1 discussion).
//
// Document-level mentions are deliberately noisy — "just a mention of CSC in
// any document would not mean that it is a part of the engagement scope" —
// which is exactly why the collection-level ScopeCPE aggregates and
// thresholds them.
type ScopeAnnotator struct {
	Tax *taxonomy.Taxonomy
	// TitleBoost raises confidence for mentions in scope-bearing documents
	// (scope decks and overview docs), reflecting §3.3's use of structure.
	TitleBoost float64

	// The taxonomy is immutable during a pipeline run, so the resolved
	// surface-form table and its first-word index are built once and shared
	// by every Process call (the annotator runs on many worker goroutines).
	matcherOnce sync.Once
	matcher     scopeMatcher
}

// scopeForm is one taxonomy surface form prepared for matching.
type scopeForm struct {
	needle string // lowercased surface form
	tower  string
	sub    string
}

// scopeMatcher finds taxonomy mentions in a single pass over the document's
// word starts instead of one strings.Index sweep per form: each body word is
// looked up in the first-word index and only the handful of forms sharing
// that first word are verified at the site.
type scopeMatcher struct {
	forms       []scopeForm
	byFirstWord map[string][]int // first word of needle -> indices into forms
	fallback    []int            // forms whose needle does not start with a word byte
}

// buildMatcher resolves every surface form once, in AllSurfaceForms order so
// annotation emission order is unchanged.
func buildMatcher(tax *taxonomy.Taxonomy) scopeMatcher {
	m := scopeMatcher{byFirstWord: map[string][]int{}}
	for _, form := range tax.AllSurfaceForms() {
		tower, sub, ok := tax.Resolve(form)
		if !ok {
			continue
		}
		needle := strings.ToLower(form)
		if needle == "" {
			continue
		}
		idx := len(m.forms)
		m.forms = append(m.forms, scopeForm{needle: needle, tower: tower, sub: sub})
		end := 0
		for end < len(needle) && isWordByte(needle[end]) {
			end++
		}
		if end == 0 {
			m.fallback = append(m.fallback, idx)
			continue
		}
		first := needle[:end]
		m.byFirstWord[first] = append(m.byFirstWord[first], idx)
	}
	return m
}

// scopeMatch is one mention of forms[form] at [begin, end).
type scopeMatch struct {
	form       int
	begin, end int
}

// scan returns every word-bounded occurrence of every form in lower (which
// must already be lowercased), grouped by form in table order with spans
// ascending — the same order the per-form strings.Index sweep produced.
func (m *scopeMatcher) scan(lower string) []scopeMatch {
	var out []scopeMatch
	i := 0
	for i < len(lower) {
		if !isWordByte(lower[i]) {
			i++
			continue
		}
		start := i
		for i < len(lower) && isWordByte(lower[i]) {
			i++
		}
		word := lower[start:i]
		for _, idx := range m.byFirstWord[word] {
			needle := m.forms[idx].needle
			end := start + len(needle)
			if end > len(lower) || lower[start:end] != needle {
				continue
			}
			if end < len(lower) && isWordByte(lower[end]) {
				continue
			}
			out = append(out, scopeMatch{form: idx, begin: start, end: end})
		}
	}
	for _, idx := range m.fallback {
		for _, span := range findWordSpans(lower, m.forms[idx].needle) {
			out = append(out, scopeMatch{form: idx, begin: span[0], end: span[1]})
		}
	}
	// Word starts are visited in ascending order, so spans within a form are
	// already sorted; restore the grouped-by-form order of the old sweep.
	sort.SliceStable(out, func(a, b int) bool { return out[a].form < out[b].form })
	return out
}

// NewScopeAnnotator builds the annotator over the taxonomy.
func NewScopeAnnotator(tax *taxonomy.Taxonomy) *ScopeAnnotator {
	return &ScopeAnnotator{Tax: tax, TitleBoost: 0.25}
}

// Name implements analysis.Annotator.
func (s *ScopeAnnotator) Name() string { return "scope-ontology" }

// Process implements analysis.Annotator.
func (s *ScopeAnnotator) Process(cas *analysis.CAS) error {
	s.matcherOnce.Do(func() { s.matcher = buildMatcher(s.Tax) })
	body := cas.Doc.Body
	lower := strings.ToLower(body)
	inScopeDoc := isScopeBearing(cas)
	for _, match := range s.matcher.scan(lower) {
		form := &s.matcher.forms[match.form]
		conf := 0.6
		if inScopeDoc {
			conf += s.TitleBoost
		}
		features := map[string]string{
			"tower":   form.tower,
			"surface": body[match.begin:match.end],
		}
		if form.sub != "" {
			features["subtower"] = form.sub
		}
		cas.Add(analysis.Annotation{
			Type: TypeScope, Begin: match.begin, End: match.end,
			Features: features, Confidence: conf, Source: s.Name(),
		})
	}
	return nil
}

// isScopeBearing reports whether the document's title marks it as a scope
// or overview artifact, where service mentions are authoritative.
func isScopeBearing(cas *analysis.CAS) bool {
	title := strings.ToLower(cas.Doc.Title)
	return strings.Contains(title, "scope") ||
		strings.Contains(title, "overview") ||
		strings.Contains(title, "solution")
}

// findWordSpans returns the [begin, end) spans of word-bounded,
// case-insensitive occurrences of form in lower (which must already be
// lowercased).
func findWordSpans(lower, form string) [][2]int {
	needle := strings.ToLower(form)
	if needle == "" {
		return nil
	}
	var out [][2]int
	for i := 0; ; {
		j := strings.Index(lower[i:], needle)
		if j < 0 {
			break
		}
		begin := i + j
		end := begin + len(needle)
		if wordBoundary(lower, begin, end) {
			out = append(out, [2]int{begin, end})
		}
		i = begin + 1
	}
	return out
}

func wordBoundary(s string, begin, end int) bool {
	if begin > 0 && isWordByte(s[begin-1]) {
		return false
	}
	if end < len(s) && isWordByte(s[end]) {
		return false
	}
	return true
}

func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}
