package annotators

import (
	"strings"

	"repro/internal/analysis"
	"repro/internal/taxonomy"
)

// ScopeAnnotator is the ontology-based primitive instantiated with the
// IT-services taxonomy: it finds every taxonomy surface form (tower and
// sub-tower names, acronyms, aliases) mentioned in a document and emits a
// TypeScope annotation per mention with the canonical tower and sub-tower
// as features. "It leverages a simple taxonomy for performing the
// annotation" (§4.1, Meta-query 1 discussion).
//
// Document-level mentions are deliberately noisy — "just a mention of CSC in
// any document would not mean that it is a part of the engagement scope" —
// which is exactly why the collection-level ScopeCPE aggregates and
// thresholds them.
type ScopeAnnotator struct {
	Tax *taxonomy.Taxonomy
	// TitleBoost raises confidence for mentions in scope-bearing documents
	// (scope decks and overview docs), reflecting §3.3's use of structure.
	TitleBoost float64
}

// NewScopeAnnotator builds the annotator over the taxonomy.
func NewScopeAnnotator(tax *taxonomy.Taxonomy) *ScopeAnnotator {
	return &ScopeAnnotator{Tax: tax, TitleBoost: 0.25}
}

// Name implements analysis.Annotator.
func (s *ScopeAnnotator) Name() string { return "scope-ontology" }

// Process implements analysis.Annotator.
func (s *ScopeAnnotator) Process(cas *analysis.CAS) error {
	body := cas.Doc.Body
	lower := strings.ToLower(body)
	inScopeDoc := isScopeBearing(cas)
	for _, form := range s.Tax.AllSurfaceForms() {
		tower, sub, ok := s.Tax.Resolve(form)
		if !ok {
			continue
		}
		for _, span := range findWordSpans(lower, form) {
			conf := 0.6
			if inScopeDoc {
				conf += s.TitleBoost
			}
			features := map[string]string{
				"tower":   tower,
				"surface": body[span[0]:span[1]],
			}
			if sub != "" {
				features["subtower"] = sub
			}
			cas.Add(analysis.Annotation{
				Type: TypeScope, Begin: span[0], End: span[1],
				Features: features, Confidence: conf, Source: s.Name(),
			})
		}
	}
	return nil
}

// isScopeBearing reports whether the document's title marks it as a scope
// or overview artifact, where service mentions are authoritative.
func isScopeBearing(cas *analysis.CAS) bool {
	title := strings.ToLower(cas.Doc.Title)
	return strings.Contains(title, "scope") ||
		strings.Contains(title, "overview") ||
		strings.Contains(title, "solution")
}

// findWordSpans returns the [begin, end) spans of word-bounded,
// case-insensitive occurrences of form in lower (which must already be
// lowercased).
func findWordSpans(lower, form string) [][2]int {
	needle := strings.ToLower(form)
	if needle == "" {
		return nil
	}
	var out [][2]int
	for i := 0; ; {
		j := strings.Index(lower[i:], needle)
		if j < 0 {
			break
		}
		begin := i + j
		end := begin + len(needle)
		if wordBoundary(lower, begin, end) {
			out = append(out, [2]int{begin, end})
		}
		i = begin + 1
	}
	return out
}

func wordBoundary(s string, begin, end int) bool {
	if begin > 0 && isWordByte(s[begin-1]) {
		return false
	}
	if end < len(s) && isWordByte(s[end]) {
		return false
	}
	return true
}

func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}
