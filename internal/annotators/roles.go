package annotators

import (
	"strings"
)

// Contact categories of the deal synopsis People tab. The paper: "these
// categories include core deal team, technical support team, delivery team,
// client team, third party consultant, etc."
const (
	CategoryCoreTeam   = "core deal team"
	CategoryTechTeam   = "technical support team"
	CategoryDelivery   = "delivery team"
	CategoryClient     = "client team"
	CategoryThirdParty = "third party consultant"
	CategoryOther      = "other"
)

// roleCategories maps normalized role tokens to their category. Raw role
// strings from documents are folded and matched by containment so "Sr. CSE"
// and "Client Solution Executive (lead)" both normalize.
var roleCategories = []struct {
	needle   string
	category string
}{
	{"cse", CategoryCoreTeam},
	{"client solution executive", CategoryCoreTeam},
	{"engagement manager", CategoryCoreTeam},
	{"deal maker", CategoryCoreTeam},
	{"sales leader", CategoryCoreTeam},
	{"pricer", CategoryCoreTeam},
	{"cross tower tsa", CategoryTechTeam},
	{"tsa", CategoryTechTeam},
	{"technical solution architect", CategoryTechTeam},
	{"solution architect", CategoryTechTeam},
	{"architect", CategoryTechTeam},
	{"pe", CategoryDelivery},
	{"project executive", CategoryDelivery},
	{"delivery project manager", CategoryDelivery},
	{"transition manager", CategoryDelivery},
	{"cio", CategoryClient},
	{"cto", CategoryClient},
	{"cfo", CategoryClient},
	{"procurement lead", CategoryClient},
	{"sourcing consultant", CategoryThirdParty},
	{"outsourcing consultant", CategoryThirdParty},
	{"advisor", CategoryThirdParty},
}

// NormalizeRole folds a raw role string and maps it to a category. The
// normalized role (trimmed, single-spaced, original case preserved) and the
// category are returned; unknown roles map to CategoryOther. An org that is
// a known sourcing advisor forces CategoryThirdParty regardless of title.
func NormalizeRole(rawRole, org string) (role, category string) {
	role = foldSpaces(rawRole)
	lower := strings.ToLower(role)
	category = CategoryOther
	for _, rc := range roleCategories {
		if containsToken(lower, rc.needle) {
			category = rc.category
			break
		}
	}
	if isThirdPartyOrg(org) {
		category = CategoryThirdParty
	}
	return role, category
}

// isThirdPartyOrg reports whether the organization is a known sourcing
// advisor.
func isThirdPartyOrg(org string) bool {
	o := strings.ToLower(foldSpaces(org))
	switch o {
	case "tpi", "gartner", "equaterra", "everest group", "alsbridge":
		return true
	}
	return false
}

// containsToken reports whether needle occurs in s on word boundaries, so
// "pe" does not match "prospect".
func containsToken(s, needle string) bool {
	for _, span := range findWordSpans(s, needle) {
		_ = span
		return true
	}
	return false
}

func foldSpaces(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// CategoryRank orders categories for the People tab display: the core team
// leads, clients and third parties follow, unknown roles last.
func CategoryRank(category string) int {
	switch category {
	case CategoryCoreTeam:
		return 0
	case CategoryTechTeam:
		return 1
	case CategoryDelivery:
		return 2
	case CategoryClient:
		return 3
	case CategoryThirdParty:
		return 4
	default:
		return 5
	}
}
