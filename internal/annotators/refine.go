package annotators

import (
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/taxonomy"
)

// OntologyRefiner implements Table 1's suggestion for ontology-based
// annotators: "iteratively refining the ontology with the output of the
// annotator". It is a Collection Processing Engine that watches the corpus
// for capitalized service-like phrases that do NOT resolve in the taxonomy
// and, at End, ranks them as alias candidates for a curator (or a
// subsequent automated ingest) to fold back into the vocabulary.
type OntologyRefiner struct {
	Tax *taxonomy.Taxonomy
	// MinCount drops candidates seen fewer times (noise floor).
	MinCount int

	counts map[string]int
}

// serviceSuffixes mark phrases that look like service-line names.
var serviceSuffixes = []string{"services", "service", "management", "center", "recovery", "operations"}

// NewOntologyRefiner returns the CPE with a noise floor of 3.
func NewOntologyRefiner(tax *taxonomy.Taxonomy) *OntologyRefiner {
	return &OntologyRefiner{Tax: tax, MinCount: 3, counts: map[string]int{}}
}

// Name implements analysis.Consumer.
func (o *OntologyRefiner) Name() string { return "ontology-refiner" }

// Consume implements analysis.Consumer: collect unresolved service-like
// phrases.
func (o *OntologyRefiner) Consume(cas *analysis.CAS) error {
	for _, sentence := range splitLines(cas.Doc.Body) {
		for _, run := range capitalizedPhrases(sentence) {
			if !looksLikeService(run) {
				continue
			}
			if _, _, ok := o.Tax.Resolve(run); ok {
				continue // already in the ontology
			}
			o.counts[run]++
		}
	}
	return nil
}

// capitalizedPhrases finds runs of two or more capitalized words. Unlike
// the person-name finder it keeps domain words ("Services", "Management") —
// those are exactly what service-line phrases end with.
func capitalizedPhrases(sentence string) []string {
	words := strings.Fields(sentence)
	var out []string
	var run []string
	flush := func() {
		if len(run) >= 2 {
			out = append(out, strings.Join(run, " "))
		}
		run = nil
	}
	for _, w := range words {
		trimmed := strings.Trim(w, ".,;:()[]\"'")
		if isCapitalizedWord(trimmed) {
			run = append(run, trimmed)
			if strings.TrimRight(w, ".,;:()[]\"'") != w {
				flush()
			}
			continue
		}
		flush()
	}
	flush()
	return out
}

// End implements analysis.Consumer; candidates are read with Candidates.
func (o *OntologyRefiner) End() error { return nil }

// AliasCandidate is one suggested vocabulary addition.
type AliasCandidate struct {
	Phrase string
	Count  int
	// Nearest is the closest existing surface form, the curator's hint
	// for where the alias belongs.
	Nearest string
}

// Candidates returns the ranked suggestions.
func (o *OntologyRefiner) Candidates() []AliasCandidate {
	var out []AliasCandidate
	for phrase, n := range o.counts {
		if n < o.MinCount {
			continue
		}
		c := AliasCandidate{Phrase: phrase, Count: n}
		if sugg := o.Tax.Suggest(phrase, 1); len(sugg) > 0 {
			c.Nearest = sugg[0].Surface
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Phrase < out[j].Phrase
	})
	return out
}

func looksLikeService(phrase string) bool {
	lower := strings.ToLower(phrase)
	for _, suf := range serviceSuffixes {
		if strings.HasSuffix(lower, suf) {
			return true
		}
	}
	return false
}

// splitLines is a cheap sentence-ish splitter for refinement scanning;
// newline granularity is enough because service names do not span lines.
func splitLines(s string) []string {
	return strings.Split(s, "\n")
}
