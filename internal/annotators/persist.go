package annotators

import "sort"

// Builder accumulation state as exported, gob-friendly snapshot types. The
// durability layer persists this alongside the index and synopsis store so a
// restored system can keep accumulating documents into existing deals — the
// CPE's roll-up state survives a restart instead of resetting to empty.

// ScopeState is a persisted scopeAgg: summed mention weight and the set of
// contributing documents.
type ScopeState struct {
	Weight float64
	Docs   []string
}

// SubScopeState is one (tower, sub-tower) aggregation. Persisted as a slice
// rather than an array-keyed map to keep the wire format simple and ordered.
type SubScopeState struct {
	Tower    string
	SubTower string
	Weight   float64
	Docs     []string
}

// ContactState is a persisted contactSketch.
type ContactState struct {
	Fields map[string]string
	Conf   map[string]float64
	Best   float64
}

// FactState is a persisted factVote.
type FactState struct {
	Value string
	Conf  float64
}

// DealState is one deal's accumulated annotations.
type DealState struct {
	ID         string
	Repository string
	Towers     map[string]ScopeState
	SubTowers  []SubScopeState
	Contacts   map[string]ContactState
	Facts      map[string]FactState
	Strategies map[string]float64
	Refs       map[string]float64
	Tech       map[string]map[string]float64
}

// BuilderState is the full persistable accumulation state of a Builder, with
// deals in first-seen order (the order End() finalizes them in).
type BuilderState struct {
	MinScopeWeight float64
	DropInactive   bool
	Deals          []DealState
}

// State snapshots the builder's accumulation state. The snapshot is
// deterministic (sorted doc sets, ordered sub-tower slices) and deep-copied:
// mutating the builder afterwards does not alter it.
func (b *Builder) State() *BuilderState {
	st := &BuilderState{
		MinScopeWeight: b.MinScopeWeight,
		DropInactive:   b.DropInactive,
		Deals:          make([]DealState, 0, len(b.order)),
	}
	for _, dealID := range b.order {
		acc := b.deals[dealID]
		if acc == nil {
			continue
		}
		d := DealState{
			ID:         dealID,
			Repository: acc.repository,
			Towers:     make(map[string]ScopeState, len(acc.towers)),
			Contacts:   make(map[string]ContactState, len(acc.contacts)),
			Facts:      make(map[string]FactState, len(acc.facts)),
			Strategies: copyFloats(acc.strategies),
			Refs:       copyFloats(acc.refs),
			Tech:       make(map[string]map[string]float64, len(acc.tech)),
		}
		for tower, agg := range acc.towers {
			d.Towers[tower] = ScopeState{Weight: agg.weight, Docs: sortedKeys(agg.docs)}
		}
		for key, agg := range acc.subTowers {
			d.SubTowers = append(d.SubTowers, SubScopeState{
				Tower:    key[0],
				SubTower: key[1],
				Weight:   agg.weight,
				Docs:     sortedKeys(agg.docs),
			})
		}
		sort.Slice(d.SubTowers, func(i, j int) bool {
			if d.SubTowers[i].Tower != d.SubTowers[j].Tower {
				return d.SubTowers[i].Tower < d.SubTowers[j].Tower
			}
			return d.SubTowers[i].SubTower < d.SubTowers[j].SubTower
		})
		for key, sk := range acc.contacts {
			d.Contacts[key] = ContactState{
				Fields: copyStrings(sk.fields),
				Conf:   copyFloats(sk.conf),
				Best:   sk.best,
			}
		}
		for key, v := range acc.facts {
			d.Facts[key] = FactState{Value: v.value, Conf: v.conf}
		}
		for tower, texts := range acc.tech {
			d.Tech[tower] = copyFloats(texts)
		}
		st.Deals = append(st.Deals, d)
	}
	return st
}

// RestoreState replaces the builder's accumulation state with a snapshot
// previously taken by State. Configuration knobs (MinScopeWeight,
// DropInactive) are restored too, so a reloaded system finalizes deals the
// same way the original did.
func (b *Builder) RestoreState(st *BuilderState) {
	b.MinScopeWeight = st.MinScopeWeight
	b.DropInactive = st.DropInactive
	b.deals = make(map[string]*dealAcc, len(st.Deals))
	b.order = make([]string, 0, len(st.Deals))
	for _, d := range st.Deals {
		acc := newDealAcc()
		acc.repository = d.Repository
		for tower, s := range d.Towers {
			acc.towers[tower] = &scopeAgg{weight: s.Weight, docs: docSet(s.Docs)}
		}
		for _, s := range d.SubTowers {
			acc.subTowers[[2]string{s.Tower, s.SubTower}] = &scopeAgg{weight: s.Weight, docs: docSet(s.Docs)}
		}
		for key, c := range d.Contacts {
			acc.contacts[key] = &contactSketch{
				fields: copyStrings(c.Fields),
				conf:   copyFloats(c.Conf),
				best:   c.Best,
			}
		}
		for key, f := range d.Facts {
			acc.facts[key] = factVote{value: f.Value, conf: f.Conf}
		}
		for key, v := range d.Strategies {
			acc.strategies[key] = v
		}
		for key, v := range d.Refs {
			acc.refs[key] = v
		}
		for tower, texts := range d.Tech {
			acc.tech[tower] = copyFloats(texts)
		}
		b.deals[d.ID] = acc
		b.order = append(b.order, d.ID)
	}
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func docSet(docs []string) map[string]bool {
	set := make(map[string]bool, len(docs))
	for _, d := range docs {
		set[d] = true
	}
	return set
}

func copyStrings(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyFloats(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
