package annotators

import (
	"strings"

	"repro/internal/analysis"
	"repro/internal/classify"
	"repro/internal/docmodel"
	"repro/internal/textproc"
)

// CandidateSelector is the machine-learning-assisted candidate
// identification the paper lists as an improvement for the social
// networking annotator ("we could further leverage machine learning
// techniques to help us identify the candidates for the annotator in order
// to improve the quality", §3.2.1): a binary classifier predicts whether a
// document is likely to carry contact information, letting the pipeline
// skip the extraction work on documents that are not.
type CandidateSelector struct {
	model *classify.Binary
	// MinPosterior is the confidence below which the document is treated
	// as a candidate anyway (fail open: missing contacts is worse than
	// wasted work).
	MinPosterior float64
}

// NewCandidateSelector trains the selector on a labeled sample: documents
// whose analysis produced contact annotations are positives. In the EIL
// deployment the sample is the previous ingest's output; here the caller
// passes any labeled set.
func NewCandidateSelector(positive, negative []*docmodel.Document) *CandidateSelector {
	b := classify.NewBinary(textproc.DefaultAnalyzer)
	for _, d := range positive {
		b.Learn(true, candidateFeatures(d))
	}
	for _, d := range negative {
		b.Learn(false, candidateFeatures(d))
	}
	return &CandidateSelector{model: b, MinPosterior: 0.65}
}

// candidateFeatures renders the classification text for a document: title,
// type, and structural cues; the body would drown the signal.
func candidateFeatures(d *docmodel.Document) string {
	var sb strings.Builder
	sb.WriteString(d.Title)
	sb.WriteByte(' ')
	sb.WriteString(string(d.Type))
	if st := d.Structure; st != nil {
		if st.Grid != nil {
			sb.WriteString(" grid ")
			sb.WriteString(strings.Join(st.Grid.Header(), " "))
		}
		for _, s := range st.Slides {
			sb.WriteByte(' ')
			sb.WriteString(s.Title)
		}
		if st.Headers != nil {
			sb.WriteString(" email")
		}
	}
	return sb.String()
}

// Candidate predicts whether the document should go through contact
// extraction.
func (c *CandidateSelector) Candidate(d *docmodel.Document) bool {
	positive, p, err := c.model.Predict(candidateFeatures(d))
	if err != nil {
		return true // untrained model: everything is a candidate
	}
	if !positive && p >= c.MinPosterior {
		return false
	}
	return true
}

// Wrap returns an annotator that consults the selector before delegating to
// the social networking annotator; non-candidates pass through untouched.
func (c *CandidateSelector) Wrap(inner analysis.Annotator) analysis.Annotator {
	return AnnotatorFuncNamed(inner.Name()+"+candidates", func(cas *analysis.CAS) error {
		if !c.Candidate(cas.Doc) {
			return nil
		}
		return inner.Process(cas)
	})
}

// AnnotatorFuncNamed adapts a closure into a named annotator.
func AnnotatorFuncNamed(name string, fn func(*analysis.CAS) error) analysis.Annotator {
	return analysis.AnnotatorFunc{ID: name, Fn: fn}
}
