package docparse

import (
	"reflect"
	"testing"
)

// FuzzParseEmail feeds arbitrary bytes through the RFC-822-ish email parser.
// It must never panic; a successful parse must be deterministic and yield a
// document whose structure is populated (the social annotator reads the
// header map unconditionally).
func FuzzParseEmail(f *testing.F) {
	for _, seed := range []string{
		"From: Jo Park <jo@example.com>\nTo: Sam White\nSubject: storage deal\n\nSee the replication design.\n",
		"subject: lower case\r\nx-custom-header: kept\r\n\r\nbody\r\n",
		"From: a\nbroken header line\n\nbody",
		"\n\nbody only",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, content string) {
		doc, err := ParseEmail("fuzz.eml", content)
		if err != nil {
			return
		}
		if doc == nil {
			t.Fatalf("nil document without error for %q", content)
		}
		if doc.Structure == nil || doc.Structure.Headers == nil {
			t.Fatalf("parsed email lacks header structure for %q", content)
		}
		again, err := ParseEmail("fuzz.eml", content)
		if err != nil {
			t.Fatalf("accepted then rejected %q: %v", content, err)
		}
		if !reflect.DeepEqual(doc, again) {
			t.Fatalf("nondeterministic parse of %q", content)
		}
	})
}

// FuzzParseDoc drives the format-dispatching entry point with arbitrary
// paths and content, covering the deck and grid parsers as well.
func FuzzParseDoc(f *testing.F) {
	f.Add("DEAL A/sol.deck", "# Technical Solution\ndata replication between sites\n")
	f.Add("DEAL A/costs.grid", "item\tcost\nstorage\t12\n")
	f.Add("DEAL B/m.eml", "Subject: hi\n\nbody")
	f.Add("notes.txt", "free text")
	f.Add("weird.bin", "\x00\x01")
	f.Fuzz(func(t *testing.T, p, content string) {
		doc, err := Parse(p, content)
		if err == nil && doc == nil {
			t.Fatalf("nil document without error for %q", p)
		}
		// The structure-blind fallback accepts anything.
		if b := ParseBlob(p, content); b == nil {
			t.Fatalf("ParseBlob returned nil for %q", p)
		}
	})
}
