// Package docparse implements the custom, structure-preserving parsers of
// EIL's data-acquisition layer (§3.3 of the paper). Each engagement-workbook
// format parses into a docmodel.Document whose Structure keeps the cues the
// annotators exploit:
//
//	.deck  — slide presentations: '#' title, '##' subtitle, '-' bullets,
//	         '---' slide separator (the PowerPoint substitute)
//	.grid  — spreadsheets: 'GRID <name>' header, '|'-separated cells per
//	         row, first row is the header row (the Excel substitute)
//	.eml   — email messages: RFC-822-style headers, blank line, body
//	.txt   — plain notes: first line is the title
//
// Parse dispatches on file extension. ParseBlob ignores structure entirely,
// "interpreting the entire data as a blob of text" — the degraded mode the
// paper warns against and the §3.3 ablation measures.
package docparse

import (
	"fmt"
	"path"
	"strings"

	"repro/internal/docmodel"
)

// Parse parses content according to the file extension of p. The returned
// document has Path set to p; DealID is left for the crawler to assign.
func Parse(p string, content string) (*docmodel.Document, error) {
	switch strings.ToLower(path.Ext(p)) {
	case ".deck":
		return ParseDeck(p, content)
	case ".grid":
		return ParseGrid(p, content)
	case ".eml":
		return ParseEmail(p, content)
	case ".txt", ".note", "":
		return ParseText(p, content), nil
	default:
		return nil, fmt.Errorf("docparse: unsupported format %q", path.Ext(p))
	}
}

// ParseBlob parses content as undifferentiated text regardless of format —
// the structure-blind baseline. Cell and header boundaries degrade to
// whitespace.
func ParseBlob(p string, content string) *docmodel.Document {
	flat := strings.NewReplacer("|", " ", "#", " ", "---", " ").Replace(content)
	title := firstLine(flat)
	return &docmodel.Document{
		Path:  p,
		Type:  docmodel.TypeText,
		Title: title,
		Body:  flat,
	}
}

// ParseText parses a plain note; the first non-empty line is the title.
func ParseText(p, content string) *docmodel.Document {
	return &docmodel.Document{
		Path:  p,
		Type:  docmodel.TypeText,
		Title: firstLine(content),
		Body:  content,
	}
}

func firstLine(s string) string {
	for _, line := range strings.Split(s, "\n") {
		if t := strings.TrimSpace(line); t != "" {
			return t
		}
	}
	return ""
}

// ParseDeck parses a slide presentation.
func ParseDeck(p, content string) (*docmodel.Document, error) {
	doc := &docmodel.Document{Path: p, Type: docmodel.TypeDeck, Structure: &docmodel.Structure{}}
	var cur *docmodel.Slide
	flush := func() {
		if cur != nil {
			doc.Structure.Slides = append(doc.Structure.Slides, *cur)
			cur = nil
		}
	}
	ensure := func() *docmodel.Slide {
		if cur == nil {
			cur = &docmodel.Slide{}
		}
		return cur
	}
	for _, raw := range strings.Split(content, "\n") {
		line := strings.TrimSpace(raw)
		switch {
		case line == "":
			continue
		case line == "---":
			flush()
		case strings.HasPrefix(line, "## "):
			ensure().Subtitle = strings.TrimSpace(line[3:])
		case strings.HasPrefix(line, "# "):
			// A new title inside a slide starts the next slide.
			if cur != nil && cur.Title != "" {
				flush()
			}
			ensure().Title = strings.TrimSpace(line[2:])
		case strings.HasPrefix(line, "- "):
			s := ensure()
			s.Bullets = append(s.Bullets, strings.TrimSpace(line[2:]))
		default:
			s := ensure()
			s.Bullets = append(s.Bullets, line)
		}
	}
	flush()
	if len(doc.Structure.Slides) == 0 {
		return nil, fmt.Errorf("docparse: %s: deck has no slides", p)
	}
	doc.Title = doc.Structure.Slides[0].Title
	doc.Body = doc.FlatText()
	return doc, nil
}

// ParseGrid parses a spreadsheet sheet.
func ParseGrid(p, content string) (*docmodel.Document, error) {
	lines := strings.Split(content, "\n")
	grid := &docmodel.Grid{}
	started := false
	for _, raw := range lines {
		line := strings.TrimRight(raw, "\r")
		if !started {
			t := strings.TrimSpace(line)
			if t == "" {
				continue
			}
			if !strings.HasPrefix(t, "GRID") {
				return nil, fmt.Errorf("docparse: %s: grid must start with 'GRID <name>'", p)
			}
			grid.Name = strings.TrimSpace(strings.TrimPrefix(t, "GRID"))
			started = true
			continue
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		cells := strings.Split(line, "|")
		for i := range cells {
			cells[i] = strings.TrimSpace(cells[i])
		}
		grid.Rows = append(grid.Rows, cells)
	}
	if !started {
		return nil, fmt.Errorf("docparse: %s: empty grid file", p)
	}
	doc := &docmodel.Document{
		Path:      p,
		Type:      docmodel.TypeGrid,
		Title:     grid.Name,
		Structure: &docmodel.Structure{Grid: grid},
	}
	doc.Body = doc.FlatText()
	return doc, nil
}

// ParseEmail parses an email message with RFC-822-style headers.
func ParseEmail(p, content string) (*docmodel.Document, error) {
	headers := map[string]string{}
	lines := strings.Split(content, "\n")
	bodyStart := len(lines)
	for i, raw := range lines {
		line := strings.TrimRight(raw, "\r")
		if strings.TrimSpace(line) == "" {
			bodyStart = i + 1
			break
		}
		colon := strings.Index(line, ":")
		if colon <= 0 {
			return nil, fmt.Errorf("docparse: %s: malformed header line %d", p, i+1)
		}
		key := canonicalHeader(line[:colon])
		headers[key] = strings.TrimSpace(line[colon+1:])
	}
	body := strings.Join(lines[bodyStart:], "\n")
	return &docmodel.Document{
		Path:      p,
		Type:      docmodel.TypeEmail,
		Title:     headers["Subject"],
		Body:      body,
		Structure: &docmodel.Structure{Headers: headers},
	}, nil
}

// canonicalHeader normalizes header names to Canonical-Case.
func canonicalHeader(s string) string {
	parts := strings.Split(strings.TrimSpace(s), "-")
	for i, p := range parts {
		if p == "" {
			continue
		}
		parts[i] = strings.ToUpper(p[:1]) + strings.ToLower(p[1:])
	}
	return strings.Join(parts, "-")
}
