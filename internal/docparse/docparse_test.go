package docparse

import (
	"strings"
	"testing"

	"repro/internal/docmodel"
)

const sampleDeck = `# Technical Solution Overview
## Storage Management Services
- Data replication across two sites
- RTO lower than 48 hours
---
# Team
- Sam White, CSE
`

const sampleGrid = `GRID Deal Team Roster
Name | Role | Email | Phone
Sam White | CSE | sam.white@abc.com | 555-0100
Jo Park | cross tower TSA | jo.park@ibm.com |
`

const sampleEmail = `From: sam.white@abc.com
To: sales-list@ibm.com
Subject: EUS scope question
Date: 2006-01-05

Which engagements have a scope that includes End User Services?
`

func TestParseDeck(t *testing.T) {
	doc, err := ParseDeck("sol.deck", sampleDeck)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Type != docmodel.TypeDeck {
		t.Fatalf("type = %v", doc.Type)
	}
	slides := doc.Structure.Slides
	if len(slides) != 2 {
		t.Fatalf("slides = %+v", slides)
	}
	if slides[0].Title != "Technical Solution Overview" || slides[0].Subtitle != "Storage Management Services" {
		t.Fatalf("slide0 = %+v", slides[0])
	}
	if len(slides[0].Bullets) != 2 || !strings.Contains(slides[0].Bullets[0], "replication") {
		t.Fatalf("bullets = %v", slides[0].Bullets)
	}
	if doc.Title != "Technical Solution Overview" {
		t.Fatalf("title = %q", doc.Title)
	}
	if !strings.Contains(doc.Body, "Data replication") {
		t.Fatalf("body = %q", doc.Body)
	}
}

func TestParseDeckImplicitSlideBreak(t *testing.T) {
	doc, err := ParseDeck("x.deck", "# One\n- a\n# Two\n- b\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Structure.Slides) != 2 {
		t.Fatalf("slides = %+v", doc.Structure.Slides)
	}
}

func TestParseDeckEmpty(t *testing.T) {
	if _, err := ParseDeck("x.deck", "\n\n"); err == nil {
		t.Fatal("empty deck accepted")
	}
}

func TestParseGrid(t *testing.T) {
	doc, err := ParseGrid("team.grid", sampleGrid)
	if err != nil {
		t.Fatal(err)
	}
	g := doc.Structure.Grid
	if g.Name != "Deal Team Roster" {
		t.Fatalf("name = %q", g.Name)
	}
	if len(g.Rows) != 3 {
		t.Fatalf("rows = %v", g.Rows)
	}
	if ci := g.ColumnIndex("role"); ci != 1 {
		t.Fatalf("ColumnIndex(role) = %d", ci)
	}
	if g.Cell(1, 0) != "Sam White" || g.Cell(2, 1) != "cross tower TSA" {
		t.Fatalf("cells wrong: %v", g.Rows)
	}
	if g.Cell(2, 3) != "" { // empty phone cell
		t.Fatalf("empty cell = %q", g.Cell(2, 3))
	}
	if g.Cell(99, 0) != "" || g.Cell(0, 99) != "" {
		t.Fatal("out-of-range cells must be empty")
	}
}

func TestParseGridRejectsHeaderless(t *testing.T) {
	if _, err := ParseGrid("x.grid", "Name | Role\n"); err == nil {
		t.Fatal("grid without GRID line accepted")
	}
	if _, err := ParseGrid("x.grid", ""); err == nil {
		t.Fatal("empty grid accepted")
	}
}

func TestParseEmail(t *testing.T) {
	doc, err := ParseEmail("q.eml", sampleEmail)
	if err != nil {
		t.Fatal(err)
	}
	h := doc.Structure.Headers
	if h["From"] != "sam.white@abc.com" || h["Subject"] != "EUS scope question" {
		t.Fatalf("headers = %v", h)
	}
	if doc.Title != "EUS scope question" {
		t.Fatalf("title = %q", doc.Title)
	}
	if !strings.Contains(doc.Body, "End User Services") {
		t.Fatalf("body = %q", doc.Body)
	}
}

func TestParseEmailMalformedHeader(t *testing.T) {
	if _, err := ParseEmail("x.eml", "not a header\n\nbody"); err == nil {
		t.Fatal("malformed header accepted")
	}
}

func TestCanonicalHeader(t *testing.T) {
	if canonicalHeader("cOnTeNt-tYpE") != "Content-Type" {
		t.Fatal("header canonicalization broken")
	}
}

func TestParseDispatch(t *testing.T) {
	cases := map[string]docmodel.DocType{
		"a.deck": docmodel.TypeDeck,
		"a.grid": docmodel.TypeGrid,
		"a.eml":  docmodel.TypeEmail,
		"a.txt":  docmodel.TypeText,
	}
	contents := map[string]string{
		"a.deck": sampleDeck,
		"a.grid": sampleGrid,
		"a.eml":  sampleEmail,
		"a.txt":  "Meeting notes\nDiscussed scope.",
	}
	for p, want := range cases {
		doc, err := Parse(p, contents[p])
		if err != nil {
			t.Fatalf("Parse(%s): %v", p, err)
		}
		if doc.Type != want {
			t.Errorf("Parse(%s).Type = %v, want %v", p, doc.Type, want)
		}
		if doc.Path != p {
			t.Errorf("Path = %q", doc.Path)
		}
	}
	if _, err := Parse("a.xyz", "x"); err == nil {
		t.Error("unknown extension accepted")
	}
}

func TestParseBlobDegradesStructure(t *testing.T) {
	doc := ParseBlob("team.grid", sampleGrid)
	if doc.Structure != nil {
		t.Fatal("blob parse must not carry structure")
	}
	if strings.Contains(doc.Body, "|") {
		t.Fatalf("blob body keeps cell separators: %q", doc.Body)
	}
	// Content survives, structure doesn't: the name is still present...
	if !strings.Contains(doc.Body, "Sam White") {
		t.Fatal("blob lost content")
	}
}

func TestParseTextTitle(t *testing.T) {
	doc := ParseText("n.txt", "\n\n  Kickoff notes  \nbody line")
	if doc.Title != "Kickoff notes" {
		t.Fatalf("title = %q", doc.Title)
	}
}

func TestGridHeaderNil(t *testing.T) {
	var g *docmodel.Grid
	if g.Header() != nil {
		t.Fatal("nil grid header")
	}
	if g.Cell(0, 0) != "" {
		t.Fatal("nil grid cell")
	}
}

func TestFlatTextFromStructureOnly(t *testing.T) {
	doc := &docmodel.Document{
		Structure: &docmodel.Structure{
			Slides: []docmodel.Slide{{Title: "T", Subtitle: "S", Bullets: []string{"b1"}}},
			Grid:   &docmodel.Grid{Rows: [][]string{{"h1", "h2"}, {"c1", "c2"}}},
		},
	}
	flat := doc.FlatText()
	for _, want := range []string{"T", "S", "b1", "h1 h2", "c1 c2"} {
		if !strings.Contains(flat, want) {
			t.Errorf("FlatText missing %q: %q", want, flat)
		}
	}
}
