// Package dedupe implements near-duplicate document detection for the
// collection-processing layer. The paper's §3.4 assigns CPEs "multiple
// post-analysis tasks ... such as removal or normalization of
// duplicate/redundant data" — engagement workbooks are full of re-uploaded
// decks and forwarded emails, and every copy inflates keyword result counts
// without adding information.
//
// Detection uses token k-shingles and exact Jaccard similarity, computed
// per business activity (duplicates across deals are legitimate:
// boilerplate travels). Within a deal the document counts are small enough
// that exact pairwise Jaccard is cheaper and more predictable than MinHash.
package dedupe

import (
	"sort"

	"repro/internal/textproc"
)

// Signature is a document's shingle set.
type Signature struct {
	ID       string // document path
	GroupKey string // business activity
	shingles map[uint64]struct{}
}

// Detector accumulates signatures and finds near-duplicate clusters.
type Detector struct {
	// K is the shingle width in tokens (default 4).
	K int
	// Threshold is the Jaccard similarity at or above which two documents
	// are duplicates (default 0.85).
	Threshold float64

	sigs []Signature
}

// New returns a detector with the standard configuration.
func New() *Detector { return &Detector{K: 4, Threshold: 0.85} }

func (d *Detector) k() int {
	if d.K <= 0 {
		return 4
	}
	return d.K
}

func (d *Detector) threshold() float64 {
	if d.Threshold <= 0 {
		return 0.85
	}
	return d.Threshold
}

// Add registers a document's text under its group (deal).
func (d *Detector) Add(id, groupKey, text string) {
	d.sigs = append(d.sigs, Signature{
		ID:       id,
		GroupKey: groupKey,
		shingles: shingleSet(text, d.k()),
	})
}

// shingleSet hashes every k-token window of the analyzed text.
func shingleSet(text string, k int) map[uint64]struct{} {
	terms := textproc.DefaultAnalyzer.Terms(text)
	out := make(map[uint64]struct{}, len(terms))
	if len(terms) < k {
		// Short documents: the whole term sequence is one shingle.
		if len(terms) > 0 {
			out[hashTerms(terms)] = struct{}{}
		}
		return out
	}
	for i := 0; i+k <= len(terms); i++ {
		out[hashTerms(terms[i:i+k])] = struct{}{}
	}
	return out
}

// hashTerms is FNV-1a over the joined terms.
func hashTerms(terms []string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, t := range terms {
		for i := 0; i < len(t); i++ {
			h ^= uint64(t[i])
			h *= prime
		}
		h ^= 0x1f // separator
		h *= prime
	}
	return h
}

// jaccard computes |a∩b| / |a∪b|.
func jaccard(a, b map[uint64]struct{}) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	inter := 0
	for s := range small {
		if _, ok := large[s]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// Cluster is one group of near-duplicate documents. Keep is the canonical
// document (first added); Duplicates are the redundant copies.
type Cluster struct {
	GroupKey   string
	Keep       string
	Duplicates []string
}

// Clusters finds near-duplicate clusters within each group, via
// union-find over above-threshold pairs. Results are deterministic:
// clusters sorted by Keep, duplicates sorted.
func (d *Detector) Clusters() []Cluster {
	byGroup := map[string][]int{}
	for i, s := range d.sigs {
		byGroup[s.GroupKey] = append(byGroup[s.GroupKey], i)
	}
	groups := make([]string, 0, len(byGroup))
	for g := range byGroup {
		groups = append(groups, g)
	}
	sort.Strings(groups)

	var out []Cluster
	for _, g := range groups {
		idxs := byGroup[g]
		parent := make(map[int]int, len(idxs))
		var find func(int) int
		find = func(x int) int {
			if parent[x] != x {
				parent[x] = find(parent[x])
			}
			return parent[x]
		}
		for _, i := range idxs {
			parent[i] = i
		}
		th := d.threshold()
		for a := 0; a < len(idxs); a++ {
			for b := a + 1; b < len(idxs); b++ {
				i, j := idxs[a], idxs[b]
				if jaccard(d.sigs[i].shingles, d.sigs[j].shingles) >= th {
					parent[find(j)] = find(i)
				}
			}
		}
		members := map[int][]int{}
		for _, i := range idxs {
			r := find(i)
			members[r] = append(members[r], i)
		}
		var roots []int
		for r, m := range members {
			if len(m) > 1 {
				roots = append(roots, r)
			}
		}
		sort.Ints(roots)
		for _, r := range roots {
			m := members[r]
			sort.Ints(m) // insertion order: first added is canonical
			c := Cluster{GroupKey: g, Keep: d.sigs[m[0]].ID}
			for _, i := range m[1:] {
				c.Duplicates = append(c.Duplicates, d.sigs[i].ID)
			}
			sort.Strings(c.Duplicates)
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].GroupKey != out[j].GroupKey {
			return out[i].GroupKey < out[j].GroupKey
		}
		return out[i].Keep < out[j].Keep
	})
	return out
}

// DuplicateIDs returns just the redundant document IDs across all clusters.
func (d *Detector) DuplicateIDs() []string {
	var out []string
	for _, c := range d.Clusters() {
		out = append(out, c.Duplicates...)
	}
	sort.Strings(out)
	return out
}
