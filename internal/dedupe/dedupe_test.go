package dedupe

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

const baseText = "The engagement scope includes Storage Management Services with data replication between the primary and recovery sites, validated in the quarterly workshop with the client stakeholders."

func TestExactDuplicateDetected(t *testing.T) {
	d := New()
	d.Add("a.txt", "DEAL A", baseText)
	d.Add("copy-of-a.txt", "DEAL A", baseText)
	d.Add("other.txt", "DEAL A", "Completely different content about payroll processing and workforce administration shared services across regions and countries worldwide.")
	clusters := d.Clusters()
	if len(clusters) != 1 {
		t.Fatalf("clusters = %+v", clusters)
	}
	c := clusters[0]
	if c.Keep != "a.txt" || len(c.Duplicates) != 1 || c.Duplicates[0] != "copy-of-a.txt" {
		t.Fatalf("cluster = %+v", c)
	}
	if ids := d.DuplicateIDs(); len(ids) != 1 || ids[0] != "copy-of-a.txt" {
		t.Fatalf("DuplicateIDs = %v", ids)
	}
}

func TestNearDuplicateDetected(t *testing.T) {
	d := New()
	d.Add("v1.txt", "DEAL A", baseText)
	d.Add("v2.txt", "DEAL A", baseText+" Appendix attached.")
	if len(d.Clusters()) != 1 {
		t.Fatalf("near-duplicate missed: %+v", d.Clusters())
	}
}

func TestCrossDealNotDeduped(t *testing.T) {
	d := New()
	d.Add("a.txt", "DEAL A", baseText)
	d.Add("b.txt", "DEAL B", baseText)
	if got := d.Clusters(); len(got) != 0 {
		t.Fatalf("boilerplate across deals deduped: %+v", got)
	}
}

func TestDistinctDocsNotClustered(t *testing.T) {
	d := New()
	for i := 0; i < 10; i++ {
		d.Add(fmt.Sprintf("n%d.txt", i), "DEAL A",
			fmt.Sprintf("Meeting notes %d covering milestone %d and the budget variance for stream %d with unique follow-ups item%d item%d.", i, i*3, i*7, i*11, i*13))
	}
	if got := d.Clusters(); len(got) != 0 {
		t.Fatalf("distinct docs clustered: %+v", got)
	}
}

func TestTransitiveCluster(t *testing.T) {
	// a~b and b~c cluster together even if a~c is weaker (union-find).
	d := New()
	d.Threshold = 0.6
	d.Add("a.txt", "DEAL A", baseText)
	d.Add("b.txt", "DEAL A", baseText+" appended sentence one here.")
	d.Add("c.txt", "DEAL A", baseText+" appended sentence one here. And sentence two as well.")
	clusters := d.Clusters()
	if len(clusters) != 1 || len(clusters[0].Duplicates) != 2 {
		t.Fatalf("clusters = %+v", clusters)
	}
}

func TestShortDocuments(t *testing.T) {
	d := New()
	d.Add("s1.txt", "DEAL A", "ok")
	d.Add("s2.txt", "DEAL A", "ok")
	d.Add("s3.txt", "DEAL A", "different words")
	clusters := d.Clusters()
	if len(clusters) != 1 || clusters[0].Duplicates[0] != "s2.txt" {
		t.Fatalf("short-doc clusters = %+v", clusters)
	}
	// Empty text never clusters.
	d2 := New()
	d2.Add("e1.txt", "D", "")
	d2.Add("e2.txt", "D", "")
	if got := d2.Clusters(); len(got) != 0 {
		t.Fatalf("empty docs clustered: %+v", got)
	}
}

// Property: a document plus its verbatim copy always cluster; jaccard is 1.
func TestSelfSimilarityProperty(t *testing.T) {
	err := quick.Check(func(words []string) bool {
		text := strings.Join(words, " ")
		if len(strings.Fields(text)) < 1 {
			return true
		}
		d := New()
		d.Add("x", "G", text)
		d.Add("y", "G", text)
		sigs := d.sigs
		if len(sigs[0].shingles) == 0 {
			return true // nothing analyzable (e.g. all stopwords)
		}
		return jaccard(sigs[0].shingles, sigs[1].shingles) == 1
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestDeterministicOutput(t *testing.T) {
	build := func() []Cluster {
		d := New()
		d.Add("a", "G1", baseText)
		d.Add("b", "G1", baseText)
		d.Add("c", "G2", baseText)
		d.Add("d", "G2", baseText)
		return d.Clusters()
	}
	a, b := build(), build()
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
	if len(a) != 2 || a[0].GroupKey != "G1" {
		t.Fatalf("clusters = %+v", a)
	}
}
