package quantile

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile is the reference: ceil-rank percentile over a sorted copy,
// matching the sketch's rank convention.
func exactQuantile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := make([]float64, len(vals))
	copy(s, vals)
	sort.Float64s(s)
	rank := int(math.Ceil(q * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

// checkAccuracy asserts every probed quantile is within the sketch's
// relative-error bound of the exact percentile.
func checkAccuracy(t *testing.T, name string, vals []float64, sk *Sketch) {
	t.Helper()
	bound := sk.RelativeAccuracy() + 1e-9
	for _, q := range []float64{0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999, 1.0} {
		exact := exactQuantile(vals, q)
		got := sk.Quantile(q)
		if exact == 0 {
			if got != 0 {
				t.Errorf("%s q=%.3f: exact 0, sketch %g", name, q, got)
			}
			continue
		}
		rel := math.Abs(got-exact) / exact
		if rel > bound {
			t.Errorf("%s q=%.3f: exact %.6g sketch %.6g relative error %.4f > bound %.4f",
				name, q, exact, got, rel, bound)
		}
	}
}

func feed(sk *Sketch, vals []float64) {
	for _, v := range vals {
		sk.Observe(v)
	}
}

// Bimodal: a fast mode around 1ms and a slow mode around 800ms — the shape a
// cache-hit/cache-miss split produces. Naive fixed-width histograms smear the
// upper mode; the sketch must not.
func TestAccuracyBimodal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 0, 50000)
	for i := 0; i < 50000; i++ {
		if rng.Float64() < 0.85 {
			vals = append(vals, 1e-3*(0.5+rng.Float64())) // 0.5–1.5ms
		} else {
			vals = append(vals, 0.8*(0.7+0.6*rng.Float64())) // 560–1040ms
		}
	}
	sk := New(0.01, 0)
	feed(sk, vals)
	checkAccuracy(t, "bimodal", vals, sk)
}

// Heavy tail: Pareto(α=1.2) — the classic latency long tail where p99 is
// orders of magnitude beyond the median.
func TestAccuracyHeavyTail(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, 0, 50000)
	for i := 0; i < 50000; i++ {
		u := rng.Float64()
		if u < 1e-12 {
			u = 1e-12
		}
		vals = append(vals, 1e-3*math.Pow(u, -1/1.2)) // Pareto, xm=1ms
	}
	sk := New(0.01, 0)
	feed(sk, vals)
	checkAccuracy(t, "heavy-tail", vals, sk)
}

func TestAccuracyUniformAndConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	uni := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		uni = append(uni, 1e-4+rng.Float64())
	}
	sk := New(0.01, 0)
	feed(sk, uni)
	checkAccuracy(t, "uniform", uni, sk)

	con := make([]float64, 1000)
	for i := range con {
		con[i] = 0.042
	}
	sk2 := New(0.01, 0)
	feed(sk2, con)
	checkAccuracy(t, "constant", con, sk2)
}

// Zeros land in a dedicated bucket and pull low quantiles to 0 without
// touching the tail.
func TestZeroBucket(t *testing.T) {
	sk := New(0.01, 0)
	for i := 0; i < 600; i++ {
		sk.Observe(0)
	}
	for i := 0; i < 400; i++ {
		sk.Observe(1.0)
	}
	if got := sk.Quantile(0.5); got != 0 {
		t.Errorf("p50 with 60%% zeros = %g, want 0", got)
	}
	if got := sk.Quantile(0.99); math.Abs(got-1.0) > 0.011 {
		t.Errorf("p99 = %g, want ~1.0", got)
	}
	if sk.Count() != 1000 {
		t.Errorf("count = %d, want 1000", sk.Count())
	}
}

// The bin bound must hold under a pathologically wide dynamic range, and the
// collapse must only damage low quantiles: the tail stays in-bound.
func TestBoundedBinsCollapse(t *testing.T) {
	const maxBins = 64
	sk := New(0.01, maxBins)
	rng := rand.New(rand.NewSource(4))
	vals := make([]float64, 0, 30000)
	for i := 0; i < 30000; i++ {
		// 12 decades: 1ns .. ~1000s
		v := math.Pow(10, -9+12*rng.Float64())
		vals = append(vals, v)
		sk.Observe(v)
	}
	if sk.Bins() > maxBins {
		t.Fatalf("bins = %d, want <= %d", sk.Bins(), maxBins)
	}
	// 64 retained 1%-buckets span ~0.55 decades from the top; over a
	// log-uniform 12-decade input that covers the top ~4.6% of mass, so the
	// guarantee holds for p99 and beyond (p95 sits inside the collapsed
	// region and is legitimately degraded).
	bound := sk.RelativeAccuracy() + 1e-9
	for _, q := range []float64{0.99, 0.999} {
		exact := exactQuantile(vals, q)
		got := sk.Quantile(q)
		rel := math.Abs(got-exact) / exact
		if rel > bound {
			t.Errorf("post-collapse q=%.3f: exact %.6g sketch %.6g rel %.4f > %.4f",
				q, exact, got, rel, bound)
		}
	}
	// Low quantiles are allowed to be wrong after collapse, but never above
	// the collapse floor's next retained bucket — sanity: p1 <= p95.
	if sk.Quantile(0.01) > sk.Quantile(0.95) {
		t.Errorf("quantiles not monotone after collapse: p1=%g p95=%g", sk.Quantile(0.01), sk.Quantile(0.95))
	}
}

// Merging per-worker sketches must agree with one sketch fed everything.
func TestMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	all := New(0.01, 0)
	parts := []*Sketch{New(0.01, 0), New(0.01, 0), New(0.01, 0)}
	vals := make([]float64, 0, 9000)
	for i := 0; i < 9000; i++ {
		v := 1e-3 * math.Exp(3*rng.NormFloat64())
		vals = append(vals, v)
		all.Observe(v)
		parts[i%3].Observe(v)
	}
	merged := New(0.01, 0)
	for _, p := range parts {
		if err := merged.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	if merged.Count() != all.Count() {
		t.Fatalf("merged count %d != %d", merged.Count(), all.Count())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		a, b := all.Quantile(q), merged.Quantile(q)
		if math.Abs(a-b)/a > 1e-9 {
			t.Errorf("q=%.2f: single %.6g merged %.6g", q, a, b)
		}
	}
	checkAccuracy(t, "merged-lognormal", vals, merged)

	coarse := New(0.05, 0)
	coarse.Observe(1)
	if err := merged.Merge(coarse); err == nil {
		t.Error("merge of mismatched accuracy should error")
	}
}

func TestEmptyAndStats(t *testing.T) {
	sk := New(0, 0)
	if sk.Quantile(0.99) != 0 || sk.Count() != 0 || sk.Min() != 0 || sk.Max() != 0 || sk.Mean() != 0 {
		t.Error("empty sketch must report zeros")
	}
	sk.Observe(2)
	sk.Observe(4)
	if sk.Min() != 2 || sk.Max() != 4 || sk.Mean() != 3 || sk.Sum() != 6 {
		t.Errorf("stats: min=%g max=%g mean=%g sum=%g", sk.Min(), sk.Max(), sk.Mean(), sk.Sum())
	}
	sk.Reset()
	if sk.Count() != 0 || sk.Quantile(0.5) != 0 {
		t.Error("reset sketch must be empty")
	}
}
