// Package quantile is a bounded-memory quantile sketch for latency
// measurements, in the DDSketch family: observations land in logarithmic
// buckets sized so every reported quantile carries a guaranteed relative
// error (1% by default), and the bucket set is collapsed from the low end
// when it outgrows its bound — tail quantiles (the ones load tests and SLOs
// judge) keep full accuracy no matter how many buckets collapse.
//
// The load generator records millions of per-request latencies through one
// of these per phase instead of retaining a duration slice per request
// (exact sort-based percentiles are O(requests) memory — fine at 500
// queries, not at an open-loop sweep's arrival counts). The query log's
// summary percentiles ride the same estimator, so server-side and
// bench-side figures agree on what "p99" means.
//
// Sketches are not safe for concurrent use; shard per worker and Merge.
package quantile

import (
	"fmt"
	"math"
	"sort"
)

// Defaults.
const (
	// DefAccuracy is the default relative accuracy: a reported quantile q̂
	// satisfies |q̂ - q| <= DefAccuracy * q against the true value q.
	DefAccuracy = 0.01
	// DefMaxBins bounds the bucket count. 1%-accurate buckets span roughly
	// nine decades of dynamic range in 1024 bins — nanoseconds to minutes —
	// before any collapsing happens.
	DefMaxBins = 1024
)

// Sketch accumulates non-negative observations into logarithmic buckets.
// The zero value is not ready; construct with New.
type Sketch struct {
	gamma   float64 // bucket growth factor (1+a)/(1-a)
	lnGamma float64
	maxBins int

	bins      map[int]uint64 // key -> count, key = ceil(log_gamma(v))
	collapsed bool           // a collapse has happened; floorKey is active
	floorKey  int            // smallest admissible key once collapsed

	zeros uint64 // observations <= 0 (or denormal-small)
	count uint64
	sum   float64
	min   float64
	max   float64
}

// New returns a sketch with the given relative accuracy (0 < accuracy < 1;
// 0 means DefAccuracy) and bucket bound (0 means DefMaxBins).
func New(accuracy float64, maxBins int) *Sketch {
	if accuracy <= 0 || accuracy >= 1 {
		accuracy = DefAccuracy
	}
	if maxBins <= 0 {
		maxBins = DefMaxBins
	}
	if maxBins < 8 {
		maxBins = 8
	}
	gamma := (1 + accuracy) / (1 - accuracy)
	return &Sketch{
		gamma:   gamma,
		lnGamma: math.Log(gamma),
		maxBins: maxBins,
		bins:    make(map[int]uint64),
		min:     math.Inf(1),
		max:     math.Inf(-1),
	}
}

// RelativeAccuracy reports the configured per-quantile error bound.
func (s *Sketch) RelativeAccuracy() float64 {
	return (s.gamma - 1) / (s.gamma + 1)
}

// key maps a positive value to its bucket index.
func (s *Sketch) key(v float64) int {
	return int(math.Ceil(math.Log(v) / s.lnGamma))
}

// value maps a bucket index back to its midpoint estimate: 2γ^k/(γ+1) is
// the point whose worst-case relative distance to any value in the bucket
// (γ^(k-1), γ^k] is exactly the configured accuracy.
func (s *Sketch) value(k int) float64 {
	return 2 * math.Pow(s.gamma, float64(k)) / (s.gamma + 1)
}

// Observe records one observation. Values <= 0 (idle ops, clock quirks)
// are counted in a dedicated zero bucket so they weigh the low quantiles
// without distorting the log buckets.
func (s *Sketch) Observe(v float64) {
	s.count++
	if v > 0 {
		s.sum += v
	}
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
		s.zeros++
		return
	}
	k := s.key(v)
	if s.collapsed && k < s.floorKey {
		// Below the collapse floor: fold into the floor bucket, like any
		// other collapsed low observation.
		k = s.floorKey
	}
	s.bins[k]++
	if len(s.bins) > s.maxBins {
		s.collapseLowest()
	}
}

// collapseLowest folds the smallest-key bucket into the next retained one,
// sacrificing low-quantile resolution to bound memory.
func (s *Sketch) collapseLowest() {
	lowest, next := math.MaxInt, math.MaxInt
	for k := range s.bins {
		if k < lowest {
			next = lowest
			lowest = k
		} else if k < next {
			next = k
		}
	}
	if next == math.MaxInt {
		return // zero or one buckets; nothing to fold into
	}
	s.bins[next] += s.bins[lowest]
	delete(s.bins, lowest)
	s.collapsed = true
	s.floorKey = next
}

// Count reports the number of observations.
func (s *Sketch) Count() uint64 { return s.count }

// Sum reports the sum of positive observations.
func (s *Sketch) Sum() float64 { return s.sum }

// Min reports the smallest observation (0 when empty).
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max reports the largest observation (0 when empty).
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// Mean reports the mean of positive observations (0 when empty).
func (s *Sketch) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Quantile reports the q-quantile estimate (q clamped to [0, 1]). The
// estimate's relative error is bounded by RelativeAccuracy except across
// collapsed low buckets. Empty sketches report 0.
func (s *Sketch) Quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.count)))
	if rank == 0 {
		rank = 1
	}
	if rank <= s.zeros {
		return 0
	}
	rank -= s.zeros

	keys := make([]int, 0, len(s.bins))
	for k := range s.bins {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var cum uint64
	for _, k := range keys {
		cum += s.bins[k]
		if cum >= rank {
			return s.value(k)
		}
	}
	return s.max
}

// Merge folds other into s. Both sketches must share the same accuracy
// (same γ); Merge returns an error otherwise rather than silently blending
// incompatible bucket grids.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil || other.count == 0 {
		return nil
	}
	if math.Abs(other.gamma-s.gamma) > 1e-12 {
		return fmt.Errorf("quantile: merge of sketches with different accuracy (γ %.6f vs %.6f)", s.gamma, other.gamma)
	}
	for k, n := range other.bins {
		if s.collapsed && k < s.floorKey {
			s.bins[s.floorKey] += n
			continue
		}
		s.bins[k] += n
	}
	for len(s.bins) > s.maxBins {
		s.collapseLowest()
	}
	s.zeros += other.zeros
	s.count += other.count
	s.sum += other.sum
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	return nil
}

// Reset empties the sketch in place, retaining its configuration.
func (s *Sketch) Reset() {
	s.bins = make(map[int]uint64)
	s.collapsed = false
	s.zeros, s.count = 0, 0
	s.sum = 0
	s.min = math.Inf(1)
	s.max = math.Inf(-1)
}

// Bins reports the retained bucket count (tests assert the memory bound).
func (s *Sketch) Bins() int { return len(s.bins) }
