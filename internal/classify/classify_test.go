package classify

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/textproc"
)

func trained() *Classifier {
	c := New(textproc.DefaultAnalyzer)
	// Miniature corpus over the email meta-query domain.
	c.Learn("scope", "which engagements have a scope that involves storage management")
	c.Learn("scope", "deals with end user services in scope")
	c.Learn("scope", "looking for engagements whose scope includes network services")
	c.Learn("people", "who has worked with Sam White from company ABC")
	c.Learn("people", "need the CSE who worked on this client relationship")
	c.Learn("people", "who in this role has worked with this person")
	c.Learn("expert", "who has worked in the capacity of cross tower TSA")
	c.Learn("expert", "looking for a subject matter expert on mainframe")
	return c
}

func TestClassifyBasic(t *testing.T) {
	c := trained()
	label, p, err := c.Classify("which engagements have end user services in their scope")
	if err != nil {
		t.Fatal(err)
	}
	if label != "scope" {
		t.Fatalf("label = %q (p=%v)", label, p)
	}
	if p <= 0 || p > 1 {
		t.Fatalf("posterior out of range: %v", p)
	}
	label, _, err = c.Classify("who has worked with Sam White at ABC")
	if err != nil || label != "people" {
		t.Fatalf("label = %q, %v", label, err)
	}
}

func TestScoresNormalized(t *testing.T) {
	c := trained()
	scores, err := c.Scores("scope of the engagement")
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 3 {
		t.Fatalf("scores = %v", scores)
	}
	sum := 0.0
	for _, s := range scores {
		sum += s.Posterior
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("posteriors sum to %v", sum)
	}
	for i := 1; i < len(scores); i++ {
		if scores[i-1].Posterior < scores[i].Posterior {
			t.Fatalf("scores not sorted: %v", scores)
		}
	}
}

func TestUntrained(t *testing.T) {
	c := New(textproc.DefaultAnalyzer)
	if _, _, err := c.Classify("anything"); !errors.Is(err, ErrUntrained) {
		t.Fatalf("err = %v", err)
	}
}

func TestClasses(t *testing.T) {
	c := trained()
	got := c.Classes()
	want := []string{"expert", "people", "scope"}
	if len(got) != len(want) {
		t.Fatalf("classes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("classes = %v", got)
		}
	}
}

func TestEmptyTextFallsBackToPrior(t *testing.T) {
	c := trained()
	label, _, err := c.Classify("")
	if err != nil {
		t.Fatal(err)
	}
	// "scope" and "people" tie on 3 docs each; deterministic tie-break by
	// label ordering guarantees a stable result.
	if label != "people" && label != "scope" {
		t.Fatalf("prior-only label = %q", label)
	}
	// And repeated calls agree.
	for i := 0; i < 5; i++ {
		l2, _, _ := c.Classify("")
		if l2 != label {
			t.Fatal("tie-break not deterministic")
		}
	}
}

func TestBinary(t *testing.T) {
	b := NewBinary(textproc.DefaultAnalyzer)
	b.Learn(true, "please share contact details of the CSE")
	b.Learn(true, "who should I talk to about this deal")
	b.Learn(false, "what is the contract value of the engagement")
	b.Learn(false, "when does the term start")
	pos, p, err := b.Predict("who is the right contact for storage")
	if err != nil || !pos {
		t.Fatalf("predict = %v %v %v", pos, p, err)
	}
	neg, _, err := b.Predict("contract term and value")
	if err != nil || neg {
		t.Fatalf("predict = %v, want negative", neg)
	}
}

// Property: posteriors are always a valid distribution.
func TestPosteriorDistributionProperty(t *testing.T) {
	c := trained()
	err := quick.Check(func(text string) bool {
		scores, err := c.Scores(text)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, s := range scores {
			if s.Posterior < 0 || s.Posterior > 1+1e-9 || math.IsNaN(s.Posterior) {
				return false
			}
			sum += s.Posterior
		}
		return math.Abs(sum-1) < 1e-6
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

// Property: learning more examples of a label raises (or keeps) its rank for
// exactly that text.
func TestLearningStrengthensLabel(t *testing.T) {
	c := New(textproc.DefaultAnalyzer)
	c.Learn("a", "alpha beta")
	c.Learn("b", "gamma delta")
	text := "epsilon zeta eta"
	c.Learn("b", text)
	label, _, err := c.Classify(text)
	if err != nil || label != "b" {
		t.Fatalf("label = %q, %v", label, err)
	}
}

func BenchmarkClassify(b *testing.B) {
	c := trained()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Classify("who has worked on storage management services with data replication")
	}
}
