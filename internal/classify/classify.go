// Package classify implements a multinomial naive Bayes text classifier
// with Laplace smoothing. It backs EIL's classifier-based annotators
// (Table 1 of the paper: "capturing complex & abstract concepts") and the
// §2 email-study meta-query categorizer. Multi-label use is supported by
// training one binary classifier per label.
package classify

import (
	"errors"
	"math"
	"sort"

	"repro/internal/textproc"
)

// Classifier is a multinomial naive Bayes model. Train it with Learn calls
// followed by queries through Classify / Scores. The zero value is not
// usable; construct with New.
type Classifier struct {
	analyzer textproc.Analyzer
	classes  map[string]*classStats
	vocab    map[string]struct{}
	docs     int
}

type classStats struct {
	docs   int
	tokens int
	counts map[string]int
}

// New returns an empty classifier using the given analyzer (use
// textproc.DefaultAnalyzer to match the rest of EIL).
func New(a textproc.Analyzer) *Classifier {
	return &Classifier{
		analyzer: a,
		classes:  map[string]*classStats{},
		vocab:    map[string]struct{}{},
	}
}

// ErrUntrained is returned when classifying before any Learn call.
var ErrUntrained = errors.New("classify: no training data")

// Learn adds one labeled example.
func (c *Classifier) Learn(label, text string) {
	cs := c.classes[label]
	if cs == nil {
		cs = &classStats{counts: map[string]int{}}
		c.classes[label] = cs
	}
	cs.docs++
	c.docs++
	for _, term := range c.analyzer.Terms(text) {
		cs.counts[term]++
		cs.tokens++
		c.vocab[term] = struct{}{}
	}
}

// Classes returns the known labels, sorted.
func (c *Classifier) Classes() []string {
	out := make([]string, 0, len(c.classes))
	for l := range c.classes {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Score is one label's posterior log-probability (unnormalized).
type Score struct {
	Label     string
	LogProb   float64
	Posterior float64 // normalized across labels, in (0, 1)
}

// Scores returns per-label scores for text, sorted by descending posterior
// (ties broken by label for determinism).
func (c *Classifier) Scores(text string) ([]Score, error) {
	if c.docs == 0 {
		return nil, ErrUntrained
	}
	terms := c.analyzer.Terms(text)
	v := float64(len(c.vocab))
	scores := make([]Score, 0, len(c.classes))
	for label, cs := range c.classes {
		lp := math.Log(float64(cs.docs) / float64(c.docs))
		denom := float64(cs.tokens) + v
		for _, term := range terms {
			lp += math.Log((float64(cs.counts[term]) + 1) / denom)
		}
		scores = append(scores, Score{Label: label, LogProb: lp})
	}
	// Normalize with the log-sum-exp trick.
	maxLp := math.Inf(-1)
	for _, s := range scores {
		if s.LogProb > maxLp {
			maxLp = s.LogProb
		}
	}
	var z float64
	for _, s := range scores {
		z += math.Exp(s.LogProb - maxLp)
	}
	for i := range scores {
		scores[i].Posterior = math.Exp(scores[i].LogProb-maxLp) / z
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].Posterior != scores[j].Posterior {
			return scores[i].Posterior > scores[j].Posterior
		}
		return scores[i].Label < scores[j].Label
	})
	return scores, nil
}

// Classify returns the most probable label and its posterior.
func (c *Classifier) Classify(text string) (string, float64, error) {
	scores, err := c.Scores(text)
	if err != nil {
		return "", 0, err
	}
	return scores[0].Label, scores[0].Posterior, nil
}

// Binary wraps a two-class classifier with labels "yes"/"no" for multi-label
// tagging: one Binary per tag.
type Binary struct{ c *Classifier }

// NewBinary returns an untrained binary classifier.
func NewBinary(a textproc.Analyzer) *Binary { return &Binary{c: New(a)} }

// Learn adds an example with a boolean label.
func (b *Binary) Learn(positive bool, text string) {
	if positive {
		b.c.Learn("yes", text)
	} else {
		b.c.Learn("no", text)
	}
}

// Predict reports whether text is positive and with what posterior.
func (b *Binary) Predict(text string) (bool, float64, error) {
	label, p, err := b.c.Classify(text)
	if err != nil {
		return false, 0, err
	}
	return label == "yes", p, nil
}
