package repl

import (
	"testing"
)

func TestLogCursorAndFrom(t *testing.T) {
	l := NewLog(1, 10, 0, 0) // history begins after seq 10
	for s := uint64(11); s <= 20; s++ {
		l.Append(Entry{Seq: s, Kind: 1})
	}
	cur, ok := l.CursorFor(10)
	if !ok {
		t.Fatal("CursorFor(10) not covered")
	}
	batch, next, ok := l.From(cur)
	if !ok || len(batch) != 10 || batch[0].Seq != 11 || batch[9].Seq != 20 {
		t.Fatalf("From: ok=%v len=%d", ok, len(batch))
	}
	// The returned next cursor is at the head: no entries yet.
	if batch2, _, ok2 := l.From(next); !ok2 || len(batch2) != 0 {
		t.Fatalf("From(next): ok=%v len=%d, want empty batch", ok2, len(batch2))
	}
	// Resume mid-stream.
	cur, ok = l.CursorFor(15)
	if !ok {
		t.Fatal("CursorFor(15) not covered")
	}
	batch, _, _ = l.From(cur)
	if len(batch) != 5 || batch[0].Seq != 16 {
		t.Fatalf("resume at 15: len=%d first=%d", len(batch), batch[0].Seq)
	}
}

func TestLogRotateEntrySharesSeq(t *testing.T) {
	// A rotation folds existing records into a snapshot without consuming a
	// sequence number; a cursor that already passed seq must still see the
	// rotate entry (it sorts after the record with the same seq).
	l := NewLog(1, 0, 0, 0)
	l.Append(Entry{Seq: 1, Kind: 1})
	l.Append(Entry{Seq: 2, Kind: 1})
	l.Append(Entry{Seq: 2, Rotate: true, Gen: 2})
	l.Append(Entry{Seq: 3, Kind: 1})
	cur, ok := l.CursorFor(2)
	if !ok {
		t.Fatal("CursorFor(2) not covered")
	}
	batch, _, _ := l.From(cur)
	// Resuming after seq 2 must not re-deliver the rotate (the follower at
	// seq 2 reconnecting has already checkpointed or will get records only).
	// What it must deliver is exactly seq 3.
	want := 0
	for _, e := range batch {
		if e.Rotate {
			continue
		}
		want++
		if e.Seq != 3 {
			t.Fatalf("unexpected record seq %d", e.Seq)
		}
	}
	if want != 1 {
		t.Fatalf("got %d records, want 1", want)
	}
}

func TestLogEvictionAndCovers(t *testing.T) {
	l := NewLog(1, 0, 4, 0) // hold at most 4 entries
	for s := uint64(1); s <= 10; s++ {
		l.Append(Entry{Seq: s, Kind: 1})
	}
	if l.Covers(0) {
		t.Fatal("Covers(0) after eviction should be false")
	}
	if !l.Covers(9) {
		t.Fatal("Covers(9) should hold")
	}
	if _, ok := l.CursorFor(2); ok {
		t.Fatal("CursorFor(2) should report eviction")
	}
	if _, ok := l.CursorFor(6); !ok {
		t.Fatal("CursorFor(6) should be retained")
	}
	if _, head := l.Head(); head != 10 {
		t.Fatalf("head = %d, want 10", head)
	}
}

func TestLogWaitChSignalsAppend(t *testing.T) {
	l := NewLog(1, 0, 0, 0)
	ch := l.WaitCh()
	select {
	case <-ch:
		t.Fatal("channel closed before append")
	default:
	}
	l.Append(Entry{Seq: 1, Kind: 1})
	select {
	case <-ch:
	default:
		t.Fatal("channel not closed after append")
	}
}
