package repl

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestHelloWithEpochRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := Hello{Format: ProtoFormat, Name: "survivor", Have: true, Gen: 4, Seq: 1200, Epoch: 3}
	if err := writeJSON(&buf, MsgHello, want); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(&buf, MaxControlFrame)
	if err != nil || typ != MsgHello {
		t.Fatalf("frame = type %d err %v", typ, err)
	}
	got, err := decodeHello(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("hello = %+v, want %+v", got, want)
	}
}

func TestHelloOmittedEpochIsZero(t *testing.T) {
	// A pre-failover peer sends no epoch field at all; it must decode as
	// term 0, not an error — mixed-version groups fail over too.
	h, err := decodeHello([]byte(`{"format":1,"name":"old","have":true,"gen":2,"seq":9}`))
	if err != nil {
		t.Fatal(err)
	}
	if h.Epoch != 0 || h.Name != "old" || !h.Have {
		t.Fatalf("legacy hello = %+v", h)
	}
}

func TestFenceRoundTripAndValidation(t *testing.T) {
	var buf bytes.Buffer
	want := Fence{Epoch: 7, Resync: true, Msg: "divergent past seal"}
	if err := writeJSON(&buf, MsgFence, want); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(&buf, MaxControlFrame)
	if err != nil || typ != MsgFence {
		t.Fatalf("frame = type %d err %v", typ, err)
	}
	got, err := decodeFence(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("fence = %+v, want %+v", got, want)
	}

	// A zero epoch can never fence anything: framing violation, and the
	// client treats it as a hostile stream, not a demotion order.
	if _, err := decodeFence([]byte(`{"epoch":0}`)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("zero-epoch fence = %v, want ErrBadFrame", err)
	}
	long := `{"epoch":1,"msg":"` + strings.Repeat("x", 2048) + `"}`
	if _, err := decodeFence([]byte(long)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized fence msg = %v, want ErrBadFrame", err)
	}
	if _, err := decodeFence([]byte("not json")); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("malformed fence = %v, want ErrBadFrame", err)
	}
}

// FuzzPromotionControlDecode fuzzes the failover-era control messages —
// hello-with-epoch, fence verdicts, and epoch-carrying positions — through
// the frame reader and their decoders. The PR-9 two-error-class contract
// holds for promotion traffic too:
//
//   - no panic on arbitrary bytes;
//   - every failure is ErrBadFrame (distrust the stream entirely) or an
//     I/O error (retryable at the same position) — never a third class,
//     never silent success on corrupt input;
//   - an accepted fence always carries a nonzero epoch (a zero-epoch
//     verdict could demote a healthy primary for free);
//   - accepted hellos and fences survive a re-encode/re-decode round trip
//     unchanged, so a relayed verdict cannot mutate in flight.
func FuzzPromotionControlDecode(f *testing.F) {
	seed := func(typ byte, v any) []byte {
		var buf bytes.Buffer
		if err := writeJSON(&buf, typ, v); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(MsgHello, Hello{Format: ProtoFormat, Name: "n", Have: true, Gen: 1, Seq: 7, Epoch: 2}))
	f.Add(seed(MsgHello, Hello{Format: ProtoFormat, Name: "legacy", Have: true, Gen: 1, Seq: 7}))
	f.Add(seed(MsgFence, Fence{Epoch: 3, Resync: true, Msg: "stale"}))
	f.Add(seed(MsgFence, Fence{Epoch: 1}))
	f.Add(seed(MsgFence, Fence{}))                      // zero epoch: must be refused
	f.Add(seed(MsgPos, Pos{Gen: 2, Seq: 40, Epoch: 9})) // epoch-carrying heartbeat

	corrupted := seed(MsgFence, Fence{Epoch: 3})
	corrupted[len(corrupted)-1] ^= 0xFF
	f.Add(corrupted)
	f.Add(corrupted[:len(corrupted)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			typ, payload, err := readFrame(r, MaxControlFrame)
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrBadFrame) && !errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			switch typ {
			case MsgHello:
				h, err := decodeHello(payload)
				if err != nil {
					if !errors.Is(err, ErrBadFrame) {
						t.Fatalf("hello error class: %v", err)
					}
					continue
				}
				if h.Format != ProtoFormat || len(h.Name) > 256 || len(h.Shard) > 256 {
					t.Fatalf("accepted hello violates caps: %+v", h)
				}
				var re bytes.Buffer
				if err := writeJSON(&re, MsgHello, h); err != nil {
					t.Fatalf("re-encode hello: %v", err)
				}
				_, p2, err := readFrame(&re, MaxControlFrame)
				if err != nil {
					t.Fatalf("re-read hello: %v", err)
				}
				if h2, err := decodeHello(p2); err != nil || h2 != h {
					t.Fatalf("hello round trip: %+v -> %+v (%v)", h, h2, err)
				}
			case MsgFence:
				fc, err := decodeFence(payload)
				if err != nil {
					if !errors.Is(err, ErrBadFrame) {
						t.Fatalf("fence error class: %v", err)
					}
					continue
				}
				if fc.Epoch == 0 {
					t.Fatal("accepted a zero-epoch fence")
				}
				var re bytes.Buffer
				if err := writeJSON(&re, MsgFence, fc); err != nil {
					t.Fatalf("re-encode fence: %v", err)
				}
				_, p2, err := readFrame(&re, MaxControlFrame)
				if err != nil {
					t.Fatalf("re-read fence: %v", err)
				}
				if f2, err := decodeFence(p2); err != nil || f2 != fc {
					t.Fatalf("fence round trip: %+v -> %+v (%v)", fc, f2, err)
				}
			case MsgPos:
				var p Pos
				if err := decodeControl(payload, &p); err != nil && !errors.Is(err, ErrBadFrame) {
					t.Fatalf("pos error class: %v", err)
				}
			}
		}
	})
}
