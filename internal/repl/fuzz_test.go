package repl

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"
)

// FuzzReplFrameDecode throws arbitrary bytes at the frame reader and the
// decoders stacked on it. The invariants under fuzz:
//
//   - no panic and no unbounded allocation (a hostile length prefix may
//     only cost initialFrameAlloc until real bytes arrive);
//   - every error is either ErrBadFrame (framing violation) or an I/O
//     error — never a silent success on corrupt input;
//   - a frame that does decode re-encodes to the same bytes (the reader
//     did not invent or drop payload).
func FuzzReplFrameDecode(f *testing.F) {
	// Seed with well-formed frames of each flavor plus classic corruptions.
	var rec bytes.Buffer
	writeFrame(&rec, MsgRecord, EncodeRecord(Record{Seq: 42, Kind: 1, Payload: []byte("doc bytes")}))
	f.Add(rec.Bytes())

	var hello bytes.Buffer
	writeJSON(&hello, MsgHello, Hello{Format: ProtoFormat, Name: "fuzz", Gen: 3, Seq: 99, Have: true})
	f.Add(hello.Bytes())

	var pos bytes.Buffer
	writeJSON(&pos, MsgPos, Pos{Gen: 7, Seq: 1234})
	f.Add(pos.Bytes())

	flipped := append([]byte(nil), rec.Bytes()...)
	flipped[len(flipped)-2] ^= 0xFF
	f.Add(flipped)

	f.Add(rec.Bytes()[:rec.Len()/2]) // torn mid-frame

	var hostile [8]byte
	binary.LittleEndian.PutUint32(hostile[0:4], MaxRecordFrame)
	f.Add(hostile[:])

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			typ, payload, err := readFrame(r, MaxRecordFrame)
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrBadFrame) && !errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return // a broken stream yields nothing further
			}
			// Decoded frames must survive a re-encode byte-for-byte.
			var reenc bytes.Buffer
			if werr := writeFrame(&reenc, typ, payload); werr != nil {
				t.Fatalf("re-encode: %v", werr)
			}
			body := append([]byte{typ}, payload...)
			if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(reenc.Bytes()[4:8]) {
				t.Fatal("re-encoded CRC mismatch")
			}
			// Stacked decoders must not panic on arbitrary accepted payloads.
			switch typ {
			case MsgHello:
				decodeHello(payload)
			case MsgRecord:
				DecodeRecord(payload)
			case MsgPos:
				var p Pos
				decodeControl(payload, &p)
			case MsgSnapBegin:
				var sb SnapBegin
				decodeControl(payload, &sb)
			case MsgSnapSum:
				var ss SnapSum
				decodeControl(payload, &ss)
			case MsgError:
				var em ErrorMsg
				decodeControl(payload, &em)
			}
		}
	})
}
