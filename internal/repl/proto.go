// Package repl implements WAL-shipping replication: a primary-side
// Shipper that streams snapshot generations and journal records to
// follower processes, and a Client that bootstraps a follower from the
// latest snapshot and replays the stream through the host's apply paths.
//
// The wire format reuses the durable package's framing discipline: every
// message is a length-prefixed, CRC-32C-checksummed frame
//
//	length uint32 | crc32c(body) uint32 | body
//
// where body is one type byte followed by the payload. Control messages
// carry JSON and are capped at 64 KB; record and snapshot-chunk frames
// carry binary payloads capped at the journal's 64 MB frame limit. A
// corrupt frame is indistinguishable from a hostile peer, so decoders
// fail hard with ErrBadFrame and the client responds by distrusting its
// entire state and re-syncing from a snapshot.
package repl

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ProtoMagic opens every connection in both directions; it keeps a
// follower from streaming frames into an unrelated listener (or vice
// versa) before any state moves.
const ProtoMagic = "EILREPL1"

// ProtoFormat versions the control-message schema.
const ProtoFormat = 1

// Message types. Control messages (JSON payload) are small; MsgRecord and
// MsgSnapData carry binary payloads up to MaxRecordFrame.
const (
	MsgHello     byte = 1 // follower→primary: identity + resume position
	MsgSnapBegin byte = 2 // primary→follower: snapshot transfer starts
	MsgSnapData  byte = 3 // primary→follower: raw component chunk
	MsgSnapSum   byte = 4 // primary→follower: per-component CRC trailer
	MsgSnapEnd   byte = 5 // primary→follower: snapshot complete, tail follows
	MsgTail      byte = 6 // primary→follower: resuming stream at your position
	MsgRecord    byte = 7 // primary→follower: one journal record
	MsgRotate    byte = 8 // primary→follower: primary checkpointed; new generation
	MsgPos       byte = 9 // both ways: position report (follower ack / primary heartbeat)
	MsgError     byte = 10
	MsgFence     byte = 11 // primary→follower: your epoch is stale (or mine is); fencing verdict
)

const (
	// MaxControlFrame bounds handshake and control payloads.
	MaxControlFrame = 64 << 10
	// MaxRecordFrame bounds record and snapshot-chunk payloads; it matches
	// the journal's own frame limit, since records are relayed verbatim.
	MaxRecordFrame = 64 << 20
	// SnapChunk is the snapshot streaming chunk size.
	SnapChunk = 256 << 10
	// initialFrameAlloc caps the buffer allocated before any payload bytes
	// have actually arrived, so a hostile length prefix cannot force a
	// 64 MB allocation from a 9-byte input.
	initialFrameAlloc = 64 << 10
)

// ErrBadFrame marks CRC, length, or structural violations: the stream can
// no longer be trusted at all, as opposed to an I/O error (retryable at
// the same position).
var ErrBadFrame = errors.New("repl: bad frame")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Hello is the follower's opening message.
type Hello struct {
	Format int    `json:"format"`
	Name   string `json:"name"`
	Shard  string `json:"shard,omitempty"`
	// Have reports whether the follower holds replayable local state; when
	// true, Gen/Seq is the position it can resume from.
	Have bool   `json:"have"`
	Gen  uint64 `json:"gen"`
	Seq  uint64 `json:"seq"`
	// Epoch is the fencing term the follower's state was written under.
	// Pre-failover peers omit it and are treated as epoch 0.
	Epoch uint64 `json:"epoch,omitempty"`
}

// Pos is a (generation, sequence) position report. Seq is the global
// record counter — the number of journal records applied since the
// lineage began — and is the coordinate all routing and lag math uses;
// Gen names the snapshot generation the position's history runs through.
type Pos struct {
	Gen uint64 `json:"gen"`
	Seq uint64 `json:"seq"`
	// Epoch, on primary→follower positions (MsgTail, MsgRotate, heartbeat
	// MsgPos), is the shipper's current fencing term; followers adopt it.
	// Follower acks echo their own term. Zero means pre-failover.
	Epoch uint64 `json:"epoch,omitempty"`
}

// SnapComponent names one snapshot component and its raw container size.
type SnapComponent struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
}

// SnapBegin announces a snapshot transfer: the generation being shipped,
// the sequence number its state folds in, and the component manifest in
// transfer order.
type SnapBegin struct {
	Gen        uint64          `json:"gen"`
	Seq        uint64          `json:"seq"`
	Epoch      uint64          `json:"epoch,omitempty"`
	Components []SnapComponent `json:"components"`
}

// SnapSum closes one component: the CRC-32C of its raw bytes as sent.
type SnapSum struct {
	Name string `json:"name"`
	CRC  uint32 `json:"crc"`
}

// ErrorMsg is a terminal refusal. Resync tells the follower its position
// is unserviceable and the next attempt must request a full snapshot.
type ErrorMsg struct {
	Msg    string `json:"msg"`
	Resync bool   `json:"resync,omitempty"`
}

// Fence is the shipper's fencing verdict on a stale peer. Epoch is the
// current term the peer must adopt. Resync tells a fenced ex-primary its
// local history diverged past the promotion seal and only a snapshot
// re-sync can rejoin it; without Resync the peer merely learned of a newer
// term (e.g. the shipper itself was fenced by a newer primary) and should
// re-point. Msg is diagnostic.
type Fence struct {
	Epoch  uint64 `json:"epoch"`
	Resync bool   `json:"resync,omitempty"`
	Msg    string `json:"msg,omitempty"`
}

// decodeFence validates a fencing verdict: a zero epoch can never fence
// anything, so it is a framing violation rather than a legal message.
func decodeFence(payload []byte) (Fence, error) {
	var f Fence
	if err := decodeControl(payload, &f); err != nil {
		return Fence{}, err
	}
	if f.Epoch == 0 {
		return Fence{}, fmt.Errorf("%w: fence with zero epoch", ErrBadFrame)
	}
	if len(f.Msg) > 1024 {
		return Fence{}, fmt.Errorf("%w: fence message too long", ErrBadFrame)
	}
	return f, nil
}

// Record is one replicated journal record: the primary's sequence number
// after appending it, the journal op kind, and the op payload verbatim.
type Record struct {
	Seq     uint64
	Kind    uint8
	Payload []byte
}

// EncodeRecord lays a record out as seq uint64 | kind uint8 | payload.
func EncodeRecord(rec Record) []byte {
	buf := make([]byte, 9+len(rec.Payload))
	binary.LittleEndian.PutUint64(buf, rec.Seq)
	buf[8] = rec.Kind
	copy(buf[9:], rec.Payload)
	return buf
}

// DecodeRecord parses an EncodeRecord payload.
func DecodeRecord(p []byte) (Record, error) {
	if len(p) < 9 {
		return Record{}, fmt.Errorf("%w: record payload %d bytes", ErrBadFrame, len(p))
	}
	return Record{
		Seq:     binary.LittleEndian.Uint64(p),
		Kind:    p[8],
		Payload: p[9:],
	}, nil
}

// writeFrame emits one frame: length | crc32c | type byte | payload.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	body := make([]byte, 1+len(payload))
	body[0] = typ
	copy(body[1:], payload)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(body, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// writeJSON emits a control frame with a JSON payload.
func writeJSON(w io.Writer, typ byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return writeFrame(w, typ, payload)
}

// readFrame reads one frame, verifying length bounds and CRC. The buffer
// is grown as bytes arrive rather than allocated up front, so the largest
// allocation a malicious length prefix can cause without sending the
// bytes to back it is initialFrameAlloc.
func readFrame(r io.Reader, limit uint32) (byte, []byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if length == 0 || length > limit {
		return 0, nil, fmt.Errorf("%w: frame length %d (limit %d)", ErrBadFrame, length, limit)
	}
	alloc := length
	if alloc > initialFrameAlloc {
		alloc = initialFrameAlloc
	}
	body := make([]byte, 0, alloc)
	for uint32(len(body)) < length {
		chunk := length - uint32(len(body))
		if chunk > initialFrameAlloc {
			chunk = initialFrameAlloc
		}
		start := len(body)
		body = append(body, make([]byte, chunk)...)
		if _, err := io.ReadFull(r, body[start:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, nil, err
		}
	}
	if got := crc32.Checksum(body, castagnoli); got != want {
		return 0, nil, fmt.Errorf("%w: crc mismatch got=%08x want=%08x", ErrBadFrame, got, want)
	}
	return body[0], body[1:], nil
}

// decodeControl parses a JSON control payload into v, treating malformed
// JSON as a framing violation.
func decodeControl(payload []byte, v any) error {
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("%w: control payload: %v", ErrBadFrame, err)
	}
	return nil
}

// decodeHello validates a handshake payload with hard caps on the
// identity strings, so a hostile hello cannot smuggle unbounded data past
// the frame limit checks into long-lived per-connection state.
func decodeHello(payload []byte) (Hello, error) {
	var h Hello
	if err := decodeControl(payload, &h); err != nil {
		return Hello{}, err
	}
	if h.Format != ProtoFormat {
		return Hello{}, fmt.Errorf("%w: hello format %d (want %d)", ErrBadFrame, h.Format, ProtoFormat)
	}
	if len(h.Name) > 256 || len(h.Shard) > 256 {
		return Hello{}, fmt.Errorf("%w: hello identity too long", ErrBadFrame)
	}
	return h, nil
}
