package repl

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// Fault-injection sites on the replication connection. Send faults model
// a partitioned or flaky network between primary and follower; corrupt
// flips a byte in flight so the follower's CRC check has something real
// to catch.
const (
	SiteSend    = "repl.send"
	SiteRecv    = "repl.recv"
	SiteCorrupt = "repl.corrupt"
)

// Source is what a Shipper serves from: the host maps a shard name to its
// ship log and can cut a transferable snapshot on demand.
type Source interface {
	// TailLog returns the ship log for a shard ("" for an unsharded
	// primary). The log must already be live-tapped by the journal path.
	TailLog(shard string) (*Log, error)
	// Snapshot opens the latest snapshot generation for transfer,
	// checkpointing first if the ship log no longer covers the last
	// checkpoint. The caller owns closing the component readers.
	Snapshot(shard string) (*Snapshot, error)
}

// EpochInfo is a source's fencing state for one shard: the term it is
// currently writing under, and the (previous term, sealed sequence) pair
// describing the promotion that started it — the coordinates the shipper
// uses to tell a safe prefix from a divergent suffix.
type EpochInfo struct {
	Epoch     uint64
	PrevEpoch uint64
	SealedSeq uint64
}

// EpochSource is optionally implemented by Sources that participate in
// fenced failover. A Source without it ships at epoch 0 (pre-failover
// behavior, no fencing).
type EpochSource interface {
	EpochInfo(shard string) EpochInfo
}

// Snapshot is an open, transferable snapshot generation: its position and
// the raw component containers. Readers are opened before transfer starts,
// so a concurrent checkpoint pruning the generation cannot tear the copy.
type Snapshot struct {
	Gen        uint64
	Seq        uint64
	Components []SnapshotComponent
}

// SnapshotComponent is one raw component container ready to stream.
type SnapshotComponent struct {
	Name string
	Size int64
	R    io.ReadCloser
}

// Close closes every component reader.
func (s *Snapshot) Close() {
	for _, c := range s.Components {
		if c.R != nil {
			_ = c.R.Close()
		}
	}
}

// FollowerStatus is one connected follower as the primary sees it.
type FollowerStatus struct {
	Name        string    `json:"name"`
	Shard       string    `json:"shard,omitempty"`
	Addr        string    `json:"addr"`
	AckGen      uint64    `json:"ack_gen"`
	AckSeq      uint64    `json:"ack_seq"`
	LagRecords  uint64    `json:"lag_records"`
	Snapshotted bool      `json:"snapshotted"` // bootstrapped via full transfer this connection
	ConnectedAt time.Time `json:"connected_at"`
}

// Shipper accepts follower connections and streams each one the snapshot
// and/or journal tail it needs. One Shipper can serve many shards (a
// cluster primary runs a single listener; each follower names its shard
// in the handshake).
type Shipper struct {
	Source  Source
	Metrics *obs.Registry
	Logf    func(format string, args ...any)
	// Heartbeat paces idle MsgPos frames so followers can measure lag even
	// with no write traffic (0 = 500ms).
	Heartbeat time.Duration
	// Faults, when set, wraps every accepted connection in the injection
	// seam (sites repl.send / repl.recv / repl.corrupt).
	Faults *fault.Injector
	// OnFenced, when set, is invoked (once per observation, possibly from
	// several connection goroutines) when a peer's hello proves a newer
	// epoch exists: this shipper is the stale side of a partition and its
	// host must stop accepting writes and demote itself.
	OnFenced func(newerEpoch uint64)

	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	lis    net.Listener
	conns  map[net.Conn]*connState
	closed bool
	wg     sync.WaitGroup
}

type connState struct {
	mu          sync.Mutex
	name        string
	shard       string
	addr        string
	ackGen      uint64
	ackSeq      uint64
	headSeq     uint64
	snapshotted bool
	connectedAt time.Time
}

func (sh *Shipper) logf(format string, args ...any) {
	if sh.Logf != nil {
		sh.Logf(format, args...)
	}
}

func (sh *Shipper) counter(name string, kv ...string) *obs.Counter {
	if sh.Metrics == nil {
		return nil
	}
	return sh.Metrics.Counter(name, kv...)
}

func inc(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

func add(c *obs.Counter, n int64) {
	if c != nil {
		c.Add(n)
	}
}

// Serve accepts follower connections on lis until Close. It blocks; run
// it on its own goroutine. Accept errors after Close return nil.
func (sh *Shipper) Serve(lis net.Listener) error {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return errors.New("repl: shipper closed")
	}
	sh.lis = lis
	if sh.conns == nil {
		sh.conns = make(map[net.Conn]*connState)
	}
	if sh.ctx == nil {
		sh.ctx, sh.cancel = context.WithCancel(context.Background())
	}
	sh.mu.Unlock()

	for {
		conn, err := lis.Accept()
		if err != nil {
			sh.mu.Lock()
			closed := sh.closed
			sh.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		sh.mu.Lock()
		if sh.closed {
			sh.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		st := &connState{addr: conn.RemoteAddr().String(), connectedAt: time.Now()}
		sh.conns[conn] = st
		sh.wg.Add(1)
		sh.mu.Unlock()
		go func() {
			defer sh.wg.Done()
			sh.serveConn(conn, st)
		}()
	}
}

// Close stops accepting, closes every follower connection, and waits for
// the per-connection goroutines to drain.
func (sh *Shipper) Close() error {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return nil
	}
	sh.closed = true
	lis := sh.lis
	if sh.cancel != nil {
		sh.cancel()
	}
	for conn := range sh.conns {
		_ = conn.Close()
	}
	sh.mu.Unlock()
	if lis != nil {
		_ = lis.Close()
	}
	sh.wg.Wait()
	return nil
}

// Status reports every connected follower.
func (sh *Shipper) Status() []FollowerStatus {
	sh.mu.Lock()
	states := make([]*connState, 0, len(sh.conns))
	for _, st := range sh.conns {
		states = append(states, st)
	}
	sh.mu.Unlock()
	out := make([]FollowerStatus, 0, len(states))
	for _, st := range states {
		st.mu.Lock()
		fs := FollowerStatus{
			Name:        st.name,
			Shard:       st.shard,
			Addr:        st.addr,
			AckGen:      st.ackGen,
			AckSeq:      st.ackSeq,
			Snapshotted: st.snapshotted,
			ConnectedAt: st.connectedAt,
		}
		if st.headSeq > st.ackSeq {
			fs.LagRecords = st.headSeq - st.ackSeq
		}
		st.mu.Unlock()
		out = append(out, fs)
	}
	return out
}

func (sh *Shipper) dropConn(conn net.Conn) {
	sh.mu.Lock()
	delete(sh.conns, conn)
	sh.mu.Unlock()
	_ = conn.Close()
}

// serveConn runs one follower for the life of its connection: handshake,
// snapshot transfer if the follower's position is gone from the ship log,
// then the live tail until either side drops.
func (sh *Shipper) serveConn(rawConn net.Conn, st *connState) {
	defer sh.dropConn(rawConn)

	var conn net.Conn = rawConn
	if sh.Faults != nil {
		conn = &faultConn{Conn: rawConn, ctx: fault.With(context.Background(), sh.Faults)}
	}

	if sh.Metrics != nil {
		sh.Metrics.Gauge("eil_repl_connected_followers").Add(1)
		defer sh.Metrics.Gauge("eil_repl_connected_followers").Add(-1)
	}

	_ = rawConn.SetReadDeadline(time.Now().Add(10 * time.Second))
	var magic [8]byte
	if _, err := io.ReadFull(conn, magic[:]); err != nil {
		sh.logf("repl: handshake read: %v", err)
		return
	}
	if string(magic[:]) != ProtoMagic {
		sh.logf("repl: bad magic from %s", st.addr)
		return
	}
	typ, payload, err := readFrame(conn, MaxControlFrame)
	if err != nil || typ != MsgHello {
		sh.logf("repl: handshake frame from %s: type=%d err=%v", st.addr, typ, err)
		return
	}
	hello, err := decodeHello(payload)
	if err != nil {
		sh.logf("repl: hello from %s: %v", st.addr, err)
		return
	}
	_ = rawConn.SetReadDeadline(time.Time{})
	st.mu.Lock()
	st.name, st.shard = hello.Name, hello.Shard
	st.mu.Unlock()

	if _, err := conn.Write([]byte(ProtoMagic)); err != nil {
		return
	}

	// Fencing: compare the peer's epoch against ours before any state moves.
	var ep EpochInfo
	if es, ok := sh.Source.(EpochSource); ok {
		ep = es.EpochInfo(hello.Shard)
	}
	if hello.Epoch > ep.Epoch {
		// The peer lived through a promotion we missed: we are the stale
		// side of the partition. Tell the peer, tell the host, and stop
		// shipping — every byte we would send extends a dead lineage.
		sh.logf("repl: fenced by %s (%s): peer epoch %d > ours %d", hello.Name, st.addr, hello.Epoch, ep.Epoch)
		_ = writeJSON(conn, MsgFence, Fence{Epoch: hello.Epoch, Msg: "shipper epoch stale"})
		inc(sh.counter("eil_repl_fences_total", "dir", "self"))
		if sh.OnFenced != nil {
			sh.OnFenced(hello.Epoch)
		}
		return
	}
	if hello.Epoch < ep.Epoch && hello.Have {
		// A stale peer with state can tail-resume only if that state is a
		// strict prefix of ours: written under the epoch we were promoted
		// from, at or before the sequence the promotion sealed. Anything
		// else (the dead primary's unshipped suffix, or a peer more than
		// one promotion behind) diverged and must re-sync from a snapshot.
		if hello.Epoch != ep.PrevEpoch || hello.Seq > ep.SealedSeq {
			sh.logf("repl: fencing %s (%s): epoch %d seq %d diverges from sealed (%d, %d)",
				hello.Name, st.addr, hello.Epoch, hello.Seq, ep.PrevEpoch, ep.SealedSeq)
			_ = writeJSON(conn, MsgFence, Fence{Epoch: ep.Epoch, Resync: true, Msg: "stale epoch with divergent history; re-sync"})
			inc(sh.counter("eil_repl_fences_total", "dir", "peer"))
			return
		}
	}

	log, err := sh.Source.TailLog(hello.Shard)
	if err != nil {
		_ = writeJSON(conn, MsgError, ErrorMsg{Msg: err.Error()})
		return
	}

	// Decide tail-resume vs full bootstrap. The ship log is append-only
	// concurrent with this, so a cursor valid here stays valid (eviction
	// can invalidate it later; the tail loop re-syncs the follower then by
	// dropping the connection with a resync error).
	var cursor uint64
	resumed := false
	if hello.Have {
		if c, ok := log.CursorFor(hello.Seq); ok {
			cursor = c
			resumed = true
		}
	}
	if resumed {
		gen, _ := log.Head()
		if err := writeJSON(conn, MsgTail, Pos{Gen: gen, Seq: hello.Seq, Epoch: ep.Epoch}); err != nil {
			return
		}
		sh.logf("repl: follower %s (%s) tailing from seq %d", hello.Name, st.addr, hello.Seq)
	} else {
		snap, err := sh.Source.Snapshot(hello.Shard)
		if err != nil {
			sh.logf("repl: snapshot for %s: %v", hello.Name, err)
			_ = writeJSON(conn, MsgError, ErrorMsg{Msg: fmt.Sprintf("snapshot: %v", err)})
			return
		}
		c, ok := log.CursorFor(snap.Seq)
		if !ok {
			snap.Close()
			_ = writeJSON(conn, MsgError, ErrorMsg{Msg: "snapshot position already evicted from ship log"})
			return
		}
		cursor = c
		err = sh.sendSnapshot(conn, snap, ep.Epoch)
		snap.Close()
		if err != nil {
			sh.logf("repl: snapshot transfer to %s: %v", hello.Name, err)
			return
		}
		st.mu.Lock()
		st.snapshotted = true
		st.ackGen, st.ackSeq = snap.Gen, snap.Seq
		st.mu.Unlock()
		inc(sh.counter("eil_repl_snapshots_shipped_total"))
		sh.logf("repl: follower %s (%s) bootstrapped from gen %d seq %d", hello.Name, st.addr, snap.Gen, snap.Seq)
	}

	// Ack reader: drains follower position reports; any read error tears
	// down the connection, which unblocks the tail loop's writes.
	go func() {
		for {
			typ, payload, err := readFrame(conn, MaxControlFrame)
			if err != nil {
				_ = rawConn.Close()
				return
			}
			if typ != MsgPos {
				continue
			}
			var pos Pos
			if decodeControl(payload, &pos) != nil {
				_ = rawConn.Close()
				return
			}
			st.mu.Lock()
			st.ackGen, st.ackSeq = pos.Gen, pos.Seq
			head := st.headSeq
			st.mu.Unlock()
			if sh.Metrics != nil {
				lag := float64(0)
				if head > pos.Seq {
					lag = float64(head - pos.Seq)
				}
				sh.Metrics.Gauge("eil_repl_follower_lag_records", "follower", hello.Name).Set(lag)
			}
		}
	}()

	sh.tail(conn, rawConn, log, st, cursor, ep.Epoch)
}

// sendSnapshot streams every component in 256 KB chunks, each chunk its
// own CRC-framed message, with a per-component running-CRC trailer.
func (sh *Shipper) sendSnapshot(conn net.Conn, snap *Snapshot, epoch uint64) error {
	begin := SnapBegin{Gen: snap.Gen, Seq: snap.Seq, Epoch: epoch}
	for _, c := range snap.Components {
		begin.Components = append(begin.Components, SnapComponent{Name: c.Name, Size: c.Size})
	}
	if err := writeJSON(conn, MsgSnapBegin, begin); err != nil {
		return err
	}
	buf := make([]byte, SnapChunk)
	for _, c := range snap.Components {
		sum := uint32(0)
		var sent int64
		for sent < c.Size {
			want := c.Size - sent
			if want > int64(len(buf)) {
				want = int64(len(buf))
			}
			n, err := io.ReadFull(c.R, buf[:want])
			if err != nil {
				return fmt.Errorf("read component %s: %w", c.Name, err)
			}
			sum = crc32.Update(sum, castagnoli, buf[:n])
			if err := writeFrame(conn, MsgSnapData, buf[:n]); err != nil {
				return err
			}
			sent += int64(n)
			add(sh.counter("eil_repl_bytes_shipped_total"), int64(n))
		}
		if err := writeJSON(conn, MsgSnapSum, SnapSum{Name: c.Name, CRC: sum}); err != nil {
			return err
		}
	}
	return writeJSON(conn, MsgSnapEnd, struct{}{})
}

// tail streams ship-log entries from cursor until the connection drops,
// the shipper closes, or the cursor is evicted (follower too slow — it is
// told to re-sync).
func (sh *Shipper) tail(conn net.Conn, rawConn net.Conn, log *Log, st *connState, cursor uint64, epoch uint64) {
	hb := sh.Heartbeat
	if hb <= 0 {
		hb = 500 * time.Millisecond
	}
	timer := time.NewTimer(hb)
	defer timer.Stop()
	recs := sh.counter("eil_repl_records_shipped_total")
	bytes := sh.counter("eil_repl_bytes_shipped_total")
	for {
		ch := log.WaitCh()
		batch, next, ok := log.From(cursor)
		if !ok {
			inc(sh.counter("eil_repl_evictions_total"))
			_ = writeJSON(conn, MsgError, ErrorMsg{Msg: "position evicted from ship log; re-sync", Resync: true})
			return
		}
		if len(batch) == 0 {
			select {
			case <-ch:
				continue
			case <-timer.C:
				gen, seq := log.Head()
				st.mu.Lock()
				st.headSeq = seq
				st.mu.Unlock()
				_ = rawConn.SetWriteDeadline(time.Now().Add(10 * time.Second))
				if err := writeJSON(conn, MsgPos, Pos{Gen: gen, Seq: seq, Epoch: epoch}); err != nil {
					return
				}
				timer.Reset(hb)
				continue
			case <-sh.ctx.Done():
				return
			}
		}
		for _, e := range batch {
			_ = rawConn.SetWriteDeadline(time.Now().Add(30 * time.Second))
			var err error
			if e.Rotate {
				err = writeJSON(conn, MsgRotate, Pos{Gen: e.Gen, Seq: e.Seq, Epoch: epoch})
			} else {
				payload := EncodeRecord(Record{Seq: e.Seq, Kind: e.Kind, Payload: e.Payload})
				err = writeFrame(conn, MsgRecord, payload)
				inc(recs)
				add(bytes, int64(len(payload)))
			}
			if err != nil {
				inc(sh.counter("eil_repl_ship_errors_total"))
				return
			}
			st.mu.Lock()
			st.headSeq = e.Seq
			st.mu.Unlock()
		}
		_ = rawConn.SetWriteDeadline(time.Time{})
		cursor = next
	}
}

// faultConn routes reads and writes through the fault injector so chaos
// tests can partition the stream mid-frame (repl.send, ModePartial), fail
// it outright (ModeError), or corrupt bytes in flight (repl.corrupt).
type faultConn struct {
	net.Conn
	ctx context.Context
}

func (c *faultConn) Write(p []byte) (int, error) {
	if fault.Inject(c.ctx, SiteCorrupt) != nil && len(p) > 0 {
		// Deliver the frame fully but with one byte flipped: the peer's
		// CRC check, not a transport error, must catch this.
		bad := append([]byte(nil), p...)
		bad[len(bad)/2] ^= 0xFF
		return c.Conn.Write(bad)
	}
	if keep := fault.Keep(c.ctx, SiteSend, len(p)); keep < len(p) {
		n, _ := c.Conn.Write(p[:keep])
		_ = c.Conn.Close()
		return n, fmt.Errorf("repl: injected partial write (%d of %d bytes)", keep, len(p))
	}
	if err := fault.Inject(c.ctx, SiteSend); err != nil {
		_ = c.Conn.Close()
		return 0, err
	}
	return c.Conn.Write(p)
}

func (c *faultConn) Read(p []byte) (int, error) {
	if err := fault.Inject(c.ctx, SiteRecv); err != nil {
		_ = c.Conn.Close()
		return 0, err
	}
	return c.Conn.Read(p)
}
