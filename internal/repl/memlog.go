package repl

import (
	"sort"
	"sync"
)

// Entry is one shippable event: a journal record, or a rotate marker
// noting the primary checkpointed into a new generation at this sequence.
type Entry struct {
	Seq     uint64
	Kind    uint8
	Payload []byte
	Rotate  bool
	Gen     uint64 // new generation, rotate entries only
}

// Log is the primary's bounded in-memory ship buffer. The journal tap
// appends every record (and every checkpoint rotation) here; each
// follower connection holds a cursor and drains independently.
//
// Cursors are absolute entry indexes, not sequence numbers: rotate
// entries share the sequence number of the record before them, so a
// seq-addressed cursor could never step past one. CursorFor maps a resume
// sequence to the index just after it; From either returns entries or
// reports the cursor fell below the eviction floor, in which case the
// follower is too far behind to tail and must re-bootstrap from a
// snapshot.
type Log struct {
	mu         sync.Mutex
	entries    []Entry
	baseIdx    uint64 // absolute index of entries[0]
	floorSeq   uint64 // resume positions >= floorSeq can still tail
	gen        uint64 // generation the head of the log lives in
	headSeq    uint64
	bytes      int64
	maxBytes   int64
	maxEntries int
	changed    chan struct{}
}

// NewLog starts a ship log whose history begins at (gen, seq) — the
// primary's position when shipping was enabled. Zero limits choose
// defaults (8192 entries, 64 MB of payload).
func NewLog(gen, seq uint64, maxEntries int, maxBytes int64) *Log {
	if maxEntries <= 0 {
		maxEntries = 8192
	}
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	return &Log{
		floorSeq:   seq,
		headSeq:    seq,
		gen:        gen,
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		changed:    make(chan struct{}),
	}
}

func entrySize(e Entry) int64 { return int64(len(e.Payload)) + 48 }

// Append adds an entry at the head and evicts from the tail while over
// either bound. Waiters registered via WaitCh before this append are
// woken.
func (l *Log) Append(e Entry) {
	l.mu.Lock()
	l.entries = append(l.entries, e)
	l.bytes += entrySize(e)
	l.headSeq = e.Seq
	if e.Rotate {
		l.gen = e.Gen
	}
	for len(l.entries) > 1 && (len(l.entries) > l.maxEntries || l.bytes > l.maxBytes) {
		drop := l.entries[0]
		l.entries[0] = Entry{}
		l.entries = l.entries[1:]
		l.baseIdx++
		l.bytes -= entrySize(drop)
		l.floorSeq = drop.Seq
	}
	close(l.changed)
	l.changed = make(chan struct{})
	l.mu.Unlock()
}

// Head reports the generation and sequence at the head of the log.
func (l *Log) Head() (gen, seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gen, l.headSeq
}

// Covers reports whether a follower resuming after seq can still tail, or
// whether that history has been evicted.
func (l *Log) Covers(seq uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return seq >= l.floorSeq
}

// CursorFor maps a resume sequence (every record <= seq already applied)
// to the absolute index of the first entry to ship. ok is false when that
// history has been evicted.
func (l *Log) CursorFor(seq uint64) (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq < l.floorSeq {
		return 0, false
	}
	// Entries are seq-nondecreasing; ship everything with Seq > seq.
	// Rotate entries at exactly seq are skipped deliberately: a follower
	// resuming at seq has already checkpointed that position.
	i := sort.Search(len(l.entries), func(i int) bool { return l.entries[i].Seq > seq })
	return l.baseIdx + uint64(i), true
}

// From returns every entry at or after the absolute cursor, plus the
// cursor one past what was returned. ok is false when the cursor's
// history has been evicted (follower must re-sync).
func (l *Log) From(cursor uint64) (batch []Entry, next uint64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if cursor < l.baseIdx {
		return nil, 0, false
	}
	off := cursor - l.baseIdx
	if off >= uint64(len(l.entries)) {
		return nil, cursor, true
	}
	batch = append(batch, l.entries[off:]...)
	return batch, l.baseIdx + uint64(len(l.entries)), true
}

// WaitCh returns a channel closed by the next Append. Take it before
// calling From: an append landing between the two closes the channel you
// already hold, so the select never misses it.
func (l *Log) WaitCh() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.changed
}
