package repl

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{
		nil,
		{},
		[]byte("x"),
		bytes.Repeat([]byte{0xAB}, SnapChunk),
	}
	for i, p := range payloads {
		if err := writeFrame(&buf, MsgRecord, p); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i, p := range payloads {
		typ, got, err := readFrame(&buf, MaxRecordFrame)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if typ != MsgRecord {
			t.Fatalf("read %d: type = %d", i, typ)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("read %d: payload mismatch (%d vs %d bytes)", i, len(got), len(p))
		}
	}
}

func TestFrameCRCMismatchIsBadFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, MsgRecord, []byte("hello replication")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0x01 // flip one payload bit
	_, _, err := readFrame(bytes.NewReader(raw), MaxRecordFrame)
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v, want ErrBadFrame", err)
	}
}

func TestFrameOversizeLengthIsBadFrame(t *testing.T) {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], MaxControlFrame+1)
	_, _, err := readFrame(bytes.NewReader(hdr[:]), MaxControlFrame)
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v, want ErrBadFrame", err)
	}
}

func TestFrameTruncationIsIOError(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, MsgRecord, bytes.Repeat([]byte("a"), 1024)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()/2]
	_, _, err := readFrame(bytes.NewReader(raw), MaxRecordFrame)
	if err == nil || errors.Is(err, ErrBadFrame) {
		// A cut connection mid-frame must read as an I/O error (retry at the
		// same position), not a framing violation (forced re-sync).
		t.Fatalf("err = %v, want plain I/O error", err)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want unexpected EOF", err)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	rec := Record{Seq: 1<<40 + 7, Kind: 3, Payload: []byte("payload bytes")}
	got, err := DecodeRecord(EncodeRecord(rec))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != rec.Seq || got.Kind != rec.Kind || !bytes.Equal(got.Payload, rec.Payload) {
		t.Fatalf("round trip: %+v != %+v", got, rec)
	}
	if _, err := DecodeRecord([]byte{1, 2, 3}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short record err = %v, want ErrBadFrame", err)
	}
}

func TestHelloRoundTripAndLimits(t *testing.T) {
	var buf bytes.Buffer
	want := Hello{Format: ProtoFormat, Name: "f1", Shard: "shard-0002", Gen: 9, Seq: 512, Have: true}
	if err := writeJSON(&buf, MsgHello, want); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(&buf, MaxControlFrame)
	if err != nil || typ != MsgHello {
		t.Fatalf("read: type %d, err %v", typ, err)
	}
	got, err := decodeHello(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("hello = %+v, want %+v", got, want)
	}

	if err := decodeHelloJSON(t, Hello{Format: ProtoFormat, Name: strings.Repeat("n", 300)}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("long name err = %v, want ErrBadFrame", err)
	}
	if err := decodeHelloJSON(t, Hello{Format: ProtoFormat + 1, Name: "x"}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("format err = %v, want ErrBadFrame", err)
	}
}

// decodeHelloJSON round-trips a Hello through the wire and returns the
// decode error.
func decodeHelloJSON(t *testing.T, h Hello) error {
	t.Helper()
	var buf bytes.Buffer
	if err := writeJSON(&buf, MsgHello, h); err != nil {
		t.Fatal(err)
	}
	_, payload, err := readFrame(&buf, MaxControlFrame)
	if err != nil {
		t.Fatal(err)
	}
	_, derr := decodeHello(payload)
	return derr
}

// TestReadFrameAllocationBounded proves a hostile length prefix cannot
// force a large allocation: the reader grows its buffer only as payload
// bytes actually arrive.
func TestReadFrameAllocationBounded(t *testing.T) {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], MaxRecordFrame) // claims 64 MB
	body := []byte{MsgRecord}                               // delivers 1 byte
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(body, castagnoli))
	// initialFrameAlloc caps the up-front buffer, so the only way to make
	// the reader hold 64 MB is to actually send 64 MB; a 9-byte hostile
	// prefix fails fast with an I/O error instead.
	r := bytes.NewReader(append(hdr[:], body...))
	_, _, err := readFrame(r, MaxRecordFrame)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want unexpected EOF (truncated hostile frame)", err)
	}
}
