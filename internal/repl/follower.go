package repl

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// Sink is the follower host's apply surface. One Client goroutine calls
// it sequentially; implementations never see concurrent calls.
type Sink interface {
	// Position reports the local replayable position; have is false when
	// the follower holds no state and must bootstrap.
	Position() (gen, seq uint64, have bool)
	// BeginSnapshot starts installing a full snapshot at (gen, seq).
	BeginSnapshot(gen, seq uint64) (SnapshotInstaller, error)
	// Apply replays one journal record. Any error drops the connection and
	// retries; a sequence gap is an error by contract.
	Apply(rec Record) error
	// Rotate records that the primary checkpointed into gen with every
	// record through seq folded in — the follower's cue to checkpoint
	// locally so restarts resume from here.
	Rotate(gen, seq uint64) error
	// Advance reports the primary's head position (heartbeat); purely
	// informational, for lag measurement.
	Advance(gen, seq uint64)
}

// EpochSink is optionally implemented by Sinks that participate in fenced
// failover: Epoch is the term the local state was last written under
// (sent in the hello), and AdoptEpoch durably records a newer term learned
// from the primary's positions, so a restart hellos with the right one. A
// Sink without it replicates at epoch 0.
type EpochSink interface {
	Epoch() uint64
	AdoptEpoch(epoch uint64) error
}

// FenceError is the typed terminal error a session returns when the
// primary fenced this client: a newer epoch exists. Resync reports the
// verdict that local history diverged (the client has already armed a
// snapshot re-sync for its next attempt).
type FenceError struct {
	Epoch  uint64
	Resync bool
	Msg    string
}

func (e *FenceError) Error() string {
	return fmt.Sprintf("repl: fenced at epoch %d (resync=%v): %s", e.Epoch, e.Resync, e.Msg)
}

// SnapshotInstaller receives one snapshot transfer. Components arrive in
// manifest order; Commit lands after the last one verifies.
type SnapshotInstaller interface {
	Component(name string, size int64, r io.Reader) error
	Commit() error
	Abort()
}

// ClientStatus is a point-in-time view of the replication client.
type ClientStatus struct {
	State       string    `json:"state"` // connecting | snapshot | streaming | backoff
	LastError   string    `json:"last_error,omitempty"`
	Resyncs     uint64    `json:"resyncs"`
	Reconnects  uint64    `json:"reconnects"`
	Applied     uint64    `json:"applied_records"`
	FencedBy    uint64    `json:"fenced_by,omitempty"` // newest epoch a fence verdict named
	ConnectedAt time.Time `json:"connected_at,omitempty"`
}

// Client maintains the follower's connection to the primary: it dials,
// hands over its position, installs a snapshot when the primary says its
// position is unserviceable, and replays the stream into the Sink,
// reconnecting with backoff forever until its context cancels.
//
// Trust policy: a transport error (reset, EOF — including one injected
// mid-frame) retries at the same position, because every applied record
// already passed its CRC. A framing violation (ErrBadFrame: bad CRC,
// hostile length, malformed control payload) forces a full snapshot
// re-sync on the next attempt — once one frame lies, the stream's history
// is no longer evidence of anything.
type Client struct {
	Addr    string
	Name    string
	Shard   string
	Sink    Sink
	Metrics *obs.Registry
	Logf    func(format string, args ...any)
	// Faults, when set, wraps the dialed connection in the injection seam.
	Faults *fault.Injector
	// AckEvery paces position reports back to the primary (0 = 200ms).
	AckEvery time.Duration
	// Backoff caps the reconnect delay (0 = 2s).
	Backoff time.Duration

	forceResync atomic.Bool
	state       atomic.Value // string
	lastErr     atomic.Value // string
	resyncs     atomic.Uint64
	reconnects  atomic.Uint64
	applied     atomic.Uint64
	fencedBy    atomic.Uint64
	connectedAt atomic.Int64 // unixnano, 0 = not connected
}

func (c *Client) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

func (c *Client) setState(s string) { c.state.Store(s) }

// Status reports the client's current state and counters.
func (c *Client) Status() ClientStatus {
	st := ClientStatus{
		Resyncs:    c.resyncs.Load(),
		Reconnects: c.reconnects.Load(),
		Applied:    c.applied.Load(),
		FencedBy:   c.fencedBy.Load(),
	}
	if v, ok := c.state.Load().(string); ok {
		st.State = v
	} else {
		st.State = "connecting"
	}
	if v, ok := c.lastErr.Load().(string); ok {
		st.LastError = v
	}
	if ns := c.connectedAt.Load(); ns != 0 {
		st.ConnectedAt = time.Unix(0, ns)
	}
	return st
}

// Run drives the reconnect loop until ctx cancels.
func (c *Client) Run(ctx context.Context) error {
	maxBackoff := c.Backoff
	if maxBackoff <= 0 {
		maxBackoff = 2 * time.Second
	}
	backoff := 50 * time.Millisecond
	for {
		c.setState("connecting")
		progressed, err := c.session(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err != nil {
			c.lastErr.Store(err.Error())
			if c.Metrics != nil {
				c.Metrics.Counter("eil_repl_client_disconnects_total").Inc()
			}
			if errors.Is(err, ErrBadFrame) {
				// The stream itself is untrustworthy: distrust local
				// incremental state and bootstrap fresh next attempt.
				c.forceResync.Store(true)
				c.logf("repl: stream integrity failure, forcing snapshot re-sync: %v", err)
			} else {
				c.logf("repl: disconnected: %v", err)
			}
		}
		if progressed {
			backoff = 50 * time.Millisecond
		}
		c.setState("backoff")
		t := time.NewTimer(backoff)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// session runs one connection to completion. progressed reports whether
// any state moved (snapshot installed or records applied), which resets
// the reconnect backoff.
func (c *Client) session(ctx context.Context) (progressed bool, err error) {
	d := net.Dialer{Timeout: 5 * time.Second}
	rawConn, err := d.DialContext(ctx, "tcp", c.Addr)
	if err != nil {
		return false, err
	}
	defer rawConn.Close()
	stop := context.AfterFunc(ctx, func() { _ = rawConn.Close() })
	defer stop()

	var conn net.Conn = rawConn
	if c.Faults != nil {
		conn = &faultConn{Conn: rawConn, ctx: fault.With(context.Background(), c.Faults)}
	}

	gen, seq, have := c.Sink.Position()
	// A first-time bootstrap (no local state) is a sync, not a re-sync:
	// only installs that replace usable incremental state — forced by a
	// framing violation, or the primary refusing our tail position — count
	// toward Resyncs.
	hadState := have
	forced := c.forceResync.Load()
	if forced {
		have = false
	}
	var myEpoch uint64
	es, hasEpoch := c.Sink.(EpochSink)
	if hasEpoch {
		myEpoch = es.Epoch()
	}
	// adopt durably records a newer term learned from the primary. It only
	// runs on positions the primary sent us while our state is a verified
	// prefix of its stream (tail grant, post-install, rotate, heartbeat) —
	// never on a fence verdict, where our local history may have diverged
	// and stamping it with the new epoch would forge a resumable position.
	adopt := func(epoch uint64) error {
		if !hasEpoch || epoch <= myEpoch {
			return nil
		}
		if err := es.AdoptEpoch(epoch); err != nil {
			return fmt.Errorf("adopt epoch %d: %w", epoch, err)
		}
		c.logf("repl: adopted epoch %d (was %d)", epoch, myEpoch)
		myEpoch = epoch
		return nil
	}
	hello := Hello{Format: ProtoFormat, Name: c.Name, Shard: c.Shard, Have: have, Gen: gen, Seq: seq, Epoch: myEpoch}
	_ = rawConn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Write([]byte(ProtoMagic)); err != nil {
		return false, err
	}
	if err := writeJSON(conn, MsgHello, hello); err != nil {
		return false, err
	}
	var magic [8]byte
	if _, err := io.ReadFull(conn, magic[:]); err != nil {
		return false, err
	}
	if string(magic[:]) != ProtoMagic {
		return false, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	_ = rawConn.SetDeadline(time.Time{})
	c.connectedAt.Store(time.Now().UnixNano())
	defer c.connectedAt.Store(0)
	c.reconnects.Add(1)

	ackEvery := c.AckEvery
	if ackEvery <= 0 {
		ackEvery = 200 * time.Millisecond
	}
	var lastAck time.Time
	ack := func(force bool) error {
		if !force && time.Since(lastAck) < ackEvery {
			return nil
		}
		lastAck = time.Now()
		_ = rawConn.SetWriteDeadline(time.Now().Add(10 * time.Second))
		defer rawConn.SetWriteDeadline(time.Time{})
		return writeJSON(conn, MsgPos, Pos{Gen: gen, Seq: seq})
	}

	for {
		typ, payload, err := readFrame(conn, MaxRecordFrame)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return progressed, err
		}
		switch typ {
		case MsgTail:
			var pos Pos
			if err := decodeControl(payload, &pos); err != nil {
				return progressed, err
			}
			gen = pos.Gen
			if err := adopt(pos.Epoch); err != nil {
				return progressed, err
			}
			c.setState("streaming")
			c.logf("repl: tailing from seq %d (primary gen %d)", seq, gen)

		case MsgSnapBegin:
			var begin SnapBegin
			if err := decodeControl(payload, &begin); err != nil {
				return progressed, err
			}
			c.setState("snapshot")
			if err := c.installSnapshot(conn, begin); err != nil {
				return progressed, err
			}
			gen, seq = begin.Gen, begin.Seq
			progressed = true
			if err := adopt(begin.Epoch); err != nil {
				return progressed, err
			}
			c.fencedBy.Store(0)
			c.forceResync.Store(false)
			if forced || hadState {
				c.resyncs.Add(1)
				if c.Metrics != nil {
					c.Metrics.Counter("eil_repl_client_resyncs_total").Inc()
				}
			}
			c.setState("streaming")
			c.logf("repl: installed snapshot gen %d seq %d", begin.Gen, begin.Seq)
			if err := ack(true); err != nil {
				return progressed, err
			}

		case MsgRecord:
			rec, err := DecodeRecord(payload)
			if err != nil {
				return progressed, err
			}
			if err := c.Sink.Apply(rec); err != nil {
				return progressed, fmt.Errorf("apply seq %d: %w", rec.Seq, err)
			}
			seq = rec.Seq
			progressed = true
			c.applied.Add(1)
			if c.Metrics != nil {
				c.Metrics.Counter("eil_repl_client_applied_total").Inc()
			}
			if err := ack(false); err != nil {
				return progressed, err
			}

		case MsgRotate:
			var pos Pos
			if err := decodeControl(payload, &pos); err != nil {
				return progressed, err
			}
			if err := adopt(pos.Epoch); err != nil {
				return progressed, err
			}
			if err := c.Sink.Rotate(pos.Gen, pos.Seq); err != nil {
				return progressed, fmt.Errorf("rotate to gen %d: %w", pos.Gen, err)
			}
			gen = pos.Gen
			progressed = true
			if err := ack(true); err != nil {
				return progressed, err
			}

		case MsgPos:
			var pos Pos
			if err := decodeControl(payload, &pos); err != nil {
				return progressed, err
			}
			if err := adopt(pos.Epoch); err != nil {
				return progressed, err
			}
			c.Sink.Advance(pos.Gen, pos.Seq)
			if err := ack(false); err != nil {
				return progressed, err
			}

		case MsgError:
			var em ErrorMsg
			if err := decodeControl(payload, &em); err != nil {
				return progressed, err
			}
			if em.Resync {
				c.forceResync.Store(true)
			}
			return progressed, fmt.Errorf("repl: primary refused: %s", em.Msg)

		case MsgFence:
			f, err := decodeFence(payload)
			if err != nil {
				return progressed, err
			}
			c.fencedBy.Store(f.Epoch)
			if f.Resync {
				// Our history diverged from the fenced lineage: distrust it
				// and bootstrap under the new epoch next attempt. The epoch
				// itself is adopted only after the install commits.
				c.forceResync.Store(true)
			}
			if c.Metrics != nil {
				c.Metrics.Counter("eil_repl_client_fences_total").Inc()
			}
			return progressed, &FenceError{Epoch: f.Epoch, Resync: f.Resync, Msg: f.Msg}

		default:
			return progressed, fmt.Errorf("%w: unexpected message type %d", ErrBadFrame, typ)
		}
	}
}

// installSnapshot receives one snapshot transfer: for each announced
// component it hands the installer a bounded reader over the MsgSnapData
// chunks, then verifies the running CRC against the MsgSnapSum trailer
// before moving on. Any mismatch aborts the install.
func (c *Client) installSnapshot(conn net.Conn, begin SnapBegin) (err error) {
	inst, err := c.Sink.BeginSnapshot(begin.Gen, begin.Seq)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			inst.Abort()
		}
	}()
	sr := &snapReader{conn: conn}
	for _, comp := range begin.Components {
		if comp.Size < 0 {
			return fmt.Errorf("%w: negative component size", ErrBadFrame)
		}
		sr.remaining = comp.Size
		sr.sum = 0
		if err := inst.Component(comp.Name, comp.Size, sr); err != nil {
			return fmt.Errorf("install component %s: %w", comp.Name, err)
		}
		if sr.remaining != 0 {
			return fmt.Errorf("component %s: installer consumed %d of %d bytes", comp.Name, comp.Size-sr.remaining, comp.Size)
		}
		typ, payload, err := readFrame(conn, MaxControlFrame)
		if err != nil {
			return err
		}
		if typ != MsgSnapSum {
			return fmt.Errorf("%w: expected snapshot trailer, got type %d", ErrBadFrame, typ)
		}
		var sum SnapSum
		if err := decodeControl(payload, &sum); err != nil {
			return err
		}
		if sum.Name != comp.Name || sum.CRC != sr.sum {
			return fmt.Errorf("%w: component %s checksum mismatch", ErrBadFrame, comp.Name)
		}
	}
	typ, _, err := readFrame(conn, MaxControlFrame)
	if err != nil {
		return err
	}
	if typ != MsgSnapEnd {
		return fmt.Errorf("%w: expected snapshot end, got type %d", ErrBadFrame, typ)
	}
	return inst.Commit()
}

// snapReader adapts the stream of MsgSnapData frames into an io.Reader
// bounded by the current component's declared size.
type snapReader struct {
	conn      net.Conn
	buf       []byte
	remaining int64
	sum       uint32
}

func (sr *snapReader) Read(p []byte) (int, error) {
	if sr.remaining <= 0 {
		return 0, io.EOF
	}
	for len(sr.buf) == 0 {
		typ, payload, err := readFrame(sr.conn, MaxRecordFrame)
		if err != nil {
			return 0, err
		}
		if typ != MsgSnapData {
			return 0, fmt.Errorf("%w: expected snapshot data, got type %d", ErrBadFrame, typ)
		}
		if int64(len(payload)) > sr.remaining {
			return 0, fmt.Errorf("%w: snapshot chunk overruns component", ErrBadFrame)
		}
		sr.sum = crc32.Update(sr.sum, castagnoli, payload)
		sr.buf = payload
	}
	n := copy(p, sr.buf)
	sr.buf = sr.buf[n:]
	sr.remaining -= int64(n)
	return n, nil
}
