package fault

import "testing"

// FuzzParseSpec hammers the -fault-spec grammar: arbitrary specs must parse
// or error, never panic, and an accepted spec must round through a fresh
// parse (the flag is user-supplied on both server and bench binaries).
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"synopsis.search:error",
		"siapi.search:slow:25ms:p=0.05",
		"synopsis.search:error:p=0.01;siapi.search:hang:times=3",
		"index.search:partial:0.5;access.levels:error:after=2",
		"*:hang",
		";;;",
		"x",
		"a:slow:nope",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		inj, err := ParseSpec(spec, 42)
		if err != nil {
			return
		}
		if inj == nil {
			t.Fatalf("nil injector without error for %q", spec)
		}
		if _, err := ParseSpec(spec, 42); err != nil {
			t.Fatalf("accepted then rejected %q: %v", spec, err)
		}
	})
}
