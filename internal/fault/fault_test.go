package fault

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestInjectNoInjector(t *testing.T) {
	if err := Inject(context.Background(), SiteSynopsisSearch); err != nil {
		t.Fatalf("no-injector Inject = %v, want nil", err)
	}
	if n := Keep(context.Background(), SiteIndexSearch, 7); n != 7 {
		t.Fatalf("no-injector Keep = %d, want 7", n)
	}
}

func TestErrorMode(t *testing.T) {
	inj := New(1)
	rule := inj.Add(&Rule{Site: SiteSynopsisSearch, Mode: ModeError})
	ctx := With(context.Background(), inj)

	err := Inject(ctx, SiteSynopsisSearch)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Inject = %v, want ErrInjected", err)
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Site != SiteSynopsisSearch {
		t.Fatalf("error carries site %v", err)
	}
	if err := Inject(ctx, SiteSIAPISearch); err != nil {
		t.Fatalf("other site faulted: %v", err)
	}
	if rule.Fired() != 1 {
		t.Fatalf("rule fired %d times, want 1", rule.Fired())
	}
}

func TestSlowModeRespectsContext(t *testing.T) {
	inj := New(1)
	inj.Add(&Rule{Site: SiteIndexSearch, Mode: ModeSlow, Latency: time.Minute})
	ctx, cancel := context.WithTimeout(With(context.Background(), inj), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := Delay(ctx, SiteIndexSearch)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Delay = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("slept %v despite cancelled context", elapsed)
	}
}

func TestHangModeUnblocksOnCancel(t *testing.T) {
	inj := New(1)
	inj.Add(&Rule{Site: SiteSynopsisSearch, Mode: ModeHang})
	ctx, cancel := context.WithCancel(With(context.Background(), inj))
	done := make(chan error, 1)
	go func() { done <- Inject(ctx, SiteSynopsisSearch) }()
	select {
	case err := <-done:
		t.Fatalf("hang returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("hang returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("hang did not unblock on cancel")
	}
}

func TestPartialMode(t *testing.T) {
	inj := New(1)
	inj.Add(&Rule{Site: SiteSIAPISearch, Mode: ModePartial, Fraction: 0.5})
	ctx := With(context.Background(), inj)
	if n := Keep(ctx, SiteSIAPISearch, 10); n != 5 {
		t.Fatalf("Keep = %d, want 5", n)
	}
	if n := Keep(ctx, SiteSynopsisSearch, 10); n != 10 {
		t.Fatalf("unmatched Keep = %d, want 10", n)
	}
}

func TestAfterAndTimes(t *testing.T) {
	inj := New(1)
	inj.Add(&Rule{Site: "s", Mode: ModeError, After: 2, Times: 2})
	ctx := With(context.Background(), inj)
	var errs []bool
	for i := 0; i < 6; i++ {
		errs = append(errs, Inject(ctx, "s") != nil)
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if errs[i] != want[i] {
			t.Fatalf("call %d: err=%v, want %v (pattern %v)", i, errs[i], want[i], errs)
		}
	}
}

func TestProbabilityDeterministic(t *testing.T) {
	fired := func(seed uint64) int {
		inj := New(seed)
		r := inj.Add(&Rule{Site: "s", Mode: ModeError, P: 0.3})
		ctx := With(context.Background(), inj)
		for i := 0; i < 1000; i++ {
			Inject(ctx, "s")
		}
		return r.Fired()
	}
	a, b := fired(42), fired(42)
	if a != b {
		t.Fatalf("same seed fired %d vs %d", a, b)
	}
	if a < 200 || a > 400 {
		t.Fatalf("p=0.3 fired %d/1000, far from expectation", a)
	}
}

func TestWildcardSite(t *testing.T) {
	inj := New(1)
	inj.Add(&Rule{Site: "*", Mode: ModeError})
	ctx := With(context.Background(), inj)
	for _, site := range []string{SiteSynopsisSearch, SiteSIAPISearch, "anything"} {
		if Inject(ctx, site) == nil {
			t.Fatalf("wildcard did not fire at %s", site)
		}
	}
}

func TestParseSpec(t *testing.T) {
	inj, err := ParseSpec("synopsis.search:error:p=0.5;siapi.search:slow:25ms;index.search:partial:0.5;access.levels:hang:after=1:times=2", 7)
	if err != nil {
		t.Fatal(err)
	}
	inj.mu.Lock()
	n := len(inj.rules)
	inj.mu.Unlock()
	if n != 4 {
		t.Fatalf("parsed %d rules, want 4", n)
	}

	bad := []string{
		"siapi.search",               // no mode
		"siapi.search:explode",       // unknown mode
		"siapi.search:slow",          // slow without latency
		"siapi.search:slow:fast",     // bad duration
		"siapi.search:error:p=2",     // probability out of range
		"siapi.search:error:nope",    // positional value on error mode
		"siapi.search:partial:1.5",   // fraction out of range
		"siapi.search:error:zzz=1",   // unknown option
		":error",                     // empty site
		"siapi.search:error:after=x", // bad int
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec, 1); err == nil {
			t.Errorf("ParseSpec(%q) accepted invalid spec", spec)
		}
	}

	// Empty and whitespace specs yield an empty injector, not an error.
	if inj, err := ParseSpec(" ; ", 1); err != nil || inj == nil {
		t.Fatalf("blank spec: %v", err)
	}
}

func TestParseSpecBehaviour(t *testing.T) {
	inj, err := ParseSpec("s:error:times=1", 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx := With(context.Background(), inj)
	if Inject(ctx, "s") == nil {
		t.Fatal("first call should fault")
	}
	if err := Inject(ctx, "s"); err != nil {
		t.Fatalf("times=1 still firing: %v", err)
	}
}
