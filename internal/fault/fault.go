// Package fault is EIL's deterministic fault-injection layer: the test and
// chaos-bench machinery that lets a backend failure be *expressed*. Rules
// are keyed by call site ("synopsis.search", "siapi.search", "index.search",
// "access.levels"), carry a mode (error, slow, hang, partial), and fire with
// a seeded, reproducible probability. An Injector travels by context
// (fault.With / fault.From), so production code holds no injector field —
// the instrumented sites call Inject/Delay/Keep, which are no-ops when the
// context carries nothing.
//
// Cost when disabled: until the first Injector is constructed in a process,
// every Inject call is a single atomic load (no context lookup, no
// allocation); after that, sites pay one context-value lookup. Production
// binaries that never parse a -fault-spec therefore run the exact pre-fault
// code path.
package fault

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Mode is what an injected fault does at its call site.
type Mode string

// Injection modes.
const (
	// ModeError makes the call return an injected error immediately.
	ModeError Mode = "error"
	// ModeSlow sleeps for the rule's Latency before the call proceeds
	// (aborting early with the context's error if it expires first).
	ModeSlow Mode = "slow"
	// ModeHang blocks until the context is cancelled, then returns its
	// error — the pathological stuck backend a deadline must bound.
	ModeHang Mode = "hang"
	// ModePartial truncates the call's result set to Fraction of its
	// natural size (harvest degradation, not an error).
	ModePartial Mode = "partial"
)

// Call sites instrumented across the repo. Rules may also name ad-hoc sites;
// these constants exist so tests and specs don't embed typos.
const (
	SiteSynopsisSearch = "synopsis.search" // synopsis (business context) query
	SiteSIAPISearch    = "siapi.search"    // SIAPI document query
	SiteIndexSearch    = "index.search"    // low-level index evaluation
	SiteAccessLevels   = "access.levels"   // batch access-level resolution
)

// ErrInjected is the sentinel wrapped by every injected error.
var ErrInjected = errors.New("fault: injected")

// Error is the concrete injected failure, carrying its site for assertions
// and per-cause telemetry.
type Error struct {
	Site string
	Mode Mode
}

func (e *Error) Error() string { return fmt.Sprintf("fault: injected %s at %s", e.Mode, e.Site) }

// Unwrap lets errors.Is(err, ErrInjected) identify injected failures.
func (e *Error) Unwrap() error { return ErrInjected }

// Rule is one injection behaviour at one site.
type Rule struct {
	// Site names the instrumented call site ("*" matches every site).
	Site string
	// Mode selects the failure behaviour.
	Mode Mode
	// P is the per-call firing probability; 0 means always (1.0).
	P float64
	// Latency is the ModeSlow sleep.
	Latency time.Duration
	// Fraction is the ModePartial keep ratio (0 means drop everything).
	Fraction float64
	// After skips the first N matching calls before the rule arms
	// (recovery scenarios: healthy, then failing).
	After int
	// Times disarms the rule after it fires N times (0 = unlimited) —
	// failing, then recovered.
	Times int

	calls atomic.Int64 // matching calls seen
	fired atomic.Int64 // times the rule actually fired
}

// Fired reports how many times the rule has fired (test introspection).
func (r *Rule) Fired() int { return int(r.fired.Load()) }

// Injector holds a rule set and a seeded RNG. Safe for concurrent use; a
// nil *Injector never fires.
type Injector struct {
	mu    sync.Mutex
	rules []*Rule
	rng   *rand.Rand
}

// anyLive flips once the process constructs its first Injector; until then
// every site check is a single atomic load.
var anyLive atomic.Bool

// New returns an injector whose probabilistic decisions derive from seed,
// so a chaos run replays exactly.
func New(seed uint64) *Injector {
	anyLive.Store(true)
	return &Injector{rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Add installs a rule and returns it (handles let tests assert fire
// counts). The rule is owned by the injector once added; callers must not
// mutate its fields afterward.
func (in *Injector) Add(r *Rule) *Rule {
	in.mu.Lock()
	defer in.mu.Unlock()
	if r.P <= 0 {
		r.P = 1
	}
	in.rules = append(in.rules, r)
	return r
}

// Reset drops all rules.
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = nil
}

// decision is what the matched rules ask the call site to do.
type decision struct {
	err      *Error
	sleep    time.Duration
	hang     bool
	partial  bool
	fraction float64
}

// decide rolls every matching rule once, under the injector lock so the
// seeded RNG stream is consumed deterministically.
func (in *Injector) decide(site string) decision {
	var d decision
	if in == nil {
		return d
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.rules {
		if r.Site != site && r.Site != "*" {
			continue
		}
		n := r.calls.Add(1)
		if r.After > 0 && int(n) <= r.After {
			continue
		}
		if r.Times > 0 && int(r.fired.Load()) >= r.Times {
			continue
		}
		if r.P < 1 && in.rng.Float64() >= r.P {
			continue
		}
		r.fired.Add(1)
		switch r.Mode {
		case ModeError:
			if d.err == nil {
				d.err = &Error{Site: site, Mode: ModeError}
			}
		case ModeSlow:
			d.sleep += r.Latency
		case ModeHang:
			d.hang = true
		case ModePartial:
			d.partial = true
			d.fraction = r.Fraction
		}
	}
	return d
}

// ctxKey carries the injector in a context.
type ctxKey struct{}

// With returns a context carrying the injector (nil inj returns ctx as-is).
func With(ctx context.Context, inj *Injector) context.Context {
	if inj == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, inj)
}

// From extracts the context's injector (nil when absent).
func From(ctx context.Context) *Injector {
	if !anyLive.Load() {
		return nil
	}
	inj, _ := ctx.Value(ctxKey{}).(*Injector)
	return inj
}

// Inject applies error, slow, and hang rules for site: it sleeps injected
// latency, blocks on hang until ctx cancels, and returns the injected (or
// context) error. The zero path — no injector, no matching rule — returns
// nil without blocking.
func Inject(ctx context.Context, site string) error {
	in := From(ctx)
	if in == nil {
		return nil
	}
	d := in.decide(site)
	if d.hang {
		<-ctx.Done()
		return ctx.Err()
	}
	if d.sleep > 0 {
		t := time.NewTimer(d.sleep)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
	if d.err != nil {
		return d.err
	}
	return nil
}

// Delay applies only the timing rules (slow, hang) for site — for call
// sites that cannot surface an error and model faults as latency or reduced
// harvest instead. It returns ctx's error if cancellation interrupts.
func Delay(ctx context.Context, site string) error {
	in := From(ctx)
	if in == nil {
		return nil
	}
	d := in.decide(site)
	if d.hang {
		<-ctx.Done()
		return ctx.Err()
	}
	if d.sleep > 0 {
		t := time.NewTimer(d.sleep)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
	return nil
}

// Keep applies partial-result rules for site: given n natural results, it
// returns how many the call should keep (n when no rule fires).
func Keep(ctx context.Context, site string, n int) int {
	in := From(ctx)
	if in == nil {
		return n
	}
	d := in.decide(site)
	if !d.partial {
		return n
	}
	k := int(float64(n) * d.fraction)
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// ParseSpec compiles a -fault-spec string into an injector seeded with
// seed. The grammar is semicolon-separated rules:
//
//	rule  := site ":" mode [":" value] {":" key "=" num}
//	mode  := "error" | "slow" | "hang" | "partial"
//	value := duration (slow) | keep fraction (partial)
//	key   := "p" (probability) | "after" | "times"
//
// Examples:
//
//	synopsis.search:error
//	siapi.search:slow:25ms:p=0.05
//	synopsis.search:error:p=0.01;siapi.search:hang:times=3
//	index.search:partial:0.5
func ParseSpec(spec string, seed uint64) (*Injector, error) {
	inj := New(seed)
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		parts := strings.Split(raw, ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("fault: rule %q needs site:mode", raw)
		}
		r := &Rule{Site: strings.TrimSpace(parts[0]), Mode: Mode(strings.TrimSpace(parts[1]))}
		if r.Site == "" {
			return nil, fmt.Errorf("fault: rule %q has empty site", raw)
		}
		rest := parts[2:]
		// An optional positional value comes before the key=val options.
		if len(rest) > 0 && !strings.Contains(rest[0], "=") {
			v := strings.TrimSpace(rest[0])
			switch r.Mode {
			case ModeSlow:
				d, err := time.ParseDuration(v)
				if err != nil {
					return nil, fmt.Errorf("fault: rule %q: bad latency %q: %w", raw, v, err)
				}
				r.Latency = d
			case ModePartial:
				f, err := strconv.ParseFloat(v, 64)
				if err != nil || f < 0 || f > 1 {
					return nil, fmt.Errorf("fault: rule %q: bad fraction %q", raw, v)
				}
				r.Fraction = f
			default:
				return nil, fmt.Errorf("fault: rule %q: mode %s takes no value", raw, r.Mode)
			}
			rest = rest[1:]
		}
		switch r.Mode {
		case ModeError, ModeSlow, ModeHang, ModePartial:
		default:
			return nil, fmt.Errorf("fault: rule %q: unknown mode %q", raw, parts[1])
		}
		if r.Mode == ModeSlow && r.Latency == 0 {
			return nil, fmt.Errorf("fault: rule %q: slow needs a latency value", raw)
		}
		for _, opt := range rest {
			k, v, ok := strings.Cut(strings.TrimSpace(opt), "=")
			if !ok {
				return nil, fmt.Errorf("fault: rule %q: bad option %q", raw, opt)
			}
			switch k {
			case "p":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil || f <= 0 || f > 1 {
					return nil, fmt.Errorf("fault: rule %q: bad probability %q", raw, v)
				}
				r.P = f
			case "after":
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("fault: rule %q: bad after %q", raw, v)
				}
				r.After = n
			case "times":
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("fault: rule %q: bad times %q", raw, v)
				}
				r.Times = n
			default:
				return nil, fmt.Errorf("fault: rule %q: unknown option %q", raw, k)
			}
		}
		inj.Add(r)
	}
	return inj, nil
}
