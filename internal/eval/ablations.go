package eval

import (
	"fmt"
	"strings"

	"repro"
	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/siapi"
	"repro/internal/synopsis"
	"repro/internal/synth"
)

// --- Ablation: directory enrichment (Figure 3 step 13) ---

// DirectoryAblation compares contact quality with and without intranet
// enrichment.
type DirectoryAblation struct {
	WithPhoneRate    float64 // fraction of contacts with a phone number, enriched
	WithoutPhoneRate float64 // same, unenriched
	ValidatedRate    float64 // fraction of contacts validated when enriched
	Contacts         int
}

// AblationDirectory ingests the corpus twice (with and without the
// personnel directory) and measures contact-field completeness.
func AblationDirectory(cfg synth.Config) (DirectoryAblation, error) {
	var r DirectoryAblation
	corpus, err := synth.Generate(cfg)
	if err != nil {
		return r, err
	}
	withSys, err := eil.Ingest(corpus.Docs, eil.Options{Directory: corpus.Directory})
	if err != nil {
		return r, err
	}
	// NewFixture substitutes the corpus directory when Options.Directory
	// is nil, so the unenriched run ingests directly with an empty one.
	withoutSys, err := eil.Ingest(corpus.Docs, eil.Options{Directory: directory.New()})
	if err != nil {
		return r, err
	}
	withPhones, withValidated, withTotal, err := contactStats(&Fixture{Corpus: corpus, Sys: withSys})
	if err != nil {
		return r, err
	}
	withoutPhones, _, withoutTotal, err := contactStats(&Fixture{Corpus: corpus, Sys: withoutSys})
	if err != nil {
		return r, err
	}
	if withTotal > 0 {
		r.WithPhoneRate = float64(withPhones) / float64(withTotal)
		r.ValidatedRate = float64(withValidated) / float64(withTotal)
	}
	if withoutTotal > 0 {
		r.WithoutPhoneRate = float64(withoutPhones) / float64(withoutTotal)
	}
	r.Contacts = withTotal
	return r, nil
}

func contactStats(f *Fixture) (phones, validated, total int, err error) {
	ids, err := f.Sys.Synopses.DealIDs()
	if err != nil {
		return 0, 0, 0, err
	}
	for _, id := range ids {
		deal, err := f.Sys.Synopses.Get(id)
		if err != nil {
			return 0, 0, 0, err
		}
		for _, p := range deal.People {
			total++
			if p.Phone != "" {
				phones++
			}
			if p.Validated {
				validated++
			}
		}
	}
	return phones, validated, total, nil
}

// --- Ablation: structure-aware parsing (§3.3) ---

// StructureAblation compares roster-extraction recall between the
// structure-aware pipeline and the blob pipeline.
type StructureAblation struct {
	StructuredRecall float64 // ground-truth team members found, structured
	BlobRecall       float64 // same, blob parsing
}

// AblationStructure ingests twice and measures team recall against the
// generator's rosters.
func AblationStructure(cfg synth.Config) (StructureAblation, error) {
	var r StructureAblation
	structured, err := NewFixture(cfg, eil.Options{})
	if err != nil {
		return r, err
	}
	// The blob fixture must share the corpus for a fair comparison.
	blobSys, err := eil.Ingest(structured.Corpus.Docs, eil.Options{
		Directory:   structured.Corpus.Directory,
		BlobParsing: true,
	})
	if err != nil {
		return r, err
	}
	blob := &Fixture{Corpus: structured.Corpus, Sys: blobSys}
	r.StructuredRecall, err = teamRecall(structured)
	if err != nil {
		return r, err
	}
	r.BlobRecall, err = teamRecall(blob)
	return r, err
}

// teamRecall measures the fraction of ground-truth team members present in
// the extracted contact lists.
func teamRecall(f *Fixture) (float64, error) {
	found, want := 0, 0
	for _, id := range f.Corpus.DealIDs {
		truth := f.Corpus.Truth[id]
		deal, err := f.Sys.Synopses.Get(id)
		if err != nil {
			continue // deal may have produced no synopsis in degraded mode
		}
		names := map[string]bool{}
		for _, p := range deal.People {
			names[p.Name] = true
		}
		for _, p := range truth.Team {
			want++
			if names[p.Name] {
				found++
			}
		}
	}
	if want == 0 {
		return 0, fmt.Errorf("eval: no ground-truth team members")
	}
	return float64(found) / float64(want), nil
}

// --- Ablation: entity analytics vs process conventions (§3.2.1) ---

// EntityAblation compares the convention-driven social networking annotator
// against the paper's described alternative — entity analytics plus
// co-occurrence over flat text. The paper predicts conventions "would
// perform better than just blindly applying patterns"; this measures it.
type EntityAblation struct {
	ConventionRecall    float64
	ConventionPrecision float64
	EntityRecall        float64
	EntityPrecision     float64
}

// AblationEntity ingests the same corpus under both extractors and scores
// contacts against the ground-truth rosters.
func AblationEntity(cfg synth.Config) (EntityAblation, error) {
	var r EntityAblation
	corpus, err := synth.Generate(cfg)
	if err != nil {
		return r, err
	}
	conv, err := eil.Ingest(corpus.Docs, eil.Options{Directory: corpus.Directory})
	if err != nil {
		return r, err
	}
	ent, err := eil.Ingest(corpus.Docs, eil.Options{Directory: corpus.Directory, EntityContacts: true})
	if err != nil {
		return r, err
	}
	r.ConventionRecall, r.ConventionPrecision, err = contactPR(&Fixture{Corpus: corpus, Sys: conv})
	if err != nil {
		return r, err
	}
	r.EntityRecall, r.EntityPrecision, err = contactPR(&Fixture{Corpus: corpus, Sys: ent})
	return r, err
}

// contactPR scores extracted contact names against ground-truth rosters:
// recall = team members found; precision = extracted names that are real
// team members (phantom "contacts" from sentence noise count against it).
func contactPR(f *Fixture) (recall, precision float64, err error) {
	found, want, extracted, correct := 0, 0, 0, 0
	for _, id := range f.Corpus.DealIDs {
		truth := f.Corpus.Truth[id]
		deal, err := f.Sys.Synopses.Get(id)
		if err != nil {
			continue
		}
		real := map[string]bool{}
		for _, p := range truth.Team {
			real[strings.ToLower(p.Name)] = true
		}
		got := map[string]bool{}
		for _, p := range deal.People {
			got[strings.ToLower(p.Name)] = true
		}
		for name := range got {
			extracted++
			if real[name] {
				correct++
			}
		}
		for name := range real {
			want++
			if got[name] {
				found++
			}
		}
	}
	if want == 0 || extracted == 0 {
		return 0, 0, fmt.Errorf("eval: no contacts to score (want=%d extracted=%d)", want, extracted)
	}
	return float64(found) / float64(want), float64(correct) / float64(extracted), nil
}

// --- Ablation: CPE significance threshold (§3.4) ---

// ThresholdPoint is one sweep point: the scope CPE threshold and the mean
// F-measure over the Table 2 queries at that threshold.
type ThresholdPoint struct {
	MinScopeWeight float64
	MeanF          float64
	MeanPrecision  float64
	MeanRecall     float64
}

// AblationCPEThreshold sweeps the scope threshold and reports scope-query
// quality at each point: too low admits incidental mentions (precision
// drops), too high drops true scopes (recall drops).
func AblationCPEThreshold(cfg synth.Config, thresholds []float64) ([]ThresholdPoint, error) {
	var out []ThresholdPoint
	for _, th := range thresholds {
		f, err := NewFixture(cfg, eil.Options{MinScopeWeight: th})
		if err != nil {
			return nil, err
		}
		t2, err := Table2(f)
		if err != nil {
			return nil, err
		}
		var p ThresholdPoint
		p.MinScopeWeight = th
		n := float64(len(t2.Rows))
		for _, row := range t2.Rows {
			p.MeanF += row.EIL.F / n
			p.MeanPrecision += row.EIL.Precision / n
			p.MeanRecall += row.EIL.Recall / n
		}
		out = append(out, p)
	}
	return out, nil
}

// --- Ablation: rank combination (Figure 1 step 18) ---

// RankingAblation reports, for a combined concept+text query, the rank of
// the best (planted) deal under synopsis-only, document-only, and combined
// scoring.
type RankingAblation struct {
	CombinedRank int
	SynopsisRank int
	DocRank      int
	Activities   int
}

// AblationRanking runs MQ4 under the three scoring mixes on an existing
// fixture.
func AblationRanking(f *Fixture) (RankingAblation, error) {
	run := func(sw, dw float64) (int, int, error) {
		eng := f.Sys.Engine.Derive()
		eng.SynopsisWeight = sw
		eng.DocWeight = dw
		res, err := eng.Search(f.User(), core.FormQuery{
			Tower:       "Storage Management Services",
			ExactPhrase: "data replication",
		})
		if err != nil {
			return 0, 0, err
		}
		for i, a := range res.Activities {
			if a.DealID == synth.PlantedDealID {
				return i + 1, len(res.Activities), nil
			}
		}
		return 0, len(res.Activities), nil
	}
	var r RankingAblation
	var err error
	// Engine treats zero weights as 1.0; use epsilon to express "off".
	const off = 1e-9
	if r.CombinedRank, r.Activities, err = run(1, 1); err != nil {
		return r, err
	}
	if r.SynopsisRank, _, err = run(1, off); err != nil {
		return r, err
	}
	if r.DocRank, _, err = run(off, 1); err != nil {
		return r, err
	}
	return r, nil
}

// --- Ablation: SIAPI scoping (Figure 1 steps 5-8) ---

// ScopingAblation compares the scoped and unscoped document searches for a
// combined query: activity-set equality (the semantics are preserved by
// intersection; only score normalization — and hence ranking — may differ)
// and the number of raw document hits each side had to consider.
type ScopingAblation struct {
	ScopedDocsConsidered   int
	UnscopedDocsConsidered int
	SameActivitySet        bool
}

// AblationScoping runs a combined query both ways on one fixture. The word
// "replication" occurs corpus-wide (solution decks, sub-tower mentions), so
// the End User Services concept scope prunes a substantial share of the
// document hits.
func AblationScoping(f *Fixture) (ScopingAblation, error) {
	var r ScopingAblation
	q := core.FormQuery{Tower: "End User Services", AllWords: []string{"replication"}}

	scopedEng := f.Sys.Engine.Derive()
	scopedEng.DisableScoping = false
	scoped, err := scopedEng.Search(f.User(), q)
	if err != nil {
		return r, err
	}
	unscopedEng := f.Sys.Engine.Derive()
	unscopedEng.DisableScoping = true
	unscoped, err := unscopedEng.Search(f.User(), q)
	if err != nil {
		return r, err
	}
	// Raw hit counts: the unscoped query touches every matching document
	// corpus-wide; the scoped one only those inside candidate activities.
	var deals []string
	hits, err := f.Sys.Synopses.Search(synopsis.Query{Tower: q.Tower})
	if err != nil {
		return r, err
	}
	for _, h := range hits {
		deals = append(deals, h.DealID)
	}
	r.ScopedDocsConsidered = f.Sys.SIAPI.Count(siapi.Query{All: q.AllWords, Deals: deals})
	r.UnscopedDocsConsidered = f.Sys.SIAPI.Count(siapi.Query{All: q.AllWords})
	r.SameActivitySet = sameDealSet(scoped, unscoped)
	return r, nil
}

// sameDealSet compares the activity sets ignoring order: disabling scoping
// changes score normalization (the unscoped document search normalizes
// against the corpus-wide best activity), so ranks may shift while the set
// must not.
func sameDealSet(a, b core.Result) bool {
	if len(a.Activities) != len(b.Activities) {
		return false
	}
	set := make(map[string]bool, len(a.Activities))
	for _, act := range a.Activities {
		set[act.DealID] = true
	}
	for _, act := range b.Activities {
		if !set[act.DealID] {
			return false
		}
	}
	return true
}
