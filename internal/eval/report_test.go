package eval

import (
	"bytes"
	"strings"
	"testing"
)

func TestReportAllSections(t *testing.T) {
	f, err := SmallFixture()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Report(&buf, f, "all"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, section := range []string{
		"=== study ===", "=== table2 ===", "=== fig4 ===", "=== fig5 ===",
		"=== fig6 ===", "=== mq2 ===", "=== mq3 ===", "=== mq4 ===",
		"=== rollout ===", "=== ablations ===",
	} {
		if !strings.Contains(out, section) {
			t.Errorf("report missing %s", section)
		}
	}
	for _, content := range []string{
		"38%", "EIL wins", "expansion factor", "Sam White", "cross tower TSA",
		"data replication", "query latency", "entity", "CPE threshold sweep",
	} {
		if !strings.Contains(out, content) {
			t.Errorf("report missing content %q", content)
		}
	}
}

func TestReportSingleSection(t *testing.T) {
	f, err := SmallFixture()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Report(&buf, f, "fig4"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "=== fig4 ===") || strings.Contains(out, "=== table2 ===") {
		t.Fatalf("section filter broken:\n%s", out)
	}
}

func TestReportUnknownExperiment(t *testing.T) {
	f, err := SmallFixture()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Report(&buf, f, "nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
