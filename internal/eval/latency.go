package eval

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
)

// LatencyProfile reports online-query latency percentiles over a mixed
// workload — the operational side of the §4 rollout claim (the production
// system serves an interactive UI, so search must stay interactive as the
// corpus grows).
type LatencyProfile struct {
	Queries int
	P50     time.Duration
	P95     time.Duration
	Max     time.Duration
}

func (p LatencyProfile) String() string {
	return fmt.Sprintf("%d queries: p50=%s p95=%s max=%s",
		p.Queries, p.P50.Round(time.Microsecond), p.P95.Round(time.Microsecond), p.Max.Round(time.Microsecond))
}

// latencyWorkload is the mixed query set: concept-only, concept+text,
// people, and keyword-baseline shapes, cycled.
func latencyWorkload(f *Fixture) []func() error {
	user := f.User()
	return []func() error{
		func() error {
			_, err := f.Sys.Search(user, core.FormQuery{Tower: "End User Services"})
			return err
		},
		func() error {
			_, err := f.Sys.Search(user, core.FormQuery{
				Tower: "Storage Management Services", ExactPhrase: "data replication"})
			return err
		},
		func() error {
			_, err := f.Sys.Search(user, core.FormQuery{PersonName: "Sam White"})
			return err
		},
		func() error {
			f.Sys.KeywordSearch(`"cross tower TSA"`, 10)
			return nil
		},
		func() error {
			_, err := f.Sys.Search(user, core.FormQuery{Industry: "Insurance", AnyWords: []string{"recovery", "failover"}})
			return err
		},
	}
}

// MeasureLatency runs rounds of the mixed workload and computes the profile.
func MeasureLatency(f *Fixture, rounds int) (LatencyProfile, error) {
	if rounds <= 0 {
		rounds = 20
	}
	workload := latencyWorkload(f)
	var samples []time.Duration
	for r := 0; r < rounds; r++ {
		for _, run := range workload {
			start := time.Now()
			if err := run(); err != nil {
				return LatencyProfile{}, err
			}
			samples = append(samples, time.Since(start))
		}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	pick := func(q float64) time.Duration {
		i := int(q * float64(len(samples)-1))
		return samples[i]
	}
	return LatencyProfile{
		Queries: len(samples),
		P50:     pick(0.50),
		P95:     pick(0.95),
		Max:     samples[len(samples)-1],
	}, nil
}
