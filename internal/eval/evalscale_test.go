package eval

import (
	"testing"
)

// TestEvalScaleShapes runs the paper-scale corpus (23 deals, ~15k docs) and
// asserts every headline shape of §4 at once. It is skipped in -short mode
// because ingestion takes seconds.
func TestEvalScaleShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale ingest in -short mode")
	}
	f, err := EvalFixture()
	if err != nil {
		t.Fatal(err)
	}
	if n := f.Sys.Index.DocCount(); n < 13000 {
		t.Fatalf("indexed docs = %d, want ~15000", n)
	}

	// Table 2 shape: KW recall is 1.0 on most queries; EIL wins on F for
	// a clear majority (paper: 8 of 10).
	t2, err := Table2(f)
	if err != nil {
		t.Fatal(err)
	}
	fullRecall := 0
	for _, row := range t2.Rows {
		if row.KW.Recall >= 0.999 {
			fullRecall++
		}
	}
	if fullRecall < 7 {
		t.Errorf("KW full-recall rows = %d/10, paper shape wants most at 1.0", fullRecall)
	}
	eilWins, kwWins, _ := t2.WinsLosses()
	if eilWins < 6 {
		t.Errorf("EIL wins only %d/10 (KW wins %d): %+v", eilWins, kwWins, t2.Rows)
	}
	var eilP, kwP float64
	for _, row := range t2.Rows {
		eilP += row.EIL.Precision / float64(len(t2.Rows))
		kwP += row.KW.Precision / float64(len(t2.Rows))
	}
	if eilP <= kwP {
		t.Errorf("EIL mean precision %.3f not above KW %.3f", eilP, kwP)
	}

	// Figure 4 shape: subtype expansion inflates hits roughly 4x
	// (paper: 261 -> 1132, factor 4.3).
	f4 := Fig4(f)
	if f4.Expansion < 2.5 || f4.Expansion > 7 {
		t.Errorf("expansion factor %.2f outside the paper's shape (~4.3)", f4.Expansion)
	}
	if f4.CanonicalDocs < 100 || f4.CanonicalDocs > 600 {
		t.Errorf("canonical docs = %d, paper reports 261", f4.CanonicalDocs)
	}

	// Meta-query 2 funnel shape: 0, then ~4, then ~100.
	mq2, err := MQ2(f)
	if err != nil {
		t.Fatal(err)
	}
	if mq2.KWStep1Docs != 0 {
		t.Errorf("MQ2 step1 = %d, paper reports 0", mq2.KWStep1Docs)
	}
	if mq2.KWStep2Docs < 2 || mq2.KWStep2Docs > 10 {
		t.Errorf("MQ2 step2 = %d, paper reports 4", mq2.KWStep2Docs)
	}
	if mq2.KWStep3Docs < 40 || mq2.KWStep3Docs < 5*mq2.KWStep2Docs {
		t.Errorf("MQ2 step3 = %d, paper reports 97 (a flood)", mq2.KWStep3Docs)
	}
	if len(mq2.EILDeals) == 0 || len(mq2.CSEs) == 0 {
		t.Errorf("MQ2 EIL side broken: deals=%v CSEs=%v", mq2.EILDeals, mq2.CSEs)
	}

	// Meta-query 3 shape: ~150 keyword hits, the useful few buried.
	mq3, err := MQ3(f)
	if err != nil {
		t.Fatal(err)
	}
	if mq3.KWDocs < 80 || mq3.KWDocs > 350 {
		t.Errorf("MQ3 keyword docs = %d, paper reports 149", mq3.KWDocs)
	}
	if mq3.ValueDocs*4 > mq3.KWDocs {
		t.Errorf("MQ3 value docs %d not rare among %d", mq3.ValueDocs, mq3.KWDocs)
	}
	if len(mq3.EILContacts) == 0 {
		t.Error("MQ3 EIL found nobody")
	}

	// Meta-query 4: activities-first results including the planted deal.
	mq4, err := MQ4(f)
	if err != nil {
		t.Fatal(err)
	}
	if !mq4.PlantedFound || len(mq4.Activities) == 0 {
		t.Errorf("MQ4 shape broken: planted=%v activities=%d", mq4.PlantedFound, len(mq4.Activities))
	}
}
