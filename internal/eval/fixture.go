package eval

import (
	"fmt"
	"sync"

	"repro"
	"repro/internal/access"
	"repro/internal/synth"
)

// Fixture bundles a generated corpus with an ingested system; experiments
// share it because ingestion of the eval-scale corpus is the expensive step.
type Fixture struct {
	Corpus *synth.Corpus
	Sys    *eil.System
}

// User is the evaluation principal: the experiments of §4 "assume that
// there are no access controls on the documents", so the fixture runs with
// no controller and an admin user.
func (f *Fixture) User() access.User {
	return access.User{ID: "eval", Name: "Evaluator", Roles: []access.Role{access.RoleAdmin}}
}

// NewFixture generates the corpus under cfg and ingests it with opts
// (Directory defaults to the corpus directory).
func NewFixture(cfg synth.Config, opts eil.Options) (*Fixture, error) {
	corpus, err := synth.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("eval: generate: %w", err)
	}
	if opts.Directory == nil {
		opts.Directory = corpus.Directory
	}
	sys, err := eil.Ingest(corpus.Docs, opts)
	if err != nil {
		return nil, fmt.Errorf("eval: ingest: %w", err)
	}
	return &Fixture{Corpus: corpus, Sys: sys}, nil
}

var (
	evalOnce    sync.Once
	evalFixture *Fixture
	evalErr     error
)

// EvalFixture returns the shared paper-scale fixture (23 deals, ~15k docs),
// built once per process.
func EvalFixture() (*Fixture, error) {
	evalOnce.Do(func() {
		evalFixture, evalErr = NewFixture(synth.EvalConfig(), eil.Options{})
	})
	return evalFixture, evalErr
}

var (
	smallOnce    sync.Once
	smallFixture *Fixture
	smallErr     error
)

// SmallFixture returns the shared unit-test-scale fixture.
func SmallFixture() (*Fixture, error) {
	smallOnce.Do(func() {
		smallFixture, smallErr = NewFixture(synth.SmallConfig(), eil.Options{})
	})
	return smallFixture, smallErr
}
