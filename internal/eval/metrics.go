// Package eval implements the paper's evaluation (§4): precision/recall/
// F-measure metrics, the Table 2 scope-query comparison of EIL against
// OmniFind-style keyword search, the Figure 4/5/6 Meta-query 1 walkthrough,
// the Meta-query 2 funnel, the Meta-query 3 schema-noise analysis, the
// Meta-query 4 combined query, the §2 email study, and the design-choice
// ablations. Every experiment returns a typed result that the eileval CLI
// and the bench harness render.
package eval

import (
	"fmt"
	"sort"
)

// PRF is precision, recall, and F-measure, defined exactly as in the paper:
// precision = correct returned / returned, recall = correct returned /
// should-have-returned, F = 2PR/(P+R).
type PRF struct {
	Precision float64
	Recall    float64
	F         float64
}

// Compute derives PRF from a retrieved set and a relevant (ground truth)
// set. Empty retrieved with empty relevant scores a perfect 1/1/1; empty
// retrieved against non-empty relevant scores 0.
func Compute(retrieved, relevant []string) PRF {
	rel := map[string]bool{}
	for _, r := range relevant {
		rel[r] = true
	}
	got := map[string]bool{}
	correct := 0
	for _, r := range retrieved {
		if got[r] {
			continue
		}
		got[r] = true
		if rel[r] {
			correct++
		}
	}
	var p, rc float64
	switch {
	case len(got) == 0 && len(rel) == 0:
		return PRF{Precision: 1, Recall: 1, F: 1}
	case len(got) == 0:
		return PRF{}
	}
	p = float64(correct) / float64(len(got))
	if len(rel) == 0 {
		rc = 1
	} else {
		rc = float64(correct) / float64(len(rel))
	}
	f := 0.0
	if p+rc > 0 {
		f = 2 * p * rc / (p + rc)
	}
	return PRF{Precision: p, Recall: rc, F: f}
}

// String renders "P=0.82 R=1.00 F=0.90".
func (m PRF) String() string {
	return fmt.Sprintf("P=%.2f R=%.2f F=%.2f", m.Precision, m.Recall, m.F)
}

// MeanF averages F-measures.
func MeanF(rows []PRF) float64 {
	if len(rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rows {
		sum += r.F
	}
	return sum / float64(len(rows))
}

// sortedKeys returns map keys sorted, for deterministic iteration in
// experiment code.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
