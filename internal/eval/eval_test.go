package eval

import (
	"math"
	"testing"

	"repro/internal/synth"
)

func TestComputePRF(t *testing.T) {
	cases := []struct {
		retrieved, relevant []string
		want                PRF
	}{
		{[]string{"a", "b"}, []string{"a", "b"}, PRF{1, 1, 1}},
		{[]string{"a", "b", "c", "d"}, []string{"a", "b"}, PRF{0.5, 1, 2.0 / 3}},
		{[]string{"a"}, []string{"a", "b"}, PRF{1, 0.5, 2.0 / 3}},
		{nil, []string{"a"}, PRF{0, 0, 0}},
		{nil, nil, PRF{1, 1, 1}},
		{[]string{"x"}, []string{"a"}, PRF{0, 0, 0}},
		{[]string{"a", "a", "a"}, []string{"a"}, PRF{1, 1, 1}}, // dedup retrieved
	}
	for _, c := range cases {
		got := Compute(c.retrieved, c.relevant)
		if math.Abs(got.Precision-c.want.Precision) > 1e-9 ||
			math.Abs(got.Recall-c.want.Recall) > 1e-9 ||
			math.Abs(got.F-c.want.F) > 1e-9 {
			t.Errorf("Compute(%v, %v) = %v, want %v", c.retrieved, c.relevant, got, c.want)
		}
	}
}

func TestPRFString(t *testing.T) {
	s := PRF{Precision: 0.825, Recall: 1, F: 0.9}.String()
	if s != "P=0.82 R=1.00 F=0.90" && s != "P=0.83 R=1.00 F=0.90" {
		t.Fatalf("String = %q", s)
	}
}

func TestMeanF(t *testing.T) {
	if MeanF(nil) != 0 {
		t.Fatal("MeanF(nil)")
	}
	got := MeanF([]PRF{{F: 0.5}, {F: 1.0}})
	if math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("MeanF = %v", got)
	}
}

func TestTable2Shape(t *testing.T) {
	f, err := SmallFixture()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Table2(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var eilF, kwF []PRF
	for _, row := range res.Rows {
		eilF = append(eilF, row.EIL)
		kwF = append(kwF, row.KW)
		if row.EIL.F < 0 || row.EIL.F > 1 || row.KW.F < 0 || row.KW.F > 1 {
			t.Fatalf("F out of range: %+v", row)
		}
	}
	// The paper's headline: EIL's overall quality beats keyword search.
	if MeanF(eilF) < MeanF(kwF) {
		t.Fatalf("shape violated: EIL meanF %.3f < KW meanF %.3f", MeanF(eilF), MeanF(kwF))
	}
	eilWins, kwWins, _ := res.WinsLosses()
	if eilWins < kwWins {
		t.Fatalf("EIL wins %d < KW wins %d", eilWins, kwWins)
	}
}

func TestFig4Shape(t *testing.T) {
	f, err := SmallFixture()
	if err != nil {
		t.Fatal(err)
	}
	r := Fig4(f)
	if r.CanonicalDocs == 0 {
		t.Fatal("no canonical EUS docs")
	}
	// Paper shape: spelling out the subtypes inflates keyword hits ~4x.
	if r.ExpandedDocs <= r.CanonicalDocs {
		t.Fatalf("expansion missing: %d -> %d", r.CanonicalDocs, r.ExpandedDocs)
	}
	if r.Expansion < 1.5 {
		t.Fatalf("expansion factor %.2f too small", r.Expansion)
	}
}

func TestFig5Shape(t *testing.T) {
	f, err := SmallFixture()
	if err != nil {
		t.Fatal(err)
	}
	deals, err := Fig5(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(deals) == 0 {
		t.Fatal("no EUS deals returned")
	}
	correct := 0
	for _, d := range deals {
		if d.Correct {
			correct++
		}
		if len(d.Towers) == 0 {
			t.Fatalf("deal %s has no towers in synopsis", d.DealID)
		}
	}
	// EIL's concept search should be precise: most returned deals truly
	// have EUS in scope.
	if 2*correct < len(deals) {
		t.Fatalf("precision collapsed: %d/%d correct", correct, len(deals))
	}
	// Ordered by score.
	for i := 1; i < len(deals); i++ {
		if deals[i-1].Score < deals[i].Score {
			t.Fatal("deal list not score-ordered")
		}
	}
}

func TestFig6Synopsis(t *testing.T) {
	f, err := SmallFixture()
	if err != nil {
		t.Fatal(err)
	}
	deal, err := Fig6(f)
	if err != nil {
		t.Fatal(err)
	}
	o := deal.Overview
	if o.DealID == "" || o.Customer == "" || o.Industry == "" || o.TCVBand == "" {
		t.Fatalf("synopsis incomplete: %+v", o)
	}
	if len(deal.Towers) == 0 || len(deal.People) == 0 {
		t.Fatalf("synopsis missing towers/people: %d towers %d people", len(deal.Towers), len(deal.People))
	}
}

func TestMQ2Funnel(t *testing.T) {
	f, err := SmallFixture()
	if err != nil {
		t.Fatal(err)
	}
	r, err := MQ2(f)
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape: 0 docs, then a handful, then a flood.
	if r.KWStep1Docs != 0 {
		t.Fatalf("step 1 = %d, want 0", r.KWStep1Docs)
	}
	if r.KWStep2Docs < 2 || r.KWStep2Docs > 8 {
		t.Fatalf("step 2 = %d, want a handful (~4)", r.KWStep2Docs)
	}
	// The small corpus has too little chatter for the full 97-doc flood;
	// the eval-scale shape check lives in TestEvalScaleShapes.
	if r.KWStep3Docs < 2 {
		t.Fatalf("step 3 = %d, want role chatter hits", r.KWStep3Docs)
	}
	// EIL: one people query finds the deal and its categorized contacts.
	if len(r.EILDeals) == 0 || r.EILDeals[0] != synth.PlantedDealID {
		t.Fatalf("EIL deals = %v", r.EILDeals)
	}
	if len(r.People) == 0 {
		t.Fatal("EIL returned no contact list")
	}
	if len(r.CSEs) == 0 {
		t.Fatal("EIL found no CSEs on the planted deal")
	}
	foundSam := false
	for _, p := range r.People {
		if p.Name == synth.PlantedPerson {
			foundSam = true
		}
	}
	if !foundSam {
		t.Fatal("Sam White missing from the People tab")
	}
}

func TestMQ3Shape(t *testing.T) {
	f, err := SmallFixture()
	if err != nil {
		t.Fatal(err)
	}
	r, err := MQ3(f)
	if err != nil {
		t.Fatal(err)
	}
	if r.KWDocs == 0 {
		t.Fatal("no schema-field noise at all")
	}
	// Paper shape: the vast majority of keyword hits are documents where
	// the field carries no value.
	if r.ValueDocs*2 >= r.KWDocs {
		t.Fatalf("value docs %d not rare among %d keyword hits", r.ValueDocs, r.KWDocs)
	}
	if len(r.EILContacts) == 0 {
		t.Fatal("EIL found no cross tower TSA contacts")
	}
	for _, c := range r.EILContacts {
		if c.Name == "" || c.DealID == "" {
			t.Fatalf("incomplete contact %+v", c)
		}
	}
}

func TestMQ4Shape(t *testing.T) {
	f, err := SmallFixture()
	if err != nil {
		t.Fatal(err)
	}
	r, err := MQ4(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Activities) == 0 {
		t.Fatal("no activities")
	}
	if !r.PlantedFound {
		t.Fatal("planted storage deal missing from MQ4 results")
	}
	// Figure 9 structure: activities first, each with documents.
	for _, a := range r.Activities {
		if len(a.Docs) == 0 {
			t.Fatalf("activity %s without documents", a.DealID)
		}
		if len(a.Towers) == 0 {
			t.Fatalf("activity %s without towers", a.DealID)
		}
	}
	// Every returned activity must actually have the tower in scope
	// (concept criteria are hard filters).
	for _, a := range r.Activities {
		if truth := f.Corpus.Truth[a.DealID]; truth != nil && !truth.HasTower("Storage Management Services") {
			t.Fatalf("activity %s lacks the queried tower", a.DealID)
		}
	}
}

func TestAblationRanking(t *testing.T) {
	f, err := SmallFixture()
	if err != nil {
		t.Fatal(err)
	}
	r, err := AblationRanking(f)
	if err != nil {
		t.Fatal(err)
	}
	if r.CombinedRank == 0 {
		t.Fatal("combined scoring lost the planted deal")
	}
	if r.Activities == 0 {
		t.Fatal("no activities")
	}
}

func TestAblationScoping(t *testing.T) {
	f, err := SmallFixture()
	if err != nil {
		t.Fatal(err)
	}
	r, err := AblationScoping(f)
	if err != nil {
		t.Fatal(err)
	}
	if !r.SameActivitySet {
		t.Fatal("scoping changed semantics")
	}
	if r.ScopedDocsConsidered > r.UnscopedDocsConsidered {
		t.Fatalf("scoped considered %d > unscoped %d", r.ScopedDocsConsidered, r.UnscopedDocsConsidered)
	}
}

func TestAblationDirectory(t *testing.T) {
	r, err := AblationDirectory(synth.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Contacts == 0 {
		t.Fatal("no contacts")
	}
	if r.WithPhoneRate < r.WithoutPhoneRate {
		t.Fatalf("enrichment reduced phone completeness: %.2f vs %.2f", r.WithPhoneRate, r.WithoutPhoneRate)
	}
	if r.ValidatedRate == 0 {
		t.Fatal("nothing validated with the directory on")
	}
}

func TestAblationStructure(t *testing.T) {
	r, err := AblationStructure(synth.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.StructuredRecall <= r.BlobRecall {
		t.Fatalf("structure-aware parsing must beat blob: %.2f vs %.2f", r.StructuredRecall, r.BlobRecall)
	}
	if r.StructuredRecall < 0.5 {
		t.Fatalf("structured recall too low: %.2f", r.StructuredRecall)
	}
}

func TestAblationCPEThreshold(t *testing.T) {
	points, err := AblationCPEThreshold(synth.SmallConfig(), []float64{0.5, 2.0, 8.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Low threshold: recall high. High threshold: recall drops (true
	// scopes with weak evidence fall below the bar). Precision is not
	// monotone because queries whose retrieved set becomes empty score
	// P=0, so only the recall trade-off is asserted.
	if points[0].MeanRecall <= points[2].MeanRecall {
		t.Fatalf("recall did not fall with threshold: %.2f -> %.2f", points[0].MeanRecall, points[2].MeanRecall)
	}
	if points[0].MeanRecall < 0.8 {
		t.Fatalf("low-threshold recall = %.2f, want near 1", points[0].MeanRecall)
	}
}

func TestAblationEntity(t *testing.T) {
	r, err := AblationEntity(synth.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's prediction: process conventions beat blind entity
	// analytics plus co-occurrence. Names also appear in flat text, so
	// recall can tie; the damage shows in precision (phantom contacts
	// hallucinated from capitalized prose).
	if r.ConventionRecall < r.EntityRecall {
		t.Errorf("convention recall %.2f below entity recall %.2f", r.ConventionRecall, r.EntityRecall)
	}
	if r.ConventionPrecision <= r.EntityPrecision {
		t.Errorf("convention precision %.2f not above entity precision %.2f", r.ConventionPrecision, r.EntityPrecision)
	}
	if r.EntityRecall == 0 {
		t.Error("entity extractor found nothing at all — comparison vacuous")
	}
}

func TestMeasureLatency(t *testing.T) {
	f, err := SmallFixture()
	if err != nil {
		t.Fatal(err)
	}
	p, err := MeasureLatency(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Queries != 15 {
		t.Fatalf("queries = %d", p.Queries)
	}
	if p.P50 <= 0 || p.P95 < p.P50 || p.Max < p.P95 {
		t.Fatalf("profile ordering broken: %+v", p)
	}
	if p.String() == "" {
		t.Fatal("empty render")
	}
}
