package eval

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/studies"
	"repro/internal/synth"
)

// Report runs the named experiment(s) against the fixture and writes a
// paper-vs-measured report. exp is one of: study, table2, fig4, fig5, fig6,
// mq2, mq3, mq4, rollout, ablations, or all.
func Report(w io.Writer, f *Fixture, exp string) error {
	run := func(name string, fn func() error) error {
		if exp != "all" && exp != name {
			return nil
		}
		fmt.Fprintf(w, "=== %s ===\n", name)
		if err := fn(); err != nil {
			return fmt.Errorf("eval: %s: %w", name, err)
		}
		fmt.Fprintln(w)
		return nil
	}
	steps := []struct {
		name string
		fn   func() error
	}{
		{"study", func() error { return reportStudy(w) }},
		{"table2", func() error { return reportTable2(w, f) }},
		{"fig4", func() error { reportFig4(w, f); return nil }},
		{"fig5", func() error { return reportFig5(w, f) }},
		{"fig6", func() error { return reportFig6(w, f) }},
		{"mq2", func() error { return reportMQ2(w, f) }},
		{"mq3", func() error { return reportMQ3(w, f) }},
		{"mq4", func() error { return reportMQ4(w, f) }},
		{"rollout", func() error { return reportRollout(w, f) }},
		{"ablations", func() error { return reportAblations(w, f) }},
	}
	known := false
	for _, s := range steps {
		if exp == "all" || exp == s.name {
			known = true
		}
		if err := run(s.name, s.fn); err != nil {
			return err
		}
	}
	if !known {
		return fmt.Errorf("eval: unknown experiment %q", exp)
	}
	return nil
}

func reportStudy(w io.Writer) error {
	r, err := studies.Run(2008)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "§2 information-needs study over %d email threads\n", r.Threads)
	fmt.Fprintf(w, "%-28s %8s %8s\n", "category", "paper", "measured")
	rows := []struct {
		label string
		paper string
	}{
		{studies.MQ1, "38%"}, {studies.MQ2, "17%"},
		{studies.MQ3, "36%"}, {studies.MQ4, "29%"},
	}
	for _, row := range rows {
		fmt.Fprintf(w, "%-28s %8s %7.0f%%\n", "meta-query "+strings.TrimPrefix(row.label, "mq"), row.paper, r.Percent(row.label))
	}
	fmt.Fprintf(w, "%-28s %8s %5d/120\n", "social networking", "63/120", r.Measured[studies.Social])
	fmt.Fprintf(w, "rule categorizer accuracy %.2f; naive Bayes accuracy %.2f\n", r.Accuracy, r.NBAccuracy)
	return nil
}

func reportTable2(w io.Writer, f *Fixture) error {
	res, err := Table2(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Table 2: EIL vs keyword search, %d scope queries over %d deals\n", len(res.Rows), len(res.Deals))
	fmt.Fprintf(w, "%-4s %-34s %-26s %-26s\n", "Q", "tower", "EIL", "KW")
	for i, row := range res.Rows {
		fmt.Fprintf(w, "%-4d %-34s %-26s %-26s\n", i+1, row.Query, row.EIL, row.KW)
	}
	eilWins, kwWins, ties := res.WinsLosses()
	fmt.Fprintf(w, "EIL wins %d, KW wins %d, ties %d (paper: EIL wins 8/10)\n", eilWins, kwWins, ties)
	return nil
}

func reportFig4(w io.Writer, f *Fixture) {
	r := Fig4(f)
	fmt.Fprintf(w, "Figure 4: keyword search for End User Services\n")
	fmt.Fprintf(w, "%-40s %8s %9s\n", "query", "paper", "measured")
	fmt.Fprintf(w, "%-40s %8d %9d\n", "EUS / End User Services only", 261, r.CanonicalDocs)
	fmt.Fprintf(w, "%-40s %8d %9d\n", "with subtypes spelled out", 1132, r.ExpandedDocs)
	fmt.Fprintf(w, "expansion factor: paper 4.3x, measured %.1fx\n", r.Expansion)
}

func reportFig5(w io.Writer, f *Fixture) error {
	deals, err := Fig5(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 5: EIL concept search for End User Services (%d deals)\n", len(deals))
	for _, d := range deals {
		mark := " "
		if d.Correct {
			mark = "+"
		}
		fmt.Fprintf(w, "%s %-12s score %.2f towers: %s\n", mark, d.DealID, d.Score, strings.Join(d.Towers, ", "))
	}
	return nil
}

func reportFig6(w io.Writer, f *Fixture) error {
	deal, err := Fig6(f)
	if err != nil {
		return err
	}
	o := deal.Overview
	var towers []string
	for _, tw := range deal.Towers {
		if tw.SubTower == "" {
			towers = append(towers, tw.Tower)
		}
	}
	fmt.Fprintf(w, "Figure 6: synopsis for %s\n", o.DealID)
	fmt.Fprintf(w, "  Towers:                  %s\n", strings.Join(towers, ", "))
	fmt.Fprintf(w, "  Customer name:           %s\n", o.Customer)
	fmt.Fprintf(w, "  Industry:                %s\n", o.Industry)
	fmt.Fprintf(w, "  Out Sourcing Consultant: %s\n", o.Consultant)
	fmt.Fprintf(w, "  Contract Term Start:     %s\n", o.TermStart)
	fmt.Fprintf(w, "  Term Duration (months):  %d\n", o.TermMonths)
	fmt.Fprintf(w, "  Total Contract Value:    %s\n", o.TCVBand)
	fmt.Fprintf(w, "  Is International?        %v\n", o.International)
	fmt.Fprintf(w, "  People: %d contacts, Win Strategies: %d, Client References: %d, Technology Solutions: %d\n",
		len(deal.People), len(deal.WinStrategies), len(deal.ClientRefs), len(deal.TechSolutions))
	return nil
}

func reportMQ2(w io.Writer, f *Fixture) error {
	r, err := MQ2(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Meta-query 2: which CSE has worked with Sam White from company ABC?\n")
	fmt.Fprintf(w, "%-44s %8s %9s\n", "keyword step", "paper", "measured")
	fmt.Fprintf(w, "%-44s %8d %9d\n", `1. "Sam White ABC CSE"`, 0, r.KWStep1Docs)
	fmt.Fprintf(w, "%-44s %8d %9d\n", `2. "Sam White ABC"`, 4, r.KWStep2Docs)
	fmt.Fprintf(w, "%-44s %8d %9d\n", `3. "ABC Online CSE"`, 97, r.KWStep3Docs)
	fmt.Fprintf(w, "EIL people search: deal %v, %d contacts on the People tab, CSEs: %s\n",
		r.EILDeals, len(r.People), strings.Join(r.CSEs, ", "))
	return nil
}

func reportMQ3(w io.Writer, f *Fixture) error {
	r, err := MQ3(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Meta-query 3: who has worked in the capacity of cross tower TSA?\n")
	fmt.Fprintf(w, "keyword docs: paper 149, measured %d (only %d carry a value)\n", r.KWDocs, r.ValueDocs)
	fmt.Fprintf(w, "EIL directed contact query returns %d people:\n", len(r.EILContacts))
	for _, c := range r.EILContacts {
		fmt.Fprintf(w, "  %-14s %s\n", c.DealID, c.Name)
	}
	return nil
}

func reportMQ4(w io.Writer, f *Fixture) error {
	r, err := MQ4(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Meta-query 4: Storage Management Services tower + \"data replication\" (Figures 8-9)\n")
	fmt.Fprintf(w, "%d activities (planted deal found: %v)\n", len(r.Activities), r.PlantedFound)
	for _, a := range r.Activities {
		fmt.Fprintf(w, "  %-12s score %.2f towers: %s\n", a.DealID, a.Score, strings.Join(a.Towers, ", "))
		for _, d := range a.Docs {
			fmt.Fprintf(w, "    %.2f %s\n", d.Score, d.Path)
		}
	}
	return nil
}

func reportRollout(w io.Writer, f *Fixture) error {
	fmt.Fprintf(w, "§4 rollout: %d documents across %d activities indexed (%d distinct terms)\n",
		f.Sys.Index.DocCount(), len(f.Corpus.DealIDs), f.Sys.Index.TermCount())
	fmt.Fprintf(w, "(paper production scale: >500k documents, ~1000 engagements — same pipeline, linear generator)\n")
	p, err := MeasureLatency(f, 20)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "online query latency over a mixed workload: %s\n", p)
	return nil
}

func reportAblations(w io.Writer, f *Fixture) error {
	sc, err := AblationScoping(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "scoping: scoped %d docs vs unscoped %d (results identical: %v)\n",
		sc.ScopedDocsConsidered, sc.UnscopedDocsConsidered, sc.SameActivitySet)

	rk, err := AblationRanking(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "ranking: planted deal rank — combined #%d, synopsis-only #%d, doc-only #%d of %d\n",
		rk.CombinedRank, rk.SynopsisRank, rk.DocRank, rk.Activities)

	cfg := synth.SmallConfig()
	dir, err := AblationDirectory(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "directory: phones %.2f with vs %.2f without enrichment, %.2f validated (%d contacts)\n",
		dir.WithPhoneRate, dir.WithoutPhoneRate, dir.ValidatedRate, dir.Contacts)

	st, err := AblationStructure(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "structure: roster recall %.2f structured vs %.2f blob\n", st.StructuredRecall, st.BlobRecall)

	en, err := AblationEntity(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "entity vs conventions (§3.2.1): conventions P=%.2f R=%.2f, entity+cooccurrence P=%.2f R=%.2f\n",
		en.ConventionPrecision, en.ConventionRecall, en.EntityPrecision, en.EntityRecall)

	pts, err := AblationCPEThreshold(cfg, []float64{0.5, 1, 2, 4, 8})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "CPE threshold sweep:\n")
	for _, p := range pts {
		fmt.Fprintf(w, "  %.1f: P=%.2f R=%.2f F=%.2f\n", p.MinScopeWeight, p.MeanPrecision, p.MeanRecall, p.MeanF)
	}
	return nil
}
