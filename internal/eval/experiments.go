package eval

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/siapi"
	"repro/internal/synopsis"
)

// --- Table 2: EIL vs keyword search on scope queries ---

// Table2Row is one scope query's comparison.
type Table2Row struct {
	Query string // the tower asked about
	EIL   PRF
	KW    PRF
}

// Table2Result is the full table plus the deal subset used.
type Table2Result struct {
	Rows  []Table2Row
	Deals []string
}

// Table2Queries is the fixed query set: ten service towers, mirroring the
// paper's "10 similar queries on a set of 12 deals".
var Table2Queries = []string{
	"End User Services",
	"Storage Management Services",
	"Server Systems Management",
	"Network Services",
	"Disaster Recovery Services",
	"Data Center Services",
	"Application Management Services",
	"Security Services",
	"eBusiness Services",
	"Asset Management",
}

// Table2 runs the ten scope queries over the first twelve deals, comparing
// EIL's concept search against informed keyword search (the user spells out
// the tower's sub-types, so keyword recall is maximal — as in the paper,
// where KW recall is 1.0 on 8 of 10 queries and its precision suffers).
// Ground truth is the generator's scope assignment.
func Table2(f *Fixture) (Table2Result, error) {
	subset := f.Corpus.DealIDs
	if len(subset) > 12 {
		subset = subset[:12]
	}
	inSubset := map[string]bool{}
	for _, id := range subset {
		inSubset[id] = true
	}
	var res Table2Result
	res.Deals = subset
	for _, tower := range Table2Queries {
		relevant := []string{}
		for _, id := range subset {
			if f.Corpus.Truth[id].HasTower(tower) {
				relevant = append(relevant, id)
			}
		}
		// Keyword baseline: any document mentioning any surface form of
		// the tower marks its deal retrieved.
		kwDeals := keywordDeals(f, tower, inSubset)
		// EIL: concept search over synopses.
		eilRes, err := f.Sys.Search(f.User(), core.FormQuery{Tower: tower})
		if err != nil {
			return res, fmt.Errorf("eval: table2 %s: %w", tower, err)
		}
		var eilDeals []string
		for _, a := range eilRes.Activities {
			if inSubset[a.DealID] {
				eilDeals = append(eilDeals, a.DealID)
			}
		}
		res.Rows = append(res.Rows, Table2Row{
			Query: tower,
			EIL:   Compute(eilDeals, relevant),
			KW:    Compute(kwDeals, relevant),
		})
	}
	return res, nil
}

// keywordDeals returns subset deals having at least one document that
// mentions any surface form of the tower.
func keywordDeals(f *Fixture, tower string, inSubset map[string]bool) []string {
	forms := f.Sys.Taxonomy.Expand(tower)
	dealSet := map[string]bool{}
	for _, form := range forms {
		q := siapi.Query{All: []string{form}}
		for _, hit := range f.Sys.SIAPI.Search(q, 0) {
			if inSubset[hit.DealID] {
				dealSet[hit.DealID] = true
			}
		}
	}
	return sortedKeys(dealSet)
}

// WinsLosses counts how many rows each side wins on F-measure.
func (r Table2Result) WinsLosses() (eilWins, kwWins, ties int) {
	for _, row := range r.Rows {
		switch {
		case row.EIL.F > row.KW.F:
			eilWins++
		case row.KW.F > row.EIL.F:
			kwWins++
		default:
			ties++
		}
	}
	return
}

// --- Figure 4 / 5 / 6: Meta-query 1 walkthrough ---

// Fig4Result reports the keyword-search document counts for End User
// Services: the naive query and the subtype-expanded query (paper: 261 then
// 1132 documents).
type Fig4Result struct {
	CanonicalDocs int // "End User Services" / "EUS" only
	ExpandedDocs  int // subtypes spelled out
	Expansion     float64
}

// Fig4 runs the Meta-query 1 keyword baseline.
func Fig4(f *Fixture) Fig4Result {
	canonical := f.Sys.SIAPI.Count(siapi.Query{Any: []string{"End User Services", "EUS"}})
	var all []string
	all = append(all, f.Sys.Taxonomy.Expand("End User Services")...)
	expanded := f.Sys.SIAPI.Count(siapi.Query{Any: all})
	r := Fig4Result{CanonicalDocs: canonical, ExpandedDocs: expanded}
	if canonical > 0 {
		r.Expansion = float64(expanded) / float64(canonical)
	}
	return r
}

// Fig5Deal is one row of the EIL deal list: the deal with its towers in
// significance order (matched towers lead, as Figure 5 bolds them).
type Fig5Deal struct {
	DealID  string
	Towers  []string
	Matched []string
	Score   float64
	Correct bool // deal truly has EUS in scope
}

// Fig5 runs the Meta-query 1 EIL concept search.
func Fig5(f *Fixture) ([]Fig5Deal, error) {
	res, err := f.Sys.Search(f.User(), core.FormQuery{Tower: "End User Services"})
	if err != nil {
		return nil, err
	}
	var out []Fig5Deal
	for _, a := range res.Activities {
		d := Fig5Deal{DealID: a.DealID, Matched: a.MatchedTowers, Score: a.Score}
		if a.Synopsis != nil {
			for _, tw := range a.Synopsis.Towers {
				if tw.SubTower == "" {
					d.Towers = append(d.Towers, tw.Tower)
				}
			}
		}
		if truth := f.Corpus.Truth[a.DealID]; truth != nil {
			d.Correct = truth.HasTower("End User Services")
		}
		out = append(out, d)
	}
	return out, nil
}

// Fig6 fetches the synopsis of the top Figure 5 deal — the business context
// panel of the paper's Figure 6.
func Fig6(f *Fixture) (synopsis.Deal, error) {
	deals, err := Fig5(f)
	if err != nil {
		return synopsis.Deal{}, err
	}
	if len(deals) == 0 {
		return synopsis.Deal{}, fmt.Errorf("eval: fig6: no EUS deals")
	}
	return f.Sys.Synopses.Get(deals[0].DealID)
}

// --- Meta-query 2: the people funnel ---

// MQ2Result contrasts the three-step keyword funnel with EIL's single
// people search (paper: 0 docs, then 4 docs, then 97 docs; EIL finds the
// deal and its categorized contact list in one query).
type MQ2Result struct {
	KWStep1Docs int // "Sam White ABC CSE"
	KWStep2Docs int // "Sam White ABC"
	KWStep3Docs int // "ABC ONLINE CSE"
	EILDeals    []string
	// People is the categorized contact list of the found deal.
	People []synopsis.Contact
	// CSEs are the names EIL reports in the CSE role on the found deal.
	CSEs []string
}

// MQ2 runs the funnel.
func MQ2(f *Fixture) (MQ2Result, error) {
	var r MQ2Result
	r.KWStep1Docs = f.Sys.KeywordCount(`Sam White ABC CSE`)
	r.KWStep2Docs = f.Sys.KeywordCount(`Sam White ABC`)
	r.KWStep3Docs = f.Sys.KeywordCount(`ABC ONLINE CSE`)

	res, err := f.Sys.Search(f.User(), core.FormQuery{PersonName: "Sam White", PersonOrg: "ABC"})
	if err != nil {
		return r, err
	}
	for _, a := range res.Activities {
		r.EILDeals = append(r.EILDeals, a.DealID)
	}
	if len(res.Activities) > 0 && res.Activities[0].Synopsis != nil {
		r.People = res.Activities[0].Synopsis.People
		for _, p := range r.People {
			if strings.Contains(strings.ToLower(p.Role), "cse") ||
				strings.Contains(strings.ToLower(p.Role), "client solution executive") {
				r.CSEs = append(r.CSEs, p.Name)
			}
		}
	}
	return r, nil
}

// --- Meta-query 3: schema-field noise ---

// MQ3Result contrasts keyword search for "cross tower TSA" (mostly hits on
// empty schema fields; paper: 149 documents) with EIL's directed contact
// query.
type MQ3Result struct {
	KWDocs int
	// ValueDocs counts documents where the field actually carries a value
	// — the only useful hits, buried in the keyword result list.
	ValueDocs int
	// EILContacts are the (deal, person) pairs EIL returns directly.
	EILContacts []MQ3Contact
}

// MQ3Contact is one person found in the cross-tower-TSA capacity.
type MQ3Contact struct {
	DealID string
	Name   string
}

// MQ3 runs the comparison. The directed query goes straight at the contacts
// table — the "search on ... only the contact list created from social
// networking annotator" of the paper.
func MQ3(f *Fixture) (MQ3Result, error) {
	var r MQ3Result
	r.KWDocs = f.Sys.KeywordCount(`"cross tower TSA"`)
	// Ground truth from indexed grids: hits whose TSA column has a value.
	for _, doc := range f.Corpus.Docs {
		if doc.Structure == nil || doc.Structure.Grid == nil {
			continue
		}
		g := doc.Structure.Grid
		col := g.ColumnIndex("cross tower tsa")
		if col < 0 {
			continue
		}
		for row := 1; row < len(g.Rows); row++ {
			if g.Cell(row, col) != "" {
				r.ValueDocs++
				break
			}
		}
	}
	rows, err := f.Sys.Synopses.Conn().Query(
		`SELECT deal_id, name FROM contacts WHERE LOWER(role) LIKE '%cross tower tsa%' ORDER BY deal_id, name`)
	if err != nil {
		return r, err
	}
	for _, row := range rows.Data {
		r.EILContacts = append(r.EILContacts, MQ3Contact{
			DealID: row[0].(string), Name: row[1].(string),
		})
	}
	return r, nil
}

// --- Meta-query 4: combined concept + keyword query ---

// MQ4Result is the Figure 9 output: activities first, then each activity's
// matching documents.
type MQ4Result struct {
	Activities []MQ4Activity
	// PlantedFound reports whether the walkthrough deal (Storage
	// Management Services scope with a data-replication solution) ranks in
	// the results.
	PlantedFound bool
}

// MQ4Activity is one returned activity with its documents.
type MQ4Activity struct {
	DealID string
	Score  float64
	Towers []string
	Docs   []siapi.DocHit
}

// MQ4 runs the Figure 8 form query: tower = Storage Management Services,
// exact phrase "data replication" anywhere in the engagement workbooks.
func MQ4(f *Fixture) (MQ4Result, error) {
	res, err := f.Sys.Search(f.User(), core.FormQuery{
		Tower:       "Storage Management Services",
		ExactPhrase: "data replication",
		DocsPerDeal: 3,
	})
	if err != nil {
		return MQ4Result{}, err
	}
	var r MQ4Result
	for _, a := range res.Activities {
		act := MQ4Activity{DealID: a.DealID, Score: a.Score, Docs: a.Docs}
		if a.Synopsis != nil {
			for _, tw := range a.Synopsis.Towers {
				if tw.SubTower == "" {
					act.Towers = append(act.Towers, tw.Tower)
				}
			}
		}
		r.Activities = append(r.Activities, act)
		if a.DealID == "ABC ONLINE" {
			r.PlantedFound = true
		}
	}
	return r, nil
}

// --- Production rollout scale (§4 closing) ---

// RolloutResult summarizes an ingest at a larger scale (the paper reports
// >500k documents from ~1000 engagements in production; the default here is
// a reduced profile, scaled by the caller).
type RolloutResult struct {
	Deals int
	Docs  int
	Terms int
}
