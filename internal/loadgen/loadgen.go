// Package loadgen synthesizes realistic load against the search system:
// open-loop (Poisson arrivals at a target rate) and closed-loop (fixed
// worker pool) phases over a mixed search/ingest/compact operation stream
// whose user, deal, and query populations are zipfian-skewed — a handful
// of bankers and live deals dominate traffic, the long tail trickles.
//
// The open/closed distinction is the point, not a nicety: a closed loop's
// arrival rate collapses with the system (each stalled worker stops
// offering load), so it reports flattering latencies right when the system
// saturates. An open loop keeps offering arrivals on schedule and exposes
// queueing collapse as dropped arrivals and tail blow-up. Sweeping a ramp
// of open-loop phases yields the throughput-vs-latency curve that tells an
// operator where the knee is.
//
// The package is deliberately ignorant of the engine: callers provide a
// `Do` callback that executes one Request and reports refusal/error, so
// the same generator drives a monolith, a sharded cluster, or an HTTP
// front end. Latencies land in a bounded quantile sketch
// ([repro/internal/quantile]) — memory stays flat no matter how many
// arrivals a phase offers.
package loadgen

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/quantile"
)

// Op is one kind of traffic in the mix.
type Op int

const (
	// OpSearch is a scoped form-based search (the primary workload).
	OpSearch Op = iota
	// OpKeyword is an unscoped keyword search.
	OpKeyword
	// OpIngest is a small document-update batch against one deal.
	OpIngest
	// OpCompact is an index compaction (heavyweight; use sparingly).
	OpCompact
	numOps
)

// String names the op for labels and JSON.
func (o Op) String() string {
	switch o {
	case OpSearch:
		return "search"
	case OpKeyword:
		return "keyword"
	case OpIngest:
		return "ingest"
	case OpCompact:
		return "compact"
	}
	return "unknown"
}

// Mix weighs the traffic classes. Zero-valued fields get no traffic; an
// all-zero mix defaults to pure search.
type Mix struct {
	Search  int `json:"search"`
	Keyword int `json:"keyword"`
	Ingest  int `json:"ingest"`
	Compact int `json:"compact"`
}

// DefaultMix mirrors the paper's deployment shape: read-heavy with a
// steady trickle of document updates.
func DefaultMix() Mix { return Mix{Search: 70, Keyword: 20, Ingest: 10} }

func (m Mix) total() int { return m.Search + m.Keyword + m.Ingest + m.Compact }

// pick maps a uniform draw in [0, total) to an op.
func (m Mix) pick(r int) Op {
	if r < m.Search {
		return OpSearch
	}
	r -= m.Search
	if r < m.Keyword {
		return OpKeyword
	}
	r -= m.Keyword
	if r < m.Ingest {
		return OpIngest
	}
	return OpCompact
}

// Request is one generated operation. User/Deal/Query are indices into the
// caller's populations (0-based, zipf-skewed: low indices are hot); the
// caller maps them to concrete principals, deal IDs, and query forms.
type Request struct {
	N     uint64 // arrival sequence number within the phase
	Op    Op
	User  int
	Deal  int
	Query int
}

// Do executes one request. Return refused=true for load-shedding responses
// (degraded 503s, breaker rejections) — they count separately from hard
// errors. The runner measures latency around the call.
type Do func(ctx context.Context, req Request) (refused bool, err error)

// Options configure a generator. Zero values get sane defaults.
type Options struct {
	Seed int64 // deterministic request stream per seed (default 1)
	Mix  Mix   // traffic weights (default DefaultMix)

	// Population sizes for the skewed draws (defaults 50 users, 20 deals,
	// 200 distinct queries).
	Users   int
	Deals   int
	Queries int

	// Skew is the zipf s parameter (>1; default 1.3). Higher is hotter.
	Skew float64

	// MaxInFlight caps concurrent requests in open-loop phases. Arrivals
	// beyond the cap are dropped (counted, not executed) — the open-loop
	// signal that the system has fallen behind its offered load.
	// Default 256.
	MaxInFlight int

	// DrainGrace bounds the wait for in-flight requests after a phase's
	// arrival window closes (default 10s).
	DrainGrace time.Duration

	// SketchAccuracy and SketchBins configure the latency sketch
	// (defaults quantile.DefAccuracy / quantile.DefMaxBins).
	SketchAccuracy float64
	SketchBins     int
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Mix.total() <= 0 {
		o.Mix = DefaultMix()
	}
	if o.Users <= 0 {
		o.Users = 50
	}
	if o.Deals <= 0 {
		o.Deals = 20
	}
	if o.Queries <= 0 {
		o.Queries = 200
	}
	if o.Skew <= 1 {
		o.Skew = 1.3
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 256
	}
	if o.DrainGrace <= 0 {
		o.DrainGrace = 10 * time.Second
	}
	return o
}

// Phase is one step of a ramp schedule. TargetQPS > 0 selects the open
// loop: Poisson arrivals at that rate for Duration. Otherwise the phase is
// a closed loop: Workers goroutines drain Requests total requests.
type Phase struct {
	Name      string
	TargetQPS float64
	Duration  time.Duration
	Workers   int
	Requests  int
}

// Result is what one phase measured.
type Result struct {
	Phase     string
	Mode      string // "open" or "closed"
	TargetQPS float64
	Offered   uint64 // arrivals generated (open) or requests scheduled (closed)
	Started   uint64 // requests actually executed
	Completed uint64 // executed successfully (excludes refused and errored)
	Dropped   uint64 // open-loop arrivals shed at the in-flight cap
	Refused   uint64 // executed but refused by the system (degraded/shed)
	Errors    uint64 // hard errors from Do
	Wall      time.Duration
	Latency   *quantile.Sketch // latency of started requests, seconds
	Err       error            // first hard error, if any
}

// OfferedQPS is the arrival rate the phase actually generated.
func (r Result) OfferedQPS() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Offered) / r.Wall.Seconds()
}

// AchievedQPS is the completion rate — the y-axis companion to the
// latency quantiles.
func (r Result) AchievedQPS() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Wall.Seconds()
}

// Generator produces the deterministic skewed request stream and runs
// phases against a Do. Not safe for concurrent phase runs.
type Generator struct {
	opts  Options
	rng   *rand.Rand
	users *rand.Zipf
	deals *rand.Zipf
	qrys  *rand.Zipf
	seq   uint64
}

// New builds a generator. The request stream (ops, users, deals, queries)
// is fully determined by Options.Seed; only timing varies run to run.
func New(opts Options) *Generator {
	o := opts.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))
	return &Generator{
		opts:  o,
		rng:   rng,
		users: rand.NewZipf(rng, o.Skew, 1, uint64(o.Users-1)),
		deals: rand.NewZipf(rng, o.Skew, 1, uint64(o.Deals-1)),
		qrys:  rand.NewZipf(rng, o.Skew, 1, uint64(o.Queries-1)),
	}
}

// next draws one request. Callers must serialize (the rng is not
// goroutine-safe); both loop modes draw from a single goroutine.
func (g *Generator) next() Request {
	g.seq++
	return Request{
		N:     g.seq,
		Op:    g.opts.Mix.pick(g.rng.Intn(g.opts.Mix.total())),
		User:  int(g.users.Uint64()),
		Deal:  int(g.deals.Uint64()),
		Query: int(g.qrys.Uint64()),
	}
}

// newSketch builds a phase latency sketch with the configured bounds.
func (g *Generator) newSketch() *quantile.Sketch {
	return quantile.New(g.opts.SketchAccuracy, g.opts.SketchBins)
}

// Run executes one phase. Open-loop phases run for phase.Duration plus up
// to DrainGrace; closed-loop phases run until Requests drain or ctx ends.
func (g *Generator) Run(ctx context.Context, phase Phase, do Do) Result {
	if phase.TargetQPS > 0 {
		return g.openLoop(ctx, phase, do)
	}
	return g.closedLoop(ctx, phase, do)
}

// RunRamp executes the schedule in order, stopping early only if ctx ends.
func (g *Generator) RunRamp(ctx context.Context, phases []Phase, do Do) []Result {
	results := make([]Result, 0, len(phases))
	for _, p := range phases {
		if ctx.Err() != nil {
			break
		}
		results = append(results, g.Run(ctx, p, do))
	}
	return results
}

// openLoop offers Poisson arrivals at TargetQPS for Duration. Each arrival
// gets its own goroutine if the in-flight cap allows; otherwise it is
// dropped and counted. Arrivals never wait for earlier requests — that is
// what keeps the loop open.
func (g *Generator) openLoop(ctx context.Context, phase Phase, do Do) Result {
	res := Result{Phase: phase.Name, Mode: "open", TargetQPS: phase.TargetQPS, Latency: g.newSketch()}
	if phase.Duration <= 0 || phase.TargetQPS <= 0 {
		return res
	}

	var (
		mu       sync.Mutex // guards res.Latency and res.Err
		wg       sync.WaitGroup
		inFlight atomic.Int64
		started  atomic.Uint64
		complete atomic.Uint64
		refused  atomic.Uint64
		errs     atomic.Uint64
	)

	begin := time.Now()
	deadline := begin.Add(phase.Duration)
	timer := time.NewTimer(0)
	defer timer.Stop()

	// Exponential inter-arrival times make the arrival process Poisson at
	// rate TargetQPS. The rng is shared with request drawing, so both stay
	// on this goroutine and the stream stays deterministic per seed.
	next := begin
arrivals:
	for {
		next = next.Add(time.Duration(g.rng.ExpFloat64() / phase.TargetQPS * float64(time.Second)))
		if next.After(deadline) {
			break
		}
		if d := time.Until(next); d > 0 {
			timer.Reset(d)
			select {
			case <-timer.C:
			case <-ctx.Done():
				break arrivals
			}
		} else if ctx.Err() != nil {
			break
		}
		res.Offered++
		req := g.next()
		if inFlight.Load() >= int64(g.opts.MaxInFlight) {
			res.Dropped++
			continue
		}
		inFlight.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer inFlight.Add(-1)
			started.Add(1)
			t0 := time.Now()
			ref, err := do(ctx, req)
			lat := time.Since(t0).Seconds()
			mu.Lock()
			res.Latency.Observe(lat)
			if err != nil && res.Err == nil && !errors.Is(err, context.Canceled) {
				res.Err = err
			}
			mu.Unlock()
			switch {
			case err != nil:
				errs.Add(1)
			case ref:
				refused.Add(1)
			default:
				complete.Add(1)
			}
		}()
	}

	// Bounded drain: give stragglers DrainGrace, then abandon them (their
	// goroutines finish against ctx; we just stop waiting).
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	graceTimer := time.NewTimer(g.opts.DrainGrace)
	defer graceTimer.Stop()
	select {
	case <-done:
	case <-graceTimer.C:
	case <-ctx.Done():
		select {
		case <-done:
		case <-graceTimer.C:
		}
	}

	res.Wall = time.Since(begin)
	res.Started = started.Load()
	res.Completed = complete.Load()
	res.Refused = refused.Load()
	res.Errors = errs.Load()
	return res
}

// closedLoop drains phase.Requests requests through phase.Workers
// goroutines. Requests are drawn up front (the rng is single-goroutine);
// workers contend on an atomic cursor, so a slow request stalls only its
// worker.
func (g *Generator) closedLoop(ctx context.Context, phase Phase, do Do) Result {
	res := Result{Phase: phase.Name, Mode: "closed", Latency: g.newSketch()}
	n := phase.Requests
	if n <= 0 {
		return res
	}
	workers := phase.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = g.next()
	}
	res.Offered = uint64(n)

	var (
		cursor   atomic.Int64
		complete atomic.Uint64
		refused  atomic.Uint64
		errs     atomic.Uint64
		wg       sync.WaitGroup
	)
	sketches := make([]*quantile.Sketch, workers)
	firstErr := make([]error, workers)

	begin := time.Now()
	for w := 0; w < workers; w++ {
		w := w
		sketches[w] = g.newSketch()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := cursor.Add(1) - 1
				if i >= int64(n) || ctx.Err() != nil {
					return
				}
				t0 := time.Now()
				ref, err := do(ctx, reqs[i])
				sketches[w].Observe(time.Since(t0).Seconds())
				switch {
				case err != nil:
					errs.Add(1)
					if firstErr[w] == nil && !errors.Is(err, context.Canceled) {
						firstErr[w] = err
					}
					return // a hard error stops this worker; others drain on
				case ref:
					refused.Add(1)
				default:
					complete.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	res.Wall = time.Since(begin)

	for w := 0; w < workers; w++ {
		_ = res.Latency.Merge(sketches[w])
		if res.Err == nil && firstErr[w] != nil {
			res.Err = firstErr[w]
		}
	}
	res.Started = res.Latency.Count()
	res.Completed = complete.Load()
	res.Refused = refused.Load()
	res.Errors = errs.Load()
	return res
}
