package loadgen

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// The request stream must be fully deterministic per seed: same ops, same
// user/deal/query indices, in order.
func TestDeterministicStream(t *testing.T) {
	draw := func() []Request {
		g := New(Options{Seed: 42})
		reqs := make([]Request, 500)
		for i := range reqs {
			reqs[i] = g.next()
		}
		return reqs
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stream diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// Zipf skew: the hottest deal must dominate, and the mix weights must be
// roughly honored.
func TestSkewAndMix(t *testing.T) {
	g := New(Options{Seed: 7, Deals: 100, Mix: Mix{Search: 70, Keyword: 20, Ingest: 10}})
	const n = 20000
	dealHits := make(map[int]int)
	opHits := make(map[Op]int)
	for i := 0; i < n; i++ {
		r := g.next()
		dealHits[r.Deal]++
		opHits[r.Op]++
	}
	if frac := float64(dealHits[0]) / n; frac < 0.3 {
		t.Errorf("hottest deal got %.1f%% of traffic, want zipf-dominant (>30%%)", frac*100)
	}
	if dealHits[0] <= dealHits[5] {
		t.Errorf("deal 0 (%d hits) not hotter than deal 5 (%d hits)", dealHits[0], dealHits[5])
	}
	if frac := float64(opHits[OpSearch]) / n; frac < 0.6 || frac > 0.8 {
		t.Errorf("search fraction %.2f, want ~0.70", frac)
	}
	if opHits[OpCompact] != 0 {
		t.Errorf("compact weight 0 but got %d compacts", opHits[OpCompact])
	}
}

// Open loop: a fast Do must complete roughly TargetQPS * Duration arrivals
// with no drops.
func TestOpenLoopHealthy(t *testing.T) {
	g := New(Options{Seed: 1})
	res := g.Run(context.Background(), Phase{Name: "healthy", TargetQPS: 500, Duration: 400 * time.Millisecond},
		func(ctx context.Context, req Request) (bool, error) { return false, nil })
	if res.Mode != "open" {
		t.Fatalf("mode = %q", res.Mode)
	}
	if res.Offered < 100 || res.Offered > 400 {
		t.Errorf("offered = %d, want ~200 (500qps x 0.4s)", res.Offered)
	}
	if res.Dropped != 0 {
		t.Errorf("dropped = %d on an instant Do", res.Dropped)
	}
	if res.Completed != res.Offered {
		t.Errorf("completed %d != offered %d", res.Completed, res.Offered)
	}
	if res.Latency.Count() != res.Started {
		t.Errorf("latency count %d != started %d", res.Latency.Count(), res.Started)
	}
}

// Open loop under saturation: a Do slower than the arrival interval with a
// tiny in-flight cap must shed arrivals as drops instead of slowing the
// arrival process — the property a closed loop cannot show.
func TestOpenLoopShedsWhenSaturated(t *testing.T) {
	g := New(Options{Seed: 1, MaxInFlight: 2, DrainGrace: 2 * time.Second})
	var started atomic.Uint64
	res := g.Run(context.Background(), Phase{Name: "saturated", TargetQPS: 400, Duration: 300 * time.Millisecond},
		func(ctx context.Context, req Request) (bool, error) {
			started.Add(1)
			time.Sleep(50 * time.Millisecond) // service rate ~40/s max at cap 2
			return false, nil
		})
	if res.Dropped == 0 {
		t.Fatalf("no drops at 400qps offered vs ~40qps service capacity (offered=%d started=%d)",
			res.Offered, res.Started)
	}
	if res.Started+res.Dropped != res.Offered {
		t.Errorf("started %d + dropped %d != offered %d", res.Started, res.Dropped, res.Offered)
	}
	if res.Started > res.Offered/2 {
		t.Errorf("started %d should be well under offered %d at this saturation", res.Started, res.Offered)
	}
}

// Refusals and errors are accounted separately from completions.
func TestOpenLoopRefusedAndErrors(t *testing.T) {
	g := New(Options{Seed: 1})
	boom := errors.New("backend down")
	var n atomic.Uint64
	res := g.Run(context.Background(), Phase{Name: "mixed", TargetQPS: 300, Duration: 300 * time.Millisecond},
		func(ctx context.Context, req Request) (bool, error) {
			switch n.Add(1) % 3 {
			case 0:
				return true, nil // refused
			case 1:
				return false, boom
			}
			return false, nil
		})
	if res.Refused == 0 || res.Errors == 0 || res.Completed == 0 {
		t.Fatalf("refused=%d errors=%d completed=%d, want all nonzero", res.Refused, res.Errors, res.Completed)
	}
	if res.Completed+res.Refused+res.Errors != res.Started {
		t.Errorf("completed %d + refused %d + errors %d != started %d",
			res.Completed, res.Refused, res.Errors, res.Started)
	}
	if !errors.Is(res.Err, boom) {
		t.Errorf("res.Err = %v, want %v", res.Err, boom)
	}
}

// Closed loop drains exactly Requests requests across Workers.
func TestClosedLoop(t *testing.T) {
	g := New(Options{Seed: 1})
	var calls atomic.Uint64
	res := g.Run(context.Background(), Phase{Name: "closed", Workers: 4, Requests: 200},
		func(ctx context.Context, req Request) (bool, error) {
			calls.Add(1)
			return false, nil
		})
	if res.Mode != "closed" {
		t.Fatalf("mode = %q", res.Mode)
	}
	if calls.Load() != 200 || res.Completed != 200 || res.Started != 200 {
		t.Errorf("calls=%d completed=%d started=%d, want 200", calls.Load(), res.Completed, res.Started)
	}
	if res.Latency.Count() != 200 {
		t.Errorf("latency count = %d", res.Latency.Count())
	}
}

// A hard error stops only the failing worker; the rest drain the schedule.
func TestClosedLoopErrorStopsOneWorker(t *testing.T) {
	g := New(Options{Seed: 1})
	boom := errors.New("mid-drain failure")
	var calls atomic.Uint64
	res := g.Run(context.Background(), Phase{Name: "err", Workers: 3, Requests: 90},
		func(ctx context.Context, req Request) (bool, error) {
			if calls.Add(1) == 10 {
				return false, boom
			}
			return false, nil
		})
	if !errors.Is(res.Err, boom) {
		t.Fatalf("res.Err = %v, want %v", res.Err, boom)
	}
	if res.Errors != 1 {
		t.Errorf("errors = %d, want 1", res.Errors)
	}
	// Two healthy workers keep draining: everything but the failed request
	// completes.
	if res.Completed != 89 {
		t.Errorf("completed = %d, want 89", res.Completed)
	}
}

// Context cancellation ends an open-loop phase early and still returns a
// consistent result.
func TestOpenLoopCancel(t *testing.T) {
	g := New(Options{Seed: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	res := g.Run(ctx, Phase{Name: "cancel", TargetQPS: 100, Duration: 30 * time.Second},
		func(ctx context.Context, req Request) (bool, error) { return false, nil })
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("cancelled phase took %v", e)
	}
	if res.Started+res.Dropped > res.Offered {
		t.Errorf("started %d + dropped %d > offered %d", res.Started, res.Dropped, res.Offered)
	}
}

// Ramp produces open-loop phases and Points flattens them for the artifact.
func TestRampAndPoints(t *testing.T) {
	g := New(Options{Seed: 1})
	phases := Ramp([]float64{100, 200}, 150*time.Millisecond)
	if len(phases) != 2 || phases[0].TargetQPS != 100 || phases[1].TargetQPS != 200 {
		t.Fatalf("ramp = %+v", phases)
	}
	results := g.RunRamp(context.Background(), phases, func(ctx context.Context, req Request) (bool, error) {
		time.Sleep(time.Millisecond)
		return false, nil
	})
	pts := Points(results)
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Completed == 0 || p.AchievedQPS <= 0 {
			t.Errorf("point %q: completed=%d achieved=%.1f", p.Phase, p.Completed, p.AchievedQPS)
		}
		if p.P99Ms < p.P50Ms {
			t.Errorf("point %q: p99 %.3f < p50 %.3f", p.Phase, p.P99Ms, p.P50Ms)
		}
		if p.P50Ms <= 0 {
			t.Errorf("point %q: p50 %.3f, want ~1ms", p.Phase, p.P50Ms)
		}
	}
}
