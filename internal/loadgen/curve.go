package loadgen

import (
	"strconv"
	"time"
)

// CurvePoint is one phase of a ramp, flattened for the BENCH artifact and
// the dashboard. Latencies are milliseconds; rates are per second.
type CurvePoint struct {
	Phase       string  `json:"phase"`
	Mode        string  `json:"mode"`
	TargetQPS   float64 `json:"target_qps,omitempty"`
	OfferedQPS  float64 `json:"offered_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	Offered     uint64  `json:"offered"`
	Completed   uint64  `json:"completed"`
	Dropped     uint64  `json:"dropped,omitempty"`
	Refused     uint64  `json:"refused,omitempty"`
	Errors      uint64  `json:"errors,omitempty"`
	WallMs      float64 `json:"wall_ms"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MeanMs      float64 `json:"mean_ms"`
	MaxMs       float64 `json:"max_ms"`
}

// Curve is one labeled throughput-vs-latency series (e.g. "monolith
// procs=4" or "shards=4 procs=1").
type Curve struct {
	Label  string       `json:"label"`
	Points []CurvePoint `json:"points"`
}

// Point flattens a phase Result into a CurvePoint.
func Point(r Result) CurvePoint {
	ms := func(sec float64) float64 { return sec * 1e3 }
	return CurvePoint{
		Phase:       r.Phase,
		Mode:        r.Mode,
		TargetQPS:   r.TargetQPS,
		OfferedQPS:  r.OfferedQPS(),
		AchievedQPS: r.AchievedQPS(),
		Offered:     r.Offered,
		Completed:   r.Completed,
		Dropped:     r.Dropped,
		Refused:     r.Refused,
		Errors:      r.Errors,
		WallMs:      float64(r.Wall) / float64(time.Millisecond),
		P50Ms:       ms(r.Latency.Quantile(0.50)),
		P95Ms:       ms(r.Latency.Quantile(0.95)),
		P99Ms:       ms(r.Latency.Quantile(0.99)),
		MeanMs:      ms(r.Latency.Mean()),
		MaxMs:       ms(r.Latency.Max()),
	}
}

// Points flattens a ramp's results.
func Points(results []Result) []CurvePoint {
	pts := make([]CurvePoint, 0, len(results))
	for _, r := range results {
		pts = append(pts, Point(r))
	}
	return pts
}

// Ramp builds an open-loop QPS ramp schedule: one phase per target rate,
// each held for the given duration.
func Ramp(targets []float64, hold time.Duration) []Phase {
	phases := make([]Phase, 0, len(targets))
	for _, qps := range targets {
		phases = append(phases, Phase{
			Name:      "open-" + formatQPS(qps),
			TargetQPS: qps,
			Duration:  hold,
		})
	}
	return phases
}

func formatQPS(q float64) string {
	return strconv.FormatFloat(q, 'g', 4, 64) + "qps"
}
