package textproc

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

func TestTokenizeBasic(t *testing.T) {
	a := Analyzer{}
	toks := a.Tokenize("Hello, World! 42 times.")
	want := []string{"hello", "world", "42", "times"}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %+v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Term != w {
			t.Errorf("token %d: got %q want %q", i, toks[i].Term, w)
		}
	}
}

func TestTokenizeOffsets(t *testing.T) {
	a := Analyzer{}
	text := "alpha beta  gamma"
	for _, tok := range a.Tokenize(text) {
		if got := text[tok.Start:tok.End]; got != tok.Surface {
			t.Errorf("offset mismatch: slice %q vs surface %q", got, tok.Surface)
		}
	}
}

func TestTokenizePositionsMonotonic(t *testing.T) {
	a := DefaultAnalyzer
	toks := a.Tokenize("the quick brown fox and the lazy dog")
	last := -1
	for _, tok := range toks {
		if tok.Pos <= last {
			t.Fatalf("positions not strictly increasing: %v", toks)
		}
		last = tok.Pos
	}
	// "the" and "and" are stopwords; positions of surviving tokens must keep
	// gaps so "quick brown" stays adjacent but "fox lazy" does not.
	if toks[0].Term != "quick" || toks[0].Pos != 1 {
		t.Errorf("first surviving token = %+v, want quick at pos 1", toks[0])
	}
}

func TestTokenizeStopwords(t *testing.T) {
	a := Analyzer{DropStopwords: true}
	terms := a.Terms("the deal is in the scope of the engagement")
	for _, term := range terms {
		if IsStopword(term) {
			t.Errorf("stopword %q survived", term)
		}
	}
	if len(terms) != 3 { // deal, scope, engagement
		t.Errorf("got %v, want 3 content terms", terms)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	a := Analyzer{}
	terms := a.Terms("café Zürich naïve")
	if len(terms) != 3 {
		t.Fatalf("got %v", terms)
	}
	if terms[0] != "café" || terms[1] != "zürich" {
		t.Errorf("unicode terms mangled: %v", terms)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	a := DefaultAnalyzer
	if toks := a.Tokenize(""); len(toks) != 0 {
		t.Errorf("empty input produced %v", toks)
	}
	if toks := a.Tokenize("   \t\n  ,;!"); len(toks) != 0 {
		t.Errorf("separator-only input produced %v", toks)
	}
}

func TestAcronymNotStemmed(t *testing.T) {
	a := DefaultAnalyzer
	terms := a.Terms("EUS services TSA roles")
	// "EUS" must stay "eus" (not stemmed to "eu"); "services" stems to "servic".
	found := map[string]bool{}
	for _, term := range terms {
		found[term] = true
	}
	if !found["eus"] {
		t.Errorf("acronym EUS was altered: %v", terms)
	}
	if !found["servic"] {
		t.Errorf("services not stemmed: %v", terms)
	}
	if !found["tsa"] {
		t.Errorf("acronym TSA was altered: %v", terms)
	}
}

func TestNormalizeTermAgreesWithTokenize(t *testing.T) {
	a := DefaultAnalyzer
	for _, w := range []string{"Services", "replication", "EUS", "Storage", "engagements"} {
		toks := a.Tokenize(w)
		if len(toks) != 1 {
			t.Fatalf("tokenize(%q) = %v", w, toks)
		}
		if got := a.NormalizeTerm(w); got != toks[0].Term {
			t.Errorf("NormalizeTerm(%q)=%q, Tokenize=%q", w, got, toks[0].Term)
		}
	}
}

func TestStemKnownPairs(t *testing.T) {
	// Spot vectors from Porter's published test set.
	pairs := map[string]string{
		"caresses":       "caress",
		"ponies":         "poni",
		"ties":           "ti",
		"caress":         "caress",
		"cats":           "cat",
		"feed":           "feed",
		"agreed":         "agre",
		"plastered":      "plaster",
		"bled":           "bled",
		"motoring":       "motor",
		"sing":           "sing",
		"conflated":      "conflat",
		"troubled":       "troubl",
		"sized":          "size",
		"hopping":        "hop",
		"tanned":         "tan",
		"falling":        "fall",
		"hissing":        "hiss",
		"fizzed":         "fizz",
		"failing":        "fail",
		"filing":         "file",
		"happy":          "happi",
		"sky":            "sky",
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		"triplicate":     "triplic",
		"formative":      "form",
		"formalize":      "formal",
		"electriciti":    "electr",
		"electrical":     "electr",
		"hopeful":        "hope",
		"goodness":       "good",
		"revival":        "reviv",
		"allowance":      "allow",
		"inference":      "infer",
		"airliner":       "airlin",
		"gyroscopic":     "gyroscop",
		"adjustable":     "adjust",
		"defensible":     "defens",
		"irritant":       "irrit",
		"replacement":    "replac",
		"adjustment":     "adjust",
		"dependent":      "depend",
		"adoption":       "adopt",
		"homologou":      "homolog",
		"communism":      "commun",
		"activate":       "activ",
		"angulariti":     "angular",
		"homologous":     "homolog",
		"effective":      "effect",
		"bowdlerize":     "bowdler",
		"probate":        "probat",
		"rate":           "rate",
		"cease":          "ceas",
		"controll":       "control",
		"roll":           "roll",
		"replication":    "replic",
		"storage":        "storag",
		"services":       "servic",
		"engagement":     "engag",
	}
	for in, want := range pairs {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortWordsUnchanged(t *testing.T) {
	for _, w := range []string{"", "a", "at", "be", "is"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemNonAlphaUnchanged(t *testing.T) {
	for _, w := range []string{"abc123", "x-ray", "über"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemIdempotentish(t *testing.T) {
	// Porter is not strictly idempotent, but double-stemming must never
	// panic or grow the word.
	err := quick.Check(func(s string) bool {
		w := strings.ToLower(s)
		once := Stem(w)
		twice := Stem(once)
		return len(twice) <= len(once)+1
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestTokenizeNeverPanicsProperty(t *testing.T) {
	a := DefaultAnalyzer
	err := quick.Check(func(s string) bool {
		toks := a.Tokenize(s)
		for _, tok := range toks {
			if tok.Start < 0 || tok.End > len(s) || tok.Start >= tok.End {
				return false
			}
			if tok.Term == "" {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

func TestTokenizeTermsLowercaseProperty(t *testing.T) {
	a := Analyzer{} // no stemming: terms must be exactly lowercased surfaces
	err := quick.Check(func(s string) bool {
		for _, tok := range a.Tokenize(s) {
			if tok.Term != strings.ToLower(tok.Surface) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

func TestSplitSentences(t *testing.T) {
	got := SplitSentences("First point. Second point! Third?\nFourth line")
	want := []string{"First point.", "Second point!", "Third?", "Fourth line"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sentence %d: %q want %q", i, got[i], want[i])
		}
	}
}

func TestSplitSentencesAbbreviation(t *testing.T) {
	got := SplitSentences("Contact john.smith@abc.com for details. Thanks.")
	if len(got) != 2 {
		t.Fatalf("email address split a sentence: %v", got)
	}
}

func TestFoldWhitespace(t *testing.T) {
	cases := map[string]string{
		"  a   b\t\nc ": "a b c",
		"":              "",
		"   ":           "",
		"single":        "single",
	}
	for in, want := range cases {
		if got := FoldWhitespace(in); got != want {
			t.Errorf("FoldWhitespace(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFoldWhitespaceProperty(t *testing.T) {
	err := quick.Check(func(s string) bool {
		out := FoldWhitespace(s)
		if strings.Contains(out, "  ") {
			return false
		}
		if out != strings.TrimSpace(out) {
			return false
		}
		// No non-space content may be lost.
		strip := func(r rune) rune {
			if unicode.IsSpace(r) {
				return -1
			}
			return r
		}
		return strings.Map(strip, s) == strings.Map(strip, out)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

func TestIsStopword(t *testing.T) {
	for _, w := range []string{"the", "and", "of"} {
		if !IsStopword(w) {
			t.Errorf("%q should be a stopword", w)
		}
	}
	for _, w := range []string{"deal", "tsa", "storage", ""} {
		if IsStopword(w) {
			t.Errorf("%q must not be a stopword", w)
		}
	}
	if StopwordCount() < 100 {
		t.Errorf("stopword list suspiciously small: %d", StopwordCount())
	}
}

func BenchmarkTokenize(b *testing.B) {
	text := strings.Repeat("The engagement scope includes Storage Management Services and data replication across towers. ", 50)
	a := DefaultAnalyzer
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Tokenize(text)
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"replication", "engagements", "services", "relational", "organizations"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}
