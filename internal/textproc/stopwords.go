package textproc

// stopwords is the English stopword list used by the EIL analyzers. It is
// the classic Van Rijsbergen-derived list trimmed to words that actually
// occur in business correspondence; domain acronyms are never stopwords.
var stopwords = map[string]struct{}{}

func init() {
	for _, w := range []string{
		"a", "about", "above", "after", "again", "against", "all", "am",
		"an", "and", "any", "are", "as", "at", "be", "because", "been",
		"before", "being", "below", "between", "both", "but", "by", "can",
		"cannot", "could", "did", "do", "does", "doing", "down", "during",
		"each", "few", "for", "from", "further", "had", "has", "have",
		"having", "he", "her", "here", "hers", "herself", "him", "himself",
		"his", "how", "i", "if", "in", "into", "is", "it", "its", "itself",
		"me", "more", "most", "my", "myself", "no", "nor", "not", "of",
		"off", "on", "once", "only", "or", "other", "ought", "our", "ours",
		"ourselves", "out", "over", "own", "same", "she", "should", "so",
		"some", "such", "than", "that", "the", "their", "theirs", "them",
		"themselves", "then", "there", "these", "they", "this", "those",
		"through", "to", "too", "under", "until", "up", "very", "was", "we",
		"were", "what", "when", "where", "which", "while", "who", "whom",
		"why", "with", "would", "you", "your", "yours", "yourself",
		"yourselves",
	} {
		stopwords[w] = struct{}{}
	}
}

// IsStopword reports whether the lowercase term is an English stopword.
func IsStopword(term string) bool {
	_, ok := stopwords[term]
	return ok
}

// StopwordCount returns the size of the stopword list (exported for tests
// and documentation).
func StopwordCount() int { return len(stopwords) }
