// Package textproc provides the text-processing primitives used throughout
// EIL: tokenization, case and Unicode normalization, stopword filtering,
// Porter stemming, and sentence splitting. Every higher layer (the full-text
// index, the SIAPI query parser, and the annotators) funnels text through
// this package so that query-time and index-time analysis agree exactly.
package textproc

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Token is a single lexical unit produced by the tokenizer. It records the
// surface form, its normalized (lowercased, stemmed if requested) term, and
// the byte offsets of the surface form in the original text so annotators can
// map analysis results back onto documents.
type Token struct {
	Surface string // original text slice
	Term    string // normalized term used for indexing and matching
	Start   int    // byte offset of Surface in the input
	End     int    // byte offset one past the end of Surface
	Pos     int    // ordinal position in the token stream (0-based)
}

// Analyzer bundles a tokenization configuration. The zero value tokenizes on
// non-alphanumeric boundaries, lowercases, keeps stopwords, and does not stem.
type Analyzer struct {
	// Stem applies Porter stemming to each term when true.
	Stem bool
	// DropStopwords removes English stopwords from the token stream. Offsets
	// and Pos values of surviving tokens are preserved, so phrase matching
	// remains positionally exact for non-stopword terms.
	DropStopwords bool
	// KeepAcronyms exempts all-uppercase tokens of length 2..6 (for
	// example "TSA", "CSE", "EUS") from stemming; they are still
	// lowercased. When false acronyms are stemmed like any word.
	KeepAcronyms bool
}

// DefaultAnalyzer is the configuration used by the EIL document index:
// stemming on, stopwords dropped, acronyms preserved.
var DefaultAnalyzer = Analyzer{Stem: true, DropStopwords: true, KeepAcronyms: true}

// QueryAnalyzer must match DefaultAnalyzer so user queries meet the index on
// equal terms.
var QueryAnalyzer = DefaultAnalyzer

// isTokenRune reports whether r belongs inside a token. Letters and digits
// are token runes; everything else separates tokens.
func isTokenRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

// Tokenize splits text into tokens under the analyzer's configuration.
// It is allocation-conscious: the token slice grows geometrically and
// surfaces are substrings of the input (no copying).
func (a Analyzer) Tokenize(text string) []Token {
	tokens := make([]Token, 0, len(text)/6+4)
	pos := 0
	i := 0
	for i < len(text) {
		// Skip separators. ASCII fast path.
		for i < len(text) {
			c := text[i]
			if c < 0x80 {
				if isASCIITokenByte(c) {
					break
				}
				i++
				continue
			}
			r, size := decodeRune(text[i:])
			if isTokenRune(r) {
				break
			}
			i += size
		}
		if i >= len(text) {
			break
		}
		start := i
		for i < len(text) {
			c := text[i]
			if c < 0x80 {
				if !isASCIITokenByte(c) {
					break
				}
				i++
				continue
			}
			r, size := decodeRune(text[i:])
			if !isTokenRune(r) {
				break
			}
			i += size
		}
		surface := text[start:i]
		term := strings.ToLower(surface)
		if a.DropStopwords && IsStopword(term) {
			pos++ // keep positional gaps so phrases spanning stopwords stay honest
			continue
		}
		if a.Stem && !(a.KeepAcronyms && isAcronym(surface)) {
			term = Stem(term)
		}
		tokens = append(tokens, Token{Surface: surface, Term: term, Start: start, End: i, Pos: pos})
		pos++
	}
	return tokens
}

// Terms returns just the normalized terms of the token stream, in order.
func (a Analyzer) Terms(text string) []string {
	toks := a.Tokenize(text)
	terms := make([]string, len(toks))
	for i, t := range toks {
		terms[i] = t.Term
	}
	return terms
}

// NormalizeTerm applies the analyzer's per-term normalization (lowercase and
// optional stemming) to a single word, without tokenizing. Use it to prepare
// individual query terms.
func (a Analyzer) NormalizeTerm(word string) string {
	word = strings.TrimSpace(word)
	term := strings.ToLower(word)
	if a.Stem && !(a.KeepAcronyms && isAcronym(word)) {
		term = Stem(term)
	}
	return term
}

// isAcronym reports whether the surface form looks like a domain acronym:
// all uppercase ASCII letters, length 2 through 6 (TSA, CSE, EUS, BCRS...).
// Acronyms are exempted from stemming so "EUS" never collides with a stemmed
// English word.
func isAcronym(surface string) bool {
	if len(surface) < 2 || len(surface) > 6 {
		return false
	}
	for i := 0; i < len(surface); i++ {
		if surface[i] < 'A' || surface[i] > 'Z' {
			return false
		}
	}
	return true
}

func isASCIITokenByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// decodeRune decodes the first rune of s.
func decodeRune(s string) (rune, int) {
	return utf8.DecodeRuneInString(s)
}

// SplitSentences breaks text into sentences on '.', '!', '?' and newline
// boundaries, trimming whitespace. It is deliberately simple: EIL annotators
// only need sentence granularity for heuristic windows, not linguistic
// perfection.
func SplitSentences(text string) []string {
	var out []string
	start := 0
	flush := func(end int) {
		s := strings.TrimSpace(text[start:end])
		if s != "" {
			out = append(out, s)
		}
	}
	for i := 0; i < len(text); i++ {
		switch text[i] {
		case '.', '!', '?':
			// Don't split inside common abbreviations like "e.g." or an
			// email/host name: require following whitespace or EOT.
			if i+1 < len(text) && !isSpaceByte(text[i+1]) {
				continue
			}
			flush(i + 1)
			start = i + 1
		case '\n':
			flush(i)
			start = i + 1
		}
	}
	flush(len(text))
	return out
}

func isSpaceByte(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

// FoldWhitespace collapses runs of whitespace into single spaces and trims
// the ends. Annotators use it to normalize extracted field values.
func FoldWhitespace(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	space := false
	wrote := false
	for _, r := range s {
		if unicode.IsSpace(r) {
			space = wrote
			continue
		}
		if space {
			b.WriteByte(' ')
			space = false
		}
		b.WriteRune(r)
		wrote = true
	}
	return b.String()
}
