package textproc

import (
	"strings"
	"sync/atomic"
)

// stemCacheBits sizes the direct-mapped stem cache (1<<bits slots). Corpus
// vocabularies are far smaller than the slot count, so steady-state ingest
// hits almost every lookup.
const stemCacheBits = 13

// stemCacheEntry pairs an input word with its stem. Entries are immutable
// once published; the slots hold atomic pointers so concurrent indexing
// workers share results without locking.
type stemCacheEntry struct{ word, stem string }

var stemCache [1 << stemCacheBits]atomic.Pointer[stemCacheEntry]

// stemHash is FNV-1a over the word bytes.
func stemHash(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// Stem implements the classic Porter stemming algorithm (M.F. Porter, 1980,
// "An algorithm for suffix stripping"). The input must already be lowercase
// ASCII; words containing non a-z bytes are returned unchanged. Words of
// length <= 2 are returned unchanged, per the original algorithm. Results
// are memoized in a fixed-size shared cache: stemming dominates tokenization
// cost, and real corpora repeat a small vocabulary endlessly.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	for i := 0; i < len(word); i++ {
		if word[i] < 'a' || word[i] > 'z' {
			return word
		}
	}
	slot := &stemCache[stemHash(word)&(1<<stemCacheBits-1)]
	if e := slot.Load(); e != nil && e.word == word {
		return e.stem
	}
	w := []byte(word)
	w = step1a(w)
	w = step1b(w)
	w = step1c(w)
	w = step2(w)
	w = step3(w)
	w = step4(w)
	w = step5a(w)
	w = step5b(w)
	out := string(w)
	// Clone the key: word is usually a slice of a whole document buffer,
	// which a long-lived cache entry must not pin in memory.
	slot.Store(&stemCacheEntry{word: strings.Clone(word), stem: out})
	return out
}

// isCons reports whether w[i] is a consonant in Porter's sense: a letter
// other than a, e, i, o, u, and y when y follows a vowel position.
func isCons(w []byte, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isCons(w, i-1)
	default:
		return true
	}
}

// measure computes m, the number of VC (vowel-consonant) sequences in w[0:end].
func measure(w []byte, end int) int {
	m := 0
	i := 0
	// skip initial consonants
	for i < end && isCons(w, i) {
		i++
	}
	for i < end {
		// in vowel run
		for i < end && !isCons(w, i) {
			i++
		}
		if i >= end {
			break
		}
		m++
		for i < end && isCons(w, i) {
			i++
		}
	}
	return m
}

func hasVowel(w []byte, end int) bool {
	for i := 0; i < end; i++ {
		if !isCons(w, i) {
			return true
		}
	}
	return false
}

// endsDoubleCons reports whether w[0:end] ends with a double consonant.
func endsDoubleCons(w []byte, end int) bool {
	if end < 2 {
		return false
	}
	return w[end-1] == w[end-2] && isCons(w, end-1)
}

// endsCVC reports whether w[0:end] ends consonant-vowel-consonant where the
// final consonant is not w, x, or y.
func endsCVC(w []byte, end int) bool {
	if end < 3 {
		return false
	}
	if !isCons(w, end-3) || isCons(w, end-2) || !isCons(w, end-1) {
		return false
	}
	c := w[end-1]
	return c != 'w' && c != 'x' && c != 'y'
}

func hasSuffix(w []byte, s string) bool {
	if len(w) < len(s) {
		return false
	}
	return string(w[len(w)-len(s):]) == s
}

// replaceSuffix, when w ends with suf and measure of the stem exceeds minM,
// replaces suf with rep and reports success.
func replaceSuffix(w []byte, suf, rep string, minM int) ([]byte, bool) {
	if !hasSuffix(w, suf) {
		return w, false
	}
	stem := len(w) - len(suf)
	if measure(w, stem) <= minM {
		return w, false
	}
	return append(w[:stem], rep...), true
}

func step1a(w []byte) []byte {
	switch {
	case hasSuffix(w, "sses"):
		return w[:len(w)-2]
	case hasSuffix(w, "ies"):
		return w[:len(w)-2]
	case hasSuffix(w, "ss"):
		return w
	case hasSuffix(w, "s"):
		return w[:len(w)-1]
	}
	return w
}

func step1b(w []byte) []byte {
	if hasSuffix(w, "eed") {
		if measure(w, len(w)-3) > 0 {
			return w[:len(w)-1]
		}
		return w
	}
	fix := false
	if hasSuffix(w, "ed") && hasVowel(w, len(w)-2) {
		w = w[:len(w)-2]
		fix = true
	} else if hasSuffix(w, "ing") && hasVowel(w, len(w)-3) {
		w = w[:len(w)-3]
		fix = true
	}
	if !fix {
		return w
	}
	switch {
	case hasSuffix(w, "at"), hasSuffix(w, "bl"), hasSuffix(w, "iz"):
		return append(w, 'e')
	case endsDoubleCons(w, len(w)):
		c := w[len(w)-1]
		if c != 'l' && c != 's' && c != 'z' {
			return w[:len(w)-1]
		}
	case measure(w, len(w)) == 1 && endsCVC(w, len(w)):
		return append(w, 'e')
	}
	return w
}

func step1c(w []byte) []byte {
	if hasSuffix(w, "y") && hasVowel(w, len(w)-1) {
		w[len(w)-1] = 'i'
	}
	return w
}

var step2Rules = []struct{ suf, rep string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

func step2(w []byte) []byte {
	for _, r := range step2Rules {
		if hasSuffix(w, r.suf) {
			w, _ = replaceSuffix(w, r.suf, r.rep, 0)
			return w
		}
	}
	return w
}

var step3Rules = []struct{ suf, rep string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(w []byte) []byte {
	for _, r := range step3Rules {
		if hasSuffix(w, r.suf) {
			w, _ = replaceSuffix(w, r.suf, r.rep, 0)
			return w
		}
	}
	return w
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(w []byte) []byte {
	for _, suf := range step4Suffixes {
		if !hasSuffix(w, suf) {
			continue
		}
		stem := len(w) - len(suf)
		if suf == "ion" {
			if stem > 0 && (w[stem-1] == 's' || w[stem-1] == 't') && measure(w, stem) > 1 {
				return w[:stem]
			}
			continue
		}
		if measure(w, stem) > 1 {
			return w[:stem]
		}
		return w // longest matching suffix decides; do not try shorter ones
	}
	return w
}

func step5a(w []byte) []byte {
	if hasSuffix(w, "e") {
		stem := len(w) - 1
		m := measure(w, stem)
		if m > 1 || (m == 1 && !endsCVC(w, stem)) {
			return w[:stem]
		}
	}
	return w
}

func step5b(w []byte) []byte {
	if measure(w, len(w)) > 1 && endsDoubleCons(w, len(w)) && w[len(w)-1] == 'l' {
		return w[:len(w)-1]
	}
	return w
}
