package web

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro"
	"repro/internal/qlog"
	"repro/internal/synth"
	"repro/internal/trace"
)

// tracedServer is testServer with request tracing enabled.
func tracedServer(t *testing.T) (*httptest.Server, *eil.System) {
	t.Helper()
	corpus, err := synth.Generate(synth.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := eil.Ingest(corpus.Docs, eil.Options{
		Directory: corpus.Directory,
		Tracer:    trace.New(trace.Options{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(sys))
	t.Cleanup(srv.Close)
	return srv, sys
}

func TestTraceIDRoundTrip(t *testing.T) {
	srv, _ := tracedServer(t)
	u := srv.URL + "/api/search?" + url.Values{"tower": {"EUS"}}.Encode()

	// A traced request gets a minted ID echoed in the response header.
	resp, _ := get(t, u, nil)
	minted := resp.Header.Get("X-Trace-ID")
	if len(minted) != 16 {
		t.Fatalf("minted trace id = %q", minted)
	}

	// An inbound X-Trace-ID is adopted and echoed back verbatim.
	resp, _ = get(t, u, map[string]string{"X-Trace-ID": "cafe0123cafe0123"})
	if got := resp.Header.Get("X-Trace-ID"); got != "cafe0123cafe0123" {
		t.Fatalf("inbound trace id not echoed: %q", got)
	}

	// Both traces are findable in the debug listing by their IDs.
	_, body := get(t, srv.URL+"/debug/traces?format=json", nil)
	var listing struct {
		Recent []struct {
			ID    string `json:"id"`
			Route string `json:"route"`
		} `json:"recent"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatalf("bad listing JSON: %v", err)
	}
	// The ingest tracer is shared, so flush traces are listed too; only the
	// two search traces matter here.
	routes := map[string]string{}
	for _, s := range listing.Recent {
		routes[s.ID] = s.Route
	}
	if routes[minted] != "/api/search" || routes["cafe0123cafe0123"] != "/api/search" {
		t.Fatalf("search traces missing from listing: %v", routes)
	}
}

func TestDebugTraceDetail(t *testing.T) {
	srv, _ := tracedServer(t)
	u := srv.URL + "/api/search?" + url.Values{
		"tower": {"Storage Management Services"},
		"exact": {"data replication"},
	}.Encode()
	resp, _ := get(t, u, nil)
	id := resp.Header.Get("X-Trace-ID")
	if id == "" {
		t.Fatal("no trace id on search response")
	}

	_, body := get(t, srv.URL+"/debug/trace/"+id+"?format=json", nil)
	var detail struct {
		Summary trace.Summary `json:"summary"`
		Tree    *trace.Node   `json:"tree"`
	}
	if err := json.Unmarshal([]byte(body), &detail); err != nil {
		t.Fatalf("bad detail JSON: %v", err)
	}
	if detail.Summary.ID != id || detail.Tree == nil {
		t.Fatalf("detail = %+v", detail)
	}
	names := map[string]bool{}
	detail.Tree.Walk(func(n *trace.Node) { names[n.Name] = true })
	for _, want := range []string{"search.compose", "search.synopsis", "search.siapi", "search.combine", "search.access"} {
		if !names[want] {
			t.Fatalf("stage %q missing from tree: %v", want, names)
		}
	}

	// HTML rendering works too.
	resp, html := get(t, srv.URL+"/debug/trace/"+id, nil)
	if resp.StatusCode != 200 || !strings.Contains(html, "search.siapi") {
		t.Fatalf("html detail: %d", resp.StatusCode)
	}

	// Unknown IDs 404.
	resp, _ = get(t, srv.URL+"/debug/trace/ffffffffffffffff", nil)
	if resp.StatusCode != 404 {
		t.Fatalf("unknown trace status = %d", resp.StatusCode)
	}
}

func TestAPISearchExplain(t *testing.T) {
	srv, _ := tracedServer(t)
	u := srv.URL + "/api/search?explain=1&" + url.Values{
		"tower": {"Storage Management Services"},
		"exact": {"data replication"},
	}.Encode()
	resp, body := get(t, u, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Result struct {
			Activities []struct {
				DealID string  `json:"DealID"`
				Score  float64 `json:"Score"`
			}
		} `json:"result"`
		Explain struct {
			TraceID string      `json:"trace_id"`
			Trace   *trace.Node `json:"trace"`
			Stages  []string    `json:"stages"`
			Scores  []struct {
				DealID            string  `json:"deal_id"`
				SynopsisComponent float64 `json:"synopsis_component"`
				DocComponent      float64 `json:"doc_component"`
				Total             float64 `json:"total"`
			} `json:"scores"`
		} `json:"explain"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if out.Explain.TraceID != resp.Header.Get("X-Trace-ID") {
		t.Fatalf("explain trace id %q != header %q", out.Explain.TraceID, resp.Header.Get("X-Trace-ID"))
	}
	if out.Explain.Trace == nil || len(out.Explain.Stages) < 4 {
		t.Fatalf("stages = %v", out.Explain.Stages)
	}
	if len(out.Result.Activities) == 0 || len(out.Explain.Scores) != len(out.Result.Activities) {
		t.Fatalf("activities = %d, scores = %d", len(out.Result.Activities), len(out.Explain.Scores))
	}
	for i, sc := range out.Explain.Scores {
		a := out.Result.Activities[i]
		if sc.DealID != a.DealID {
			t.Fatalf("score %d deal mismatch", i)
		}
		if sc.SynopsisComponent+sc.DocComponent != sc.Total || sc.Total != a.Score {
			t.Fatalf("%s: %v + %v != %v (score %v)", sc.DealID, sc.SynopsisComponent, sc.DocComponent, sc.Total, a.Score)
		}
	}

	// The forced explain trace is retained and linkable.
	resp, _ = get(t, srv.URL+"/debug/trace/"+out.Explain.TraceID+"?format=json", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("explain trace not retained: %d", resp.StatusCode)
	}
}

func TestUntracedRoutes(t *testing.T) {
	srv, sys := tracedServer(t)
	for _, path := range []string{"/metrics", "/healthz", "/debug/traces"} {
		resp, _ := get(t, srv.URL+path, nil)
		if resp.Header.Get("X-Trace-ID") != "" {
			t.Fatalf("%s was traced", path)
		}
	}
	for _, tr := range sys.Tracer.Recent(0) {
		if untraced(tr.Route) {
			t.Fatalf("retained trace for untraced route %q", tr.Route)
		}
	}
}

// flushRecorder observes Flush pass-through.
type flushRecorder struct {
	*httptest.ResponseRecorder
	flushed bool
}

func (f *flushRecorder) Flush() { f.flushed = true }

func TestStatusWriterFlusher(t *testing.T) {
	var w http.ResponseWriter = &statusWriter{ResponseWriter: &flushRecorder{ResponseRecorder: httptest.NewRecorder()}}
	f, ok := w.(http.Flusher)
	if !ok {
		t.Fatal("statusWriter does not implement http.Flusher")
	}
	f.Flush()
	if !w.(*statusWriter).ResponseWriter.(*flushRecorder).flushed {
		t.Fatal("Flush not passed through")
	}
	// A non-Flusher underlying writer must not panic.
	(&statusWriter{ResponseWriter: nonFlusher{}}).Flush()
}

// nonFlusher is a ResponseWriter without Flush.
type nonFlusher struct{ http.ResponseWriter }

func (nonFlusher) Header() http.Header         { return http.Header{} }
func (nonFlusher) Write(b []byte) (int, error) { return len(b), nil }
func (nonFlusher) WriteHeader(int)             {}

func TestQueryLogSlowWithTraceID(t *testing.T) {
	srv, sys := tracedServer(t)
	sys.QueryLog = qlog.New(32)
	u := srv.URL + "/api/search?" + url.Values{"tower": {"EUS"}}.Encode()
	resp, _ := get(t, u, nil)
	id := resp.Header.Get("X-Trace-ID")

	_, body := get(t, srv.URL+"/api/qlog?slow=5", nil)
	var entries []struct {
		TraceID string
		Latency int64
	}
	if err := json.Unmarshal([]byte(body), &entries); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(entries) != 1 || entries[0].TraceID != id || entries[0].Latency <= 0 {
		t.Fatalf("slow entries = %+v, want one with trace %q", entries, id)
	}
}
