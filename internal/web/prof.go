package web

import (
	"fmt"
	"html/template"
	"io"
	"math"
	"net/http"
	"strings"
	"time"

	"repro/internal/loadgen"
	"repro/internal/prof"
)

// prof.go serves the continuous-profiling ring: /debug/prof lists stored
// captures (HTML for a browser, JSON with ?format=json), and
// /debug/prof/{name} streams one capture for `go tool pprof`. It also
// renders the throughput-vs-latency curve SVG shared by /debug/dash — like
// the rest of the ops surface, server-side HTML with inline SVG only.

// debugProf lists the capture ring.
func (h *handler) debugProf(w http.ResponseWriter, r *http.Request) {
	caps := h.profRing.List()
	if r.FormValue("format") == "json" {
		writeJSON(w, caps)
		return
	}
	type row struct {
		prof.Capture
		Age  string
		KiB  float64
		Href string
	}
	data := struct {
		Dir  string
		Rows []row
	}{Dir: h.profRing.Dir()}
	now := time.Now()
	// Newest first: the capture an operator wants is almost always the one
	// the page event just took.
	for i := len(caps) - 1; i >= 0; i-- {
		c := caps[i]
		data.Rows = append(data.Rows, row{
			Capture: c,
			Age:     now.Sub(c.ModTime).Round(time.Second).String(),
			KiB:     float64(c.Size) / 1024,
			Href:    "/debug/prof/" + c.Name,
		})
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := profTmpl.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// debugProfGet streams one capture.
func (h *handler) debugProfGet(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/debug/prof/")
	rc, err := h.profRing.Open(name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", name))
	io.Copy(w, rc)
}

var profTmpl = template.Must(template.New("prof").Parse(`<!doctype html>
<html><head><title>EIL — profile ring</title>
<style>
 body{font-family:sans-serif;margin:1.5em;max-width:70em;background:#fafafa}
 h1{margin:0 0 .2em} .sub{color:#666;font-size:.85em;margin-bottom:1em}
 table{border-collapse:collapse;background:#fff}
 td,th{padding:.3em .7em;border-bottom:1px solid #eee;text-align:left;font-size:.9em}
 a{color:#2563eb} .kind{font-weight:bold}
</style></head><body>
<h1>Profile ring</h1>
<div class="sub">{{len .Rows}} captures in {{.Dir}} &middot; <a href="/debug/prof?format=json">json</a> &middot; <a href="/debug/dash">dashboard</a><br>
pull one with: go tool pprof http://HOST/debug/prof/NAME</div>
{{if .Rows}}<table><tr><th>#</th><th>Kind</th><th>Reason</th><th>Age</th><th>Size</th><th></th></tr>
{{range .Rows}}<tr><td>{{.Seq}}</td><td class="kind">{{.Kind}}</td><td>{{.Reason}}</td><td>{{.Age}}</td><td>{{printf "%.1f KiB" .KiB}}</td>
 <td><a href="{{.Href}}">download</a></td></tr>{{end}}
</table>{{else}}<p>No captures yet. The profiler stores scheduled, on-demand, and SLO-page captures here.</p>{{end}}
</body></html>`))

// curve panel ---------------------------------------------------------------

var curveColors = []string{"#2563eb", "#dc2626", "#16a34a", "#d97706", "#7c3aed", "#0891b2", "#be185d", "#4d7c0f"}

// curveChart renders labeled throughput-vs-latency series (x achieved QPS,
// y p99 ms, log-scaled y when the spread warrants) as one inline SVG.
func curveChart(curves []loadgen.Curve, w, h int) template.HTML {
	type pt struct{ x, y float64 }
	series := make([][]pt, 0, len(curves))
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, c := range curves {
		var ps []pt
		for _, p := range c.Points {
			if p.AchievedQPS <= 0 || p.P99Ms <= 0 {
				continue
			}
			ps = append(ps, pt{p.AchievedQPS, p.P99Ms})
			minX, maxX = math.Min(minX, p.AchievedQPS), math.Max(maxX, p.AchievedQPS)
			minY, maxY = math.Min(minY, p.P99Ms), math.Max(maxY, p.P99Ms)
		}
		series = append(series, ps)
	}
	if math.IsInf(minX, 1) {
		return template.HTML("<span class=\"nodata\">&mdash;</span>")
	}
	if maxX == minX {
		maxX = minX + 1
	}
	// Latency tails span orders of magnitude across a ramp; log-scale y
	// once the spread exceeds one decade so the knee stays visible.
	logY := maxY/math.Max(minY, 1e-9) > 10
	yOf := func(v float64) float64 {
		if logY {
			return math.Log(v)
		}
		return v
	}
	loY, hiY := yOf(minY), yOf(maxY)
	if hiY == loY {
		hiY = loY + 1
	}
	const padL, padB, padT, padR = 46, 18, 6, 6
	plotW, plotH := float64(w-padL-padR), float64(h-padT-padB)
	X := func(v float64) float64 { return float64(padL) + (v-minX)/(maxX-minX)*plotW }
	Y := func(v float64) float64 { return float64(padT) + plotH - (yOf(v)-loY)/(hiY-loY)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg width="%d" height="%d" viewBox="0 0 %d %d">`, w, h, w, h)
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#999"/>`, padL, h-padB, w-padR, h-padB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#999"/>`, padL, padT, padL, h-padB)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="9" fill="#666">%.0f qps</text>`, padL, h-4, minX)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="9" fill="#666" text-anchor="end">%.0f qps</text>`, w-padR, h-4, maxX)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="9" fill="#666" text-anchor="end">%.1fms</text>`, padL-3, h-padB, minY)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="9" fill="#666" text-anchor="end">%.0fms</text>`, padL-3, padT+8, maxY)
	for i, ps := range series {
		if len(ps) == 0 {
			continue
		}
		color := curveColors[i%len(curveColors)]
		b.WriteString(`<polyline fill="none" stroke="` + color + `" stroke-width="1.5" points="`)
		for _, p := range ps {
			fmt.Fprintf(&b, "%.1f,%.1f ", X(p.x), Y(p.y))
		}
		b.WriteString(`"/>`)
		for _, p := range ps {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.2" fill="%s"/>`, X(p.x), Y(p.y), color)
		}
	}
	b.WriteString(`</svg>`)
	return template.HTML(b.String())
}

// dashCurveLegend pairs each curve label with its plot color.
type dashCurveLegend struct {
	Label string
	Color string
}

func curveLegend(curves []loadgen.Curve) []dashCurveLegend {
	out := make([]dashCurveLegend, 0, len(curves))
	for i, c := range curves {
		out = append(out, dashCurveLegend{Label: c.Label, Color: curveColors[i%len(curveColors)]})
	}
	return out
}
