package web

// Live trace debugging surfaces: /debug/traces lists recent and slowest
// retained traces, /debug/trace/{id} renders one trace's span tree. Both
// serve HTML for a browser and JSON under ?format=json (or an Accept header
// preferring application/json), so the same URLs work for humans and tools.

import (
	"html/template"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/trace"
)

// wantJSON reports whether the request asked for a JSON rendering.
func wantJSON(r *http.Request) bool {
	if r.URL.Query().Get("format") == "json" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}

// traceListing is the /debug/traces JSON shape.
type traceListing struct {
	Recent  []trace.Summary `json:"recent"`
	Slowest []trace.Summary `json:"slowest"`
}

func summarize(traces []*trace.Trace) []trace.Summary {
	out := make([]trace.Summary, 0, len(traces))
	for _, tr := range traces {
		out = append(out, tr.Summarize())
	}
	return out
}

// debugTraces lists recent traces (newest first) and the per-route slowest.
func (h *handler) debugTraces(w http.ResponseWriter, r *http.Request) {
	n := 50
	if v, err := strconv.Atoi(r.FormValue("n")); err == nil && v > 0 {
		n = v
	}
	listing := traceListing{
		Recent:  summarize(h.sys.RequestTracer().Recent(n)),
		Slowest: summarize(h.sys.RequestTracer().Slowest(r.FormValue("route"))),
	}
	if wantJSON(r) {
		writeJSON(w, listing)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := tracesTmpl.Execute(w, listing); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// traceDetail is the /debug/trace/{id} JSON shape.
type traceDetail struct {
	Summary trace.Summary `json:"summary"`
	Tree    *trace.Node   `json:"tree"`
}

// debugTrace renders one retained trace by ID.
func (h *handler) debugTrace(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
	if id == "" || strings.Contains(id, "/") {
		http.Error(w, "usage: /debug/trace/{id}", http.StatusBadRequest)
		return
	}
	tr := h.sys.RequestTracer().Find(id)
	if tr == nil {
		http.Error(w, "trace not retained (evicted or never sampled)", http.StatusNotFound)
		return
	}
	detail := traceDetail{Summary: tr.Summarize(), Tree: tr.Tree()}
	if wantJSON(r) {
		writeJSON(w, detail)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := traceTmpl.Execute(w, detail); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

var debugStyle = `
 body{font-family:sans-serif;margin:2em;max-width:70em}
 table{border-collapse:collapse} td,th{padding:.25em .8em;text-align:left;border-bottom:1px solid #eee}
 .num{text-align:right;font-variant-numeric:tabular-nums}
 ul.tree{list-style:none;padding-left:1.2em;border-left:1px dotted #ccc}
 .dur{color:#666;font-size:.85em} .attrs{color:#046;font-size:.85em}
`

var tracesTmpl = template.Must(template.New("traces").Funcs(template.FuncMap{
	"ms": func(s float64) string { return strconv.FormatFloat(s*1000, 'f', 3, 64) + " ms" },
}).Parse(`<!doctype html>
<html><head><title>EIL — Traces</title><style>` + debugStyle + `</style></head><body>
<h1>Traces</h1>
<h2>Slowest</h2>
<table><tr><th>ID</th><th>Route</th><th>Start</th><th class="num">Duration</th><th class="num">Spans</th></tr>
{{range .Slowest}}<tr><td><a href="/debug/trace/{{.ID}}">{{.ID}}</a></td><td>{{.Route}}</td><td>{{.Start.Format "15:04:05.000"}}</td><td class="num">{{ms .DurationSeconds}}</td><td class="num">{{.Spans}}</td></tr>{{end}}
</table>
<h2>Recent</h2>
<table><tr><th>ID</th><th>Route</th><th>Start</th><th class="num">Duration</th><th class="num">Spans</th></tr>
{{range .Recent}}<tr><td><a href="/debug/trace/{{.ID}}">{{.ID}}</a></td><td>{{.Route}}</td><td>{{.Start.Format "15:04:05.000"}}</td><td class="num">{{ms .DurationSeconds}}</td><td class="num">{{.Spans}}</td></tr>{{end}}
</table>
</body></html>`))

var traceTmpl = template.Must(template.New("trace").Funcs(template.FuncMap{
	"ms": func(s float64) string { return strconv.FormatFloat(s*1000, 'f', 3, 64) + " ms" },
}).Parse(`<!doctype html>
<html><head><title>EIL — Trace {{.Summary.ID}}</title><style>` + debugStyle + `</style></head><body>
<p><a href="/debug/traces">&larr; traces</a></p>
<h1>Trace {{.Summary.ID}}</h1>
<p>{{.Summary.Route}} — started {{.Summary.Start.Format "15:04:05.000"}}, {{ms .Summary.DurationSeconds}}, {{.Summary.Spans}} spans</p>
{{define "node"}}
<li><strong>{{.Name}}</strong> <span class="dur">+{{ms .OffsetSeconds}} for {{ms .DurationSeconds}}</span>
{{if .Attrs}}<span class="attrs">{{range .Attrs}} {{.Key}}={{.Value}}{{end}}</span>{{end}}
{{if .Children}}<ul class="tree">{{range .Children}}{{template "node" .}}{{end}}</ul>{{end}}
</li>
{{end}}
<ul class="tree">{{template "node" .Tree}}</ul>
</body></html>`))
