package web

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro"
	"repro/internal/synth"
)

// TestMetricsEndpoint drives real traffic through the middleware and
// asserts the Prometheus exposition carries per-route request histograms,
// per-stage search timings, and ingest pipeline counters.
func TestMetricsEndpoint(t *testing.T) {
	srv, _ := testServer(t, nil)
	// Generate traffic: a scoped search (2xx), a bad request (4xx), a
	// keyword query, and a not-found page.
	get(t, srv.URL+"/api/search?"+url.Values{"tower": {"Storage Management Services"}, "exact": {"data replication"}}.Encode(), nil)
	get(t, srv.URL+"/api/deal", nil)
	get(t, srv.URL+"/api/keyword?q=replication", nil)
	get(t, srv.URL+"/nope", nil)

	resp, body := get(t, srv.URL+"/metrics", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	for _, want := range []string{
		// HTTP middleware.
		`http_requests_total{code="2xx",route="/api/search"} 1`,
		`http_requests_total{code="4xx",route="/api/deal"} 1`,
		`http_request_seconds_bucket{route="/api/search",le="+Inf"} 1`,
		`http_request_seconds_count{route="/api/search"} 1`,
		"# TYPE http_requests_total counter",
		"# TYPE http_request_seconds histogram",
		"http_in_flight_requests",
		// Online search stages.
		`search_stage_seconds_count{stage="synopsis"} 1`,
		`search_stage_seconds_count{stage="siapi"} 1`,
		`search_stage_seconds_count{stage="merge"} 1`,
		`search_stage_seconds_count{stage="access"} 1`,
		"search_total 1",
		"search_scoped_total 1",
		// Offline pipeline.
		"ingest_docs_total",
		"ingest_pipeline_seconds_count 1",
		`ingest_annotator_seconds_count{annotator="scope-ontology"}`,
		"ingest_docs_per_second",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
	// The 404 hit the fallback "/" pattern, not an unmatched label.
	if !strings.Contains(body, `http_requests_total{code="4xx",route="/"} 1`) {
		t.Fatalf("/metrics missing 404 accounting:\n%s", body)
	}
}

func TestAPIMetricsJSON(t *testing.T) {
	srv, _ := testServer(t, nil)
	get(t, srv.URL+"/api/search?"+url.Values{"tower": {"EUS"}}.Encode(), nil)
	resp, body := get(t, srv.URL+"/api/metrics", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var snaps []struct {
		Name string
		Type string
	}
	if err := json.Unmarshal([]byte(body), &snaps); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	names := map[string]bool{}
	for _, s := range snaps {
		names[s.Name] = true
	}
	for _, want := range []string{"search_total", "ingest_docs_total", "http_requests_total"} {
		if !names[want] {
			t.Fatalf("/api/metrics missing %s in %v", want, names)
		}
	}
}

func TestPprofOption(t *testing.T) {
	corpus, err := synth.Generate(synth.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := eil.Ingest(corpus.Docs, eil.Options{Directory: corpus.Directory})
	if err != nil {
		t.Fatal(err)
	}
	// Without the option pprof is absent.
	plain := httptest.NewServer(Handler(sys))
	t.Cleanup(plain.Close)
	if resp, _ := get(t, plain.URL+"/debug/pprof/", nil); resp.StatusCode != 404 {
		t.Fatalf("pprof mounted without option: %d", resp.StatusCode)
	}
	srv := httptest.NewServer(Handler(sys, WithPprof()))
	t.Cleanup(srv.Close)
	resp, body := get(t, srv.URL+"/debug/pprof/", nil)
	if resp.StatusCode != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: %d %q", resp.StatusCode, body[:min(len(body), 120)])
	}
}

func TestAccessLogOption(t *testing.T) {
	corpus, err := synth.Generate(synth.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := eil.Ingest(corpus.Docs, eil.Options{Directory: corpus.Directory})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	srv := httptest.NewServer(Handler(sys, WithAccessLog(logger)))
	t.Cleanup(srv.Close)
	get(t, srv.URL+"/healthz", map[string]string{"X-EIL-User": "alice"})
	out := buf.String()
	for _, want := range []string{"route=/healthz", "status=200", "user=alice", "method=GET"} {
		if !strings.Contains(out, want) {
			t.Fatalf("access log missing %q: %s", want, out)
		}
	}
}
