package web

import (
	"fmt"
	"html/template"
	"math"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/runtimetel"
	"repro/internal/slo"
)

// dash.go renders /debug/dash: the one-screen operator view. Everything is
// generated server-side as plain HTML with inline SVG sparklines — no
// JavaScript, no external assets — so it works from curl --head checks,
// airgapped environments, and the text-mode browsers ops tend to have.
// History comes from the runtimetel sample ring; judgment (verdict, burn
// rates, breaker states) from the health and SLO layers; trace links from
// the latency histograms' exemplars.

// sparkline renders values as an inline SVG polyline, min-max normalized.
// Returns an em-dash placeholder when there is nothing to draw.
func sparkline(values []float64, w, h int) template.HTML {
	if len(values) < 2 {
		return template.HTML("<span class=\"nodata\">&mdash;</span>")
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi == lo {
		hi = lo + 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg width="%d" height="%d" viewBox="0 0 %d %d" preserveAspectRatio="none">`, w, h, w, h)
	b.WriteString(`<polyline fill="none" stroke="#2563eb" stroke-width="1.5" points="`)
	for i, v := range values {
		x := float64(i) / float64(len(values)-1) * float64(w)
		y := float64(h) - (v-lo)/(hi-lo)*float64(h-2) - 1
		fmt.Fprintf(&b, "%.1f,%.1f ", x, y)
	}
	b.WriteString(`"/></svg>`)
	return template.HTML(b.String())
}

// appSeries extracts one App key across samples (missing keys become 0).
func appSeries(hist []runtimetel.Sample, key string) []float64 {
	out := make([]float64, len(hist))
	for i, s := range hist {
		out[i] = s.App[key]
	}
	return out
}

// dashPanel is one sparkline panel.
type dashPanel struct {
	Title string
	Value string // latest reading, formatted
	Spark template.HTML
}

// dashExemplar is one slow-request trace link.
type dashExemplar struct {
	Route   string
	TraceID string
	Seconds float64
	Age     string
}

type dashBreaker struct {
	Backend string
	State   string
}

// dashFailover is the failover strip next to the verdict: role, fencing
// epoch, and how long ago this node was promoted (empty if never).
type dashFailover struct {
	Role     string
	Epoch    uint64
	Promoted string
}

type dashData struct {
	Now         string
	Verdict     string
	Failover    *dashFailover
	Causes      []string
	Panels      []dashPanel
	Breakers    []dashBreaker
	SLO         *slo.Report
	Exemplars   []dashExemplar
	Samples     int
	Span        string
	HasTraces   bool
	HasProf     bool
	CurveSVG    template.HTML
	CurveLegend []dashCurveLegend
}

// debugDash renders the operator dashboard.
func (h *handler) debugDash(w http.ResponseWriter, _ *http.Request) {
	now := time.Now()
	data := dashData{Now: now.Format(time.RFC3339), HasTraces: h.sys.RequestTracer() != nil, HasProf: h.profRing != nil}
	if len(h.curves) > 0 {
		data.CurveSVG = curveChart(h.curves, 560, 200)
		data.CurveLegend = curveLegend(h.curves)
	}

	rep := h.health.Evaluate()
	data.Verdict = string(rep.Verdict)
	data.Causes = rep.Causes

	if h.failoverFn != nil {
		fo := h.failoverFn()
		df := &dashFailover{Role: fo.Role, Epoch: fo.Epoch}
		if !fo.PromotedAt.IsZero() {
			df.Promoted = now.Sub(fo.PromotedAt).Round(time.Second).String() + " ago"
		}
		data.Failover = df
	}

	var hist []runtimetel.Sample
	if h.collector != nil {
		hist = h.collector.History()
	}
	data.Samples = len(hist)
	if len(hist) > 1 {
		data.Span = hist[len(hist)-1].Time.Sub(hist[0].Time).Round(time.Second).String()
	}

	var latest runtimetel.Sample
	if len(hist) > 0 {
		latest = hist[len(hist)-1]
	}
	series := func(f func(runtimetel.Sample) float64) []float64 {
		out := make([]float64, len(hist))
		for i, s := range hist {
			out[i] = f(s)
		}
		return out
	}
	const sw, sh = 220, 36
	data.Panels = []dashPanel{
		{"QPS", fmt.Sprintf("%.1f", latest.App["qps"]),
			sparkline(appSeries(hist, "qps"), sw, sh)},
		{"HTTP p99", fmt.Sprintf("%.1f ms", latest.App["http_p99_seconds"]*1000),
			sparkline(appSeries(hist, "http_p99_seconds"), sw, sh)},
		{"SLO burn (5m, worst route)", fmt.Sprintf("%.2fx", latest.App["slo_burn"]),
			sparkline(appSeries(hist, "slo_burn"), sw, sh)},
		{"GC pause p99", fmt.Sprintf("%.2f ms", latest.GCPauseP99*1000),
			sparkline(series(func(s runtimetel.Sample) float64 { return s.GCPauseP99 }), sw, sh)},
		{"Heap live", fmt.Sprintf("%.1f MiB (goal %.1f)", float64(latest.HeapLiveBytes)/(1<<20), float64(latest.HeapGoalBytes)/(1<<20)),
			sparkline(series(func(s runtimetel.Sample) float64 { return float64(s.HeapLiveBytes) }), sw, sh)},
		{"Goroutines", fmt.Sprintf("%d", latest.Goroutines),
			sparkline(series(func(s runtimetel.Sample) float64 { return float64(s.Goroutines) }), sw, sh)},
		{"CPU utilization", fmt.Sprintf("%.0f%%", latest.CPUFrac*100),
			sparkline(series(func(s runtimetel.Sample) float64 { return s.CPUFrac }), sw, sh)},
		{"Sched latency p99", fmt.Sprintf("%.2f ms", latest.SchedLatencyP99*1000),
			sparkline(series(func(s runtimetel.Sample) float64 { return s.SchedLatencyP99 }), sw, sh)},
	}

	if eng := h.sys.CoreEngine(); eng != nil {
		for _, b := range []string{core.BackendSynopsis, core.BackendSIAPI} {
			if eng.Sharded() {
				states := eng.ShardBreakerStates(b)
				names := make([]string, 0, len(states))
				for name := range states {
					names = append(names, name)
				}
				sort.Strings(names)
				for _, name := range names {
					data.Breakers = append(data.Breakers, dashBreaker{Backend: b + "#" + name, State: states[name]})
				}
			} else {
				data.Breakers = append(data.Breakers, dashBreaker{Backend: b, State: eng.BreakerState(b)})
			}
		}
	}

	if h.slo != nil {
		r := h.slo.Report(now)
		data.SLO = &r
	}

	data.Exemplars = h.slowExemplars(now, 8)

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := dashTmpl.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// slowExemplars collects the slowest recent traced requests across routes
// from the latency histograms' exemplars, newest-biased, slowest first.
func (h *handler) slowExemplars(now time.Time, limit int) []dashExemplar {
	reg := h.sys.Registry()
	if reg == nil {
		return nil
	}
	routes := map[string]bool{}
	for _, s := range reg.Snapshots() {
		if s.Name == "http_request_seconds" {
			if r := s.Labels["route"]; r != "" {
				routes[r] = true
			}
		}
	}
	var out []dashExemplar
	for route := range routes {
		for _, ex := range reg.Histogram("http_request_seconds", nil, "route", route).Exemplars() {
			if ex == nil || ex.TraceID == "" {
				continue
			}
			out = append(out, dashExemplar{
				Route:   route,
				TraceID: ex.TraceID,
				Seconds: ex.Value,
				Age:     now.Sub(ex.Time).Round(time.Second).String(),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seconds > out[j].Seconds })
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

var dashTmpl = template.Must(template.New("dash").Funcs(template.FuncMap{
	"mulf": func(a, b float64) float64 { return a * b },
	"burnClass": func(avail, lat float64) string {
		burn := math.Max(avail, lat)
		switch {
		case burn > slo.PageBurn:
			return "burn-hot"
		case burn > slo.TicketBurn:
			return "burn-warm"
		default:
			return ""
		}
	},
}).Parse(`<!doctype html>
<html><head><title>EIL — ops dashboard</title>
<meta http-equiv="refresh" content="10">
<style>
 body{font-family:sans-serif;margin:1.5em;max-width:80em;background:#fafafa}
 h1{margin:0 0 .2em} .sub{color:#666;font-size:.85em;margin-bottom:1em}
 .verdict{display:inline-block;padding:.2em .7em;border-radius:.3em;font-weight:bold;color:#fff}
 .verdict.ready{background:#16a34a} .verdict.degraded{background:#d97706} .verdict.unready{background:#dc2626}
 .role{display:inline-block;padding:.2em .7em;border-radius:.3em;font-weight:bold;color:#fff;margin-left:.4em}
 .role.primary{background:#2563eb} .role.follower{background:#64748b}
 .role.fenced{background:#dc2626} .role.promoting{background:#d97706}
 .causes{color:#b45309;margin:.4em 0}
 .panels{display:flex;flex-wrap:wrap;gap:.8em;margin:1em 0}
 .panel{background:#fff;border:1px solid #ddd;border-radius:.4em;padding:.6em .8em;min-width:15em}
 .panel h3{margin:0;font-size:.75em;color:#555;text-transform:uppercase;letter-spacing:.05em}
 .panel .v{font-size:1.3em;margin:.15em 0}
 .nodata{color:#bbb}
 table{border-collapse:collapse;background:#fff;margin:.5em 0}
 td,th{padding:.3em .7em;border-bottom:1px solid #eee;text-align:left;font-size:.9em}
 .state{font-weight:bold} .state.closed{color:#16a34a} .state.open{color:#dc2626} .state.half-open{color:#d97706}
 .burn-hot{color:#dc2626;font-weight:bold} .burn-warm{color:#d97706}
 .alert-page{color:#dc2626;font-weight:bold} .alert-ticket{color:#d97706;font-weight:bold}
 a{color:#2563eb}
</style></head><body>
<h1>EIL ops dashboard</h1>
<div class="sub">{{.Now}} &middot; {{.Samples}} samples{{if .Span}} over {{.Span}}{{end}} &middot; auto-refresh 10s &middot;
 <a href="/metrics">metrics</a> &middot; <a href="/readyz">readyz</a> &middot; <a href="/api/slo">slo</a>{{if .HasTraces}} &middot; <a href="/debug/traces">traces</a>{{end}}{{if .HasProf}} &middot; <a href="/debug/prof">profiles</a>{{end}}</div>

<div><span class="verdict {{.Verdict}}">{{.Verdict}}</span>{{with .Failover}}<span class="role {{.Role}}">{{.Role}}</span> <span class="sub">epoch {{.Epoch}}{{if .Promoted}} &middot; promoted {{.Promoted}}{{end}}</span>{{end}}</div>
{{range .Causes}}<div class="causes">&#9888; {{.}}</div>{{end}}

<div class="panels">
{{range .Panels}}<div class="panel"><h3>{{.Title}}</h3><div class="v">{{.Value}}</div>{{.Spark}}</div>
{{end}}</div>

{{if .Breakers}}<h2>Circuit breakers</h2>
<table><tr><th>Backend</th><th>State</th></tr>
{{range .Breakers}}<tr><td>{{.Backend}}</td><td class="state {{.State}}">{{.State}}</td></tr>{{end}}
</table>{{end}}

{{if .SLO}}<h2>SLO burn rates</h2>
<table><tr><th>Route</th><th>Objective</th><th>Observed</th><th>p99 target</th><th>p99</th>
{{range .SLO.Windows}}<th>burn {{.}}</th>{{end}}<th>Alert</th></tr>
{{range .SLO.Routes}}<tr>
 <td>{{.Route}}</td>
 <td>{{printf "%.3f" .AvailabilityObjective}}</td>
 <td>{{printf "%.4f" .ObservedAvailability}}</td>
 <td>{{printf "%.0fms" (mulf .LatencyP99ObjectiveSeconds 1000)}}</td>
 <td>{{printf "%.0fms" (mulf .ObservedP99Seconds 1000)}}</td>
 {{range .Windows}}<td class="{{burnClass .AvailabilityBurn .LatencyBurn}}">{{printf "%.2f" .AvailabilityBurn}} / {{printf "%.2f" .LatencyBurn}}{{if .Partial}}*{{end}}</td>{{end}}
 <td class="alert-{{.Alert}}">{{.Alert}}</td>
</tr>{{end}}
</table>
<div class="sub">cells are availability burn / latency burn; * marks a window the history does not yet span</div>{{end}}

{{if .CurveSVG}}<h2>Throughput vs latency</h2>
<div class="panel" style="min-width:0;display:inline-block">
{{.CurveSVG}}
<div class="sub" style="margin:0">x: achieved QPS &middot; y: p99 &middot;
{{range .CurveLegend}} <span style="color:{{.Color}}">&#9632;</span> {{.Label}}{{end}}</div>
</div>{{end}}

{{if .Exemplars}}<h2>Slowest traced requests</h2>
<table><tr><th>Route</th><th>Latency</th><th>Age</th><th>Trace</th></tr>
{{range .Exemplars}}<tr><td>{{.Route}}</td><td>{{printf "%.1fms" (mulf .Seconds 1000)}}</td><td>{{.Age}}</td>
 <td>{{if $.HasTraces}}<a href="/debug/trace/{{.TraceID}}">{{.TraceID}}</a>{{else}}{{.TraceID}}{{end}}</td></tr>{{end}}
</table>{{end}}
</body></html>`))
