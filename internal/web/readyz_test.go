package web

// Readiness under degradation: /readyz must turn traffic away (503) with
// the failing check named — an open circuit breaker, an unwritable journal —
// while /healthz keeps answering 200 (the process is alive; it should be
// drained, not restarted). Plus the SLO burn path: injected faults must
// produce a nonzero short-window burn rate that decays once faults stop.

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/fault"
	"repro/internal/health"
	"repro/internal/slo"
	"repro/internal/synth"
	"repro/internal/trace"
)

// opsServer builds a test server with the whole judgment layer wired:
// component checks behind /readyz, an SLO engine behind /api/slo, and the
// engine running under the given fault injector with a fast breaker
// cooldown so recovery is testable.
func opsServer(t *testing.T, inj *fault.Injector) (*httptest.Server, *eil.System, *slo.Engine) {
	t.Helper()
	corpus, err := synth.Generate(synth.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := eil.Ingest(corpus.Docs, eil.Options{
		Directory: corpus.Directory,
		Tracer:    trace.New(trace.Options{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Engine.Faults = inj
	sys.Engine.Resilient = core.Resilience{
		Budget:          2 * time.Second,
		MaxRetries:      1,
		BreakerCooldown: 10 * time.Millisecond,
	}
	sloEng := slo.New(slo.Options{Registry: sys.Metrics})
	checks := sys.NewHealth(eil.HealthOptions{})
	srv := httptest.NewServer(Handler(sys, WithHealth(checks), WithSLO(sloEng), WithRuntime(nil)))
	t.Cleanup(srv.Close)
	return srv, sys, sloEng
}

// readyReport fetches and decodes /readyz.
func readyReport(t *testing.T, srv *httptest.Server) (int, health.Report) {
	t.Helper()
	resp, body := get(t, srv.URL+"/readyz", nil)
	var rep health.Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("readyz body not JSON: %v\n%s", err, body)
	}
	return resp.StatusCode, rep
}

// hasCause reports whether any cause names the given check.
func hasCause(rep health.Report, check string) bool {
	for _, c := range rep.Causes {
		if strings.HasPrefix(c, check+":") {
			return true
		}
	}
	return false
}

func TestReadyzHealthy(t *testing.T) {
	srv, _, _ := opsServer(t, nil)
	code, rep := readyReport(t, srv)
	if code != 200 {
		t.Fatalf("healthy readyz = %d, want 200 (causes %v)", code, rep.Causes)
	}
	if rep.Verdict != health.VerdictReady {
		t.Fatalf("verdict %q, want ready", rep.Verdict)
	}
	if len(rep.Checks) == 0 {
		t.Fatal("readyz report lists no checks")
	}
}

func TestReadyz503OnOpenBreaker(t *testing.T) {
	inj := fault.New(1)
	srv, sys, _ := opsServer(t, inj)

	if code, rep := readyReport(t, srv); code != 200 {
		t.Fatalf("pre-fault readyz = %d (causes %v), want 200", code, rep.Causes)
	}

	// Fail every synopsis call; each search burns 2 breaker failures
	// (initial + one retry), so a few searches open the breaker.
	inj.Add(&fault.Rule{Site: fault.SiteSynopsisSearch, Mode: fault.ModeError})
	tower := strings.ReplaceAll(sys.Taxonomy.TowerNames()[0], " ", "+")
	for i := 0; i < 6 && sys.Engine.BreakerState(core.BackendSynopsis) != "open"; i++ {
		get(t, srv.URL+"/api/search?tower="+tower+"&all=the", nil)
	}
	if state := sys.Engine.BreakerState(core.BackendSynopsis); state != "open" {
		t.Fatalf("breaker state %q after repeated failures, want open", state)
	}

	code, rep := readyReport(t, srv)
	if code != 503 {
		t.Fatalf("readyz with open breaker = %d, want 503", code)
	}
	if rep.Verdict != health.VerdictDegraded {
		t.Fatalf("verdict %q, want degraded (breaker is non-critical)", rep.Verdict)
	}
	if !hasCause(rep, "breaker:"+core.BackendSynopsis) {
		t.Fatalf("causes %v do not name breaker:synopsis", rep.Causes)
	}

	// Liveness is unaffected: the process serves; it should be drained,
	// not killed.
	if resp, body := get(t, srv.URL+"/healthz", nil); resp.StatusCode != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %d %q, want 200 ok", resp.StatusCode, body)
	}
}

func TestReadyz503OnUnwritableWAL(t *testing.T) {
	srv, sys, _ := opsServer(t, nil)

	// Route the journal through a fault-injectable filesystem. No rules are
	// armed yet, so EnableWAL (which checkpoints and creates the journal)
	// succeeds; only then does the fsync fault arm, so exactly the health
	// probe's Sync observes the dead disk.
	walInj := fault.New(7)
	sys.WALFS = &durable.FaultFS{Ctx: fault.With(context.Background(), walInj)}
	if err := sys.EnableWAL(t.TempDir(), 1); err != nil {
		t.Fatal(err)
	}

	if code, rep := readyReport(t, srv); code != 200 {
		t.Fatalf("readyz with healthy journal = %d (causes %v), want 200", code, rep.Causes)
	}

	walInj.Add(&fault.Rule{Site: durable.SiteSync, Mode: fault.ModeError})
	code, rep := readyReport(t, srv)
	if code != 503 {
		t.Fatalf("readyz with unwritable journal = %d, want 503", code)
	}
	if rep.Verdict != health.VerdictUnready {
		t.Fatalf("verdict %q, want unready (journal is critical)", rep.Verdict)
	}
	if !hasCause(rep, "wal") {
		t.Fatalf("causes %v do not name the wal check", rep.Causes)
	}
	if resp, _ := get(t, srv.URL+"/healthz", nil); resp.StatusCode != 200 {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}

	// The disk recovers: the next evaluation clears the verdict.
	walInj.Reset()
	if code, rep := readyReport(t, srv); code != 200 {
		t.Fatalf("readyz after recovery = %d (causes %v), want 200", code, rep.Causes)
	}
}

func TestSLOBurnRisesAndDecays(t *testing.T) {
	inj := fault.New(1)
	srv, sys, sloEng := opsServer(t, inj)
	tower := strings.ReplaceAll(sys.Taxonomy.TowerNames()[0], " ", "+")

	start := time.Now()
	sloEng.Tick(start)

	// Kill both serving tiers: every /api/search is a 503, all error budget.
	inj.Add(&fault.Rule{Site: fault.SiteSynopsisSearch, Mode: fault.ModeError})
	inj.Add(&fault.Rule{Site: fault.SiteSIAPISearch, Mode: fault.ModeError})
	for i := 0; i < 8; i++ {
		if resp, _ := get(t, srv.URL+"/api/search?tower="+tower+"&all=the", nil); resp.StatusCode != 503 {
			t.Fatalf("faulted search = %d, want 503", resp.StatusCode)
		}
	}
	sloEng.Tick(start.Add(time.Minute))

	burnAt := func(now time.Time) float64 {
		rep := sloEng.Report(now)
		for _, rr := range rep.Routes {
			if rr.Route == "/api/search" {
				if len(rr.Windows) == 0 {
					t.Fatal("no burn windows for /api/search")
				}
				return rr.Windows[0].AvailabilityBurn
			}
		}
		t.Fatalf("no /api/search route in SLO report: %+v", rep.Routes)
		return 0
	}
	if burn := burnAt(start.Add(time.Minute)); burn <= 0 {
		t.Fatalf("5m availability burn = %v after a 100%% error window, want > 0", burn)
	}
	if v := sys.Metrics.Gauge("eil_slo_burn_rate",
		"route", "/api/search", "slo", slo.SLOAvailability, "window", "5m0s").Value(); v <= 0 {
		t.Fatalf("eil_slo_burn_rate gauge = %v, want > 0", v)
	}
	if _, body := get(t, srv.URL+"/api/slo", nil); !strings.Contains(body, "availability_burn") {
		t.Fatalf("/api/slo lacks burn fields: %s", body)
	}

	// Faults stop; the breakers recover (short cooldown) and traffic
	// succeeds again. Once the 5m window's base sample postdates the error
	// burst, the burn reads zero.
	inj.Reset()
	time.Sleep(20 * time.Millisecond) // past the breaker cooldown
	for i := 0; i < 12; i++ {
		resp, _ := get(t, srv.URL+"/api/search?tower="+tower+"&all=the", nil)
		if resp.StatusCode == 200 {
			break
		}
	}
	sloEng.Tick(start.Add(2 * time.Minute))
	sloEng.Tick(start.Add(9 * time.Minute))
	if burn := burnAt(start.Add(9 * time.Minute)); burn != 0 {
		t.Fatalf("5m availability burn = %v long after faults stopped, want 0", burn)
	}
}
