// Package web serves EIL over HTTP: a minimal HTML front-end standing in
// for the paper's Lotus Notes GUI, plus a JSON API. Authentication is
// simulated through the X-EIL-User and X-EIL-Roles headers (the paper's
// front-end delegates to the enterprise SSO); authorization is the real
// access-control component.
package web

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/qlog"
	"repro/internal/runtimetel"
	"repro/internal/siapi"
	"repro/internal/slo"
	"repro/internal/synopsis"
	"repro/internal/trace"
)

// Option configures optional handler subsystems.
type Option func(*config)

type config struct {
	pprof      bool
	accessLog  *slog.Logger
	health     *health.Registry
	slo        *slo.Engine
	collector  *runtimetel.Collector
	profRing   *prof.Ring
	curves     []loadgen.Curve
	replFn     func() any
	failoverFn func() FailoverInfo
	promoteFn  func(target string) error
}

// WithReplStatus mounts /api/repl serving whatever the callback reports —
// a primary's shipper/router view or a follower's client position. The
// callback runs per request, so the payload is always current.
func WithReplStatus(fn func() any) Option {
	return func(c *config) { c.replFn = fn }
}

// FailoverInfo is a node's place in a failover deployment: its current
// role, the fencing epoch it serves under, and when it was last promoted
// (zero if never).
type FailoverInfo struct {
	Role       string    `json:"role"` // primary | follower | fenced | promoting
	Epoch      uint64    `json:"epoch"`
	PromotedAt time.Time `json:"promoted_at"`
}

// WithFailover surfaces failover state. info feeds /debug/dash and folds
// into /readyz: a fenced or mid-promotion node answers 503, because it must
// not take traffic until its role settles. promote (optional) mounts
// POST /api/promote — the manual promotion trigger; an empty target lets
// the supervisor elect, a named target forces that node.
func WithFailover(info func() FailoverInfo, promote func(target string) error) Option {
	return func(c *config) { c.failoverFn, c.promoteFn = info, promote }
}

// WithPprof mounts net/http/pprof under /debug/pprof/.
func WithPprof() Option {
	return func(c *config) { c.pprof = true }
}

// WithAccessLog emits one structured log line per request to logger.
func WithAccessLog(logger *slog.Logger) Option {
	return func(c *config) { c.accessLog = logger }
}

// WithHealth supplies the component-check registry /readyz evaluates. A
// nil registry (or omitting the option) leaves /readyz always ready —
// liveness-equivalent — so the endpoint exists unconditionally and gains
// judgment when checks are wired.
func WithHealth(reg *health.Registry) Option {
	return func(c *config) { c.health = reg }
}

// WithSLO mounts /api/slo backed by the engine and feeds the dashboard's
// burn-rate panel.
func WithSLO(engine *slo.Engine) Option {
	return func(c *config) { c.slo = engine }
}

// WithRuntime feeds /debug/dash from the collector's sample ring.
func WithRuntime(c *runtimetel.Collector) Option {
	return func(cfg *config) { cfg.collector = c }
}

// WithProfiles mounts the continuous-profiling ring at /debug/prof (listing)
// and /debug/prof/{name} (capture download for `go tool pprof`).
func WithProfiles(ring *prof.Ring) Option {
	return func(c *config) { c.profRing = ring }
}

// WithLoadCurves adds a throughput-vs-latency curve panel to /debug/dash —
// typically the committed eilbench -loadcurve artifact, so the dashboard
// shows where the knee was last measured next to where the system runs now.
func WithLoadCurves(curves []loadgen.Curve) Option {
	return func(c *config) { c.curves = curves }
}

// Backend is the serving surface the handler needs: one eil.System or one
// sharded eil.Cluster — the HTTP layer is identical over both, down to the
// metric names and degraded-cause labels.
type Backend interface {
	SearchCtx(ctx context.Context, user access.User, q core.FormQuery) (core.Result, error)
	SearchExplain(ctx context.Context, user access.User, q core.FormQuery) (core.Result, *core.Explanation, error)
	KeywordSearchCtx(ctx context.Context, query string, limit int) []siapi.DocHit
	KeywordCount(query string) int
	ExploreCtx(ctx context.Context, user access.User, dealID string, q core.FormQuery) ([]siapi.DocHit, error)
	SimilarDeals(user access.User, dealID string, k int) ([]synopsis.SimilarHit, error)
	Deal(user access.User, dealID string) (synopsis.Deal, error)
	Registry() *obs.Registry
	RequestTracer() *trace.Tracer
	Log() *qlog.Log
	CoreEngine() *core.Engine
}

// Handler serves the EIL UI and API for one system. Every route is wrapped
// in the metrics middleware (request counts, status classes, and latency
// histograms in the system's registry), and the registry itself is served
// at /metrics (Prometheus text exposition) and /api/metrics (JSON).
func Handler(sys *eil.System, opts ...Option) http.Handler {
	return HandlerFor(sys, opts...)
}

// HandlerFor is Handler over any Backend — a monolithic system or a
// sharded cluster.
func HandlerFor(sys Backend, opts ...Option) http.Handler {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	h := &handler{sys: sys, health: cfg.health, slo: cfg.slo, collector: cfg.collector, profRing: cfg.profRing, curves: cfg.curves, replFn: cfg.replFn, failoverFn: cfg.failoverFn, promoteFn: cfg.promoteFn}
	mux := http.NewServeMux()
	mux.HandleFunc("/", h.home)
	mux.HandleFunc("/deal", h.dealPage)
	mux.HandleFunc("/api/search", h.apiSearch)
	mux.HandleFunc("/api/deal", h.apiDeal)
	mux.HandleFunc("/api/keyword", h.apiKeyword)
	mux.HandleFunc("/api/qlog", h.apiQueryLog)
	mux.HandleFunc("/api/explore", h.apiExplore)
	mux.HandleFunc("/api/similar", h.apiSimilar)
	mux.HandleFunc("/api/metrics", h.apiMetrics)
	mux.HandleFunc("/metrics", h.metrics)
	// /healthz is pure liveness: it answers "ok" as long as the process can
	// serve HTTP at all. Readiness judgment lives at /readyz, which
	// evaluates the component checks and refuses traffic (503 with a JSON
	// cause list) when the system should be drained.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", h.readyz)
	mux.HandleFunc("/api/slo", h.apiSLO)
	mux.HandleFunc("/api/repl", h.apiRepl)
	if cfg.promoteFn != nil {
		mux.HandleFunc("/api/promote", h.apiPromote)
	}
	mux.HandleFunc("/debug/dash", h.debugDash)
	if sys.RequestTracer() != nil {
		mux.HandleFunc("/debug/traces", h.debugTraces)
		mux.HandleFunc("/debug/trace/", h.debugTrace)
	}
	if cfg.profRing != nil {
		mux.HandleFunc("/debug/prof", h.debugProf)
		mux.HandleFunc("/debug/prof/", h.debugProfGet)
	}
	if cfg.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return &middleware{next: mux, mux: mux, reg: sys.Registry(), tracer: sys.RequestTracer(), accessLog: cfg.accessLog}
}

type handler struct {
	sys        Backend
	health     *health.Registry
	slo        *slo.Engine
	collector  *runtimetel.Collector
	profRing   *prof.Ring
	curves     []loadgen.Curve
	replFn     func() any
	failoverFn func() FailoverInfo
	promoteFn  func(target string) error
}

// middleware wraps every route with request counting, status-class
// counting, and a per-route latency histogram. All metric handles are
// nil-safe, so a system without a registry costs nothing extra.
type middleware struct {
	next      http.Handler
	mux       *http.ServeMux
	reg       *obs.Registry
	tracer    *trace.Tracer
	accessLog *slog.Logger
}

// statusWriter captures the response status for metrics and access logs.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Flush passes streaming flushes through to the underlying writer, so
// wrapping a handler in the middleware does not silently break server-sent
// events or incremental responses.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// untraced lists routes whose requests never start a trace: scrape, probe,
// and debug traffic would otherwise flush real requests out of the trace
// ring.
func untraced(route string) bool {
	return route == "/metrics" || route == "/healthz" || route == "/readyz" ||
		route == "/api/slo" || route == "/api/repl" || route == "/api/promote" ||
		strings.HasPrefix(route, "/debug/")
}

func (m *middleware) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Label by registered pattern, not raw path, to bound cardinality.
	_, route := m.mux.Handler(r)
	if route == "" {
		route = "unmatched"
	}
	inflight := m.reg.Gauge("http_in_flight_requests")
	inflight.Add(1)
	defer inflight.Add(-1)

	// Root span for the request. An inbound X-Trace-ID is adopted (and
	// bypasses sampling), as does explain mode — an explanation without its
	// span tree would be useless. The assigned ID is echoed in the response
	// so callers can pull the trace from /debug/trace/{id}.
	var tr *trace.Trace
	if m.tracer != nil && !untraced(route) {
		inbound := r.Header.Get("X-Trace-ID")
		ctx, started := m.tracer.Start(r.Context(), route, trace.StartOptions{
			ID:    inbound,
			Force: r.URL.Query().Has("explain"),
		})
		if started != nil {
			tr = started
			w.Header().Set("X-Trace-ID", tr.ID)
			root := trace.FromContext(ctx)
			root.Set("method", r.Method)
			root.Set("path", r.URL.Path)
			r = r.WithContext(ctx)
		}
	}

	sw := &statusWriter{ResponseWriter: w}
	t := obs.StartTimer()
	m.next.ServeHTTP(sw, r)
	d := t.Elapsed()
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	var traceID string
	if tr != nil {
		traceID = tr.ID
		trace.FromContext(r.Context()).SetInt("status", sw.status)
		tr.Finish()
	}
	m.reg.Counter("http_requests_total", "route", route, "code", statusClass(sw.status)).Inc()
	m.reg.Histogram("http_request_seconds", nil, "route", route).ObserveDurationWithExemplar(d, traceID)
	if !untraced(route) {
		// Aggregate histogram behind the dashboard's QPS/p99 panel: user
		// traffic only, so scrape and probe polling does not dilute it.
		m.reg.Histogram("http_requests_overall_seconds", nil).ObserveDuration(d)
	}
	if m.accessLog != nil {
		m.accessLog.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"route", route,
			"status", sw.status,
			"duration", d,
			"user", r.Header.Get("X-EIL-User"),
			"remote", r.RemoteAddr,
			"trace", traceID,
		)
	}
}

// statusClass buckets an HTTP status into 2xx/3xx/4xx/5xx.
func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// metrics serves the registry in Prometheus text exposition format.
func (h *handler) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	h.sys.Registry().WritePrometheus(w)
}

// apiMetrics serves the registry as JSON snapshots.
func (h *handler) apiMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, h.sys.Registry().Snapshots())
}

// readyz evaluates the component checks and answers with the verdict: 200
// for a ready instance, 503 (with Retry-After, so pollers back off) when
// the verdict is degraded or unready. The body is always the full JSON
// report — verdict, flat cause list, and every check's state — so "why is
// this instance out" is one curl away. A nil health registry evaluates to
// ready, keeping the endpoint meaningful before any checks are wired.
// Failover folds in on top of the component checks: a fenced node's writes
// are refused and its replica set has moved on, and a mid-promotion node is
// reshaping its WAL — neither should take traffic, whatever the disks say.
func (h *handler) readyz(w http.ResponseWriter, _ *http.Request) {
	rep := h.health.Evaluate()
	if h.failoverFn != nil {
		if fo := h.failoverFn(); fo.Role == "fenced" || fo.Role == "promoting" {
			rep.Verdict = health.VerdictUnready
			rep.Causes = append(rep.Causes, "failover: node is "+fo.Role)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if !rep.Ready() {
		w.Header().Set("Retry-After", "5")
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
}

// apiRepl serves the replication status report (404 when this process is
// neither shipping nor following).
func (h *handler) apiRepl(w http.ResponseWriter, _ *http.Request) {
	if h.replFn == nil {
		http.Error(w, "replication disabled", http.StatusNotFound)
		return
	}
	writeJSON(w, h.replFn())
}

// apiPromote triggers a manual promotion via the supervisor. POST-only —
// it is a mutation with cluster-wide effect — and idempotent at the
// supervisor (promoting the current primary is a no-op error). 409 carries
// the supervisor's refusal (no such node, node dead, election in flight).
func (h *handler) apiPromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "promotion requires POST", http.StatusMethodNotAllowed)
		return
	}
	target := strings.TrimSpace(r.FormValue("target"))
	if err := h.promoteFn(target); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, map[string]any{"promoted": true, "target": target})
}

// apiSLO serves the burn-rate report (404 when no SLO engine is wired).
func (h *handler) apiSLO(w http.ResponseWriter, _ *http.Request) {
	if h.slo == nil {
		http.Error(w, "slo engine disabled", http.StatusNotFound)
		return
	}
	writeJSON(w, h.slo.Report(time.Now()))
}

// userFrom reconstructs the principal from the simulated SSO headers. An
// anonymous request gets the sales role (the community the system serves).
func userFrom(r *http.Request) access.User {
	u := access.User{ID: r.Header.Get("X-EIL-User"), Name: r.Header.Get("X-EIL-User")}
	if u.ID == "" {
		u.ID = "anonymous"
	}
	roles := r.Header.Get("X-EIL-Roles")
	if roles == "" {
		roles = string(access.RoleSales)
	}
	for _, role := range strings.Split(roles, ",") {
		if role = strings.TrimSpace(role); role != "" {
			u.Roles = append(u.Roles, access.Role(role))
		}
	}
	return u
}

// formQuery builds a FormQuery from request parameters (shared by the HTML
// and JSON endpoints).
func formQuery(r *http.Request) core.FormQuery {
	get := func(k string) string { return strings.TrimSpace(r.FormValue(k)) }
	words := func(k string) []string {
		f := strings.Fields(get(k))
		if len(f) == 0 {
			return nil
		}
		return f
	}
	q := core.FormQuery{
		Tower:       get("tower"),
		SubTower:    get("subtower"),
		Industry:    get("industry"),
		Consultant:  get("consultant"),
		Geography:   get("geography"),
		Country:     get("country"),
		AllWords:    words("all"),
		ExactPhrase: get("exact"),
		AnyWords:    words("any"),
		NoneWords:   words("none"),
		PersonName:  get("person"),
		PersonOrg:   get("org"),
		Target:      core.TextTarget(get("target")),
	}
	if n, err := strconv.Atoi(get("limit")); err == nil && n > 0 {
		q.Limit = n
	}
	return q
}

// searchError maps a search failure to HTTP semantics: a backend outage
// (every serving tier gone) is 503 with Retry-After, so load balancers and
// clients back off instead of hammering a dead backend; anything else is a
// caller problem and stays 400. Outages are counted per backend cause.
func (h *handler) searchError(w http.ResponseWriter, route string, err error) {
	if core.IsUnavailable(err) {
		cause := "backend"
		var be *core.BackendError
		if errors.As(err, &be) {
			cause = be.Backend
		}
		h.sys.Registry().Counter("http_unavailable_total", "route", route, "cause", cause).Inc()
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	http.Error(w, err.Error(), http.StatusBadRequest)
}

// countDegraded records a degraded-but-served search (HTTP 200 with
// degraded:true) per failed-backend cause.
func (h *handler) countDegraded(route string, res core.Result) {
	if !res.Degraded {
		return
	}
	for _, cause := range res.DegradedCauses {
		h.sys.Registry().Counter("http_degraded_total", "route", route, "cause", cause).Inc()
	}
}

func (h *handler) apiSearch(w http.ResponseWriter, r *http.Request) {
	q := formQuery(r)
	if r.URL.Query().Has("explain") {
		res, ex, err := h.sys.SearchExplain(r.Context(), userFrom(r), q)
		if err != nil {
			h.searchError(w, "/api/search", err)
			return
		}
		h.countDegraded("/api/search", res)
		writeJSON(w, explainResponse{Result: res, Explain: ex})
		return
	}
	res, err := h.sys.SearchCtx(r.Context(), userFrom(r), q)
	if err != nil {
		h.searchError(w, "/api/search", err)
		return
	}
	h.countDegraded("/api/search", res)
	writeJSON(w, res)
}

// explainResponse is the ?explain=1 envelope: the normal result plus the
// span tree and score decomposition.
type explainResponse struct {
	Result  core.Result       `json:"result"`
	Explain *core.Explanation `json:"explain"`
}

func (h *handler) apiDeal(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimSpace(r.FormValue("id"))
	if id == "" {
		http.Error(w, "missing id", http.StatusBadRequest)
		return
	}
	deal, err := h.sys.Deal(userFrom(r), id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, deal)
}

func (h *handler) apiKeyword(w http.ResponseWriter, r *http.Request) {
	q := strings.TrimSpace(r.FormValue("q"))
	if q == "" {
		http.Error(w, "missing q", http.StatusBadRequest)
		return
	}
	limit := 20
	if n, err := strconv.Atoi(r.FormValue("limit")); err == nil && n > 0 {
		limit = n
	}
	writeJSON(w, map[string]any{
		"count": h.sys.KeywordCount(q),
		"hits":  h.sys.KeywordSearchCtx(r.Context(), q, limit),
	})
}

// apiExplore drills into one activity's documents.
func (h *handler) apiExplore(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimSpace(r.FormValue("id"))
	if id == "" {
		http.Error(w, "missing id", http.StatusBadRequest)
		return
	}
	hits, err := h.sys.ExploreCtx(r.Context(), userFrom(r), id, formQuery(r))
	if err != nil {
		if core.IsUnavailable(err) {
			h.searchError(w, "/api/explore", err)
			return
		}
		http.Error(w, err.Error(), http.StatusForbidden)
		return
	}
	writeJSON(w, hits)
}

// apiSimilar lists activities similar to one activity.
func (h *handler) apiSimilar(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimSpace(r.FormValue("id"))
	if id == "" {
		http.Error(w, "missing id", http.StatusBadRequest)
		return
	}
	k := 5
	if n, err := strconv.Atoi(r.FormValue("k")); err == nil && n > 0 {
		k = n
	}
	hits, err := h.sys.SimilarDeals(userFrom(r), id, k)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, hits)
}

// apiQueryLog summarizes the query log (404 when logging is off).
func (h *handler) apiQueryLog(w http.ResponseWriter, r *http.Request) {
	if h.sys.Log() == nil {
		http.Error(w, "query logging disabled", http.StatusNotFound)
		return
	}
	if n, err := strconv.Atoi(r.FormValue("slow")); err == nil && n > 0 {
		writeJSON(w, h.sys.Log().Slowest(n))
		return
	}
	topK := 10
	if n, err := strconv.Atoi(r.FormValue("top")); err == nil && n > 0 {
		topK = n
	}
	writeJSON(w, h.sys.Log().Summarize(topK))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

var homeTmpl = template.Must(template.New("home").Parse(`<!doctype html>
<html><head><title>EIL — Enterprise Information Leverage</title>
<style>
 body{font-family:sans-serif;margin:2em;max-width:70em}
 fieldset{margin-bottom:1em} label{display:inline-block;width:11em}
 .deal{border:1px solid #ccc;margin:.6em 0;padding:.6em}
 .degraded{background:#fff3cd;border:1px solid #d4b106;padding:.5em}
 .towers{color:#046} .score{color:#666;font-size:.85em}
 .doc{margin-left:1.5em;font-size:.9em} em{background:#ffc}
</style></head><body>
<h1>EIL Search Editor</h1>
<form method="get" action="/">
<fieldset><legend>Find deals with these characteristics</legend>
 <label>Tower / Sub tower</label><input name="tower" value="{{.Q.Tower}}"><br>
 <label>Sector / Industry</label><input name="industry" value="{{.Q.Industry}}"><br>
 <label>Out Sourcing Consultant</label><input name="consultant" value="{{.Q.Consultant}}"><br>
 <label>Geography / Country</label><input name="geography" value="{{.Q.Geography}}">
</fieldset>
<fieldset><legend>with this text</legend>
 <label>all of these words</label><input name="all"><br>
 <label>the exact phrase</label><input name="exact" value="{{.Q.ExactPhrase}}"><br>
 <label>any of these words</label><input name="any"><br>
 <label>none of these words</label><input name="none">
</fieldset>
<fieldset><legend>with these people and/or skills</legend>
 <label>Organization</label><input name="org" value="{{.Q.PersonOrg}}"><br>
 <label>Name</label><input name="person" value="{{.Q.PersonName}}">
</fieldset>
<button>Search</button></form>
{{if .Suggestions}}<p>Did you mean: {{range $i, $s := .Suggestions}}{{if $i}}, {{end}}<a href="/?tower={{$s}}">{{$s}}</a>{{end}}?</p>{{end}}
{{if .Degraded}}<p class="degraded">&#9888; Partial results: a search backend is unavailable, so some context or documents may be missing.</p>{{end}}
{{if .Ran}}
<h2>{{len .Activities}} relevant business activities</h2>
{{range .Activities}}
 <div class="deal"><strong><a href="/deal?id={{.DealID}}">{{.DealID}}</a></strong> <span class="score">score {{printf "%.2f" .Score}} ({{.Level}})</span><br>
 {{if .Synopsis}}<span class="towers">{{range $i, $t := .Synopsis.Towers}}{{if $i}}, {{end}}{{$t.Tower}}{{if $t.SubTower}} / {{$t.SubTower}}{{end}}{{end}}</span>
 — {{.Synopsis.Overview.Industry}}; {{.Synopsis.Overview.Consultant}}; {{.Synopsis.Overview.TCVBand}}{{end}}
 {{range .Docs}}<div class="doc">{{printf "%.2f" .Score}} <strong>{{.Title}}</strong> — {{.SnippetHTML}}</div>{{end}}
 </div>
{{end}}
{{end}}
</body></html>`))

type homeData struct {
	Q           core.FormQuery
	Ran         bool
	Degraded    bool
	Activities  []viewActivity
	Suggestions []string
}

type viewActivity struct {
	core.Activity
	Docs []viewDoc
}

type viewDoc struct {
	Title       string
	Score       float64
	SnippetHTML template.HTML
}

func (h *handler) home(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	q := formQuery(r)
	data := homeData{Q: q}
	if q.HasConcepts() || q.HasText() {
		res, err := h.sys.SearchCtx(r.Context(), userFrom(r), q)
		if err != nil {
			h.searchError(w, "/", err)
			return
		}
		h.countDegraded("/", res)
		data.Ran = true
		data.Degraded = res.Degraded
		data.Suggestions = res.Suggestions
		for _, a := range res.Activities {
			va := viewActivity{Activity: a}
			for _, d := range a.Docs {
				va.Docs = append(va.Docs, viewDoc{
					Title: d.Title,
					Score: d.Score,
					// Snippets wrap matches in <em>; the rest of the text
					// is escaped before the tags are re-introduced.
					SnippetHTML: highlightHTML(d.Snippet),
				})
			}
			data.Activities = append(data.Activities, va)
		}
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := homeTmpl.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

var dealTmpl = template.Must(template.New("deal").Parse(`<!doctype html>
<html><head><title>{{.Overview.DealID}} — EIL Synopsis</title>
<style>
 body{font-family:sans-serif;margin:2em;max-width:70em}
 h2{border-bottom:1px solid #ccc} table{border-collapse:collapse}
 td,th{padding:.25em .8em;text-align:left;border-bottom:1px solid #eee}
 .towers{color:#046}
</style></head><body>
<p><a href="/">&larr; search</a></p>
<h1>Synopsis for {{.Overview.DealID}}</h1>
<h2>Overview</h2>
<table>
<tr><th>Towers</th><td class="towers">{{range $i, $t := .Towers}}{{if $i}}, {{end}}{{$t.Tower}}{{if $t.SubTower}} / {{$t.SubTower}}{{end}}{{end}}</td></tr>
<tr><th>Customer name</th><td>{{.Overview.Customer}}</td></tr>
<tr><th>Industry</th><td>{{.Overview.Industry}}</td></tr>
<tr><th>Out Sourcing Consultant</th><td>{{.Overview.Consultant}}</td></tr>
<tr><th>Geography / Country</th><td>{{.Overview.Geography}} / {{.Overview.Country}}</td></tr>
<tr><th>Contract Term Start</th><td>{{.Overview.TermStart}}</td></tr>
<tr><th>Term Duration (months)</th><td>{{.Overview.TermMonths}}</td></tr>
<tr><th>Total Contract Value</th><td>{{.Overview.TCVBand}}</td></tr>
<tr><th>Is International?</th><td>{{if .Overview.International}}Y{{else}}N{{end}}</td></tr>
</table>
<h2>People</h2>
<table><tr><th>Name</th><th>Role</th><th>Category</th><th>Email</th><th>Phone</th><th>Org</th><th>Validated</th></tr>
{{range .People}}<tr><td>{{.Name}}</td><td>{{.Role}}</td><td>{{.Category}}</td><td>{{.Email}}</td><td>{{.Phone}}</td><td>{{.Org}}</td><td>{{if .Validated}}yes{{end}}</td></tr>{{end}}
</table>
<h2>Win Strategies</h2>
<ul>{{range .WinStrategies}}<li>{{.}}</li>{{end}}</ul>
<h2>Client References</h2>
<ul>{{range .ClientRefs}}<li>{{.}}</li>{{end}}</ul>
<h2>Technology Solutions</h2>
<table>{{range $tower, $text := .TechSolutions}}<tr><th>{{$tower}}</th><td>{{$text}}</td></tr>{{end}}</table>
</body></html>`))

// dealPage renders the Figure 6 synopsis view, subject to access control.
func (h *handler) dealPage(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimSpace(r.FormValue("id"))
	if id == "" {
		http.Error(w, "missing id", http.StatusBadRequest)
		return
	}
	deal, err := h.sys.Deal(userFrom(r), id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := dealTmpl.Execute(w, deal); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// highlightHTML escapes snippet text while preserving the <em> highlight
// tags the snippet generator produced.
func highlightHTML(snippet string) template.HTML {
	esc := template.HTMLEscapeString(snippet)
	esc = strings.ReplaceAll(esc, "&lt;em&gt;", "<em>")
	esc = strings.ReplaceAll(esc, "&lt;/em&gt;", "</em>")
	return template.HTML(esc)
}
