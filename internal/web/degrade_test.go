package web

// HTTP semantics of the resilient search path: a backend outage the engine
// can degrade around is a 200 with degraded:true; an outage that leaves no
// serving tier is a 503 with Retry-After. Faults are forced through the
// engine-configured injector, the same activation -fault-spec uses.

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/synth"
	"repro/internal/trace"
)

// chaosServer builds a test server whose engine runs with the given fault
// injector and a short search budget.
func chaosServer(t *testing.T, inj *fault.Injector) (*httptest.Server, *eil.System) {
	t.Helper()
	corpus, err := synth.Generate(synth.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := eil.Ingest(corpus.Docs, eil.Options{
		Directory: corpus.Directory,
		Tracer:    trace.New(trace.Options{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Engine.Faults = inj
	sys.Engine.Resilient = core.Resilience{Budget: 2 * time.Second, MaxRetries: 1}
	srv := httptest.NewServer(Handler(sys))
	t.Cleanup(srv.Close)
	return srv, sys
}

func TestSearchDegraded200WhenSynopsisDown(t *testing.T) {
	inj := fault.New(1)
	inj.Add(&fault.Rule{Site: fault.SiteSynopsisSearch, Mode: fault.ModeError})
	srv, sys := chaosServer(t, inj)

	tower := sys.Taxonomy.TowerNames()[0]
	resp, body := get(t, srv.URL+"/api/search?tower="+strings.ReplaceAll(tower, " ", "+")+"&all=the", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d, want 200; body %s", resp.StatusCode, body)
	}
	var res core.Result
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatalf("degraded=false in %s", body)
	}
	if len(res.DegradedCauses) == 0 || res.DegradedCauses[0] != core.BackendSynopsis {
		t.Fatalf("causes = %v, want [synopsis]", res.DegradedCauses)
	}
	if !strings.Contains(body, `"degraded": true`) {
		t.Fatalf("JSON body lacks degraded:true: %s", body)
	}
	if sys.Metrics.Counter("http_degraded_total", "route", "/api/search", "cause", "synopsis").Value() == 0 {
		t.Fatal("http_degraded_total not counted")
	}
}

func TestSearchSynopsisPlusContactsWhenIndexDown(t *testing.T) {
	inj := fault.New(1)
	inj.Add(&fault.Rule{Site: fault.SiteSIAPISearch, Mode: fault.ModeError})
	srv, sys := chaosServer(t, inj)

	tower := sys.Taxonomy.TowerNames()[0]
	resp, body := get(t, srv.URL+"/api/search?tower="+strings.ReplaceAll(tower, " ", "+")+"&all=the", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d, want 200; body %s", resp.StatusCode, body)
	}
	var res core.Result
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || len(res.DegradedCauses) == 0 || res.DegradedCauses[0] != core.BackendSIAPI {
		t.Fatalf("degraded=%v causes=%v, want siapi degrade", res.Degraded, res.DegradedCauses)
	}
	if len(res.Activities) == 0 {
		t.Fatal("no activities in synopsis-plus-contacts degrade")
	}
	for _, a := range res.Activities {
		if len(a.Docs) != 0 {
			t.Fatalf("activity %s still lists documents with the index down", a.DealID)
		}
		if a.Synopsis == nil {
			t.Fatalf("activity %s lacks a synopsis", a.DealID)
		}
		if len(a.Synopsis.People) == 0 {
			t.Fatalf("activity %s synopsis lacks contacts", a.DealID)
		}
	}
}

func TestSearch503WhenAllTiersDown(t *testing.T) {
	inj := fault.New(1)
	inj.Add(&fault.Rule{Site: fault.SiteSynopsisSearch, Mode: fault.ModeError})
	inj.Add(&fault.Rule{Site: fault.SiteSIAPISearch, Mode: fault.ModeError})
	srv, sys := chaosServer(t, inj)

	tower := sys.Taxonomy.TowerNames()[0]
	resp, body := get(t, srv.URL+"/api/search?tower="+strings.ReplaceAll(tower, " ", "+")+"&all=the", nil)
	if resp.StatusCode != 503 {
		t.Fatalf("status %d, want 503; body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if sys.Metrics.Counter("http_unavailable_total", "route", "/api/search", "cause", "siapi").Value() == 0 {
		t.Fatal("http_unavailable_total not counted")
	}

	// A bad query must stay 4xx, not be confused with an outage.
	resp, _ = get(t, srv.URL+"/api/explore", nil)
	if resp.StatusCode != 400 {
		t.Fatalf("missing-id explore: %d, want 400", resp.StatusCode)
	}
}

func TestExplainCarriesDegradedSpanAttributes(t *testing.T) {
	inj := fault.New(1)
	inj.Add(&fault.Rule{Site: fault.SiteSynopsisSearch, Mode: fault.ModeError})
	srv, sys := chaosServer(t, inj)

	tower := sys.Taxonomy.TowerNames()[0]
	resp, body := get(t, srv.URL+"/api/search?explain=1&tower="+strings.ReplaceAll(tower, " ", "+")+"&all=the", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d; body %s", resp.StatusCode, body)
	}
	// The root span must carry the degraded attributes so the explain span
	// tree shows the outage (the web middleware forces a trace for explain).
	if !strings.Contains(body, "degraded_synopsis") {
		t.Fatalf("explain span tree lacks degraded attributes: %s", body)
	}
	_ = sys
}

func TestHomeDegradedBanner(t *testing.T) {
	inj := fault.New(1)
	inj.Add(&fault.Rule{Site: fault.SiteSynopsisSearch, Mode: fault.ModeError})
	srv, sys := chaosServer(t, inj)

	tower := sys.Taxonomy.TowerNames()[0]
	resp, body := get(t, srv.URL+"/?tower="+strings.ReplaceAll(tower, " ", "+")+"&all=the", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(body, "Partial results") {
		t.Fatal("home page lacks the degraded banner")
	}
}
