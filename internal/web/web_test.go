package web

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro"
	"repro/internal/access"
	"repro/internal/qlog"
	"repro/internal/synth"
)

func testServer(t *testing.T, ctl *access.Controller) (*httptest.Server, *synth.Corpus) {
	t.Helper()
	corpus, err := synth.Generate(synth.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := eil.Ingest(corpus.Docs, eil.Options{Directory: corpus.Directory, Access: ctl})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(sys))
	t.Cleanup(srv.Close)
	return srv, corpus
}

func get(t *testing.T, url string, headers map[string]string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp, sb.String()
}

func TestHealthz(t *testing.T) {
	srv, _ := testServer(t, nil)
	resp, body := get(t, srv.URL+"/healthz", nil)
	if resp.StatusCode != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
}

func TestHomeForm(t *testing.T) {
	srv, _ := testServer(t, nil)
	resp, body := get(t, srv.URL+"/", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	for _, want := range []string{"EIL Search Editor", "Tower / Sub tower", "the exact phrase"} {
		if !strings.Contains(body, want) {
			t.Fatalf("home missing %q", want)
		}
	}
}

func TestHomeSearchResults(t *testing.T) {
	srv, _ := testServer(t, nil)
	u := srv.URL + "/?" + url.Values{"tower": {"Storage Management Services"}, "exact": {"data replication"}}.Encode()
	resp, body := get(t, u, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(body, "relevant business activities") {
		t.Fatalf("no results header: %q", body[:200])
	}
	if !strings.Contains(body, synth.PlantedDealID) {
		t.Fatal("planted deal missing from HTML results")
	}
	if !strings.Contains(body, "<em>") {
		t.Fatal("snippet highlights lost")
	}
}

func TestHomeNotFound(t *testing.T) {
	srv, _ := testServer(t, nil)
	resp, _ := get(t, srv.URL+"/nope", nil)
	if resp.StatusCode != 404 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestAPISearch(t *testing.T) {
	srv, _ := testServer(t, nil)
	u := srv.URL + "/api/search?" + url.Values{"tower": {"EUS"}}.Encode()
	resp, body := get(t, u, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res struct {
		Activities []struct {
			DealID string
		}
	}
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(res.Activities) == 0 {
		t.Fatal("no activities over API")
	}
}

func TestAPIDeal(t *testing.T) {
	srv, corpus := testServer(t, nil)
	u := srv.URL + "/api/deal?" + url.Values{"id": {corpus.DealIDs[0]}}.Encode()
	resp, body := get(t, u, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var deal struct {
		Overview struct{ DealID string }
	}
	if err := json.Unmarshal([]byte(body), &deal); err != nil {
		t.Fatal(err)
	}
	if deal.Overview.DealID != corpus.DealIDs[0] {
		t.Fatalf("deal = %+v", deal)
	}
	if resp, _ := get(t, srv.URL+"/api/deal", nil); resp.StatusCode != 400 {
		t.Fatalf("missing id status %d", resp.StatusCode)
	}
	if resp, _ := get(t, srv.URL+"/api/deal?id=GHOST", nil); resp.StatusCode != 404 {
		t.Fatalf("ghost deal status %d", resp.StatusCode)
	}
}

func TestAPIKeyword(t *testing.T) {
	srv, _ := testServer(t, nil)
	u := srv.URL + "/api/keyword?" + url.Values{"q": {`"cross tower TSA"`}, "limit": {"5"}}.Encode()
	resp, body := get(t, u, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Count int
		Hits  []struct{ Path string }
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out.Count == 0 || len(out.Hits) == 0 || len(out.Hits) > 5 {
		t.Fatalf("keyword out = %+v", out)
	}
	if resp, _ := get(t, srv.URL+"/api/keyword", nil); resp.StatusCode != 400 {
		t.Fatalf("missing q status %d", resp.StatusCode)
	}
}

func TestAccessHeadersEnforced(t *testing.T) {
	ctl := access.NewController()
	srv, corpus := testServer(t, ctl)
	deal := corpus.DealIDs[0]
	// Default anonymous sales: synopsis visible.
	resp, _ := get(t, srv.URL+"/api/deal?id="+url.QueryEscape(deal), nil)
	if resp.StatusCode != 200 {
		t.Fatalf("sales denied synopsis: %d", resp.StatusCode)
	}
	// Delivery role without grants: nothing.
	resp, _ = get(t, srv.URL+"/api/deal?id="+url.QueryEscape(deal),
		map[string]string{"X-EIL-User": "dan", "X-EIL-Roles": "delivery"})
	if resp.StatusCode != 404 {
		t.Fatalf("delivery saw synopsis: %d", resp.StatusCode)
	}
	// Search results carry no documents at synopsis level.
	u := srv.URL + "/api/search?" + url.Values{"exact": {"data replication"}}.Encode()
	_, body := get(t, u, nil)
	var res struct {
		Activities []struct {
			Level int
			Docs  []struct{ Path string }
		}
	}
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Activities {
		if len(a.Docs) != 0 {
			t.Fatal("synopsis-level response leaked documents")
		}
	}
}

func TestDealPage(t *testing.T) {
	srv, corpus := testServer(t, nil)
	resp, body := get(t, srv.URL+"/deal?"+url.Values{"id": {corpus.DealIDs[0]}}.Encode(), nil)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	for _, want := range []string{"Synopsis for", "People", "Win Strategies", "Technology Solutions", "Total Contract Value"} {
		if !strings.Contains(body, want) {
			t.Fatalf("deal page missing %q", want)
		}
	}
	if resp, _ := get(t, srv.URL+"/deal", nil); resp.StatusCode != 400 {
		t.Fatalf("missing id status %d", resp.StatusCode)
	}
	if resp, _ := get(t, srv.URL+"/deal?id=GHOST", nil); resp.StatusCode != 404 {
		t.Fatalf("ghost status %d", resp.StatusCode)
	}
}

func TestHomeSuggestions(t *testing.T) {
	srv, _ := testServer(t, nil)
	u := srv.URL + "/?" + url.Values{"tower": {"Strorage Management Services"}}.Encode()
	resp, body := get(t, u, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(body, "Did you mean") || !strings.Contains(body, "storage management services") {
		t.Fatal("suggestions missing from HTML")
	}
}

func TestResultsLinkToDealPage(t *testing.T) {
	srv, _ := testServer(t, nil)
	u := srv.URL + "/?" + url.Values{"tower": {"Storage Management Services"}}.Encode()
	_, body := get(t, u, nil)
	if !strings.Contains(body, `href="/deal?id=`) {
		t.Fatal("results do not link to deal pages")
	}
}

func TestAPIQueryLog(t *testing.T) {
	srv, sys := testServerWithSystem(t)
	// Logging off by default in the handler's system.
	resp, _ := get(t, srv.URL+"/api/qlog", nil)
	if resp.StatusCode != 404 {
		t.Fatalf("status without log = %d", resp.StatusCode)
	}
	sys.QueryLog = qlog.New(32)
	get(t, srv.URL+"/?"+url.Values{"tower": {"EUS"}}.Encode(), nil)
	get(t, srv.URL+"/api/search?"+url.Values{"exact": {"data replication"}}.Encode(), nil)
	resp, body := get(t, srv.URL+"/api/qlog", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var s struct {
		Total       int
		TopConcepts []struct{ Concept string }
	}
	if err := json.Unmarshal([]byte(body), &s); err != nil {
		t.Fatal(err)
	}
	if s.Total != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if len(s.TopConcepts) == 0 || s.TopConcepts[0].Concept != "EUS" {
		t.Fatalf("concepts = %+v", s.TopConcepts)
	}
}

// testServerWithSystem exposes the system so tests can toggle runtime knobs.
func testServerWithSystem(t *testing.T) (*httptest.Server, *eil.System) {
	t.Helper()
	corpus, err := synth.Generate(synth.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := eil.Ingest(corpus.Docs, eil.Options{Directory: corpus.Directory})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(sys))
	t.Cleanup(srv.Close)
	return srv, sys
}

func TestAPIExploreAndSimilar(t *testing.T) {
	srv, corpus := testServer(t, nil)
	deal := synth.PlantedDealID
	u := srv.URL + "/api/explore?" + url.Values{"id": {deal}, "exact": {"data replication"}}.Encode()
	resp, body := get(t, u, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("explore status %d: %s", resp.StatusCode, body)
	}
	var hits []struct{ Path, DealID string }
	if err := json.Unmarshal([]byte(body), &hits); err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.DealID != deal {
			t.Fatalf("explore leaked other deals: %+v", h)
		}
	}
	if resp, _ := get(t, srv.URL+"/api/explore?exact=x", nil); resp.StatusCode != 400 {
		t.Fatalf("missing id status %d", resp.StatusCode)
	}

	u = srv.URL + "/api/similar?" + url.Values{"id": {corpus.DealIDs[1]}, "k": {"3"}}.Encode()
	resp, body = get(t, u, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("similar status %d: %s", resp.StatusCode, body)
	}
	var sims []struct {
		DealID string
		Score  float64
	}
	if err := json.Unmarshal([]byte(body), &sims); err != nil {
		t.Fatal(err)
	}
	if len(sims) == 0 || len(sims) > 3 {
		t.Fatalf("similar = %+v", sims)
	}
	for _, s := range sims {
		if s.DealID == corpus.DealIDs[1] || s.Score <= 0 {
			t.Fatalf("bad similar hit %+v", s)
		}
	}
	if resp, _ := get(t, srv.URL+"/api/similar", nil); resp.StatusCode != 400 {
		t.Fatalf("missing id status %d", resp.StatusCode)
	}
}
