package web

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/loadgen"
	"repro/internal/prof"
	"repro/internal/slo"
	"repro/internal/synth"
)

// The PR 8 acceptance path end to end: a load run is in progress, the SLO
// engine pages, the page event triggers an automatic profile capture, and
// the capture is retrievable from the ring over /debug/prof.
func TestPageEventCapturesRetrievableProfile(t *testing.T) {
	corpus, err := synth.Generate(synth.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := eil.Ingest(corpus.Docs, eil.Options{Directory: corpus.Directory})
	if err != nil {
		t.Fatal(err)
	}

	ring, err := prof.OpenRing(t.TempDir(), 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	// CPU is excluded from the event bundle here only to keep the test
	// fast; heap and goroutine are real pprof captures.
	profiler := prof.New(prof.Options{
		Ring:        ring,
		EventKinds:  []string{prof.KindHeap, prof.KindGoroutine},
		MinEventGap: time.Millisecond,
		Registry:    sys.Registry(),
	})
	var pages []string
	sloEng := slo.New(slo.Options{
		Registry: sys.Registry(),
		Interval: time.Minute,
		OnAlert: func(route, alert string) {
			pages = append(pages, route+":"+alert)
			if alert == "page" {
				profiler.CaptureEvent("page-" + route)
			}
		},
	})

	srv := httptest.NewServer(HandlerFor(sys, WithSLO(sloEng), WithProfiles(ring)))
	defer srv.Close()

	// A short real load phase against the live server (the captures should
	// reflect a system under load, not an idle one).
	gen := loadgen.New(loadgen.Options{Seed: 3, Mix: loadgen.Mix{Search: 1}})
	res := gen.Run(context.Background(), loadgen.Phase{Name: "bg", TargetQPS: 150, Duration: 300 * time.Millisecond},
		func(ctx context.Context, req loadgen.Request) (bool, error) {
			_, err := http.Get(srv.URL + "/api/search?tower=" + url.QueryEscape("Desktop Support"))
			return false, err
		})
	if res.Completed == 0 || res.Err != nil {
		t.Fatalf("load phase: completed=%d err=%v", res.Completed, res.Err)
	}

	// Force the page: a burst of 5xx against the availability budget. The
	// burn-rate windows need a pre-outage base sample, so tick, fail, tick.
	t0 := time.Now()
	sloEng.Tick(t0)
	for i := 0; i < 50; i++ {
		sys.Registry().Counter("http_requests_total", "route", "/api/search", "code", "5xx").Inc()
	}
	sloEng.Tick(t0.Add(time.Minute))
	profiler.Stop() // waits for the async event capture

	if len(pages) == 0 || !strings.Contains(strings.Join(pages, ","), "page") {
		t.Fatalf("no page alert fired; transitions = %v", pages)
	}
	caps := ring.List()
	if len(caps) == 0 {
		t.Fatal("page event stored no captures in the ring")
	}
	for _, c := range caps {
		if !strings.HasPrefix(c.Reason, "page-") {
			t.Errorf("capture %s reason = %q, want page-*", c.Name, c.Reason)
		}
	}

	// The capture must be retrievable over the ops surface: listed by
	// /debug/prof and downloadable by name.
	resp, body := get(t, srv.URL+"/debug/prof?format=json", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/prof = %d", resp.StatusCode)
	}
	var listed []prof.Capture
	if err := json.Unmarshal([]byte(body), &listed); err != nil {
		t.Fatalf("prof list JSON: %v", err)
	}
	if len(listed) != len(caps) {
		t.Fatalf("listed %d captures, ring has %d", len(listed), len(caps))
	}
	resp, body = get(t, srv.URL+"/debug/prof/"+listed[0].Name, nil)
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("capture download = %d, %d bytes", resp.StatusCode, len(body))
	}

	// HTML listing renders too.
	resp, body = get(t, srv.URL+"/debug/prof", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, listed[0].Name) {
		t.Fatalf("/debug/prof HTML missing capture link (status %d)", resp.StatusCode)
	}

	// Traversal attempts bounce.
	resp, _ = get(t, srv.URL+"/debug/prof/..%2F..%2Fetc%2Fpasswd", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("traversal fetch = %d, want 404", resp.StatusCode)
	}
}

// The dashboard renders the committed load-curve artifact as an inline SVG
// panel with a legend entry per series.
func TestDashLoadCurvePanel(t *testing.T) {
	corpus, err := synth.Generate(synth.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := eil.Ingest(corpus.Docs, eil.Options{Directory: corpus.Directory})
	if err != nil {
		t.Fatal(err)
	}
	curves := []loadgen.Curve{
		{Label: "monolith procs=1", Points: []loadgen.CurvePoint{
			{AchievedQPS: 100, P99Ms: 4}, {AchievedQPS: 300, P99Ms: 9}, {AchievedQPS: 500, P99Ms: 80},
		}},
		{Label: "shards=4 procs=4", Points: []loadgen.CurvePoint{
			{AchievedQPS: 120, P99Ms: 3}, {AchievedQPS: 420, P99Ms: 6}, {AchievedQPS: 800, P99Ms: 40},
		}},
	}
	srv := httptest.NewServer(HandlerFor(sys, WithLoadCurves(curves)))
	defer srv.Close()

	resp, body := get(t, srv.URL+"/debug/dash", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/dash = %d", resp.StatusCode)
	}
	if !strings.Contains(body, "Throughput vs latency") {
		t.Fatal("dash missing curve panel heading")
	}
	if !strings.Contains(body, "monolith procs=1") || !strings.Contains(body, "shards=4 procs=4") {
		t.Fatal("dash missing curve legend labels")
	}
	if !strings.Contains(body, "<polyline") || !strings.Contains(body, "<circle") {
		t.Fatal("dash curve panel missing SVG geometry")
	}
}
