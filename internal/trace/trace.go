// Package trace is EIL's request-scoped tracing layer: trace IDs,
// hierarchical spans with durations and attributes, context.Context
// propagation, and bounded retention of completed traces (a lock-free ring
// of recent traces plus a keeper of the slowest traces per route).
//
// Where internal/obs aggregates — p99 says *that* a stage regressed — trace
// answers *which request*: every search carries a span tree (compose,
// synopsis query, SIAPI query, rank-combine, access filter) whose
// attributes record candidate counts, cache hits, and scoping decisions,
// and the ingest pipeline samples per-document traces so one pathological
// workbook is attributable. Stage histograms link back through OpenMetrics
// exemplars carrying the trace ID.
//
// Like obs, everything is nil-safe: a nil *Tracer starts no traces, a
// context without a trace yields a nil *Span, and every method on a nil
// *Span is a no-op — instrumented code never branches on "is tracing on".
package trace

import (
	"context"
	"math/rand/v2"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for Options fields left zero.
const (
	DefRingSize     = 256 // completed traces retained in the ring
	DefSlowPerRoute = 8   // worst traces kept per route
)

// Options configures a Tracer.
type Options struct {
	// RingSize bounds the ring of recent completed traces (0 = DefRingSize).
	RingSize int
	// SlowPerRoute bounds the worst-trace keeper per route (0 =
	// DefSlowPerRoute).
	SlowPerRoute int
	// SampleEvery keeps 1 in N started traces (0 or 1 = every trace).
	// Forced starts (inbound trace IDs, explain mode) bypass sampling.
	SampleEvery int
}

// Tracer creates traces and retains completed ones. A nil *Tracer is a
// valid no-op source.
type Tracer struct {
	opts   Options
	ring   *ring
	slow   *slowKeeper
	seq    atomic.Uint64 // sampling counter
	idBase uint64        // per-process random base for trace IDs
	idSeq  atomic.Uint64
}

// New returns a tracer with the given options.
func New(opts Options) *Tracer {
	if opts.RingSize <= 0 {
		opts.RingSize = DefRingSize
	}
	if opts.SlowPerRoute <= 0 {
		opts.SlowPerRoute = DefSlowPerRoute
	}
	return &Tracer{
		opts:   opts,
		ring:   newRing(opts.RingSize),
		slow:   newSlowKeeper(opts.SlowPerRoute),
		idBase: rand.Uint64(),
	}
}

// newID mints a trace ID: 16 hex digits, unique within the process and
// unpredictable across processes (random base xor a counter).
func (t *Tracer) newID() string {
	n := t.idBase ^ (t.idSeq.Add(1) * 0x9e3779b97f4a7c15) // Fibonacci hashing spreads the counter
	buf := make([]byte, 0, 16)
	for i := 60; i >= 0; i -= 4 {
		buf = append(buf, "0123456789abcdef"[(n>>uint(i))&0xf])
	}
	return string(buf)
}

// StartOptions tunes one trace start.
type StartOptions struct {
	// ID adopts an inbound trace ID (e.g. the X-Trace-ID request header)
	// instead of minting one. Adopted traces bypass sampling.
	ID string
	// Force bypasses sampling (explain mode must always trace).
	Force bool
}

// Start begins a trace rooted at a span named route and returns a context
// carrying the root span. When the tracer is nil or sampling drops the
// trace, the original context and a nil *Trace come back — all downstream
// span calls are then no-ops.
func (t *Tracer) Start(ctx context.Context, route string, opts StartOptions) (context.Context, *Trace) {
	if t == nil {
		return ctx, nil
	}
	if opts.ID == "" && !opts.Force && t.opts.SampleEvery > 1 {
		if t.seq.Add(1)%uint64(t.opts.SampleEvery) != 0 {
			return ctx, nil
		}
	}
	id := opts.ID
	if id == "" {
		id = t.newID()
	}
	tr := &Trace{ID: id, Route: route, Start: time.Now(), tracer: t}
	root := &Span{tr: tr, id: 0, parent: -1, Name: route, Start: tr.Start}
	tr.spans = append(tr.spans, root)
	return context.WithValue(ctx, ctxKey{}, root), tr
}

// Finish ends tr's root span (if still open), freezes the trace duration,
// and hands the trace to the ring and the slow keeper. Safe to call once
// per trace; later calls are no-ops.
func (tr *Trace) Finish() {
	if tr == nil || !tr.done.CompareAndSwap(false, true) {
		return
	}
	root := tr.spans[0]
	if root.Duration == 0 {
		root.End()
	}
	tr.Duration = root.Duration
	if t := tr.tracer; t != nil {
		t.ring.put(tr)
		t.slow.offer(tr)
	}
}

// Recent returns up to n recently completed traces, newest first (n <= 0
// means all retained).
func (t *Tracer) Recent(n int) []*Trace {
	if t == nil {
		return nil
	}
	out := t.ring.snapshot()
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Slowest returns the retained worst traces, slowest first. route == ""
// merges all routes.
func (t *Tracer) Slowest(route string) []*Trace {
	if t == nil {
		return nil
	}
	return t.slow.slowest(route)
}

// Find returns a retained trace by ID (ring first, then the slow keeper),
// or nil.
func (t *Tracer) Find(id string) *Trace {
	if t == nil || id == "" {
		return nil
	}
	for _, tr := range t.ring.snapshot() {
		if tr.ID == id {
			return tr
		}
	}
	for _, tr := range t.slow.slowest("") {
		if tr.ID == id {
			return tr
		}
	}
	return nil
}

// Trace is one request's span collection. Spans are stored flat with
// parent indices (append is O(1) and lock cost is one mutex op); Tree
// reconstructs the hierarchy for rendering.
type Trace struct {
	ID       string
	Route    string
	Start    time.Time
	Duration time.Duration

	tracer *Tracer
	mu     sync.Mutex
	spans  []*Span
	done   atomic.Bool
}

// newSpan appends a child span under parent.
func (tr *Trace) newSpan(name string, parent int) *Span {
	s := &Span{tr: tr, parent: parent, Name: name, Start: time.Now()}
	tr.mu.Lock()
	s.id = len(tr.spans)
	tr.spans = append(tr.spans, s)
	tr.mu.Unlock()
	return s
}

// Spans returns a snapshot of the trace's spans in creation order.
func (tr *Trace) Spans() []*Span {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	out := make([]*Span, len(tr.spans))
	copy(out, tr.spans)
	tr.mu.Unlock()
	return out
}

// Attr is one span attribute, pre-rendered to a string so spans never hold
// live references into engine state.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation within a trace. A span is written by the
// goroutine that created it; concurrent readers only see it after End (or
// through Tree's in-progress rendering, which tolerates a zero Duration).
type Span struct {
	tr     *Trace
	id     int
	parent int

	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
}

type ctxKey struct{}

// FromContext returns the active span, or nil when the context carries no
// trace.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// ID returns the trace ID carried by ctx, or "".
func ID(ctx context.Context) string {
	if s := FromContext(ctx); s != nil {
		return s.tr.ID
	}
	return ""
}

// StartSpan opens a child span under the context's active span and returns
// a context in which the child is active. Without a trace in ctx it
// returns ctx unchanged and a nil span (whose End/Set* are no-ops), so the
// untraced hot path costs one context lookup.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.tr.newSpan(name, parent.id)
	return context.WithValue(ctx, ctxKey{}, s), s
}

// End freezes the span's duration. Idempotent in practice: a second End
// overwrites with a longer duration, which only happens on misuse.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.Duration = time.Since(s.Start)
}

// Trace returns the owning trace (nil on a nil span).
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.tr
}

// Set attaches a string attribute.
func (s *Span) Set(key, value string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v int) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: strconv.Itoa(v)})
}

// SetBool attaches a boolean attribute.
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: strconv.FormatBool(v)})
}
