package trace

// JSON-friendly renderings of traces: a flat summary for trace listings and
// a recursive span tree for explain mode and /debug/trace/{id}.

import (
	"time"
)

// Summary is one trace's listing row.
type Summary struct {
	ID              string    `json:"id"`
	Route           string    `json:"route"`
	Start           time.Time `json:"start"`
	DurationSeconds float64   `json:"duration_seconds"`
	Spans           int       `json:"spans"`
}

// Summarize renders the trace's listing row.
func (tr *Trace) Summarize() Summary {
	if tr == nil {
		return Summary{}
	}
	d := tr.Duration
	if d == 0 && !tr.done.Load() {
		d = time.Since(tr.Start)
	}
	tr.mu.Lock()
	n := len(tr.spans)
	tr.mu.Unlock()
	return Summary{ID: tr.ID, Route: tr.Route, Start: tr.Start, DurationSeconds: d.Seconds(), Spans: n}
}

// Node is one span in the rendered tree. Offsets are relative to the trace
// start so a reader can see stage ordering without absolute timestamps.
type Node struct {
	Name            string  `json:"name"`
	OffsetSeconds   float64 `json:"offset_seconds"`
	DurationSeconds float64 `json:"duration_seconds"`
	Attrs           []Attr  `json:"attrs,omitempty"`
	Children        []*Node `json:"children,omitempty"`
}

// Tree reconstructs the span hierarchy. Spans still open (explain renders
// mid-request, before the root ends) report their duration so far.
func (tr *Trace) Tree() *Node {
	if tr == nil {
		return nil
	}
	spans := tr.Spans()
	if len(spans) == 0 {
		return nil
	}
	nodes := make([]*Node, len(spans))
	for i, s := range spans {
		d := s.Duration
		if d == 0 {
			d = time.Since(s.Start)
		}
		nodes[i] = &Node{
			Name:            s.Name,
			OffsetSeconds:   s.Start.Sub(tr.Start).Seconds(),
			DurationSeconds: d.Seconds(),
			Attrs:           s.Attrs,
		}
	}
	for i, s := range spans {
		if s.parent >= 0 && s.parent < len(nodes) {
			nodes[s.parent].Children = append(nodes[s.parent].Children, nodes[i])
		}
	}
	return nodes[0]
}

// Walk visits every node of the tree depth-first (parent before children).
// A nil receiver is a no-op; useful for aggregating stage timings.
func (n *Node) Walk(fn func(*Node)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}
