package trace

// Bounded retention of completed traces. The ring is lock-free — trace
// completion on the search hot path must not serialize behind readers of
// /debug/traces — while the slow keeper, touched only on completion and
// rarely contended, uses a plain mutex.

import (
	"sort"
	"sync"
	"sync/atomic"
)

// ring is a lock-free bounded buffer of recent traces. Writers claim a slot
// with one atomic increment and store a pointer; readers load pointers.
// A reader may observe a slot mid-overwrite as either the old or the new
// trace — both are valid completed traces, so no coordination is needed.
type ring struct {
	slots []atomic.Pointer[Trace]
	pos   atomic.Uint64 // next logical write position
}

func newRing(size int) *ring {
	return &ring{slots: make([]atomic.Pointer[Trace], size)}
}

// put stores a completed trace, overwriting the oldest slot when full.
func (r *ring) put(tr *Trace) {
	i := r.pos.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(tr)
}

// snapshot returns the retained traces, newest first.
func (r *ring) snapshot() []*Trace {
	n := uint64(len(r.slots))
	pos := r.pos.Load()
	count := pos
	if count > n {
		count = n
	}
	out := make([]*Trace, 0, count)
	for off := uint64(1); off <= count; off++ {
		if tr := r.slots[(pos-off)%n].Load(); tr != nil {
			out = append(out, tr)
		}
	}
	return out
}

// slowKeeper retains the worst (slowest) completed traces per route.
type slowKeeper struct {
	mu       sync.Mutex
	perRoute int
	routes   map[string][]*Trace // sorted slowest-first, len <= perRoute
}

func newSlowKeeper(perRoute int) *slowKeeper {
	return &slowKeeper{perRoute: perRoute, routes: map[string][]*Trace{}}
}

// offer considers a completed trace for its route's worst-N list.
func (k *slowKeeper) offer(tr *Trace) {
	k.mu.Lock()
	defer k.mu.Unlock()
	list := k.routes[tr.Route]
	if len(list) == k.perRoute && tr.Duration <= list[len(list)-1].Duration {
		return // faster than everything retained
	}
	// Insert in slowest-first order; N is small, linear insertion is fine.
	i := sort.Search(len(list), func(i int) bool { return list[i].Duration < tr.Duration })
	list = append(list, nil)
	copy(list[i+1:], list[i:])
	list[i] = tr
	if len(list) > k.perRoute {
		list = list[:k.perRoute]
	}
	k.routes[tr.Route] = list
}

// slowest returns the retained traces for route (or all routes when route
// is ""), slowest first.
func (k *slowKeeper) slowest(route string) []*Trace {
	k.mu.Lock()
	defer k.mu.Unlock()
	var out []*Trace
	if route != "" {
		out = append(out, k.routes[route]...)
		return out
	}
	for _, list := range k.routes {
		out = append(out, list...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Duration > out[j].Duration })
	return out
}
