package trace

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, root := tr.Start(context.Background(), "route", StartOptions{})
	if root != nil {
		t.Fatal("nil tracer started a trace")
	}
	if got := FromContext(ctx); got != nil {
		t.Fatal("nil tracer put a span in the context")
	}
	ctx2, sp := StartSpan(ctx, "child")
	if sp != nil || ctx2 != ctx {
		t.Fatal("StartSpan without a trace must be a no-op")
	}
	// All nil-receiver methods must not panic.
	sp.End()
	sp.Set("k", "v")
	sp.SetInt("n", 1)
	sp.SetBool("b", true)
	root.Finish()
	if ID(ctx) != "" {
		t.Fatal("ID on an untraced context")
	}
	if tr.Recent(5) != nil || tr.Slowest("") != nil || tr.Find("x") != nil {
		t.Fatal("nil tracer retained traces")
	}
}

func TestSpanTreeAndAttrs(t *testing.T) {
	tc := New(Options{})
	ctx, tr := tc.Start(context.Background(), "/api/search", StartOptions{})
	if tr == nil {
		t.Fatal("no trace")
	}
	if len(tr.ID) != 16 {
		t.Fatalf("trace ID %q not 16 hex chars", tr.ID)
	}
	ctx1, s1 := StartSpan(ctx, "stage.one")
	s1.SetInt("candidates", 42)
	_, s11 := StartSpan(ctx1, "stage.one.inner")
	s11.SetBool("cache_hit", true)
	s11.End()
	s1.End()
	_, s2 := StartSpan(ctx, "stage.two")
	s2.Set("mode", "scoped")
	s2.End()
	tr.Finish()

	root := tr.Tree()
	if root == nil || root.Name != "/api/search" {
		t.Fatalf("bad root: %+v", root)
	}
	if len(root.Children) != 2 {
		t.Fatalf("want 2 children, got %d", len(root.Children))
	}
	one := root.Children[0]
	if one.Name != "stage.one" || len(one.Children) != 1 || one.Children[0].Name != "stage.one.inner" {
		t.Fatalf("bad subtree: %+v", one)
	}
	if one.Attrs[0].Key != "candidates" || one.Attrs[0].Value != "42" {
		t.Fatalf("bad attrs: %+v", one.Attrs)
	}
	if one.Children[0].Attrs[0].Value != "true" {
		t.Fatalf("bad bool attr: %+v", one.Children[0].Attrs)
	}
	var names []string
	root.Walk(func(n *Node) { names = append(names, n.Name) })
	if strings.Join(names, ",") != "/api/search,stage.one,stage.one.inner,stage.two" {
		t.Fatalf("walk order: %v", names)
	}
	if tr.Duration <= 0 {
		t.Fatal("finished trace has no duration")
	}
}

func TestInboundIDAdoptedAndFindable(t *testing.T) {
	tc := New(Options{SampleEvery: 1000}) // sampling must not drop adopted IDs
	ctx, tr := tc.Start(context.Background(), "/api/search", StartOptions{ID: "cafecafecafecafe"})
	if tr == nil || tr.ID != "cafecafecafecafe" {
		t.Fatalf("inbound ID not adopted: %+v", tr)
	}
	if ID(ctx) != "cafecafecafecafe" {
		t.Fatal("context does not carry the adopted ID")
	}
	tr.Finish()
	if tc.Find("cafecafecafecafe") != tr {
		t.Fatal("finished trace not findable by ID")
	}
}

func TestSampling(t *testing.T) {
	tc := New(Options{SampleEvery: 4})
	kept := 0
	for i := 0; i < 100; i++ {
		_, tr := tc.Start(context.Background(), "r", StartOptions{})
		if tr != nil {
			kept++
			tr.Finish()
		}
	}
	if kept != 25 {
		t.Fatalf("SampleEvery=4 kept %d of 100", kept)
	}
	// Force bypasses sampling entirely.
	for i := 0; i < 10; i++ {
		if _, tr := tc.Start(context.Background(), "r", StartOptions{Force: true}); tr == nil {
			t.Fatal("forced start was sampled away")
		}
	}
}

func TestRingBounded(t *testing.T) {
	tc := New(Options{RingSize: 8})
	for i := 0; i < 100; i++ {
		_, tr := tc.Start(context.Background(), "r", StartOptions{})
		tr.Finish()
	}
	if got := len(tc.Recent(0)); got != 8 {
		t.Fatalf("ring retained %d, want 8", got)
	}
	if got := len(tc.Recent(3)); got != 3 {
		t.Fatalf("Recent(3) returned %d", got)
	}
}

func TestSlowKeeperRetainsWorst(t *testing.T) {
	k := newSlowKeeper(3)
	mk := func(route string, d time.Duration) *Trace {
		return &Trace{ID: d.String(), Route: route, Duration: d}
	}
	for _, ms := range []int{5, 1, 9, 3, 7, 2} {
		k.offer(mk("a", time.Duration(ms)*time.Millisecond))
	}
	k.offer(mk("b", 4*time.Millisecond))
	got := k.slowest("a")
	if len(got) != 3 || got[0].Duration != 9*time.Millisecond ||
		got[1].Duration != 7*time.Millisecond || got[2].Duration != 5*time.Millisecond {
		t.Fatalf("slowest(a) = %+v", got)
	}
	all := k.slowest("")
	if len(all) != 4 || all[0].Duration != 9*time.Millisecond {
		t.Fatalf("slowest(all) = %+v", all)
	}
}

// TestConcurrentWritersAndReaders hammers the ring and slow keeper with
// parallel trace producers while readers snapshot, resolve by ID, and
// render trees — the -race workout the retention layer must survive.
func TestConcurrentWritersAndReaders(t *testing.T) {
	tc := New(Options{RingSize: 32, SlowPerRoute: 4})
	const writers, readers, perWriter = 8, 4, 200
	var wgW, wgR sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wgR.Add(1)
		go func() {
			defer wgR.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, tr := range tc.Recent(0) {
					_ = tr.Summarize()
					_ = tr.Tree()
				}
				for _, tr := range tc.Slowest("") {
					_ = tr.Summarize()
				}
				_ = tc.Find("0000000000000000")
			}
		}()
	}
	routes := []string{"/a", "/b", "/c"}
	for w := 0; w < writers; w++ {
		wgW.Add(1)
		go func(w int) {
			defer wgW.Done()
			for i := 0; i < perWriter; i++ {
				ctx, tr := tc.Start(context.Background(), routes[(w+i)%len(routes)], StartOptions{})
				ctx1, s := StartSpan(ctx, "stage")
				s.SetInt("i", i)
				_, inner := StartSpan(ctx1, "inner")
				inner.End()
				s.End()
				tr.Finish()
			}
		}(w)
	}
	wgW.Wait()
	close(stop)
	wgR.Wait()
	if got := len(tc.Recent(0)); got != 32 {
		t.Fatalf("ring retained %d, want 32", got)
	}
	for _, route := range routes {
		if got := len(tc.Slowest(route)); got != 4 {
			t.Fatalf("slow keeper retained %d for %s, want 4", got, route)
		}
	}
}
