package directory

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Directory {
	d := New()
	d.Add(Person{Serial: "001", Name: "Sam White", Email: "sam.white@abc.com", Phone: "555-0100", Org: "ABC Corp", Title: "CIO", Active: true})
	d.Add(Person{Serial: "002", Name: "Jo Park", Email: "jo.park@ibm.com", Phone: "555-0101", Org: "ITD Sales", Title: "Client Solution Executive", Active: true})
	d.Add(Person{Serial: "003", Name: "Lee Chan", Email: "lee.chan@ibm.com", Org: "ITD Delivery", Title: "TSA", Active: false})
	d.Add(Person{Serial: "004", Name: "Jo Park", Email: "jo.park2@ibm.com", Org: "Finance", Title: "Analyst", Active: true})
	return d
}

func TestLookups(t *testing.T) {
	d := sample()
	p, err := d.BySerial("002")
	if err != nil || p.Name != "Jo Park" {
		t.Fatalf("BySerial: %+v, %v", p, err)
	}
	p, err = d.ByEmail("SAM.WHITE@ABC.COM")
	if err != nil || p.Serial != "001" {
		t.Fatalf("ByEmail case-insensitive: %+v, %v", p, err)
	}
	if _, err := d.BySerial("999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if _, err := d.ByEmail("ghost@ibm.com"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestByNameMultiple(t *testing.T) {
	d := sample()
	matches := d.ByName("jo  PARK")
	if len(matches) != 2 {
		t.Fatalf("matches = %+v", matches)
	}
	if matches[0].Serial != "002" || matches[1].Serial != "004" {
		t.Fatalf("order = %+v", matches)
	}
	if got := d.ByName("Nobody Here"); len(got) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestAddValidation(t *testing.T) {
	d := sample()
	if err := d.Add(Person{}); err == nil {
		t.Fatal("empty serial accepted")
	}
	err := d.Add(Person{Serial: "005", Name: "X", Email: "sam.white@abc.com"})
	if err == nil {
		t.Fatal("duplicate email accepted")
	}
}

func TestAddReplace(t *testing.T) {
	d := sample()
	if err := d.Add(Person{Serial: "001", Name: "Sam A White", Email: "sam.a.white@abc.com", Active: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ByEmail("sam.white@abc.com"); !errors.Is(err, ErrNotFound) {
		t.Fatal("old email still resolves after replace")
	}
	if got := d.ByName("Sam White"); len(got) != 0 {
		t.Fatalf("old name still resolves: %+v", got)
	}
	p, err := d.ByEmail("sam.a.white@abc.com")
	if err != nil || p.Serial != "001" {
		t.Fatalf("new email: %+v, %v", p, err)
	}
	if d.Len() != 4 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestEnrichByEmail(t *testing.T) {
	d := sample()
	var phone, org, title string
	found, active := d.Enrich("", "jo.park@ibm.com", &phone, &org, &title)
	if !found || !active {
		t.Fatalf("found=%v active=%v", found, active)
	}
	if phone != "555-0101" || org != "ITD Sales" || title != "Client Solution Executive" {
		t.Fatalf("enriched = %q %q %q", phone, org, title)
	}
}

func TestEnrichDoesNotOverwrite(t *testing.T) {
	d := sample()
	phone := "999-EXISTING"
	org := ""
	found, _ := d.Enrich("", "jo.park@ibm.com", &phone, &org, nil)
	if !found {
		t.Fatal("not found")
	}
	if phone != "999-EXISTING" {
		t.Fatalf("existing phone overwritten: %q", phone)
	}
	if org != "ITD Sales" {
		t.Fatalf("blank org not filled: %q", org)
	}
}

func TestEnrichByUnambiguousName(t *testing.T) {
	d := sample()
	var org string
	found, active := d.Enrich("Lee Chan", "", nil, &org, nil)
	if !found || active {
		t.Fatalf("found=%v active=%v (Lee Chan is inactive)", found, active)
	}
	if org != "ITD Delivery" {
		t.Fatalf("org = %q", org)
	}
}

func TestEnrichAmbiguousNameFails(t *testing.T) {
	d := sample()
	found, _ := d.Enrich("Jo Park", "", nil, nil, nil)
	if found {
		t.Fatal("ambiguous name enriched")
	}
}

func TestEnrichMiss(t *testing.T) {
	d := sample()
	if found, _ := d.Enrich("Ghost", "ghost@x.com", nil, nil, nil); found {
		t.Fatal("missing person enriched")
	}
	if found, _ := d.Enrich("", "", nil, nil, nil); found {
		t.Fatal("empty sketch enriched")
	}
}

// Property: Add then ByEmail round-trips for unique emails.
func TestAddLookupProperty(t *testing.T) {
	d := New()
	i := 0
	err := quick.Check(func(name string) bool {
		serial := fmt.Sprintf("S%05d", i)
		email := fmt.Sprintf("user%d@corp.example", i)
		i++
		if err := d.Add(Person{Serial: serial, Name: name, Email: email, Active: true}); err != nil {
			return false
		}
		p, err := d.ByEmail(email)
		return err == nil && p.Serial == serial
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Error(err)
	}
}

func TestPersistRoundTrip(t *testing.T) {
	d := sample()
	path := t.TempDir() + "/people.jsonl"
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != d.Len() {
		t.Fatalf("Len %d vs %d", loaded.Len(), d.Len())
	}
	p, err := loaded.ByEmail("jo.park@ibm.com")
	if err != nil || p.Title != "Client Solution Executive" || !p.Active {
		t.Fatalf("loaded person = %+v, %v", p, err)
	}
	// Inactive flag survives.
	p, err = loaded.BySerial("003")
	if err != nil || p.Active {
		t.Fatalf("inactive person = %+v, %v", p, err)
	}
}

func TestAllSorted(t *testing.T) {
	d := sample()
	all := d.All()
	if len(all) != 4 {
		t.Fatalf("All = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Serial >= all[i].Serial {
			t.Fatalf("All not sorted: %+v", all)
		}
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage decoded")
	}
	// Duplicate emails in the file must surface the Add error.
	two := `{"Serial":"1","Name":"A","Email":"x@y.com"}
{"Serial":"2","Name":"B","Email":"x@y.com"}
`
	if _, err := Load(strings.NewReader(two)); err == nil {
		t.Fatal("conflicting directory file loaded")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/people.jsonl"); err == nil {
		t.Fatal("missing file loaded")
	}
}
