// Package directory simulates the corporate intranet personnel service
// ("the internal personnel website has a hidden database containing each
// employee's information", §3.3 of the paper). The social networking
// annotator's step 13 validates and enriches extracted contacts against it:
// confirming employment status, filling missing phone numbers and
// organizations, and normalizing names.
package directory

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Person is one directory entry.
type Person struct {
	Serial string // employee serial number, unique
	Name   string // canonical "First Last"
	Email  string // primary intranet email, unique when non-empty
	Phone  string
	Org    string // organizational unit
	Title  string // job title, e.g. "Client Solution Executive"
	Active bool   // false for departed employees
}

// ErrNotFound is returned by lookups that miss.
var ErrNotFound = errors.New("directory: person not found")

// Directory is an in-memory personnel database, safe for concurrent use.
type Directory struct {
	mu       sync.RWMutex
	bySerial map[string]Person
	byEmail  map[string]string // lowercase email -> serial
	byName   map[string][]string
}

// New returns an empty directory.
func New() *Directory {
	return &Directory{
		bySerial: map[string]Person{},
		byEmail:  map[string]string{},
		byName:   map[string][]string{},
	}
}

// Add registers a person. Adding an existing serial replaces the entry.
func (d *Directory) Add(p Person) error {
	if p.Serial == "" {
		return errors.New("directory: empty serial")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if old, ok := d.bySerial[p.Serial]; ok {
		d.unlinkLocked(old)
	}
	if p.Email != "" {
		if other, ok := d.byEmail[strings.ToLower(p.Email)]; ok && other != p.Serial {
			return fmt.Errorf("directory: email %s already registered to %s", p.Email, other)
		}
	}
	d.bySerial[p.Serial] = p
	if p.Email != "" {
		d.byEmail[strings.ToLower(p.Email)] = p.Serial
	}
	key := nameKey(p.Name)
	d.byName[key] = appendUnique(d.byName[key], p.Serial)
	return nil
}

func (d *Directory) unlinkLocked(p Person) {
	if p.Email != "" {
		delete(d.byEmail, strings.ToLower(p.Email))
	}
	key := nameKey(p.Name)
	serials := d.byName[key]
	for i, s := range serials {
		if s == p.Serial {
			d.byName[key] = append(serials[:i], serials[i+1:]...)
			break
		}
	}
}

func appendUnique(list []string, s string) []string {
	for _, x := range list {
		if x == s {
			return list
		}
	}
	return append(list, s)
}

// nameKey folds a display name for lookup: lowercase, single spaces.
func nameKey(name string) string {
	fields := strings.Fields(strings.ToLower(name))
	return strings.Join(fields, " ")
}

// BySerial looks a person up by serial number.
func (d *Directory) BySerial(serial string) (Person, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	p, ok := d.bySerial[serial]
	if !ok {
		return Person{}, fmt.Errorf("%w: serial %s", ErrNotFound, serial)
	}
	return p, nil
}

// ByEmail looks a person up by email, case-insensitively.
func (d *Directory) ByEmail(email string) (Person, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	serial, ok := d.byEmail[strings.ToLower(strings.TrimSpace(email))]
	if !ok {
		return Person{}, fmt.Errorf("%w: email %s", ErrNotFound, email)
	}
	return d.bySerial[serial], nil
}

// ByName returns all people whose canonical name matches (case- and
// spacing-insensitive). Multiple matches are possible; callers disambiguate
// with org or email evidence.
func (d *Directory) ByName(name string) []Person {
	d.mu.RLock()
	defer d.mu.RUnlock()
	serials := d.byName[nameKey(name)]
	out := make([]Person, 0, len(serials))
	for _, s := range serials {
		out = append(out, d.bySerial[s])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Serial < out[j].Serial })
	return out
}

// Len reports the number of entries.
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.bySerial)
}

// Enrich fills the blank fields of a contact sketch from the directory,
// matching by email first, then by unambiguous name. It reports whether a
// directory record was found. This is the annotator's validation step: a
// match also confirms the person's Active status, which is returned so the
// caller can down-rank departed employees.
func (d *Directory) Enrich(name, email string, phone, org, title *string) (found, active bool) {
	var p Person
	var err error
	if email != "" {
		p, err = d.ByEmail(email)
	} else {
		err = ErrNotFound
	}
	if err != nil && name != "" {
		matches := d.ByName(name)
		if len(matches) == 1 {
			p, err = matches[0], nil
		}
	}
	if err != nil {
		return false, false
	}
	if phone != nil && *phone == "" {
		*phone = p.Phone
	}
	if org != nil && *org == "" {
		*org = p.Org
	}
	if title != nil && *title == "" {
		*title = p.Title
	}
	return true, p.Active
}
