package directory

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/durable"
)

// All returns every entry, sorted by serial.
func (d *Directory) All() []Person {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]Person, 0, len(d.bySerial))
	for _, p := range d.bySerial {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Serial < out[j].Serial })
	return out
}

// WriteTo serializes the directory as JSON lines (one person per line),
// a format operators can inspect and patch by hand.
func (d *Directory) WriteTo(w io.Writer) (int64, error) {
	var n int64
	enc := json.NewEncoder(w)
	for _, p := range d.All() {
		before := n
		if err := enc.Encode(p); err != nil {
			return n, fmt.Errorf("directory: encode %s: %w", p.Serial, err)
		}
		_ = before
		n++ // lines written, not bytes; callers only check the error
	}
	return n, nil
}

// Load reads a directory written with WriteTo.
func Load(r io.Reader) (*Directory, error) {
	d := New()
	dec := json.NewDecoder(r)
	for {
		var p Person
		if err := dec.Decode(&p); err == io.EOF {
			return d, nil
		} else if err != nil {
			return nil, fmt.Errorf("directory: decode: %w", err)
		}
		if err := d.Add(p); err != nil {
			return nil, err
		}
	}
}

// SaveFile writes the directory to path atomically and durably (temp file +
// fsync + rename + directory fsync, via the shared durable helper).
func (d *Directory) SaveFile(path string) error {
	return durable.WriteFileAtomic(nil, path, func(w io.Writer) error {
		_, err := d.WriteTo(w)
		return err
	})
}

// LoadFile reads a directory from path.
func LoadFile(path string) (*Directory, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("directory: load: %w", err)
	}
	defer f.Close()
	return Load(bufio.NewReader(f))
}
