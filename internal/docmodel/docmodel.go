// Package docmodel defines the document representation shared by the
// crawler, the parsers, the analysis pipeline, and the indexer. The paper's
// §3.3 ("Custom Parsing") stresses that structure — a presentation's titles
// and subtitles, a spreadsheet's rows and cells — must survive parsing so
// annotators can exploit it; Structure carries exactly that.
package docmodel

import (
	"strings"
)

// DocType classifies a repository document by its source format.
type DocType string

// Document types found in engagement workbooks. Deck and Grid stand in for
// the PowerPoint and Excel artifacts of the paper's deployment; their text
// formats preserve the same structural cues (titles, rows, cells).
const (
	TypeText  DocType = "text"  // free-form notes, meeting minutes
	TypeDeck  DocType = "deck"  // slide presentation
	TypeGrid  DocType = "grid"  // spreadsheet
	TypeEmail DocType = "email" // email message
)

// Document is one parsed repository document.
type Document struct {
	// Path is the repository-relative path; it doubles as the stable
	// external ID in the full-text index.
	Path string
	// DealID identifies the business activity (engagement) the document
	// belongs to — the central piece of context in EIL.
	DealID string
	Type   DocType
	Title  string
	// Body is the flat text of the document (structure flattened in
	// reading order). All indexing and annotation run over Body plus
	// Structure.
	Body string
	// Structure preserves format-specific structure; nil for plain text.
	Structure *Structure
	// Meta carries parser- and crawler-supplied metadata (dates, authors).
	Meta map[string]string
}

// Structure is the union of per-format structural views.
type Structure struct {
	Slides  []Slide           // decks
	Grid    *Grid             // spreadsheets
	Headers map[string]string // emails: From, To, Subject, Date...
}

// Slide is one presentation slide with its title hierarchy preserved.
// The paper: "a PowerPoint presenter uses title and subtitle to convey the
// key point" — annotators weight these higher than bullet text.
type Slide struct {
	Title    string
	Subtitle string
	Bullets  []string
}

// Grid is a spreadsheet sheet: a rectangular cell matrix. Row 0 is the
// header row by convention; TSA forms and roster sheets follow it.
type Grid struct {
	Name string
	Rows [][]string
}

// Header returns the header row, or nil for an empty grid.
func (g *Grid) Header() []string {
	if g == nil || len(g.Rows) == 0 {
		return nil
	}
	return g.Rows[0]
}

// ColumnIndex finds a header cell matching name case-insensitively
// (substring match, tolerating decorated headers like "Role / Title"),
// or -1.
func (g *Grid) ColumnIndex(name string) int {
	h := g.Header()
	needle := strings.ToLower(name)
	for i, cell := range h {
		if strings.Contains(strings.ToLower(cell), needle) {
			return i
		}
	}
	return -1
}

// Cell returns the trimmed cell at (row, col) or "" when out of range.
func (g *Grid) Cell(row, col int) string {
	if g == nil || row < 0 || row >= len(g.Rows) {
		return ""
	}
	r := g.Rows[row]
	if col < 0 || col >= len(r) {
		return ""
	}
	return strings.TrimSpace(r[col])
}

// FlatText renders the document's structure into indexable text. For decks
// the slide titles lead each section; for grids the cells join with spaces
// row by row (this is also what a structure-blind "blob" parser would see,
// which the §3.3 ablation compares against).
func (d *Document) FlatText() string {
	if d.Body != "" {
		return d.Body
	}
	if d.Structure == nil {
		return ""
	}
	var b strings.Builder
	for _, s := range d.Structure.Slides {
		b.WriteString(s.Title)
		b.WriteByte('\n')
		if s.Subtitle != "" {
			b.WriteString(s.Subtitle)
			b.WriteByte('\n')
		}
		for _, bl := range s.Bullets {
			b.WriteString(bl)
			b.WriteByte('\n')
		}
	}
	if g := d.Structure.Grid; g != nil {
		for _, row := range g.Rows {
			b.WriteString(strings.Join(row, " "))
			b.WriteByte('\n')
		}
	}
	return b.String()
}
