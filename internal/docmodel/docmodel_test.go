package docmodel

import (
	"strings"
	"testing"
)

func TestGridColumnIndex(t *testing.T) {
	g := &Grid{Rows: [][]string{
		{"Name", "Role / Title", "Email Address", "Phone"},
		{"Jo", "CSE", "jo@x.com", ""},
	}}
	cases := map[string]int{
		"name":  0,
		"role":  1,
		"title": 1, // substring of the decorated header
		"email": 2,
		"phone": 3,
		"fax":   -1,
	}
	for name, want := range cases {
		if got := g.ColumnIndex(name); got != want {
			t.Errorf("ColumnIndex(%q) = %d, want %d", name, got, want)
		}
	}
}

func TestGridCellTrims(t *testing.T) {
	g := &Grid{Rows: [][]string{{"h"}, {"  padded  "}}}
	if got := g.Cell(1, 0); got != "padded" {
		t.Fatalf("Cell = %q", got)
	}
}

func TestFlatTextPrefersBody(t *testing.T) {
	d := &Document{Body: "the body", Structure: &Structure{Slides: []Slide{{Title: "ignored"}}}}
	if got := d.FlatText(); got != "the body" {
		t.Fatalf("FlatText = %q", got)
	}
}

func TestFlatTextEmptyDocument(t *testing.T) {
	d := &Document{}
	if got := d.FlatText(); got != "" {
		t.Fatalf("FlatText = %q", got)
	}
}

func TestFlatTextSlideOrder(t *testing.T) {
	d := &Document{Structure: &Structure{Slides: []Slide{
		{Title: "First", Subtitle: "Sub", Bullets: []string{"a", "b"}},
		{Title: "Second"},
	}}}
	flat := d.FlatText()
	iFirst := strings.Index(flat, "First")
	iSub := strings.Index(flat, "Sub")
	iA := strings.Index(flat, "a")
	iSecond := strings.Index(flat, "Second")
	if !(iFirst < iSub && iSub < iA && iA < iSecond) {
		t.Fatalf("reading order broken: %q", flat)
	}
}

func TestHeaderEmptyGrid(t *testing.T) {
	g := &Grid{}
	if g.Header() != nil {
		t.Fatal("empty grid has a header")
	}
	if g.ColumnIndex("x") != -1 {
		t.Fatal("empty grid resolved a column")
	}
}
