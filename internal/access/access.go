// Package access implements EIL's access-control component (§3.1 of the
// paper). Security and privacy concerns limit what a user sees: a user who
// is not authorized for a data repository still receives the *synopsis* of
// the matching business activity — including the contact list, so they can
// reach the people involved — but not the underlying documents. That
// synopsis-only fallback is the behaviour this package encodes.
package access

import (
	"context"
	"errors"
	"sort"
	"strings"
	"sync"

	"repro/internal/fault"
	"repro/internal/trace"
)

// Level is what a user may see of a business activity.
type Level int

const (
	// LevelNone hides the activity entirely.
	LevelNone Level = iota
	// LevelSynopsis exposes the extracted business context (synopsis and
	// contacts) but not the documents.
	LevelSynopsis
	// LevelFull exposes synopsis and documents.
	LevelFull
)

// String renders the level for diagnostics.
func (l Level) String() string {
	switch l {
	case LevelNone:
		return "none"
	case LevelSynopsis:
		return "synopsis"
	case LevelFull:
		return "full"
	default:
		return "invalid"
	}
}

// Role is a coarse job role used in grants.
type Role string

// Roles used by the EIL deployment model.
const (
	RoleSales    Role = "sales"    // sales executives: synopsis everywhere, documents where granted
	RoleDelivery Role = "delivery" // delivery teams: their own engagements
	RoleAdmin    Role = "admin"    // system administrators: everything
)

// User is an authenticated principal.
type User struct {
	ID    string
	Name  string
	Roles []Role
}

// HasRole reports whether the user holds the role.
func (u User) HasRole(r Role) bool {
	for _, have := range u.Roles {
		if have == r {
			return true
		}
	}
	return false
}

// ErrDenied is returned when an operation requires a level the user lacks.
var ErrDenied = errors.New("access: denied")

// Controller evaluates access decisions. It is safe for concurrent use.
type Controller struct {
	mu sync.RWMutex
	// base is the default level by role.
	base map[Role]Level
	// grants lifts (user, dealID) to a level; deal "" means all deals.
	grants map[string]map[string]Level
	// restricted marks deals confidential: base levels are capped at
	// LevelSynopsis unless an explicit grant lifts them.
	restricted map[string]bool
}

// NewController returns a controller with the EIL defaults: sales
// executives see synopses of everything; delivery and unknown roles see
// nothing until granted; admins see everything.
func NewController() *Controller {
	return &Controller{
		base: map[Role]Level{
			RoleSales:    LevelSynopsis,
			RoleDelivery: LevelNone,
			RoleAdmin:    LevelFull,
		},
		grants:     map[string]map[string]Level{},
		restricted: map[string]bool{},
	}
}

// Grant lifts a user's level for one deal (or all deals when dealID is "").
// Grants only ever raise access; a grant below the base level is ignored at
// evaluation time.
func (c *Controller) Grant(userID, dealID string, level Level) {
	c.mu.Lock()
	defer c.mu.Unlock()
	byDeal := c.grants[userID]
	if byDeal == nil {
		byDeal = map[string]Level{}
		c.grants[userID] = byDeal
	}
	key := strings.ToLower(dealID)
	if level > byDeal[key] {
		byDeal[key] = level
	}
}

// Restrict marks a deal confidential.
func (c *Controller) Restrict(dealID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.restricted[strings.ToLower(dealID)] = true
}

// LevelFor computes the user's effective level on a deal.
func (c *Controller) LevelFor(u User, dealID string) Level {
	c.mu.RLock()
	defer c.mu.RUnlock()
	level := LevelNone
	for _, r := range u.Roles {
		if b := c.base[r]; b > level {
			level = b
		}
	}
	key := strings.ToLower(dealID)
	if c.restricted[key] && level > LevelSynopsis && !u.HasRole(RoleAdmin) {
		level = LevelSynopsis
	}
	if byDeal := c.grants[u.ID]; byDeal != nil {
		if g := byDeal[key]; g > level {
			level = g
		}
		if g := byDeal[""]; g > level {
			level = g
		}
	}
	return level
}

// LevelsFor resolves the user's level for each deal in one traced batch —
// the access-filter stage of Figure 1 step 19. The span records how many
// activities were checked and how many came back invisible. A failing
// controller (only possible under fault injection) yields nil levels;
// callers that must distinguish use TryLevelsFor.
func (c *Controller) LevelsFor(ctx context.Context, u User, dealIDs []string) []Level {
	levels, _ := c.TryLevelsFor(ctx, u, dealIDs)
	return levels
}

// TryLevelsFor is LevelsFor surfacing backend failure — the fault-injection
// boundary (site "access.levels") standing in for an unreachable entitlement
// service. The core layer degrades a failed batch to the community-safe
// synopsis tier rather than guessing per-deal grants.
func (c *Controller) TryLevelsFor(ctx context.Context, u User, dealIDs []string) ([]Level, error) {
	_, sp := trace.StartSpan(ctx, "access.levels")
	if err := fault.Inject(ctx, fault.SiteAccessLevels); err != nil {
		if sp != nil {
			sp.Set("error", err.Error())
			sp.End()
		}
		return nil, err
	}
	out := make([]Level, len(dealIDs))
	denied := 0
	for i, id := range dealIDs {
		out[i] = c.LevelFor(u, id)
		if out[i] == LevelNone {
			denied++
		}
	}
	if sp != nil {
		sp.SetInt("checked", len(dealIDs))
		sp.SetInt("denied", denied)
		sp.End()
	}
	return out, nil
}

// CanSeeDocuments reports whether the user may open documents of the deal.
func (c *Controller) CanSeeDocuments(u User, dealID string) bool {
	return c.LevelFor(u, dealID) >= LevelFull
}

// CanSeeSynopsis reports whether the user may see the deal's synopsis.
func (c *Controller) CanSeeSynopsis(u User, dealID string) bool {
	return c.LevelFor(u, dealID) >= LevelSynopsis
}

// FilterDeals partitions dealIDs into those with at least synopsis access,
// returning them sorted, with the subset that also has document access.
func (c *Controller) FilterDeals(u User, dealIDs []string) (synopsis, full []string) {
	for _, id := range dealIDs {
		switch c.LevelFor(u, id) {
		case LevelFull:
			full = append(full, id)
			synopsis = append(synopsis, id)
		case LevelSynopsis:
			synopsis = append(synopsis, id)
		}
	}
	sort.Strings(synopsis)
	sort.Strings(full)
	return synopsis, full
}
