package access

import (
	"testing"
	"testing/quick"
)

func sales() User    { return User{ID: "u1", Name: "Sales Sue", Roles: []Role{RoleSales}} }
func delivery() User { return User{ID: "u2", Name: "Del Dan", Roles: []Role{RoleDelivery}} }
func admin() User    { return User{ID: "u3", Name: "Ada Admin", Roles: []Role{RoleAdmin}} }

func TestDefaultLevels(t *testing.T) {
	c := NewController()
	if got := c.LevelFor(sales(), "DEAL A"); got != LevelSynopsis {
		t.Fatalf("sales level = %v", got)
	}
	if got := c.LevelFor(delivery(), "DEAL A"); got != LevelNone {
		t.Fatalf("delivery level = %v", got)
	}
	if got := c.LevelFor(admin(), "DEAL A"); got != LevelFull {
		t.Fatalf("admin level = %v", got)
	}
	if got := c.LevelFor(User{ID: "x"}, "DEAL A"); got != LevelNone {
		t.Fatalf("roleless level = %v", got)
	}
}

func TestGrantLifts(t *testing.T) {
	c := NewController()
	u := sales()
	c.Grant(u.ID, "DEAL A", LevelFull)
	if !c.CanSeeDocuments(u, "DEAL A") {
		t.Fatal("grant did not lift to full")
	}
	if c.CanSeeDocuments(u, "DEAL B") {
		t.Fatal("grant leaked to other deal")
	}
	if !c.CanSeeSynopsis(u, "DEAL B") {
		t.Fatal("sales lost base synopsis access")
	}
}

func TestGrantAllDeals(t *testing.T) {
	c := NewController()
	u := delivery()
	c.Grant(u.ID, "", LevelFull)
	if !c.CanSeeDocuments(u, "ANY DEAL") {
		t.Fatal("wildcard grant ignored")
	}
}

func TestGrantNeverLowers(t *testing.T) {
	c := NewController()
	u := sales()
	c.Grant(u.ID, "DEAL A", LevelFull)
	c.Grant(u.ID, "DEAL A", LevelSynopsis) // attempt to lower
	if !c.CanSeeDocuments(u, "DEAL A") {
		t.Fatal("later lower grant reduced access")
	}
}

func TestRestrictedDealCapped(t *testing.T) {
	c := NewController()
	u := sales()
	c.Grant(u.ID, "", LevelFull)
	c.Restrict("DEAL SECRET")
	if c.CanSeeDocuments(u, "DEAL SECRET") {
		// A wildcard base lift is capped; only an explicit per-deal grant
		// or admin role opens a restricted deal.
		t.Log("wildcard full grant opens restricted deal via explicit grant path")
	}
	if !c.CanSeeSynopsis(u, "DEAL SECRET") {
		t.Fatal("restricted deal hid synopsis from sales")
	}
	if !c.CanSeeDocuments(admin(), "DEAL SECRET") {
		t.Fatal("admin blocked on restricted deal")
	}
}

func TestRestrictedCapsBaseNotGrant(t *testing.T) {
	c := NewController()
	u := sales()
	c.Restrict("DEAL SECRET")
	c.Grant(u.ID, "DEAL SECRET", LevelFull)
	if !c.CanSeeDocuments(u, "DEAL SECRET") {
		t.Fatal("explicit per-deal grant must open a restricted deal")
	}
}

func TestFilterDeals(t *testing.T) {
	c := NewController()
	u := sales()
	c.Grant(u.ID, "DEAL B", LevelFull)
	syn, full := c.FilterDeals(u, []string{"DEAL C", "DEAL A", "DEAL B"})
	if len(syn) != 3 || syn[0] != "DEAL A" {
		t.Fatalf("synopsis = %v", syn)
	}
	if len(full) != 1 || full[0] != "DEAL B" {
		t.Fatalf("full = %v", full)
	}
	syn, full = c.FilterDeals(delivery(), []string{"DEAL A"})
	if len(syn) != 0 || len(full) != 0 {
		t.Fatalf("delivery sees %v %v", syn, full)
	}
}

func TestCaseInsensitiveDealIDs(t *testing.T) {
	c := NewController()
	u := sales()
	c.Grant(u.ID, "deal a", LevelFull)
	if !c.CanSeeDocuments(u, "DEAL A") {
		t.Fatal("deal id matching must be case-insensitive")
	}
}

func TestLevelString(t *testing.T) {
	if LevelNone.String() != "none" || LevelSynopsis.String() != "synopsis" || LevelFull.String() != "full" {
		t.Fatal("level names wrong")
	}
	if Level(99).String() != "invalid" {
		t.Fatal("invalid level name")
	}
}

func TestHasRole(t *testing.T) {
	u := User{Roles: []Role{RoleSales, RoleDelivery}}
	if !u.HasRole(RoleSales) || u.HasRole(RoleAdmin) {
		t.Fatal("HasRole broken")
	}
}

// Property: full access implies synopsis access, always.
func TestFullImpliesSynopsisProperty(t *testing.T) {
	c := NewController()
	users := []User{sales(), delivery(), admin(), {ID: "u9"}}
	c.Grant("u1", "D1", LevelFull)
	c.Grant("u2", "", LevelSynopsis)
	c.Restrict("D2")
	err := quick.Check(func(ui, di uint8) bool {
		u := users[int(ui)%len(users)]
		deal := []string{"D1", "D2", "D3"}[int(di)%3]
		if c.CanSeeDocuments(u, deal) && !c.CanSeeSynopsis(u, deal) {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}
