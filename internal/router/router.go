// Package router fans read traffic across a primary and its read
// replicas. Writes and admin surfaces pass through to the primary backend
// untouched; searches, keyword queries, explores, similar-deal lookups,
// and deal fetches rotate across every node that is healthy, fresh enough
// (staleness bound on WAL-position lag), under its in-flight cap, not
// draining, and whose breaker is closed — with the primary as the
// guaranteed last resort, so a read is only refused when the primary
// itself fails it.
package router

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/qlog"
	"repro/internal/siapi"
	"repro/internal/synopsis"
	"repro/internal/trace"
)

// Backend is the primary's full serving surface — structurally identical
// to the web handler's Backend interface (this package cannot import
// internal/web without a cycle through the root package). Any web Backend
// satisfies it, and a Router satisfies the web handler's interface.
type Backend interface {
	SearchCtx(ctx context.Context, user access.User, q core.FormQuery) (core.Result, error)
	SearchExplain(ctx context.Context, user access.User, q core.FormQuery) (core.Result, *core.Explanation, error)
	KeywordSearchCtx(ctx context.Context, query string, limit int) []siapi.DocHit
	KeywordCount(query string) int
	ExploreCtx(ctx context.Context, user access.User, dealID string, q core.FormQuery) ([]siapi.DocHit, error)
	SimilarDeals(user access.User, dealID string, k int) ([]synopsis.SimilarHit, error)
	Deal(user access.User, dealID string) (synopsis.Deal, error)
	Registry() *obs.Registry
	RequestTracer() *trace.Tracer
	Log() *qlog.Log
	CoreEngine() *core.Engine
}

// Node is one read-serving endpoint: the primary or a replica. Lag is the
// node's distance behind the primary in WAL records (ok=false while
// unknown — e.g. a replica that has not heard a heartbeat yet); the
// primary reports (0, true).
type Node interface {
	Name() string
	Ready() bool
	Lag() (uint64, bool)

	SearchCtx(ctx context.Context, user access.User, q core.FormQuery) (core.Result, error)
	KeywordSearchCtx(ctx context.Context, query string, limit int) []siapi.DocHit
	KeywordCount(query string) int
	ExploreCtx(ctx context.Context, user access.User, dealID string, q core.FormQuery) ([]siapi.DocHit, error)
	SimilarDeals(user access.User, dealID string, k int) ([]synopsis.SimilarHit, error)
	Deal(user access.User, dealID string) (synopsis.Deal, error)
}

// Options tunes routing policy.
type Options struct {
	// MaxLag is the staleness bound: a replica more than this many WAL
	// records behind the primary is skipped for reads (0 = no bound).
	MaxLag uint64
	// PrimaryReads includes the primary in the read rotation (it always
	// remains the failover target regardless).
	PrimaryReads bool
	// MaxInFlight caps concurrent routed reads per node (0 = unbounded).
	// A node at its cap is skipped, not queued.
	MaxInFlight int
	// BreakerThreshold is how many consecutive failures open a node's
	// breaker (0 = 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects a node before
	// one probe is allowed through (0 = 5s).
	BreakerCooldown time.Duration
	// Metrics receives eil_repl_router_* telemetry; nil disables.
	Metrics *obs.Registry
}

// ErrNoNodes means every node (including the primary) was skipped by
// admission control — the cluster is saturated, not broken.
var ErrNoNodes = errors.New("router: no node admitted the read")

// nodeState is the router's per-node book-keeping: admission count,
// consecutive-failure breaker, and drain flag.
type nodeState struct {
	node      Node
	primary   bool
	inflight  atomic.Int64
	fails     atomic.Int64
	openUntil atomic.Int64 // unixnano; breaker open while now < openUntil, half-open after (until a probe closes it)
	probing   atomic.Bool  // a half-open probe request is in flight
	draining  atomic.Bool
}

// NodeStatus is one node's routing view, for status surfaces.
type NodeStatus struct {
	Name        string  `json:"name"`
	Primary     bool    `json:"primary"`
	Ready       bool    `json:"ready"`
	Lag         *uint64 `json:"lag_records,omitempty"`
	InFlight    int64   `json:"in_flight"`
	BreakerOpen bool    `json:"breaker_open"`
	HalfOpen    bool    `json:"breaker_half_open,omitempty"`
	Draining    bool    `json:"draining"`
}

// Router is a web.Backend whose read methods fan out across nodes. Every
// non-read method (SearchExplain, Registry, Log, tracing, and whatever
// write/admin surface the embedded backend exposes) passes through to the
// primary backend.
type Router struct {
	Backend // the primary's full backend: pass-through surface

	primary  *nodeState
	replicas []*nodeState
	opts     Options
	rr       atomic.Uint64
}

// New builds a router over the primary (its full backend plus its Node
// view) and the given replicas.
func New(primaryBackend Backend, primary Node, replicas []Node, opts Options) *Router {
	if opts.BreakerThreshold <= 0 {
		opts.BreakerThreshold = 3
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 5 * time.Second
	}
	r := &Router{
		Backend: primaryBackend,
		primary: &nodeState{node: primary, primary: true},
		opts:    opts,
	}
	for _, n := range replicas {
		r.replicas = append(r.replicas, &nodeState{node: n})
	}
	return r
}

// SetDraining marks a node as draining: no new reads route to it, but
// in-flight ones finish. The primary cannot drain (it is the last
// resort); draining it is a no-op.
func (r *Router) SetDraining(name string, v bool) {
	for _, ns := range r.replicas {
		if ns.node.Name() == name {
			ns.draining.Store(v)
		}
	}
}

// DrainWait marks the node draining and blocks until its in-flight reads
// hit zero or ctx expires.
func (r *Router) DrainWait(ctx context.Context, name string) error {
	r.SetDraining(name, true)
	for {
		settled := true
		for _, ns := range r.replicas {
			if ns.node.Name() == name && ns.inflight.Load() > 0 {
				settled = false
			}
		}
		if settled {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Status reports every node's routing view, primary first.
func (r *Router) Status() []NodeStatus {
	now := time.Now().UnixNano()
	all := append([]*nodeState{r.primary}, r.replicas...)
	out := make([]NodeStatus, 0, len(all))
	for _, ns := range all {
		open := ns.openUntil.Load()
		st := NodeStatus{
			Name:        ns.node.Name(),
			Primary:     ns.primary,
			Ready:       ns.node.Ready(),
			InFlight:    ns.inflight.Load(),
			BreakerOpen: now < open,
			HalfOpen:    open != 0 && now >= open,
			Draining:    ns.draining.Load(),
		}
		if lag, ok := ns.node.Lag(); ok {
			st.Lag = &lag
		}
		out = append(out, st)
	}
	return out
}

// eligible reports whether a replica may take a routed read right now.
func (r *Router) eligible(ns *nodeState, now int64) (ok bool, skip string) {
	if ns.draining.Load() {
		return false, "draining"
	}
	if now < ns.openUntil.Load() {
		return false, "breaker"
	}
	if !ns.node.Ready() {
		return false, "unready"
	}
	if !ns.primary && r.opts.MaxLag > 0 {
		lag, known := ns.node.Lag()
		if !known || lag > r.opts.MaxLag {
			return false, "stale"
		}
	}
	return true, ""
}

// candidates assembles this read's try-order: eligible replicas (and the
// primary, when it takes rotation reads) starting at the round-robin
// offset, with the primary appended as the unconditional failover tail.
func (r *Router) candidates() []*nodeState {
	now := time.Now().UnixNano()
	rotation := make([]*nodeState, 0, len(r.replicas)+2)
	pool := r.replicas
	if r.opts.PrimaryReads {
		pool = append(append([]*nodeState{}, r.replicas...), r.primary)
	}
	if n := len(pool); n > 0 {
		start := int(r.rr.Add(1)-1) % n
		for i := 0; i < n; i++ {
			ns := pool[(start+i)%n]
			if ok, skip := r.eligible(ns, now); ok {
				rotation = append(rotation, ns)
			} else if r.opts.Metrics != nil && skip == "stale" {
				r.opts.Metrics.Counter("eil_repl_router_stale_skips_total", "node", ns.node.Name()).Inc()
			}
		}
	}
	// The primary always anchors the tail: a read never fails because
	// every replica was stale, draining, or broken.
	hasPrimary := false
	for _, ns := range rotation {
		if ns == r.primary {
			hasPrimary = true
			break
		}
	}
	if !hasPrimary {
		rotation = append(rotation, r.primary)
	}
	return rotation
}

// isDataError reports errors that are valid answers (the deal does not
// exist) rather than node failures — they return to the caller directly
// and never trip a breaker or cause failover.
func isDataError(err error) bool {
	return errors.Is(err, synopsis.ErrNotFound)
}

func (ns *nodeState) admit(max int) bool {
	if max <= 0 {
		ns.inflight.Add(1)
		return true
	}
	for {
		cur := ns.inflight.Load()
		if cur >= int64(max) {
			return false
		}
		if ns.inflight.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// admitProbe combines the in-flight cap with the breaker's half-open
// gate. A node whose cooldown expired is not restored to full rotation:
// it serves exactly one probe request (claimed by CAS), and every other
// read skips it until the probe's verdict is in — success fully closes
// the breaker, failure re-opens it for another cooldown without needing
// to re-accumulate the failure threshold.
func (r *Router) admitProbe(ns *nodeState) (ok, probe bool) {
	if open := ns.openUntil.Load(); open != 0 {
		if time.Now().UnixNano() < open {
			return false, false
		}
		if !ns.probing.CompareAndSwap(false, true) {
			return false, false // another request holds the probe
		}
		probe = true
	}
	if !ns.admit(r.opts.MaxInFlight) {
		if probe {
			ns.probing.Store(false)
		}
		return false, false
	}
	return true, probe
}

func (r *Router) success(ns *nodeState, probe bool) {
	ns.fails.Store(0)
	if probe {
		ns.openUntil.Store(0)
		ns.probing.Store(false)
		if r.opts.Metrics != nil {
			r.opts.Metrics.Counter("eil_repl_router_breaker_closes_total", "node", ns.node.Name()).Inc()
		}
	}
}

func (r *Router) failure(ns *nodeState, probe bool) {
	if probe {
		ns.openUntil.Store(time.Now().Add(r.opts.BreakerCooldown).UnixNano())
		ns.fails.Store(0)
		ns.probing.Store(false)
		if r.opts.Metrics != nil {
			r.opts.Metrics.Counter("eil_repl_router_breaker_opens_total", "node", ns.node.Name()).Inc()
		}
		return
	}
	if ns.fails.Add(1) >= int64(r.opts.BreakerThreshold) {
		ns.openUntil.Store(time.Now().Add(r.opts.BreakerCooldown).UnixNano())
		ns.fails.Store(0)
		if r.opts.Metrics != nil {
			r.opts.Metrics.Counter("eil_repl_router_breaker_opens_total", "node", ns.node.Name()).Inc()
		}
	}
}

// do routes one read: try candidates in order, failing over on node
// errors, returning data errors as answers. Only admission (in-flight cap)
// can leave a read unserved once the primary is reached.
func (r *Router) do(ctx context.Context, op string, call func(Node) error) error {
	var lastErr error
	tried := 0
	for _, ns := range r.candidates() {
		admitted, probe := r.admitProbe(ns)
		if !admitted {
			continue
		}
		if tried > 0 && r.opts.Metrics != nil {
			r.opts.Metrics.Counter("eil_repl_router_failovers_total", "op", op).Inc()
		}
		tried++
		err := func() error {
			defer ns.inflight.Add(-1)
			return call(ns.node)
		}()
		if err == nil || isDataError(err) {
			r.success(ns, probe)
			if r.opts.Metrics != nil {
				r.opts.Metrics.Counter("eil_repl_router_reads_total", "node", ns.node.Name(), "op", op).Inc()
			}
			return err
		}
		lastErr = err
		r.failure(ns, probe)
		if ctx != nil && ctx.Err() != nil {
			return err
		}
	}
	if lastErr == nil {
		lastErr = ErrNoNodes
	}
	return lastErr
}

// pick returns the first admitted candidate, for read methods that cannot
// report errors (failover is impossible without an error signal).
func (r *Router) pick(op string) (*nodeState, func()) {
	for _, ns := range r.candidates() {
		admitted, probe := r.admitProbe(ns)
		if !admitted {
			continue
		}
		if r.opts.Metrics != nil {
			r.opts.Metrics.Counter("eil_repl_router_reads_total", "node", ns.node.Name(), "op", op).Inc()
		}
		return ns, func() {
			ns.inflight.Add(-1)
			// Error-less reads have no failure signal: a probe that ran to
			// completion counts as the node answering, which closes the
			// breaker.
			r.success(ns, probe)
		}
	}
	return nil, nil
}

// --- routed read methods (override the embedded primary backend) ---

func (r *Router) SearchCtx(ctx context.Context, user access.User, q core.FormQuery) (core.Result, error) {
	var res core.Result
	err := r.do(ctx, "search", func(n Node) error {
		var err error
		res, err = n.SearchCtx(ctx, user, q)
		return err
	})
	return res, err
}

func (r *Router) KeywordSearchCtx(ctx context.Context, query string, limit int) []siapi.DocHit {
	if ns, done := r.pick("keyword"); ns != nil {
		defer done()
		return ns.node.KeywordSearchCtx(ctx, query, limit)
	}
	return r.Backend.KeywordSearchCtx(ctx, query, limit)
}

func (r *Router) KeywordCount(query string) int {
	if ns, done := r.pick("keyword_count"); ns != nil {
		defer done()
		return ns.node.KeywordCount(query)
	}
	return r.Backend.KeywordCount(query)
}

func (r *Router) ExploreCtx(ctx context.Context, user access.User, dealID string, q core.FormQuery) ([]siapi.DocHit, error) {
	var hits []siapi.DocHit
	err := r.do(ctx, "explore", func(n Node) error {
		var err error
		hits, err = n.ExploreCtx(ctx, user, dealID, q)
		return err
	})
	return hits, err
}

func (r *Router) SimilarDeals(user access.User, dealID string, k int) ([]synopsis.SimilarHit, error) {
	var hits []synopsis.SimilarHit
	err := r.do(nil, "similar", func(n Node) error {
		var err error
		hits, err = n.SimilarDeals(user, dealID, k)
		return err
	})
	return hits, err
}

func (r *Router) Deal(user access.User, dealID string) (synopsis.Deal, error) {
	var deal synopsis.Deal
	err := r.do(nil, "deal", func(n Node) error {
		var err error
		deal, err = n.Deal(user, dealID)
		return err
	})
	return deal, err
}
