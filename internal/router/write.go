package router

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/docmodel"
	"repro/internal/obs"
)

// WritePrimary is the mutation surface the write router follows: one
// eil.System or eil.Cluster currently holding the write lease.
type WritePrimary interface {
	AddDocuments(docs []*docmodel.Document) error
	RemoveDeal(dealID string) error
	Compact() error
}

// ErrNoPrimary means no primary appeared within the promotion window.
var ErrNoPrimary = errors.New("router: no write primary")

// ErrWriteQueueFull means the promotion-window queue hit its bound; the
// caller should back off rather than pile on.
var ErrWriteQueueFull = errors.New("router: write queue full")

// UnavailableError is a crisp write refusal with a retry hint. The web
// layer maps it to 503 + Retry-After.
type UnavailableError struct {
	Err        error // ErrNoPrimary or ErrWriteQueueFull
	RetryAfter time.Duration
}

func (e *UnavailableError) Error() string {
	return fmt.Sprintf("%v (retry after %s)", e.Err, e.RetryAfter)
}

func (e *UnavailableError) Unwrap() error { return e.Err }

// WriteOptions tunes write routing.
type WriteOptions struct {
	// QueueWait is how long a mutation waits for a primary during the
	// promotion window before failing (0 = 3s).
	QueueWait time.Duration
	// QueueMax bounds how many mutations may wait at once (0 = 256).
	QueueMax int
	// RetryAfter is the hint attached to refusals (0 = QueueWait).
	RetryAfter time.Duration
	// IsFenced reports whether a primary error means it lost the write
	// lease mid-call: the router forgets that primary and the mutation
	// re-queues for the one being promoted. nil treats no error as fencing.
	IsFenced func(error) bool
	// Metrics receives eil_write_router_* telemetry; nil disables.
	Metrics *obs.Registry
}

// WriteRouter serializes "who is the primary" for mutations. Reads route
// around a dead node instantly; writes cannot — they either follow the
// current primary, wait briefly while a promotion is in flight, or fail
// crisply with a retry hint. SetPrimary(nil) opens the promotion window;
// SetPrimary(p, epoch) closes it and wakes every queued mutation.
type WriteRouter struct {
	opts WriteOptions

	mu      sync.Mutex
	primary WritePrimary
	epoch   uint64
	waiters int
	changed chan struct{} // closed (and replaced) on every SetPrimary
}

// NewWriteRouter starts with no primary: the promotion window is open
// until the first SetPrimary.
func NewWriteRouter(opts WriteOptions) *WriteRouter {
	if opts.QueueWait <= 0 {
		opts.QueueWait = 3 * time.Second
	}
	if opts.QueueMax <= 0 {
		opts.QueueMax = 256
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = opts.QueueWait
	}
	return &WriteRouter{opts: opts, changed: make(chan struct{})}
}

// SetPrimary installs the node mutations follow, tagged with its fencing
// epoch. nil opens the promotion window: mutations queue (bounded, with
// deadline) until a new primary lands. A stale epoch is refused — a
// resurrected ex-primary must not reclaim the write path.
func (wr *WriteRouter) SetPrimary(p WritePrimary, epoch uint64) bool {
	wr.mu.Lock()
	defer wr.mu.Unlock()
	if p != nil && epoch < wr.epoch {
		return false
	}
	wr.primary = p
	if epoch > wr.epoch {
		wr.epoch = epoch
	}
	close(wr.changed)
	wr.changed = make(chan struct{})
	return true
}

// WriteStatus is the router's view for status surfaces.
type WriteStatus struct {
	HasPrimary bool   `json:"has_primary"`
	Epoch      uint64 `json:"epoch"`
	Waiters    int    `json:"waiters"`
}

// Status reports whether a primary is installed, at what epoch, and how
// many mutations are queued in the promotion window.
func (wr *WriteRouter) Status() WriteStatus {
	wr.mu.Lock()
	defer wr.mu.Unlock()
	return WriteStatus{HasPrimary: wr.primary != nil, Epoch: wr.epoch, Waiters: wr.waiters}
}

// Epoch returns the epoch of the last installed primary.
func (wr *WriteRouter) Epoch() uint64 {
	wr.mu.Lock()
	defer wr.mu.Unlock()
	return wr.epoch
}

func (wr *WriteRouter) refuse(op string, sentinel error) error {
	if wr.opts.Metrics != nil {
		reason := "no_primary"
		if errors.Is(sentinel, ErrWriteQueueFull) {
			reason = "queue_full"
		}
		wr.opts.Metrics.Counter("eil_write_router_refused_total", "op", op, "reason", reason).Inc()
	}
	return &UnavailableError{Err: sentinel, RetryAfter: wr.opts.RetryAfter}
}

// do runs one mutation against the current primary, queueing through the
// promotion window and re-queueing (within the same deadline) when the
// primary turns out to be fenced mid-call.
func (wr *WriteRouter) do(op string, fn func(WritePrimary) error) error {
	deadline := time.Now().Add(wr.opts.QueueWait)
	for {
		wr.mu.Lock()
		p := wr.primary
		ch := wr.changed
		if p == nil {
			if wr.waiters >= wr.opts.QueueMax {
				wr.mu.Unlock()
				return wr.refuse(op, ErrWriteQueueFull)
			}
			wr.waiters++
			wr.mu.Unlock()
			if wr.opts.Metrics != nil {
				wr.opts.Metrics.Counter("eil_write_router_queued_total", "op", op).Inc()
			}
			wait := time.Until(deadline)
			var timedOut bool
			if wait <= 0 {
				timedOut = true
			} else {
				t := time.NewTimer(wait)
				select {
				case <-ch:
					t.Stop()
				case <-t.C:
					timedOut = true
				}
			}
			wr.mu.Lock()
			wr.waiters--
			wr.mu.Unlock()
			if timedOut {
				return wr.refuse(op, ErrNoPrimary)
			}
			continue
		}
		wr.mu.Unlock()

		err := fn(p)
		if err != nil && wr.opts.IsFenced != nil && wr.opts.IsFenced(err) {
			// The primary lost the lease between SetPrimary and this call.
			// Forget it (unless a newer one already landed) and re-queue.
			if wr.opts.Metrics != nil {
				wr.opts.Metrics.Counter("eil_write_router_fenced_total", "op", op).Inc()
			}
			wr.mu.Lock()
			if wr.primary == p {
				wr.primary = nil
			}
			wr.mu.Unlock()
			continue
		}
		if err == nil && wr.opts.Metrics != nil {
			wr.opts.Metrics.Counter("eil_write_router_writes_total", "op", op).Inc()
		}
		return err
	}
}

// AddDocuments routes one ingest batch to the current primary.
func (wr *WriteRouter) AddDocuments(docs []*docmodel.Document) error {
	return wr.do("add", func(p WritePrimary) error { return p.AddDocuments(docs) })
}

// RemoveDeal routes a deal removal to the current primary.
func (wr *WriteRouter) RemoveDeal(dealID string) error {
	return wr.do("remove", func(p WritePrimary) error { return p.RemoveDeal(dealID) })
}

// Compact routes a compaction to the current primary.
func (wr *WriteRouter) Compact() error {
	return wr.do("compact", func(p WritePrimary) error { return p.Compact() })
}
