package router

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/docmodel"
)

// fakeWritePrimary records mutations and can be programmed to fail.
type fakeWritePrimary struct {
	mu       sync.Mutex
	adds     int
	removes  int
	compacts int
	err      error
}

func (p *fakeWritePrimary) call() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

func (p *fakeWritePrimary) AddDocuments(docs []*docmodel.Document) error {
	if err := p.call(); err != nil {
		return err
	}
	p.mu.Lock()
	p.adds++
	p.mu.Unlock()
	return nil
}

func (p *fakeWritePrimary) RemoveDeal(dealID string) error {
	if err := p.call(); err != nil {
		return err
	}
	p.mu.Lock()
	p.removes++
	p.mu.Unlock()
	return nil
}

func (p *fakeWritePrimary) Compact() error {
	if err := p.call(); err != nil {
		return err
	}
	p.mu.Lock()
	p.compacts++
	p.mu.Unlock()
	return nil
}

func (p *fakeWritePrimary) counts() (adds, removes, compacts int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.adds, p.removes, p.compacts
}

var errTestFenced = errors.New("test: fenced")

func fencedOpts(wait time.Duration) WriteOptions {
	return WriteOptions{QueueWait: wait, IsFenced: func(err error) bool { return errors.Is(err, errTestFenced) }}
}

func TestWriteRouterRoutesToPrimary(t *testing.T) {
	wr := NewWriteRouter(fencedOpts(time.Second))
	p := &fakeWritePrimary{}
	wr.SetPrimary(p, 1)
	if err := wr.AddDocuments(nil); err != nil {
		t.Fatal(err)
	}
	if err := wr.RemoveDeal("d"); err != nil {
		t.Fatal(err)
	}
	if err := wr.Compact(); err != nil {
		t.Fatal(err)
	}
	if a, r, c := p.counts(); a != 1 || r != 1 || c != 1 {
		t.Fatalf("counts = (%d,%d,%d), want (1,1,1)", a, r, c)
	}
}

func TestWriteRouterNoPrimaryFailsCrisplyWithRetryHint(t *testing.T) {
	wr := NewWriteRouter(WriteOptions{QueueWait: 20 * time.Millisecond, RetryAfter: 5 * time.Second})
	start := time.Now()
	err := wr.AddDocuments(nil)
	if !errors.Is(err, ErrNoPrimary) {
		t.Fatalf("err = %v, want ErrNoPrimary", err)
	}
	var ue *UnavailableError
	if !errors.As(err, &ue) || ue.RetryAfter != 5*time.Second {
		t.Fatalf("refusal = %#v, want UnavailableError with 5s hint", err)
	}
	if waited := time.Since(start); waited < 20*time.Millisecond {
		t.Fatalf("refused after %v, before the promotion window closed", waited)
	}
}

func TestWriteRouterQueuesThroughPromotionWindow(t *testing.T) {
	wr := NewWriteRouter(fencedOpts(10 * time.Second))
	done := make(chan error, 1)
	go func() { done <- wr.RemoveDeal("d") }()

	// The mutation is parked as a waiter until a primary lands.
	deadline := time.Now().Add(5 * time.Second)
	for wr.Status().Waiters == 0 {
		if time.Now().After(deadline) {
			t.Fatal("mutation never queued")
		}
		time.Sleep(time.Millisecond)
	}

	p := &fakeWritePrimary{}
	wr.SetPrimary(p, 1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if _, r, _ := p.counts(); r != 1 {
		t.Fatalf("removes = %d, want 1", r)
	}
	if st := wr.Status(); !st.HasPrimary || st.Epoch != 1 || st.Waiters != 0 {
		t.Fatalf("status = %+v", st)
	}
}

func TestWriteRouterQueueBoundRefusesOverflow(t *testing.T) {
	wr := NewWriteRouter(WriteOptions{QueueWait: 10 * time.Second, QueueMax: 1})
	release := make(chan error, 1)
	go func() { release <- wr.AddDocuments(nil) }()
	deadline := time.Now().Add(5 * time.Second)
	for wr.Status().Waiters == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first mutation never queued")
		}
		time.Sleep(time.Millisecond)
	}

	err := wr.AddDocuments(nil)
	if !errors.Is(err, ErrWriteQueueFull) {
		t.Fatalf("overflow err = %v, want ErrWriteQueueFull", err)
	}

	wr.SetPrimary(&fakeWritePrimary{}, 1)
	if err := <-release; err != nil {
		t.Fatalf("queued mutation failed: %v", err)
	}
}

func TestWriteRouterFencedPrimaryForgottenAndRequeued(t *testing.T) {
	wr := NewWriteRouter(fencedOpts(10 * time.Second))
	stale := &fakeWritePrimary{err: errTestFenced}
	wr.SetPrimary(stale, 1)

	done := make(chan error, 1)
	go func() { done <- wr.AddDocuments(nil) }()

	// The fenced refusal opens the window; the mutation re-queues instead
	// of surfacing the error.
	deadline := time.Now().Add(5 * time.Second)
	for wr.Status().HasPrimary || wr.Status().Waiters == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("fenced primary not forgotten (status %+v)", wr.Status())
		}
		time.Sleep(time.Millisecond)
	}

	fresh := &fakeWritePrimary{}
	if !wr.SetPrimary(fresh, 2) {
		t.Fatal("newer primary refused")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if a, _, _ := fresh.counts(); a != 1 {
		t.Fatalf("fresh adds = %d, want 1", a)
	}
	if a, _, _ := stale.counts(); a != 0 {
		t.Fatalf("stale primary accepted %d writes after fencing", a)
	}
}

func TestWriteRouterRefusesStaleEpoch(t *testing.T) {
	wr := NewWriteRouter(fencedOpts(time.Second))
	current := &fakeWritePrimary{}
	wr.SetPrimary(current, 5)
	// A resurrected ex-primary must not reclaim the write path.
	if wr.SetPrimary(&fakeWritePrimary{}, 3) {
		t.Fatal("stale-epoch primary installed")
	}
	if st := wr.Status(); st.Epoch != 5 {
		t.Fatalf("epoch = %d, want 5", st.Epoch)
	}
	if err := wr.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, _, c := current.counts(); c != 1 {
		t.Fatalf("current primary compacts = %d, want 1", c)
	}
	// Opening the window (nil) is always allowed, whatever the epoch.
	if !wr.SetPrimary(nil, 0) {
		t.Fatal("opening the window was refused")
	}
	if wr.Status().HasPrimary {
		t.Fatal("window did not open")
	}
}

func TestWriteRouterNonFencingErrorsSurface(t *testing.T) {
	wr := NewWriteRouter(fencedOpts(time.Second))
	boom := errors.New("journal poisoned")
	wr.SetPrimary(&fakeWritePrimary{err: boom}, 1)
	if err := wr.AddDocuments(nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the primary's own error", err)
	}
	if !wr.Status().HasPrimary {
		t.Fatal("non-fencing error evicted the primary")
	}
}
