package router

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/qlog"
	"repro/internal/siapi"
	"repro/internal/synopsis"
	"repro/internal/trace"
)

// fakeNode is a controllable Node: scripted readiness, lag, and failure.
type fakeNode struct {
	name   string
	ready  atomic.Bool
	lag    atomic.Uint64
	lagOK  atomic.Bool
	fail   atomic.Bool
	served atomic.Int64
}

func newFakeNode(name string) *fakeNode {
	n := &fakeNode{name: name}
	n.ready.Store(true)
	n.lagOK.Store(true)
	return n
}

func (n *fakeNode) Name() string { return n.name }
func (n *fakeNode) Ready() bool  { return n.ready.Load() }
func (n *fakeNode) Lag() (uint64, bool) {
	return n.lag.Load(), n.lagOK.Load()
}

var errNodeDown = errors.New("node down")

func (n *fakeNode) serve() error {
	if n.fail.Load() {
		return errNodeDown
	}
	n.served.Add(1)
	return nil
}

func (n *fakeNode) SearchCtx(ctx context.Context, user access.User, q core.FormQuery) (core.Result, error) {
	return core.Result{}, n.serve()
}
func (n *fakeNode) KeywordSearchCtx(ctx context.Context, query string, limit int) []siapi.DocHit {
	n.serve()
	return nil
}
func (n *fakeNode) KeywordCount(query string) int { n.serve(); return 0 }
func (n *fakeNode) ExploreCtx(ctx context.Context, user access.User, dealID string, q core.FormQuery) ([]siapi.DocHit, error) {
	return nil, n.serve()
}
func (n *fakeNode) SimilarDeals(user access.User, dealID string, k int) ([]synopsis.SimilarHit, error) {
	return nil, n.serve()
}
func (n *fakeNode) Deal(user access.User, dealID string) (synopsis.Deal, error) {
	if err := n.serve(); err != nil {
		return synopsis.Deal{}, err
	}
	return synopsis.Deal{}, synopsis.ErrNotFound
}

// fakeBackend satisfies the pass-through Backend surface over a fakeNode.
type fakeBackend struct {
	*fakeNode
}

func (fakeBackend) SearchExplain(ctx context.Context, user access.User, q core.FormQuery) (core.Result, *core.Explanation, error) {
	return core.Result{}, nil, nil
}
func (fakeBackend) Registry() *obs.Registry      { return nil }
func (fakeBackend) RequestTracer() *trace.Tracer { return nil }
func (fakeBackend) Log() *qlog.Log               { return nil }
func (fakeBackend) CoreEngine() *core.Engine     { return nil }

func newTestRouter(opts Options, replicas ...*fakeNode) (*Router, *fakeNode) {
	primary := newFakeNode("primary")
	nodes := make([]Node, len(replicas))
	for i, r := range replicas {
		nodes[i] = r
	}
	return New(fakeBackend{primary}, primary, nodes, opts), primary
}

func search(t *testing.T, r *Router) {
	t.Helper()
	if _, err := r.SearchCtx(context.Background(), access.User{}, core.FormQuery{}); err != nil {
		t.Fatalf("SearchCtx: %v", err)
	}
}

func TestRouterSpreadsReads(t *testing.T) {
	r1, r2 := newFakeNode("r1"), newFakeNode("r2")
	r, primary := newTestRouter(Options{}, r1, r2)
	for i := 0; i < 10; i++ {
		search(t, r)
	}
	if r1.served.Load() != 5 || r2.served.Load() != 5 {
		t.Fatalf("rotation: r1=%d r2=%d, want 5/5", r1.served.Load(), r2.served.Load())
	}
	if primary.served.Load() != 0 {
		t.Fatalf("primary served %d reads without PrimaryReads", primary.served.Load())
	}
}

func TestRouterPrimaryJoinsRotation(t *testing.T) {
	r1 := newFakeNode("r1")
	r, primary := newTestRouter(Options{PrimaryReads: true}, r1)
	for i := 0; i < 10; i++ {
		search(t, r)
	}
	if r1.served.Load() != 5 || primary.served.Load() != 5 {
		t.Fatalf("rotation: r1=%d primary=%d, want 5/5", r1.served.Load(), primary.served.Load())
	}
}

func TestRouterSkipsStaleReplica(t *testing.T) {
	r1, r2 := newFakeNode("r1"), newFakeNode("r2")
	r1.lag.Store(100)
	r, _ := newTestRouter(Options{MaxLag: 10}, r1, r2)
	for i := 0; i < 6; i++ {
		search(t, r)
	}
	if r1.served.Load() != 0 {
		t.Fatalf("stale replica served %d reads", r1.served.Load())
	}
	if r2.served.Load() != 6 {
		t.Fatalf("fresh replica served %d reads, want 6", r2.served.Load())
	}
	// Unknown lag counts as stale too: no heartbeat, no reads.
	r2.lagOK.Store(false)
	search(t, r)
	if r2.served.Load() != 6 {
		t.Fatalf("unknown-lag replica took a read")
	}
}

func TestRouterFailsOverToPrimary(t *testing.T) {
	r1 := newFakeNode("r1")
	r1.fail.Store(true)
	r, primary := newTestRouter(Options{}, r1)
	search(t, r)
	if primary.served.Load() != 1 {
		t.Fatalf("primary served %d, want failover read", primary.served.Load())
	}
}

func TestRouterBreakerOpensAndCools(t *testing.T) {
	r1 := newFakeNode("r1")
	r1.fail.Store(true)
	r, _ := newTestRouter(Options{BreakerThreshold: 3, BreakerCooldown: 50 * time.Millisecond}, r1)
	// Three consecutive failures open the breaker.
	for i := 0; i < 3; i++ {
		search(t, r)
	}
	st := r.Status()
	if len(st) != 2 || !st[1].BreakerOpen {
		t.Fatalf("breaker not open after threshold: %+v", st)
	}
	// While open, the broken node is not even attempted (fail would error
	// and the primary absorbs everything).
	r1.fail.Store(false)
	search(t, r)
	if r1.served.Load() != 0 {
		t.Fatal("open breaker let a read through")
	}
	// After the cooldown, the healthy node serves again.
	time.Sleep(60 * time.Millisecond)
	search(t, r)
	if r1.served.Load() != 1 {
		t.Fatalf("replica served %d after cooldown, want 1", r1.served.Load())
	}
}

func TestRouterDataErrorIsNotFailure(t *testing.T) {
	r1 := newFakeNode("r1")
	r, primary := newTestRouter(Options{BreakerThreshold: 1}, r1)
	for i := 0; i < 5; i++ {
		if _, err := r.Deal(access.User{}, "NOPE"); !errors.Is(err, synopsis.ErrNotFound) {
			t.Fatalf("Deal err = %v, want ErrNotFound", err)
		}
	}
	if primary.served.Load() != 0 {
		t.Fatalf("not-found answers failed over to primary %d times", primary.served.Load())
	}
	if st := r.Status(); st[1].BreakerOpen {
		t.Fatal("not-found answers opened the breaker")
	}
}

func TestRouterDrain(t *testing.T) {
	r1, r2 := newFakeNode("r1"), newFakeNode("r2")
	r, _ := newTestRouter(Options{}, r1, r2)
	if err := r.DrainWait(context.Background(), "r1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		search(t, r)
	}
	if r1.served.Load() != 0 {
		t.Fatalf("draining replica served %d reads", r1.served.Load())
	}
	if r2.served.Load() != 4 {
		t.Fatalf("remaining replica served %d, want 4", r2.served.Load())
	}
	r.SetDraining("r1", false)
	search(t, r)
	if r1.served.Load() != 1 {
		t.Fatal("undrained replica not restored to rotation")
	}
}

func TestRouterInFlightCap(t *testing.T) {
	r1 := newFakeNode("r1")
	r, _ := newTestRouter(Options{MaxInFlight: 1}, r1)
	// Saturate the only replica and the primary by hand.
	r.replicas[0].inflight.Store(1)
	r.primary.inflight.Store(1)
	if _, err := r.SearchCtx(context.Background(), access.User{}, core.FormQuery{}); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("err = %v, want ErrNoNodes", err)
	}
	r.primary.inflight.Store(0)
	search(t, r) // primary absorbs once it has capacity
}

func TestRouterUnreadyReplicaSkipped(t *testing.T) {
	r1 := newFakeNode("r1")
	r1.ready.Store(false)
	r, primary := newTestRouter(Options{}, r1)
	search(t, r)
	if r1.served.Load() != 0 || primary.served.Load() != 1 {
		t.Fatalf("r1=%d primary=%d, want 0/1", r1.served.Load(), primary.served.Load())
	}
}
