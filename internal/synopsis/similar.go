package synopsis

import (
	"fmt"
	"math"
	"sort"
)

// SimilarHit is one deal ranked by similarity to a reference deal.
type SimilarHit struct {
	DealID string
	// Score in (0, 1]: cosine similarity of tower-significance vectors,
	// boosted by shared industry and consultant.
	Score float64
	// SharedTowers are the towers the two deals have in common, reference
	// significance order.
	SharedTowers []string
}

// Similar finds up to k deals most similar to dealID. Similarity follows
// how the sales community thinks about "a similar situation" (§2): the
// same services mix first (cosine over tower significance), same industry
// and sourcing advisor as tie-strengtheners. Deals with no tower overlap
// are omitted.
func (s *Store) Similar(dealID string, k int) ([]SimilarHit, error) {
	ref, err := s.Get(dealID)
	if err != nil {
		return nil, err
	}
	return s.SimilarTo(ref, k)
}

// SimilarTo ranks this store's deals by similarity to a reference deal that
// need not live in the store — the sharded cluster fetches the reference
// from its owning shard, scatters SimilarTo to every shard, and merges the
// per-shard rankings.
func (s *Store) SimilarTo(ref Deal, k int) ([]SimilarHit, error) {
	if k <= 0 {
		k = 5
	}
	refVec := towerVector(ref)
	if len(refVec) == 0 {
		return nil, fmt.Errorf("synopsis: %s has no scope towers to compare", ref.Overview.DealID)
	}
	ids, err := s.DealIDs()
	if err != nil {
		return nil, err
	}
	var hits []SimilarHit
	for _, id := range ids {
		if id == ref.Overview.DealID {
			continue
		}
		other, err := s.Get(id)
		if err != nil {
			return nil, err
		}
		vec := towerVector(other)
		cos := cosine(refVec, vec)
		if cos <= 0 {
			continue
		}
		score := cos
		if ref.Overview.Industry != "" && ref.Overview.Industry == other.Overview.Industry {
			score += 0.10
		}
		if ref.Overview.Consultant != "" && ref.Overview.Consultant == other.Overview.Consultant {
			score += 0.05
		}
		if score > 1 {
			score = 1
		}
		hit := SimilarHit{DealID: id, Score: score}
		for _, tw := range ref.Towers {
			if tw.SubTower != "" {
				continue
			}
			if _, ok := vec[tw.Tower]; ok {
				hit.SharedTowers = append(hit.SharedTowers, tw.Tower)
			}
		}
		hits = append(hits, hit)
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].DealID < hits[j].DealID
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits, nil
}

// towerVector maps tower -> significance for the deal's top-level towers.
func towerVector(d Deal) map[string]float64 {
	vec := map[string]float64{}
	for _, tw := range d.Towers {
		if tw.SubTower == "" {
			vec[tw.Tower] = tw.Significance
		}
	}
	return vec
}

// cosine accumulates in sorted key order: float addition is not
// associative, and map iteration order would otherwise make scores differ
// in the last ulp between runs (and between the monolithic and sharded
// engines, whose differential tests compare scores exactly).
func cosine(a, b map[string]float64) float64 {
	var dot, na, nb float64
	for _, k := range sortedKeys(a) {
		va := a[k]
		na += va * va
		if vb, ok := b[k]; ok {
			dot += va * vb
		}
	}
	for _, k := range sortedKeys(b) {
		nb += b[k] * b[k]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
