package synopsis

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/relstore"
)

func sampleDeal(id string) Deal {
	return Deal{
		Overview: Overview{
			DealID: id, Customer: "Cygnus Insurance", Industry: "Insurance",
			Consultant: "TPI", Geography: "Americas", Country: "United States",
			TermStart: "2006-01-05", TermMonths: 60, TCVBand: "50 to 100M",
			International: true, Repository: "repo/" + id,
		},
		Towers: []TowerScope{
			{Tower: "End User Services", SubTower: "Customer Service Center", Significance: 0.9},
			{Tower: "Disaster Recovery Services", Significance: 0.4},
		},
		People: []Contact{
			{Name: "Sam White", Email: "sam.white@abc.com", Org: "ABC Corp", Role: "CIO", Category: "client team", Validated: true},
			{Name: "Jo Park", Email: "jo.park@ibm.com", Role: "CSE", Category: "core deal team", Validated: true},
		},
		WinStrategies: []string{"Price to win", "Incumbent displacement"},
		ClientRefs:    []string{"Reference: Borealis rollout 2005"},
		TechSolutions: map[string]string{"End User Services": "Consolidated help desk with follow-the-sun staffing."},
	}
}

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := NewStore(relstore.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := newStore(t)
	want := sampleDeal("DEAL C")
	if err := s.Put(want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("DEAL C")
	if err != nil {
		t.Fatal(err)
	}
	if got.Overview != want.Overview {
		t.Fatalf("overview = %+v, want %+v", got.Overview, want.Overview)
	}
	if len(got.Towers) != 2 || got.Towers[0].Tower != "End User Services" {
		t.Fatalf("towers = %+v (must be significance-ordered)", got.Towers)
	}
	if len(got.People) != 2 {
		t.Fatalf("people = %+v", got.People)
	}
	if len(got.WinStrategies) != 2 || len(got.ClientRefs) != 1 {
		t.Fatalf("strategies/refs = %v / %v", got.WinStrategies, got.ClientRefs)
	}
	if got.TechSolutions["End User Services"] == "" {
		t.Fatalf("solutions = %v", got.TechSolutions)
	}
}

func TestPutReplaces(t *testing.T) {
	s := newStore(t)
	d := sampleDeal("DEAL C")
	if err := s.Put(d); err != nil {
		t.Fatal(err)
	}
	d.People = d.People[:1]
	d.Overview.Customer = "Renamed"
	if err := s.Put(d); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("DEAL C")
	if err != nil {
		t.Fatal(err)
	}
	if got.Overview.Customer != "Renamed" || len(got.People) != 1 {
		t.Fatalf("replace failed: %+v", got)
	}
}

func TestPutEmptyID(t *testing.T) {
	s := newStore(t)
	if err := s.Put(Deal{}); err == nil {
		t.Fatal("empty deal accepted")
	}
}

func TestGetMissing(t *testing.T) {
	s := newStore(t)
	if _, err := s.Get("NOPE"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestDealIDs(t *testing.T) {
	s := newStore(t)
	for _, id := range []string{"DEAL B", "DEAL A", "DEAL C"} {
		if err := s.Put(sampleDeal(id)); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := s.DealIDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != "DEAL A" || ids[2] != "DEAL C" {
		t.Fatalf("ids = %v", ids)
	}
}

func multiStore(t *testing.T) *Store {
	t.Helper()
	s := newStore(t)
	a := sampleDeal("DEAL A")
	a.Towers = []TowerScope{
		{Tower: "Storage Management Services", Significance: 0.8},
		{Tower: "End User Services", SubTower: "Customer Service Center", Significance: 0.3},
	}
	a.Overview.Industry = "Banking"
	a.People = []Contact{{Name: "Lee Chan", Org: "ITD", Role: "TSA", Category: "delivery team"}}

	b := sampleDeal("DEAL B")
	b.Towers = []TowerScope{{Tower: "Network Services", Significance: 0.9}}
	b.Overview.Industry = "Insurance"
	b.Overview.Consultant = "Gartner"
	b.People = []Contact{{Name: "Ana Ruiz", Org: "ITD", Role: "PE", Category: "core deal team"}}

	c := sampleDeal("DEAL C") // EUS-heavy, Insurance, TPI, Sam White
	for _, d := range []Deal{a, b, c} {
		if err := s.Put(d); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestSearchByTower(t *testing.T) {
	s := multiStore(t)
	hits, err := s.Search(Query{Tower: "End User Services"})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("hits = %+v", hits)
	}
	// DEAL C's EUS significance (0.9) beats DEAL A's (0.3).
	if hits[0].DealID != "DEAL C" || hits[1].DealID != "DEAL A" {
		t.Fatalf("order = %+v", hits)
	}
	if len(hits[0].MatchedTowers) == 0 {
		t.Fatalf("matched towers empty: %+v", hits[0])
	}
}

func TestSearchBySubTower(t *testing.T) {
	s := multiStore(t)
	hits, err := s.Search(Query{SubTower: "Customer Service Center"})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("hits = %+v", hits)
	}
}

func TestSearchConjunction(t *testing.T) {
	s := multiStore(t)
	hits, err := s.Search(Query{Tower: "End User Services", Industry: "Insurance"})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].DealID != "DEAL C" {
		t.Fatalf("hits = %+v", hits)
	}
	// An impossible conjunction returns nothing.
	hits, err = s.Search(Query{Tower: "Network Services", Industry: "Banking"})
	if err != nil || len(hits) != 0 {
		t.Fatalf("hits = %+v, %v", hits, err)
	}
}

func TestSearchByPerson(t *testing.T) {
	s := multiStore(t)
	hits, err := s.Search(Query{PersonName: "sam white"})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].DealID != "DEAL C" {
		t.Fatalf("hits = %+v", hits)
	}
	hits, err = s.Search(Query{PersonName: "White", PersonOrg: "ABC"})
	if err != nil || len(hits) != 1 {
		t.Fatalf("partial name+org: %+v, %v", hits, err)
	}
}

func TestSearchByConsultant(t *testing.T) {
	s := multiStore(t)
	hits, err := s.Search(Query{Consultant: "Gartner"})
	if err != nil || len(hits) != 1 || hits[0].DealID != "DEAL B" {
		t.Fatalf("hits = %+v, %v", hits, err)
	}
}

func TestSearchEmptyQuery(t *testing.T) {
	s := multiStore(t)
	hits, err := s.Search(Query{})
	if err != nil || hits != nil {
		t.Fatalf("empty query: %+v, %v", hits, err)
	}
	if !(Query{}).Empty() {
		t.Fatal("Empty() broken")
	}
	if (Query{Tower: "x"}).Empty() {
		t.Fatal("Empty() with tower broken")
	}
}

func TestSearchRestrictTo(t *testing.T) {
	s := multiStore(t)
	hits, err := s.Search(Query{Tower: "End User Services", RestrictTo: []string{"DEAL A"}})
	if err != nil || len(hits) != 1 || hits[0].DealID != "DEAL A" {
		t.Fatalf("hits = %+v, %v", hits, err)
	}
}

func TestSearchDeterministicTieBreak(t *testing.T) {
	s := newStore(t)
	for _, id := range []string{"DEAL Z", "DEAL Y"} {
		d := sampleDeal(id)
		d.Towers = []TowerScope{{Tower: "Network Services", Significance: 0.5}}
		if err := s.Put(d); err != nil {
			t.Fatal(err)
		}
	}
	hits, err := s.Search(Query{Tower: "Network Services"})
	if err != nil || len(hits) != 2 || hits[0].DealID != "DEAL Y" {
		t.Fatalf("tie-break order: %+v, %v", hits, err)
	}
}

func TestSearchManyDeals(t *testing.T) {
	s := newStore(t)
	for i := 0; i < 50; i++ {
		d := sampleDeal(fmt.Sprintf("DEAL %03d", i))
		if i%2 == 0 {
			d.Towers = []TowerScope{{Tower: "Storage Management Services", Significance: float64(i) / 50}}
		}
		if err := s.Put(d); err != nil {
			t.Fatal(err)
		}
	}
	hits, err := s.Search(Query{Tower: "Storage Management Services"})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 25 {
		t.Fatalf("hits = %d", len(hits))
	}
	for i := 1; i < len(hits); i++ {
		if hits[i-1].Score < hits[i].Score {
			t.Fatal("hits not score-ordered")
		}
	}
}

func TestSimilarDeals(t *testing.T) {
	s := newStore(t)
	put := func(id, industry, consultant string, towers ...TowerScope) {
		d := sampleDeal(id)
		d.Overview.Industry = industry
		d.Overview.Consultant = consultant
		d.Towers = towers
		if err := s.Put(d); err != nil {
			t.Fatal(err)
		}
	}
	put("REF", "Insurance", "TPI",
		TowerScope{Tower: "End User Services", Significance: 1.0},
		TowerScope{Tower: "Storage Management Services", Significance: 0.5})
	put("TWIN", "Insurance", "TPI",
		TowerScope{Tower: "End User Services", Significance: 0.9},
		TowerScope{Tower: "Storage Management Services", Significance: 0.6})
	put("COUSIN", "Banking", "Gartner",
		TowerScope{Tower: "End User Services", Significance: 0.8},
		TowerScope{Tower: "Network Services", Significance: 0.8})
	put("STRANGER", "Retail", "TPI",
		TowerScope{Tower: "Human Resources Services", Significance: 1.0})

	hits, err := s.Similar("REF", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("hits = %+v (STRANGER shares no towers)", hits)
	}
	if hits[0].DealID != "TWIN" || hits[1].DealID != "COUSIN" {
		t.Fatalf("order = %+v", hits)
	}
	if hits[0].Score <= hits[1].Score {
		t.Fatalf("scores not ordered: %+v", hits)
	}
	if len(hits[0].SharedTowers) != 2 || hits[0].SharedTowers[0] != "End User Services" {
		t.Fatalf("shared towers = %v", hits[0].SharedTowers)
	}
	// k cap.
	hits, _ = s.Similar("REF", 1)
	if len(hits) != 1 {
		t.Fatalf("k ignored: %+v", hits)
	}
}

func TestSimilarErrors(t *testing.T) {
	s := newStore(t)
	if _, err := s.Similar("GHOST", 3); err == nil {
		t.Fatal("missing deal accepted")
	}
	d := sampleDeal("EMPTY")
	d.Towers = nil
	if err := s.Put(d); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Similar("EMPTY", 3); err == nil {
		t.Fatal("towerless reference accepted")
	}
}
