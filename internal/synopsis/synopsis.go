// Package synopsis is EIL's organized-information layer: the structured
// business context extracted from engagement workbooks, stored in the
// relational engine (the DB2 substitute) and queried by the business-
// activity driven search algorithm's "synopsis query" (Figure 1, steps 2
// and 4). A deal synopsis carries the tabs of the paper's Figure 6:
// Overview, People, Win Strategies, Client References, and Technology
// Solutions.
package synopsis

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/lru"
	"repro/internal/relstore"
	"repro/internal/sqlx"
	"repro/internal/trace"
)

// Overview is the structured header of a deal (Figure 6's Overview tab).
type Overview struct {
	DealID        string
	Customer      string
	Industry      string
	Consultant    string // outsourcing consultant, e.g. TPI
	Geography     string
	Country       string
	TermStart     string // ISO date, e.g. "2006-01-05"
	TermMonths    int
	TCVBand       string // display band, e.g. "50 to 100M"
	International bool
	Repository    string // workbook repository path
}

// TowerScope is one service tower in a deal's scope with its significance
// (the CPE's occurrence-derived weight; Figure 5 orders towers by it).
type TowerScope struct {
	Tower        string
	SubTower     string
	Significance float64
}

// Contact is one person on the deal's People tab.
type Contact struct {
	Name      string
	Email     string
	Phone     string
	Org       string
	Role      string // raw role text from documents
	Category  string // normalized: core deal team, delivery team, client team...
	Validated bool   // confirmed against the personnel directory
}

// Deal is a full synopsis.
type Deal struct {
	Overview      Overview
	Towers        []TowerScope
	People        []Contact
	WinStrategies []string
	ClientRefs    []string
	// TechSolutions maps tower name -> technical solution overview text.
	TechSolutions map[string]string
}

// ErrNotFound is returned when a deal is absent.
var ErrNotFound = errors.New("synopsis: deal not found")

// Store persists synopses. Create with NewStore.
type Store struct {
	conn *sqlx.Conn
	// gen counts mutations (Put, Delete); query memoizers key on it so any
	// synopsis write invalidates without coordination.
	gen atomic.Uint64
	// getMemo caches assembled Deal values by ID under the mutation epoch:
	// Get issues six relational queries, and the search presentation layer
	// asks for every ranked activity's synopsis on every search. Values are
	// deep-cloned on both sides of the cache boundary, so callers may
	// mutate what they receive.
	getMemo *lru.Cache[string, Deal]
}

// getMemoSize bounds the Get memo; entries are one assembled synopsis.
const getMemoSize = 512

// Generation reports the store mutation epoch: it changes after every Put or
// Delete. Caches key results on it to invalidate on write.
func (s *Store) Generation() uint64 { return s.gen.Load() }

// schemaStmts creates the context tables; names mirror the paper's "set of
// tables in DB2 database as part of the corresponding business context".
var schemaStmts = []string{
	`CREATE TABLE deals (
		id TEXT PRIMARY KEY,
		customer TEXT,
		industry TEXT,
		consultant TEXT,
		geography TEXT,
		country TEXT,
		term_start TEXT,
		term_months INT,
		tcv_band TEXT,
		international BOOL,
		repository TEXT
	)`,
	`CREATE TABLE deal_towers (
		deal_id TEXT NOT NULL,
		tower TEXT NOT NULL,
		subtower TEXT,
		significance FLOAT NOT NULL
	)`,
	`CREATE INDEX deal_towers_by_deal ON deal_towers (deal_id)`,
	`CREATE INDEX deal_towers_by_tower ON deal_towers (tower)`,
	`CREATE TABLE contacts (
		deal_id TEXT NOT NULL,
		name TEXT NOT NULL,
		email TEXT,
		phone TEXT,
		org TEXT,
		role TEXT,
		category TEXT,
		validated BOOL
	)`,
	`CREATE INDEX contacts_by_deal ON contacts (deal_id)`,
	`CREATE INDEX contacts_by_name ON contacts (name)`,
	`CREATE TABLE win_strategies (deal_id TEXT NOT NULL, strategy TEXT NOT NULL)`,
	`CREATE INDEX win_by_deal ON win_strategies (deal_id)`,
	`CREATE TABLE client_refs (deal_id TEXT NOT NULL, reference TEXT NOT NULL)`,
	`CREATE INDEX refs_by_deal ON client_refs (deal_id)`,
	`CREATE TABLE tech_solutions (deal_id TEXT NOT NULL, tower TEXT NOT NULL, overview TEXT NOT NULL)`,
	`CREATE INDEX tech_by_deal ON tech_solutions (deal_id)`,
}

// NewStore creates the context tables in db and returns the store.
func NewStore(db *relstore.DB) (*Store, error) {
	conn := sqlx.Open(db)
	for _, stmt := range schemaStmts {
		if _, err := conn.Exec(stmt); err != nil {
			return nil, fmt.Errorf("synopsis: schema: %w", err)
		}
	}
	return &Store{conn: conn, getMemo: lru.New[string, Deal](getMemoSize)}, nil
}

// Open wraps a database that already carries the context schema (for
// example one restored with relstore.LoadFile). It fails if the schema is
// absent.
func Open(db *relstore.DB) (*Store, error) {
	if _, err := db.Schema("deals"); err != nil {
		return nil, fmt.Errorf("synopsis: open: %w", err)
	}
	return &Store{conn: sqlx.Open(db), getMemo: lru.New[string, Deal](getMemoSize)}, nil
}

// DB exposes the underlying engine, for persistence.
func (s *Store) DB() *relstore.DB { return s.conn.DB() }

// Conn exposes the SQL connection for directed queries by the core search
// layer.
func (s *Store) Conn() *sqlx.Conn { return s.conn }

// Put upserts a complete deal synopsis.
func (s *Store) Put(d Deal) error {
	id := d.Overview.DealID
	if id == "" {
		return errors.New("synopsis: empty deal id")
	}
	// Replace wholesale: the offline analysis regenerates synopses.
	if err := s.deleteDeal(id); err != nil {
		return err
	}
	o := d.Overview
	_, err := s.conn.Exec(
		`INSERT INTO deals VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)`,
		o.DealID, o.Customer, o.Industry, o.Consultant, o.Geography, o.Country,
		o.TermStart, int64(o.TermMonths), o.TCVBand, o.International, o.Repository)
	if err != nil {
		return fmt.Errorf("synopsis: put deal: %w", err)
	}
	for _, tw := range d.Towers {
		if _, err := s.conn.Exec(`INSERT INTO deal_towers VALUES (?, ?, ?, ?)`,
			id, tw.Tower, tw.SubTower, tw.Significance); err != nil {
			return fmt.Errorf("synopsis: put tower: %w", err)
		}
	}
	for _, p := range d.People {
		if _, err := s.conn.Exec(`INSERT INTO contacts VALUES (?, ?, ?, ?, ?, ?, ?, ?)`,
			id, p.Name, p.Email, p.Phone, p.Org, p.Role, p.Category, p.Validated); err != nil {
			return fmt.Errorf("synopsis: put contact: %w", err)
		}
	}
	for _, w := range d.WinStrategies {
		if _, err := s.conn.Exec(`INSERT INTO win_strategies VALUES (?, ?)`, id, w); err != nil {
			return fmt.Errorf("synopsis: put strategy: %w", err)
		}
	}
	for _, r := range d.ClientRefs {
		if _, err := s.conn.Exec(`INSERT INTO client_refs VALUES (?, ?)`, id, r); err != nil {
			return fmt.Errorf("synopsis: put reference: %w", err)
		}
	}
	for tower, text := range d.TechSolutions {
		if _, err := s.conn.Exec(`INSERT INTO tech_solutions VALUES (?, ?, ?)`, id, tower, text); err != nil {
			return fmt.Errorf("synopsis: put solution: %w", err)
		}
	}
	s.gen.Add(1)
	return nil
}

// Delete removes a deal's synopsis entirely (idempotent).
func (s *Store) Delete(id string) error { return s.deleteDeal(id) }

func (s *Store) deleteDeal(id string) error {
	for _, table := range []string{"deals", "deal_towers", "contacts", "win_strategies", "client_refs", "tech_solutions"} {
		col := "deal_id"
		if table == "deals" {
			col = "id"
		}
		if _, err := s.conn.Exec(fmt.Sprintf(`DELETE FROM %s WHERE %s = ?`, table, col), id); err != nil {
			return fmt.Errorf("synopsis: clear %s: %w", table, err)
		}
	}
	s.gen.Add(1)
	return nil
}

// Get loads a full deal synopsis. Results are memoized under the store's
// mutation epoch, so repeated lookups of a slow-changing deal cost a map
// probe instead of six relational queries.
func (s *Store) Get(id string) (Deal, error) {
	if s.getMemo != nil {
		if d, ok := s.getMemo.Get(id, s.gen.Load()); ok {
			return cloneDeal(d), nil
		}
	}
	d, err := s.getUncached(id)
	if err != nil {
		return Deal{}, err
	}
	if s.getMemo != nil {
		s.getMemo.Put(id, s.gen.Load(), cloneDeal(d))
	}
	return d, nil
}

// cloneDeal deep-copies a synopsis so cache and caller cannot alias: Deal
// carries slices and a map, and presentation layers receive a pointer.
func cloneDeal(d Deal) Deal {
	out := d
	out.Towers = append([]TowerScope(nil), d.Towers...)
	out.People = append([]Contact(nil), d.People...)
	out.WinStrategies = append([]string(nil), d.WinStrategies...)
	out.ClientRefs = append([]string(nil), d.ClientRefs...)
	out.TechSolutions = make(map[string]string, len(d.TechSolutions))
	for k, v := range d.TechSolutions {
		out.TechSolutions[k] = v
	}
	return out
}

func (s *Store) getUncached(id string) (Deal, error) {
	row, err := s.conn.QueryOne(`SELECT id, customer, industry, consultant, geography, country,
		term_start, term_months, tcv_band, international, repository FROM deals WHERE id = ?`, id)
	if err != nil {
		return Deal{}, err
	}
	if row == nil {
		return Deal{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	d := Deal{Overview: Overview{
		DealID:        text(row[0]),
		Customer:      text(row[1]),
		Industry:      text(row[2]),
		Consultant:    text(row[3]),
		Geography:     text(row[4]),
		Country:       text(row[5]),
		TermStart:     text(row[6]),
		TermMonths:    int(integer(row[7])),
		TCVBand:       text(row[8]),
		International: boolean(row[9]),
		Repository:    text(row[10]),
	}, TechSolutions: map[string]string{}}

	towers, err := s.conn.Query(`SELECT tower, subtower, significance FROM deal_towers
		WHERE deal_id = ? ORDER BY significance DESC, tower`, id)
	if err != nil {
		return Deal{}, err
	}
	for _, r := range towers.Data {
		d.Towers = append(d.Towers, TowerScope{Tower: text(r[0]), SubTower: text(r[1]), Significance: float(r[2])})
	}
	people, err := s.conn.Query(`SELECT name, email, phone, org, role, category, validated
		FROM contacts WHERE deal_id = ? ORDER BY category, name`, id)
	if err != nil {
		return Deal{}, err
	}
	for _, r := range people.Data {
		d.People = append(d.People, Contact{
			Name: text(r[0]), Email: text(r[1]), Phone: text(r[2]), Org: text(r[3]),
			Role: text(r[4]), Category: text(r[5]), Validated: boolean(r[6]),
		})
	}
	wins, err := s.conn.Query(`SELECT strategy FROM win_strategies WHERE deal_id = ? ORDER BY strategy`, id)
	if err != nil {
		return Deal{}, err
	}
	for _, r := range wins.Data {
		d.WinStrategies = append(d.WinStrategies, text(r[0]))
	}
	refs, err := s.conn.Query(`SELECT reference FROM client_refs WHERE deal_id = ? ORDER BY reference`, id)
	if err != nil {
		return Deal{}, err
	}
	for _, r := range refs.Data {
		d.ClientRefs = append(d.ClientRefs, text(r[0]))
	}
	sols, err := s.conn.Query(`SELECT tower, overview FROM tech_solutions WHERE deal_id = ?`, id)
	if err != nil {
		return Deal{}, err
	}
	for _, r := range sols.Data {
		d.TechSolutions[text(r[0])] = text(r[1])
	}
	return d, nil
}

// DealIDs lists all stored deals, sorted.
func (s *Store) DealIDs() ([]string, error) {
	rows, err := s.conn.Query(`SELECT id FROM deals ORDER BY id`)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, rows.Len())
	for _, r := range rows.Data {
		out = append(out, text(r[0]))
	}
	return out, nil
}

// Query is the form-based synopsis query of the paper's Figure 8: every
// field is optional; set fields conjoin.
type Query struct {
	Tower      string // canonical tower or sub-tower name
	SubTower   string
	Industry   string
	Consultant string
	Geography  string
	Country    string
	// PersonName / PersonOrg search the contact list ("with these people").
	PersonName string
	PersonOrg  string
	// RestrictTo, when non-empty, limits candidates to these deal IDs
	// (used when access control has pre-filtered).
	RestrictTo []string
}

// Empty reports whether no criteria are set.
func (q Query) Empty() bool {
	return q.Tower == "" && q.SubTower == "" && q.Industry == "" && q.Consultant == "" &&
		q.Geography == "" && q.Country == "" && q.PersonName == "" && q.PersonOrg == ""
}

// Hit is one scored deal from the synopsis search.
type Hit struct {
	DealID string
	// Score aggregates criterion matches; tower matches contribute their
	// significance so Figure 5's ordering (most-significant tower first)
	// falls out of the ranking.
	Score float64
	// MatchedTowers lists the deal's towers that satisfied the tower
	// criterion, ordered by significance.
	MatchedTowers []string
}

// SearchCtx is Search recording a trace span when ctx carries one: the hit
// count and whether candidates were pre-restricted. It is also the store's
// fault-injection boundary (site "synopsis.search"): injected errors, delay,
// and partial-harvest rules apply here, standing in for a failing DB2.
func (s *Store) SearchCtx(ctx context.Context, q Query) ([]Hit, error) {
	_, sp := trace.StartSpan(ctx, "synopsis.query")
	hits, err := s.faultySearch(ctx, q)
	if sp != nil {
		sp.SetInt("hits", len(hits))
		sp.SetBool("restricted", len(q.RestrictTo) > 0)
		if err != nil {
			sp.Set("error", err.Error())
		}
		sp.End()
	}
	return hits, err
}

// faultySearch runs Search behind the injection point, truncating the hit
// list when a partial-harvest rule fires.
func (s *Store) faultySearch(ctx context.Context, q Query) ([]Hit, error) {
	if err := fault.Inject(ctx, fault.SiteSynopsisSearch); err != nil {
		return nil, fmt.Errorf("synopsis: query: %w", err)
	}
	hits, err := s.Search(q)
	if err != nil {
		return nil, err
	}
	if keep := fault.Keep(ctx, fault.SiteSynopsisSearch, len(hits)); keep < len(hits) {
		hits = hits[:keep]
	}
	return hits, nil
}

// Search executes the synopsis query: a set of directed SQL queries whose
// intersection forms the candidate set, scored per criterion. This is
// steps 2 and 4 of the paper's Figure 1.
func (s *Store) Search(q Query) ([]Hit, error) {
	type cand struct {
		score   float64
		matched []string
		hits    int
	}
	cands := map[string]*cand{}
	criteria := 0

	merge := func(ids map[string]float64, towers map[string][]string) {
		criteria++
		for id, sc := range ids {
			c := cands[id]
			if c == nil {
				c = &cand{}
				cands[id] = c
			}
			c.score += sc
			c.hits++
			if towers != nil {
				c.matched = append(c.matched, towers[id]...)
			}
		}
	}

	if q.Tower != "" || q.SubTower != "" {
		ids := map[string]float64{}
		towers := map[string][]string{}
		var rows *sqlx.Rows
		var err error
		switch {
		case q.Tower != "" && q.SubTower != "":
			rows, err = s.conn.Query(`SELECT deal_id, tower, significance FROM deal_towers
				WHERE tower = ? AND subtower = ? ORDER BY significance DESC`, q.Tower, q.SubTower)
		case q.SubTower != "":
			rows, err = s.conn.Query(`SELECT deal_id, tower, significance FROM deal_towers
				WHERE subtower = ? ORDER BY significance DESC`, q.SubTower)
		default:
			rows, err = s.conn.Query(`SELECT deal_id, tower, significance FROM deal_towers
				WHERE tower = ? ORDER BY significance DESC`, q.Tower)
		}
		if err != nil {
			return nil, err
		}
		for _, r := range rows.Data {
			id := text(r[0])
			ids[id] += float(r[2])
			towers[id] = append(towers[id], text(r[1]))
		}
		merge(ids, towers)
	}

	simple := []struct{ col, val string }{
		{"industry", q.Industry},
		{"consultant", q.Consultant},
		{"geography", q.Geography},
		{"country", q.Country},
	}
	for _, c := range simple {
		if c.val == "" {
			continue
		}
		rows, err := s.conn.Query(fmt.Sprintf(`SELECT id FROM deals WHERE %s = ?`, c.col), c.val)
		if err != nil {
			return nil, err
		}
		ids := map[string]float64{}
		for _, r := range rows.Data {
			ids[text(r[0])] = 1
		}
		merge(ids, nil)
	}

	if q.PersonName != "" || q.PersonOrg != "" {
		where := []string{}
		args := []relstore.Value{}
		if q.PersonName != "" {
			where = append(where, `LOWER(name) LIKE ?`)
			args = append(args, "%"+strings.ToLower(q.PersonName)+"%")
		}
		if q.PersonOrg != "" {
			where = append(where, `LOWER(org) LIKE ?`)
			args = append(args, "%"+strings.ToLower(q.PersonOrg)+"%")
		}
		rows, err := s.conn.Query(`SELECT deal_id, validated FROM contacts WHERE `+strings.Join(where, " AND "), args...)
		if err != nil {
			return nil, err
		}
		ids := map[string]float64{}
		for _, r := range rows.Data {
			sc := 1.0
			if boolean(r[1]) {
				sc = 1.2 // directory-validated contacts are stronger evidence
			}
			if sc > ids[text(r[0])] {
				ids[text(r[0])] = sc
			}
		}
		merge(ids, nil)
	}

	if criteria == 0 {
		return nil, nil
	}

	restrict := map[string]bool{}
	for _, id := range q.RestrictTo {
		restrict[id] = true
	}

	hits := make([]Hit, 0, len(cands))
	for id, c := range cands {
		if c.hits < criteria {
			continue // conjunction: every set criterion must match
		}
		if len(restrict) > 0 && !restrict[id] {
			continue
		}
		hits = append(hits, Hit{DealID: id, Score: c.score, MatchedTowers: c.matched})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].DealID < hits[j].DealID
	})
	return hits, nil
}

// value accessors tolerate NULLs.
func text(v relstore.Value) string {
	s, _ := v.(string)
	return s
}

func integer(v relstore.Value) int64 {
	n, _ := v.(int64)
	return n
}

func float(v relstore.Value) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case int64:
		return float64(x)
	}
	return 0
}

func boolean(v relstore.Value) bool {
	b, _ := v.(bool)
	return b
}
