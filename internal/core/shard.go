package core

// Sharded scatter-gather search. The corpus is partitioned by hashed deal
// ID into N self-contained shards — each with its own index, synopsis
// store, and durability — and the Figure-1 search path fans every stage
// out per shard: synopsis scatter, a global-statistics scatter (so BM25
// scores match the monolithic engine bit-for-bit; see index/stats.go),
// and a document scatter scoped per shard to its own synopsis hits. The
// coordinator merges with a single cluster-wide normalization and a
// bounded top-k heap, reproducing the single-engine ranking exactly.
//
// Resilience generalizes from "2 backends" to N shards: each shard's
// synopsis and document hops get their own circuit breaker
// ("<backend>#<shard>"), each shard goroutine gets a deadline carved from
// the remaining search budget (80%, reserving coordinator headroom), and
// a straggling, dead, or breaker-open shard degrades the result — its
// deals drop to a reduced tier and the degraded flag is set — instead of
// failing the query. Only a total outage of a stage with no tier left to
// serve surfaces as an error, mirroring the monolithic degradation
// ladder.

import (
	"context"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/access"
	"repro/internal/fault"
	"repro/internal/index"
	"repro/internal/lru"
	"repro/internal/obs"
	"repro/internal/siapi"
	"repro/internal/synopsis"
	"repro/internal/trace"
)

// ShardBackend is one self-contained shard: a synopsis store and a live
// document engine over the same partition of deals. Docs is a getter so
// per-shard compaction can republish its engine atomically (the same
// SwapDocs discipline the monolith uses). Faults, when set, is attached
// to this shard's scatter goroutines only — chaos tests kill or slow one
// shard while the rest stay healthy.
type ShardBackend struct {
	Name     string
	Synopses *synopsis.Store
	Docs     func() *siapi.Engine
	Faults   *fault.Injector
}

// ShardFor returns the shard owning dealID among n shards: FNV-1a over
// the deal ID, mod n. The hash is stable across processes and platforms,
// so a persisted cluster routes identically on every load.
func ShardFor(dealID string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(dealID))
	return int(h.Sum32() % uint32(n))
}

// ShardForDoc routes a document: by its deal when it has one, by its path
// otherwise (deal-less documents have no cross-shard grouping to keep).
func ShardForDoc(dealID, path string, n int) int {
	if dealID == "" {
		return ShardFor(path, n)
	}
	return ShardFor(dealID, n)
}

// Sharded reports whether this engine coordinates shards.
func (e *Engine) Sharded() bool { return len(e.Shards) > 0 }

// statsMemoSize bounds the coordinator's merged-stats memo.
const statsMemoSize = 128

// shardCtx derives one shard's scatter context: a per-shard deadline
// carved from the remaining search budget (80% of what is left, reserving
// headroom for the coordinator's merge and access stages after the
// slowest shard reports), plus the shard's fault injector when set.
func shardCtx(ctx context.Context, sb *ShardBackend) (context.Context, context.CancelFunc) {
	cancel := context.CancelFunc(func() {})
	if deadline, ok := ctx.Deadline(); ok {
		remaining := time.Until(deadline)
		slice := remaining - remaining/5
		if slice < time.Millisecond {
			slice = time.Millisecond
		}
		ctx, cancel = context.WithDeadline(ctx, time.Now().Add(slice))
	}
	if sb.Faults != nil {
		ctx = fault.With(ctx, sb.Faults)
	}
	return ctx, cancel
}

// shardOut carries one shard's scatter result.
type shardOut[T any] struct {
	out T
	err error
}

// scatterShards fans fn out to every shard on its own goroutine — each
// under a per-shard child span, deadline, fault injector, and
// eil_shard_search_* metrics — and gathers results in shard order.
func scatterShards[T any](ctx context.Context, e *Engine, span string, fn func(ctx context.Context, i int, sb *ShardBackend) (T, error)) []shardOut[T] {
	outs := make([]shardOut[T], len(e.Shards))
	var wg sync.WaitGroup
	for i := range e.Shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sb := &e.Shards[i]
			t := obs.StartTimer()
			sctx, sp := trace.StartSpan(ctx, span)
			sctx, cancel := shardCtx(sctx, sb)
			defer cancel()
			out, err := fn(sctx, i, sb)
			d := t.Elapsed()
			e.Metrics.Counter("eil_shard_search_total", "shard", sb.Name).Inc()
			if err != nil {
				e.Metrics.Counter("eil_shard_search_errors_total", "shard", sb.Name).Inc()
			}
			e.Metrics.Histogram("eil_shard_search_seconds", nil, "shard", sb.Name).ObserveDurationWithExemplar(d, trace.ID(sctx))
			if sp != nil {
				sp.Set("shard", sb.Name)
				if err != nil {
					sp.Set("error", err.Error())
				}
				sp.End()
			}
			outs[i] = shardOut[T]{out, err}
		}(i)
	}
	wg.Wait()
	return outs
}

// clusterEpoch joins every shard's index generation into one cache-epoch
// string: a write on any shard yields a new epoch, so stats-scored cache
// entries (keyed on it) can never serve scores computed against a stale
// cluster state.
func (e *Engine) clusterEpoch() string {
	var b strings.Builder
	for i := range e.Shards {
		if i > 0 {
			b.WriteByte('-')
		}
		b.WriteString(strconv.FormatUint(e.Shards[i].Docs().Generation(), 10))
	}
	return b.String()
}

// shardSynopsisSearch is the per-shard synopsis query behind a per-shard
// epoch-invalidated memo (each shard's store has its own generation
// counter, so the memos cannot share one cache).
func (e *Engine) shardSynopsisSearch(ctx context.Context, i int, sb *ShardBackend, sq synopsis.Query) ([]synopsis.Hit, bool, error) {
	e.synShardOnce.Do(func() {
		e.synShardMemos = make([]*lru.Cache[string, []synopsis.Hit], len(e.Shards))
		for j := range e.synShardMemos {
			e.synShardMemos[j] = lru.New[string, []synopsis.Hit](synopsisMemoSize)
		}
	})
	memo := e.synShardMemos[i]
	key := synopsisKey(sq)
	epoch := sb.Synopses.Generation()
	if hits, ok := memo.Get(key, epoch); ok {
		e.Metrics.Counter("synopsis_cache_hits_total").Inc()
		return cloneSynHits(hits), true, nil
	}
	e.Metrics.Counter("synopsis_cache_misses_total").Inc()
	hits, err := sb.Synopses.SearchCtx(ctx, sq)
	if err != nil {
		return nil, false, err
	}
	memo.Put(key, epoch, cloneSynHits(hits))
	return hits, false, nil
}

// clusterStats runs the statistics phase of the two-phase scoring
// protocol: scatter per-shard stats collection for dq, merge. Per-shard
// failures come back in errs (the caller treats a shard that cannot
// report stats as down for the whole document stage); the merged table is
// memoized per query and cluster epoch, but only when every shard
// reported — a partial table must not be served to later healthy
// searches.
func (e *Engine) clusterStats(ctx context.Context, dq siapi.Query, epoch string) (*index.Stats, []error) {
	e.statsOnce.Do(func() {
		e.statsMemo = lru.New[string, *index.Stats](statsMemoSize)
	})
	errs := make([]error, len(e.Shards))
	key := siapi.Key(dq) + "|" + epoch
	if st, ok := e.statsMemo.Get(key, 0); ok {
		e.Metrics.Counter("shard_stats_cache_hits_total").Inc()
		return st, errs
	}
	e.Metrics.Counter("shard_stats_cache_misses_total").Inc()
	outs := scatterShards(ctx, e, "search.siapi.stats", func(c context.Context, i int, sb *ShardBackend) (*index.Stats, error) {
		return resilientCall(c, e, shardBreakerName(BackendSIAPI, sb.Name), func(cc context.Context) (*index.Stats, error) {
			return sb.Docs().TryCollectStatsCtx(cc, dq)
		})
	})
	var merged *index.Stats
	complete := true
	for i, r := range outs {
		if r.err != nil {
			errs[i] = r.err
			complete = false
			continue
		}
		if merged == nil {
			merged = r.out
		} else {
			merged.Merge(r.out)
		}
	}
	if complete && merged != nil {
		e.statsMemo.Put(key, 0, merged)
	}
	return merged, errs
}

// searchSharded is the Figure-1 search path as a parallel scatter-gather
// over e.Shards. It mirrors the monolithic search() stage for stage; the
// differential suite holds the two paths to identical rankings.
func (e *Engine) searchSharded(ctx context.Context, user access.User, q FormQuery) (Result, error) {
	var res Result
	n := len(e.Shards)
	if r := e.resilience(); r.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.Budget)
		defer cancel()
	}
	if e.Faults != nil {
		ctx = fault.With(ctx, e.Faults)
	}
	degrade := func(cause string, err error) {
		res.Degraded = true
		res.DegradedCauses = append(res.DegradedCauses, cause)
		e.Metrics.Counter("search_degraded_total", "cause", cause).Inc()
		root := trace.FromContext(ctx)
		root.SetBool("degraded", true)
		root.Set("degraded_"+cause, err.Error())
	}

	// Steps 1-3: compose both queries (coordinator-local, not sharded).
	compose := obs.StartTimer()
	_, csp := trace.StartSpan(ctx, "search.compose")
	sq, explain := e.composeSynopsisQuery(q)
	res.Explain = append(res.Explain, explain...)
	if q.Tower != "" && e.Tax != nil {
		if _, _, ok := e.Tax.Resolve(q.Tower); !ok {
			for _, s := range e.Tax.Suggest(q.Tower, 3) {
				res.Suggestions = append(res.Suggestions, s.Surface)
			}
		}
	}
	dq := e.composeSIAPIQuery(q)
	if !dq.Empty() {
		res.Explain = append(res.Explain, fmt.Sprintf("SIAPI query on fields %v", dq.Fields))
	}
	if csp != nil {
		csp.SetBool("has_concepts", !sq.Empty())
		csp.SetBool("has_text", !dq.Empty())
		csp.SetInt("suggestions", len(res.Suggestions))
		csp.End()
	}
	e.observeStage(ctx, StageCompose, compose.Elapsed())

	// Step 4: synopsis scatter. Hits union in shard order; a failed shard
	// costs only its own deals unless every shard is down.
	var synHits []synopsis.Hit
	synDown := false
	if !sq.Empty() {
		t := obs.StartTimer()
		sctx, sp := trace.StartSpan(ctx, "search.synopsis")
		type synOut struct {
			hits   []synopsis.Hit
			cached bool
		}
		outs := scatterShards(sctx, e, "search.synopsis.shard", func(c context.Context, i int, sb *ShardBackend) (synOut, error) {
			return resilientCall(c, e, shardBreakerName(BackendSynopsis, sb.Name), func(cc context.Context) (synOut, error) {
				hits, cached, err := e.shardSynopsisSearch(cc, i, sb, sq)
				return synOut{hits, cached}, err
			})
		})
		okCount, failCount := 0, 0
		var firstErr error
		for _, r := range outs {
			if r.err != nil {
				failCount++
				if firstErr == nil {
					firstErr = r.err
				}
				continue
			}
			okCount++
			synHits = append(synHits, r.out.hits...)
		}
		if sp != nil {
			sp.SetInt("hits", len(synHits))
			sp.SetInt("shards_failed", failCount)
			if firstErr != nil {
				sp.Set("error", firstErr.Error())
			}
			sp.End()
		}
		e.observeStage(ctx, StageSynopsis, t.Elapsed())
		switch {
		case failCount == 0:
			res.Explain = append(res.Explain, fmt.Sprintf("synopsis query matched %d activities", len(synHits)))
		case okCount == 0 && dq.Empty():
			// Concept-only query with every synopsis shard down: no tier
			// left to serve.
			return res, &BackendError{Backend: BackendSynopsis, Err: firstErr}
		case okCount == 0:
			synDown = true
			degrade(BackendSynopsis, firstErr)
			res.Explain = append(res.Explain, "synopsis backend unavailable; degraded to unscoped full-text")
		default:
			// Partial harvest: the surviving shards' business context still
			// scopes the search; the dead shards' deals are simply absent.
			degrade(BackendSynopsis, firstErr)
			res.Explain = append(res.Explain, fmt.Sprintf("%d of %d synopsis shards unavailable; serving partial business context", failCount, n))
		}
	}

	synByDeal := map[string]synopsis.Hit{}
	maxSyn := 0.0
	for _, h := range synHits {
		synByDeal[h.DealID] = h
		if h.Score > maxSyn {
			maxSyn = h.Score
		}
	}

	acts := map[string]*combinedAct{}
	addSyn := func(h synopsis.Hit) {
		c := acts[h.DealID]
		if c == nil {
			c = &combinedAct{}
			acts[h.DealID] = c
		}
		if maxSyn > 0 {
			c.syn = h.Score / maxSyn
		}
		c.tws = h.MatchedTowers
	}

	// shardedSIAPIStage scatters the two-phase document search: global
	// stats, then per-shard activity search. When scoping is on, each
	// shard's query is restricted to its own synopsis-hit deals (a deal's
	// documents live wholly on its shard, so the union equals the
	// monolithic scoped search). failedShards reports which shards
	// returned nothing; merged activity hits carry raw (unnormalized)
	// cluster-scored averages.
	shardedSIAPIStage := func(scoping bool) (docActs []siapi.ActivityHit, failedShards []bool, okCount, failCount int, firstErr error) {
		perDeal := q.DocsPerDeal
		if perDeal <= 0 {
			perDeal = 5
		}
		t := obs.StartTimer()
		sctx, sp := trace.StartSpan(ctx, "search.siapi")
		epoch := e.clusterEpoch()
		st, statsErrs := e.clusterStats(sctx, dq, epoch)
		var dealsByShard [][]string
		relevant := make([]bool, n)
		for i := range relevant {
			relevant[i] = true
		}
		if scoping {
			dealsByShard = make([][]string, n)
			for _, h := range synHits {
				i := ShardFor(h.DealID, n)
				dealsByShard[i] = append(dealsByShard[i], h.DealID)
			}
			for i := range relevant {
				relevant[i] = len(dealsByShard[i]) > 0
			}
		}
		outs := scatterShards(sctx, e, "search.siapi.shard", func(c context.Context, i int, sb *ShardBackend) ([]siapi.ActivityHit, error) {
			if !relevant[i] {
				return nil, nil
			}
			if statsErrs[i] != nil {
				return nil, statsErrs[i]
			}
			sdq := dq
			if scoping {
				sdq.Deals = dealsByShard[i]
			}
			return resilientCall(c, e, shardBreakerName(BackendSIAPI, sb.Name), func(cc context.Context) ([]siapi.ActivityHit, error) {
				return sb.Docs().TrySearchActivitiesRawCtx(cc, sdq, perDeal, st, epoch)
			})
		})
		failedShards = make([]bool, n)
		for i, r := range outs {
			if !relevant[i] {
				continue
			}
			if r.err != nil {
				failCount++
				failedShards[i] = true
				if firstErr == nil {
					firstErr = r.err
				}
				continue
			}
			okCount++
			docActs = append(docActs, r.out...)
		}
		// Coordinator normalization: one cluster-wide best activity, the
		// same single maxAvg the monolithic engine computes.
		maxAvg := 0.0
		for _, da := range docActs {
			if da.Score > maxAvg {
				maxAvg = da.Score
			}
		}
		if maxAvg > 0 {
			for i := range docActs {
				docActs[i].Score /= maxAvg
			}
		}
		if sp != nil {
			sp.SetBool("scoped", scoping)
			sp.SetInt("activities", len(docActs))
			sp.SetInt("shards_failed", failCount)
			if firstErr != nil {
				sp.Set("error", firstErr.Error())
			}
			sp.End()
		}
		e.observeStage(ctx, StageSIAPI, t.Elapsed())
		return docActs, failedShards, okCount, failCount, firstErr
	}

	switch {
	case len(synHits) > 0: // steps 5-11
		if !dq.Empty() {
			docActs, failedShards, okCount, failCount, err := shardedSIAPIStage(!e.DisableScoping)
			if failCount > 0 {
				degrade(BackendSIAPI, err)
				if okCount == 0 {
					// Every relevant document shard down with the synopsis
					// side healthy: serve the synopsis-plus-contacts tier.
					res.Explain = append(res.Explain, "document index unavailable; degraded to synopsis-plus-contacts")
					for _, h := range synHits {
						addSyn(h)
					}
					break
				}
				// Partial outage: only the dead shards' deals drop to the
				// synopsis tier; surviving shards keep their documents.
				res.Explain = append(res.Explain, fmt.Sprintf("%d document shards unavailable; affected activities degraded to synopsis-plus-contacts", failCount))
				for _, h := range synHits {
					if failedShards[ShardFor(h.DealID, n)] {
						addSyn(h)
					}
				}
			}
			for _, da := range docActs {
				sh, inS := synByDeal[da.DealID]
				if !inS {
					continue // unscoped ablation: intersect to keep semantics
				}
				addSyn(sh)
				acts[da.DealID].doc = da.Score
				acts[da.DealID].dcs = da.Docs
			}
			res.Explain = append(res.Explain, fmt.Sprintf("scoped SIAPI query over %d activities", len(synHits)))
		} else {
			// Step 11: R <- S.
			for _, h := range synHits {
				addSyn(h)
			}
		}
	case !dq.Empty(): // steps 13-15: unscoped SIAPI fallback
		if !sq.Empty() && !synDown {
			res.Explain = append(res.Explain, "concept criteria matched no activities")
			break
		}
		docActs, _, okCount, failCount, err := shardedSIAPIStage(false)
		if okCount == 0 {
			// Every serving tier is gone: surface the outage.
			return res, &BackendError{Backend: BackendSIAPI, Err: err}
		}
		if failCount > 0 {
			degrade(BackendSIAPI, err)
			res.Explain = append(res.Explain, fmt.Sprintf("%d of %d document shards unavailable; serving partial results", failCount, n))
		}
		for _, da := range docActs {
			acts[da.DealID] = &combinedAct{doc: da.Score, dcs: da.Docs}
		}
		res.UnscopedFallback = true
		if synDown {
			res.Explain = append(res.Explain, "unscoped SIAPI query (synopsis degraded)")
		} else {
			res.Explain = append(res.Explain, "unscoped SIAPI query (no concept criteria)")
		}
	default: // step 17: R <- empty set
		return res, nil
	}

	e.finishSearch(ctx, user, q, &res, acts, degrade)
	return res, nil
}

// exploreSharded drills into one activity's documents on its owning
// shard, scored against cluster-global statistics so the hit scores match
// what the monolithic engine would return.
func (e *Engine) exploreSharded(ctx context.Context, dealID string, dq siapi.Query, limit int) ([]siapi.DocHit, error) {
	epoch := e.clusterEpoch()
	st, errs := e.clusterStats(ctx, dq, epoch)
	i := ShardFor(dealID, len(e.Shards))
	if errs[i] != nil {
		return nil, errs[i]
	}
	sb := &e.Shards[i]
	sctx, sp := trace.StartSpan(ctx, "search.siapi.shard")
	sctx, cancel := shardCtx(sctx, sb)
	defer cancel()
	hits, err := resilientCall(sctx, e, shardBreakerName(BackendSIAPI, sb.Name), func(c context.Context) ([]siapi.DocHit, error) {
		return sb.Docs().TrySearchStatsCtx(c, dq, limit, st, epoch)
	})
	if sp != nil {
		sp.Set("shard", sb.Name)
		if err != nil {
			sp.Set("error", err.Error())
		}
		sp.End()
	}
	return hits, err
}
