package core

// Query explain mode: alongside the normal result set, return the request's
// span tree and a per-activity decomposition of the combined score. The
// decomposition recomputes each component with the exact expression the
// merge stage uses (sw*SynopsisScore + dw*DocScore), so components always
// sum to the reported score — bit-for-bit, not approximately.

import (
	"context"

	"repro/internal/access"
	"repro/internal/trace"
)

// ScoreExplanation decomposes one activity's combined ranking score.
type ScoreExplanation struct {
	DealID string `json:"deal_id"`
	// Weights are the engine's rank-combination mix (defaulted values, not
	// the raw zero-means-one configuration fields).
	SynopsisWeight float64 `json:"synopsis_weight"`
	DocWeight      float64 `json:"doc_weight"`
	// Scores are the normalized per-side inputs to the combination.
	SynopsisScore float64 `json:"synopsis_score"`
	DocScore      float64 `json:"doc_score"`
	// Components are weight*score; Total is their sum and equals the
	// activity's reported Score exactly.
	SynopsisComponent float64 `json:"synopsis_component"`
	DocComponent      float64 `json:"doc_component"`
	Total             float64 `json:"total"`
	// MatchedTowers and Level carry the concept-match and access context
	// for the row (Figure 5's bolded towers; synopsis-only fallback).
	MatchedTowers []string `json:"matched_towers,omitempty"`
	Level         string   `json:"level"`
}

// Explanation is the explain-mode envelope: the trace's span tree (when the
// context carries one), the executed stage names, and the per-hit score
// decomposition.
type Explanation struct {
	TraceID string      `json:"trace_id,omitempty"`
	Trace   *trace.Node `json:"trace,omitempty"`
	// Stages lists the span names recorded under the search, in start
	// order — the named stages of the Figure 1 algorithm that actually ran.
	Stages []string           `json:"stages,omitempty"`
	Scores []ScoreExplanation `json:"scores"`
}

// SearchExplain runs SearchCtx and builds the explanation from the result
// and the context's trace. Callers who want a span tree must pass a traced
// context (the web layer forces a trace for ?explain=1); without one the
// explanation still carries the score decomposition.
func (e *Engine) SearchExplain(ctx context.Context, user access.User, q FormQuery) (Result, *Explanation, error) {
	res, err := e.SearchCtx(ctx, user, q)
	if err != nil {
		return res, nil, err
	}
	ex := &Explanation{TraceID: trace.ID(ctx)}
	if sp := trace.FromContext(ctx); sp != nil {
		ex.Trace = sp.Trace().Tree()
		ex.Trace.Walk(func(n *trace.Node) {
			if n != ex.Trace {
				ex.Stages = append(ex.Stages, n.Name)
			}
		})
	}
	sw, dw := e.weights()
	for _, a := range res.Activities {
		sc := ScoreExplanation{
			DealID:            a.DealID,
			SynopsisWeight:    sw,
			DocWeight:         dw,
			SynopsisScore:     a.SynopsisScore,
			DocScore:          a.DocScore,
			SynopsisComponent: sw * a.SynopsisScore,
			DocComponent:      dw * a.DocScore,
			MatchedTowers:     a.MatchedTowers,
			Level:             a.Level.String(),
		}
		sc.Total = sc.SynopsisComponent + sc.DocComponent
		ex.Scores = append(ex.Scores, sc)
	}
	return res, ex, nil
}
