package core

import (
	"context"
	"testing"

	"repro/internal/trace"
)

// TestSearchExplainDecomposition is the explain golden test: every score
// decomposition must sum exactly (not approximately — the explanation
// recomputes with the merge stage's own expression) to the activity's
// reported score, and the span tree must carry the named Figure 1 stages.
func TestSearchExplainDecomposition(t *testing.T) {
	e := newEngine(t)
	tracer := trace.New(trace.Options{})
	ctx, tr := tracer.Start(context.Background(), "test.search", trace.StartOptions{Force: true})
	defer tr.Finish()

	res, ex, err := e.SearchExplain(ctx, anyUser(), FormQuery{
		Tower:    "Storage Management Services",
		AllWords: []string{"replication"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Activities) == 0 {
		t.Fatal("no activities to explain")
	}
	if ex == nil {
		t.Fatal("nil explanation")
	}
	if ex.TraceID != tr.ID {
		t.Fatalf("trace id = %q, want %q", ex.TraceID, tr.ID)
	}
	if len(ex.Scores) != len(res.Activities) {
		t.Fatalf("scores = %d, activities = %d", len(ex.Scores), len(res.Activities))
	}
	for i, sc := range ex.Scores {
		a := res.Activities[i]
		if sc.DealID != a.DealID {
			t.Fatalf("score %d deal = %q, want %q", i, sc.DealID, a.DealID)
		}
		if sc.SynopsisComponent != sc.SynopsisWeight*sc.SynopsisScore {
			t.Fatalf("%s: synopsis component %v != %v*%v", sc.DealID, sc.SynopsisComponent, sc.SynopsisWeight, sc.SynopsisScore)
		}
		if sc.DocComponent != sc.DocWeight*sc.DocScore {
			t.Fatalf("%s: doc component %v != %v*%v", sc.DealID, sc.DocComponent, sc.DocWeight, sc.DocScore)
		}
		// Exact equality is intentional: the decomposition uses the same
		// float expression as the merge stage.
		if sc.Total != sc.SynopsisComponent+sc.DocComponent {
			t.Fatalf("%s: total %v != %v + %v", sc.DealID, sc.Total, sc.SynopsisComponent, sc.DocComponent)
		}
		if sc.Total != a.Score {
			t.Fatalf("%s: explained total %v != reported score %v", sc.DealID, sc.Total, a.Score)
		}
	}

	if ex.Trace == nil {
		t.Fatal("no span tree on a traced context")
	}
	want := []string{"search.compose", "search.synopsis", "search.siapi", "search.combine", "search.access"}
	have := map[string]bool{}
	for _, s := range ex.Stages {
		have[s] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Fatalf("stage %q missing from %v", w, ex.Stages)
		}
	}
	if len(ex.Stages) < 4 {
		t.Fatalf("fewer than 4 named stages: %v", ex.Stages)
	}
}

// TestSearchExplainUntraced: without a trace in the context the explanation
// still decomposes scores, with no tree and no trace ID.
func TestSearchExplainUntraced(t *testing.T) {
	e := newEngine(t)
	res, ex, err := e.SearchExplain(context.Background(), anyUser(), FormQuery{AllWords: []string{"replication"}})
	if err != nil {
		t.Fatal(err)
	}
	if ex == nil || ex.Trace != nil || ex.TraceID != "" {
		t.Fatalf("untraced explanation = %+v", ex)
	}
	if len(ex.Scores) != len(res.Activities) {
		t.Fatalf("scores = %d, activities = %d", len(ex.Scores), len(res.Activities))
	}
	for i, sc := range ex.Scores {
		if sc.Total != res.Activities[i].Score {
			t.Fatalf("%s: total %v != score %v", sc.DealID, sc.Total, res.Activities[i].Score)
		}
	}
}
