package core

// Synopsis query memoization. Form queries repeat heavily (the search form
// offers a finite vocabulary of towers, industries, and consultants), while
// the synopsis store only changes when a deal is re-analyzed — so the core
// engine memoizes synopsis search results in an LRU keyed on a canonical
// query encoding plus the store's generation counter. Writers invalidate by
// bumping the counter; they never touch the cache.

import (
	"context"
	"strconv"
	"strings"

	"repro/internal/lru"
	"repro/internal/synopsis"
)

// synopsisMemoSize bounds the memo; the form vocabulary is small, so a
// few hundred entries covers the working set.
const synopsisMemoSize = 256

// synopsisSearch is Synopses.Search behind the epoch-invalidated memo. The
// second result reports whether the memo served the hits (trace spans
// record it).
func (e *Engine) synopsisSearch(ctx context.Context, sq synopsis.Query) ([]synopsis.Hit, bool, error) {
	e.synOnce.Do(func() {
		e.synMemo = lru.New[string, []synopsis.Hit](synopsisMemoSize)
	})
	key := synopsisKey(sq)
	epoch := e.Synopses.Generation()
	if hits, ok := e.synMemo.Get(key, epoch); ok {
		e.Metrics.Counter("synopsis_cache_hits_total").Inc()
		return cloneSynHits(hits), true, nil
	}
	e.Metrics.Counter("synopsis_cache_misses_total").Inc()
	hits, err := e.Synopses.SearchCtx(ctx, sq)
	if err != nil {
		return nil, false, err
	}
	e.synMemo.Put(key, epoch, cloneSynHits(hits))
	return hits, false, nil
}

// synopsisKey encodes a synopsis query injectively (length-prefixed parts).
func synopsisKey(sq synopsis.Query) string {
	var b strings.Builder
	write := func(v string) {
		b.WriteString(strconv.Itoa(len(v)))
		b.WriteByte(':')
		b.WriteString(v)
	}
	write(sq.Tower)
	write(sq.SubTower)
	write(sq.Industry)
	write(sq.Consultant)
	write(sq.Geography)
	write(sq.Country)
	write(sq.PersonName)
	write(sq.PersonOrg)
	b.WriteString(strconv.Itoa(len(sq.RestrictTo)))
	for _, d := range sq.RestrictTo {
		b.WriteByte(':')
		write(d)
	}
	return b.String()
}

// cloneSynHits deep-copies a hit list (MatchedTowers included) so cached
// entries stay isolated from caller mutation.
func cloneSynHits(hits []synopsis.Hit) []synopsis.Hit {
	if hits == nil {
		return nil
	}
	out := make([]synopsis.Hit, len(hits))
	copy(out, hits)
	for i := range out {
		if out[i].MatchedTowers != nil {
			out[i].MatchedTowers = append([]string(nil), out[i].MatchedTowers...)
		}
	}
	return out
}
