package core

import (
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/synopsis"
)

func TestSynopsisMemoHitsAndInvalidation(t *testing.T) {
	e := newEngine(t)
	reg := obs.NewRegistry()
	e.Metrics = reg
	hits := reg.Counter("synopsis_cache_hits_total")
	misses := reg.Counter("synopsis_cache_misses_total")

	q := FormQuery{Tower: "Storage Management Services"}
	first, err := e.Search(anyUser(), q)
	if err != nil {
		t.Fatal(err)
	}
	if misses.Value() != 1 || hits.Value() != 0 {
		t.Fatalf("after first search: hits=%d misses=%d", hits.Value(), misses.Value())
	}
	second, err := e.Search(anyUser(), q)
	if err != nil {
		t.Fatal(err)
	}
	if hits.Value() != 1 {
		t.Fatalf("repeat synopsis query did not hit memo: hits=%d misses=%d", hits.Value(), misses.Value())
	}
	if !reflect.DeepEqual(first.Activities, second.Activities) {
		t.Fatal("memoized search diverges from computed one")
	}

	// Any synopsis write bumps the store generation and flushes the memo.
	if err := e.Synopses.Put(synopsis.Deal{Overview: synopsis.Overview{DealID: "DEAL NEW"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Search(anyUser(), q); err != nil {
		t.Fatal(err)
	}
	if misses.Value() != 2 {
		t.Fatalf("write did not invalidate memo: hits=%d misses=%d", hits.Value(), misses.Value())
	}
}
