// Package core implements EIL's primary contribution: business-activity
// driven search (Figure 1 of the paper). A form-based query is decomposed
// into a synopsis query (directed SQL against the extracted business
// context) and a SIAPI query (against the semantic document index); the
// synopsis result set scopes the document search to relevant business
// activities; the two rankings are combined; and access control decides,
// per activity, whether the user sees documents, only the synopsis with its
// contact list, or nothing.
package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/access"
	"repro/internal/fault"
	"repro/internal/index"
	"repro/internal/lru"
	"repro/internal/obs"
	"repro/internal/siapi"
	"repro/internal/synopsis"
	"repro/internal/taxonomy"
	"repro/internal/trace"
)

// TextTarget selects where the form's text predicates search — "anywhere in
// EWB" or a specific synopsis section (Figure 8's drop-down).
type TextTarget string

// Text targets supported by the form.
const (
	TargetAnywhere     TextTarget = "anywhere"     // body + title of all documents
	TargetTechSolution TextTarget = "techsolution" // technology solution overviews
	TargetWinStrategy  TextTarget = "winstrategy"  // win strategy statements
	TargetTitle        TextTarget = "title"        // document titles only
)

// FormQuery mirrors the EIL search editor (Figure 8): concept criteria,
// text predicates, and people criteria, all optional and conjunctive.
type FormQuery struct {
	// Tower accepts any taxonomy surface form (canonical name, acronym, or
	// alias); sub-tower forms set the sub-tower criterion automatically.
	Tower    string
	SubTower string

	Industry   string
	Consultant string
	Geography  string
	Country    string

	AllWords    []string
	ExactPhrase string
	AnyWords    []string
	NoneWords   []string
	Target      TextTarget

	PersonName string
	PersonOrg  string

	// Limit bounds the number of returned activities (0 = all);
	// DocsPerDeal bounds documents listed per activity (0 = 5).
	Limit       int
	DocsPerDeal int
}

// HasConcepts reports whether any synopsis criterion is set.
func (q FormQuery) HasConcepts() bool {
	return q.Tower != "" || q.SubTower != "" || q.Industry != "" || q.Consultant != "" ||
		q.Geography != "" || q.Country != "" || q.PersonName != "" || q.PersonOrg != ""
}

// HasText reports whether any text predicate is set.
func (q FormQuery) HasText() bool {
	return len(q.AllWords) > 0 || q.ExactPhrase != "" || len(q.AnyWords) > 0 || len(q.NoneWords) > 0
}

// Activity is one business activity in the result set — the unit of
// presentation in EIL ("a search query returns a set of the most relevant
// business activities first rather than documents or links").
type Activity struct {
	DealID string
	// Score combines the synopsis ranking and the normalized document
	// ranking (Figure 1 step 18).
	Score float64
	// SynopsisScore and DocScore are the per-side normalized components.
	SynopsisScore float64
	DocScore      float64
	// MatchedTowers lists scope towers that satisfied the tower criterion,
	// significance order (Figure 5's bolded towers).
	MatchedTowers []string
	// Level is the caller's access level for this activity.
	Level access.Level
	// Synopsis is populated when Level >= LevelSynopsis.
	Synopsis *synopsis.Deal
	// Docs is populated when Level == LevelFull and the query had text
	// predicates.
	Docs []siapi.DocHit
}

// Result is a complete search response.
type Result struct {
	Activities []Activity
	// UnscopedFallback is true when the synopsis query was empty or
	// matched nothing and the SIAPI query ran unscoped (Figure 1 step 14).
	UnscopedFallback bool
	// Degraded is true when a backend outage forced a reduced answer: the
	// result is still useful (harvest shrank, yield held) but is not the
	// full two-backend ranking. DegradedCauses names the failed hops
	// ("synopsis", "siapi", "access").
	Degraded       bool     `json:"degraded"`
	DegradedCauses []string `json:"degraded_causes,omitempty"`
	// Explain carries one line per executed stage, for the UI's query
	// summary ("Find deals with ... tower; contain ... anywhere in EWB").
	Explain []string
	// Suggestions carries "did you mean" vocabulary matches when a tower
	// criterion failed to resolve in the taxonomy.
	Suggestions []string
}

// Engine wires the stores together. All fields are required except Access
// (nil means no access control: everyone sees everything — used by offline
// evaluation) and Tax (nil disables concept-form resolution).
type Engine struct {
	Synopses *synopsis.Store
	Docs     *siapi.Engine
	Access   *access.Controller
	Tax      *taxonomy.Taxonomy

	// SynopsisWeight and DocWeight set the rank-combination mix; zero
	// values default to 1.0 and 1.0.
	SynopsisWeight float64
	DocWeight      float64
	// DisableScoping makes the SIAPI query run unscoped even when the
	// synopsis query matched (the scoping ablation). Results are then
	// intersected with S anyway to preserve semantics, so the ablation
	// measures the cost, not a semantic change.
	DisableScoping bool
	// Metrics, when set, receives per-stage search timings and outcome
	// counters (search_* metric names); nil disables recording.
	Metrics *obs.Registry
	// Resilient configures budget deadlines, retry, and circuit breaking on
	// the backend hops (see resilience.go). The zero value reproduces the
	// unprotected engine exactly.
	Resilient Resilience
	// Faults, when set, activates the fault-injection layer for every
	// search this engine runs (chaos benching via -fault-spec); tests more
	// commonly inject per-request through fault.With on the context.
	Faults *fault.Injector

	// docs, once SwapDocs has been called, is the live document backend:
	// compaction republishes the rebuilt index through it so concurrent
	// searches atomically see either the old or the new engine, never a
	// torn mix. Reads go through backend(), which falls back to Docs until
	// the first swap.
	docs atomic.Pointer[siapi.Engine]

	// Shards, when non-empty, turns this engine into a scatter-gather
	// coordinator over N self-contained shards: Synopses and Docs are
	// ignored and every search fans out per shard (see shard.go). The
	// slice must not change after the first search.
	Shards []ShardBackend

	// synMemo lazily memoizes synopsis query results keyed on the store's
	// generation counter (see memo.go).
	synOnce sync.Once
	synMemo *lru.Cache[string, []synopsis.Hit]
	// statsOnce/statsMemo memoize merged cluster scoring stats per
	// compiled query + cluster epoch (sharded search only; see shard.go).
	statsOnce sync.Once
	statsMemo *lru.Cache[string, *index.Stats]
	// synShardMemos holds one synopsis memo per shard: each shard's store
	// has its own generation counter, and an lru.Cache tracks exactly one
	// epoch, so shards cannot share a cache without cross-flushing.
	synShardOnce  sync.Once
	synShardMemos []*lru.Cache[string, []synopsis.Hit]
	// breakers holds the lazily built per-key circuit breakers; brMu
	// guards the map, not the breakers (each has its own lock).
	brMu     sync.Mutex
	breakers map[string]*breaker
}

// Derive returns a new Engine sharing this engine's stores and
// configuration. Engines must not be copied by value (they carry memo
// state); Derive is the supported way to tweak settings — ablations flip
// DisableScoping or the rank weights on a derived engine.
func (e *Engine) Derive() *Engine {
	return &Engine{
		Synopses:       e.Synopses,
		Docs:           e.backend(),
		Access:         e.Access,
		Tax:            e.Tax,
		SynopsisWeight: e.SynopsisWeight,
		DocWeight:      e.DocWeight,
		DisableScoping: e.DisableScoping,
		Metrics:        e.Metrics,
		Resilient:      e.Resilient,
		Faults:         e.Faults,
		Shards:         e.Shards,
	}
}

// backend returns the current document backend: the atomically swapped one
// when compaction has republished it, the construction-time Docs otherwise.
func (e *Engine) backend() *siapi.Engine {
	if d := e.docs.Load(); d != nil {
		return d
	}
	return e.Docs
}

// SwapDocs atomically replaces the document backend. Searches in flight
// keep the engine they already loaded; new searches see the replacement.
// This is how System.Compact swaps the rebuilt index under live queries
// without a lock on the search path.
func (e *Engine) SwapDocs(d *siapi.Engine) { e.docs.Store(d) }

// Search stage labels used in search_stage_seconds.
const (
	StageCompose  = "compose"  // form decomposition + taxonomy resolution
	StageSynopsis = "synopsis" // synopsis (business context) query
	StageSIAPI    = "siapi"    // semantic document index query
	StageMerge    = "merge"    // rank combination and sort
	StageAccess   = "access"   // per-activity access filtering
)

// stageHist returns the histogram for one search stage.
func (e *Engine) stageHist(stage string) *obs.Histogram {
	return e.Metrics.Histogram("search_stage_seconds", nil, "stage", stage)
}

// observeStage records one stage duration into the stage histogram. When
// the request is traced, the observation carries the trace ID as an
// exemplar, so a p99 bucket on the dashboard links to a concrete trace.
func (e *Engine) observeStage(ctx context.Context, stage string, d time.Duration) {
	e.stageHist(stage).ObserveDurationWithExemplar(d, trace.ID(ctx))
}

func (e *Engine) weights() (float64, float64) {
	sw, dw := e.SynopsisWeight, e.DocWeight
	if sw == 0 {
		sw = 1
	}
	if dw == 0 {
		dw = 1
	}
	return sw, dw
}

// Search runs the business-activity driven search algorithm for the user.
func (e *Engine) Search(user access.User, q FormQuery) (Result, error) {
	return e.SearchCtx(context.Background(), user, q)
}

// SearchCtx is Search under the caller's context: when ctx carries a trace
// (started by the web middleware, explain mode, or eilbench), every stage
// of the Figure 1 algorithm records a child span, and the stage histograms
// receive trace-ID exemplars.
func (e *Engine) SearchCtx(ctx context.Context, user access.User, q FormQuery) (Result, error) {
	total := obs.StartTimer()
	e.Metrics.Counter("search_total").Inc()
	res, err := e.search(ctx, user, q)
	e.Metrics.Histogram("search_seconds", nil).ObserveDurationWithExemplar(total.Elapsed(), trace.ID(ctx))
	if err != nil {
		e.Metrics.Counter("search_errors_total").Inc()
		return res, err
	}
	if res.UnscopedFallback {
		e.Metrics.Counter("search_fallback_total").Inc()
	} else {
		e.Metrics.Counter("search_scoped_total").Inc()
	}
	if len(res.Activities) == 0 {
		e.Metrics.Counter("search_zero_results_total").Inc()
	}
	return res, nil
}

func (e *Engine) search(ctx context.Context, user access.User, q FormQuery) (Result, error) {
	if len(e.Shards) > 0 {
		return e.searchSharded(ctx, user, q)
	}
	var res Result
	// Resilience envelope: the search budget becomes a context deadline
	// that every backend attempt slices (see resilience.go), and an
	// engine-configured fault injector (chaos benching) rides the context
	// to the instrumented call sites.
	if r := e.resilience(); r.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.Budget)
		defer cancel()
	}
	if e.Faults != nil {
		ctx = fault.With(ctx, e.Faults)
	}
	// degrade records one backend outage survived by serving a reduced
	// answer: result flags, per-cause counter, and root-span attributes
	// (so ?explain=1 shows what was lost and why).
	degrade := func(cause string, err error) {
		res.Degraded = true
		res.DegradedCauses = append(res.DegradedCauses, cause)
		e.Metrics.Counter("search_degraded_total", "cause", cause).Inc()
		root := trace.FromContext(ctx)
		root.SetBool("degraded", true)
		root.Set("degraded_"+cause, err.Error())
	}

	// Step 1-2: compose the synopsis query from form input.
	compose := obs.StartTimer()
	_, csp := trace.StartSpan(ctx, "search.compose")
	sq, explain := e.composeSynopsisQuery(q)
	res.Explain = append(res.Explain, explain...)
	if q.Tower != "" && e.Tax != nil {
		if _, _, ok := e.Tax.Resolve(q.Tower); !ok {
			for _, s := range e.Tax.Suggest(q.Tower, 3) {
				res.Suggestions = append(res.Suggestions, s.Surface)
			}
		}
	}
	// Step 3: compose the SIAPI query.
	dq := e.composeSIAPIQuery(q)
	if !dq.Empty() {
		res.Explain = append(res.Explain, fmt.Sprintf("SIAPI query on fields %v", dq.Fields))
	}
	if csp != nil {
		csp.SetBool("has_concepts", !sq.Empty())
		csp.SetBool("has_text", !dq.Empty())
		csp.SetInt("suggestions", len(res.Suggestions))
		csp.End()
	}
	e.observeStage(ctx, StageCompose, compose.Elapsed())

	// Step 4: execute the synopsis query, behind the resilience wrapper:
	// breaker admission, budget-sliced attempt deadlines, bounded retry.
	var synHits []synopsis.Hit
	synDown := false
	if !sq.Empty() {
		t := obs.StartTimer()
		sctx, sp := trace.StartSpan(ctx, "search.synopsis")
		type synOut struct {
			hits   []synopsis.Hit
			cached bool
		}
		out, err := resilientCall(sctx, e, BackendSynopsis, func(c context.Context) (synOut, error) {
			hits, cached, err := e.synopsisSearch(c, sq)
			return synOut{hits, cached}, err
		})
		if sp != nil {
			sp.SetBool("cache_hit", out.cached)
			sp.SetInt("hits", len(out.hits))
			if err != nil {
				sp.Set("error", err.Error())
			}
			sp.End()
		}
		e.observeStage(ctx, StageSynopsis, t.Elapsed())
		switch {
		case err == nil:
			synHits = out.hits
			res.Explain = append(res.Explain, fmt.Sprintf("synopsis query matched %d activities", len(synHits)))
		case dq.Empty():
			// Concept-only query with the synopsis store down: there is no
			// text to fall back to, so the outage surfaces as unavailable.
			return res, err
		default:
			// Harvest degradation (Fox & Brewer): drop the business-context
			// half, keep answering from the full-text index unscoped.
			synDown = true
			degrade(BackendSynopsis, err)
			res.Explain = append(res.Explain, "synopsis backend unavailable; degraded to unscoped full-text")
		}
	}

	synByDeal := map[string]synopsis.Hit{}
	maxSyn := 0.0
	for _, h := range synHits {
		synByDeal[h.DealID] = h
		if h.Score > maxSyn {
			maxSyn = h.Score
		}
	}

	acts := map[string]*combinedAct{}

	addSyn := func(h synopsis.Hit) {
		c := acts[h.DealID]
		if c == nil {
			c = &combinedAct{}
			acts[h.DealID] = c
		}
		if maxSyn > 0 {
			c.syn = h.Score / maxSyn
		}
		c.tws = h.MatchedTowers
	}

	// siapiStage runs one SIAPI activity search under a traced child span,
	// behind the resilience wrapper.
	siapiStage := func(scoped bool) ([]siapi.ActivityHit, error) {
		perDeal := q.DocsPerDeal
		if perDeal <= 0 {
			perDeal = 5
		}
		t := obs.StartTimer()
		sctx, sp := trace.StartSpan(ctx, "search.siapi")
		docActs, err := resilientCall(sctx, e, BackendSIAPI, func(c context.Context) ([]siapi.ActivityHit, error) {
			return e.backend().TrySearchActivitiesCtx(c, dq, perDeal)
		})
		if sp != nil {
			sp.SetBool("scoped", scoped)
			sp.SetInt("scope_deals", len(dq.Deals))
			sp.SetInt("activities", len(docActs))
			if err != nil {
				sp.Set("error", err.Error())
			}
			sp.End()
		}
		e.observeStage(ctx, StageSIAPI, t.Elapsed())
		return docActs, err
	}

	switch {
	case len(synHits) > 0: // steps 5-11
		if !dq.Empty() {
			// Step 8: scope the document search to the activities in S.
			if !e.DisableScoping {
				for _, h := range synHits {
					dq.Deals = append(dq.Deals, h.DealID)
				}
			}
			docActs, err := siapiStage(!e.DisableScoping)
			if err != nil {
				// Index down with the synopsis side healthy: serve the
				// synopsis-plus-contacts tier (R <- S, no documents) —
				// the same reduced answer the paper's access control gives
				// unauthorized users, here caused by an outage.
				degrade(BackendSIAPI, err)
				res.Explain = append(res.Explain, "document index unavailable; degraded to synopsis-plus-contacts")
				for _, h := range synHits {
					addSyn(h)
				}
				break
			}
			for _, da := range docActs {
				sh, inS := synByDeal[da.DealID]
				if !inS {
					continue // unscoped ablation: intersect to keep semantics
				}
				addSyn(sh)
				acts[da.DealID].doc = da.Score
				acts[da.DealID].dcs = da.Docs
			}
			res.Explain = append(res.Explain, fmt.Sprintf("scoped SIAPI query over %d activities", len(synHits)))
		} else {
			// Step 11: R <- S.
			for _, h := range synHits {
				addSyn(h)
			}
		}
	case !dq.Empty(): // steps 13-15: unscoped SIAPI fallback
		if !sq.Empty() && !synDown {
			// The synopsis query ran and matched nothing: the concept
			// criteria are hard filters, so the conjunction is empty.
			res.Explain = append(res.Explain, "concept criteria matched no activities")
			break
		}
		docActs, err := siapiStage(false)
		if err != nil {
			// Every serving tier is gone (text side down, and any concept
			// side already failed above): surface the outage.
			return res, err
		}
		for _, da := range docActs {
			acts[da.DealID] = &combinedAct{doc: da.Score, dcs: da.Docs}
		}
		res.UnscopedFallback = true
		if synDown {
			res.Explain = append(res.Explain, "unscoped SIAPI query (synopsis degraded)")
		} else {
			res.Explain = append(res.Explain, "unscoped SIAPI query (no concept criteria)")
		}
	default: // step 17: R <- empty set
		return res, nil
	}

	e.finishSearch(ctx, user, q, &res, acts, degrade)
	return res, nil
}

// combinedAct accumulates one activity's rank components across stages:
// the normalized synopsis score, the normalized document score, the
// matched towers, and the per-activity document hits.
type combinedAct struct {
	syn float64
	doc float64
	tws []string
	dcs []siapi.DocHit
}

// activityWorse reports whether a ranks strictly below b: lower combined
// score, or equal score and higher deal ID. It is the strict total order
// behind both the full sort and the bounded top-k heap, so limited and
// unlimited searches agree exactly.
func activityWorse(a, b *Activity) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.DealID > b.DealID
}

// topKActivities ranks activities by descending combined score (ties by
// ascending deal ID). A positive limit selects the top-k through a
// bounded worst-at-root min-heap — the coordinator-side merge of the
// sharded search — without sorting the full candidate set; the selected
// prefix is identical to sort-then-truncate.
func topKActivities(all []Activity, limit int) []Activity {
	if limit <= 0 || len(all) <= limit {
		sort.Slice(all, func(i, j int) bool { return activityWorse(&all[j], &all[i]) })
		return all
	}
	h := make([]Activity, 0, limit)
	for i := range all {
		if len(h) < limit {
			h = append(h, all[i])
			for c := len(h) - 1; c > 0; {
				parent := (c - 1) / 2
				if !activityWorse(&h[c], &h[parent]) {
					break
				}
				h[c], h[parent] = h[parent], h[c]
				c = parent
			}
			continue
		}
		if !activityWorse(&h[0], &all[i]) {
			continue
		}
		h[0] = all[i]
		for c := 0; ; {
			worst := c
			if l := 2*c + 1; l < len(h) && activityWorse(&h[l], &h[worst]) {
				worst = l
			}
			if r := 2*c + 2; r < len(h) && activityWorse(&h[r], &h[worst]) {
				worst = r
			}
			if worst == c {
				break
			}
			h[c], h[worst] = h[worst], h[c]
			c = worst
		}
	}
	sort.Slice(h, func(i, j int) bool { return activityWorse(&h[j], &h[i]) })
	return h
}

// synopsesFor returns the synopsis store owning dealID: the single store
// on a monolithic engine, the owning shard's on a sharded one.
func (e *Engine) synopsesFor(dealID string) *synopsis.Store {
	if len(e.Shards) == 0 {
		return e.Synopses
	}
	return e.Shards[ShardFor(dealID, len(e.Shards))].Synopses
}

// finishSearch runs the last two Figure-1 stages shared by the monolithic
// and sharded paths: rank combination with bounded top-k selection (step
// 18) and per-activity access filtering (step 19).
func (e *Engine) finishSearch(ctx context.Context, user access.User, q FormQuery, res *Result, acts map[string]*combinedAct, degrade func(cause string, err error)) {
	// Step 18: rank by the combined score.
	merge := obs.StartTimer()
	_, msp := trace.StartSpan(ctx, "search.combine")
	sw, dw := e.weights()
	all := make([]Activity, 0, len(acts))
	for dealID, c := range acts {
		all = append(all, Activity{
			DealID:        dealID,
			SynopsisScore: c.syn,
			DocScore:      c.doc,
			Score:         sw*c.syn + dw*c.doc,
			MatchedTowers: c.tws,
			Docs:          c.dcs,
		})
	}
	ranked := len(all)
	res.Activities = topKActivities(all, q.Limit)
	if msp != nil {
		msp.SetInt("combined", ranked)
		msp.SetBool("limit_truncated", ranked > len(res.Activities))
		msp.End()
	}
	e.observeStage(ctx, StageMerge, merge.Elapsed())

	// Step 19: present with proper access control.
	filter := obs.StartTimer()
	actx, asp := trace.StartSpan(ctx, "search.access")
	var levels []access.Level
	if e.Access != nil {
		ids := make([]string, len(res.Activities))
		for i, a := range res.Activities {
			ids[i] = a.DealID
		}
		var err error
		levels, err = e.Access.TryLevelsFor(actx, user, ids)
		if err != nil {
			// Entitlement resolution failed: degrade every activity to the
			// community-safe synopsis tier — contacts stay reachable, but
			// no documents are exposed on a guess.
			degrade(BackendAccess, err)
			res.Explain = append(res.Explain, "access control unavailable; degraded to synopsis-only")
			levels = make([]access.Level, len(ids))
			for i := range levels {
				levels[i] = access.LevelSynopsis
			}
		}
	}
	out := res.Activities[:0]
	synopsisOnly := 0
	for i, a := range res.Activities {
		level := access.LevelFull
		if levels != nil {
			level = levels[i]
		}
		a.Level = level
		switch {
		case level == access.LevelNone:
			continue // invisible
		case level == access.LevelSynopsis:
			a.Docs = nil // synopsis-plus-contacts fallback
			synopsisOnly++
		}
		deal, err := e.synopsesFor(a.DealID).Get(a.DealID)
		if err == nil {
			a.Synopsis = &deal
		}
		out = append(out, a)
	}
	if asp != nil {
		asp.SetInt("in", len(res.Activities))
		asp.SetInt("visible", len(out))
		asp.SetInt("synopsis_only", synopsisOnly)
		asp.End()
	}
	res.Activities = out
	e.observeStage(ctx, StageAccess, filter.Elapsed())
}

// composeSynopsisQuery resolves concept criteria through the taxonomy and
// builds the structured query (Figure 1 step 2).
func (e *Engine) composeSynopsisQuery(q FormQuery) (synopsis.Query, []string) {
	var sq synopsis.Query
	var explain []string
	if q.Tower != "" && e.Tax != nil {
		tower, sub, ok := e.Tax.Resolve(q.Tower)
		if ok {
			sq.Tower = tower
			if sub != "" {
				sq.SubTower = sub
			}
			explain = append(explain, fmt.Sprintf("find deals with %s tower", tower))
		} else {
			// Unknown concept: fall back to the literal string so the
			// query simply matches nothing rather than erroring.
			sq.Tower = q.Tower
			explain = append(explain, fmt.Sprintf("find deals with unrecognized tower %q", q.Tower))
		}
	} else if q.Tower != "" {
		sq.Tower = q.Tower
	}
	if q.SubTower != "" {
		if e.Tax != nil {
			if tower, sub, ok := e.Tax.Resolve(q.SubTower); ok && sub != "" {
				sq.SubTower = sub
				if sq.Tower == "" {
					sq.Tower = tower
				}
			} else {
				sq.SubTower = q.SubTower
			}
		} else {
			sq.SubTower = q.SubTower
		}
	}
	sq.Industry = q.Industry
	sq.Consultant = q.Consultant
	sq.Geography = q.Geography
	sq.Country = q.Country
	sq.PersonName = q.PersonName
	sq.PersonOrg = q.PersonOrg
	if q.PersonName != "" || q.PersonOrg != "" {
		explain = append(explain, fmt.Sprintf("with people matching name=%q org=%q", q.PersonName, q.PersonOrg))
	}
	return sq, explain
}

// composeSIAPIQuery maps the text predicates onto index fields (Figure 1
// step 3).
func (e *Engine) composeSIAPIQuery(q FormQuery) siapi.Query {
	dq := siapi.Query{
		All:   q.AllWords,
		Exact: q.ExactPhrase,
		Any:   q.AnyWords,
		None:  q.NoneWords,
	}
	switch q.Target {
	case TargetTechSolution:
		dq.Fields = []string{"techsolution"}
	case TargetWinStrategy:
		dq.Fields = []string{"winstrategy"}
	case TargetTitle:
		dq.Fields = []string{siapi.FieldTitle}
	default:
		dq.Fields = nil // body + title
	}
	return dq
}

// Explore searches the documents of one business activity — the drill-down
// the methodology describes ("the user may further explore most relevant
// documents within a business activity based on its synopsis"). The user
// needs document-level access to the activity.
func (e *Engine) Explore(user access.User, dealID string, q FormQuery) ([]siapi.DocHit, error) {
	return e.ExploreCtx(context.Background(), user, dealID, q)
}

// ExploreCtx is Explore under the caller's context; the document search
// records spans when ctx carries a trace.
func (e *Engine) ExploreCtx(ctx context.Context, user access.User, dealID string, q FormQuery) ([]siapi.DocHit, error) {
	if e.Access != nil && !e.Access.CanSeeDocuments(user, dealID) {
		return nil, fmt.Errorf("core: %w for documents of %s", access.ErrDenied, dealID)
	}
	dq := e.composeSIAPIQuery(q)
	if dq.Empty() {
		return nil, fmt.Errorf("core: explore requires text criteria")
	}
	dq.Deals = []string{dealID}
	limit := q.Limit
	if limit <= 0 {
		limit = 20
	}
	if r := e.resilience(); r.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.Budget)
		defer cancel()
	}
	if e.Faults != nil {
		ctx = fault.With(ctx, e.Faults)
	}
	if len(e.Shards) > 0 {
		return e.exploreSharded(ctx, dealID, dq, limit)
	}
	return resilientCall(ctx, e, BackendSIAPI, func(c context.Context) ([]siapi.DocHit, error) {
		return e.backend().TrySearchCtx(c, dq, limit)
	})
}
