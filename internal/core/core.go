// Package core implements EIL's primary contribution: business-activity
// driven search (Figure 1 of the paper). A form-based query is decomposed
// into a synopsis query (directed SQL against the extracted business
// context) and a SIAPI query (against the semantic document index); the
// synopsis result set scopes the document search to relevant business
// activities; the two rankings are combined; and access control decides,
// per activity, whether the user sees documents, only the synopsis with its
// contact list, or nothing.
package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/access"
	"repro/internal/lru"
	"repro/internal/obs"
	"repro/internal/siapi"
	"repro/internal/synopsis"
	"repro/internal/taxonomy"
	"repro/internal/trace"
)

// TextTarget selects where the form's text predicates search — "anywhere in
// EWB" or a specific synopsis section (Figure 8's drop-down).
type TextTarget string

// Text targets supported by the form.
const (
	TargetAnywhere     TextTarget = "anywhere"     // body + title of all documents
	TargetTechSolution TextTarget = "techsolution" // technology solution overviews
	TargetWinStrategy  TextTarget = "winstrategy"  // win strategy statements
	TargetTitle        TextTarget = "title"        // document titles only
)

// FormQuery mirrors the EIL search editor (Figure 8): concept criteria,
// text predicates, and people criteria, all optional and conjunctive.
type FormQuery struct {
	// Tower accepts any taxonomy surface form (canonical name, acronym, or
	// alias); sub-tower forms set the sub-tower criterion automatically.
	Tower    string
	SubTower string

	Industry   string
	Consultant string
	Geography  string
	Country    string

	AllWords    []string
	ExactPhrase string
	AnyWords    []string
	NoneWords   []string
	Target      TextTarget

	PersonName string
	PersonOrg  string

	// Limit bounds the number of returned activities (0 = all);
	// DocsPerDeal bounds documents listed per activity (0 = 5).
	Limit       int
	DocsPerDeal int
}

// HasConcepts reports whether any synopsis criterion is set.
func (q FormQuery) HasConcepts() bool {
	return q.Tower != "" || q.SubTower != "" || q.Industry != "" || q.Consultant != "" ||
		q.Geography != "" || q.Country != "" || q.PersonName != "" || q.PersonOrg != ""
}

// HasText reports whether any text predicate is set.
func (q FormQuery) HasText() bool {
	return len(q.AllWords) > 0 || q.ExactPhrase != "" || len(q.AnyWords) > 0 || len(q.NoneWords) > 0
}

// Activity is one business activity in the result set — the unit of
// presentation in EIL ("a search query returns a set of the most relevant
// business activities first rather than documents or links").
type Activity struct {
	DealID string
	// Score combines the synopsis ranking and the normalized document
	// ranking (Figure 1 step 18).
	Score float64
	// SynopsisScore and DocScore are the per-side normalized components.
	SynopsisScore float64
	DocScore      float64
	// MatchedTowers lists scope towers that satisfied the tower criterion,
	// significance order (Figure 5's bolded towers).
	MatchedTowers []string
	// Level is the caller's access level for this activity.
	Level access.Level
	// Synopsis is populated when Level >= LevelSynopsis.
	Synopsis *synopsis.Deal
	// Docs is populated when Level == LevelFull and the query had text
	// predicates.
	Docs []siapi.DocHit
}

// Result is a complete search response.
type Result struct {
	Activities []Activity
	// UnscopedFallback is true when the synopsis query was empty or
	// matched nothing and the SIAPI query ran unscoped (Figure 1 step 14).
	UnscopedFallback bool
	// Explain carries one line per executed stage, for the UI's query
	// summary ("Find deals with ... tower; contain ... anywhere in EWB").
	Explain []string
	// Suggestions carries "did you mean" vocabulary matches when a tower
	// criterion failed to resolve in the taxonomy.
	Suggestions []string
}

// Engine wires the stores together. All fields are required except Access
// (nil means no access control: everyone sees everything — used by offline
// evaluation) and Tax (nil disables concept-form resolution).
type Engine struct {
	Synopses *synopsis.Store
	Docs     *siapi.Engine
	Access   *access.Controller
	Tax      *taxonomy.Taxonomy

	// SynopsisWeight and DocWeight set the rank-combination mix; zero
	// values default to 1.0 and 1.0.
	SynopsisWeight float64
	DocWeight      float64
	// DisableScoping makes the SIAPI query run unscoped even when the
	// synopsis query matched (the scoping ablation). Results are then
	// intersected with S anyway to preserve semantics, so the ablation
	// measures the cost, not a semantic change.
	DisableScoping bool
	// Metrics, when set, receives per-stage search timings and outcome
	// counters (search_* metric names); nil disables recording.
	Metrics *obs.Registry

	// synMemo lazily memoizes synopsis query results keyed on the store's
	// generation counter (see memo.go).
	synOnce sync.Once
	synMemo *lru.Cache[string, []synopsis.Hit]
}

// Derive returns a new Engine sharing this engine's stores and
// configuration. Engines must not be copied by value (they carry memo
// state); Derive is the supported way to tweak settings — ablations flip
// DisableScoping or the rank weights on a derived engine.
func (e *Engine) Derive() *Engine {
	return &Engine{
		Synopses:       e.Synopses,
		Docs:           e.Docs,
		Access:         e.Access,
		Tax:            e.Tax,
		SynopsisWeight: e.SynopsisWeight,
		DocWeight:      e.DocWeight,
		DisableScoping: e.DisableScoping,
		Metrics:        e.Metrics,
	}
}

// Search stage labels used in search_stage_seconds.
const (
	StageCompose  = "compose"  // form decomposition + taxonomy resolution
	StageSynopsis = "synopsis" // synopsis (business context) query
	StageSIAPI    = "siapi"    // semantic document index query
	StageMerge    = "merge"    // rank combination and sort
	StageAccess   = "access"   // per-activity access filtering
)

// stageHist returns the histogram for one search stage.
func (e *Engine) stageHist(stage string) *obs.Histogram {
	return e.Metrics.Histogram("search_stage_seconds", nil, "stage", stage)
}

// observeStage records one stage duration into the stage histogram. When
// the request is traced, the observation carries the trace ID as an
// exemplar, so a p99 bucket on the dashboard links to a concrete trace.
func (e *Engine) observeStage(ctx context.Context, stage string, d time.Duration) {
	e.stageHist(stage).ObserveDurationWithExemplar(d, trace.ID(ctx))
}

func (e *Engine) weights() (float64, float64) {
	sw, dw := e.SynopsisWeight, e.DocWeight
	if sw == 0 {
		sw = 1
	}
	if dw == 0 {
		dw = 1
	}
	return sw, dw
}

// Search runs the business-activity driven search algorithm for the user.
func (e *Engine) Search(user access.User, q FormQuery) (Result, error) {
	return e.SearchCtx(context.Background(), user, q)
}

// SearchCtx is Search under the caller's context: when ctx carries a trace
// (started by the web middleware, explain mode, or eilbench), every stage
// of the Figure 1 algorithm records a child span, and the stage histograms
// receive trace-ID exemplars.
func (e *Engine) SearchCtx(ctx context.Context, user access.User, q FormQuery) (Result, error) {
	total := obs.StartTimer()
	e.Metrics.Counter("search_total").Inc()
	res, err := e.search(ctx, user, q)
	e.Metrics.Histogram("search_seconds", nil).ObserveDurationWithExemplar(total.Elapsed(), trace.ID(ctx))
	if err != nil {
		e.Metrics.Counter("search_errors_total").Inc()
		return res, err
	}
	if res.UnscopedFallback {
		e.Metrics.Counter("search_fallback_total").Inc()
	} else {
		e.Metrics.Counter("search_scoped_total").Inc()
	}
	if len(res.Activities) == 0 {
		e.Metrics.Counter("search_zero_results_total").Inc()
	}
	return res, nil
}

func (e *Engine) search(ctx context.Context, user access.User, q FormQuery) (Result, error) {
	var res Result
	// Step 1-2: compose the synopsis query from form input.
	compose := obs.StartTimer()
	_, csp := trace.StartSpan(ctx, "search.compose")
	sq, explain := e.composeSynopsisQuery(q)
	res.Explain = append(res.Explain, explain...)
	if q.Tower != "" && e.Tax != nil {
		if _, _, ok := e.Tax.Resolve(q.Tower); !ok {
			for _, s := range e.Tax.Suggest(q.Tower, 3) {
				res.Suggestions = append(res.Suggestions, s.Surface)
			}
		}
	}
	// Step 3: compose the SIAPI query.
	dq := e.composeSIAPIQuery(q)
	if !dq.Empty() {
		res.Explain = append(res.Explain, fmt.Sprintf("SIAPI query on fields %v", dq.Fields))
	}
	if csp != nil {
		csp.SetBool("has_concepts", !sq.Empty())
		csp.SetBool("has_text", !dq.Empty())
		csp.SetInt("suggestions", len(res.Suggestions))
		csp.End()
	}
	e.observeStage(ctx, StageCompose, compose.Elapsed())

	// Step 4: execute the synopsis query.
	var synHits []synopsis.Hit
	var err error
	if !sq.Empty() {
		t := obs.StartTimer()
		sctx, sp := trace.StartSpan(ctx, "search.synopsis")
		var cached bool
		synHits, cached, err = e.synopsisSearch(sctx, sq)
		if sp != nil {
			sp.SetBool("cache_hit", cached)
			sp.SetInt("hits", len(synHits))
			sp.End()
		}
		e.observeStage(ctx, StageSynopsis, t.Elapsed())
		if err != nil {
			return res, fmt.Errorf("core: synopsis query: %w", err)
		}
		res.Explain = append(res.Explain, fmt.Sprintf("synopsis query matched %d activities", len(synHits)))
	}

	synByDeal := map[string]synopsis.Hit{}
	maxSyn := 0.0
	for _, h := range synHits {
		synByDeal[h.DealID] = h
		if h.Score > maxSyn {
			maxSyn = h.Score
		}
	}

	type combined struct {
		syn float64
		doc float64
		tws []string
		dcs []siapi.DocHit
	}
	acts := map[string]*combined{}

	addSyn := func(h synopsis.Hit) {
		c := acts[h.DealID]
		if c == nil {
			c = &combined{}
			acts[h.DealID] = c
		}
		if maxSyn > 0 {
			c.syn = h.Score / maxSyn
		}
		c.tws = h.MatchedTowers
	}

	// siapiStage runs one SIAPI activity search under a traced child span.
	siapiStage := func(scoped bool) []siapi.ActivityHit {
		perDeal := q.DocsPerDeal
		if perDeal <= 0 {
			perDeal = 5
		}
		t := obs.StartTimer()
		sctx, sp := trace.StartSpan(ctx, "search.siapi")
		docActs := e.Docs.SearchActivitiesCtx(sctx, dq, perDeal)
		if sp != nil {
			sp.SetBool("scoped", scoped)
			sp.SetInt("scope_deals", len(dq.Deals))
			sp.SetInt("activities", len(docActs))
			sp.End()
		}
		e.observeStage(ctx, StageSIAPI, t.Elapsed())
		return docActs
	}

	switch {
	case len(synHits) > 0: // steps 5-11
		if !dq.Empty() {
			// Step 8: scope the document search to the activities in S.
			if !e.DisableScoping {
				for _, h := range synHits {
					dq.Deals = append(dq.Deals, h.DealID)
				}
			}
			for _, da := range siapiStage(!e.DisableScoping) {
				sh, inS := synByDeal[da.DealID]
				if !inS {
					continue // unscoped ablation: intersect to keep semantics
				}
				addSyn(sh)
				acts[da.DealID].doc = da.Score
				acts[da.DealID].dcs = da.Docs
			}
			res.Explain = append(res.Explain, fmt.Sprintf("scoped SIAPI query over %d activities", len(synHits)))
		} else {
			// Step 11: R <- S.
			for _, h := range synHits {
				addSyn(h)
			}
		}
	case !dq.Empty(): // steps 13-15: unscoped SIAPI fallback
		if !sq.Empty() {
			// The synopsis query ran and matched nothing: the concept
			// criteria are hard filters, so the conjunction is empty.
			res.Explain = append(res.Explain, "concept criteria matched no activities")
			break
		}
		for _, da := range siapiStage(false) {
			acts[da.DealID] = &combined{doc: da.Score, dcs: da.Docs}
		}
		res.UnscopedFallback = true
		res.Explain = append(res.Explain, "unscoped SIAPI query (no concept criteria)")
	default: // step 17: R <- empty set
		return res, nil
	}

	// Step 18: rank by the combined score.
	merge := obs.StartTimer()
	_, msp := trace.StartSpan(ctx, "search.combine")
	sw, dw := e.weights()
	for dealID, c := range acts {
		a := Activity{
			DealID:        dealID,
			SynopsisScore: c.syn,
			DocScore:      c.doc,
			Score:         sw*c.syn + dw*c.doc,
			MatchedTowers: c.tws,
			Docs:          c.dcs,
		}
		res.Activities = append(res.Activities, a)
	}
	sort.Slice(res.Activities, func(i, j int) bool {
		if res.Activities[i].Score != res.Activities[j].Score {
			return res.Activities[i].Score > res.Activities[j].Score
		}
		return res.Activities[i].DealID < res.Activities[j].DealID
	})
	ranked := len(res.Activities)
	if q.Limit > 0 && len(res.Activities) > q.Limit {
		res.Activities = res.Activities[:q.Limit]
	}
	if msp != nil {
		msp.SetInt("combined", ranked)
		msp.SetBool("limit_truncated", ranked > len(res.Activities))
		msp.End()
	}
	e.observeStage(ctx, StageMerge, merge.Elapsed())

	// Step 19: present with proper access control.
	filter := obs.StartTimer()
	actx, asp := trace.StartSpan(ctx, "search.access")
	var levels []access.Level
	if e.Access != nil {
		ids := make([]string, len(res.Activities))
		for i, a := range res.Activities {
			ids[i] = a.DealID
		}
		levels = e.Access.LevelsFor(actx, user, ids)
	}
	out := res.Activities[:0]
	synopsisOnly := 0
	for i, a := range res.Activities {
		level := access.LevelFull
		if levels != nil {
			level = levels[i]
		}
		a.Level = level
		switch {
		case level == access.LevelNone:
			continue // invisible
		case level == access.LevelSynopsis:
			a.Docs = nil // synopsis-plus-contacts fallback
			synopsisOnly++
		}
		deal, err := e.Synopses.Get(a.DealID)
		if err == nil {
			a.Synopsis = &deal
		}
		out = append(out, a)
	}
	if asp != nil {
		asp.SetInt("in", len(res.Activities))
		asp.SetInt("visible", len(out))
		asp.SetInt("synopsis_only", synopsisOnly)
		asp.End()
	}
	res.Activities = out
	e.observeStage(ctx, StageAccess, filter.Elapsed())
	return res, nil
}

// composeSynopsisQuery resolves concept criteria through the taxonomy and
// builds the structured query (Figure 1 step 2).
func (e *Engine) composeSynopsisQuery(q FormQuery) (synopsis.Query, []string) {
	var sq synopsis.Query
	var explain []string
	if q.Tower != "" && e.Tax != nil {
		tower, sub, ok := e.Tax.Resolve(q.Tower)
		if ok {
			sq.Tower = tower
			if sub != "" {
				sq.SubTower = sub
			}
			explain = append(explain, fmt.Sprintf("find deals with %s tower", tower))
		} else {
			// Unknown concept: fall back to the literal string so the
			// query simply matches nothing rather than erroring.
			sq.Tower = q.Tower
			explain = append(explain, fmt.Sprintf("find deals with unrecognized tower %q", q.Tower))
		}
	} else if q.Tower != "" {
		sq.Tower = q.Tower
	}
	if q.SubTower != "" {
		if e.Tax != nil {
			if tower, sub, ok := e.Tax.Resolve(q.SubTower); ok && sub != "" {
				sq.SubTower = sub
				if sq.Tower == "" {
					sq.Tower = tower
				}
			} else {
				sq.SubTower = q.SubTower
			}
		} else {
			sq.SubTower = q.SubTower
		}
	}
	sq.Industry = q.Industry
	sq.Consultant = q.Consultant
	sq.Geography = q.Geography
	sq.Country = q.Country
	sq.PersonName = q.PersonName
	sq.PersonOrg = q.PersonOrg
	if q.PersonName != "" || q.PersonOrg != "" {
		explain = append(explain, fmt.Sprintf("with people matching name=%q org=%q", q.PersonName, q.PersonOrg))
	}
	return sq, explain
}

// composeSIAPIQuery maps the text predicates onto index fields (Figure 1
// step 3).
func (e *Engine) composeSIAPIQuery(q FormQuery) siapi.Query {
	dq := siapi.Query{
		All:   q.AllWords,
		Exact: q.ExactPhrase,
		Any:   q.AnyWords,
		None:  q.NoneWords,
	}
	switch q.Target {
	case TargetTechSolution:
		dq.Fields = []string{"techsolution"}
	case TargetWinStrategy:
		dq.Fields = []string{"winstrategy"}
	case TargetTitle:
		dq.Fields = []string{siapi.FieldTitle}
	default:
		dq.Fields = nil // body + title
	}
	return dq
}

// Explore searches the documents of one business activity — the drill-down
// the methodology describes ("the user may further explore most relevant
// documents within a business activity based on its synopsis"). The user
// needs document-level access to the activity.
func (e *Engine) Explore(user access.User, dealID string, q FormQuery) ([]siapi.DocHit, error) {
	return e.ExploreCtx(context.Background(), user, dealID, q)
}

// ExploreCtx is Explore under the caller's context; the document search
// records spans when ctx carries a trace.
func (e *Engine) ExploreCtx(ctx context.Context, user access.User, dealID string, q FormQuery) ([]siapi.DocHit, error) {
	if e.Access != nil && !e.Access.CanSeeDocuments(user, dealID) {
		return nil, fmt.Errorf("core: %w for documents of %s", access.ErrDenied, dealID)
	}
	dq := e.composeSIAPIQuery(q)
	if dq.Empty() {
		return nil, fmt.Errorf("core: explore requires text criteria")
	}
	dq.Deals = []string{dealID}
	limit := q.Limit
	if limit <= 0 {
		limit = 20
	}
	return e.Docs.SearchCtx(ctx, dq, limit), nil
}
