package core

// Chaos suite: the engine under injected backend failure. Each scenario
// builds a fresh engine (so the synopsis memo cannot mask a fault with a
// cached success) and drives faults through Engine.Faults — the same path
// -fault-spec uses in the binaries.

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/fault"
	"repro/internal/obs"
)

// chaosEngine builds the two-deal engine with faults and resilience config.
func chaosEngine(t *testing.T, inj *fault.Injector, r Resilience) *Engine {
	t.Helper()
	e := newEngine(t)
	e.Faults = inj
	e.Resilient = r
	e.Metrics = obs.NewRegistry()
	return e
}

// scopedQuery is the standard concept+text query: storage tower, one word
// that matches documents in both deals (so scoping is observable).
func scopedQuery() FormQuery {
	return FormQuery{Tower: "Storage Management Services", AllWords: []string{"replication"}}
}

func TestChaosSynopsisErrorDegradesToUnscopedFullText(t *testing.T) {
	inj := fault.New(7)
	inj.Add(&fault.Rule{Site: fault.SiteSynopsisSearch, Mode: fault.ModeError})
	e := chaosEngine(t, inj, Resilience{})

	res, err := e.Search(anyUser(), scopedQuery())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || len(res.DegradedCauses) != 1 || res.DegradedCauses[0] != BackendSynopsis {
		t.Fatalf("degraded=%v causes=%v", res.Degraded, res.DegradedCauses)
	}
	if !res.UnscopedFallback {
		t.Fatal("degraded search did not fall back to unscoped full-text")
	}
	// Without the concept scope, "replication" matches both deals.
	if got := dealIDs(res); len(got) != 2 {
		t.Fatalf("activities = %v, want both deals from full text", got)
	}
	if e.Metrics.Counter("search_degraded_total", "cause", BackendSynopsis).Value() != 1 {
		t.Fatal("search_degraded_total{cause=synopsis} not counted")
	}
}

func TestChaosSynopsisDownConceptOnlyIsUnavailable(t *testing.T) {
	inj := fault.New(7)
	inj.Add(&fault.Rule{Site: fault.SiteSynopsisSearch, Mode: fault.ModeError})
	e := chaosEngine(t, inj, Resilience{})

	// No text criteria: there is no tier left to serve from.
	_, err := e.Search(anyUser(), FormQuery{Tower: "Storage Management Services"})
	if !IsUnavailable(err) {
		t.Fatalf("err = %v, want backend-unavailable", err)
	}
	var be *BackendError
	if !errors.As(err, &be) || be.Backend != BackendSynopsis {
		t.Fatalf("err = %v, want BackendError{synopsis}", err)
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("injected cause lost from chain: %v", err)
	}
}

func TestChaosSIAPIErrorDegradesToSynopsisPlusContacts(t *testing.T) {
	inj := fault.New(7)
	inj.Add(&fault.Rule{Site: fault.SiteSIAPISearch, Mode: fault.ModeError})
	e := chaosEngine(t, inj, Resilience{})

	res, err := e.Search(anyUser(), scopedQuery())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || len(res.DegradedCauses) != 1 || res.DegradedCauses[0] != BackendSIAPI {
		t.Fatalf("degraded=%v causes=%v", res.Degraded, res.DegradedCauses)
	}
	// R <- S: the concept side still answers, without documents.
	if got := dealIDs(res); len(got) != 1 || got[0] != "DEAL A" {
		t.Fatalf("activities = %v, want the storage deal", got)
	}
	a := res.Activities[0]
	if len(a.Docs) != 0 {
		t.Fatalf("index is down but docs = %+v", a.Docs)
	}
	if a.Synopsis == nil || len(a.Synopsis.People) == 0 {
		t.Fatalf("synopsis-plus-contacts tier missing contacts: %+v", a.Synopsis)
	}
}

func TestChaosBothBackendsDownIsUnavailable(t *testing.T) {
	inj := fault.New(7)
	inj.Add(&fault.Rule{Site: fault.SiteSynopsisSearch, Mode: fault.ModeError})
	inj.Add(&fault.Rule{Site: fault.SiteSIAPISearch, Mode: fault.ModeError})
	e := chaosEngine(t, inj, Resilience{})

	_, err := e.Search(anyUser(), scopedQuery())
	if !IsUnavailable(err) {
		t.Fatalf("err = %v, want backend-unavailable", err)
	}
}

func TestChaosAccessDownDegradesToSynopsisLevel(t *testing.T) {
	inj := fault.New(7)
	inj.Add(&fault.Rule{Site: fault.SiteAccessLevels, Mode: fault.ModeError})
	e := chaosEngine(t, inj, Resilience{})
	e.Access = access.NewController()

	// An admin would normally see documents; with entitlements unreachable
	// everyone is capped at the community-safe synopsis tier.
	res, err := e.Search(anyUser(), scopedQuery())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.DegradedCauses[0] != BackendAccess {
		t.Fatalf("degraded=%v causes=%v", res.Degraded, res.DegradedCauses)
	}
	if len(res.Activities) == 0 {
		t.Fatal("no activities survived the access degrade")
	}
	for _, a := range res.Activities {
		if a.Level != access.LevelSynopsis {
			t.Fatalf("level = %v, want synopsis", a.Level)
		}
		if len(a.Docs) != 0 {
			t.Fatalf("documents exposed without entitlements: %+v", a.Docs)
		}
		if a.Synopsis == nil {
			t.Fatal("synopsis tier missing its synopsis")
		}
	}
}

func TestChaosHangBoundedByBudget(t *testing.T) {
	inj := fault.New(7)
	inj.Add(&fault.Rule{Site: fault.SiteSynopsisSearch, Mode: fault.ModeHang})
	e := chaosEngine(t, inj, Resilience{Budget: 200 * time.Millisecond, MaxRetries: 1})

	start := time.Now()
	res, err := e.Search(anyUser(), scopedQuery())
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("hang was not degraded around: %v", err)
	}
	if !res.Degraded || res.DegradedCauses[0] != BackendSynopsis {
		t.Fatalf("degraded=%v causes=%v", res.Degraded, res.DegradedCauses)
	}
	// Both attempt slices burn, but the reserved headroom runs the unscoped
	// fallback inside the budget. Allow scheduler slack on the upper bound.
	if elapsed < 150*time.Millisecond || elapsed > time.Second {
		t.Fatalf("elapsed = %v, want ~budget (200ms)", elapsed)
	}
}

func TestChaosEverythingHangsStillReturnsWithinBudget(t *testing.T) {
	inj := fault.New(7)
	inj.Add(&fault.Rule{Site: "*", Mode: fault.ModeHang})
	e := chaosEngine(t, inj, Resilience{Budget: 150 * time.Millisecond})

	start := time.Now()
	_, err := e.Search(anyUser(), scopedQuery())
	elapsed := time.Since(start)
	if !IsUnavailable(err) {
		t.Fatalf("err = %v, want backend-unavailable", err)
	}
	if elapsed > time.Second {
		t.Fatalf("elapsed = %v, budget did not bound a total hang", elapsed)
	}
}

func TestChaosSlowBackendWithinBudget(t *testing.T) {
	inj := fault.New(7)
	inj.Add(&fault.Rule{Site: fault.SiteSynopsisSearch, Mode: fault.ModeSlow, Latency: 30 * time.Millisecond})
	e := chaosEngine(t, inj, Resilience{Budget: time.Second})

	start := time.Now()
	res, err := e.Search(anyUser(), scopedQuery())
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatal("a slow-but-alive backend must not count as degraded")
	}
	if got := dealIDs(res); len(got) != 1 || got[0] != "DEAL A" {
		t.Fatalf("activities = %v", got)
	}
	if elapsed < 30*time.Millisecond {
		t.Fatalf("elapsed = %v, injected latency did not apply", elapsed)
	}
}

func TestChaosFlakyBackendRecoversViaRetry(t *testing.T) {
	inj := fault.New(7)
	rule := inj.Add(&fault.Rule{Site: fault.SiteSynopsisSearch, Mode: fault.ModeError, Times: 1})
	e := chaosEngine(t, inj, Resilience{Budget: time.Second, MaxRetries: 2})

	res, err := e.Search(anyUser(), scopedQuery())
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatalf("one flaky call degraded the search: %v", res.DegradedCauses)
	}
	if rule.Fired() != 1 {
		t.Fatalf("rule fired %d times, want 1", rule.Fired())
	}
	if e.Metrics.Counter("search_retry_success_total", "backend", BackendSynopsis).Value() != 1 {
		t.Fatal("retry success not counted")
	}
	// The retried result equals the fault-free one.
	want, err := newEngine(t).Search(anyUser(), scopedQuery())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Activities, want.Activities) {
		t.Fatalf("retried result diverged:\n got %+v\nwant %+v", res.Activities, want.Activities)
	}
}

func TestChaosPartialHarvestTruncatesResults(t *testing.T) {
	inj := fault.New(7)
	inj.Add(&fault.Rule{Site: fault.SiteIndexSearch, Mode: fault.ModePartial, Fraction: 0.5})
	e := chaosEngine(t, inj, Resilience{})

	// Unscoped "replication" naturally matches both deals; a half harvest
	// from the index keeps one. Reduced yield is not an error and not a
	// degraded-mode response — the backend answered.
	res, err := e.Search(anyUser(), FormQuery{AllWords: []string{"replication"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatal("partial harvest must not flag degraded")
	}
	if len(res.Activities) != 1 {
		t.Fatalf("activities = %v, want half the natural harvest", dealIDs(res))
	}
}

func TestChaosBreakerOpensThenRecovers(t *testing.T) {
	inj := fault.New(7)
	inj.Add(&fault.Rule{Site: fault.SiteSynopsisSearch, Mode: fault.ModeError})
	e := chaosEngine(t, inj, Resilience{
		BreakerFailures: 2,
		BreakerCooldown: 60 * time.Millisecond,
	})

	if got := e.BreakerState(BackendSynopsis); got != "closed" {
		t.Fatalf("initial state = %q", got)
	}
	// Two consecutive failures trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := e.Search(anyUser(), scopedQuery()); err != nil {
			t.Fatal(err) // degraded 200, not an error
		}
	}
	if got := e.BreakerState(BackendSynopsis); got != "open" {
		t.Fatalf("state after %d failures = %q, want open", 2, got)
	}
	// While open, calls are rejected without touching the backend.
	before := e.Metrics.Counter("search_breaker_rejected_total", "backend", BackendSynopsis).Value()
	if _, err := e.Search(anyUser(), scopedQuery()); err != nil {
		t.Fatal(err)
	}
	if after := e.Metrics.Counter("search_breaker_rejected_total", "backend", BackendSynopsis).Value(); after != before+1 {
		t.Fatalf("rejected counter %v -> %v, want fail-fast rejection", before, after)
	}
	// After the cooldown the breaker half-opens and a healthy probe closes it.
	time.Sleep(80 * time.Millisecond)
	if got := e.BreakerState(BackendSynopsis); got != "half-open" {
		t.Fatalf("state after cooldown = %q, want half-open", got)
	}
	inj.Reset()
	res, err := e.Search(anyUser(), scopedQuery())
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatalf("recovered backend still degraded: %v", res.DegradedCauses)
	}
	if got := e.BreakerState(BackendSynopsis); got != "closed" {
		t.Fatalf("state after healthy probe = %q, want closed", got)
	}
}

func TestChaosDerivedEngineGetsFreshBreakers(t *testing.T) {
	inj := fault.New(7)
	inj.Add(&fault.Rule{Site: fault.SiteSynopsisSearch, Mode: fault.ModeError})
	e := chaosEngine(t, inj, Resilience{BreakerFailures: 1, BreakerCooldown: time.Hour})

	if _, err := e.Search(anyUser(), scopedQuery()); err != nil {
		t.Fatal(err)
	}
	if got := e.BreakerState(BackendSynopsis); got != "open" {
		t.Fatalf("state = %q, want open", got)
	}
	// Derive copies config but not breaker state: an ablation engine must
	// not inherit the parent's outage history.
	d := e.Derive()
	d.Faults = nil
	if got := d.BreakerState(BackendSynopsis); got != "closed" {
		t.Fatalf("derived breaker state = %q, want closed", got)
	}
	res, err := d.Search(anyUser(), scopedQuery())
	if err != nil || res.Degraded {
		t.Fatalf("derived engine inherited the outage: err=%v degraded=%v", err, res.Degraded)
	}
}

func TestChaosExploreUnavailable(t *testing.T) {
	inj := fault.New(7)
	inj.Add(&fault.Rule{Site: fault.SiteSIAPISearch, Mode: fault.ModeError})
	e := chaosEngine(t, inj, Resilience{})

	_, err := e.Explore(anyUser(), "DEAL A", FormQuery{AllWords: []string{"replication"}})
	if !IsUnavailable(err) {
		t.Fatalf("err = %v, want backend-unavailable", err)
	}
}

// TestChaosDifferentialIdentity is the no-fault differential: the same
// queries through a resilience-configured engine and a zero-config engine
// must produce byte-identical results — the wrapper may not change
// semantics when nothing fails.
func TestChaosDifferentialIdentity(t *testing.T) {
	plain := newEngine(t)
	wrapped := newEngine(t)
	wrapped.Resilient = Resilience{Budget: 2 * time.Second, MaxRetries: 2}

	queries := []FormQuery{
		{Tower: "Storage Management Services"},
		scopedQuery(),
		{AllWords: []string{"replication"}},
		{PersonName: "Sam White", PersonOrg: "ABC"},
		{ExactPhrase: "data replication", Target: TargetTechSolution},
		{Tower: "Network Services", AllWords: []string{"replication"}},
	}
	for _, q := range queries {
		want, errA := plain.Search(anyUser(), q)
		got, errB := wrapped.Search(anyUser(), q)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("q=%+v: err %v vs %v", q, errA, errB)
		}
		if got.Degraded {
			t.Fatalf("q=%+v: degraded with no faults", q)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("q=%+v:\nplain   %+v\nwrapped %+v", q, want, got)
		}
	}
}

func TestChaosNoGoroutineLeakAfterHangs(t *testing.T) {
	inj := fault.New(7)
	inj.Add(&fault.Rule{Site: fault.SiteSynopsisSearch, Mode: fault.ModeHang})
	e := chaosEngine(t, inj, Resilience{Budget: 20 * time.Millisecond})

	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		_, _ = e.SearchCtx(context.Background(), anyUser(), scopedQuery())
	}
	// Abandoned attempts unblock when the search's cancel fires; give the
	// scheduler a moment, then require the goroutine count to settle.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after hang searches", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
