package core

import (
	"testing"

	"repro/internal/access"
	"repro/internal/index"
	"repro/internal/relstore"
	"repro/internal/siapi"
	"repro/internal/synopsis"
	"repro/internal/taxonomy"
	"repro/internal/textproc"
)

// newEngine hand-builds a two-deal system: DEAL A is a storage deal with a
// "data replication" solution document; DEAL B is an EUS deal.
func newEngine(t *testing.T) *Engine {
	t.Helper()
	store, err := synopsis.NewStore(relstore.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	deals := []synopsis.Deal{
		{
			Overview: synopsis.Overview{DealID: "DEAL A", Customer: "Acme", Industry: "Banking"},
			Towers: []synopsis.TowerScope{
				{Tower: "Storage Management Services", Significance: 0.9},
				{Tower: "Disaster Recovery Services", Significance: 0.5},
			},
			People: []synopsis.Contact{{Name: "Jo Park", Role: "CSE", Category: "core deal team"}},
		},
		{
			Overview: synopsis.Overview{DealID: "DEAL B", Customer: "Borealis", Industry: "Insurance"},
			Towers: []synopsis.TowerScope{
				{Tower: "End User Services", SubTower: "Customer Service Center", Significance: 0.8},
				{Tower: "End User Services", Significance: 0.8},
			},
			People: []synopsis.Contact{{Name: "Sam White", Org: "ABC", Role: "CIO", Category: "client team"}},
		},
	}
	for _, d := range deals {
		if err := store.Put(d); err != nil {
			t.Fatal(err)
		}
	}
	ix := index.New(textproc.DefaultAnalyzer)
	docs := []index.Document{
		{ExtID: "DEAL A/sol.deck", Fields: []index.Field{
			{Name: siapi.FieldTitle, Text: "Technical Solution"},
			{Name: siapi.FieldBody, Text: "data replication between sites for storage management"},
			{Name: siapi.FieldDeal, Text: "DEAL A", Keyword: true},
			{Name: "techsolution", Text: "data replication between sites"},
		}, Meta: map[string]string{"deal": "DEAL A"}},
		{ExtID: "DEAL B/notes.txt", Fields: []index.Field{
			{Name: siapi.FieldTitle, Text: "Notes"},
			{Name: siapi.FieldBody, Text: "help desk replication of tickets and staffing"},
			{Name: siapi.FieldDeal, Text: "DEAL B", Keyword: true},
		}, Meta: map[string]string{"deal": "DEAL B"}},
	}
	for _, d := range docs {
		if _, err := ix.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	return &Engine{
		Synopses: store,
		Docs:     siapi.NewEngine(ix),
		Tax:      taxonomy.Default(),
	}
}

func anyUser() access.User { return access.User{ID: "u", Roles: []access.Role{access.RoleAdmin}} }

func dealIDs(res Result) []string {
	out := make([]string, len(res.Activities))
	for i, a := range res.Activities {
		out[i] = a.DealID
	}
	return out
}

func TestConceptOnlyQuery(t *testing.T) {
	e := newEngine(t)
	res, err := e.Search(anyUser(), FormQuery{Tower: "Storage Management Services"})
	if err != nil {
		t.Fatal(err)
	}
	got := dealIDs(res)
	if len(got) != 1 || got[0] != "DEAL A" {
		t.Fatalf("activities = %v", got)
	}
	a := res.Activities[0]
	if a.Synopsis == nil || a.Synopsis.Overview.Customer != "Acme" {
		t.Fatalf("synopsis missing: %+v", a)
	}
	if len(a.MatchedTowers) == 0 || a.MatchedTowers[0] != "Storage Management Services" {
		t.Fatalf("matched towers = %v", a.MatchedTowers)
	}
	if res.UnscopedFallback {
		t.Fatal("fallback flagged on a concept hit")
	}
}

func TestConceptViaAcronym(t *testing.T) {
	e := newEngine(t)
	res, err := e.Search(anyUser(), FormQuery{Tower: "EUS"})
	if err != nil {
		t.Fatal(err)
	}
	got := dealIDs(res)
	if len(got) != 1 || got[0] != "DEAL B" {
		t.Fatalf("activities = %v", got)
	}
}

func TestConceptViaSubTowerAlias(t *testing.T) {
	e := newEngine(t)
	// "CSC" resolves to the Customer Service Center sub-tower.
	res, err := e.Search(anyUser(), FormQuery{Tower: "CSC"})
	if err != nil {
		t.Fatal(err)
	}
	got := dealIDs(res)
	if len(got) != 1 || got[0] != "DEAL B" {
		t.Fatalf("activities = %v", got)
	}
}

func TestConceptPlusTextScopes(t *testing.T) {
	e := newEngine(t)
	// "replication" matches docs in both deals, but the storage concept
	// scopes the search to DEAL A (Figure 1 steps 5-8).
	res, err := e.Search(anyUser(), FormQuery{
		Tower:    "Storage Management Services",
		AllWords: []string{"replication"},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := dealIDs(res)
	if len(got) != 1 || got[0] != "DEAL A" {
		t.Fatalf("activities = %v", got)
	}
	if len(res.Activities[0].Docs) != 1 {
		t.Fatalf("docs = %+v", res.Activities[0].Docs)
	}
	if res.Activities[0].Score <= res.Activities[0].SynopsisScore {
		t.Fatalf("combined score must add doc evidence: %+v", res.Activities[0])
	}
}

func TestConceptMatchButNoDocs(t *testing.T) {
	e := newEngine(t)
	res, err := e.Search(anyUser(), FormQuery{
		Tower:    "Storage Management Services",
		AllWords: []string{"nonexistentword"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Activities) != 0 {
		t.Fatalf("activities = %v (scoped SIAPI matched nothing)", dealIDs(res))
	}
}

func TestUnscopedFallback(t *testing.T) {
	e := newEngine(t)
	res, err := e.Search(anyUser(), FormQuery{AllWords: []string{"replication"}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.UnscopedFallback {
		t.Fatal("fallback not flagged")
	}
	if len(res.Activities) != 2 {
		t.Fatalf("activities = %v", dealIDs(res))
	}
}

func TestConceptNoMatchIsEmpty(t *testing.T) {
	e := newEngine(t)
	res, err := e.Search(anyUser(), FormQuery{
		Tower:    "Network Services",
		AllWords: []string{"replication"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Activities) != 0 || res.UnscopedFallback {
		t.Fatalf("res = %+v (concept filters are hard)", res)
	}
}

func TestEmptyQuery(t *testing.T) {
	e := newEngine(t)
	res, err := e.Search(anyUser(), FormQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Activities) != 0 {
		t.Fatalf("empty query returned %v", dealIDs(res))
	}
}

func TestPersonQuery(t *testing.T) {
	e := newEngine(t)
	res, err := e.Search(anyUser(), FormQuery{PersonName: "Sam White", PersonOrg: "ABC"})
	if err != nil {
		t.Fatal(err)
	}
	got := dealIDs(res)
	if len(got) != 1 || got[0] != "DEAL B" {
		t.Fatalf("activities = %v", got)
	}
}

func TestTechSolutionTarget(t *testing.T) {
	e := newEngine(t)
	res, err := e.Search(anyUser(), FormQuery{
		ExactPhrase: "data replication",
		Target:      TargetTechSolution,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := dealIDs(res)
	// Only DEAL A has a techsolution field containing the phrase.
	if len(got) != 1 || got[0] != "DEAL A" {
		t.Fatalf("activities = %v", got)
	}
}

func TestAccessControlLevels(t *testing.T) {
	e := newEngine(t)
	ctl := access.NewController()
	e.Access = ctl
	sales := access.User{ID: "s", Roles: []access.Role{access.RoleSales}}
	res, err := e.Search(sales, FormQuery{AllWords: []string{"replication"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Activities) != 2 {
		t.Fatalf("activities = %v", dealIDs(res))
	}
	for _, a := range res.Activities {
		if a.Level != access.LevelSynopsis {
			t.Fatalf("level = %v", a.Level)
		}
		if a.Docs != nil {
			t.Fatalf("synopsis-level user saw documents: %+v", a.Docs)
		}
		if a.Synopsis == nil {
			t.Fatal("synopsis missing at synopsis level")
		}
	}
	// A delivery user with no grants sees nothing.
	delivery := access.User{ID: "d", Roles: []access.Role{access.RoleDelivery}}
	res, err = e.Search(delivery, FormQuery{AllWords: []string{"replication"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Activities) != 0 {
		t.Fatalf("delivery sees %v", dealIDs(res))
	}
	// Granting full access restores documents.
	ctl.Grant("s", "DEAL A", access.LevelFull)
	res, _ = e.Search(sales, FormQuery{AllWords: []string{"replication"}})
	for _, a := range res.Activities {
		if a.DealID == "DEAL A" && len(a.Docs) == 0 {
			t.Fatal("full-access activity has no documents")
		}
	}
}

func TestDisableScopingIntersects(t *testing.T) {
	e := newEngine(t)
	e.DisableScoping = true
	res, err := e.Search(anyUser(), FormQuery{
		Tower:    "Storage Management Services",
		AllWords: []string{"replication"},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := dealIDs(res)
	if len(got) != 1 || got[0] != "DEAL A" {
		t.Fatalf("ablation changed semantics: %v", got)
	}
}

func TestLimit(t *testing.T) {
	e := newEngine(t)
	res, err := e.Search(anyUser(), FormQuery{AllWords: []string{"replication"}, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Activities) != 1 {
		t.Fatalf("limit ignored: %v", dealIDs(res))
	}
}

func TestFormQueryHelpers(t *testing.T) {
	if (FormQuery{}).HasConcepts() || (FormQuery{}).HasText() {
		t.Fatal("empty query has criteria")
	}
	if !(FormQuery{Tower: "x"}).HasConcepts() {
		t.Fatal("tower not a concept")
	}
	if !(FormQuery{ExactPhrase: "x"}).HasText() {
		t.Fatal("phrase not text")
	}
}

func TestExplainPopulated(t *testing.T) {
	e := newEngine(t)
	res, err := e.Search(anyUser(), FormQuery{Tower: "SMS", AllWords: []string{"replication"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Explain) < 2 {
		t.Fatalf("explain = %v", res.Explain)
	}
}

func TestSuggestionsOnUnknownTower(t *testing.T) {
	e := newEngine(t)
	res, err := e.Search(anyUser(), FormQuery{Tower: "Strorage Management Services"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Activities) != 0 {
		t.Fatalf("typo matched deals: %v", dealIDs(res))
	}
	if len(res.Suggestions) == 0 {
		t.Fatal("no suggestions for a one-typo tower")
	}
	found := false
	for _, s := range res.Suggestions {
		if s == "storage management services" {
			found = true
		}
	}
	if !found {
		t.Fatalf("suggestions = %v", res.Suggestions)
	}
	// A resolving tower must not produce suggestions.
	res, err = e.Search(anyUser(), FormQuery{Tower: "EUS"})
	if err != nil || len(res.Suggestions) != 0 {
		t.Fatalf("suggestions on valid concept: %v, %v", res.Suggestions, err)
	}
}

func TestExplore(t *testing.T) {
	e := newEngine(t)
	hits, err := e.Explore(anyUser(), "DEAL A", FormQuery{AllWords: []string{"replication"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].DealID != "DEAL A" {
		t.Fatalf("hits = %+v", hits)
	}
	// Text criteria required.
	if _, err := e.Explore(anyUser(), "DEAL A", FormQuery{}); err == nil {
		t.Fatal("criteria-free explore accepted")
	}
	// Access enforced: synopsis-level users cannot drill into documents.
	e.Access = access.NewController()
	sales := access.User{ID: "s", Roles: []access.Role{access.RoleSales}}
	if _, err := e.Explore(sales, "DEAL A", FormQuery{AllWords: []string{"replication"}}); err == nil {
		t.Fatal("synopsis-level user explored documents")
	}
}

func TestWinStrategyTarget(t *testing.T) {
	e := newEngine(t)
	// No winstrategy fields in the hand-built index: target must yield 0,
	// proving the field routing (not falling back to body).
	res, err := e.Search(anyUser(), FormQuery{AllWords: []string{"replication"}, Target: TargetWinStrategy})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Activities) != 0 {
		t.Fatalf("winstrategy target leaked to body: %v", dealIDs(res))
	}
}
