package core

// Resilience layer for the engine's backend hops. The deployed EIL splits
// every query across two backends (the DB2 synopsis store and the
// OmniFind/SIAPI index); this file keeps the engine answering when one side
// is slow or down: a search-level time budget divided into per-attempt
// deadlines, bounded retry with decorrelated-jitter backoff for the
// idempotent read calls, and a small circuit breaker per backend so a dead
// backend fails fast instead of burning the budget of every request.
// Degradation policy (which tier of answer survives which outage) lives in
// core.go's search flow; this file supplies the mechanics.

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"
)

// Resilience configures the engine's backend-call protection. The zero
// value keeps the exact pre-resilience behaviour: no deadline, no retry
// (one attempt), and a breaker so tolerant it never opens under honest
// load; Engine.search threads calls through the same code path either way,
// and without a context deadline that path is a direct inline call.
type Resilience struct {
	// Budget bounds one whole search; each backend attempt receives a slice
	// of what remains (remaining / attempts-left), so a first-attempt hang
	// leaves room for a retry inside the budget. 0 means no deadline.
	Budget time.Duration
	// MaxRetries is how many times a failed idempotent backend call is
	// retried (0 = no retry; the call still runs once).
	MaxRetries int
	// RetryBase and RetryCap bound the decorrelated-jitter backoff between
	// attempts (defaults 2ms and 50ms).
	RetryBase time.Duration
	RetryCap  time.Duration
	// BreakerFailures is how many consecutive failures open a backend's
	// breaker (default 5; <0 disables the breaker).
	BreakerFailures int
	// BreakerCooldown is how long an open breaker rejects before letting a
	// half-open probe through (default 500ms).
	BreakerCooldown time.Duration
}

// Resilience defaults.
const (
	defRetryBase       = 2 * time.Millisecond
	defRetryCap        = 50 * time.Millisecond
	defBreakerFailures = 5
	defBreakerCooldown = 500 * time.Millisecond
)

// withDefaults fills zero fields.
func (r Resilience) withDefaults() Resilience {
	if r.RetryBase <= 0 {
		r.RetryBase = defRetryBase
	}
	if r.RetryCap < r.RetryBase {
		r.RetryCap = defRetryCap
	}
	if r.BreakerFailures == 0 {
		r.BreakerFailures = defBreakerFailures
	}
	if r.BreakerCooldown <= 0 {
		r.BreakerCooldown = defBreakerCooldown
	}
	return r
}

// ErrCircuitOpen is returned (wrapped in a BackendError) when a backend's
// breaker rejects the call without attempting it.
var ErrCircuitOpen = errors.New("core: circuit open")

// BackendError marks a search failure caused by a backend outage rather
// than a bad query; the web layer maps it to 503 + Retry-After where a
// query error stays 4xx.
type BackendError struct {
	Backend string // "synopsis", "siapi", or "access"
	Err     error
}

func (e *BackendError) Error() string {
	return fmt.Sprintf("core: %s backend unavailable: %v", e.Backend, e.Err)
}

func (e *BackendError) Unwrap() error { return e.Err }

// IsUnavailable reports whether err means a backend outage (the 503 class)
// as opposed to a malformed or denied query (the 4xx class).
func IsUnavailable(err error) bool {
	var be *BackendError
	return errors.As(err, &be)
}

// Breaker states.
const (
	breakerClosed   = "closed"
	breakerOpen     = "open"
	breakerHalfOpen = "half-open"
)

// breaker is a small per-backend circuit breaker: it opens after N
// consecutive failures, rejects while open, and after a cooldown admits a
// single half-open probe whose outcome closes or re-opens it.
type breaker struct {
	mu        sync.Mutex
	failures  int
	state     string
	openedAt  time.Time
	threshold int
	cooldown  time.Duration
	probing   bool
}

func newBreaker(r Resilience) *breaker {
	return &breaker{state: breakerClosed, threshold: r.BreakerFailures, cooldown: r.BreakerCooldown}
}

// allow reports whether a call may proceed; in half-open state only one
// in-flight probe is admitted.
func (b *breaker) allow() bool {
	if b == nil || b.threshold < 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			b.probing = true
			return true
		}
		return false
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// record feeds a call outcome back: success closes, failure counts toward
// (or re-triggers) opening.
func (b *breaker) record(err error) {
	if b == nil || b.threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if err == nil {
		b.failures = 0
		b.state = breakerClosed
		return
	}
	b.failures++
	if b.state == breakerHalfOpen || b.failures >= b.threshold {
		b.state = breakerOpen
		b.openedAt = time.Now()
		b.failures = 0
	}
}

// State reports the breaker state for telemetry and tests.
func (b *breaker) State() string {
	if b == nil {
		return breakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen && time.Since(b.openedAt) >= b.cooldown {
		return breakerHalfOpen
	}
	return b.state
}

// Backend names used by breakers, metrics, and degraded-cause labels.
const (
	BackendSynopsis = "synopsis"
	BackendSIAPI    = "siapi"
	BackendAccess   = "access"
)

// resilience returns the engine's config with defaults filled.
func (e *Engine) resilience() Resilience { return e.Resilient.withDefaults() }

// breakerFor lazily creates the named backend's breaker. Keys are open
// ended: the monolithic engine uses the backend names alone, the sharded
// engine one "<backend>#<shard>" breaker per shard, so one dead shard
// trips only its own circuit.
func (e *Engine) breakerFor(backend string) *breaker {
	e.brMu.Lock()
	defer e.brMu.Unlock()
	if e.breakers == nil {
		e.breakers = map[string]*breaker{}
	}
	b, ok := e.breakers[backend]
	if !ok {
		b = newBreaker(e.resilience())
		e.breakers[backend] = b
	}
	return b
}

// BreakerState reports the named backend's breaker state ("closed", "open",
// or "half-open") — chaos tests and the debug surfaces read it.
func (e *Engine) BreakerState(backend string) string {
	return e.breakerFor(backend).State()
}

// shardBreakerName is the breaker/metric key for one backend hop of one
// shard.
func shardBreakerName(backend, shard string) string {
	return backend + "#" + shard
}

// ShardBreakerStates reports every shard's breaker state for one backend
// hop, keyed by shard name — the per-shard health checks read it.
func (e *Engine) ShardBreakerStates(backend string) map[string]string {
	out := make(map[string]string, len(e.Shards))
	for i := range e.Shards {
		name := e.Shards[i].Name
		out[name] = e.BreakerState(shardBreakerName(backend, name))
	}
	return out
}

// resilientCall runs one idempotent backend call under the engine's
// resilience policy: breaker admission, per-attempt deadline slices of the
// context budget, and bounded retry with decorrelated-jitter backoff.
// Failures always come back wrapped in a *BackendError.
//
// With no deadline on ctx the attempt is a direct inline call — no
// goroutine, no channel — so a budget-less engine (the zero Resilience
// config) adds only the breaker check and one time read per backend hop.
func resilientCall[T any](ctx context.Context, e *Engine, backend string, fn func(context.Context) (T, error)) (T, error) {
	var zero T
	r := e.resilience()
	br := e.breakerFor(backend)
	if !br.allow() {
		e.Metrics.Counter("search_breaker_rejected_total", "backend", backend).Inc()
		return zero, &BackendError{Backend: backend, Err: ErrCircuitOpen}
	}
	attempts := r.MaxRetries + 1
	var lastErr error
	backoff := r.RetryBase
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			// Budget exhausted: report what we have without burning more.
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		out, err := runAttempt(ctx, attempts-attempt, fn)
		br.record(err)
		if err == nil {
			if attempt > 0 {
				e.Metrics.Counter("search_retry_success_total", "backend", backend).Inc()
			}
			return out, nil
		}
		lastErr = err
		e.Metrics.Counter("search_backend_errors_total", "backend", backend).Inc()
		if attempt == attempts-1 {
			break
		}
		// Decorrelated jitter: sleep uniform in [base, 3*prev], capped.
		sleep := r.RetryBase + time.Duration(rand.Int64N(int64(3*backoff-r.RetryBase)+1))
		if sleep > r.RetryCap {
			sleep = r.RetryCap
		}
		backoff = sleep
		if !sleepCtx(ctx, sleep) {
			break
		}
		e.Metrics.Counter("search_retries_total", "backend", backend).Inc()
		if !br.allow() {
			break
		}
	}
	if e.breakerFor(backend).State() == breakerOpen {
		e.Metrics.Counter("search_breaker_opened_total", "backend", backend).Inc()
	}
	return zero, &BackendError{Backend: backend, Err: lastErr}
}

// runAttempt executes fn once. Without a context deadline it calls inline
// with no setup at all. With one, the attempt runs under an even slice of
// the remaining budget (remaining / attempts-left): the deadline is enforced
// cooperatively — every blocking path in the backends (index/store waits,
// injected hang and latency) selects on the context — so a stuck call
// returns its context error at the slice boundary without a per-attempt
// goroutine, keeping the envelope's fault-free cost near zero.
func runAttempt[T any](ctx context.Context, attemptsLeft int, fn func(context.Context) (T, error)) (T, error) {
	deadline, ok := ctx.Deadline()
	if !ok {
		return fn(ctx)
	}
	remaining := time.Until(deadline)
	// Reserve a tenth of the remaining budget beyond the attempts: if every
	// attempt hangs to its slice boundary, the search still has headroom to
	// run its degraded fallback (e.g. the unscoped full-text query) instead
	// of racing the parent deadline.
	usable := remaining - remaining/10
	slice := usable / time.Duration(attemptsLeft)
	if slice < time.Millisecond {
		slice = time.Millisecond
	}
	actx, cancel := context.WithTimeout(ctx, slice)
	defer cancel()
	out, err := fn(actx)
	if err != nil && actx.Err() != nil {
		err = actx.Err()
	}
	return out, err
}

// sleepCtx sleeps for d or until ctx cancels; it reports whether the full
// sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
