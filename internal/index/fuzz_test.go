package index

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"

	"repro/internal/textproc"
)

// seedSnapshot serializes a small real index — the fuzzer mutates from a
// valid snapshot, which reaches far deeper into the decoder than random
// bytes would.
func seedSnapshot(t interface{ Fatal(...any) }) []byte {
	ix := New(textproc.DefaultAnalyzer)
	docs := []Document{
		{ExtID: "deal-a/overview.txt", Meta: map[string]string{"deal": "DEAL A"}, Fields: []Field{
			{Name: "body", Text: "network services scope baseline for the data replication program"},
			{Name: "tower", Text: "Network Services", Keyword: true, Weight: 2},
		}},
		{ExtID: "deal-b/team.grid", Meta: map[string]string{"deal": "DEAL B"}, Fields: []Field{
			{Name: "body", Text: "deal team roster with one client services executive"},
		}},
	}
	for _, d := range docs {
		if _, err := ix.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Delete("deal-b/team.grid"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzIndexLoad drives arbitrary bytes through the snapshot loader. The
// invariant under fuzzing: Load never panics — it returns a working index
// or an error. Corrupt postings, impossible doc IDs, and truncated gob
// streams must all surface as errors.
func FuzzIndexLoad(f *testing.F) {
	seed := seedSnapshot(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2])                    // torn tail
	f.Add([]byte{})                              // empty
	f.Add([]byte("not a gob stream at all"))     // garbage
	f.Add(bytes.Repeat([]byte{0xFF, 0x00}, 256)) // binary noise
	mut := bytes.Clone(seed)                     // single corrupt byte
	mut[len(mut)/3] ^= 0xFF
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A snapshot the loader accepted must behave like an index: the
		// exercised surface must not panic either.
		_ = ix.DocCount()
		_ = ix.TermCount()
		for _, id := range ix.ExtIDsByMeta("deal", "DEAL A") {
			_, _ = ix.Lookup(id)
		}
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			t.Fatalf("accepted snapshot did not re-serialize: %v", err)
		}
	})
}

func TestIndexLoadRejectsOtherFormats(t *testing.T) {
	// A format bump (or an ancient snapshot) must be rejected with a clear
	// error naming the format — never misread field-by-field.
	for _, format := range []int{0, persistFormat + 1, persistFormat + 40} {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(snapshot{Format: format}); err != nil {
			t.Fatal(err)
		}
		_, err := Load(&buf)
		if err == nil {
			t.Fatalf("format %d loaded", format)
		}
		if !strings.Contains(err.Error(), "unsupported snapshot format") {
			t.Fatalf("format %d: err = %v, want unsupported-format", format, err)
		}
	}
}
