package index

import (
	"fmt"
	"testing"

	"repro/internal/textproc"
)

// statsCorpus builds one document set whose terms overlap heavily across
// shards, so local and global document frequencies genuinely differ.
func statsCorpus() []Document {
	bodies := []string{
		"data replication between sites for storage management",
		"storage array replication and disaster recovery drills",
		"service desk staffing model with replication of tickets",
		"asset management inventory replication overview",
		"disaster recovery runbook for the storage tier",
		"help desk consolidation and service catalog design",
		"midrange server refresh with storage migration plan",
		"storage capacity forecast and replication lag report",
		"network redesign for the recovery data center",
		"storage management services proposal for data services",
		"replication topology diagram and failover notes",
		"service level targets for the help desk and storage team",
	}
	docs := make([]Document, 0, len(bodies))
	for i, body := range bodies {
		deal := fmt.Sprintf("DEAL %02d", i%5)
		docs = append(docs, Document{
			ExtID: fmt.Sprintf("%s/doc%02d.txt", deal, i),
			Fields: []Field{
				{Name: "title", Text: fmt.Sprintf("Document %d", i)},
				{Name: "body", Text: body},
				{Name: "deal", Text: deal, Keyword: true},
			},
			Meta: map[string]string{"deal": deal},
		})
	}
	return docs
}

// statsQueries covers every leaf type the evaluator has: terms, phrases,
// booleans, deal-scoped conjunctions, fuzzy and prefix expansion.
func statsQueries(an textproc.Analyzer) []Query {
	term := func(word string) Query {
		terms := an.Terms(word)
		return TermQuery{Field: "body", Term: terms[0]}
	}
	phrase := func(words ...string) Query {
		var terms []string
		for _, w := range words {
			terms = append(terms, an.Terms(w)...)
		}
		return PhraseQuery{Field: "body", Terms: terms}
	}
	return []Query{
		term("replication"),
		term("storage"),
		phrase("disaster", "recovery"),
		phrase("storage", "management"),
		BoolQuery{
			Should: []Query{term("replication"), term("desk")},
		},
		BoolQuery{
			Must:    []Query{term("storage")},
			MustNot: []Query{term("disaster")},
		},
		BoolQuery{
			Must: []Query{
				BoolQuery{Should: []Query{
					TermQuery{Field: "deal", Term: KeywordTerm("DEAL 01")},
					TermQuery{Field: "deal", Term: KeywordTerm("DEAL 03")},
				}},
				term("replication"),
			},
		},
		FuzzyQuery{Field: "body", Term: "replicatoin", MaxDist: 2},
		FuzzyQuery{Field: "body", Term: "storag", MaxDist: 1},
		PrefixQuery{Field: "body", Prefix: "stor"},
		PrefixQuery{Field: "body", Prefix: "re"},
	}
}

// TestStatsShardedScoringMatchesMonolith is the scoring-parity foundation
// of the sharded engine: the same corpus split across three indexes,
// searched with merged global stats, must reproduce the monolithic
// index's scores bit-for-bit on every query shape.
func TestStatsShardedScoringMatchesMonolith(t *testing.T) {
	an := textproc.DefaultAnalyzer
	docs := statsCorpus()

	mono := New(an)
	const nShards = 3
	shards := make([]*Index, nShards)
	for i := range shards {
		shards[i] = New(an)
	}
	for i, d := range docs {
		if _, err := mono.Add(d); err != nil {
			t.Fatal(err)
		}
		if _, err := shards[i%nShards].Add(d); err != nil {
			t.Fatal(err)
		}
	}

	for qi, q := range statsQueries(an) {
		want := map[string]float64{}
		for _, h := range mono.Search(q, 0) {
			ext, _ := mono.ExtID(h.Doc)
			want[ext] = h.Score
		}

		// Phase one: scatter stats collection, merge in arbitrary order.
		merged := shards[2].CollectStats(q)
		merged.Merge(shards[0].CollectStats(q))
		merged.Merge(shards[1].CollectStats(q))

		// Phase two: scatter the search with global stats.
		got := map[string]float64{}
		for _, sh := range shards {
			for _, h := range sh.SearchStatsCtx(t.Context(), q, 0, merged) {
				ext, _ := sh.ExtID(h.Doc)
				got[ext] = h.Score
			}
		}

		if len(got) != len(want) {
			t.Errorf("query %d: sharded matched %d docs, monolith %d", qi, len(got), len(want))
			continue
		}
		for ext, ws := range want {
			gs, ok := got[ext]
			if !ok {
				t.Errorf("query %d: %s missing from sharded results", qi, ext)
				continue
			}
			if gs != ws {
				t.Errorf("query %d: %s score = %v sharded, %v monolith", qi, ext, gs, ws)
			}
		}
	}
}

// TestStatsMergeAssociative checks that folding shard stats pairwise in
// any order yields the same table — the property that lets the
// coordinator merge results as they arrive.
func TestStatsMergeAssociative(t *testing.T) {
	an := textproc.DefaultAnalyzer
	docs := statsCorpus()
	shards := make([]*Index, 3)
	for i := range shards {
		shards[i] = New(an)
	}
	for i, d := range docs {
		if _, err := shards[i%3].Add(d); err != nil {
			t.Fatal(err)
		}
	}
	q := BoolQuery{Should: []Query{
		FuzzyQuery{Field: "body", Term: "storag", MaxDist: 1},
		PrefixQuery{Field: "body", Prefix: "re"},
		PhraseQuery{Field: "body", Terms: []string{"disast", "recoveri"}},
	}}

	orders := [][]int{{0, 1, 2}, {2, 0, 1}, {1, 2, 0}}
	var results []*Stats
	for _, ord := range orders {
		acc := newStats()
		for _, i := range ord {
			acc.Merge(shards[i].CollectStats(q))
		}
		results = append(results, acc)
	}
	for i := 1; i < len(results); i++ {
		a, b := results[0], results[i]
		if a.LiveDocs != b.LiveDocs {
			t.Fatalf("order %d: LiveDocs %d != %d", i, b.LiveDocs, a.LiveDocs)
		}
		for k, v := range a.TermDF {
			if b.TermDF[k] != v {
				t.Fatalf("order %d: TermDF[%v] %d != %d", i, k, b.TermDF[k], v)
			}
		}
		for k, v := range a.PhraseDF {
			if b.PhraseDF[k] != v {
				t.Fatalf("order %d: PhraseDF[%q] %d != %d", i, k, b.PhraseDF[k], v)
			}
		}
		for k, exp := range a.FuzzyExp {
			o := b.FuzzyExp[k]
			if len(o) != len(exp) {
				t.Fatalf("order %d: FuzzyExp[%q] length %d != %d", i, k, len(o), len(exp))
			}
			for j := range exp {
				if o[j] != exp[j] {
					t.Fatalf("order %d: FuzzyExp[%q][%d] = %v, want %v", i, k, j, o[j], exp[j])
				}
			}
		}
		for k, exp := range a.PrefixExp {
			o := b.PrefixExp[k]
			if len(o) != len(exp) {
				t.Fatalf("order %d: PrefixExp[%q] length %d != %d", i, k, len(o), len(exp))
			}
			for j := range exp {
				if o[j] != exp[j] {
					t.Fatalf("order %d: PrefixExp[%q][%d] = %q, want %q", i, k, j, o[j], exp[j])
				}
			}
		}
	}
}
