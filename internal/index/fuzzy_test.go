package index

import (
	"testing"
	"testing/quick"

	"repro/internal/textproc"
)

func TestFuzzySearchOneEdit(t *testing.T) {
	ix := newTestIndex(t)
	// "replication" indexed (stemmed to "replic"); query a typo'd form.
	typo := textproc.DefaultAnalyzer.NormalizeTerm("replocation") // stems to "replocation"
	hits := ix.Search(FuzzyQuery{Field: "body", Term: typo, MaxDist: 2}, 0)
	if len(hits) == 0 {
		t.Fatal("fuzzy query matched nothing")
	}
}

func TestFuzzyExactTermStillMatches(t *testing.T) {
	ix := newTestIndex(t)
	term := textproc.DefaultAnalyzer.NormalizeTerm("replication")
	fuzzy := ix.Search(FuzzyQuery{Field: "body", Term: term}, 0)
	exact := ix.Search(TermQuery{Field: "body", Term: term}, 0)
	if len(fuzzy) < len(exact) {
		t.Fatalf("fuzzy (%d) lost exact matches (%d)", len(fuzzy), len(exact))
	}
	// Exact matches score at full weight: for every exact hit the fuzzy
	// score must be >= its exact score scaled by no penalty.
	exactScores := map[DocID]float64{}
	for _, h := range exact {
		exactScores[h.Doc] = h.Score
	}
	for _, h := range fuzzy {
		if s, ok := exactScores[h.Doc]; ok && h.Score < s-1e-9 {
			t.Fatalf("fuzzy penalized an exact match: %v < %v", h.Score, s)
		}
	}
}

func TestFuzzyNoMatchBeyondDistance(t *testing.T) {
	ix := newTestIndex(t)
	hits := ix.Search(FuzzyQuery{Field: "body", Term: "zzzzzzzz", MaxDist: 1}, 0)
	if len(hits) != 0 {
		t.Fatalf("nonsense term matched %d docs", len(hits))
	}
}

func TestFuzzySkipsKeywordTerms(t *testing.T) {
	ix := newTestIndex(t)
	// The "deal" field carries keyword terms ("\x00deal a") one edit away
	// from the plain string "deal a"; fuzzy expansion must skip them (the
	// field's ordinary tokens "deal"/"a"/"b" are all >1 edit away).
	hits := ix.Search(FuzzyQuery{Field: "deal", Term: "deal a", MaxDist: 1}, 0)
	for _, h := range hits {
		ext, _ := ix.ExtID(h.Doc)
		t.Fatalf("fuzzy matched keyword term via %s", ext)
	}
}

func TestFuzzyInBoolQuery(t *testing.T) {
	ix := newTestIndex(t)
	q := BoolQuery{Must: []Query{
		FuzzyQuery{Field: "body", Term: "storag"}, // stem of "storage"
		TermQuery{Field: "body", Term: textproc.DefaultAnalyzer.NormalizeTerm("replication")},
	}}
	hits := ix.Search(q, 0)
	if len(hits) != 1 {
		t.Fatalf("hits = %d", len(hits))
	}
}

func TestEditDistanceAtMost(t *testing.T) {
	cases := []struct {
		a, b  string
		limit int
		d     int
		ok    bool
	}{
		{"abc", "abc", 1, 0, true},
		{"abc", "abd", 1, 1, true},
		{"abc", "ab", 1, 1, true},
		{"abc", "xyz", 1, 0, false},
		{"abc", "abcd", 0, 0, false},
		{"kitten", "sitting", 3, 3, true},
		{"kitten", "sitting", 2, 0, false},
		{"", "ab", 2, 2, true},
	}
	for _, c := range cases {
		d, ok := editDistanceAtMost(c.a, c.b, c.limit)
		if ok != c.ok || (ok && d != c.d) {
			t.Errorf("editDistanceAtMost(%q,%q,%d) = %d,%v want %d,%v", c.a, c.b, c.limit, d, ok, c.d, c.ok)
		}
	}
}

// Property: editDistanceAtMost is symmetric and zero iff equal.
func TestEditDistanceProperty(t *testing.T) {
	err := quick.Check(func(a, b string) bool {
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		d1, ok1 := editDistanceAtMost(a, b, 5)
		d2, ok2 := editDistanceAtMost(b, a, 5)
		if ok1 != ok2 || (ok1 && d1 != d2) {
			return false
		}
		if a == b {
			return ok1 && d1 == 0
		}
		return !ok1 || d1 > 0
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestPrefixQuery(t *testing.T) {
	ix := newTestIndex(t)
	// Terms "storag" (stem of Storage), "staf" etc. Prefix "stor" hits.
	hits := ix.Search(PrefixQuery{Field: "body", Prefix: "stor"}, 0)
	if len(hits) != 1 {
		t.Fatalf("prefix hits = %d", len(hits))
	}
	if hits := ix.Search(PrefixQuery{Field: "body", Prefix: "zzz"}, 0); len(hits) != 0 {
		t.Fatalf("nonsense prefix matched %d", len(hits))
	}
	if hits := ix.Search(PrefixQuery{Field: "body", Prefix: ""}, 0); len(hits) != 0 {
		t.Fatal("empty prefix matched")
	}
	// Keyword terms excluded: "deal" field keyword values start \x00.
	if hits := ix.Search(PrefixQuery{Field: "deal", Prefix: "\x00deal"}, 0); len(hits) != 0 {
		t.Fatal("keyword terms matched by prefix")
	}
}
