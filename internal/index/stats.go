package index

// Distributed scoring statistics. BM25 scores depend on corpus-global
// quantities — document frequency, live-document count, average field
// length — so a sharded deployment that scored each shard against its own
// local statistics would rank documents differently than a monolithic
// index over the same corpus. CollectStats walks a query tree against one
// shard and records every global input the evaluator would consult;
// Merge folds per-shard stats into cluster-wide totals; Search with a
// *Stats evaluates locally but scores globally. The protocol is the
// classic two-phase "distributed frequencies" scheme (Elasticsearch's
// DFS_QUERY_THEN_FETCH): phase one scatters CollectStats, phase two
// scatters the search carrying the merged stats.
//
// Fuzzy and prefix leaves need more than frequencies: their dictionary
// expansions must be computed over the union of every shard's term
// dictionary, or a shard that happens to hold few matching terms would
// expand differently than the monolith. CollectStats therefore records
// each shard's capped candidate list; Merge unions and re-caps them under
// the same total order the evaluator uses. Because any term ranked inside
// the global cap is necessarily inside the cap of every shard whose
// dictionary contains it (a shard's dictionary is a subset of the
// global one, so local rank <= global rank), the merged list and every
// candidate's summed document frequency are exact, and merging is
// associative.

import "sort"

// TermKey identifies one term leaf in the stats table.
type TermKey struct {
	Field string
	Term  string
}

// TermDist is one fuzzy-expansion candidate: a dictionary term and its
// edit distance from the query term.
type TermDist struct {
	Term string
	Dist int
}

// Stats carries the corpus-global scoring inputs for one query tree.
// A nil *Stats means "score against local statistics" everywhere.
type Stats struct {
	// LiveDocs is the total live-document count (BM25 n).
	LiveDocs int
	// FieldTotals/FieldDocs hold per-field token totals and document
	// counts for average-length normalization. They are copied wholesale
	// (every field, not just queried ones): the maps are tiny and the
	// copy removes any dependency on which leaves the walk visits.
	FieldTotals map[string]int
	FieldDocs   map[string]int
	// TermDF maps term leaves (and fuzzy/prefix expansion candidates) to
	// their global document frequency. A term absent from the map scores
	// with its local frequency — deliberately, so deal-routing keyword
	// terms (a deal lives wholly on one shard, making local df global)
	// stay exact without being collected.
	TermDF map[TermKey]int
	// PhraseDF maps phrase leaves to their global match count.
	PhraseDF map[string]int
	// FuzzyExp/PrefixExp map fuzzy and prefix leaves to their merged,
	// capped dictionary expansions.
	FuzzyExp  map[string][]TermDist
	PrefixExp map[string][]string
}

// newStats allocates an empty stats table.
func newStats() *Stats {
	return &Stats{
		FieldTotals: map[string]int{},
		FieldDocs:   map[string]int{},
		TermDF:      map[TermKey]int{},
		PhraseDF:    map[string]int{},
		FuzzyExp:    map[string][]TermDist{},
		PrefixExp:   map[string][]string{},
	}
}

// phraseKey builds an injective key for a phrase leaf (length-prefixed so
// distinct term lists cannot collide).
func phraseKey(field string, terms []string) string {
	key := field
	for _, t := range terms {
		key += "\x00" + t
	}
	return key
}

func fuzzyLeafKey(q FuzzyQuery) string {
	d := q.MaxDist
	if d <= 0 {
		d = 1
	}
	return q.Field + "\x00" + q.Term + "\x00" + string(rune('0'+d))
}

func prefixLeafKey(q PrefixQuery) string {
	return q.Field + "\x00" + q.Prefix
}

// CollectStats walks q and returns this index's contribution to the
// global scoring statistics: local document frequencies for every term
// and phrase leaf, local dictionary expansions (with per-candidate
// frequencies) for fuzzy and prefix leaves, and the corpus-size and
// field-length totals.
func (ix *Index) CollectStats(q Query) *Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	st := newStats()
	st.LiveDocs = ix.liveDocs
	for f, v := range ix.fieldTotals {
		st.FieldTotals[f] = v
	}
	for f, v := range ix.fieldDocs {
		st.FieldDocs[f] = v
	}
	ix.collectStats(q, st)
	return st
}

func (ix *Index) collectStats(q Query, st *Stats) {
	switch t := q.(type) {
	case TermQuery:
		st.TermDF[TermKey{t.Field, t.Term}] += ix.liveDF(t.Field, t.Term)
	case PhraseQuery:
		switch len(t.Terms) {
		case 0:
		case 1:
			// The evaluator delegates single-term phrases to the term
			// path, so the stats walk must too.
			st.TermDF[TermKey{t.Field, t.Terms[0]}] += ix.liveDF(t.Field, t.Terms[0])
		default:
			st.PhraseDF[phraseKey(t.Field, t.Terms)] += ix.phraseCount(t.Field, t.Terms)
		}
	case BoolQuery:
		for _, sub := range t.Must {
			ix.collectStats(sub, st)
		}
		for _, sub := range t.Should {
			ix.collectStats(sub, st)
		}
		for _, sub := range t.MustNot {
			ix.collectStats(sub, st)
		}
	case FuzzyQuery:
		cands := ix.fuzzyCandidates(t)
		st.FuzzyExp[fuzzyLeafKey(t)] = cands
		for _, c := range cands {
			st.TermDF[TermKey{t.Field, c.Term}] += ix.liveDF(t.Field, c.Term)
		}
	case PrefixQuery:
		terms := ix.prefixCandidates(t)
		st.PrefixExp[prefixLeafKey(t)] = terms
		for _, term := range terms {
			st.TermDF[TermKey{t.Field, term}] += ix.liveDF(t.Field, term)
		}
	}
}

// liveDF returns the live document frequency of one term, 0 when absent.
func (ix *Index) liveDF(field, term string) int {
	if pl := ix.postings[fieldTerm{field, term}]; pl != nil {
		return pl.live
	}
	return 0
}

// phraseCount counts documents matching the phrase — the df the phrase
// evaluator derives from its intersection pass.
func (ix *Index) phraseCount(field string, terms []string) int {
	a := ix.evalPhraseCounts(field, terms)
	if a == nil {
		return 0
	}
	n := a.n
	ix.putAcc(a)
	return n
}

// Merge folds another shard's stats into st: counts sum, expansions union
// and re-cap under the evaluator's candidate order. Merging is
// commutative and associative, so shards may be folded in any order.
func (st *Stats) Merge(o *Stats) {
	if o == nil {
		return
	}
	st.LiveDocs += o.LiveDocs
	for f, v := range o.FieldTotals {
		st.FieldTotals[f] += v
	}
	for f, v := range o.FieldDocs {
		st.FieldDocs[f] += v
	}
	for k, v := range o.TermDF {
		st.TermDF[k] += v
	}
	for k, v := range o.PhraseDF {
		st.PhraseDF[k] += v
	}
	for k, exp := range o.FuzzyExp {
		st.FuzzyExp[k] = mergeFuzzyExp(st.FuzzyExp[k], exp)
	}
	for k, exp := range o.PrefixExp {
		st.PrefixExp[k] = mergePrefixExp(st.PrefixExp[k], exp)
	}
}

// mergeFuzzyExp unions two candidate lists, re-sorts by (distance, term)
// — the same order fuzzyCandidates caps under — and re-caps.
func mergeFuzzyExp(a, b []TermDist) []TermDist {
	seen := make(map[string]bool, len(a)+len(b))
	out := make([]TermDist, 0, len(a)+len(b))
	for _, c := range a {
		if !seen[c.Term] {
			seen[c.Term] = true
			out = append(out, c)
		}
	}
	for _, c := range b {
		if !seen[c.Term] {
			seen[c.Term] = true
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Term < out[j].Term
	})
	if len(out) > maxFuzzyExpansions {
		out = out[:maxFuzzyExpansions]
	}
	return out
}

// mergePrefixExp unions two term lists, re-sorts by (length, term) — the
// prefixCandidates cap order — and re-caps.
func mergePrefixExp(a, b []string) []string {
	seen := make(map[string]bool, len(a)+len(b))
	out := make([]string, 0, len(a)+len(b))
	for _, t := range a {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	for _, t := range b {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return out[i] < out[j]
	})
	if len(out) > maxPrefixExpansions {
		out = out[:maxPrefixExpansions]
	}
	return out
}

// termDF resolves a term's document frequency: the global count when the
// stats walk collected it, the local count otherwise (deal-scope keyword
// terms, whose deals are shard-local, score exactly either way).
func (st *Stats) termDF(field, term string, local int) int {
	if df, ok := st.TermDF[TermKey{field, term}]; ok {
		return df
	}
	return local
}

// phraseDF resolves a phrase leaf's document frequency.
func (st *Stats) phraseDF(field string, terms []string, local int) int {
	if df, ok := st.PhraseDF[phraseKey(field, terms)]; ok {
		return df
	}
	return local
}

// fieldAvg computes the global average field length, mirroring
// Index.fieldStats over the summed totals.
func (st *Stats) fieldAvg(field string) float64 {
	if docs := st.FieldDocs[field]; docs > 0 {
		return float64(st.FieldTotals[field]) / float64(docs)
	}
	return 0
}
